/**
 * @file
 * Randomized property tests over the whole stack:
 *  - cache conservation: every demand request eventually completes,
 *    exactly once, under random mixed traffic with backpressure;
 *  - cache residency: at most one copy of a block, occupancy bounds;
 *  - every prefetcher survives fuzzed access streams and only issues
 *    legal block-aligned targets at legal fill levels;
 *  - end-to-end determinism: identical runs produce identical cycle
 *    counts and statistics;
 *  - system liveness: random traces always finish.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/gaze.hh"
#include "prefetchers/factory.hh"
#include "sim/cache.hh"
#include "sim/system.hh"
#include "test_util.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

using test::FakeMemory;
using test::FakeReceiver;

TEST(CacheProperty, EveryDemandCompletesExactlyOnce)
{
    Cycle clock = 0;
    FakeMemory mem(&clock, 80);
    CacheParams p;
    p.sets = 8;
    p.ways = 2;
    p.mshrs = 4;
    p.rqSize = 6;
    Cache cache(p, &mem, &clock);
    FakeReceiver rx;

    Rng rng(2024);
    uint64_t sent = 0;
    uint64_t next_token = 0;
    for (int step = 0; step < 30000; ++step) {
        if (rng.chance(0.4)) {
            Request r;
            r.paddr = rng.below(64) * blockSize; // small hot space
            r.type = rng.chance(0.2) ? AccessType::Rfo
                                     : AccessType::Load;
            r.fillLevel = levelL1;
            r.requester = &rx;
            r.token = next_token;
            if (cache.sendRequest(r)) {
                ++sent;
                ++next_token;
            }
        }
        if (rng.chance(0.1))
            cache.issuePrefetch(rng.below(256) * blockSize, levelL1,
                                false, 0);
        cache.tick();
        mem.tick();
        ++clock;
    }
    // Drain.
    for (int i = 0; i < 2000; ++i) {
        cache.tick();
        mem.tick();
        ++clock;
    }
    ASSERT_EQ(rx.fills.size(), sent);
    std::set<uint64_t> tokens;
    for (const auto &f : rx.fills)
        EXPECT_TRUE(tokens.insert(f.token).second)
            << "token completed twice";
}

TEST(CacheProperty, StatsAreConsistent)
{
    Cycle clock = 0;
    FakeMemory mem(&clock, 60);
    CacheParams p;
    p.sets = 16;
    p.ways = 4;
    Cache cache(p, &mem, &clock);
    FakeReceiver rx;

    Rng rng(7);
    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(0.5)) {
            Request r;
            r.paddr = rng.below(512) * blockSize;
            r.type = AccessType::Load;
            r.fillLevel = levelL1;
            r.requester = &rx;
            cache.sendRequest(r);
        }
        cache.tick();
        mem.tick();
        ++clock;
    }
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.loadAccess, s.loadHit + s.loadMiss);
    EXPECT_GE(s.loadAccess, rx.fills.size());
    // Usefulness counters never exceed fills.
    EXPECT_LE(s.pfUseful, s.pfFilled);
}

TEST(PrefetcherProperty, FuzzedStreamsAreSafeAndLegal)
{
    for (const auto &spec : knownPrefetcherSpecs()) {
        auto pf = makePrefetcher(spec);
        ASSERT_NE(pf, nullptr);

        // A real (tiny) cache behind the prefetcher so issues have
        // somewhere to land; the fuzz checks nothing crashes and the
        // cache's own invariants hold under arbitrary training input.
        Cycle clock = 0;
        FakeMemory mem(&clock, 60);
        VirtualMemory vm(34);
        CacheParams cp;
        cp.sets = 16;
        cp.ways = 4;
        Cache cache(cp, &mem, &clock);
        cache.setPrefetcher(pf.get(), &vm, nullptr, 0);

        Rng rng(mix64(std::hash<std::string>{}(spec)));
        Cycle t = 0;
        for (int step = 0; step < 20000; ++step) {
            DemandAccess a;
            a.vaddr = rng.below(1 << 20) * 8;
            a.paddr = vm.translate(a.vaddr, 0);
            a.pc = 0x400000 + rng.below(64) * 4;
            a.hit = rng.chance(0.5);
            a.type = rng.chance(0.1) ? AccessType::Rfo
                                     : AccessType::Load;
            a.cycle = t;
            pf->onAccess(a);
            if (rng.chance(0.2)) {
                FillEvent f;
                f.vaddr = blockAlign(a.vaddr);
                f.paddr = blockAlign(a.paddr);
                f.pc = a.pc;
                f.latency = 100 + rng.below(200);
                f.cycle = t;
                f.prefetch = rng.chance(0.3);
                pf->onFill(f);
            }
            if (rng.chance(0.1))
                pf->onEvict(blockAlign(a.paddr), blockAlign(a.vaddr));
            cache.tick();
            mem.tick();
            ++clock;
            t += 1 + rng.below(4);
        }
        const CacheStats &s = cache.stats();
        EXPECT_LE(s.pfUseful, s.pfFilled) << spec;
        SUCCEED() << spec;
    }
}

TEST(PrefetcherProperty, IssuesAreBlockAlignedAndLeveled)
{
    // The capturing mixin sees raw issue arguments; every scheme must
    // produce aligned blocks at L1/L2 fill levels.
    struct Checker : Prefetcher
    {
        std::string name() const override { return "checker"; }
        void onAccess(const DemandAccess &) override {}
    };
    (void)sizeof(Checker);

    test::CapturingPrefetcher<GazePrefetcher> gaze;
    gaze.attachBare();
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        DemandAccess a;
        a.vaddr = rng.below(1 << 18) * 8;
        a.paddr = a.vaddr;
        a.pc = 0x400100;
        a.type = AccessType::Load;
        gaze.onAccess(a);
        gaze.tick();
    }
    for (const auto &p : gaze.issued) {
        EXPECT_EQ(p.addr % blockSize, 0u);
        EXPECT_GE(p.fillLevel, uint32_t(levelL1));
        EXPECT_LE(p.fillLevel, uint32_t(levelL2));
    }
}

TEST(SystemProperty, DeterministicEndToEnd)
{
    auto run_once = [](uint64_t seed) {
        StreamHazardParams hp;
        hp.seed = seed;
        hp.records = 100000;
        VectorTrace t = genStreamHazard(hp);
        SystemConfig cfg;
        System sys(cfg);
        sys.setTrace(0, &t);
        sys.setL1Prefetcher(0, makePrefetcher("gaze"));
        sys.run(60000);
        return std::tuple<Cycle, uint64_t, uint64_t>(
            sys.cycle(), sys.l1d(0).stats().pfIssued,
            sys.dram().stats().reads);
    };
    auto a = run_once(5);
    auto b = run_once(5);
    EXPECT_EQ(a, b);
    auto c = run_once(6);
    EXPECT_NE(std::get<0>(a), std::get<0>(c));
}

TEST(SystemProperty, RandomTracesAlwaysFinish)
{
    Rng rng(77);
    for (int round = 0; round < 3; ++round) {
        TraceBuilder tb;
        for (int i = 0; i < 50000; ++i) {
            double r = rng.uniform();
            Addr va = rng.below(1 << 16) * 16;
            if (r < 0.2)
                tb.load(0x1000 + rng.below(16) * 4, va);
            else if (r < 0.3)
                tb.store(0x2000, va);
            else if (r < 0.32)
                tb.dependentLoad(0x3000, va);
            else if (r < 0.33)
                tb.stall(static_cast<uint16_t>(rng.below(30)));
            else
                tb.nonMem(1);
        }
        VectorTrace t = tb.build();
        SystemConfig cfg;
        System sys(cfg);
        sys.setTrace(0, &t);
        sys.setL1Prefetcher(
            0, makePrefetcher(round == 0   ? "gaze"
                              : round == 1 ? "vberti"
                                           : "pmp"));
        sys.run(40000);
        EXPECT_GE(sys.core(0).retired(), 40000u);
    }
}

TEST(SystemProperty, MultiCoreSharedLlcIsolationOfStats)
{
    // Two cores, distinct address spaces: per-core L1 stats must be
    // independent, and the shared LLC sees both.
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    StreamParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    p1.records = p2.records = 80000;
    VectorTrace a = genStream(p1), b = genStream(p2);
    sys.setTrace(0, &a);
    sys.setTrace(1, &b);
    sys.run(30000);
    EXPECT_GT(sys.l1d(0).stats().loadAccess, 1000u);
    EXPECT_GT(sys.l1d(1).stats().loadAccess, 1000u);
    // The LLC sees both cores' L2 demand misses.
    uint64_t l2_misses = sys.l2(0).stats().loadMiss
                         + sys.l2(1).stats().loadMiss;
    EXPECT_GE(sys.llc().stats().loadAccess, l2_misses / 2);
    EXPECT_GT(l2_misses, 0u);
}

} // namespace
} // namespace gaze
