/**
 * @file
 * Differential engine-equivalence suite: the executable contract that
 * every way of advancing time — polled, event, auto (adaptive
 * mid-run flipping), and multi-threaded slices — produces bitwise
 * identical architectural metrics, on randomized (workload,
 * prefetcher, cores, engine, threads) configurations, plus repeat-run
 * determinism. The polled engine is the reference; everything else is
 * compared against it field by field.
 *
 * The `*Deep*` cases are the long-haul variant of the same property
 * (more trials, bigger instruction budgets, all thread counts); CTest
 * registers them separately under the `slow` label while the rest of
 * the file gates tier-1. The tier-1 half also runs under the
 * `--sanitize=thread` gate, where the threaded trials double as a
 * data-race probe of the fork/join engine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

// Trace lengths (and therefore every pinned comparison) depend on the
// scale: pin it before anything queries simScale().
const bool kScalePinned = [] {
    setenv("GAZE_SIM_SCALE", "0.02", 1);
    return true;
}();

// ---- comparison helpers ---------------------------------------------

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *level, const std::string &ctx)
{
#define GAZE_EXPECT_FIELD(f) \
    EXPECT_EQ(a.f, b.f) << ctx << " " << level << " " #f
    GAZE_EXPECT_FIELD(loadAccess);
    GAZE_EXPECT_FIELD(loadHit);
    GAZE_EXPECT_FIELD(loadMiss);
    GAZE_EXPECT_FIELD(rfoAccess);
    GAZE_EXPECT_FIELD(rfoHit);
    GAZE_EXPECT_FIELD(rfoMiss);
    GAZE_EXPECT_FIELD(wbAccess);
    GAZE_EXPECT_FIELD(wbHit);
    GAZE_EXPECT_FIELD(wbMiss);
    GAZE_EXPECT_FIELD(pfIssued);
    GAZE_EXPECT_FIELD(pfDroppedFull);
    GAZE_EXPECT_FIELD(pfDroppedDup);
    GAZE_EXPECT_FIELD(pfDroppedHit);
    GAZE_EXPECT_FIELD(pfDroppedMshr);
    GAZE_EXPECT_FIELD(pfMshrWait);
    GAZE_EXPECT_FIELD(pfDemoted);
    GAZE_EXPECT_FIELD(pfFilled);
    GAZE_EXPECT_FIELD(pfUseful);
    GAZE_EXPECT_FIELD(pfUseless);
    GAZE_EXPECT_FIELD(pfLate);
    GAZE_EXPECT_FIELD(loadMissLate);
    GAZE_EXPECT_FIELD(rfoMissLate);
    GAZE_EXPECT_FIELD(mshrMerge);
    GAZE_EXPECT_FIELD(mshrFullStall);
    GAZE_EXPECT_FIELD(writebacksSent);
    GAZE_EXPECT_FIELD(demandMissLatencySum);
    GAZE_EXPECT_FIELD(demandMissLatencyCnt);
#undef GAZE_EXPECT_FIELD
}

void
expectBitIdentical(const RunResult &got, const RunResult &ref,
                   const std::string &ctx)
{
    ASSERT_EQ(got.cores.size(), ref.cores.size()) << ctx;
    for (size_t c = 0; c < got.cores.size(); ++c) {
        EXPECT_EQ(got.cores[c].instructions, ref.cores[c].instructions)
            << ctx << " core " << c;
        EXPECT_EQ(got.cores[c].cycles, ref.cores[c].cycles)
            << ctx << " core " << c;
    }
    expectSameCacheStats(got.l1d, ref.l1d, "l1d", ctx);
    expectSameCacheStats(got.l2, ref.l2, "l2", ctx);
    expectSameCacheStats(got.llc, ref.llc, "llc", ctx);
    // Per-scheme attribution is part of the architectural contract.
    ASSERT_EQ(got.schemes.size(), ref.schemes.size()) << ctx;
    for (size_t i = 0; i < got.schemes.size(); ++i) {
        const SchemeCount &gs = got.schemes[i];
        const SchemeCount &rs = ref.schemes[i];
        EXPECT_EQ(gs.name, rs.name) << ctx << " scheme " << i;
        EXPECT_EQ(gs.issued, rs.issued) << ctx << " " << rs.name;
        EXPECT_EQ(gs.filled, rs.filled) << ctx << " " << rs.name;
        EXPECT_EQ(gs.useful, rs.useful) << ctx << " " << rs.name;
        EXPECT_EQ(gs.late, rs.late) << ctx << " " << rs.name;
        EXPECT_EQ(gs.useless, rs.useless) << ctx << " " << rs.name;
        EXPECT_EQ(gs.fillToUseSum, rs.fillToUseSum)
            << ctx << " " << rs.name;
        EXPECT_EQ(gs.fillToUseCnt, rs.fillToUseCnt)
            << ctx << " " << rs.name;
    }
    EXPECT_EQ(got.dram.reads, ref.dram.reads) << ctx;
    EXPECT_EQ(got.dram.writes, ref.dram.writes) << ctx;
    EXPECT_EQ(got.dram.rowHits, ref.dram.rowHits) << ctx;
    EXPECT_EQ(got.dram.rowMisses, ref.dram.rowMisses) << ctx;
    EXPECT_EQ(got.dram.busBusyCycles, ref.dram.busBusyCycles) << ctx;
    EXPECT_EQ(got.dram.readLatencySum, ref.dram.readLatencySum) << ctx;
    // Exact double equality is intended: same arithmetic, same order.
    EXPECT_EQ(got.ipc(), ref.ipc()) << ctx;
    // Every engine simulates the same number of cycles overall, and
    // its speed counters must at least be self-consistent.
    EXPECT_EQ(got.engine.cyclesTotal, ref.engine.cyclesTotal) << ctx;
    EXPECT_EQ(got.engine.cyclesExecuted + got.engine.cyclesSkipped,
              got.engine.cyclesTotal)
        << ctx;
}

// ---- randomized configurations --------------------------------------

const std::vector<std::string> kWorkloadPool = {
    "leslie3d", "fotonik3d_s", "BFS-17", "canneal", "mcf",
    "classification-p2c0",
};

const std::vector<std::string> kPrefetcherPool = {
    "", "gaze", "ip_stride", "sms", "dspatch",
};

/** One randomly drawn differential trial. */
struct DiffCase
{
    std::vector<WorkloadDef> mix;
    PfSpec pf;
    uint64_t warmup = 0;
    uint64_t sim = 0;
    std::string label;
};

DiffCase
randomCase(Rng &rng, uint32_t max_cores, uint64_t warmup, uint64_t sim)
{
    DiffCase d;
    // Core counts that keep the scaled LLC's set count a power of two.
    static const uint32_t kCoreChoices[] = {1, 2, 4};
    uint32_t cores;
    do {
        cores = kCoreChoices[rng.below(3)];
    } while (cores > max_cores);
    for (uint32_t c = 0; c < cores; ++c) {
        size_t wi = size_t(rng.below(kWorkloadPool.size()));
        d.mix.push_back(findWorkload(kWorkloadPool[wi]));
        d.label += (c ? "+" : "") + kWorkloadPool[wi];
    }
    d.pf.l1 = kPrefetcherPool[size_t(rng.below(kPrefetcherPool.size()))];
    d.label += " l1=" + (d.pf.l1.empty() ? "none" : d.pf.l1);
    // Occasionally stack an L2 prefetcher on top (multi-level config).
    if (rng.below(4) == 0) {
        d.pf.l2 = "gaze";
        d.label += " l2=gaze";
    }
    d.warmup = warmup;
    d.sim = sim;
    return d;
}

RunResult
runCase(const DiffCase &d, EngineKind kind, uint32_t threads)
{
    RunConfig cfg;
    cfg.warmupInstr = d.warmup;
    cfg.simInstr = d.sim;
    cfg.system.engine = kind;
    cfg.system.simThreads = threads;
    Runner r(cfg);
    return r.runMix(d.mix, d.pf);
}

std::string
variantName(EngineKind kind, uint32_t threads)
{
    std::string s = engineKindName(kind);
    if (threads > 1)
        s += "/t" + std::to_string(threads);
    return s;
}

void
runDifferentialTrials(Rng &rng, int trials, uint32_t max_cores,
                      uint64_t warmup, uint64_t sim,
                      const std::vector<std::pair<EngineKind, uint32_t>>
                          &variants)
{
    for (int t = 0; t < trials; ++t) {
        DiffCase d = randomCase(rng, max_cores, warmup, sim);
        RunResult ref = runCase(d, EngineKind::Polled, 1);
        ASSERT_GT(ref.instructionsRetired, 0u) << d.label;
        for (auto [kind, threads] : variants) {
            RunResult got = runCase(d, kind, threads);
            expectBitIdentical(got, ref,
                               "trial " + std::to_string(t) + " ["
                                   + d.label + "] "
                                   + variantName(kind, threads)
                                   + " vs polled");
        }
    }
}

// ---- tier-1: the differential property ------------------------------

TEST(EngineDiff, RandomConfigsAllEnginesMatchPolledBitwise)
{
    EXPECT_TRUE(kScalePinned);
    Rng rng(0xd1f5eed1);
    runDifferentialTrials(rng, /*trials=*/5, /*max_cores=*/2,
                          /*warmup=*/1000, /*sim=*/4000,
                          {{EngineKind::Event, 1},
                           {EngineKind::Auto, 1},
                           {EngineKind::Event, 4}});
}

TEST(EngineDiff, AutoEngineFlipsOnDenseWorkloadAndStaysIdentical)
{
    EXPECT_TRUE(kScalePinned);
    // leslie3d streams densely (near-zero skip): the auto engine must
    // actually take its polled path here, or this test is vacuous.
    DiffCase d;
    d.mix = {findWorkload("leslie3d")};
    d.pf.l1 = "gaze";
    d.warmup = 2000;
    d.sim = 8000;
    d.label = "leslie3d dense";
    RunResult ref = runCase(d, EngineKind::Polled, 1);
    RunResult got = runCase(d, EngineKind::Auto, 1);
    expectBitIdentical(got, ref, d.label);
    EXPECT_GT(got.engine.engineFlips, 0u)
        << "auto engine never flipped on a dense workload";
    EXPECT_GT(got.engine.polledCycles, 0u);
}

TEST(EngineDiff, AutoEngineStaysEventOnIdleWorkloadAndStaysIdentical)
{
    EXPECT_TRUE(kScalePinned);
    // canneal is a dependent-load chain: almost every cycle skippable,
    // so the auto engine should never leave event dispatch.
    DiffCase d;
    d.mix = {findWorkload("canneal")};
    d.warmup = 2000;
    d.sim = 8000;
    d.label = "canneal idle";
    RunResult ref = runCase(d, EngineKind::Polled, 1);
    RunResult got = runCase(d, EngineKind::Auto, 1);
    expectBitIdentical(got, ref, d.label);
    EXPECT_EQ(got.engine.engineFlips, 0u);
    EXPECT_GT(got.engine.cyclesSkipped, got.engine.cyclesTotal / 2);
}

TEST(EngineDiff, ThreadedFourCoreMixMatchesEveryEngine)
{
    EXPECT_TRUE(kScalePinned);
    DiffCase d;
    d.mix = {findWorkload("canneal"), findWorkload("mcf"),
             findWorkload("leslie3d"), findWorkload("BFS-17")};
    d.pf.l1 = "gaze";
    d.warmup = 500;
    d.sim = 1500;
    d.label = "4-core mix";
    RunResult ref = runCase(d, EngineKind::Polled, 1);
    for (auto [kind, threads] :
         std::vector<std::pair<EngineKind, uint32_t>>{
             {EngineKind::Event, 1},
             {EngineKind::Event, 4},
             {EngineKind::Polled, 4},
             {EngineKind::Auto, 4}}) {
        RunResult got = runCase(d, kind, threads);
        expectBitIdentical(got, ref,
                           d.label + " " + variantName(kind, threads));
    }
}

TEST(EngineDiff, RepeatRunsAreBitwiseDeterministic)
{
    EXPECT_TRUE(kScalePinned);
    // Fresh Runner per run: determinism must come from the simulation,
    // not shared state. The threaded repeat is the interesting one —
    // thread scheduling varies between runs, results must not.
    DiffCase d;
    d.mix = {findWorkload("mcf"), findWorkload("canneal")};
    d.pf.l1 = "gaze";
    d.warmup = 1000;
    d.sim = 4000;
    d.label = "repeat determinism";
    for (auto [kind, threads] :
         std::vector<std::pair<EngineKind, uint32_t>>{
             {EngineKind::Event, 4}, {EngineKind::Auto, 1}}) {
        RunResult a = runCase(d, kind, threads);
        RunResult b = runCase(d, kind, threads);
        expectBitIdentical(
            a, b, d.label + " " + variantName(kind, threads));
    }
}

TEST(EngineDiff, ThreadCountNeverChangesResults)
{
    EXPECT_TRUE(kScalePinned);
    // Different worker counts partition the slices differently;
    // metrics must not notice.
    DiffCase d;
    d.mix = {findWorkload("leslie3d"), findWorkload("canneal"),
             findWorkload("fotonik3d_s"), findWorkload("mcf")};
    d.pf.l1 = "ip_stride";
    d.warmup = 250;
    d.sim = 1000;
    d.label = "thread sweep";
    RunResult ref = runCase(d, EngineKind::Event, 1);
    // 3 on 4 cores is the uneven split; 8 exercises the clamp. The
    // full 2/3/4/8 sweep at bigger budgets lives in the Deep variant.
    for (uint32_t threads : {3u, 8u}) {
        RunResult got = runCase(d, EngineKind::Event, threads);
        expectBitIdentical(got, ref,
                           d.label + " t" + std::to_string(threads));
    }
}

// ---- observation must never perturb ---------------------------------

RunResult
runCaseObserved(const DiffCase &d, EngineKind kind, uint32_t threads,
                obs::TraceSink *sink, uint64_t interval)
{
    RunConfig cfg;
    cfg.warmupInstr = d.warmup;
    cfg.simInstr = d.sim;
    cfg.system.engine = kind;
    cfg.system.simThreads = threads;
    cfg.obs.trace = sink;
    cfg.obs.samplerInterval = interval;
    Runner r(cfg);
    return r.runMix(d.mix, d.pf);
}

TEST(EngineDiff, ObservationOnMatchesObservationOffBitwise)
{
    EXPECT_TRUE(kScalePinned);
    // The observability acceptance criterion: a run with the interval
    // sampler AND the trace sink attached must be bitwise identical to
    // the plain run, on every engine and thread count. The sampler's
    // lazy boundary emission and the sink's pure recording are exactly
    // what this pins.
    DiffCase d;
    d.mix = {findWorkload("mcf"), findWorkload("leslie3d")};
    d.pf.l1 = "gaze";
    d.warmup = 1000;
    d.sim = 4000;
    d.label = "obs on/off";
    for (auto [kind, threads] :
         std::vector<std::pair<EngineKind, uint32_t>>{
             {EngineKind::Polled, 1},
             {EngineKind::Polled, 4},
             {EngineKind::Event, 1},
             {EngineKind::Event, 4},
             {EngineKind::Auto, 1},
             {EngineKind::Auto, 4}}) {
        RunResult off = runCase(d, kind, threads);
        obs::TraceSink sink;
        RunResult on =
            runCaseObserved(d, kind, threads, &sink, /*interval=*/512);
        expectBitIdentical(on, off,
                           d.label + " "
                               + variantName(kind, threads));
#if GAZE_OBS_ON
        // The observed run must actually have observed something, or
        // the comparison above is vacuous.
        EXPECT_FALSE(on.obsSamples.empty())
            << variantName(kind, threads);
        EXPECT_GT(sink.eventCount(), 0u) << variantName(kind, threads);
#endif
    }
}

// ---- deep variant (slow label; excluded from tier-1) ----------------

TEST(EngineDiffDeep, ManyRandomConfigsAllEnginesMatchPolledBitwise)
{
    EXPECT_TRUE(kScalePinned);
    Rng rng(0xdeed1f);
    runDifferentialTrials(rng, /*trials=*/12, /*max_cores=*/4,
                          /*warmup=*/2000, /*sim=*/8000,
                          {{EngineKind::Event, 1},
                           {EngineKind::Auto, 1},
                           {EngineKind::Event, 2},
                           {EngineKind::Event, 3},
                           {EngineKind::Event, 4},
                           {EngineKind::Polled, 4},
                           {EngineKind::Auto, 4}});
}

} // namespace
} // namespace gaze
