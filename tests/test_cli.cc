/**
 * @file
 * Driver argument-parsing tests for both CLIs: happy-path expansion of
 * suites/workloads/prefetchers, and the fatal error paths — unknown
 * flags, bad suite/workload/prefetcher names, junk numeric values,
 * malformed --trace-dir — which must die with a diagnostic naming the
 * offending argument, never run a matrix.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "driver/cli.hh"
#include "tracing/trace_io.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

using Args = std::vector<std::string>;

// ---- gaze_sim: happy paths ------------------------------------------

TEST(GazeSimCli, DefaultsExpandMainSuites)
{
    GazeSimOptions opt = parseGazeSimArgs({});
    EXPECT_FALSE(opt.showHelp);
    EXPECT_FALSE(opt.showList);
    EXPECT_EQ(opt.spec.prefetchers,
              (std::vector<std::string>{"ip_stride", "gaze"}));
    EXPECT_EQ(opt.spec.level, "l1");
    EXPECT_EQ(opt.spec.cores, 1u);
    EXPECT_TRUE(opt.spec.traceDir.empty());

    size_t main_count = 0;
    for (const auto &s : mainSuites())
        main_count += suiteWorkloads(s).size();
    EXPECT_EQ(opt.spec.workloads.size(), main_count);
    for (const auto &w : opt.spec.workloads)
        EXPECT_TRUE(w.traceFile.empty());
}

TEST(GazeSimCli, ExplicitFlagsParse)
{
    GazeSimOptions opt = parseGazeSimArgs(
        {"--prefetchers=gaze,pmp", "--workloads=mcf,leslie3d",
         "--level=l2", "--cores=4", "--threads=8", "--warmup=1234",
         "--sim=5678", "--name=exp1", "--out=/tmp/x.json", "--quiet"});
    EXPECT_EQ(opt.spec.prefetchers,
              (std::vector<std::string>{"gaze", "pmp"}));
    ASSERT_EQ(opt.spec.workloads.size(), 2u);
    EXPECT_EQ(opt.spec.workloads[0].name, "mcf");
    EXPECT_EQ(opt.spec.workloads[1].name, "leslie3d");
    EXPECT_EQ(opt.spec.level, "l2");
    EXPECT_EQ(opt.spec.cores, 4u);
    EXPECT_EQ(opt.spec.threads, 8u);
    EXPECT_EQ(opt.spec.run.warmupInstr, 1234u);
    EXPECT_EQ(opt.spec.run.simInstr, 5678u);
    EXPECT_EQ(opt.spec.name, "exp1");
    EXPECT_EQ(opt.outPath, "/tmp/x.json");
    EXPECT_FALSE(opt.spec.verbose);
}

TEST(GazeSimCli, WorkloadsOverrideSuites)
{
    GazeSimOptions opt =
        parseGazeSimArgs({"--suites=ligra", "--workloads=mcf"});
    ASSERT_EQ(opt.spec.workloads.size(), 1u);
    EXPECT_EQ(opt.spec.workloads[0].name, "mcf");
}

TEST(GazeSimCli, HelpAndListShortCircuit)
{
    EXPECT_TRUE(parseGazeSimArgs({"--help"}).showHelp);
    EXPECT_TRUE(parseGazeSimArgs({"-h"}).showHelp);
    EXPECT_TRUE(parseGazeSimArgs({"--list"}).showList);
    // Junk after --help is never reached; parse returns early.
    EXPECT_TRUE(parseGazeSimArgs({"--help", "--bogus"}).showHelp);
}

TEST(GazeSimCli, TraceDirRebindsWorkloads)
{
    std::string dir = testing::TempDir() + "cli_traces";
    ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
    const WorkloadDef &w = findWorkload("mcf");
    VectorTrace trace = w.make();
    TraceWriter writer(dir + "/" + traceFileName("mcf"), "t");
    writer.appendAll(trace.data());
    writer.finish();

    GazeSimOptions opt = parseGazeSimArgs(
        {"--workloads=mcf", "--trace-dir=" + dir});
    EXPECT_EQ(opt.spec.traceDir, dir);
    ASSERT_EQ(opt.spec.workloads.size(), 1u);
    EXPECT_EQ(opt.spec.workloads[0].traceFile,
              dir + "/" + traceFileName("mcf"));
}

// ---- gaze_sim: fatal error paths ------------------------------------

TEST(GazeSimCli, ListPrefetchersShortCircuits)
{
    GazeSimOptions text = parseGazeSimArgs({"--list-prefetchers"});
    EXPECT_EQ(text.listPrefetchers,
              GazeSimOptions::ListPrefetchers::Text);
    GazeSimOptions json =
        parseGazeSimArgs({"--list-prefetchers=json"});
    EXPECT_EQ(json.listPrefetchers,
              GazeSimOptions::ListPrefetchers::Json);
}

TEST(GazeSimCli, PrefetchersCanonicalizeAndDedupe)
{
    // Aliases resolve, options sort, defaults elide — and two
    // spellings of the same variant collapse to one matrix row.
    GazeSimOptions opt = parseGazeSimArgs(
        {"--prefetchers=berti,gaze:region=2048:n=1,"
         "gaze:n=1:region=2048,gaze:region=4096",
         "--workloads=mcf"});
    EXPECT_EQ(opt.spec.prefetchers,
              (std::vector<std::string>{"vberti",
                                        "gaze:n=1:region=2048",
                                        "gaze"}));
}

TEST(GazeSimCliDeath, UnknownFlag)
{
    EXPECT_DEATH(parseGazeSimArgs({"--frobnicate"}),
                 "unknown option '--frobnicate'");
    EXPECT_DEATH(parseGazeSimArgs({"positional"}),
                 "unknown option 'positional'");
}

TEST(GazeSimCliDeath, BadWorkloadAndSuiteNames)
{
    EXPECT_DEATH(parseGazeSimArgs({"--workloads=not_a_workload"}),
                 "unknown workload 'not_a_workload'");
    EXPECT_DEATH(parseGazeSimArgs({"--suites=not_a_suite"}),
                 "unknown suite 'not_a_suite'");
    EXPECT_DEATH(parseGazeSimArgs({"--workloads="}),
                 "at least one name");
    EXPECT_DEATH(parseGazeSimArgs({"--suites="}),
                 "at least one suite");
}

TEST(GazeSimCliDeath, BadPrefetcherSpec)
{
    EXPECT_DEATH(parseGazeSimArgs({"--prefetchers=warp_drive"}),
                 "warp_drive");
    EXPECT_DEATH(parseGazeSimArgs({"--prefetchers="}),
                 "at least one spec");
    // Schema violations die at parse time with the offending spec.
    EXPECT_DEATH(parseGazeSimArgs({"--prefetchers=gaze:typo=1"}),
                 "unknown option 'typo'");
    EXPECT_DEATH(parseGazeSimArgs({"--prefetchers=gaze:n=abc"}),
                 "unsigned integer");
    EXPECT_DEATH(parseGazeSimArgs({"--list-prefetchers=yaml"}),
                 "--list-prefetchers takes no value or =json");
}

TEST(GazeSimCliDeath, BadNumbers)
{
    EXPECT_DEATH(parseGazeSimArgs({"--cores=zero"}),
                 "bad numeric value for --cores");
    EXPECT_DEATH(parseGazeSimArgs({"--cores=-1"}),
                 "bad numeric value for --cores");
    EXPECT_DEATH(parseGazeSimArgs({"--cores=10000"}),
                 "--cores out of range");
    EXPECT_DEATH(parseGazeSimArgs({"--warmup=1e9"}),
                 "bad numeric value for --warmup");
}

TEST(GazeSimCliDeath, MalformedTraceDir)
{
    EXPECT_DEATH(parseGazeSimArgs({"--trace-dir="}),
                 "--trace-dir needs a directory");
    // Missing directory: every workload must name its absent file and
    // the gaze_trace command that would create it.
    EXPECT_DEATH(
        parseGazeSimArgs(
            {"--workloads=mcf", "--trace-dir=/nonexistent_dir_xyz"}),
        "no usable trace");
    // A directory that exists but holds no .gzt for the workload.
    std::string empty_dir = testing::TempDir() + "cli_empty";
    ASSERT_EQ(std::system(("mkdir -p " + empty_dir).c_str()), 0);
    EXPECT_DEATH(parseGazeSimArgs({"--workloads=mcf",
                                   "--trace-dir=" + empty_dir}),
                 "gaze_trace record --workloads=mcf");
}

// ---- gaze_trace -----------------------------------------------------

TEST(GazeTraceCli, HelpByDefault)
{
    EXPECT_EQ(parseGazeTraceArgs({}).command,
              GazeTraceOptions::Command::Help);
    EXPECT_EQ(parseGazeTraceArgs({"--help"}).command,
              GazeTraceOptions::Command::Help);
    EXPECT_EQ(parseGazeTraceArgs({"help"}).command,
              GazeTraceOptions::Command::Help);
}

TEST(GazeTraceCli, RecordExpandsWorkloads)
{
    GazeTraceOptions opt = parseGazeTraceArgs(
        {"record", "--workloads=mcf,leslie3d", "--out-dir=/tmp/t"});
    EXPECT_EQ(opt.command, GazeTraceOptions::Command::Record);
    ASSERT_EQ(opt.workloads.size(), 2u);
    EXPECT_EQ(opt.workloads[0].name, "mcf");
    EXPECT_EQ(opt.outDir, "/tmp/t");

    GazeTraceOptions by_suite =
        parseGazeTraceArgs({"record", "--suites=parsec"});
    EXPECT_EQ(by_suite.workloads.size(),
              suiteWorkloads("parsec").size());
    EXPECT_EQ(by_suite.outDir, ".");

    // Default: one file per main-evaluation-suite workload.
    GazeTraceOptions all = parseGazeTraceArgs({"record"});
    size_t main_count = 0;
    for (const auto &s : mainSuites())
        main_count += suiteWorkloads(s).size();
    EXPECT_EQ(all.workloads.size(), main_count);
}

TEST(GazeTraceCli, InfoAndValidateCollectFiles)
{
    GazeTraceOptions info =
        parseGazeTraceArgs({"info", "a.gzt", "b.gzt"});
    EXPECT_EQ(info.command, GazeTraceOptions::Command::Info);
    EXPECT_EQ(info.files, (std::vector<std::string>{"a.gzt", "b.gzt"}));
    EXPECT_FALSE(info.jsonOutput);

    GazeTraceOptions val = parseGazeTraceArgs({"validate", "c.gzt"});
    EXPECT_EQ(val.command, GazeTraceOptions::Command::Validate);
    EXPECT_EQ(val.files, (std::vector<std::string>{"c.gzt"}));
}

TEST(GazeTraceCli, InfoJsonFlag)
{
    GazeTraceOptions info =
        parseGazeTraceArgs({"info", "--json", "a.gzt"});
    EXPECT_TRUE(info.jsonOutput);
    EXPECT_EQ(info.files, (std::vector<std::string>{"a.gzt"}));

    // --json is info-only; for validate it stays a flag typo.
    EXPECT_DEATH(parseGazeTraceArgs({"validate", "--json", "a.gzt"}),
                 "unknown validate option");
}

TEST(GazeTraceCliDeath, BadCommandsAndOperands)
{
    EXPECT_DEATH(parseGazeTraceArgs({"replay"}),
                 "unknown gaze_trace command 'replay'");
    EXPECT_DEATH(parseGazeTraceArgs({"record", "--bogus=1"}),
                 "unknown record option");
    EXPECT_DEATH(parseGazeTraceArgs({"record", "--out-dir="}),
                 "--out-dir needs a directory");
    EXPECT_DEATH(parseGazeTraceArgs({"record", "--workloads=nope"}),
                 "unknown workload 'nope'");
    EXPECT_DEATH(parseGazeTraceArgs({"info"}),
                 "needs at least one .gzt file");
    EXPECT_DEATH(parseGazeTraceArgs({"validate", "--bogus"}),
                 "unknown validate option");
    // Single-dash typos are flags, not file names.
    EXPECT_DEATH(parseGazeTraceArgs({"info", "-h"}),
                 "unknown info option '-h'");
}

// ---- gaze_campaign --------------------------------------------------

TEST(GazeCampaignCli, RunFlagsParse)
{
    GazeCampaignOptions opt = parseGazeCampaignArgs(
        {"run", "--spec=camp.json", "--cache-dir=/tmp/cc",
         "--shard=2/8", "--threads=4", "--out=r.json", "--csv=r.csv",
         "--compare=old.json", "--quiet"});
    EXPECT_EQ(opt.command, GazeCampaignOptions::Command::Run);
    EXPECT_EQ(opt.specPath, "camp.json");
    EXPECT_EQ(opt.cacheDir, "/tmp/cc");
    EXPECT_EQ(opt.shardIndex, 2u);
    EXPECT_EQ(opt.shardCount, 8u);
    EXPECT_EQ(opt.threads, 4u);
    EXPECT_EQ(opt.outPath, "r.json");
    EXPECT_EQ(opt.csvPath, "r.csv");
    EXPECT_EQ(opt.comparePath, "old.json");
    EXPECT_TRUE(opt.quiet);
}

TEST(GazeCampaignCli, DefaultsAndOtherCommands)
{
    GazeCampaignOptions report =
        parseGazeCampaignArgs({"report", "--spec=s.json"});
    EXPECT_EQ(report.command, GazeCampaignOptions::Command::Report);
    EXPECT_EQ(report.cacheDir, "campaign_cache");
    EXPECT_EQ(report.shardCount, 1u);
    EXPECT_FALSE(report.quiet);

    GazeCampaignOptions status =
        parseGazeCampaignArgs({"status", "--spec=s.json"});
    EXPECT_EQ(status.command, GazeCampaignOptions::Command::Status);

    EXPECT_EQ(parseGazeCampaignArgs({}).command,
              GazeCampaignOptions::Command::Help);
    EXPECT_EQ(parseGazeCampaignArgs({"--help"}).command,
              GazeCampaignOptions::Command::Help);
    EXPECT_EQ(parseGazeCampaignArgs({"run", "--help"}).command,
              GazeCampaignOptions::Command::Help);
}

TEST(GazeCampaignCli, DescribeNeedsNoSpec)
{
    GazeCampaignOptions text = parseGazeCampaignArgs({"describe"});
    EXPECT_EQ(text.command, GazeCampaignOptions::Command::Describe);
    EXPECT_FALSE(text.jsonOutput);

    GazeCampaignOptions json =
        parseGazeCampaignArgs({"describe", "--json"});
    EXPECT_EQ(json.command, GazeCampaignOptions::Command::Describe);
    EXPECT_TRUE(json.jsonOutput);

    EXPECT_EQ(parseGazeCampaignArgs({"describe", "--help"}).command,
              GazeCampaignOptions::Command::Help);
}

TEST(GazeCampaignCliDeath, BadFlags)
{
    EXPECT_DEATH(parseGazeCampaignArgs({"describe", "--spec=s.json"}),
                 "unknown describe option");
    EXPECT_DEATH(parseGazeCampaignArgs({"launch"}),
                 "unknown gaze_campaign command 'launch'");
    EXPECT_DEATH(parseGazeCampaignArgs({"run"}),
                 "needs --spec=FILE");
    EXPECT_DEATH(parseGazeCampaignArgs({"run", "--spec="}),
                 "--spec needs a file path");
    EXPECT_DEATH(
        parseGazeCampaignArgs({"run", "--spec=s", "--shard=3"}),
        "--shard must look like I/N");
    EXPECT_DEATH(
        parseGazeCampaignArgs({"run", "--spec=s", "--shard=4/4"}),
        "out of range");
    EXPECT_DEATH(
        parseGazeCampaignArgs({"run", "--spec=s", "--shard=a/b"}),
        "bad numeric value");
    EXPECT_DEATH(
        parseGazeCampaignArgs({"report", "--spec=s", "--shard=0/2"}),
        "--shard only applies");
    EXPECT_DEATH(
        parseGazeCampaignArgs({"run", "--spec=s", "--frobnicate"}),
        "unknown option");
}

} // namespace
} // namespace gaze
