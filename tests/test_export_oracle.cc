/**
 * @file
 * Tests for the CSV result export and the Oracle vBerti variant
 * (§IV-B3's redundant-prefetch study).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "harness/export.hh"
#include "harness/runner.hh"
#include "prefetchers/berti.hh"
#include "prefetchers/factory.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

TEST(CsvExport, RendersEscapedCsv)
{
    CsvExport csv("unit");
    csv.header({"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "with,comma"});
    csv.row({"3", "with\"quote"});
    std::string s = csv.toCsv();
    EXPECT_EQ(s,
              "a,b\n"
              "1,plain\n"
              "2,\"with,comma\"\n"
              "3,\"with\"\"quote\"\n");
}

TEST(CsvExport, DisabledWithoutEnv)
{
    unsetenv("GAZE_RESULTS_DIR");
    CsvExport csv("unit2");
    csv.header({"x"});
    csv.row({"1"});
    EXPECT_FALSE(CsvExport::enabled());
    EXPECT_TRUE(csv.write().empty());
}

TEST(CsvExport, WritesFileWhenEnabled)
{
    setenv("GAZE_RESULTS_DIR", "/tmp", 1);
    CsvExport csv("gaze_export_test");
    csv.header({"x", "y"});
    csv.row({"1", "2"});
    std::string path = csv.write();
    ASSERT_EQ(path, "/tmp/gaze_export_test.csv");
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    unsetenv("GAZE_RESULTS_DIR");
    std::remove(path.c_str());
}

TEST(CsvExportDeath, RowWidthMismatch)
{
    CsvExport csv("unit3");
    csv.header({"a", "b"});
    EXPECT_DEATH(csv.row({"only"}), "width mismatch");
}

// ------------------------------------------------------- oracle vberti

TEST(OracleBerti, FactorySpecParses)
{
    auto pf = makePrefetcher("vberti:oracle");
    ASSERT_NE(pf, nullptr);
    EXPECT_EQ(pf->name(), "oracle_vberti");
    EXPECT_EQ(makePrefetcher("vberti")->name(), "vberti");
}

TEST(OracleBerti, SuppressesRedundantPrefetches)
{
    // On a stream, plain vBerti re-proposes resident blocks; the
    // oracle filter removes them before they reach the PQ.
    RunConfig cfg;
    cfg.warmupInstr = 50000;
    cfg.simInstr = 100000;
    Runner runner(cfg);
    WorkloadDef w{"oracle-stream", "test", [] {
                      StreamParams p;
                      p.seed = 71;
                      p.records = 250000;
                      return genStream(p);
                  }};
    RunResult plain = runner.run(w, PfSpec{"vberti"});
    RunResult oracle = runner.run(w, PfSpec{"vberti:oracle"});

    double plain_red = plain.l1d.pfIssued
                           ? double(plain.l1d.pfDroppedHit)
                                 / plain.l1d.pfIssued
                           : 0.0;
    double oracle_red = oracle.l1d.pfIssued
                            ? double(oracle.l1d.pfDroppedHit)
                                  / oracle.l1d.pfIssued
                            : 0.0;
    EXPECT_LT(oracle_red, plain_red);

    // The PQ slots freed let at least as many real prefetches fill.
    EXPECT_GE(oracle.l1d.pfFilled + oracle.l2.pfFilled + 50,
              plain.l1d.pfFilled + plain.l2.pfFilled);
}

} // namespace
} // namespace gaze
