/**
 * @file
 * Behavioral tests of the Gaze prefetcher against the paper's §III
 * mechanisms: FT one-bit filtering, FT->AT promotion on the second
 * access, strict (trigger, second) matching, the two-stage streaming
 * aggressiveness, the region-local stride backup/promotion, eviction-
 * driven deactivation, and the Table I storage budget.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gaze.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::CapturingPrefetcher;
using test::drain;
using test::load;

class GazeTest : public ::testing::Test
{
  protected:
    void
    build(GazeConfig cfg = {})
    {
        pf = std::make_unique<CapturingPrefetcher<GazePrefetcher>>(cfg);
        pf->attachBare();
    }

    /** Access the blocks of @p region at the given offsets, in order. */
    void
    touch(Addr region, std::initializer_list<uint32_t> offsets,
          PC pc = 0x400100)
    {
        for (uint32_t off : offsets)
            pf->onAccess(load(region + Addr(off) * blockSize, pc));
    }

    /** Complete a region generation: touch, then deactivate. */
    void
    generation(Addr region, std::initializer_list<uint32_t> offsets,
               PC pc = 0x400100)
    {
        touch(region, offsets, pc);
        // Deactivate by evicting one of its demanded blocks.
        uint32_t first = *offsets.begin();
        pf->onEvict(region + Addr(first) * blockSize,
                    region + Addr(first) * blockSize);
    }

    std::vector<Addr>
    issuedOffsets(Addr region)
    {
        std::vector<Addr> out;
        for (const auto &p : pf->issued)
            if (regionBase(p.addr) == region)
                out.push_back(regionOffset(p.addr));
        std::sort(out.begin(), out.end());
        return out;
    }

    std::unique_ptr<CapturingPrefetcher<GazePrefetcher>> pf;
};

TEST_F(GazeTest, OneAccessRegionsStayInFilterTable)
{
    build();
    pf->onAccess(load(0x10000, 0x400100));
    EXPECT_EQ(pf->ftOccupancy(), 1u);
    EXPECT_EQ(pf->atOccupancy(), 0u);
    // Re-touching the same block does not promote.
    pf->onAccess(load(0x10008, 0x400100));
    EXPECT_EQ(pf->atOccupancy(), 0u);
}

TEST_F(GazeTest, SecondDistinctBlockPromotesToAt)
{
    build();
    pf->onAccess(load(0x10000 + 5 * 64, 0x400100));
    pf->onAccess(load(0x10000 + 9 * 64, 0x400100));
    EXPECT_EQ(pf->atOccupancy(), 1u);
    EXPECT_EQ(pf->ftOccupancy(), 0u);
    EXPECT_EQ(pf->counters().regionsActivated, 1u);
    EXPECT_EQ(pf->counters().predictions, 1u);
}

TEST_F(GazeTest, LearnsAndReplaysPattern)
{
    build();
    // Teach the pattern (5, 9) -> {5, 9, 12, 20, 33}.
    generation(0x100000, {5, 9, 12, 20, 33});
    EXPECT_EQ(pf->counters().learnedPht, 1u);

    // A new region with the same first two accesses replays it.
    touch(0x200000, {5, 9});
    drain(*pf);
    auto offs = issuedOffsets(0x200000);
    EXPECT_EQ(offs, (std::vector<Addr>{12, 20, 33}));
    // Already-demanded blocks (5, 9) are never prefetched.
}

TEST_F(GazeTest, StrictMatchingRejectsWrongSecond)
{
    build();
    generation(0x100000, {5, 9, 12, 20});
    uint64_t misses_before = pf->counters().phtMisses;
    touch(0x200000, {5, 10}); // trigger matches, second does not
    drain(*pf);
    EXPECT_TRUE(issuedOffsets(0x200000).empty());
    EXPECT_EQ(pf->counters().phtMisses, misses_before + 1);
}

TEST_F(GazeTest, StrictMatchingRejectsSwappedOrder)
{
    build();
    generation(0x100000, {5, 9, 12, 20});
    touch(0x200000, {9, 5}); // same footprint bits, wrong order
    drain(*pf);
    EXPECT_TRUE(issuedOffsets(0x200000).empty());
}

TEST_F(GazeTest, ConflictingTemplatesDisambiguatedBySecond)
{
    // The Fig. 2 experiment end to end: two templates share trigger 5.
    build();
    generation(0x100000, {5, 9, 12});
    generation(0x101000, {5, 30, 40});

    touch(0x200000, {5, 30});
    drain(*pf);
    EXPECT_EQ(issuedOffsets(0x200000), (std::vector<Addr>{40}));

    touch(0x201000, {5, 9});
    drain(*pf);
    EXPECT_EQ(issuedOffsets(0x201000), (std::vector<Addr>{12}));
}

TEST_F(GazeTest, PhtPatternsGoToL1)
{
    build();
    generation(0x100000, {5, 9, 12});
    touch(0x200000, {5, 9});
    drain(*pf);
    ASSERT_EQ(pf->issued.size(), 1u);
    EXPECT_EQ(pf->issued[0].fillLevel, uint32_t(levelL1));
    EXPECT_TRUE(pf->issued[0].virt);
}

// ------------------------------------------------------ streaming module

class GazeStreamingTest : public GazeTest
{
  protected:
    /** Run a fully dense streaming generation at @p region. */
    void
    denseGeneration(Addr region, PC pc)
    {
        std::vector<uint32_t> all(64);
        for (uint32_t i = 0; i < 64; ++i)
            all[i] = i;
        for (uint32_t off : all)
            pf->onAccess(load(region + Addr(off) * blockSize, pc));
        pf->onEvict(region, region);
    }
};

TEST_F(GazeStreamingTest, StreamingCaseBypassesPht)
{
    build();
    denseGeneration(0x100000, 0x400100);
    // Dense streaming regions are learned by DPCT/DC, not the PHT.
    EXPECT_EQ(pf->counters().learnedPht, 0u);
    EXPECT_EQ(pf->counters().learnedDense, 1u);
    EXPECT_TRUE(pf->streaming().isDensePc(hashPC(0x400100, 12)));
}

TEST_F(GazeStreamingTest, ColdStreamingRefrains)
{
    build();
    // First-ever (0,1) region: DPCT empty, DC zero -> no prefetch.
    touch(0x200000, {0, 1}, 0x777000);
    drain(*pf);
    EXPECT_TRUE(pf->issued.empty());
    EXPECT_EQ(pf->counters().streamNoPrefetch, 1u);
}

TEST_F(GazeStreamingTest, DensePcGetsModerateAggressiveness)
{
    build();
    denseGeneration(0x100000, 0x400100);

    touch(0x200000, {0, 1}, 0x400100);
    drain(*pf, 400);
    EXPECT_EQ(pf->counters().streamFullAggr, 1u);

    // Stage 1 "moderate": first 16 blocks to L1D, the rest to L2C.
    uint32_t l1 = 0, l2 = 0;
    for (const auto &p : pf->issued) {
        if (regionBase(p.addr) != 0x200000u)
            continue;
        uint32_t off = regionOffset(p.addr);
        if (p.fillLevel == levelL1) {
            ++l1;
            EXPECT_LT(off, 16u);
        } else {
            ++l2;
            EXPECT_GE(off, 16u);
        }
    }
    EXPECT_EQ(l1, 14u); // 16 minus the two demanded blocks
    EXPECT_EQ(l2, 48u);
}

TEST_F(GazeStreamingTest, HalfSaturatedCounterPrefetchesL2Only)
{
    build();
    // Three dense generations from pc A push DC to 3 (> 2, not full).
    denseGeneration(0x100000, 0x400100);
    denseGeneration(0x101000, 0x400100);
    denseGeneration(0x102000, 0x400100);
    ASSERT_EQ(pf->streaming().counterValue(), 3u);

    // A different PC (not in DPCT) with DC only half-saturated gets
    // the cautious tier: 16 blocks to L2C only.
    touch(0x200000, {0, 1}, 0x999000);
    drain(*pf, 400);
    EXPECT_EQ(pf->counters().streamHalfAggr, 1u);
    auto offs = issuedOffsets(0x200000);
    EXPECT_EQ(offs.size(), 14u);
    for (const auto &p : pf->issued)
        if (regionBase(p.addr) == 0x200000u)
            EXPECT_EQ(p.fillLevel, uint32_t(levelL2));
}

TEST_F(GazeStreamingTest, TruncatedStreamStillCountsAsDense)
{
    build();
    // A generation that streamed through 20 blocks before one of its
    // blocks was evicted (the common case under interleaved traffic):
    // the dense-prefix rule must still classify it as streaming.
    std::vector<uint32_t> prefix;
    for (uint32_t i = 0; i < 20; ++i)
        prefix.push_back(i);
    for (uint32_t off : prefix)
        pf->onAccess(load(0x100000 + Addr(off) * blockSize, 0x400100));
    pf->onEvict(0x100000, 0x100000);
    EXPECT_EQ(pf->counters().learnedDense, 1u);
    EXPECT_TRUE(pf->streaming().isDensePc(hashPC(0x400100, 12)));

    // But a short prefix (below the 16-block head) counts sparse.
    generation(0x200000, {0, 1, 2, 3}, 0x500200);
    EXPECT_EQ(pf->counters().learnedSparse, 1u);
}

TEST_F(GazeStreamingTest, SparseStreamingLookalikeDecrementsCounter)
{
    build();
    for (int i = 0; i < 7; ++i)
        denseGeneration(0x100000 + Addr(i) * 4096, 0x400100);
    EXPECT_TRUE(pf->streaming().counterFull());

    // A (0,1) region that ends sparse halves the DC.
    generation(0x300000, {0, 1, 2, 3}, 0x400100);
    EXPECT_EQ(pf->counters().learnedSparse, 1u);
    EXPECT_EQ(pf->streaming().counterValue(), 3u);
}

TEST_F(GazeStreamingTest, Stage2PromotesOnUnitStrides)
{
    build();
    denseGeneration(0x100000, 0x400100);
    // New streaming region; stage 1 fires, then three sequential
    // accesses confirm streaming and stage 2 promotes 4 blocks with
    // 2 skipped (offsets 5..8 after touching 0,1,2).
    touch(0x200000, {0, 1, 2}, 0x400100);
    EXPECT_GE(pf->counters().stridePromotions, 1u);
}

TEST_F(GazeStreamingTest, BackupStrideFiresAfterPhtMiss)
{
    build();
    // Unseen pattern (no streaming): strict match fails, stride flag
    // armed; three accesses with matching stride 3 trigger the
    // region-local stride prefetch of 4 blocks, 2 skipped.
    touch(0x200000, {10, 13, 16});
    EXPECT_EQ(pf->counters().phtMisses, 1u);
    EXPECT_EQ(pf->counters().stridePromotions, 1u);
    drain(*pf);
    auto offs = issuedOffsets(0x200000);
    // From offset 16, stride 3, skip 2: 16+3*3=25, 28, 31, 34.
    EXPECT_EQ(offs, (std::vector<Addr>{25, 28, 31, 34}));
}

TEST_F(GazeStreamingTest, BackupDisabledByConfig)
{
    GazeConfig cfg;
    cfg.enableBackupStride = false;
    build(cfg);
    touch(0x200000, {10, 13, 16});
    EXPECT_EQ(pf->counters().stridePromotions, 0u);
    drain(*pf);
    EXPECT_TRUE(pf->issued.empty());
}

// ----------------------------------------------------------- deactivation

TEST_F(GazeTest, EvictionOfDemandedBlockEndsGeneration)
{
    build();
    touch(0x100000, {5, 9, 12});
    EXPECT_EQ(pf->atOccupancy(), 1u);
    pf->onEvict(0x100000 + 5 * 64, 0x100000 + 5 * 64);
    EXPECT_EQ(pf->atOccupancy(), 0u);
    EXPECT_EQ(pf->counters().evictionDeactivations, 1u);
    EXPECT_EQ(pf->counters().learnedPht, 1u);
}

TEST_F(GazeTest, EvictionOfUntouchedBlockIsIgnored)
{
    build();
    touch(0x100000, {5, 9});
    pf->onEvict(0x100000 + 40 * 64, 0x100000 + 40 * 64);
    EXPECT_EQ(pf->atOccupancy(), 1u); // still tracking
    EXPECT_EQ(pf->counters().evictionDeactivations, 0u);
}

TEST_F(GazeTest, AtCapacityEvictionLearns)
{
    GazeConfig cfg;
    cfg.atSets = 1;
    cfg.atWays = 2;
    build(cfg);
    touch(0x100000, {5, 9, 12});
    touch(0x101000, {6, 8});
    touch(0x102000, {7, 11}); // evicts the 0x100000 entry (LRU)
    EXPECT_EQ(pf->atOccupancy(), 2u);
    EXPECT_EQ(pf->counters().learnedPht, 1u);

    // The evicted region's pattern is usable immediately.
    touch(0x200000, {5, 9});
    drain(*pf);
    EXPECT_EQ(issuedOffsets(0x200000), (std::vector<Addr>{12}));
}

// ------------------------------------------------------------- variants

TEST_F(GazeTest, FourAccessEventNeedsAllFour)
{
    GazeConfig cfg;
    cfg.numInitialAccesses = 4;
    cfg.phtSets = 1;
    cfg.phtWays = 256;
    build(cfg);
    generation(0x100000, {5, 9, 12, 20, 33});

    // Matching all four initial accesses replays the pattern.
    touch(0x200000, {5, 9, 12, 20});
    drain(*pf);
    EXPECT_EQ(issuedOffsets(0x200000), (std::vector<Addr>{33}));

    // Three matching + one different: strict miss.
    touch(0x300000, {5, 9, 12, 21});
    drain(*pf);
    EXPECT_TRUE(issuedOffsets(0x300000).empty());
}

TEST_F(GazeTest, RegionSize2KHasThirtyTwoOffsets)
{
    GazeConfig cfg;
    cfg.regionSize = 2048;
    cfg.phtSets = 32;
    build(cfg);
    // Offsets are modulo 32 now: block 40 of the 4KB page is offset 8
    // of the second 2KB region.
    generation(0x100000, {5, 9, 12});
    touch(0x200000, {5, 9});
    drain(*pf);
    auto offs = issuedOffsets(0x200000); // region base = 0x200000
    // regionBase() in issuedOffsets assumes 4KB; recompute manually.
    std::vector<Addr> got;
    for (const auto &p : pf->issued)
        got.push_back(regionOffset(p.addr, 2048));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 12u);
    (void)offs;
}

TEST_F(GazeTest, LooseMatchingUsesApproxLookup)
{
    GazeConfig cfg;
    cfg.strictMatch = false;
    build(cfg);
    generation(0x100000, {5, 9, 12});
    touch(0x200000, {5, 21}); // wrong second: approx still predicts
    drain(*pf);
    EXPECT_EQ(issuedOffsets(0x200000), (std::vector<Addr>{9, 12}));
}

TEST_F(GazeTest, StreamingRegionsOnlyIgnoresNormalPatterns)
{
    GazeConfig cfg;
    cfg.streamingRegionsOnly = true;
    build(cfg);
    generation(0x100000, {5, 9, 12});
    EXPECT_EQ(pf->counters().learnedPht, 0u);
    touch(0x200000, {5, 9});
    drain(*pf);
    EXPECT_TRUE(pf->issued.empty());
}

TEST_F(GazeTest, Pht4ssLearnsDensePatternsInPht)
{
    GazeConfig cfg;
    cfg.streamingViaPht = true;
    cfg.streamingRegionsOnly = true;
    build(cfg);
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i < 64; ++i)
        all.push_back(i);
    for (uint32_t off : all)
        pf->onAccess(load(0x100000 + Addr(off) * blockSize, 0x400100));
    pf->onEvict(0x100000, 0x100000);
    EXPECT_EQ(pf->counters().learnedPht, 1u);
    EXPECT_EQ(pf->counters().learnedDense, 0u);

    touch(0x200000, {0, 1}, 0x400100);
    drain(*pf, 400);
    // PHT4SS blasts the whole dense pattern into L1.
    auto offs = issuedOffsets(0x200000);
    EXPECT_EQ(offs.size(), 62u);
    for (const auto &p : pf->issued)
        if (regionBase(p.addr) == 0x200000u)
            EXPECT_EQ(p.fillLevel, uint32_t(levelL1));
}

TEST_F(GazeTest, StorageBudgetMatchesTableI)
{
    build();
    // Table I total: 4.46KB. Field-exact model: FT 456B + AT 1120B +
    // PHT 2304B + DPCT 15.375B + PB 668B ~ 4.46KB (the paper rounds
    // the AT line to 1128B).
    double kib = double(pf->storageBits()) / 8.0 / 1024.0;
    EXPECT_NEAR(kib, 4.46, 0.05);
}

TEST_F(GazeTest, TrainsOnlyOnLoads)
{
    build();
    DemandAccess a = load(0x100000, 0x400100);
    a.type = AccessType::Rfo;
    pf->onAccess(a);
    EXPECT_EQ(pf->ftOccupancy(), 0u);
}

} // namespace
} // namespace gaze
