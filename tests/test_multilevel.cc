/**
 * @file
 * Multi-level hierarchy regression tests on a mini L1->L2->memory
 * stack. These pin down the subtle request-plumbing behaviours the
 * paper's experiments depend on (and that were the hardest bugs to
 * find during development):
 *
 *  - prefetch usefulness is attributed at the *target* fill level only;
 *  - an L2-targeted prefetch never allocates in the L1;
 *  - a prefetch request carrying an upper cache's MSHR must be
 *    answered even when the lower cache drops it (tag hit) — dropping
 *    silently leaks the upper MSHR and eventually wedges the core;
 *  - a demand merging into an in-flight lower-level prefetch upgrades
 *    its fill level so the data still reaches the L1;
 *  - an L1-fill prefetch that finds all L1 MSHRs busy is demoted to
 *    an L2 fill instead of clogging the PQ.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::FakeMemory;
using test::FakeReceiver;

class MultiLevelTest : public ::testing::Test
{
  protected:
    MultiLevelTest()
        : mem(&clock, /*latency=*/120)
    {
        CacheParams l2p;
        l2p.name = "L2-test";
        l2p.level = levelL2;
        l2p.sets = 64;
        l2p.ways = 4;
        l2p.latency = 10;
        l2p.mshrs = 8;
        l2p.pqSize = 8;
        l2 = std::make_unique<Cache>(l2p, &mem, &clock);

        CacheParams l1p;
        l1p.name = "L1-test";
        l1p.level = levelL1;
        l1p.sets = 16;
        l1p.ways = 2;
        l1p.latency = 4;
        l1p.mshrs = 4;
        l1p.pqSize = 8;
        l1 = std::make_unique<Cache>(l1p, l2.get(), &clock);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            l1->tick();
            l2->tick();
            mem.tick();
            ++clock;
        }
    }

    Request
    demand(Addr a, uint64_t token = 0)
    {
        Request r;
        r.paddr = a;
        r.vaddr = a;
        r.pc = 0x400000;
        r.type = AccessType::Load;
        r.fillLevel = levelL1;
        r.requester = &rx;
        r.token = token;
        r.issueCycle = clock;
        return r;
    }

    Cycle clock = 0;
    FakeMemory mem;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> l1;
    FakeReceiver rx;
};

TEST_F(MultiLevelTest, DemandFillsEveryLevelOnPath)
{
    l1->sendRequest(demand(0x10000));
    run(200);
    EXPECT_TRUE(l1->present(0x10000));
    EXPECT_TRUE(l2->present(0x10000));
    EXPECT_EQ(rx.fills.size(), 1u);
}

TEST_F(MultiLevelTest, L2TargetPrefetchFillsL2Only)
{
    ASSERT_TRUE(l1->issuePrefetch(0x20000, levelL2, false, 0));
    run(200);
    EXPECT_FALSE(l1->present(0x20000));
    EXPECT_TRUE(l2->present(0x20000));
    // Attribution: the pf bit lives at the target level only.
    EXPECT_EQ(l1->stats().pfFilled, 0u);
    EXPECT_EQ(l2->stats().pfFilled, 1u);
}

TEST_F(MultiLevelTest, L1TargetPrefetchDoesNotAttributeAtL2)
{
    ASSERT_TRUE(l1->issuePrefetch(0x30000, levelL1, false, 0));
    run(200);
    EXPECT_TRUE(l1->present(0x30000));
    EXPECT_TRUE(l2->present(0x30000)); // fills on the path...
    EXPECT_EQ(l1->stats().pfFilled, 1u);
    EXPECT_EQ(l2->stats().pfFilled, 0u); // ...without the pf bit
}

TEST_F(MultiLevelTest, LateDemandOnL2PrefetchStillReachesL1)
{
    // Prefetch to L2 in flight; a demand for the same block must
    // merge below and still fill the L1 for the core.
    l1->issuePrefetch(0x40000, levelL2, false, 0);
    run(15); // L2 MSHR allocated, memory not yet answered
    l1->sendRequest(demand(0x40000));
    run(250);
    ASSERT_EQ(rx.fills.size(), 1u);
    EXPECT_TRUE(l1->present(0x40000));
    EXPECT_EQ(l2->stats().pfLate, 1u);
}

TEST_F(MultiLevelTest, DroppedPrefetchWithRequesterIsAnswered)
{
    // Regression for the MSHR-leak wedge: warm the block into L2
    // only, then send an L1-*fill* prefetch. L1 allocates an MSHR and
    // forwards; L2 hits and must RESPOND (not silently drop), or the
    // L1 MSHR leaks forever.
    l1->issuePrefetch(0x50000, levelL2, false, 0);
    run(250);
    ASSERT_TRUE(l2->present(0x50000));
    ASSERT_FALSE(l1->present(0x50000));

    ASSERT_TRUE(l1->issuePrefetch(0x50000, levelL1, false, 0));
    run(100);
    EXPECT_TRUE(l1->present(0x50000));
    EXPECT_EQ(l1->mshrOccupancy(), 0u); // nothing leaked
}

TEST_F(MultiLevelTest, MshrFullDemotesL1PrefetchToL2)
{
    // Fill all 4 L1 MSHRs with demand misses, then issue an L1-fill
    // prefetch: it must demote (fetch to L2) rather than clog or die.
    mem.rejectReads = false;
    for (int i = 0; i < 4; ++i)
        l1->sendRequest(demand(0x60000 + i * 64, i));
    run(2);
    ASSERT_EQ(l1->mshrOccupancy(), 4u);
    ASSERT_TRUE(l1->issuePrefetch(0x70000, levelL1, false, 0));
    run(4);
    EXPECT_EQ(l1->stats().pfDemoted, 1u);
    run(250);
    EXPECT_TRUE(l2->present(0x70000));
    EXPECT_FALSE(l1->present(0x70000));
}

TEST_F(MultiLevelTest, WritebackCascadesThroughHierarchy)
{
    // Dirty a block at L1, evict it through both levels, and verify
    // the data reaches memory as a writeback.
    Request st = demand(0x80000);
    st.type = AccessType::Rfo;
    l1->sendRequest(st);
    run(200);

    // L1: 16 sets x 2 ways; same-set stride is 16*64 = 0x400.
    l1->sendRequest(demand(0x80000 + 0x400, 1));
    l1->sendRequest(demand(0x80000 + 0x800, 2));
    run(300);
    ASSERT_FALSE(l1->present(0x80000));
    // The dirty line landed in the L2 via writeback.
    EXPECT_TRUE(l2->present(0x80000));
    EXPECT_EQ(l2->stats().wbAccess, 1u);
}

TEST_F(MultiLevelTest, DuplicatePqTargetsAreDeduped)
{
    ASSERT_TRUE(l1->issuePrefetch(0x90000, levelL1, false, 0));
    ASSERT_TRUE(l1->issuePrefetch(0x90000 + 8, levelL1, false, 0));
    EXPECT_EQ(l1->stats().pfIssued, 1u);
    EXPECT_EQ(l1->stats().pfDroppedDup, 1u);
}

} // namespace
} // namespace gaze
