/**
 * @file
 * Harness tests: the §IV-A3 metric formulas on synthetic run results,
 * geometric-mean aggregation, table formatting, baseline memoization
 * in the Runner, and the Table I / Table IV storage model.
 */

#include <gtest/gtest.h>

#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "harness/storage_model.hh"
#include "harness/table.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

RunResult
makeResult(double ipc, uint64_t llc_miss)
{
    RunResult r;
    CoreResult c;
    c.instructions = 1000000;
    c.cycles = static_cast<uint64_t>(1000000 / ipc);
    r.cores.push_back(c);
    r.llc.loadMiss = llc_miss;
    return r;
}

TEST(Metrics, SpeedupFromIpcRatio)
{
    RunResult base = makeResult(1.0, 1000);
    RunResult pf = makeResult(1.3, 700);
    PrefetchMetrics m = computeMetrics(base, pf);
    EXPECT_NEAR(m.speedup, 1.3, 0.01);
}

TEST(Metrics, AccuracyCountsBothLevelsAndLate)
{
    RunResult base = makeResult(1.0, 1000);
    RunResult pf = makeResult(1.2, 600);
    // na=60 useful of nb-implied 100 fills at L1; ma=30 of 50 at L2;
    // 10 late ones count as useful too.
    pf.l1d.pfFilled = 100;
    pf.l1d.pfUseful = 60;
    pf.l1d.pfLate = 10;
    pf.l2.pfFilled = 50;
    pf.l2.pfUseful = 30;
    PrefetchMetrics m = computeMetrics(base, pf);
    // (60+30+10) / (100+50+10)
    EXPECT_NEAR(m.accuracy, 100.0 / 160.0, 1e-9);
}

TEST(Metrics, CoverageIsLlcMissReduction)
{
    RunResult base = makeResult(1.0, 1000);
    RunResult pf = makeResult(1.2, 400);
    PrefetchMetrics m = computeMetrics(base, pf);
    EXPECT_NEAR(m.coverage, 0.6, 1e-9);
}

TEST(Metrics, CoverageClampsWhenMissesIncrease)
{
    RunResult base = makeResult(1.0, 1000);
    RunResult pf = makeResult(0.9, 1500); // pollution
    PrefetchMetrics m = computeMetrics(base, pf);
    EXPECT_DOUBLE_EQ(m.coverage, 0.0);
}

TEST(Metrics, LateFraction)
{
    RunResult base = makeResult(1.0, 1000);
    RunResult pf = makeResult(1.1, 800);
    pf.l1d.pfUseful = 90;
    pf.l1d.pfLate = 10;
    PrefetchMetrics m = computeMetrics(base, pf);
    EXPECT_NEAR(m.lateFraction, 0.1, 1e-9);
}

TEST(Metrics, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({1.2}), 1.2, 1e-9);
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-9);
}

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "speedup"});
    t.addRow({"gaze", "1.277"});
    t.addRow({"pmp", "1.150"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("gaze"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    // Columns aligned: "1.277" and "1.150" start at the same column.
    size_t l1 = s.find("1.277");
    size_t l2 = s.find("1.150");
    size_t col1 = l1 - s.rfind('\n', l1) - 1;
    size_t col2 = l2 - s.rfind('\n', l2) - 1;
    EXPECT_EQ(col1, col2);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.567, 1), "56.7%");
}

TEST(TableDeath, RowWidthMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

// ----------------------------------------------------------- storage

TEST(StorageModel, TableITotalsMatchPaper)
{
    auto rows = gazeStorageBreakdown();
    ASSERT_EQ(rows.size(), 5u);
    double total_kib = 0;
    for (const auto &r : rows)
        total_kib += r.kib();
    EXPECT_NEAR(total_kib, 4.46, 0.05);

    // Spot-check the paper's per-structure bytes.
    EXPECT_EQ(rows[0].structure, "FT");
    EXPECT_EQ(rows[0].bits / 8, 456u);
    EXPECT_EQ(rows[2].structure, "PHT");
    EXPECT_EQ(rows[2].bits / 8, 2304u);
    EXPECT_EQ(rows[4].structure, "PB");
    EXPECT_EQ(rows[4].bits / 8, 668u);
}

TEST(StorageModel, SchemeOrderingMatchesTableIV)
{
    auto rows = evaluatedSchemeStorage();
    ASSERT_GE(rows.size(), 8u);
    double gaze_kib = 0, bingo_kib = 0, ipcp_kib = 0;
    for (const auto &r : rows) {
        if (r.scheme == "gaze")
            gaze_kib = r.kib();
        if (r.scheme == "bingo")
            bingo_kib = r.kib();
        if (r.scheme == "ipcp")
            ipcp_kib = r.kib();
    }
    // The paper's headline: Gaze is ~31x below Bingo.
    EXPECT_GT(bingo_kib / gaze_kib, 20.0);
    EXPECT_LT(ipcp_kib, gaze_kib);
}

// ------------------------------------------------------------- runner

TEST(Runner, BaselineIsMemoized)
{
    RunConfig cfg;
    cfg.warmupInstr = 5000;
    cfg.simInstr = 15000;
    Runner runner(cfg);

    int built = 0;
    WorkloadDef w{"tiny-stream", "test", [&built] {
                      ++built;
                      StreamParams p;
                      p.records = 60000;
                      return genStream(p);
                  }};
    RunResult a = runner.baseline(w);
    RunResult b = runner.baseline(w);
    EXPECT_EQ(built, 1); // the second ask came from the memo
    EXPECT_GT(a.ipc(), 0.0);
    EXPECT_EQ(a.instructionsRetired, b.instructionsRetired);
    EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
}

TEST(Runner, EvaluateProducesSaneMetrics)
{
    RunConfig cfg;
    cfg.warmupInstr = 8000;
    cfg.simInstr = 25000;
    Runner runner(cfg);

    WorkloadDef w{"tiny-stream2", "test", [] {
                      StreamParams p;
                      p.seed = 9;
                      p.records = 80000;
                      return genStream(p);
                  }};
    PrefetchMetrics m = runner.evaluate(w, PfSpec{"gaze"});
    EXPECT_GT(m.speedup, 1.0);
    EXPECT_GT(m.accuracy, 0.5);
    EXPECT_LE(m.accuracy, 1.0);
    EXPECT_GE(m.coverage, 0.0);
    EXPECT_LE(m.coverage, 1.0);
    EXPECT_GT(m.pfFilled, 0u);
}

TEST(Runner, MixEvaluationRuns)
{
    RunConfig cfg;
    cfg.warmupInstr = 4000;
    cfg.simInstr = 10000;
    Runner runner(cfg);

    WorkloadDef w1{"mix-a", "test", [] {
                       StreamParams p;
                       p.seed = 1;
                       p.records = 50000;
                       return genStream(p);
                   }};
    WorkloadDef w2{"mix-b", "test", [] {
                       StreamParams p;
                       p.seed = 2;
                       p.records = 50000;
                       return genStream(p);
                   }};
    PrefetchMetrics m = runner.evaluateMix({w1, w2}, PfSpec{"ip_stride"});
    EXPECT_GT(m.speedup, 0.5);
    EXPECT_LT(m.speedup, 4.0);
}

TEST(Runner, PfSpecLabels)
{
    EXPECT_EQ(PfSpec{"gaze"}.label(), "gaze");
    EXPECT_EQ((PfSpec{"gaze", "bingo"}).label(), "gaze+bingo");
    EXPECT_TRUE(PfSpec{}.isNone());
}

TEST(Runner, SuiteSummaryAggregates)
{
    RunConfig cfg;
    cfg.warmupInstr = 4000;
    cfg.simInstr = 10000;
    Runner runner(cfg);

    std::vector<WorkloadDef> suite;
    for (uint64_t s = 1; s <= 2; ++s)
        suite.push_back({"s" + std::to_string(s), "test", [s] {
                             StreamParams p;
                             p.seed = s;
                             p.records = 40000;
                             return genStream(p);
                         }});
    SuiteSummary sum = evaluateSuite(runner, suite, PfSpec{"gaze"});
    EXPECT_GT(sum.speedup, 0.9);
    EXPECT_GE(sum.accuracy, 0.0);
}

} // namespace
} // namespace gaze
