/**
 * @file
 * Prefetch Buffer tests: install/merge semantics, demand cancellation,
 * forward-first issue order, rate limiting, and Table I storage.
 */

#include <gtest/gtest.h>

#include "prefetchers/prefetch_buffer.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

PfPattern
emptyPattern(uint32_t blocks = 64)
{
    return PfPattern(blocks, PfLevel::None);
}

struct Collector
{
    std::vector<test::IssuedPf> out;
    bool accept = true;

    bool
    operator()(Addr a, uint32_t fill, bool virt)
    {
        if (!accept)
            return false;
        out.push_back({a, fill, virt});
        return true;
    }
};

TEST(MergePfLevel, StrongerLevelWins)
{
    EXPECT_EQ(mergePfLevel(PfLevel::None, PfLevel::L2), PfLevel::L2);
    EXPECT_EQ(mergePfLevel(PfLevel::L2, PfLevel::None), PfLevel::L2);
    EXPECT_EQ(mergePfLevel(PfLevel::L1, PfLevel::L2), PfLevel::L1);
    EXPECT_EQ(mergePfLevel(PfLevel::L2, PfLevel::L1), PfLevel::L1);
    EXPECT_EQ(mergePfLevel(PfLevel::None, PfLevel::None), PfLevel::None);
}

TEST(PrefetchBuffer, InstallAndDrainAll)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    PfPattern pat = emptyPattern();
    pat[3] = PfLevel::L1;
    pat[10] = PfLevel::L2;
    pb.install(0x10000, pat, 0);
    EXPECT_EQ(pb.pendingCount(), 2u);

    Collector c;
    for (int i = 0; i < 10; ++i)
        pb.drain(c);
    ASSERT_EQ(c.out.size(), 2u);
    EXPECT_EQ(pb.pendingCount(), 0u);
    EXPECT_EQ(c.out[0].addr, 0x10000u + 3 * 64);
    EXPECT_EQ(c.out[0].fillLevel, 1u);
    EXPECT_EQ(c.out[1].addr, 0x10000u + 10 * 64);
    EXPECT_EQ(c.out[1].fillLevel, 2u);
}

TEST(PrefetchBuffer, RateLimitPerDrain)
{
    PrefetchBufferParams p;
    p.issuePerCycle = 2;
    PrefetchBuffer pb(p);
    PfPattern pat = emptyPattern();
    for (int i = 0; i < 10; ++i)
        pat[i] = PfLevel::L1;
    pb.install(0x20000, pat, 0);

    Collector c;
    EXPECT_EQ(pb.drain(c), 2u);
    EXPECT_EQ(c.out.size(), 2u);
    EXPECT_EQ(pb.pendingCount(), 8u);
}

TEST(PrefetchBuffer, ForwardFirstFromStartOffset)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    PfPattern pat = emptyPattern();
    pat[2] = PfLevel::L1;
    pat[30] = PfLevel::L1;
    pat[62] = PfLevel::L1;
    pb.install(0x30000, pat, 29); // issue order: 30, 62, wrap to 2

    Collector c;
    for (int i = 0; i < 5; ++i)
        pb.drain(c);
    ASSERT_EQ(c.out.size(), 3u);
    EXPECT_EQ(c.out[0].addr, 0x30000u + 30 * 64);
    EXPECT_EQ(c.out[1].addr, 0x30000u + 62 * 64);
    EXPECT_EQ(c.out[2].addr, 0x30000u + 2 * 64);
}

TEST(PrefetchBuffer, DemandCancelsPending)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    PfPattern pat = emptyPattern();
    pat[5] = PfLevel::L1;
    pat[6] = PfLevel::L1;
    pb.install(0x40000, pat, 0);
    pb.onDemand(0x40000, 5);
    EXPECT_EQ(pb.pendingCount(), 1u);

    Collector c;
    for (int i = 0; i < 5; ++i)
        pb.drain(c);
    ASSERT_EQ(c.out.size(), 1u);
    EXPECT_EQ(c.out[0].addr, 0x40000u + 6 * 64);
}

TEST(PrefetchBuffer, MergePromotesLevels)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    PfPattern first = emptyPattern();
    first[8] = PfLevel::L2;
    pb.install(0x50000, first, 0);

    PfPattern promo = emptyPattern();
    promo[8] = PfLevel::L1; // stage-2 promotion
    promo[9] = PfLevel::L1; // new pending bit
    pb.install(0x50000, promo, 0);
    EXPECT_EQ(pb.pendingCount(), 2u);

    Collector c;
    for (int i = 0; i < 5; ++i)
        pb.drain(c);
    ASSERT_EQ(c.out.size(), 2u);
    EXPECT_EQ(c.out[0].fillLevel, 1u); // upgraded to L1
    EXPECT_EQ(c.out[1].fillLevel, 1u);
}

TEST(PrefetchBuffer, RejectedIssueStaysPending)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    PfPattern pat = emptyPattern();
    pat[1] = PfLevel::L1;
    pb.install(0x60000, pat, 0);

    Collector c;
    c.accept = false;
    EXPECT_EQ(pb.drain(c), 0u);
    EXPECT_EQ(pb.pendingCount(), 1u);
    c.accept = true;
    EXPECT_EQ(pb.drain(c), 1u);
}

TEST(PrefetchBuffer, EmptyPatternIsNotStored)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    pb.install(0x70000, emptyPattern(), 0);
    EXPECT_EQ(pb.pendingCount(), 0u);
    Collector c;
    EXPECT_EQ(pb.drain(c), 0u);
}

TEST(PrefetchBuffer, VirtualFlagPropagates)
{
    PrefetchBufferParams p;
    p.virtualSpace = false;
    PrefetchBuffer pb(p);
    PfPattern pat = emptyPattern();
    pat[0] = PfLevel::L1;
    pb.install(0x80000, pat, 0);
    Collector c;
    pb.drain(c);
    ASSERT_EQ(c.out.size(), 1u);
    EXPECT_FALSE(c.out[0].virt);
}

TEST(PrefetchBuffer, SmallRegionGeometry)
{
    PrefetchBufferParams p;
    p.blocksPerRegion = 8; // 512B regions
    PrefetchBuffer pb(p);
    PfPattern pat(8, PfLevel::None);
    pat[7] = PfLevel::L1;
    pb.install(0x1000, pat, 0);
    Collector c;
    pb.drain(c);
    ASSERT_EQ(c.out.size(), 1u);
    EXPECT_EQ(c.out[0].addr, 0x1000u + 7 * 64);
}

TEST(PrefetchBuffer, StorageBitsMatchesTableI)
{
    PrefetchBuffer pb(PrefetchBufferParams{});
    // Table I: PB = 32 x (36 tag + 3 LRU + 64x2 pattern) = 668 bytes.
    EXPECT_EQ(pb.storageBits(), 32u * (36 + 3 + 128));
    EXPECT_EQ(pb.storageBits() / 8, 668u);
}

TEST(PrefetchBuffer, CapacityEvictionDropsOldRegion)
{
    PrefetchBufferParams p;
    p.entries = 8;
    p.ways = 8; // fully associative, 8 regions max
    PrefetchBuffer pb(p);
    for (int r = 0; r < 9; ++r) {
        PfPattern pat = emptyPattern();
        pat[0] = PfLevel::L1;
        pb.install(0x100000 + Addr(r) * 4096, pat, 0);
    }
    // Oldest region's entry was evicted; at most 8 remain pending.
    EXPECT_LE(pb.pendingCount(), 8u);
}

} // namespace
} // namespace gaze
