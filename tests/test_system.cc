/**
 * @file
 * Whole-system integration tests: end-to-end simulations on small
 * traces, multi-core construction, warmup/reset semantics, prefetcher
 * attachment at both levels, and basic sanity of the paper's system-
 * level behaviours (prefetching helps streams; multi-core contention
 * lowers per-core IPC).
 */

#include <gtest/gtest.h>

#include "prefetchers/factory.hh"
#include "sim/system.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

VectorTrace
smallStream(uint64_t seed = 1, uint64_t records = 120000)
{
    StreamParams p;
    p.seed = seed;
    p.records = records;
    p.streams = 2;
    return genStream(p);
}

TEST(System, BuildsTableIIGeometry)
{
    SystemConfig cfg;
    System sys(cfg);
    EXPECT_EQ(sys.l1d(0).params().sets, 64u);   // 48KB / 12 ways
    EXPECT_EQ(sys.l1d(0).params().ways, 12u);
    EXPECT_EQ(sys.l2(0).params().sets, 1024u);  // 512KB / 8 ways
    EXPECT_EQ(sys.llc().params().sets, 2048u);  // 2MB / 16 ways
    EXPECT_EQ(sys.dram().params().channels, 1u);
}

TEST(System, LlcAndDramScaleWithCores)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys(cfg);
    EXPECT_EQ(sys.llc().params().sets, 8192u); // 8MB shared
    EXPECT_EQ(sys.dram().params().channels, 2u);
    EXPECT_EQ(sys.dram().params().ranksPerChannel, 2u);
}

TEST(System, RunsAndRetires)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorTrace t = smallStream();
    sys.setTrace(0, &t);
    sys.run(20000);
    EXPECT_GE(sys.core(0).retired(), 20000u);
    EXPECT_GT(sys.cycle(), 5000u);
    EXPECT_GT(sys.l1d(0).stats().loadAccess, 1000u);
    EXPECT_GT(sys.dram().stats().reads, 100u);
}

TEST(System, ResetStatsClearsCounters)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorTrace t = smallStream();
    sys.setTrace(0, &t);
    sys.run(20000);
    sys.resetStats();
    EXPECT_EQ(sys.l1d(0).stats().loadAccess, 0u);
    EXPECT_EQ(sys.dram().stats().reads, 0u);
    EXPECT_EQ(sys.core(0).stats().instructions, 0u);
    // retired() is cumulative (not a statistic).
    EXPECT_GE(sys.core(0).retired(), 20000u);
}

TEST(System, SimulateReportsPerCoreIpc)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorTrace t = smallStream();
    sys.setTrace(0, &t);
    sys.run(10000);
    sys.resetStats();
    auto res = sys.simulate(30000);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_GE(res[0].instructions, 30000u);
    EXPECT_GT(res[0].ipc(), 0.05);
    EXPECT_LT(res[0].ipc(), 4.01);
}

TEST(System, PrefetchingImprovesStreaming)
{
    VectorTrace t1 = smallStream(7);
    VectorTrace t2 = smallStream(7);

    SystemConfig cfg;
    System base(cfg);
    base.setTrace(0, &t1);
    base.run(10000);
    base.resetStats();
    double ipc_base = base.simulate(40000)[0].ipc();

    System with_pf(cfg);
    with_pf.setTrace(0, &t2);
    with_pf.setL1Prefetcher(0, makePrefetcher("gaze"));
    with_pf.run(10000);
    with_pf.resetStats();
    double ipc_pf = with_pf.simulate(40000)[0].ipc();

    EXPECT_GT(ipc_pf, ipc_base * 1.2);
    EXPECT_GT(with_pf.l1d(0).stats().pfIssued
                  + with_pf.l2(0).stats().pfIssued,
              100u);
}

TEST(System, L2AttachedPrefetcherOperates)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorTrace t = smallStream();
    sys.setTrace(0, &t);
    // No L1 prefetcher: the L2 sees the full L1 miss stream (one
    // sequential block per 8 element accesses) and trains on it.
    sys.setL2Prefetcher(0, makePrefetcher("spp"));
    sys.run(40000);
    EXPECT_GT(sys.l2(0).stats().pfIssued, 0u);
}

TEST(System, MultiCoreContentionLowersPerCoreIpc)
{
    VectorTrace solo = smallStream(3);
    SystemConfig cfg1;
    System one(cfg1);
    one.setTrace(0, &solo);
    one.run(5000);
    one.resetStats();
    double ipc1 = one.simulate(25000)[0].ipc();

    SystemConfig cfg4;
    cfg4.numCores = 4;
    // Force single-channel DRAM so contention is visible.
    cfg4.dramAuto = false;
    cfg4.dram.channels = 1;
    System four(cfg4);
    std::vector<VectorTrace> traces;
    for (int i = 0; i < 4; ++i)
        traces.push_back(smallStream(3));
    for (int i = 0; i < 4; ++i)
        four.setTrace(i, &traces[i]);
    four.run(5000);
    four.resetStats();
    auto res = four.simulate(25000);
    double avg = 0;
    for (const auto &r : res)
        avg += r.ipc();
    avg /= 4;
    EXPECT_LT(avg, ipc1 * 0.9);
}

TEST(System, HomogeneousCoresProgressTogether)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    VectorTrace a = smallStream(5);
    VectorTrace b = smallStream(5);
    sys.setTrace(0, &a);
    sys.setTrace(1, &b);
    sys.run(5000);
    sys.resetStats();
    auto res = sys.simulate(20000);
    // Same trace, same hardware: finishing cycles within 25%.
    double ratio = double(res[0].cycles) / double(res[1].cycles);
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.33);
}

TEST(System, DistinctPrefetchersPerCore)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    VectorTrace a = smallStream(5);
    VectorTrace b = smallStream(6);
    sys.setTrace(0, &a);
    sys.setTrace(1, &b);
    sys.setL1Prefetcher(0, makePrefetcher("gaze"));
    // Core 1 runs without a prefetcher.
    sys.run(30000);
    EXPECT_GT(sys.l1d(0).stats().pfIssued, 0u);
    EXPECT_EQ(sys.l1d(1).stats().pfIssued, 0u);
}

TEST(System, WritebackTrafficReachesDram)
{
    StreamParams p;
    p.records = 150000;
    p.storeFraction = 0.5;
    VectorTrace t = genStream(p);
    // Shrink the hierarchy so dirty lines cascade out to DRAM within
    // the test's instruction budget.
    SystemConfig cfg;
    cfg.l1dBytes = 8 * 1024;
    cfg.l1dWays = 8;
    cfg.l2Bytes = 16 * 1024;
    cfg.llcBytesPerCore = 32 * 1024;
    System sys(cfg);
    sys.setTrace(0, &t);
    sys.run(60000);
    EXPECT_GT(sys.dram().stats().writes, 50u);
}

} // namespace
} // namespace gaze
