/**
 * @file
 * Geometry-validation tests: every set-indexed structure masks the key
 * with `sets - 1`, so a non-power-of-two set count must die loudly at
 * construction instead of silently aliasing during sensitivity sweeps.
 */

#include <gtest/gtest.h>

#include "common/lru_table.hh"
#include "core/gaze.hh"
#include "core/gaze_config.hh"
#include "sim/cache.hh"
#include "sim/system.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

TEST(LruTableGeometry, PowerOfTwoSetsConstruct)
{
    for (size_t sets : {1u, 2u, 4u, 64u, 1024u}) {
        LruTable<int> t(sets, 4);
        EXPECT_EQ(t.sets(), sets);
    }
}

TEST(LruTableGeometryDeath, NonPowerOfTwoSetsPanic)
{
    EXPECT_DEATH(LruTable<int>(3, 2), "power of two");
    EXPECT_DEATH(LruTable<int>(24, 1), "power of two");
    EXPECT_DEATH(LruTable<int>(0, 4), "power of two");
}

TEST(LruTableGeometryDeath, ZeroWaysPanics)
{
    EXPECT_DEATH(LruTable<int>(4, 0), "bad geometry");
}

TEST(CacheGeometryDeath, NonPowerOfTwoSetsPanic)
{
    Cycle clock = 0;
    test::FakeMemory mem(&clock);
    CacheParams p;
    p.sets = 48; // 48KB/12-way/64B would give 64 sets; 48 is a typo'd
                 // sweep value that used to alias via the index mask
    EXPECT_DEATH(Cache(p, &mem, &clock), "power of two");
}

TEST(CacheGeometryDeath, DegenerateWaysOrMshrsPanic)
{
    Cycle clock = 0;
    test::FakeMemory mem(&clock);
    CacheParams ways = {};
    ways.ways = 0;
    EXPECT_DEATH(Cache(ways, &mem, &clock), "at least one way");
    CacheParams mshrs = {};
    mshrs.mshrs = 0;
    EXPECT_DEATH(Cache(mshrs, &mem, &clock), "at least one MSHR");
}

TEST(SystemConfigDeath, UnknownReplacementPolicyDiesEagerly)
{
    // The bad string must die at System construction — before any
    // cache exists, naming the offender and the alternatives (the
    // registry's unknown-scheme diagnostics, mirrored).
    SystemConfig cfg;
    cfg.replacement = "plru";
    EXPECT_DEATH(System{cfg},
                 "unknown replacement policy 'plru'.*lru, srrip, "
                 "random");
}

TEST(SystemConfigValidation, KnownReplacementPoliciesConstruct)
{
    for (const auto &name : knownReplacementPolicies()) {
        SystemConfig cfg;
        cfg.replacement = name;
        System sys(cfg);
        EXPECT_EQ(sys.config().replacement, name);
    }
}

TEST(GazeConfigValidation, PaperDefaultsAreValid)
{
    GazeConfig cfg;
    cfg.validate(); // must not die
    GazePrefetcher pf(cfg);
    EXPECT_EQ(pf.name(), "gaze");
}

TEST(GazeConfigValidation, SweepGeometriesAreValid)
{
    for (uint32_t pht_sets : {16u, 32u, 64u, 128u, 256u}) {
        GazeConfig cfg;
        cfg.phtSets = pht_sets;
        cfg.validate();
    }
    for (uint64_t region : {2048ull, 4096ull, 8192ull}) {
        GazeConfig cfg;
        cfg.regionSize = region;
        cfg.validate();
    }
}

TEST(GazeConfigValidationDeath, BadTableGeometryPanics)
{
    GazeConfig ft;
    ft.ftSets = 12;
    EXPECT_DEATH(ft.validate(), "ftSets");

    GazeConfig at;
    at.atSets = 6;
    EXPECT_DEATH(at.validate(), "atSets");

    GazeConfig pht;
    pht.phtSets = 48;
    EXPECT_DEATH(pht.validate(), "phtSets");

    GazeConfig region;
    region.regionSize = 3000;
    EXPECT_DEATH(region.validate(), "regionSize");
}

TEST(GazeConfigValidationDeath, BadPrefetchBufferGeometryPanics)
{
    // 30 entries / 8 ways does not divide evenly.
    GazeConfig ragged;
    ragged.pbEntries = 30;
    EXPECT_DEATH(ragged.validate(), "PB geometry");

    // 24/8 divides, but three sets cannot be mask-indexed.
    GazeConfig non_pow2;
    non_pow2.pbEntries = 24;
    EXPECT_DEATH(non_pow2.validate(), "PB geometry");
}

TEST(GazeConfigValidationDeath, BadInitialAccessCountPanics)
{
    GazeConfig cfg;
    cfg.numInitialAccesses = 0;
    EXPECT_DEATH(cfg.validate(), "numInitialAccesses");
    cfg.numInitialAccesses = 5;
    EXPECT_DEATH(cfg.validate(), "numInitialAccesses");
}

TEST(GazeConfigValidationDeath, ConstructionDiesOnBadGeometry)
{
    GazeConfig cfg;
    cfg.phtSets = 48;
    EXPECT_DEATH(GazePrefetcher{cfg}, "phtSets");
}

} // namespace
} // namespace gaze
