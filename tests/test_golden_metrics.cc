/**
 * @file
 * Golden-metrics regression suite. Records a small fixed-seed trace
 * for one workload per main-evaluation suite, replays each through
 * gaze plus two baseline prefetchers, and pins
 * speedup/accuracy/coverage/IPC against checked-in golden values so a
 * refactor cannot silently shift results. Also asserts the core
 * acceptance property of the trace subsystem: a recorded replay
 * produces metrics IDENTICAL (bitwise) to the in-memory generator run
 * it was recorded from.
 *
 * The simulation scale is pinned via GAZE_SIM_SCALE before any
 * registry call, so the goldens are independent of the environment.
 * To regenerate after an intentional behavior change, run this binary
 * and copy the "golden table" block it prints on failure.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "harness/runner.hh"
#include "obs/obs.hh"
#include "tracing/trace_io.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

// Pin the scale before anything in this process can call simScale():
// golden values depend on trace lengths. 0.02 keeps every trace at
// the 10-12k record floor, small enough for a tier-1 test.
const bool kScalePinned = [] {
    setenv("GAZE_SIM_SCALE", "0.02", 1);
    return true;
}();

/** One workload per main suite (kScalePinned keeps them small). */
const std::vector<std::string> &
goldenWorkloads()
{
    static const std::vector<std::string> names = {
        "leslie3d",    // spec06: dense streaming
        "fotonik3d_s", // spec17: recurring footprints w/ conflicts
        "BFS-17",      // ligra: graph compute (frontier + gathers)
        "canneal",     // parsec: pointer chasing
        "classification-p2c0", // cloud: irregular, code-correlated
    };
    return names;
}

/** gaze + two baselines, as the satellite task specifies. */
const std::vector<std::string> &
goldenPrefetchers()
{
    static const std::vector<std::string> names = {"gaze", "ip_stride",
                                                   "sms"};
    return names;
}

RunConfig
goldenConfig()
{
    RunConfig cfg;
    cfg.warmupInstr = 2000;
    cfg.simInstr = 8000;
    return cfg;
}

/** Record every golden workload into @p dir; returns file-backed defs. */
std::vector<WorkloadDef>
recordGoldenTraces(const std::string &dir)
{
    EXPECT_TRUE(kScalePinned);
    std::vector<WorkloadDef> defs;
    for (const auto &name : goldenWorkloads())
        defs.push_back(findWorkload(name));
    for (const auto &w : defs) {
        std::string path = dir + "/" + traceFileName(w.name);
        VectorTrace trace = w.make();
        TraceWriter writer(path, "workload=" + w.name);
        writer.appendAll(trace.data());
        writer.finish();
    }
    return withTraceDir(defs, dir);
}

std::string
goldenDir()
{
    std::string dir = testing::TempDir() + "golden_traces";
    [[maybe_unused]] int rc = std::system(("mkdir -p " + dir).c_str());
    return dir;
}

// ---- golden values --------------------------------------------------

struct Golden
{
    const char *workload;
    const char *prefetcher;
    double speedup;
    double accuracy;
    double coverage;
    double ipc;
};

// Regenerate by running this test binary and copying the printed
// table. Values are deterministic (fixed seeds, fixed scale); the
// tolerances below only absorb cross-toolchain floating-point drift.
const Golden kGolden[] = {
    {"leslie3d", "gaze", 1.027240, 1.000000, 0.048193, 0.798244},
    {"leslie3d", "ip_stride", 1.877279, 0.881720, 0.987952, 1.458789},
    {"leslie3d", "sms", 1.000000, 0.000000, 0.000000, 0.777076},
    {"fotonik3d_s", "gaze", 1.052457, 0.907143, 0.470149, 0.491642},
    {"fotonik3d_s", "ip_stride", 1.000000, 0.000000, 0.000000,
     0.467138},
    {"fotonik3d_s", "sms", 0.935583, 0.509579, 0.244403, 0.437046},
    {"BFS-17", "gaze", 1.026827, 0.250000, 0.035237, 0.197036},
    {"BFS-17", "ip_stride", 1.021896, 0.607843, 0.041920, 0.196089},
    {"BFS-17", "sms", 0.969513, 0.049123, 0.013973, 0.186038},
    {"canneal", "gaze", 1.000000, 0.000000, 0.000000, 0.030865},
    {"canneal", "ip_stride", 1.000000, 0.000000, 0.000000, 0.030865},
    {"canneal", "sms", 0.998667, 0.000000, 0.000000, 0.030824},
    {"classification-p2c0", "gaze", 1.003975, 0.809524, 0.114478,
     0.757312},
    {"classification-p2c0", "ip_stride", 1.000000, 0.000000, 0.000000,
     0.754313},
    {"classification-p2c0", "sms", 1.000000, 0.000000, 0.000000,
     0.754313},
};

constexpr double kRelTol = 0.02;  ///< speedup/ipc: 2% relative
constexpr double kAbsTol = 0.02;  ///< accuracy/coverage: absolute

TEST(GoldenMetrics, RecordedTracesPinResults)
{
    std::vector<WorkloadDef> defs = recordGoldenTraces(goldenDir());
    Runner runner(goldenConfig());

    // Measure everything first so a failure prints the full
    // replacement table, not just the first bad cell.
    struct Row
    {
        std::string workload, prefetcher;
        PrefetchMetrics m;
        double ipc;
    };
    std::vector<Row> rows;
    for (const auto &w : defs) {
        for (const auto &pf_name : goldenPrefetchers()) {
            PfSpec pf;
            pf.l1 = pf_name;
            Row r;
            r.workload = w.name;
            r.prefetcher = pf_name;
            const RunResult &base = runner.baseline(w);
            RunResult res = runner.run(w, pf);
            r.m = computeMetrics(base, res);
            r.ipc = res.ipc();
            rows.push_back(std::move(r));
        }
    }

    ASSERT_EQ(rows.size(), std::size(kGolden));
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const Golden &g = kGolden[i];
        ASSERT_EQ(r.workload, g.workload) << "table order drifted";
        ASSERT_EQ(r.prefetcher, g.prefetcher) << "table order drifted";

        EXPECT_NEAR(r.m.speedup, g.speedup, g.speedup * kRelTol)
            << r.workload << " x " << r.prefetcher;
        EXPECT_NEAR(r.m.accuracy, g.accuracy, kAbsTol)
            << r.workload << " x " << r.prefetcher;
        EXPECT_NEAR(r.m.coverage, g.coverage, kAbsTol)
            << r.workload << " x " << r.prefetcher;
        EXPECT_NEAR(r.ipc, g.ipc, g.ipc * kRelTol)
            << r.workload << " x " << r.prefetcher;
    }

    if (testing::Test::HasNonfatalFailure()) {
        std::printf("// golden table (paste into kGolden):\n");
        for (const auto &r : rows)
            std::printf("    {\"%s\", \"%s\", %.6f, %.6f, %.6f, "
                        "%.6f},\n",
                        r.workload.c_str(), r.prefetcher.c_str(),
                        r.m.speedup, r.m.accuracy, r.m.coverage, r.ipc);
    }
}

#if GAZE_OBS_ON
// ---- per-scheme attribution pins (obs lifecycle tentpole) -----------

struct SchemeGolden
{
    const char *workload;
    const char *prefetcher;
    uint64_t issued;
    uint64_t filled;
    uint64_t useful;
    uint64_t late;
    uint64_t useless;
};

// Regenerate by running this binary and copying the printed block.
// Lifecycle counts are integers out of a deterministic simulation, so
// they are pinned EXACTLY — any drift is a real behavior change in
// issue/fill/hit/evict attribution, not toolchain noise.
const SchemeGolden kSchemeGolden[] = {
    {"leslie3d", "gaze", 12, 10, 10, 2, 0},
    {"leslie3d", "ip_stride", 808, 115, 82, 164, 0},
    {"fotonik3d_s", "gaze", 289, 217, 191, 63, 0},
    {"fotonik3d_s", "ip_stride", 0, 0, 0, 0, 0},
};

TEST(GoldenMetrics, PerSchemeAttributionPinned)
{
    EXPECT_TRUE(kScalePinned);
    Runner runner(goldenConfig());

    struct Row
    {
        std::string workload, prefetcher;
        SchemeCount c;
    };
    std::vector<Row> rows;
    for (const char *wname : {"leslie3d", "fotonik3d_s"}) {
        WorkloadDef w = findWorkload(wname);
        for (const char *pf_name : {"gaze", "ip_stride"}) {
            PfSpec pf;
            pf.l1 = pf_name;
            RunResult res = runner.run(w, pf);
            ASSERT_EQ(res.schemes.size(), 1u)
                << wname << " x " << pf_name;
            Row r;
            r.workload = wname;
            r.prefetcher = pf_name;
            r.c = res.schemes[0];
            EXPECT_EQ(r.c.name, std::string(pf_name) + "@l1");
            rows.push_back(std::move(r));
        }
    }

    ASSERT_EQ(rows.size(), std::size(kSchemeGolden));
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const SchemeGolden &g = kSchemeGolden[i];
        ASSERT_EQ(r.workload, g.workload) << "table order drifted";
        ASSERT_EQ(r.prefetcher, g.prefetcher) << "table order drifted";
        const std::string ctx = r.workload + " x " + r.prefetcher;
        EXPECT_EQ(r.c.issued, g.issued) << ctx;
        EXPECT_EQ(r.c.filled, g.filled) << ctx;
        EXPECT_EQ(r.c.useful, g.useful) << ctx;
        EXPECT_EQ(r.c.late, g.late) << ctx;
        EXPECT_EQ(r.c.useless, g.useless) << ctx;
    }

    if (testing::Test::HasNonfatalFailure()) {
        std::printf("// scheme golden table (paste into "
                    "kSchemeGolden):\n");
        for (const auto &r : rows)
            std::printf("    {\"%s\", \"%s\", %llu, %llu, %llu, %llu, "
                        "%llu},\n",
                        r.workload.c_str(), r.prefetcher.c_str(),
                        (unsigned long long)r.c.issued,
                        (unsigned long long)r.c.filled,
                        (unsigned long long)r.c.useful,
                        (unsigned long long)r.c.late,
                        (unsigned long long)r.c.useless);
    }
}
#endif // GAZE_OBS_ON

// ---- multi-core mix pins, per engine --------------------------------

/**
 * A 2-core and a 4-core mix cell pinned the same way the single-core
 * table is: golden values recorded from the event engine, and every
 * other engine variant (polled, auto, threaded) required to reproduce
 * them BITWISE — the golden tolerance only absorbs toolchain drift of
 * the reference itself, never cross-engine drift.
 */
struct MixGolden
{
    const char *label;
    double speedup;
    double accuracy;
    double coverage;
    double ipc;
};

// Regenerate by running this binary and copying the printed block.
// The mixes were chosen for non-degenerate metrics at this scale:
// fotonik3d_s + classification-p2c0 keep missing (and being covered)
// in a mix, where most other pairings collapse to all-L1-hit cores
// whose cells pin nothing.
const MixGolden kMixGolden[] = {
    {"2core fotonik3d_s+classification-p2c0 x gaze", 1.068587,
     0.891441, 0.531579, 1.209264},
    {"4core fotonik3d_s+classification-p2c0+fotonik3d_s"
     "+classification-p2c0 x gaze",
     1.244091, 0.911495, 0.566257, 1.076669},
};

TEST(GoldenMetrics, MultiCoreMixCellsPinnedPerEngine)
{
    EXPECT_TRUE(kScalePinned);
    const std::vector<std::vector<std::string>> mixes = {
        {"fotonik3d_s", "classification-p2c0"},
        {"fotonik3d_s", "classification-p2c0", "fotonik3d_s",
         "classification-p2c0"},
    };
    PfSpec pf;
    pf.l1 = "gaze";

    struct Row
    {
        std::string label;
        PrefetchMetrics m;
        double ipc;
    };
    std::vector<Row> rows;
    for (size_t mi = 0; mi < mixes.size(); ++mi) {
        std::vector<WorkloadDef> mix;
        std::string label =
            std::to_string(mixes[mi].size()) + "core ";
        for (size_t i = 0; i < mixes[mi].size(); ++i) {
            mix.push_back(findWorkload(mixes[mi][i]));
            label += (i ? "+" : "") + mixes[mi][i];
        }
        label += " x gaze";

        // Reference: event engine, single-threaded. Budgets are 2x
        // the single-core ones: with per-core streams this small,
        // the shared LLC barely sees pressure and every metric
        // degenerates to its no-op value, pinning nothing.
        RunConfig cfg = goldenConfig();
        cfg.warmupInstr = 4000;
        cfg.simInstr = 16000;
        cfg.system.engine = EngineKind::Event;
        Runner runner(cfg);
        const RunResult &base = runner.baselineMix(mix);
        RunResult ref = runner.runMix(mix, pf);
        Row r;
        r.label = label;
        r.m = computeMetrics(base, ref);
        r.ipc = ref.ipc();
        rows.push_back(r);

        // Every other engine variant must reproduce the reference
        // cell bit for bit (same contract as test_engine_diff, here
        // pinned to the golden budgets).
        struct Variant
        {
            const char *name;
            EngineKind kind;
            uint32_t simThreads;
        };
        const Variant variants[] = {
            {"polled", EngineKind::Polled, 1},
            {"auto", EngineKind::Auto, 1},
            {"event+threads", EngineKind::Event,
             uint32_t(mix.size())},
        };
        for (const auto &v : variants) {
            RunConfig vcfg = cfg;
            vcfg.system.engine = v.kind;
            vcfg.system.simThreads = v.simThreads;
            Runner vrunner(vcfg);
            RunResult got = vrunner.runMix(mix, pf);
            EXPECT_EQ(ref.ipc(), got.ipc()) << label << " / " << v.name;
            ASSERT_EQ(ref.cores.size(), got.cores.size());
            for (size_t c = 0; c < ref.cores.size(); ++c) {
                EXPECT_EQ(ref.cores[c].instructions,
                          got.cores[c].instructions)
                    << label << " / " << v.name << " core " << c;
                EXPECT_EQ(ref.cores[c].cycles, got.cores[c].cycles)
                    << label << " / " << v.name << " core " << c;
            }
            EXPECT_EQ(ref.engine.cyclesTotal, got.engine.cyclesTotal)
                << label << " / " << v.name;
            EXPECT_EQ(ref.llc.loadMiss, got.llc.loadMiss)
                << label << " / " << v.name;
            EXPECT_EQ(ref.llc.rfoMiss, got.llc.rfoMiss)
                << label << " / " << v.name;
            EXPECT_EQ(ref.dram.reads, got.dram.reads)
                << label << " / " << v.name;
        }
    }

    ASSERT_EQ(rows.size(), std::size(kMixGolden));
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const MixGolden &g = kMixGolden[i];
        ASSERT_EQ(r.label, g.label) << "table order drifted";
        EXPECT_NEAR(r.m.speedup, g.speedup, g.speedup * kRelTol)
            << r.label;
        EXPECT_NEAR(r.m.accuracy, g.accuracy, kAbsTol) << r.label;
        EXPECT_NEAR(r.m.coverage, g.coverage, kAbsTol) << r.label;
        EXPECT_NEAR(r.ipc, g.ipc, g.ipc * kRelTol) << r.label;
    }

    if (testing::Test::HasNonfatalFailure()) {
        std::printf("// mix golden table (paste into kMixGolden):\n");
        for (const auto &r : rows)
            std::printf("    {\"%s\", %.6f, %.6f, %.6f, %.6f},\n",
                        r.label.c_str(), r.m.speedup, r.m.accuracy,
                        r.m.coverage, r.ipc);
    }
}

// ---- replay identity (the tentpole's acceptance criterion) ----------

TEST(GoldenMetrics, FileReplayIdenticalToGeneratorRun)
{
    std::string dir = goldenDir();
    std::vector<WorkloadDef> fileDefs = recordGoldenTraces(dir);

    MatrixSpec genSpec;
    genSpec.prefetchers = {"gaze", "ip_stride"};
    for (const auto &name : goldenWorkloads())
        genSpec.workloads.push_back(findWorkload(name));
    genSpec.run = goldenConfig();
    genSpec.threads = 4;
    genSpec.name = "golden_gen";

    MatrixSpec fileSpec = genSpec;
    fileSpec.workloads = fileDefs;
    fileSpec.traceDir = dir;
    fileSpec.name = "golden_file";

    MatrixResult gen = runMatrix(genSpec);
    MatrixResult file = runMatrix(fileSpec);

    ASSERT_EQ(gen.cells.size(), file.cells.size());
    for (size_t i = 0; i < gen.cells.size(); ++i) {
        const CellOutcome &a = gen.cells[i];
        const CellOutcome &b = file.cells[i];
        ASSERT_EQ(a.workload, b.workload);
        ASSERT_EQ(a.prefetcher, b.prefetcher);
        // Bitwise identity, not tolerance: the replay feeds the exact
        // same record stream into a deterministic simulator.
        EXPECT_EQ(a.ipc, b.ipc) << a.workload << " x " << a.prefetcher;
        EXPECT_EQ(a.baseIpc, b.baseIpc) << a.workload;
        EXPECT_EQ(a.metrics.speedup, b.metrics.speedup) << a.workload;
        EXPECT_EQ(a.metrics.accuracy, b.metrics.accuracy) << a.workload;
        EXPECT_EQ(a.metrics.coverage, b.metrics.coverage) << a.workload;
        EXPECT_EQ(a.metrics.lateFraction, b.metrics.lateFraction)
            << a.workload;
        EXPECT_EQ(a.metrics.pfIssued, b.metrics.pfIssued) << a.workload;
        EXPECT_EQ(a.metrics.pfUseful, b.metrics.pfUseful) << a.workload;
        EXPECT_EQ(a.metrics.llcMissPf, b.metrics.llcMissPf)
            << a.workload;
    }
}

} // namespace
} // namespace gaze
