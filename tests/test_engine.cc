/**
 * @file
 * Event-engine suite: timing-wheel ordering/rollover property tests,
 * same-cycle dispatch determinism, RequestPool balance, and the
 * tentpole's acceptance criterion — the event-driven engine is
 * metrics-BIT-identical to the polled reference engine across the
 * golden prefetchers (and dspatch, which additionally exercises the
 * DRAM utilization-epoch catch-up), single- and multi-core.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "sim/event.hh"
#include "sim/request_pool.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

// Golden values depend on trace lengths: pin the scale exactly like
// test_golden_metrics before anything queries simScale().
const bool kScalePinned = [] {
    setenv("GAZE_SIM_SCALE", "0.02", 1);
    return true;
}();

// ---- EventQueue properties ------------------------------------------

/** Records its own dispatch into a shared log. */
class LogEvent : public Event
{
  public:
    using Log = std::vector<std::tuple<Cycle, int, const LogEvent *>>;

    LogEvent(int priority, Log *log_, const EventQueue *q)
        : Event(priority), log(log_), queue(q)
    {
    }

    void
    process() override
    {
        log->emplace_back(queue->currentCycle(), priority(), this);
        ++runs;
    }

    int runs = 0;

  private:
    Log *log;
    const EventQueue *queue;
};

void
drain(EventQueue &q)
{
    while (true) {
        Cycle c = q.nextEventCycle();
        if (c == EventQueue::kNoEvent)
            break;
        q.dispatchCycle(c);
    }
}

TEST(EventQueueOrder, RandomScheduleDispatchesSortedOnce)
{
    // Property: whatever the schedule order, dispatch order is
    // (cycle, priority, schedule-seq) — including cycles far past the
    // wheel horizon (rollover through the overflow heap).
    EventQueue q(64);
    LogEvent::Log log;
    Rng rng(0x5eed);

    std::vector<std::unique_ptr<LogEvent>> events;
    std::vector<Cycle> whens;
    for (int i = 0; i < 300; ++i) {
        int prio = static_cast<int>(rng.below(4));
        events.push_back(std::make_unique<LogEvent>(prio, &log, &q));
        // Mix near cycles, horizon-straddling ones, and far ones
        // (several wheel revolutions out).
        Cycle when = rng.below(3) == 0 ? rng.below(60)
                     : rng.below(2) == 0
                         ? 50 + rng.below(100)
                         : rng.below(64 * 40);
        whens.push_back(when);
    }
    for (size_t i = 0; i < events.size(); ++i)
        q.schedule(events[i].get(), whens[i]);

    drain(q);

    ASSERT_EQ(log.size(), events.size());
    for (const auto &e : events)
        EXPECT_EQ(e->runs, 1);
    for (size_t i = 1; i < log.size(); ++i) {
        Cycle pc = std::get<0>(log[i - 1]), cc = std::get<0>(log[i]);
        int pp = std::get<1>(log[i - 1]), cp = std::get<1>(log[i]);
        EXPECT_TRUE(pc < cc || (pc == cc && pp <= cp))
            << "order violated at " << i;
    }
    // Dispatched cycles must match what was scheduled.
    std::vector<Cycle> got;
    for (const auto &entry : log)
        got.push_back(std::get<0>(entry));
    std::vector<Cycle> want = whens;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
}

TEST(EventQueueOrder, SameCycleDispatchIsPriorityThenScheduleOrder)
{
    EventQueue q(16);
    LogEvent::Log log;
    LogEvent a(2, &log, &q), b(0, &log, &q), c(1, &log, &q);
    LogEvent d(1, &log, &q); // same priority as c, scheduled later
    // Insertion order deliberately scrambled.
    q.schedule(&a, 7);
    q.schedule(&c, 7);
    q.schedule(&d, 7);
    q.schedule(&b, 7);
    drain(q);
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(std::get<2>(log[0]), &b); // prio 0
    EXPECT_EQ(std::get<2>(log[1]), &c); // prio 1, scheduled first
    EXPECT_EQ(std::get<2>(log[2]), &d); // prio 1, scheduled second
    EXPECT_EQ(std::get<2>(log[3]), &a); // prio 2
}

TEST(EventQueueOrder, WheelRolloverKeepsExactCycles)
{
    // Events spaced exactly one wheel span apart land in the same
    // bucket index across revolutions; each must still fire at its
    // own cycle.
    EventQueue q(16);
    LogEvent::Log log;
    std::vector<std::unique_ptr<LogEvent>> events;
    for (int k = 0; k < 8; ++k) {
        events.push_back(std::make_unique<LogEvent>(0, &log, &q));
        q.schedule(events.back().get(), 5 + Cycle(k) * 16);
    }
    drain(q);
    ASSERT_EQ(log.size(), 8u);
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(std::get<0>(log[size_t(k)]), 5u + Cycle(k) * 16);
}

TEST(EventQueue, ScheduleEarlierSupersedesAndIsIdempotent)
{
    EventQueue q(32);
    LogEvent::Log log;
    LogEvent e(0, &log, &q);
    q.schedule(&e, 100);
    q.scheduleEarlier(&e, 40); // pulls earlier
    q.scheduleEarlier(&e, 60); // no-op: already earlier
    q.scheduleEarlier(&e, 40); // no-op: same cycle
    EXPECT_EQ(q.size(), 1u);
    drain(q);
    ASSERT_EQ(log.size(), 1u); // superseded entry must not re-fire
    EXPECT_EQ(std::get<0>(log[0]), 40u);
    EXPECT_EQ(e.runs, 1);
}

/** Reschedules itself a fixed number of times from process(). */
class ChainEvent : public Event
{
  public:
    ChainEvent(EventQueue *q_, int hops_) : Event(0), q(q_), hops(hops_)
    {
    }

    void
    process() override
    {
        fired.push_back(q->currentCycle());
        if (--hops > 0)
            q->schedule(this, q->currentCycle() + 7);
    }

    std::vector<Cycle> fired;

  private:
    EventQueue *q;
    int hops;
};

TEST(EventQueue, SelfReschedulingEventWalksForward)
{
    EventQueue q(8); // tiny wheel: every hop crosses the horizon
    ChainEvent e(&q, 5);
    q.schedule(&e, 3);
    drain(q);
    ASSERT_EQ(e.fired.size(), 5u);
    for (size_t i = 0; i < e.fired.size(); ++i)
        EXPECT_EQ(e.fired[i], 3u + 7 * i);
    EXPECT_EQ(q.stats().dispatched, 5u);
}

// ---- RequestPool ----------------------------------------------------

TEST(RequestPoolTest, BalanceAndReuse)
{
    RequestPool pool;
    Request r;
    r.paddr = 0x1000;

    RequestPool::Node *head = nullptr;
    for (int i = 0; i < 100; ++i) {
        RequestPool::Node *n = pool.alloc(r);
        n->next = head;
        head = n;
    }
    EXPECT_EQ(pool.outstanding(), 100u);
    size_t created = pool.allocated();
    EXPECT_GE(created, 100u);

    pool.releaseChain(head);
    EXPECT_EQ(pool.outstanding(), 0u);

    // A second round must be served entirely from the free list.
    head = nullptr;
    for (int i = 0; i < 100; ++i) {
        RequestPool::Node *n = pool.alloc(r);
        n->next = head;
        head = n;
    }
    EXPECT_EQ(pool.allocated(), created);
    EXPECT_EQ(pool.outstanding(), 100u);
    pool.releaseChain(head);
    EXPECT_EQ(pool.outstanding(), 0u);
}

// ---- engine equivalence (the acceptance criterion) ------------------

RunConfig
smallConfig(EngineKind engine)
{
    RunConfig cfg;
    cfg.warmupInstr = 2000;
    cfg.simInstr = 8000;
    cfg.system.engine = engine;
    return cfg;
}

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *level, const std::string &ctx)
{
#define GAZE_EXPECT_FIELD(f) \
    EXPECT_EQ(a.f, b.f) << ctx << " " << level << " " #f
    GAZE_EXPECT_FIELD(loadAccess);
    GAZE_EXPECT_FIELD(loadHit);
    GAZE_EXPECT_FIELD(loadMiss);
    GAZE_EXPECT_FIELD(rfoAccess);
    GAZE_EXPECT_FIELD(rfoHit);
    GAZE_EXPECT_FIELD(rfoMiss);
    GAZE_EXPECT_FIELD(wbAccess);
    GAZE_EXPECT_FIELD(wbHit);
    GAZE_EXPECT_FIELD(wbMiss);
    GAZE_EXPECT_FIELD(pfIssued);
    GAZE_EXPECT_FIELD(pfDroppedFull);
    GAZE_EXPECT_FIELD(pfDroppedDup);
    GAZE_EXPECT_FIELD(pfDroppedHit);
    GAZE_EXPECT_FIELD(pfDroppedMshr);
    GAZE_EXPECT_FIELD(pfMshrWait);
    GAZE_EXPECT_FIELD(pfDemoted);
    GAZE_EXPECT_FIELD(pfFilled);
    GAZE_EXPECT_FIELD(pfUseful);
    GAZE_EXPECT_FIELD(pfUseless);
    GAZE_EXPECT_FIELD(pfLate);
    GAZE_EXPECT_FIELD(mshrMerge);
    GAZE_EXPECT_FIELD(mshrFullStall);
    GAZE_EXPECT_FIELD(writebacksSent);
    GAZE_EXPECT_FIELD(demandMissLatencySum);
    GAZE_EXPECT_FIELD(demandMissLatencyCnt);
#undef GAZE_EXPECT_FIELD
}

void
expectBitIdentical(const RunResult &ev, const RunResult &po,
                   const std::string &ctx)
{
    ASSERT_EQ(ev.cores.size(), po.cores.size()) << ctx;
    for (size_t c = 0; c < ev.cores.size(); ++c) {
        EXPECT_EQ(ev.cores[c].instructions, po.cores[c].instructions)
            << ctx << " core " << c;
        EXPECT_EQ(ev.cores[c].cycles, po.cores[c].cycles)
            << ctx << " core " << c;
    }
    expectSameCacheStats(ev.l1d, po.l1d, "l1d", ctx);
    expectSameCacheStats(ev.l2, po.l2, "l2", ctx);
    expectSameCacheStats(ev.llc, po.llc, "llc", ctx);
    EXPECT_EQ(ev.dram.reads, po.dram.reads) << ctx;
    EXPECT_EQ(ev.dram.writes, po.dram.writes) << ctx;
    EXPECT_EQ(ev.dram.rowHits, po.dram.rowHits) << ctx;
    EXPECT_EQ(ev.dram.rowMisses, po.dram.rowMisses) << ctx;
    EXPECT_EQ(ev.dram.busBusyCycles, po.dram.busBusyCycles) << ctx;
    EXPECT_EQ(ev.dram.readLatencySum, po.dram.readLatencySum) << ctx;
    // Exact double equality is intended: same arithmetic, same order.
    EXPECT_EQ(ev.ipc(), po.ipc()) << ctx;
    // Both engines simulate the same number of cycles overall.
    EXPECT_EQ(ev.engine.cyclesTotal, po.engine.cyclesTotal) << ctx;
}

TEST(EngineEquivalence, GoldenPrefetchersBitIdentical)
{
    EXPECT_TRUE(kScalePinned);
    // dspatch rides along with the golden three: it consults the DRAM
    // utilization epochs, whose idle-skip catch-up must also be exact.
    const std::vector<std::string> prefetchers = {"gaze", "ip_stride",
                                                  "sms", "dspatch"};
    const std::vector<std::string> workloads = {"leslie3d", "canneal",
                                                "BFS-17"};
    Runner eventRunner(smallConfig(EngineKind::Event));
    Runner polledRunner(smallConfig(EngineKind::Polled));

    for (const auto &wname : workloads) {
        WorkloadDef w = findWorkload(wname);
        for (const auto &pname : prefetchers) {
            PfSpec pf;
            pf.l1 = pname;
            RunResult ev = eventRunner.run(w, pf);
            RunResult po = polledRunner.run(w, pf);
            expectBitIdentical(ev, po, wname + " x " + pname);
        }
        // Baselines too (no prefetcher: the purest idle-skip case).
        RunResult ev = eventRunner.run(w, PfSpec{});
        RunResult po = polledRunner.run(w, PfSpec{});
        expectBitIdentical(ev, po, wname + " x none");
    }
}

TEST(EngineEquivalence, MultiCoreMixBitIdentical)
{
    EXPECT_TRUE(kScalePinned);
    std::vector<WorkloadDef> mix = {findWorkload("leslie3d"),
                                    findWorkload("canneal")};
    PfSpec pf;
    pf.l1 = "gaze";

    Runner eventRunner(smallConfig(EngineKind::Event));
    Runner polledRunner(smallConfig(EngineKind::Polled));
    RunResult ev = eventRunner.runMix(mix, pf);
    RunResult po = polledRunner.runMix(mix, pf);
    expectBitIdentical(ev, po, "2-core mix x gaze");
}

TEST(EngineEquivalence, EventEngineIsDeterministic)
{
    EXPECT_TRUE(kScalePinned);
    PfSpec pf;
    pf.l1 = "gaze";
    WorkloadDef w = findWorkload("fotonik3d_s");
    Runner a(smallConfig(EngineKind::Event));
    Runner b(smallConfig(EngineKind::Event));
    expectBitIdentical(a.run(w, pf), b.run(w, pf),
                       "fotonik3d_s repeat");
}

// ---- engine stats ---------------------------------------------------

TEST(EngineStatsTest, PointerChaseSkipsIdleCycles)
{
    EXPECT_TRUE(kScalePinned);
    // canneal is the low-MLP case: one dependent load in flight at a
    // time, so most cycles are DRAM-latency waits the event engine
    // must skip.
    WorkloadDef w = findWorkload("canneal");
    Runner ev(smallConfig(EngineKind::Event));
    RunResult r = ev.run(w, PfSpec{});
    EXPECT_TRUE(r.engine.eventDriven);
    EXPECT_EQ(r.engine.cyclesExecuted + r.engine.cyclesSkipped,
              r.engine.cyclesTotal);
    EXPECT_GT(r.engine.cyclesSkipped, r.engine.cyclesTotal / 2)
        << "a dependent-load chain should be mostly idle cycles";
    EXPECT_GT(r.engine.eventsDispatched, 0u);
    EXPECT_GT(r.instructionsRetired, 0u);

    Runner po(smallConfig(EngineKind::Polled));
    RunResult p = po.run(w, PfSpec{});
    EXPECT_FALSE(p.engine.eventDriven);
    EXPECT_EQ(p.engine.cyclesSkipped, 0u);
    EXPECT_EQ(p.engine.cyclesExecuted, p.engine.cyclesTotal);
}

TEST(EngineStatsTest, SummaryCarriesEngineSlice)
{
    EXPECT_TRUE(kScalePinned);
    Runner ev(smallConfig(EngineKind::Event));
    RunResult r = ev.run(findWorkload("leslie3d"), PfSpec{});
    RunSummary s = summarize(r);
    EXPECT_EQ(s.eventsDispatched, r.engine.eventsDispatched);
    EXPECT_EQ(s.cyclesExecuted, r.engine.cyclesExecuted);
    EXPECT_EQ(s.cyclesSkipped, r.engine.cyclesSkipped);
    EXPECT_EQ(s.minstrPerSec, r.minstrPerSec());
}

// ---- request pool balance at system teardown ------------------------

TEST(RequestPoolTest, SystemTeardownIsBalanced)
{
    EXPECT_TRUE(kScalePinned);
    // Runs end with fetches in flight; System's destructor asserts
    // every pooled waiter came back. Surviving this scope IS the
    // test (the assert aborts otherwise).
    Runner ev(smallConfig(EngineKind::Event));
    PfSpec pf;
    pf.l1 = "gaze";
    RunResult r = ev.run(findWorkload("mcf"), pf);
    EXPECT_GT(r.instructionsRetired, 0u);
}

} // namespace
} // namespace gaze
