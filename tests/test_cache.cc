/**
 * @file
 * Cache model tests against a scripted lower level: hit/miss timing,
 * MSHR merging and back-pressure, writeback behaviour, prefetch fill
 * targeting, and the useful/useless/late accounting the paper's
 * metrics depend on.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::FakeMemory;
using test::FakeReceiver;

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
        : mem(&clock, /*latency=*/50)
    {
        CacheParams p;
        p.name = "L1-test";
        p.level = levelL1;
        p.sets = 16;
        p.ways = 2;
        p.latency = 5;
        p.mshrs = 4;
        p.rqSize = 8;
        p.pqSize = 4;
        cache = std::make_unique<Cache>(p, &mem, &clock);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            cache->tick();
            mem.tick();
            ++clock;
        }
    }

    Request
    demand(Addr a, FillReceiver *recv, uint64_t token = 0,
           AccessType t = AccessType::Load)
    {
        Request r;
        r.paddr = a;
        r.vaddr = a;
        r.pc = 0x400000;
        r.type = t;
        r.fillLevel = levelL1;
        r.requester = recv;
        r.token = token;
        r.issueCycle = clock;
        return r;
    }

    Cycle clock = 0;
    FakeMemory mem;
    std::unique_ptr<Cache> cache;
    FakeReceiver rx;
};

TEST_F(CacheTest, MissGoesToLowerAndFills)
{
    ASSERT_TRUE(cache->sendRequest(demand(0x1000, &rx)));
    run(60);
    ASSERT_EQ(rx.fills.size(), 1u);
    EXPECT_TRUE(cache->present(0x1000));
    EXPECT_EQ(cache->stats().loadMiss, 1u);
    ASSERT_FALSE(mem.received.empty());
    EXPECT_EQ(mem.received[0].paddr, 0x1000u);
}

TEST_F(CacheTest, HitRespondsAfterLatencyWithoutLowerTraffic)
{
    cache->sendRequest(demand(0x1000, &rx));
    run(60);
    size_t lower_before = mem.received.size();
    rx.fills.clear();

    Cycle start = clock;
    cache->sendRequest(demand(0x1000, &rx));
    run(10);
    ASSERT_EQ(rx.fills.size(), 1u);
    EXPECT_EQ(mem.received.size(), lower_before);
    EXPECT_EQ(cache->stats().loadHit, 1u);
    // Response must take at least the configured access latency.
    (void)start;
}

TEST_F(CacheTest, SameBlockMissesMergeInMshr)
{
    cache->sendRequest(demand(0x2000, &rx, 1));
    cache->sendRequest(demand(0x2030, &rx, 2)); // same 64B block
    run(2);
    EXPECT_EQ(cache->mshrOccupancy(), 1u);
    EXPECT_EQ(cache->stats().mshrMerge, 1u);
    run(70);
    EXPECT_EQ(rx.fills.size(), 2u); // both waiters woken
}

TEST_F(CacheTest, MshrFullStallsReads)
{
    // 4 MSHRs; the 5th distinct-block miss must stall, not be lost.
    for (int i = 0; i < 5; ++i)
        cache->sendRequest(demand(0x10000 + i * 64, &rx, i));
    run(3);
    EXPECT_EQ(cache->mshrOccupancy(), 4u);
    EXPECT_GT(cache->stats().mshrFullStall, 0u);
    run(120);
    EXPECT_EQ(rx.fills.size(), 5u); // stalled one completed later
}

TEST_F(CacheTest, RfoMarksDirtyAndWritesBack)
{
    cache->sendRequest(demand(0x3000, &rx, 0, AccessType::Rfo));
    run(60);
    EXPECT_TRUE(cache->present(0x3000));

    // Evict it: the set has 2 ways; fill two more blocks mapping to
    // the same set (sets=16 -> stride 16*64 = 0x400).
    cache->sendRequest(demand(0x3000 + 0x400, &rx, 1));
    cache->sendRequest(demand(0x3000 + 0x800, &rx, 2));
    run(120);
    EXPECT_FALSE(cache->present(0x3000));
    EXPECT_EQ(mem.writebacks, 1u);
    EXPECT_EQ(cache->stats().writebacksSent, 1u);
}

TEST_F(CacheTest, CleanEvictionHasNoWriteback)
{
    cache->sendRequest(demand(0x3000, &rx, 0));
    run(60);
    cache->sendRequest(demand(0x3000 + 0x400, &rx, 1));
    cache->sendRequest(demand(0x3000 + 0x800, &rx, 2));
    run(120);
    EXPECT_FALSE(cache->present(0x3000));
    EXPECT_EQ(mem.writebacks, 0u);
}

TEST_F(CacheTest, WritebackMissAllocatesDirectly)
{
    Request wb;
    wb.paddr = 0x4000;
    wb.type = AccessType::Writeback;
    wb.fillLevel = levelL1;
    ASSERT_TRUE(cache->sendRequest(wb));
    run(3);
    EXPECT_TRUE(cache->present(0x4000));
    EXPECT_EQ(cache->stats().wbMiss, 1u);
    // No fetch from below: the line arrived complete.
    EXPECT_TRUE(mem.received.empty());
}

TEST_F(CacheTest, PrefetchFillsWithPrefetchBit)
{
    ASSERT_TRUE(cache->issuePrefetch(0x5000, levelL1, /*virt=*/false, 0));
    run(60);
    EXPECT_TRUE(cache->present(0x5000));
    EXPECT_EQ(cache->stats().pfFilled, 1u);
    EXPECT_EQ(cache->stats().pfIssued, 1u);
}

TEST_F(CacheTest, PrefetchedBlockDemandHitCountsUseful)
{
    cache->issuePrefetch(0x5000, levelL1, false, 0);
    run(60);
    cache->sendRequest(demand(0x5000, &rx));
    run(10);
    EXPECT_EQ(cache->stats().pfUseful, 1u);
    // A second hit must not double count.
    cache->sendRequest(demand(0x5000, &rx));
    run(10);
    EXPECT_EQ(cache->stats().pfUseful, 1u);
}

TEST_F(CacheTest, UnusedPrefetchEvictionCountsUseless)
{
    cache->issuePrefetch(0x5000, levelL1, false, 0);
    run(60);
    cache->sendRequest(demand(0x5000 + 0x400, &rx, 1));
    cache->sendRequest(demand(0x5000 + 0x800, &rx, 2));
    run(120);
    EXPECT_FALSE(cache->present(0x5000));
    EXPECT_EQ(cache->stats().pfUseless, 1u);
    EXPECT_EQ(cache->stats().pfUseful, 0u);
}

TEST_F(CacheTest, DemandOnInflightPrefetchCountsLate)
{
    cache->issuePrefetch(0x6000, levelL1, false, 0);
    run(5); // prefetch in flight, not yet filled
    cache->sendRequest(demand(0x6000, &rx));
    run(60);
    EXPECT_EQ(cache->stats().pfLate, 1u);
    ASSERT_EQ(rx.fills.size(), 1u);
    // Late-converted fills are not marked as prefetch fills...
    EXPECT_EQ(cache->stats().pfFilled, 0u);
    // ...and a subsequent hit is not pfUseful.
    cache->sendRequest(demand(0x6000, &rx));
    run(10);
    EXPECT_EQ(cache->stats().pfUseful, 0u);
}

TEST_F(CacheTest, RedundantPrefetchDroppedOnHit)
{
    cache->sendRequest(demand(0x7000, &rx));
    run(60);
    cache->issuePrefetch(0x7000, levelL1, false, 0);
    run(5);
    EXPECT_EQ(cache->stats().pfDroppedHit, 1u);
    EXPECT_EQ(cache->stats().pfFilled, 0u);
}

TEST_F(CacheTest, PrefetchQueueFullDrops)
{
    // pqSize = 4: the 5th issue in one cycle must be rejected.
    for (int i = 0; i < 5; ++i)
        cache->issuePrefetch(0x8000 + i * 64, levelL1, false, 0);
    EXPECT_EQ(cache->stats().pfDroppedFull, 1u);
    EXPECT_EQ(cache->stats().pfIssued, 4u);
}

TEST_F(CacheTest, LowerLevelTargetedPrefetchForwardsDown)
{
    // fillLevel = L2 at an L1 cache: forwarded, never filled here.
    cache->issuePrefetch(0x9000, levelL2, false, 0);
    run(60);
    EXPECT_FALSE(cache->present(0x9000));
    ASSERT_FALSE(mem.received.empty());
    EXPECT_EQ(mem.received[0].type, AccessType::Prefetch);
    EXPECT_EQ(mem.received[0].fillLevel, uint32_t(levelL2));
}

TEST_F(CacheTest, ReadQueueBackpressure)
{
    // rqSize = 8: the 9th outstanding demand is rejected.
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(cache->sendRequest(demand(0x20000 + i * 64, &rx, i)));
    EXPECT_FALSE(cache->sendRequest(demand(0x30000, &rx, 99)));
}

TEST_F(CacheTest, RejectedLowerRequestIsRetried)
{
    mem.rejectReads = true;
    cache->sendRequest(demand(0xa000, &rx));
    run(10);
    EXPECT_TRUE(rx.fills.empty());
    mem.rejectReads = false;
    run(70);
    EXPECT_EQ(rx.fills.size(), 1u); // MSHR retried the downstream send
}

TEST_F(CacheTest, DemandMissLatencyAccounted)
{
    cache->sendRequest(demand(0xb000, &rx));
    run(80);
    EXPECT_EQ(cache->stats().demandMissLatencyCnt, 1u);
    // Lower latency is 50; plus queueing it must be at least that.
    EXPECT_GE(cache->stats().avgDemandMissLatency(), 50.0);
}

TEST_F(CacheTest, SetsForComputesGeometry)
{
    EXPECT_EQ(CacheParams::setsFor(48 * 1024, 12), 64u);
    EXPECT_EQ(CacheParams::setsFor(512 * 1024, 8), 1024u);
    EXPECT_EQ(CacheParams::setsFor(2 * 1024 * 1024, 16), 2048u);
}

} // namespace
} // namespace gaze
