/**
 * @file
 * Parameterized property sweeps (TEST_P):
 *  - Gaze learn/replay roundtrip across every supported region size;
 *  - per-scheme sanity over all factory prefetchers (legal issues,
 *    bounded storage, stable naming);
 *  - PHT geometry sweep: strictness is preserved for every sets/ways
 *    combination.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gaze.hh"
#include "prefetchers/factory.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::CapturingPrefetcher;
using test::drain;
using test::load;

// ------------------------------------------------ region size sweep

class GazeRegionSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GazeRegionSweep, LearnReplayRoundtrip)
{
    uint64_t region_size = GetParam();
    uint32_t blocks = blocksPerRegion(region_size);

    GazeConfig cfg;
    cfg.regionSize = region_size;
    cfg.phtSets = std::min<uint32_t>(blocks, 64);
    CapturingPrefetcher<GazePrefetcher> pf(cfg);
    pf.attachBare();

    // Teach (2, 5) -> {2, 5, blocks-1} on one region; regions are
    // region_size-aligned so the test works for every size.
    Addr r1 = 8 * region_size;
    Addr r2 = 64 * region_size;
    uint32_t tail = blocks - 1;
    for (uint32_t off : {2u, 5u, tail})
        pf.onAccess(load(r1 + Addr(off) * blockSize, 0x400100));
    pf.onEvict(r1 + 2 * blockSize, r1 + 2 * blockSize);

    for (uint32_t off : {2u, 5u})
        pf.onAccess(load(r2 + Addr(off) * blockSize, 0x400100));
    drain(pf, 400);

    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        if (regionBase(p.addr, region_size) == r2)
            offs.push_back(regionOffset(p.addr, region_size));
    ASSERT_EQ(offs.size(), 1u) << "region " << region_size;
    EXPECT_EQ(offs[0], tail);

    // Wrong second offset: strict matching must still reject.
    Addr r3 = 128 * region_size;
    pf.issued.clear();
    for (uint32_t off : {2u, 6u})
        pf.onAccess(load(r3 + Addr(off) * blockSize, 0x400100));
    drain(pf, 400);
    for (const auto &p : pf.issued)
        EXPECT_NE(regionBase(p.addr, region_size), r3);
}

INSTANTIATE_TEST_SUITE_P(AllRegionSizes, GazeRegionSweep,
                         ::testing::Values(512, 1024, 2048, 4096,
                                           8192, 16384, 65536));

// ------------------------------------------------ per-scheme sanity

class SchemeSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SchemeSweep, ConstructsWithStableIdentity)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    EXPECT_FALSE(pf->name().empty());
    // Names are stable across construction.
    EXPECT_EQ(pf->name(), makePrefetcher(GetParam())->name());
}

TEST_P(SchemeSweep, StorageIsBoundedAndNonzero)
{
    auto pf = makePrefetcher(GetParam());
    uint64_t bits = pf->storageBits();
    EXPECT_GT(bits, 0u);
    // Nothing in Table IV exceeds 200KB.
    EXPECT_LT(bits, 200ull * 1024 * 8);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values("ip_stride", "spp_ppf", "spp", "ipcp", "vberti",
                      "vberti:oracle", "sms", "sms:scheme=offset",
                      "sms:scheme=pc", "sms:scheme=pc+addr", "bingo",
                      "dspatch", "pmp", "gaze", "gaze:n=1", "gaze:n=3",
                      "gaze:nostream", "gaze:pht4ss", "gaze:sm4ss",
                      "gaze:region=2048:phtsets=32"));

// ------------------------------------------------ PHT geometry sweep

struct PhtGeom
{
    uint32_t sets;
    uint32_t ways;
};

class PhtGeometrySweep : public ::testing::TestWithParam<PhtGeom>
{
};

TEST_P(PhtGeometrySweep, StrictnessHoldsForAnyGeometry)
{
    GazeConfig cfg;
    cfg.phtSets = GetParam().sets;
    cfg.phtWays = GetParam().ways;
    PatternHistoryTable pht(cfg);

    InitialAccesses good;
    good.push(5);
    good.push(9);
    InitialAccesses wrong_second;
    wrong_second.push(5);
    wrong_second.push(10);
    InitialAccesses swapped;
    swapped.push(9);
    swapped.push(5);

    Bitset fp(64);
    fp.set(5);
    fp.set(9);
    fp.set(33);
    pht.learn(good, fp);

    ASSERT_NE(pht.lookup(good), nullptr);
    EXPECT_EQ(pht.lookup(wrong_second), nullptr);
    EXPECT_EQ(pht.lookup(swapped), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Geometries, PhtGeometrySweep,
                         ::testing::Values(PhtGeom{1, 64},
                                           PhtGeom{16, 4},
                                           PhtGeom{64, 4},
                                           PhtGeom{64, 16},
                                           PhtGeom{128, 2}));

} // namespace
} // namespace gaze
