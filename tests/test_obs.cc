/**
 * @file
 * Observability subsystem suite: the deterministic counter registry
 * (name-sorted export, duplicate rejection), the interval sampler
 * (exact epoch boundaries, byte-identical repeat CSVs, cross-engine
 * agreement on architectural columns), the Chrome-trace sink (the
 * JSON parses and carries both process tracks), and the per-scheme
 * lifecycle attribution invariants.
 *
 * The perturbation-freedom half of the contract (obs-on bitwise
 * identical to obs-off on every engine and thread count) lives in
 * test_engine_diff; this file owns the obs outputs themselves.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "campaign/json.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

// Pin the scale before anything queries simScale(): row counts and
// per-scheme counts depend on trace lengths.
const bool kScalePinned = [] {
    setenv("GAZE_SIM_SCALE", "0.02", 1);
    return true;
}();

// ---- registry -------------------------------------------------------

TEST(ObsRegistry, ExportIsNameSortedAndLive)
{
    uint64_t zeta = 3, alpha = 1, gaugeSrc = 2;
    obs::Registry reg;
    reg.bindCounter("zeta.count", &zeta);
    reg.bindCounter("alpha.count", &alpha);
    reg.bindGauge("mid.gauge", [&] { return gaugeSrc; });
    reg.seal();

    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.nameAt(0), "alpha.count");
    EXPECT_EQ(reg.nameAt(1), "mid.gauge");
    EXPECT_EQ(reg.nameAt(2), "zeta.count");
    EXPECT_EQ(reg.snapshot(), (std::vector<uint64_t>{1, 2, 3}));

    // Bindings are live reads of the underlying field, not copies.
    alpha = 10;
    gaugeSrc = 20;
    EXPECT_EQ(reg.valueAt(0), 10u);
    EXPECT_EQ(reg.valueAt(1), 20u);
}

TEST(ObsRegistryDeathTest, DuplicateNameIsFatalAtSeal)
{
    uint64_t x = 0;
    obs::Registry reg;
    reg.bindCounter("dup.name", &x);
    reg.bindCounter("dup.name", &x);
    EXPECT_DEATH(reg.seal(), "duplicate counter name 'dup.name'");
}

TEST(ObsRegistryDeathTest, BindAfterSealIsFatal)
{
    uint64_t x = 0;
    obs::Registry reg;
    reg.seal();
    EXPECT_DEATH(reg.bindCounter("late.bind", &x), "sealed");
}

// ---- interval sampler: boundary semantics ---------------------------

TEST(ObsSampler, EmitsExactIntervalBoundariesLazily)
{
    uint64_t ctr = 0;
    obs::Registry reg;
    reg.bindCounter("c", &ctr);
    reg.seal();

    obs::IntervalSampler s(&reg, /*interval=*/100);
    // Attach mid-run (post-warmup): everything at or before cycle 250
    // is warmup-era and must not produce rows.
    s.startAt(250);
    ctr = 1;
    s.advanceTo(301); // emits boundary 300 with the current value
    ctr = 2;
    s.advanceTo(650); // emits 400, 500, 600 (all lazily, value 2)
    ctr = 3;
    s.finish(700); // flushes the final boundary 700

    const obs::SampleSeries &out = s.series();
    ASSERT_EQ(out.rows.size(), 5u);
    const std::pair<Cycle, uint64_t> expect[] = {
        {300, 1}, {400, 2}, {500, 2}, {600, 2}, {700, 3}};
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(out.rows[i].cycle, expect[i].first) << "row " << i;
        ASSERT_EQ(out.rows[i].values.size(), 1u);
        EXPECT_EQ(out.rows[i].values[0], expect[i].second)
            << "row " << i;
    }
}

TEST(ObsSampler, AdvanceToBoundaryItselfDoesNotEmitIt)
{
    // advanceTo(c) runs *before* cycle c executes: the boundary at c
    // must wait until the engine moves past it (or finish() flushes),
    // because counters can still change at cycle c.
    uint64_t ctr = 0;
    obs::Registry reg;
    reg.bindCounter("c", &ctr);
    reg.seal();

    obs::IntervalSampler s(&reg, 100);
    s.startAt(0);
    s.advanceTo(100);
    EXPECT_TRUE(s.series().rows.empty());
    ctr = 7;
    s.advanceTo(101);
    ASSERT_EQ(s.series().rows.size(), 1u);
    EXPECT_EQ(s.series().rows[0].cycle, 100u);
    EXPECT_EQ(s.series().rows[0].values[0], 7u);
}

// ---- sampler wired through a real run -------------------------------

[[maybe_unused]] RunResult
runObserved(EngineKind kind, uint32_t threads, uint64_t interval,
            obs::TraceSink *sink = nullptr)
{
    RunConfig cfg;
    cfg.warmupInstr = 1000;
    cfg.simInstr = 4000;
    cfg.system.engine = kind;
    cfg.system.simThreads = threads;
    cfg.obs.samplerInterval = interval;
    cfg.obs.trace = sink;
    Runner r(cfg);
    std::vector<WorkloadDef> mix = {findWorkload("mcf")};
    PfSpec pf;
    pf.l1 = "gaze";
    return r.runMix(mix, pf);
}

#if GAZE_OBS_ON

TEST(ObsTimeline, RowsLandOnExactIntervalMultiples)
{
    EXPECT_TRUE(kScalePinned);
    constexpr uint64_t kInterval = 512;
    RunResult res = runObserved(EngineKind::Event, 1, kInterval);
    const obs::SampleSeries &s = res.obsSamples;
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.interval, kInterval);
    ASSERT_FALSE(s.names.empty());
    Cycle prev = 0;
    for (const auto &row : s.rows) {
        EXPECT_EQ(row.cycle % kInterval, 0u) << "cycle " << row.cycle;
        EXPECT_GT(row.cycle, prev) << "rows must strictly increase";
        prev = row.cycle;
        EXPECT_EQ(row.values.size(), s.names.size());
    }
    // Column names are sorted (byte-identical export order).
    for (size_t i = 1; i < s.names.size(); ++i)
        EXPECT_LT(s.names[i - 1], s.names[i]);
}

TEST(ObsTimeline, RepeatRunsProduceByteIdenticalCsv)
{
    EXPECT_TRUE(kScalePinned);
    std::string a =
        runObserved(EngineKind::Event, 1, 512).obsSamples.toCsv();
    std::string b =
        runObserved(EngineKind::Event, 1, 512).obsSamples.toCsv();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

/**
 * The timeline columns minus the engine-private and lazily-accounted
 * ones. Engine counters ("engine.*", "eventq.*") legitimately differ
 * across engines — the polled engine dispatches no events. The core
 * stall-cycle counters are exempt too: Core::catchUpStallCounters
 * back-fills them when a sleeping core wakes, so mid-skip boundaries
 * read lower on the event engine than on the (eager) polled one; end
 * of run they converge, which the bitwise differential suite pins.
 * Every other column only moves on executed cycles and must agree at
 * every boundary.
 */
bool
lazyColumn(const std::string &name)
{
    auto suffix = [&](const char *s) {
        size_t n = std::char_traits<char>::length(s);
        return name.size() >= n && name.compare(name.size() - n, n, s) == 0;
    };
    return name.rfind("engine.", 0) == 0 || name.rfind("eventq.", 0) == 0
           || suffix(".robFullCycles") || suffix(".frontendStallCycles");
}

std::pair<std::vector<std::string>, std::vector<std::vector<uint64_t>>>
architecturalColumns(const obs::SampleSeries &s)
{
    std::vector<size_t> keep;
    std::vector<std::string> names;
    for (size_t i = 0; i < s.names.size(); ++i) {
        if (lazyColumn(s.names[i]))
            continue;
        keep.push_back(i);
        names.push_back(s.names[i]);
    }
    std::vector<std::vector<uint64_t>> rows;
    for (const auto &row : s.rows) {
        std::vector<uint64_t> vals;
        vals.push_back(row.cycle);
        for (size_t i : keep)
            vals.push_back(row.values[i]);
        rows.push_back(std::move(vals));
    }
    return {std::move(names), std::move(rows)};
}

TEST(ObsTimeline, EnginesAgreeOnEveryArchitecturalColumn)
{
    EXPECT_TRUE(kScalePinned);
    auto ref =
        architecturalColumns(runObserved(EngineKind::Polled, 1, 512)
                                 .obsSamples);
    ASSERT_FALSE(ref.second.empty());
    struct Variant
    {
        EngineKind kind;
        uint32_t threads;
        const char *name;
    };
    const Variant variants[] = {
        {EngineKind::Event, 1, "event"},
        {EngineKind::Auto, 1, "auto"},
        {EngineKind::Auto, 4, "auto/t4"},
    };
    for (const auto &v : variants) {
        auto got = architecturalColumns(
            runObserved(v.kind, v.threads, 512).obsSamples);
        EXPECT_EQ(got.first, ref.first) << v.name;
        EXPECT_EQ(got.second, ref.second) << v.name;
    }
}

TEST(ObsTimeline, SamplerOnVsOffIdenticalUnderAutoThreaded)
{
    EXPECT_TRUE(kScalePinned);
    // The satellite's exact configuration: --engine=auto
    // --sim-threads=4 with and without the sampler attached.
    RunResult off = runObserved(EngineKind::Auto, 4, /*interval=*/0);
    RunResult on = runObserved(EngineKind::Auto, 4, /*interval=*/512);
    EXPECT_TRUE(off.obsSamples.empty());
    EXPECT_FALSE(on.obsSamples.empty());
    EXPECT_EQ(on.ipc(), off.ipc());
    EXPECT_EQ(on.instructionsRetired, off.instructionsRetired);
    EXPECT_EQ(on.l1d.loadMiss, off.l1d.loadMiss);
    EXPECT_EQ(on.l1d.pfIssued, off.l1d.pfIssued);
    EXPECT_EQ(on.l1d.pfUseful, off.l1d.pfUseful);
    EXPECT_EQ(on.llc.loadMiss, off.llc.loadMiss);
    EXPECT_EQ(on.dram.reads, off.dram.reads);
    EXPECT_EQ(on.engine.cyclesTotal, off.engine.cyclesTotal);
}

// ---- trace sink through a real run ----------------------------------

TEST(ObsTrace, DocumentParsesAndCarriesBothProcessTracks)
{
    EXPECT_TRUE(kScalePinned);
    obs::TraceSink sink;
    {
        // A host-time span alongside the simulated-time spans the
        // system emits, as the campaign engine records them.
        obs::HostSpan span(&sink, "test cell");
        RunResult res =
            runObserved(EngineKind::Event, 1, /*interval=*/0, &sink);
        ASSERT_GT(res.instructionsRetired, 0u);
    }
    ASSERT_GT(sink.eventCount(), 0u);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(sink.toJson(), &doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items().empty());

    bool simNamed = false, hostNamed = false, simSpan = false,
         hostSpan = false;
    for (const JsonValue &e : events->items()) {
        ASSERT_TRUE(e.isObject());
        const std::string &ph = e.find("ph")->asString();
        uint64_t pid = e.find("pid")->asCount("pid");
        if (ph == "M" && e.find("name")->asString() == "process_name") {
            simNamed |= pid == obs::kPidSim;
            hostNamed |= pid == obs::kPidHost;
        }
        if (ph == "X") {
            // Complete events must carry ts + dur.
            EXPECT_NE(e.find("ts"), nullptr);
            EXPECT_NE(e.find("dur"), nullptr);
            simSpan |= pid == obs::kPidSim;
            hostSpan |= pid == obs::kPidHost;
        }
    }
    EXPECT_TRUE(simNamed) << "no process_name for simulated time";
    EXPECT_TRUE(hostNamed) << "no process_name for host time";
    EXPECT_TRUE(simSpan) << "no simulated-time span recorded";
    EXPECT_TRUE(hostSpan) << "no host-time span recorded";
}

// ---- per-scheme lifecycle attribution -------------------------------

TEST(ObsAttribution, SchemeCountsSatisfyLifecycleInvariants)
{
    EXPECT_TRUE(kScalePinned);
    RunConfig cfg;
    cfg.warmupInstr = 2000;
    cfg.simInstr = 8000;
    Runner r(cfg);
    std::vector<WorkloadDef> mix = {findWorkload("leslie3d")};
    PfSpec pf;
    pf.l1 = "ip_stride";
    pf.l2 = "gaze";
    RunResult res = r.runMix(mix, pf);

    ASSERT_EQ(res.schemes.size(), 2u);
    EXPECT_EQ(res.schemes[0].name, "ip_stride@l1");
    EXPECT_EQ(res.schemes[1].name, "gaze@l2");

    uint64_t issued = 0, filled = 0, useful = 0, late = 0, useless = 0;
    for (const SchemeCount &s : res.schemes) {
        // A scheme can never fill more than it issued, and the
        // terminal outcomes partition the fills (in-flight fills at
        // run end are in none of them).
        EXPECT_LE(s.filled, s.issued) << s.name;
        EXPECT_LE(s.useful + s.useless, s.filled) << s.name;
        EXPECT_EQ(s.fillToUseCnt, s.useful) << s.name;
        issued += s.issued;
        filled += s.filled;
        useful += s.useful;
        late += s.late;
        useless += s.useless;
    }
    // The attributed totals are exactly the aggregate pf counters the
    // paper metrics are computed from (summed over L1D + L2).
    EXPECT_EQ(issued, res.l1d.pfIssued + res.l2.pfIssued);
    EXPECT_EQ(filled, res.l1d.pfFilled + res.l2.pfFilled);
    EXPECT_EQ(useful, res.l1d.pfUseful + res.l2.pfUseful);
    EXPECT_EQ(late, res.l1d.pfLate + res.l2.pfLate);
    EXPECT_EQ(useless, res.l1d.pfUseless + res.l2.pfUseless);
    // ip_stride on leslie3d streams: it must actually prefetch here,
    // or this test pins nothing.
    EXPECT_GT(res.schemes[0].useful, 0u);
}

TEST(ObsAttribution, LateSplitSumsToLateTotalAtEveryLevel)
{
    EXPECT_TRUE(kScalePinned);
    RunResult res = runObserved(EngineKind::Event, 1, 0);
    for (const CacheStats *s : {&res.l1d, &res.l2, &res.llc}) {
        EXPECT_EQ(s->loadMissLate + s->rfoMissLate, s->pfLate);
        EXPECT_LE(s->loadMissLate, s->loadMiss);
        EXPECT_LE(s->rfoMissLate, s->rfoMiss);
    }
}

TEST(ObsAttribution, SummaryAndMetricsCarryTheBreakdown)
{
    EXPECT_TRUE(kScalePinned);
    RunConfig cfg;
    cfg.warmupInstr = 2000;
    cfg.simInstr = 8000;
    Runner r(cfg);
    std::vector<WorkloadDef> mix = {findWorkload("leslie3d")};
    const RunResult &base = r.baselineMix(mix);
    PfSpec pf;
    pf.l1 = "ip_stride";
    RunResult res = r.runMix(mix, pf);

    RunSummary sum = summarize(res);
    ASSERT_EQ(sum.schemes.size(), res.schemes.size());
    EXPECT_EQ(sum.pfLateLoad + sum.pfLateRfo, sum.pfLate);

    PrefetchMetrics m = computeMetrics(base, res);
    ASSERT_EQ(m.schemes.size(), 1u);
    const SchemeMetrics &sm = m.schemes[0];
    EXPECT_EQ(sm.name, "ip_stride@l1");
    EXPECT_EQ(sm.issued, res.schemes[0].issued);
    EXPECT_GE(sm.accuracy, 0.0);
    EXPECT_LE(sm.accuracy, 1.0);
    EXPECT_GE(sm.pollution, 0.0);
    EXPECT_LE(sm.pollution, 1.0);
    // Single-scheme run: the scheme's accuracy IS the aggregate.
    EXPECT_DOUBLE_EQ(sm.accuracy, m.accuracy);
    if (sm.useful > 0)
        EXPECT_GT(sm.avgFillToUse, 0.0);
}

#endif // GAZE_OBS_ON

} // namespace
} // namespace gaze
