/**
 * @file
 * End-to-end regression tests for the paper's headline claims, on
 * miniature workloads (small record counts keep each under a couple
 * of seconds). These are the guardrails for the reproduction: if a
 * simulator or prefetcher change breaks a *shape* the paper reports,
 * one of these fails.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "prefetchers/factory.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.warmupInstr = 60000;
    cfg.simInstr = 120000;
    return cfg;
}

WorkloadDef
conflictTemplates(uint64_t seed = 11)
{
    return {"conflict-templates", "test", [seed] {
                TemplateParams p;
                p.seed = seed;
                p.records = 300000;
                p.numTemplates = 9;
                p.conflictDegree = 3;
                p.blocksPerTemplate = 12;
                p.sharedPc = true;
                p.revisitFraction = 0.7;
                return genTemplates(p);
            }};
}

WorkloadDef
pureStream(uint64_t seed = 12)
{
    return {"pure-stream", "test", [seed] {
                StreamParams p;
                p.seed = seed;
                p.records = 300000;
                p.streams = 2;
                return genStream(p);
            }};
}

WorkloadDef
hazardMix(uint64_t seed = 13)
{
    return {"hazard-mix", "test", [seed] {
                StreamHazardParams p;
                p.seed = seed;
                p.records = 300000;
                p.denseFraction = 0.5;
                return genStreamHazard(p);
            }};
}

// §III-B / Fig. 2: on trigger-conflicted recurring footprints, the
// second access disambiguates — Gaze must beat offset-only clearly.
TEST(PaperClaims, SecondAccessBeatsOffsetOnlyOnConflicts)
{
    Runner runner(smallConfig());
    WorkloadDef w = conflictTemplates();
    PrefetchMetrics gaze = runner.evaluate(w, PfSpec{"gaze"});
    PrefetchMetrics offset = runner.evaluate(w, PfSpec{"gaze:n=1"});

    EXPECT_GT(gaze.accuracy, 0.9); // strict matching is near-exact
    EXPECT_GT(gaze.accuracy, offset.accuracy + 0.2);
    EXPECT_GT(gaze.speedup, offset.speedup);
}

// Fig. 4: requiring all four initial accesses raises accuracy but
// loses coverage relative to two.
TEST(PaperClaims, FourAccessesLoseCoverage)
{
    Runner runner(smallConfig());
    WorkloadDef w = conflictTemplates(21);
    PrefetchMetrics n2 = runner.evaluate(w, PfSpec{"gaze"});
    PrefetchMetrics n4 = runner.evaluate(w, PfSpec{"gaze:n=4"});
    EXPECT_LT(n4.coverage, n2.coverage);
}

// §IV-B1: Gaze gains strongly on spatial streaming via the two-stage
// module (most blocks fetched to L2C, backed by stage-2 promotion).
TEST(PaperClaims, StreamingGains)
{
    Runner runner(smallConfig());
    WorkloadDef w = pureStream();
    PrefetchMetrics m = runner.evaluate(w, PfSpec{"gaze"});
    EXPECT_GT(m.speedup, 1.3);
    EXPECT_GT(m.coverage, 0.5);
}

// Fig. 10: with interleaved dense/sparse regions, the dedicated
// streaming module beats learning dense patterns in the PHT.
TEST(PaperClaims, StreamingModuleBeatsPhtReplay)
{
    Runner runner(smallConfig());
    WorkloadDef w = hazardMix();
    PrefetchMetrics sm = runner.evaluate(w, PfSpec{"gaze:sm4ss"});
    PrefetchMetrics pht = runner.evaluate(w, PfSpec{"gaze:pht4ss"});
    PrefetchMetrics full = runner.evaluate(w, PfSpec{"gaze"});
    EXPECT_GT(sm.speedup, pht.speedup);
    // Full Gaze tracks the SM4SS behaviour on streaming regions.
    EXPECT_GT(full.speedup, pht.speedup * 0.98);
}

// §IV-B3: vBerti issues redundant prefetches for resident blocks (no
// region-activation gating); spatial Gaze avoids them structurally.
TEST(PaperClaims, VbertiRedundantPrefetches)
{
    Runner runner(smallConfig());
    WorkloadDef w = pureStream(31);
    RunResult berti = runner.run(w, PfSpec{"vberti"});
    RunResult gaze = runner.run(w, PfSpec{"gaze"});
    // Redundancy ratio: dropped-on-hit per issued.
    double berti_red = berti.l1d.pfIssued
                           ? double(berti.l1d.pfDroppedHit)
                                 / berti.l1d.pfIssued
                           : 0.0;
    double gaze_red = gaze.l1d.pfIssued
                          ? double(gaze.l1d.pfDroppedHit)
                                / gaze.l1d.pfIssued
                          : 0.0;
    EXPECT_GT(berti_red, gaze_red + 0.1);
}

// Fig. 1 / Fig. 6 cloud column: offset-merging (PMP) loses accuracy
// under trigger conflicts while Gaze stays accurate.
TEST(PaperClaims, PmpDilutesOnConflicts)
{
    Runner runner(smallConfig());
    WorkloadDef w = conflictTemplates(41);
    PrefetchMetrics pmp = runner.evaluate(w, PfSpec{"pmp"});
    PrefetchMetrics gaze = runner.evaluate(w, PfSpec{"gaze"});
    EXPECT_GT(gaze.accuracy, pmp.accuracy + 0.15);
    EXPECT_GT(gaze.speedup, pmp.speedup);
}

// Fig. 17a: halving the region size below 4KB costs performance
// (coverage shrinks with the region).
TEST(PaperClaims, SmallRegionsLoseCoverage)
{
    Runner runner(smallConfig());
    WorkloadDef w = pureStream(51);
    PrefetchMetrics full = runner.evaluate(w, PfSpec{"gaze"});
    PrefetchMetrics half = runner.evaluate(
        w, PfSpec{"gaze:region=512:phtsets=8"});
    EXPECT_LT(half.speedup, full.speedup + 0.01);
    EXPECT_LT(half.coverage, full.coverage);
}

// Fig. 14 mechanism: under shared-DRAM contention, accurate Gaze
// degrades more gracefully than over-aggressive PMP.
TEST(PaperClaims, MulticoreContentionFavorsAccuracy)
{
    RunConfig cfg = smallConfig();
    cfg.warmupInstr = 30000;
    cfg.simInstr = 60000;
    cfg.system.dramAuto = false;
    cfg.system.dram.channels = 1; // force contention at 4 cores
    Runner runner(cfg);

    std::vector<WorkloadDef> mix(4, conflictTemplates(61));
    PrefetchMetrics gaze = runner.evaluateMix(mix, PfSpec{"gaze"});
    PrefetchMetrics pmp = runner.evaluateMix(mix, PfSpec{"pmp"});
    EXPECT_GT(gaze.speedup, pmp.speedup);
}

// §III-E: the full Gaze configuration costs ~4.46KB — a fraction of
// the fine-grained schemes (Table IV).
TEST(PaperClaims, StorageBudget)
{
    auto kib = [](const char *spec) {
        return double(makePrefetcher(spec)->storageBits()) / 8 / 1024;
    };
    EXPECT_NEAR(kib("gaze"), 4.46, 0.05);
    EXPECT_GT(kib("bingo") / kib("gaze"), 20.0);
}

} // namespace
} // namespace gaze
