/**
 * @file
 * Tests for the small common pieces: address helpers, saturating
 * counters (including the paper's Dense Counter update rules), and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"

namespace gaze
{
namespace
{

// ---------------------------------------------------------------- types

TEST(Types, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x1234), 0x1200u);
    EXPECT_EQ(blockNumber(0x1234), 0x48u);
    EXPECT_EQ(pageNumber(0x1234), 1u);
    EXPECT_EQ(pageAlign(0x1234), 0x1000u);
}

TEST(Types, RegionOffsetDefault4K)
{
    // Offset is the 6-bit block index within the page.
    EXPECT_EQ(regionOffset(0x0000), 0u);
    EXPECT_EQ(regionOffset(0x0040), 1u);
    EXPECT_EQ(regionOffset(0x0fff), 63u);
    EXPECT_EQ(regionOffset(0x1000), 0u);
}

TEST(Types, RegionOffsetOtherSizes)
{
    // 2KB regions have 32 offsets; 64KB regions have 1024.
    EXPECT_EQ(regionOffset(0x7c0, 2048), 31u);
    EXPECT_EQ(regionOffset(0x800, 2048), 0u);
    EXPECT_EQ(regionOffset(0xffc0, 65536), 1023u);
}

TEST(Types, RegionNumberAndBase)
{
    EXPECT_EQ(regionNumber(0x2fff, 4096), 2u);
    EXPECT_EQ(regionBase(0x2fff, 4096), 0x2000u);
    EXPECT_EQ(regionNumber(0x2fff, 2048), 5u);
}

TEST(Types, BlocksPerRegion)
{
    EXPECT_EQ(blocksPerRegion(512), 8u);
    EXPECT_EQ(blocksPerRegion(4096), 64u);
    EXPECT_EQ(blocksPerRegion(65536), 1024u);
}

TEST(Types, PowerOfTwoAndLog2)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(24));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Types, HashPcIsStableAndBounded)
{
    uint64_t h1 = hashPC(0x400100, 12);
    uint64_t h2 = hashPC(0x400100, 12);
    EXPECT_EQ(h1, h2);
    EXPECT_LT(h1, 1u << 12);
    // Different PCs should (almost always) hash differently.
    EXPECT_NE(hashPC(0x400100, 12), hashPC(0x400104, 12));
}

// --------------------------------------------------------- sat counters

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(3, 0);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, HalveAndAssign)
{
    SatCounter c(31, 0);
    c.assign(20);
    c.halve();
    EXPECT_EQ(c.value(), 10u);
    c.assign(99);
    EXPECT_EQ(c.value(), 31u); // clamped
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DenseCounter, PaperUpdateRules)
{
    DenseCounter dc;
    EXPECT_EQ(dc.value(), 0u);
    EXPECT_FALSE(dc.aboveHalf());

    // Slow increment: +1 per dense region, saturating at 7.
    for (int i = 0; i < 10; ++i)
        dc.onDense();
    EXPECT_EQ(dc.value(), 7u);
    EXPECT_TRUE(dc.full());
    EXPECT_TRUE(dc.aboveHalf());

    // Above the half threshold, a sparse region halves (fast path).
    dc.onSparse();
    EXPECT_EQ(dc.value(), 3u);
    dc.onSparse();
    EXPECT_EQ(dc.value(), 1u); // 3 > 2 so halve again
    // At or below the threshold, decrement by one (slow path).
    dc.onSparse();
    EXPECT_EQ(dc.value(), 0u);
    dc.onSparse();
    EXPECT_EQ(dc.value(), 0u); // floor
}

TEST(DenseCounter, HalfThresholdBoundary)
{
    DenseCounter dc;
    dc.onDense();
    dc.onDense();
    dc.onDense(); // value 3: "DC > 2" holds
    EXPECT_TRUE(dc.aboveHalf());
    dc.onSparse(); // halves to 1
    EXPECT_EQ(dc.value(), 1u);
    EXPECT_FALSE(dc.aboveHalf());
}

// ------------------------------------------------------------------ rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsBounded)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SkewedPrefersLowRanks)
{
    Rng r(11);
    uint64_t low = 0, total = 20000;
    for (uint64_t i = 0; i < total; ++i)
        low += r.skewed(100, 1.5) < 20;
    // With skew, rank<20 should be drawn far more than 20% of the time.
    EXPECT_GT(double(low) / total, 0.4);
}

} // namespace
} // namespace gaze
