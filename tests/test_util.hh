/**
 * @file
 * Shared fakes and helpers for the unit tests: a scriptable lower-level
 * memory device with fixed latency, a fill receiver that records
 * completions, and an issue-capturing prefetcher wrapper.
 */

#pragma once

#include <queue>
#include <vector>

#include "sim/prefetcher.hh"
#include "sim/request.hh"

namespace gaze::test
{

/**
 * A perfect lower level: accepts everything (unless capped), responds
 * to reads/prefetches after a fixed latency, swallows writebacks.
 */
class FakeMemory : public MemoryDevice, public FillReceiver
{
  public:
    explicit FakeMemory(const Cycle *clock_, Cycle latency_ = 100)
        : clock(clock_), latency(latency_)
    {
    }

    bool
    sendRequest(const Request &req) override
    {
        received.push_back(req);
        if (req.type == AccessType::Writeback) {
            ++writebacks;
            return true;
        }
        if (rejectReads)
            return false;
        pending.push(Pending{*clock + latency, req});
        return true;
    }

    void
    tick() override
    {
        while (!pending.empty() && pending.front().ready <= *clock) {
            Request r = pending.front().req;
            pending.pop();
            if (r.requester)
                r.requester->recvFill(r);
        }
    }

    void recvFill(const Request &) override {}

    /** All requests ever received, in order. */
    std::vector<Request> received;
    uint64_t writebacks = 0;
    bool rejectReads = false;

  private:
    struct Pending
    {
        Cycle ready;
        Request req;
    };

    const Cycle *clock;
    Cycle latency;
    std::queue<Pending> pending;
};

/** Records completions delivered to it. */
class FakeReceiver : public FillReceiver
{
  public:
    void
    recvFill(const Request &req) override
    {
        fills.push_back(req);
    }

    std::vector<Request> fills;
};

/** One captured prefetch issue. */
struct IssuedPf
{
    Addr addr;
    uint32_t fillLevel;
    bool virt;
};

/**
 * Mixin capturing Prefetcher::issuePrefetch calls instead of needing a
 * cache. Use as: CapturingPrefetcher<GazePrefetcher> pf(config);
 */
template <typename Base>
class CapturingPrefetcher : public Base
{
  public:
    using Base::Base;

    bool
    issuePrefetch(Addr addr, uint32_t fill_level, bool virt) override
    {
        issued.push_back(IssuedPf{blockAlign(addr), fill_level, virt});
        return true;
    }

    /** Attach with a bare context (level defaults to L1). */
    void
    attachBare(uint32_t level = levelL1)
    {
        PrefetcherContext ctx;
        ctx.level = level;
        this->attach(ctx);
    }

    std::vector<IssuedPf> issued;
};

/** Drive a prefetcher with a synthetic demand load. */
inline DemandAccess
load(Addr vaddr, PC pc, bool hit = false, Cycle cycle = 0)
{
    DemandAccess a;
    a.vaddr = vaddr;
    a.paddr = vaddr; // identity mapping is fine for unit tests
    a.pc = pc;
    a.hit = hit;
    a.type = AccessType::Load;
    a.cycle = cycle;
    return a;
}

/** Run pf->tick() n times (drains prefetch buffers). */
template <typename Pf>
void
drain(Pf &pf, int n = 200)
{
    for (int i = 0; i < n; ++i)
        pf.tick();
}

} // namespace gaze::test
