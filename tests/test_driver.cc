/**
 * @file
 * Suite-runner driver tests: the thread pool drains everything it is
 * given, JsonWriter emits syntactically valid documents, and a tiny
 * prefetcher x workload matrix run in-process produces parseable JSON
 * with one cell per matrix entry and sane metrics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>

#include "driver/driver.hh"
#include "driver/thread_pool.hh"
#include "harness/export.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

// ---- a minimal recursive-descent JSON syntax checker ----------------
// Enough to assert "this is JSON a real parser would accept": objects,
// arrays, strings with escapes, numbers, true/false/null.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text)
        : s(text)
    {
    }

    bool
    valid()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(unsigned(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString()
    {
        if (s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                if (s[pos] == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size()
                            || !std::isxdigit(unsigned(s[pos])))
                            return false;
                    }
                }
            }
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    parseNumber()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(unsigned(s[pos])) || s[pos] == '.'
                   || s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+'
                   || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    bool
    parseValue()
    {
        skipWs();
        if (pos >= s.size())
            return false;
        char c = s[pos];
        if (c == '{')
            return parseCompound('}', /*object=*/true);
        if (c == '[')
            return parseCompound(']', /*object=*/false);
        if (c == '"')
            return parseString();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return parseNumber();
    }

    bool
    parseCompound(char close, bool object)
    {
        ++pos; // opening brace/bracket
        skipWs();
        if (pos < s.size() && s[pos] == close) {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (object) {
                if (!parseString())
                    return false;
                skipWs();
                if (pos >= s.size() || s[pos] != ':')
                    return false;
                ++pos;
            }
            if (!parseValue())
                return false;
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == close) {
                ++pos;
                return true;
            }
            return false;
        }
    }

    const std::string &s;
    size_t pos = 0;
};

// ---- ThreadPool -----------------------------------------------------

TEST(ThreadPool, DrainsEveryJob)
{
    std::atomic<int> counter{0};
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> counter{0};
    ThreadPool pool(2);
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolDeath, ZeroWorkersPanics)
{
    EXPECT_DEATH(ThreadPool{0}, "at least one worker");
}

// ---- JsonWriter -----------------------------------------------------

TEST(JsonWriter, NestedDocumentIsValid)
{
    JsonWriter j;
    j.beginObject();
    j.field("name", std::string("x"));
    j.key("list").beginArray();
    j.value(uint64_t(1)).value(2.5).value(true);
    j.beginObject().field("inner", std::string("y")).endObject();
    j.endArray();
    j.endObject();

    std::string text = j.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_EQ(text,
              "{\"name\":\"x\",\"list\":[1,2.5,true,{\"inner\":\"y\"}]}");
}

TEST(JsonWriter, EscapesStringsAndRejectsNonFinite)
{
    JsonWriter j;
    j.beginObject();
    j.field("quote\"back\\slash\nnewline", std::string("\ttab"));
    j.field("nan", 0.0 / 0.0);
    j.endObject();

    std::string text = j.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
}

TEST(JsonWriterDeath, MisuseIsFatal)
{
    JsonWriter no_key;
    no_key.beginObject();
    EXPECT_DEATH(no_key.value(uint64_t(1)), "without a key");

    JsonWriter open;
    open.beginObject();
    EXPECT_DEATH(open.str(), "open scopes");

    JsonWriter two_roots;
    two_roots.beginObject();
    two_roots.endObject();
    EXPECT_DEATH(two_roots.beginObject(), "root value");
}

// ---- runMatrix ------------------------------------------------------

MatrixSpec
tinySpec()
{
    MatrixSpec spec;
    spec.prefetchers = {"ip_stride", "sms"};
    spec.workloads = {findWorkload("leslie3d"), findWorkload("mcf")};
    spec.run.warmupInstr = 1000;
    spec.run.simInstr = 4000;
    spec.threads = 4;
    spec.name = "driver_test";
    return spec;
}

TEST(Driver, TinyMatrixProducesOneCellPerEntry)
{
    MatrixSpec spec = tinySpec();
    MatrixResult result = runMatrix(spec);

    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_GE(result.threadsUsed, 1u);
    for (const auto &c : result.cells) {
        EXPECT_GT(c.ipc, 0.0) << c.prefetcher << " x " << c.workload;
        EXPECT_GT(c.baseIpc, 0.0);
        EXPECT_GT(c.metrics.speedup, 0.0);
        EXPECT_GE(c.metrics.accuracy, 0.0);
        EXPECT_LE(c.metrics.accuracy, 1.0);
    }

    // Both prefetcher rows share the same baseline per workload.
    ASSERT_EQ(result.cells[0].workload, result.cells[2].workload);
    EXPECT_EQ(result.cells[0].baseIpc, result.cells[2].baseIpc);

    // One suite aggregate per (prefetcher, suite) pair.
    ASSERT_EQ(result.suites.size(), 2u);
    for (const auto &s : result.suites) {
        EXPECT_EQ(s.suite, "spec06");
        EXPECT_EQ(s.workloads, 2u);
        EXPECT_GT(s.summary.speedup, 0.0);
    }
}

TEST(Driver, MatrixJsonIsParseable)
{
    MatrixSpec spec = tinySpec();
    MatrixResult result = runMatrix(spec);
    std::string json = matrixToJson(spec, result);

    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"experiment\":\"driver_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cells\":["), std::string::npos);
    EXPECT_NE(json.find("\"suites\":["), std::string::npos);
    EXPECT_NE(json.find("\"prefetcher\":\"ip_stride\""),
              std::string::npos);

    // The table renderer covers every suite row.
    std::string table = matrixToTable(result);
    EXPECT_NE(table.find("ip_stride"), std::string::npos);
    EXPECT_NE(table.find("sms"), std::string::npos);
}

TEST(Driver, MulticoreCellsRun)
{
    MatrixSpec spec = tinySpec();
    spec.prefetchers = {"ip_stride"};
    spec.workloads = {findWorkload("leslie3d")};
    spec.cores = 2;
    MatrixResult result = runMatrix(spec);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_GT(result.cells[0].ipc, 0.0);
}

TEST(DriverDeath, EmptyAxesPanic)
{
    MatrixSpec no_pf = tinySpec();
    no_pf.prefetchers.clear();
    EXPECT_DEATH(runMatrix(no_pf), "prefetcher axis");

    MatrixSpec no_w = tinySpec();
    no_w.workloads.clear();
    EXPECT_DEATH(runMatrix(no_w), "workload axis");
}

} // namespace
} // namespace gaze
