/**
 * @file
 * gaze_serve service tests, all in-process against the transport-
 * independent Service object (the Unix-socket server drives the same
 * code): the determinism contract (a daemon report is byte-identical
 * to the offline gaze_campaign pipeline), concurrent-client dedup
 * (overlapping submissions simulate each shared cell exactly once),
 * the repeat-submission pure-cache-hit fast path, admission control
 * (queue cap all-or-nothing, per-client in-flight cap, drain
 * rejections), deterministic priority scheduling for a fixed arrival
 * sequence, the shared status-JSON shape, and failure propagation
 * (a throwing cell becomes an error event, never a dead daemon).
 * Labeled "concurrency": the TSan gate re-runs all of this with the
 * race detector watching the scheduler and session paths.
 */

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/engine.hh"
#include "campaign/json.hh"
#include "campaign/report.hh"
#include "campaign/spec.hh"
#include "harness/cell_key.hh"
#include "serve/protocol.hh"
#include "serve/service.hh"

namespace gaze
{
namespace
{

using serve::Service;
using serve::ServiceConfig;

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

JsonValue
parseSpecText(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, &doc, &error)) << error;
    return doc;
}

/** Spec over one prefetcher and a workload list, tiny phases. */
std::string
specText(const std::string &name, const std::string &pf,
         const std::string &workloads)
{
    return "{\"name\":\"" + name + "\",\"prefetchers\":[\"" + pf
           + "\"],\"workloads\":[" + workloads
           + "],\"warmup\":500,\"sim\":2000}";
}

/** The offline pipeline the daemon must be byte-identical to. */
CampaignReport
offlineReport(const std::string &spec, const std::string &dirName)
{
    Campaign campaign =
        expandCampaign(parseCampaignSpec(parseSpecText(spec)));
    ResultCache cache(freshDir(dirName));
    CampaignRunOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    runCampaign(campaign, cache, opt);
    return buildReport(campaign, cache, nullptr);
}

/** One in-process session collecting its event lines. */
class TestClient
{
  public:
    explicit TestClient(Service &service) : svc(service)
    {
        id = svc.openSession([this](const std::string &line) {
            // Runs with the service lock held (possibly on a worker
            // thread); only this client's own state is touched.
            std::lock_guard<std::mutex> lock(mtx);
            lines.push_back(line);
        });
    }

    ~TestClient() { svc.closeSession(id); }

    TestClient(const TestClient &) = delete;
    TestClient &operator=(const TestClient &) = delete;

    void send(const std::string &line) { svc.handleLine(id, line); }

    void
    submit(const std::string &spec, int64_t priority = 0)
    {
        send(serve::encodeSubmit(parseSpecText(spec), priority));
    }

    /** All received events with the given "event" name, parsed. */
    std::vector<JsonValue>
    events(const std::string &name) const
    {
        std::vector<std::string> snapshot;
        {
            std::lock_guard<std::mutex> lock(mtx);
            snapshot = lines;
        }
        std::vector<JsonValue> out;
        for (const auto &line : snapshot) {
            JsonValue doc;
            std::string error;
            EXPECT_TRUE(parseJson(line, &doc, &error))
                << error << " in " << line;
            const JsonValue *e = doc.find("event");
            if (e && e->isString() && e->asString() == name)
                out.push_back(doc);
        }
        return out;
    }

    std::string
    field(const JsonValue &doc, const char *key) const
    {
        const JsonValue *v = doc.find(key);
        return v && v->isString() ? v->asString() : "";
    }

    double
    number(const JsonValue &doc, const char *key) const
    {
        const JsonValue *v = doc.find(key);
        return v && v->isNumber() ? v->asNumber() : -1.0;
    }

  private:
    Service &svc;
    uint64_t id = 0;
    mutable std::mutex mtx;
    std::vector<std::string> lines;
};

/** Blocks executor calls until release(); reports when calls start. */
struct Gate
{
    std::mutex mtx;
    std::condition_variable cv;
    bool open = false;
    int started = 0;

    void
    waitOpen()
    {
        std::unique_lock<std::mutex> lock(mtx);
        ++started;
        cv.notify_all();
        cv.wait(lock, [this] { return open; });
    }

    void
    release()
    {
        std::unique_lock<std::mutex> lock(mtx);
        open = true;
        cv.notify_all();
    }

    void
    waitStarted(int n)
    {
        std::unique_lock<std::mutex> lock(mtx);
        cv.wait(lock, [this, n] { return started >= n; });
    }
};

TEST(ServeService, SingleClientReportMatchesOfflineByteForByte)
{
    const std::string spec =
        specText("serve_one", "ip_stride", "\"mcf\",\"leslie3d\"");
    CampaignReport expected = offlineReport(spec, "serve_one_offline");

    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_one_daemon");
    cfg.threads = 2;
    Service service(cfg);
    TestClient client(service);
    client.submit(spec);
    service.drain();

    auto accepted = client.events("accepted");
    ASSERT_EQ(accepted.size(), 1u);
    EXPECT_EQ(client.number(accepted[0], "cells"), 4.0);
    EXPECT_EQ(client.number(accepted[0], "cached"), 0.0);

    auto reports = client.events("report");
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(client.field(reports[0], "name"), "serve_one");
    EXPECT_EQ(client.field(reports[0], "report"), expected.json);
    EXPECT_EQ(client.field(reports[0], "csv"), expected.csv);
    EXPECT_EQ(client.events("error").size(), 0u);
    EXPECT_EQ(service.schedulerStats().executed, 4u);
}

TEST(ServeService, ConcurrentClientsShareCellsAndAllReportsComplete)
{
    // Four overlapping specs over three workloads: the union is 3
    // baselines + 3 cells = 6 distinct jobs, but 18 are requested.
    // Whatever the interleaving, each shared cell simulates exactly
    // once and every client's report equals its offline twin.
    const std::string specs[4] = {
        specText("serve_a", "ip_stride", "\"mcf\",\"leslie3d\""),
        specText("serve_b", "ip_stride", "\"leslie3d\",\"canneal\""),
        specText("serve_c", "ip_stride", "\"mcf\",\"canneal\""),
        specText("serve_d", "ip_stride",
                 "\"mcf\",\"leslie3d\",\"canneal\""),
    };
    CampaignReport expected[4] = {
        offlineReport(specs[0], "serve_multi_a"),
        offlineReport(specs[1], "serve_multi_b"),
        offlineReport(specs[2], "serve_multi_c"),
        offlineReport(specs[3], "serve_multi_d"),
    };

    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_multi_daemon");
    cfg.threads = 2;
    Gate gate;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        gate.waitOpen();
        return executeCampaignJob(run, job);
    };
    Service service(cfg);

    std::vector<std::unique_ptr<TestClient>> clients;
    for (int i = 0; i < 4; ++i)
        clients.push_back(std::make_unique<TestClient>(service));
    // All four land while the first cells are still in flight, so the
    // overlap resolves through in-flight attaches, not the cache.
    for (int i = 0; i < 4; ++i)
        clients[size_t(i)]->submit(specs[size_t(i)]);
    gate.release();
    service.drain();

    for (int i = 0; i < 4; ++i) {
        auto reports = clients[size_t(i)]->events("report");
        ASSERT_EQ(reports.size(), 1u) << "client " << i;
        EXPECT_EQ(clients[size_t(i)]->field(reports[0], "report"),
                  expected[size_t(i)].json)
            << "client " << i;
        EXPECT_EQ(clients[size_t(i)]->field(reports[0], "csv"),
                  expected[size_t(i)].csv)
            << "client " << i;
        EXPECT_EQ(clients[size_t(i)]->events("error").size(), 0u);
    }

    serve::SchedulerStats stats = service.schedulerStats();
    EXPECT_EQ(stats.executed, 6u); // the union, exactly once each
    EXPECT_EQ(stats.executed + stats.cacheHits + stats.dedupHits, 18u);
    EXPECT_GT(stats.dedupHits, 0u);
    EXPECT_EQ(service.counters().completed, 4u);
}

TEST(ServeService, RepeatSubmissionIsAnsweredWithZeroSimulations)
{
    const std::string spec =
        specText("serve_repeat", "ip_stride", "\"mcf\"");

    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_repeat_daemon");
    cfg.threads = 2;
    Service service(cfg);
    TestClient client(service);
    client.submit(spec);
    service.drain();
    ASSERT_EQ(client.events("report").size(), 1u);
    uint64_t executed = service.schedulerStats().executed;
    EXPECT_EQ(executed, 2u); // 1 baseline + 1 cell

    client.submit(spec);
    service.drain();

    auto accepted = client.events("accepted");
    ASSERT_EQ(accepted.size(), 2u);
    EXPECT_EQ(client.number(accepted[1], "cached"), 2.0);
    EXPECT_EQ(client.number(accepted[1], "enqueued"), 0.0);
    EXPECT_EQ(client.number(accepted[1], "shared"), 0.0);
    EXPECT_EQ(service.schedulerStats().executed, executed);

    auto reports = client.events("report");
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(client.field(reports[0], "report"),
              client.field(reports[1], "report"));
}

TEST(ServeService, QueueFullRejectionIsAllOrNothing)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_admission_daemon");
    cfg.threads = 1;
    cfg.maxQueuedCells = 2;
    Service service(cfg);
    TestClient client(service);

    // 2 workloads -> 4 jobs > the 2-cell cap: rejected outright, and
    // nothing may have been enqueued from the batch.
    client.submit(
        specText("serve_big", "ip_stride", "\"mcf\",\"leslie3d\""));
    auto rejected = client.events("rejected");
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(client.field(rejected[0], "reason").find("queue full"),
              std::string::npos);
    EXPECT_EQ(service.schedulerStats().executed, 0u);
    EXPECT_EQ(service.counters().rejected, 1u);
    EXPECT_EQ(service.counters().submits, 0u);

    // A batch that fits goes through on the same connection.
    client.submit(specText("serve_fit", "ip_stride", "\"mcf\""));
    service.drain();
    EXPECT_EQ(client.events("report").size(), 1u);
    EXPECT_EQ(service.schedulerStats().executed, 2u);
}

TEST(ServeService, PerClientInFlightCapRejectsUntilReportDelivered)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_inflight_daemon");
    cfg.threads = 1;
    cfg.maxClientInFlight = 1;
    Gate gate;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        gate.waitOpen();
        return executeCampaignJob(run, job);
    };
    Service service(cfg);
    TestClient client(service);

    client.submit(specText("serve_first", "ip_stride", "\"mcf\""));
    EXPECT_EQ(client.events("accepted").size(), 1u);
    gate.waitStarted(1);

    client.submit(
        specText("serve_second", "ip_stride", "\"leslie3d\""));
    auto rejected = client.events("rejected");
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(client.field(rejected[0], "reason").find("in flight"),
              std::string::npos);

    gate.release();
    service.drain();
    ASSERT_EQ(client.events("report").size(), 1u);

    // The cap frees up once the report is out.
    client.submit(
        specText("serve_second", "ip_stride", "\"leslie3d\""));
    service.drain();
    EXPECT_EQ(client.events("report").size(), 2u);
}

TEST(ServeService, PriorityOrdersReadyCellsDeterministically)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_priority_daemon");
    cfg.threads = 1; // serialized starts make the order observable
    Gate gate;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        gate.waitOpen();
        return executeCampaignJob(run, job);
    };
    Service service(cfg);
    TestClient client(service);

    // The mcf baseline starts (and blocks); everything else queues.
    client.submit(specText("serve_p0", "ip_stride", "\"mcf\""), 0);
    gate.waitStarted(1);
    client.submit(specText("serve_p1", "ip_stride", "\"leslie3d\""), 1);
    client.submit(specText("serve_p9", "ip_stride", "\"canneal\""), 9);
    gate.release();
    service.drain();

    std::vector<std::string> log = service.executionLog();
    ASSERT_EQ(log.size(), 6u);
    // Start order: the blocked mcf baseline, then priority 9's two
    // cells (baseline first: arrival order breaks priority ties),
    // then priority 1's, then the mcf cell left at priority 0.
    EXPECT_NE(log[0].find("mcf"), std::string::npos);
    EXPECT_NE(log[0].find("baseline"), std::string::npos);
    EXPECT_NE(log[1].find("canneal"), std::string::npos);
    EXPECT_NE(log[1].find("baseline"), std::string::npos);
    EXPECT_NE(log[2].find("canneal"), std::string::npos);
    EXPECT_NE(log[3].find("leslie3d"), std::string::npos);
    EXPECT_NE(log[3].find("baseline"), std::string::npos);
    EXPECT_NE(log[4].find("leslie3d"), std::string::npos);
    EXPECT_NE(log[5].find("mcf"), std::string::npos);
    EXPECT_EQ(log[5].find("baseline"), std::string::npos);
}

TEST(ServeService, StatusJsonSharesTheCampaignStatusShape)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_status_daemon");
    cfg.threads = 1;
    Gate gate;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        gate.waitOpen();
        return executeCampaignJob(run, job);
    };
    Service service(cfg);
    TestClient client(service);
    client.submit(specText("serve_status", "ip_stride", "\"mcf\""));
    gate.waitStarted(1);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(service.statusJson(), &doc, &error)) << error;
    const JsonValue *server = doc.find("server");
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->find("threads")->asNumber(), 1.0);
    EXPECT_EQ(server->find("clients")->asNumber(), 1.0);
    EXPECT_EQ(server->find("submits")->asNumber(), 1.0);
    EXPECT_FALSE(server->find("draining")->asBool());

    // One in-flight submission, rendered with the same keys
    // `gaze_campaign status --json` prints.
    const JsonValue *subs = doc.find("submissions");
    ASSERT_NE(subs, nullptr);
    ASSERT_EQ(subs->items().size(), 1u);
    const JsonValue &sub = subs->items()[0];
    EXPECT_EQ(sub.find("campaign")->asString(), "serve_status");
    EXPECT_EQ(sub.find("schema")->asNumber(),
              double(kCellSchemaVersion));
    EXPECT_EQ(sub.find("total")->asNumber(), 2.0);
    EXPECT_EQ(sub.find("cached")->asNumber()
                  + sub.find("missing")->asNumber(),
              2.0);

    gate.release();
    service.drain();

    // The status op answers through the same event channel.
    client.send(serve::encodeStatus());
    auto statuses = client.events("status");
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_EQ(statuses[0]
                  .find("server")
                  ->find("completed")
                  ->asNumber(),
              1.0);
}

TEST(ServeService, InvalidRequestsAreRejectedNeverFatal)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_reject_daemon");
    cfg.threads = 1;
    Service service(cfg);
    TestClient client(service);

    client.send("this is not json");
    client.send(R"({"op":"frobnicate"})");
    client.send(R"({"op":"submit"})"); // no spec
    client.send(R"({"op":"status","spec":{}})");
    client.send(R"({"op":"submit","priority":1.5,"spec":{}})");
    // Spec-level errors come back as rejections with the diagnostic
    // the offline parser would have died with.
    client.submit(specText("bad_pf", "warp_drive", "\"mcf\""));
    client.submit(specText("bad_wl", "ip_stride", "\"nope\""));
    client.submit(
        R"({"name":"bad_key","prefetchers":["gaze"],"typo_key":1})");

    auto rejected = client.events("rejected");
    ASSERT_EQ(rejected.size(), 8u);
    EXPECT_NE(client.field(rejected[5], "reason").find("warp_drive"),
              std::string::npos);
    EXPECT_NE(client.field(rejected[6], "reason").find("workload"),
              std::string::npos);
    EXPECT_NE(client.field(rejected[7], "reason").find("typo_key"),
              std::string::npos);

    // The daemon is unharmed: a good submission still completes.
    client.submit(specText("serve_ok", "ip_stride", "\"mcf\""));
    service.drain();
    EXPECT_EQ(client.events("report").size(), 1u);
}

TEST(ServeService, DrainRejectsNewWorkButFinishesInFlight)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_drain_daemon");
    cfg.threads = 1;
    Gate gate;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        gate.waitOpen();
        return executeCampaignJob(run, job);
    };
    Service service(cfg);
    TestClient client(service);
    client.submit(specText("serve_drainee", "ip_stride", "\"mcf\""));
    gate.waitStarted(1);

    service.beginDrain();
    client.submit(specText("serve_late", "ip_stride", "\"leslie3d\""));
    auto rejected = client.events("rejected");
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(client.field(rejected[0], "reason").find("draining"),
              std::string::npos);

    // The in-flight submission still runs to its report.
    gate.release();
    service.drain();
    ASSERT_EQ(client.events("report").size(), 1u);
    EXPECT_EQ(service.schedulerStats().executed, 2u);
}

TEST(ServeService, FailingCellBecomesErrorEventAndIsRetryable)
{
    ServiceConfig cfg;
    cfg.cacheDir = freshDir("serve_fail_daemon");
    cfg.threads = 1;
    bool sabotage = true;
    cfg.executor = [&](const RunConfig &run, const CampaignJob &job) {
        // The flag is written only while the service is idle.
        if (sabotage && !job.isBaseline)
            throw std::runtime_error("injected cell failure");
        return executeCampaignJob(run, job);
    };
    Service service(cfg);
    TestClient client(service);

    const std::string spec =
        specText("serve_flaky", "ip_stride", "\"mcf\"");
    client.submit(spec);
    service.drain();

    auto errors = client.events("error");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(client.field(errors[0], "message")
                  .find("injected cell failure"),
              std::string::npos);
    EXPECT_EQ(client.events("report").size(), 0u);
    EXPECT_EQ(service.schedulerStats().failed, 1u);

    // The failed cell was never published: the same spec resubmitted
    // with the fault gone simulates the cell and reports normally.
    sabotage = false;
    client.submit(spec);
    service.drain();
    EXPECT_EQ(client.events("report").size(), 1u);
    EXPECT_EQ(service.schedulerStats().failed, 1u);
}

} // namespace
} // namespace gaze
