/**
 * @file
 * Behavioral tests for the baseline prefetchers: each scheme's
 * characteristic mechanism is exercised in isolation (stride
 * confidence, event-keyed footprints, long/short co-association,
 * dual-pattern bandwidth switching, counter-vector merging, IP
 * classification, signature paths, timely local deltas) plus the
 * factory's spec grammar.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hh"
#include "core/gaze.hh"
#include "prefetchers/berti.hh"
#include "prefetchers/bingo.hh"
#include "prefetchers/dspatch.hh"
#include "prefetchers/factory.hh"
#include "prefetchers/ip_stride.hh"
#include "prefetchers/ipcp.hh"
#include "prefetchers/pmp.hh"
#include "prefetchers/sms.hh"
#include "prefetchers/spp_ppf.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::CapturingPrefetcher;
using test::drain;
using test::load;

// ------------------------------------------------------------ ip_stride

TEST(IpStride, DetectsConstantStride)
{
    CapturingPrefetcher<IpStridePrefetcher> pf;
    pf.attachBare();
    // Stride of 2 blocks, same PC: confidence builds after repeats.
    for (int i = 0; i < 6; ++i)
        pf.onAccess(load(0x10000 + Addr(i) * 128, 0x400100));
    ASSERT_FALSE(pf.issued.empty());
    // Prefetches run ahead along the stride.
    Addr last_seen = 0x10000 + 5 * 128;
    EXPECT_EQ(pf.issued.back().addr % 128, last_seen % 128);
    EXPECT_GT(pf.issued.back().addr, last_seen);
}

TEST(IpStride, NoIssueWithoutConfidence)
{
    CapturingPrefetcher<IpStridePrefetcher> pf;
    pf.attachBare();
    pf.onAccess(load(0x10000, 0x400100));
    pf.onAccess(load(0x10000 + 128, 0x400100));
    // One stride observation is not enough (threshold 2).
    EXPECT_TRUE(pf.issued.empty());
}

TEST(IpStride, StaysWithinPage)
{
    CapturingPrefetcher<IpStridePrefetcher> pf;
    pf.attachBare();
    // Stride right up to the page edge.
    for (int i = 0; i < 12; ++i)
        pf.onAccess(load(0x10000 + 0xc00 + Addr(i) * 64, 0x400100));
    for (const auto &p : pf.issued)
        EXPECT_EQ(pageNumber(p.addr), pageNumber(Addr(0x10000)));
}

TEST(IpStride, DistinctPcsTrackIndependently)
{
    CapturingPrefetcher<IpStridePrefetcher> pf;
    pf.attachBare();
    // Interleaved PCs with different strides both learn.
    for (int i = 0; i < 8; ++i) {
        pf.onAccess(load(0x10000 + Addr(i) * 64, 0xAAA));
        pf.onAccess(load(0x20000 + Addr(i) * 192, 0xBBB));
    }
    bool saw_a = false, saw_b = false;
    for (const auto &p : pf.issued) {
        saw_a |= pageNumber(p.addr) == pageNumber(Addr(0x10000));
        saw_b |= pageNumber(p.addr) == pageNumber(Addr(0x20000));
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

// ------------------------------------------------------------------ sms

TEST(Sms, LearnsAndReplaysByPcOffset)
{
    CapturingPrefetcher<SmsPrefetcher> pf;
    pf.attachBare();
    // Region A: trigger offset 3 (2KB regions -> 32 offsets).
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 7 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 11 * 64, 0x500100));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);

    // Same PC + same trigger offset in a new region replays.
    pf.onAccess(load(0x200000 + 3 * 64, 0x500100));
    drain(pf);
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        offs.push_back(regionOffset(p.addr, 2048));
    std::sort(offs.begin(), offs.end());
    EXPECT_EQ(offs, (std::vector<Addr>{7, 11}));
}

TEST(Sms, DifferentPcDoesNotMatch)
{
    CapturingPrefetcher<SmsPrefetcher> pf;
    pf.attachBare();
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 7 * 64, 0x500100));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);

    pf.onAccess(load(0x200000 + 3 * 64, 0x999999));
    drain(pf);
    EXPECT_TRUE(pf.issued.empty());
}

TEST(Sms, OffsetSchemeIgnoresPc)
{
    SmsParams params;
    params.scheme = SmsEventScheme::Offset;
    params.phtSets = 64;
    params.phtWays = 1;
    CapturingPrefetcher<SmsPrefetcher> pf(params);
    pf.attachBare();
    pf.onAccess(load(0x100000 + 3 * 64, 0xAAA));
    pf.onAccess(load(0x100000 + 9 * 64, 0xAAA));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);

    // Different PC, same trigger offset: the offset scheme matches.
    pf.onAccess(load(0x200000 + 3 * 64, 0xBBB));
    drain(pf);
    EXPECT_FALSE(pf.issued.empty());
}

TEST(Sms, SchemeNamesAndStorage)
{
    EXPECT_EQ(SmsPrefetcher(SmsParams{}).name(), "sms");
    SmsParams off;
    off.scheme = SmsEventScheme::Offset;
    EXPECT_EQ(SmsPrefetcher(off).name(), "sms_offset");
    // Table IV: SMS with a 16k-entry PHT is in the ~100KB class.
    double kib = double(SmsPrefetcher(SmsParams{}).storageBits()) / 8
                 / 1024;
    EXPECT_GT(kib, 90.0);
}

// ---------------------------------------------------------------- bingo

TEST(Bingo, ExactLongEventMatchWins)
{
    CapturingPrefetcher<BingoPrefetcher> pf;
    pf.attachBare();
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 7 * 64, 0x500100));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);

    // Same PC + same full address (region revisit): exact match.
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    drain(pf);
    EXPECT_EQ(pf.exactMatches(), 1u);
    ASSERT_FALSE(pf.issued.empty());
    EXPECT_EQ(pf.issued[0].fillLevel, uint32_t(levelL1));
}

TEST(Bingo, ShortEventApproximateFallback)
{
    CapturingPrefetcher<BingoPrefetcher> pf;
    pf.attachBare();
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 7 * 64, 0x500100));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);

    // New region (different address), same PC+offset: approx match.
    pf.onAccess(load(0x200000 + 3 * 64, 0x500100));
    drain(pf);
    EXPECT_EQ(pf.approxMatches(), 1u);
    EXPECT_FALSE(pf.issued.empty());
}

TEST(Bingo, VotingSplitsLevelsByAgreement)
{
    CapturingPrefetcher<BingoPrefetcher> pf;
    pf.attachBare();
    // Three generations, same short event, different long events:
    // block 7 appears in all (100% vote -> L1), 11 in one (33% -> L2).
    pf.onAccess(load(0x100000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 7 * 64, 0x500100));
    pf.onAccess(load(0x100000 + 11 * 64, 0x500100));
    pf.onEvict(0x100000 + 3 * 64, 0x100000 + 3 * 64);
    pf.onAccess(load(0x180000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x180000 + 7 * 64, 0x500100));
    pf.onAccess(load(0x180000 + 13 * 64, 0x500100));
    pf.onEvict(0x180000 + 3 * 64, 0x180000 + 3 * 64);
    pf.onAccess(load(0x280000 + 3 * 64, 0x500100));
    pf.onAccess(load(0x280000 + 7 * 64, 0x500100));
    pf.onAccess(load(0x280000 + 21 * 64, 0x500100));
    pf.onEvict(0x280000 + 3 * 64, 0x280000 + 3 * 64);

    pf.issued.clear();
    pf.onAccess(load(0x200000 + 3 * 64, 0x500100));
    drain(pf);
    std::map<Addr, uint32_t> level;
    for (const auto &p : pf.issued)
        if (regionBase(p.addr, 2048) == 0x200000u)
            level[regionOffset(p.addr, 2048)] = p.fillLevel;
    ASSERT_TRUE(level.count(7));
    EXPECT_EQ(level[7], uint32_t(levelL1)); // unanimous
    ASSERT_TRUE(level.count(11));
    EXPECT_EQ(level[11], uint32_t(levelL2)); // half vote
}

// -------------------------------------------------------------- dspatch

/** DSPatch with a scriptable bandwidth signal. */
class TestableDspatch : public DspatchPrefetcher
{
  public:
    using DspatchPrefetcher::DspatchPrefetcher;
    double busUtilization() const override { return util; }
    double util = 0.0;
};

TEST(Dspatch, CovPUnionUnderLowBandwidth)
{
    CapturingPrefetcher<TestableDspatch> pf;
    pf.attachBare();
    pf.util = 0.1;
    // Two generations from one PC with different footprints.
    pf.onAccess(load(0x100000 + 0 * 64, 0x600100));
    pf.onAccess(load(0x100000 + 2 * 64, 0x600100));
    pf.onEvict(0x100000, 0x100000);
    pf.onAccess(load(0x180000 + 0 * 64, 0x600100));
    pf.onAccess(load(0x180000 + 4 * 64, 0x600100));
    pf.onEvict(0x180000, 0x180000);

    pf.issued.clear();
    pf.onAccess(load(0x200000 + 0 * 64, 0x600100));
    drain(pf);
    // CovP = union {2, 4}: both prefetched (2,4 anchored at trigger 0).
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        if (regionBase(p.addr, 2048) == 0x200000u)
            offs.push_back(regionOffset(p.addr, 2048));
    std::sort(offs.begin(), offs.end());
    EXPECT_EQ(offs, (std::vector<Addr>{2, 4}));
    EXPECT_GE(pf.covPredictions(), 1u);
}

TEST(Dspatch, AccPIntersectionUnderHighBandwidth)
{
    CapturingPrefetcher<TestableDspatch> pf;
    pf.attachBare();
    pf.util = 0.9;
    pf.onAccess(load(0x100000 + 0 * 64, 0x600100));
    pf.onAccess(load(0x100000 + 2 * 64, 0x600100));
    pf.onAccess(load(0x100000 + 4 * 64, 0x600100));
    pf.onEvict(0x100000, 0x100000);
    pf.onAccess(load(0x180000 + 0 * 64, 0x600100));
    pf.onAccess(load(0x180000 + 4 * 64, 0x600100));
    pf.onEvict(0x180000, 0x180000);

    pf.issued.clear();
    pf.onAccess(load(0x200000 + 0 * 64, 0x600100));
    drain(pf);
    // AccP = intersection {4} only.
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        if (regionBase(p.addr, 2048) == 0x200000u)
            offs.push_back(regionOffset(p.addr, 2048));
    EXPECT_EQ(offs, (std::vector<Addr>{4}));
    EXPECT_GE(pf.accPredictions(), 1u);
}

TEST(Dspatch, PatternsAreAnchoredAtTrigger)
{
    CapturingPrefetcher<TestableDspatch> pf;
    pf.attachBare();
    pf.util = 0.0;
    // Learn twice (one observation is not a pattern): trigger offset
    // 10 with footprint {10, 12}, then 6 with {6, 8}.
    pf.onAccess(load(0x100000 + 10 * 64, 0x600100));
    pf.onAccess(load(0x100000 + 12 * 64, 0x600100));
    pf.onEvict(0x100000 + 10 * 64, 0x100000 + 10 * 64);
    pf.onAccess(load(0x180000 + 6 * 64, 0x600100));
    pf.onAccess(load(0x180000 + 8 * 64, 0x600100));
    pf.onEvict(0x180000 + 6 * 64, 0x180000 + 6 * 64);

    pf.issued.clear();
    // Replay at trigger offset 20: rotated prediction -> offset 22.
    pf.onAccess(load(0x200000 + 20 * 64, 0x600100));
    drain(pf);
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        offs.push_back(regionOffset(p.addr, 2048));
    EXPECT_EQ(offs, (std::vector<Addr>{22}));
}

// ------------------------------------------------------------------ pmp

TEST(Pmp, MergedCountersCrossThresholds)
{
    CapturingPrefetcher<PmpPrefetcher> pf;
    pf.attachBare();
    // Many generations with trigger offset 4 and footprint {4,6,8}.
    for (int g = 0; g < 8; ++g) {
        Addr region = 0x100000 + Addr(g) * 4096;
        pf.onAccess(load(region + 4 * 64, 0x700100));
        pf.onAccess(load(region + 6 * 64, 0x700100));
        pf.onAccess(load(region + 8 * 64, 0x700100));
        pf.onEvict(region + 4 * 64, region + 4 * 64);
    }
    pf.issued.clear();
    pf.onAccess(load(0x900000 + 4 * 64, 0x700100));
    drain(pf);
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        offs.push_back(regionOffset(p.addr));
    std::sort(offs.begin(), offs.end());
    // Blocks 6 and 8 were in 100% of merged patterns -> L1 class.
    EXPECT_EQ(offs, (std::vector<Addr>{6, 8}));
    for (const auto &p : pf.issued)
        EXPECT_EQ(p.fillLevel, uint32_t(levelL1));
}

TEST(Pmp, ConflictingTemplatesDiluteConfidence)
{
    CapturingPrefetcher<PmpPrefetcher> pf;
    pf.attachBare();
    // Alternate two very different footprints with the same trigger:
    // each block appears in only half the merges (conf 0.5 boundary);
    // with the PC table also diluted, prediction degrades to L2-class
    // or over-broad patterns — PMP's documented weakness.
    for (int g = 0; g < 16; ++g) {
        Addr region = 0x100000 + Addr(g) * 4096;
        pf.onAccess(load(region + 4 * 64, 0x700100));
        if (g % 2 == 0) {
            pf.onAccess(load(region + 10 * 64, 0x700100));
        } else {
            pf.onAccess(load(region + 50 * 64, 0x700100));
        }
        pf.onEvict(region + 4 * 64, region + 4 * 64);
    }
    pf.issued.clear();
    pf.onAccess(load(0x900000 + 4 * 64, 0x700100));
    drain(pf);
    // Both 10 and 50 get issued (union behaviour): inaccuracy by
    // construction, since the real region wants only one of them.
    std::vector<Addr> offs;
    for (const auto &p : pf.issued)
        if (regionBase(p.addr) == 0x900000u)
            offs.push_back(regionOffset(p.addr));
    std::sort(offs.begin(), offs.end());
    EXPECT_EQ(offs, (std::vector<Addr>{10, 50}));
}

// ----------------------------------------------------------------- ipcp

TEST(Ipcp, ConstantStrideClassIssues)
{
    CapturingPrefetcher<IpcpPrefetcher> pf;
    pf.attachBare();
    for (int i = 0; i < 8; ++i)
        pf.onAccess(load(0x10000 + Addr(i) * 128, 0x800100));
    EXPECT_FALSE(pf.issued.empty());
    // All targets ahead along the +2-block stride, same page.
    for (const auto &p : pf.issued)
        EXPECT_EQ(pageNumber(p.addr), pageNumber(Addr(0x10000)));
}

TEST(Ipcp, RecentRequestFilterSuppressesDuplicates)
{
    CapturingPrefetcher<IpcpPrefetcher> pf;
    pf.attachBare();
    for (int i = 0; i < 6; ++i)
        pf.onAccess(load(0x10000 + Addr(i) * 64, 0x800100));
    size_t first = pf.issued.size();
    // Re-walking the same blocks immediately: RR filter suppresses
    // re-issues of the same targets.
    for (int i = 0; i < 6; ++i)
        pf.onAccess(load(0x10000 + Addr(i) * 64, 0x800100));
    EXPECT_LT(pf.issued.size(), first * 2);
}

TEST(Ipcp, GlobalStreamClassAfterDenseRegion)
{
    CapturingPrefetcher<IpcpPrefetcher> pf;
    pf.attachBare();
    // Touch 24+ blocks of one page to flip it to streaming, then the
    // GS class should issue deep prefetches.
    for (int i = 0; i < 30; ++i)
        pf.onAccess(load(0x40000 + Addr(i) * 64, 0x800200));
    EXPECT_GT(pf.issued.size(), 8u);
}

// ------------------------------------------------------------------ spp

TEST(Spp, LearnsDeltaPathAndPrefetchesAlongIt)
{
    SppParams params;
    params.enablePpf = false;
    CapturingPrefetcher<SppPpfPrefetcher> pf(params);
    pf.attachBare();
    // Constant delta +3 within a page, repeated across pages so the
    // signature path gains confidence.
    for (int page = 0; page < 6; ++page) {
        Addr base = 0x100000 + Addr(page) * 4096;
        for (int i = 0; i < 12; ++i)
            pf.onAccess(load(base + Addr(i * 3) * 64, 0x900100));
    }
    ASSERT_FALSE(pf.issued.empty());
    // Issued targets continue the +3 pattern (multiples of 3 blocks).
    size_t aligned = 0;
    for (const auto &p : pf.issued)
        aligned += regionOffset(p.addr) % 3 == 0;
    EXPECT_GT(double(aligned) / pf.issued.size(), 0.9);
}

TEST(Spp, LookaheadDepthBounded)
{
    SppParams params;
    params.enablePpf = false;
    params.maxDepth = 2;
    CapturingPrefetcher<SppPpfPrefetcher> pf(params);
    pf.attachBare();
    for (int page = 0; page < 6; ++page) {
        Addr base = 0x100000 + Addr(page) * 4096;
        pf.issued.clear();
        for (int i = 0; i < 10; ++i)
            pf.onAccess(load(base + Addr(i) * 64, 0x900100));
    }
    // Per access at most maxDepth issues.
    EXPECT_LE(pf.issued.size(), 10u * params.maxDepth);
}

TEST(Ppf, NegativeTrainingSuppressesProposals)
{
    SppParams params;
    CapturingPrefetcher<SppPpfPrefetcher> pf(params);
    pf.attachBare();
    // Train the pattern, then keep reporting its prefetches useless.
    for (int round = 0; round < 30; ++round) {
        Addr base = 0x100000 + Addr(round) * 4096;
        for (int i = 0; i < 10; ++i)
            pf.onAccess(load(base + Addr(i) * 64, 0x900100));
        // Every issued prefetch is evicted unused.
        for (const auto &p : pf.issued)
            pf.onEvict(p.addr, p.addr);
        pf.issued.clear();
    }
    EXPECT_GT(pf.rejections(), 0u);
}

// ---------------------------------------------------------------- berti

TEST(Berti, LearnsTimelyDeltaAndIssues)
{
    CapturingPrefetcher<BertiPrefetcher> pf;
    pf.attachBare();
    const PC pc = 0xA00100;
    Cycle t = 0;
    // Simulate a steady stream: access block i at t, fill completes
    // with latency 100. The delta that is timely is >= the number of
    // blocks traversed during one latency.
    for (int i = 0; i < 120; ++i) {
        Addr va = 0x100000 + Addr(i) * 64;
        pf.onAccess(load(va, pc, false, t));
        FillEvent f;
        f.vaddr = va;
        f.paddr = va;
        f.pc = pc;
        f.latency = 100;
        f.cycle = t + 100;
        pf.onFill(f);
        t += 20; // 20 cycles per block: timely delta ~ +5 and beyond
    }
    ASSERT_FALSE(pf.issued.empty());
    // The learned delta must be positive (stream direction) and
    // timely-deep: ~2x latency / 20 cycles-per-block = ~10 blocks.
    // Check the last issue: it was triggered by an access near block
    // 119, so its target must be well past it.
    Addr last_access = 0x100000 + 119 * 64;
    EXPECT_GT(pf.issued.back().addr, last_access + 4 * 64);
    // And every target stays within the stream (forward direction).
    for (const auto &p : pf.issued)
        EXPECT_GE(p.addr, 0x100000u);
}

TEST(Berti, CrossPageWithinReach)
{
    CapturingPrefetcher<BertiPrefetcher> pf;
    pf.attachBare();
    const PC pc = 0xA00200;
    Cycle t = 0;
    // Large but in-reach delta: +80 blocks (1.25 pages < 4 pages).
    for (int i = 0; i < 200; ++i) {
        Addr va = 0x100000 + Addr(i) * 64;
        pf.onAccess(load(va, pc, false, t));
        FillEvent f;
        f.vaddr = va;
        f.paddr = va;
        f.pc = pc;
        f.latency = 1000; // very long latency forces big deltas
        f.cycle = t + 1000;
        pf.onFill(f);
        t += 20;
    }
    bool crossed = false;
    for (const auto &p : pf.issued)
        crossed |= pageNumber(p.addr)
                   != pageNumber(p.addr - 50 * 64);
    // vBerti may cross 4KB boundaries (virtual space).
    EXPECT_TRUE(crossed || !pf.issued.empty());
}

TEST(Berti, RejectsUnstableDeltas)
{
    CapturingPrefetcher<BertiPrefetcher> pf;
    pf.attachBare();
    const PC pc = 0xA00300;
    Rng rng(5);
    Cycle t = 0;
    for (int i = 0; i < 100; ++i) {
        Addr va = 0x100000 + rng.below(1024) * 64;
        pf.onAccess(load(va, pc, false, t));
        FillEvent f;
        f.vaddr = va;
        f.paddr = va;
        f.pc = pc;
        f.latency = 100;
        f.cycle = t + 100;
        pf.onFill(f);
        t += 20;
    }
    // Random deltas never clear the confidence thresholds.
    EXPECT_LT(pf.issued.size(), 20u);
}

// -------------------------------------------------------------- factory

TEST(Factory, KnownSpecsConstruct)
{
    for (const auto &spec : knownPrefetcherSpecs()) {
        auto pf = makePrefetcher(spec);
        ASSERT_NE(pf, nullptr) << spec;
        EXPECT_FALSE(pf->name().empty());
    }
}

TEST(Factory, NoneIsNull)
{
    EXPECT_EQ(makePrefetcher("none"), nullptr);
    EXPECT_EQ(makePrefetcher(""), nullptr);
}

TEST(Factory, GazeVariantsParse)
{
    auto n1 = makePrefetcher("gaze:n=1");
    auto *g1 = dynamic_cast<GazePrefetcher *>(n1.get());
    ASSERT_NE(g1, nullptr);
    EXPECT_EQ(g1->config().numInitialAccesses, 1u);
    EXPECT_FALSE(g1->config().enableStreamingModule);

    auto n3 = makePrefetcher("gaze:n=3");
    auto *g3 = dynamic_cast<GazePrefetcher *>(n3.get());
    ASSERT_NE(g3, nullptr);
    EXPECT_EQ(g3->config().phtSets, 1u);
    EXPECT_EQ(g3->config().phtWays, 256u);

    auto r = makePrefetcher("gaze:region=2048:phtsets=32");
    auto *gr = dynamic_cast<GazePrefetcher *>(r.get());
    ASSERT_NE(gr, nullptr);
    EXPECT_EQ(gr->config().regionSize, 2048u);
    EXPECT_EQ(gr->config().phtSets, 32u);

    auto s = makePrefetcher("gaze:sm4ss");
    auto *gs = dynamic_cast<GazePrefetcher *>(s.get());
    ASSERT_NE(gs, nullptr);
    EXPECT_TRUE(gs->config().streamingRegionsOnly);
    EXPECT_FALSE(gs->config().streamingViaPht);
}

TEST(Factory, SmsSchemesParse)
{
    auto off = makePrefetcher("sms:scheme=offset");
    EXPECT_EQ(off->name(), "sms_offset");
    auto pa = makePrefetcher("sms:scheme=pc+addr");
    EXPECT_EQ(pa->name(), "sms_pc+addr");
}

TEST(FactoryDeath, UnknownSpecIsFatal)
{
    EXPECT_DEATH((void)makePrefetcher("bogus"), "unknown prefetcher");
    EXPECT_DEATH((void)makePrefetcher("sms:scheme=nope"),
                 "unknown value 'nope' for option 'scheme'");
}

// ----------------------------------------------------- storage sanity

TEST(Storage, RelativeBudgetsMatchTableIV)
{
    auto kib = [](const char *spec) {
        return double(makePrefetcher(spec)->storageBits()) / 8 / 1024;
    };
    // Bingo/SMS are two orders of magnitude above Gaze; IPCP is tiny.
    EXPECT_GT(kib("bingo"), 20.0 * kib("gaze"));
    EXPECT_GT(kib("sms"), 20.0 * kib("gaze"));
    EXPECT_LT(kib("ipcp"), 1.5);
    EXPECT_LT(kib("vberti"), kib("gaze"));
    EXPECT_NEAR(kib("gaze"), 4.46, 0.05);
}

} // namespace
} // namespace gaze
