/**
 * @file
 * Unit + property tests for the set-associative LRU table every paper
 * structure is built from.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/lru_table.hh"
#include "common/rng.hh"

namespace gaze
{
namespace
{

TEST(LruTable, InsertFindRoundtrip)
{
    LruTable<int> t(4, 2);
    EXPECT_EQ(t.capacity(), 8u);
    EXPECT_FALSE(t.insert(0, 100, 42).has_value());
    int *v = t.find(0, 100);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(t.find(0, 101), nullptr);
    EXPECT_EQ(t.find(1, 100), nullptr);
}

TEST(LruTable, InsertOverwritesSameTag)
{
    LruTable<int> t(1, 4);
    t.insert(0, 7, 1);
    auto evicted = t.insert(0, 7, 2);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*t.find(0, 7), 2);
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(LruTable, EvictsLeastRecentlyUsed)
{
    LruTable<int> t(1, 2);
    t.insert(0, 1, 10);
    t.insert(0, 2, 20);
    // Touch tag 1 so tag 2 becomes LRU.
    EXPECT_NE(t.find(0, 1), nullptr);
    auto evicted = t.insert(0, 3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->tag, 2u);
    EXPECT_EQ(evicted->data, 20);
    EXPECT_NE(t.find(0, 1), nullptr);
    EXPECT_NE(t.find(0, 3), nullptr);
}

TEST(LruTable, PeekDoesNotTouchLru)
{
    LruTable<int> t(1, 2);
    t.insert(0, 1, 10);
    t.insert(0, 2, 20);
    // Peek at tag 1: should NOT protect it.
    EXPECT_NE(t.peek(0, 1), nullptr);
    auto evicted = t.insert(0, 3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->tag, 1u);
}

TEST(LruTable, FindWithoutTouch)
{
    LruTable<int> t(1, 2);
    t.insert(0, 1, 10);
    t.insert(0, 2, 20);
    EXPECT_NE(t.find(0, 1, /*touch=*/false), nullptr);
    auto evicted = t.insert(0, 3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->tag, 1u);
}

TEST(LruTable, EraseReturnsPayload)
{
    LruTable<int> t(2, 2);
    t.insert(1, 5, 55);
    auto removed = t.erase(1, 5);
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(*removed, 55);
    EXPECT_EQ(t.find(1, 5), nullptr);
    EXPECT_FALSE(t.erase(1, 5).has_value());
}

TEST(LruTable, VictimTagTracksLru)
{
    LruTable<int> t(1, 3);
    EXPECT_FALSE(t.victimTag(0).has_value()); // free ways remain
    t.insert(0, 1, 0);
    t.insert(0, 2, 0);
    t.insert(0, 3, 0);
    EXPECT_EQ(t.victimTag(0).value(), 1u);
    t.find(0, 1);
    EXPECT_EQ(t.victimTag(0).value(), 2u);
}

TEST(LruTable, SetsAreIndependent)
{
    LruTable<int> t(4, 1);
    for (uint64_t s = 0; s < 4; ++s)
        t.insert(s, 100 + s, int(s));
    for (uint64_t s = 0; s < 4; ++s) {
        ASSERT_NE(t.find(s, 100 + s), nullptr);
        EXPECT_EQ(*t.find(s, 100 + s), int(s));
    }
    // Inserting into set 0 never disturbs set 1.
    t.insert(0, 999, -1);
    EXPECT_NE(t.find(1, 101), nullptr);
}

TEST(LruTable, ForEachVisitsAllValid)
{
    LruTable<int> t(2, 2);
    t.insert(0, 1, 10);
    t.insert(1, 2, 20);
    t.insert(1, 3, 30);
    std::set<uint64_t> tags;
    int sum = 0;
    t.forEach([&](uint64_t, uint64_t tag, int &v) {
        tags.insert(tag);
        sum += v;
    });
    EXPECT_EQ(tags.size(), 3u);
    EXPECT_EQ(sum, 60);
}

TEST(LruTable, ClearEmptiesEverything)
{
    LruTable<int> t(2, 2);
    t.insert(0, 1, 1);
    t.insert(1, 2, 2);
    t.clear();
    EXPECT_EQ(t.occupancy(), 0u);
    EXPECT_EQ(t.find(0, 1), nullptr);
}

TEST(LruTable, FullyAssociativeSingleSet)
{
    LruTable<int> t(1, 8);
    for (int i = 0; i < 8; ++i)
        t.insert(0, 1000 + i, i);
    EXPECT_EQ(t.occupancy(), 8u);
    auto evicted = t.insert(0, 2000, 99);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->tag, 1000u);
}

/**
 * Property test: the table must agree with a reference model (per-set
 * map + recency list) across thousands of random operations.
 */
TEST(LruTableProperty, MatchesReferenceModel)
{
    constexpr size_t sets = 4, ways = 4;
    LruTable<uint64_t> t(sets, ways);

    struct RefSet
    {
        // tag -> value, plus recency order (front = LRU).
        std::map<uint64_t, uint64_t> data;
        std::vector<uint64_t> order;

        void
        touch(uint64_t tag)
        {
            auto it = std::find(order.begin(), order.end(), tag);
            if (it != order.end())
                order.erase(it);
            order.push_back(tag);
        }
    };
    RefSet ref[sets];
    Rng rng(1234);

    for (int step = 0; step < 20000; ++step) {
        uint64_t set = rng.below(sets);
        uint64_t tag = rng.below(10); // small space forces conflicts
        uint64_t op = rng.below(3);
        RefSet &r = ref[set];

        if (op == 0) { // insert
            uint64_t val = rng.next();
            auto evicted = t.insert(set, tag, val);
            if (r.data.count(tag)) {
                EXPECT_FALSE(evicted.has_value());
                r.data[tag] = val;
                r.touch(tag);
            } else if (r.data.size() < ways) {
                EXPECT_FALSE(evicted.has_value());
                r.data[tag] = val;
                r.touch(tag);
            } else {
                ASSERT_TRUE(evicted.has_value());
                uint64_t victim = r.order.front();
                EXPECT_EQ(evicted->tag, victim);
                EXPECT_EQ(evicted->data, r.data[victim]);
                r.data.erase(victim);
                r.order.erase(r.order.begin());
                r.data[tag] = val;
                r.touch(tag);
            }
        } else if (op == 1) { // find
            uint64_t *got = t.find(set, tag);
            if (r.data.count(tag)) {
                ASSERT_NE(got, nullptr);
                EXPECT_EQ(*got, r.data[tag]);
                r.touch(tag);
            } else {
                EXPECT_EQ(got, nullptr);
            }
        } else { // erase
            auto got = t.erase(set, tag);
            if (r.data.count(tag)) {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, r.data[tag]);
                r.data.erase(tag);
                r.order.erase(std::find(r.order.begin(), r.order.end(),
                                        tag));
            } else {
                EXPECT_FALSE(got.has_value());
            }
        }
        ASSERT_EQ(t.occupancy(),
                  ref[0].data.size() + ref[1].data.size()
                      + ref[2].data.size() + ref[3].data.size());
    }
}

TEST(LruTableDeath, BadSetPanics)
{
    LruTable<int> t(2, 2);
    EXPECT_DEATH(t.find(2, 0), "out of range");
}

} // namespace
} // namespace gaze
