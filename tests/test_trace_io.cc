/**
 * @file
 * Trace codec and file I/O tests: varint/zigzag primitives, exact
 * round-trips of arbitrary record streams (all TraceOp kinds, extreme
 * PCs/vaddrs/stall cycles), rejection of truncated/corrupt/wrong-
 * version files with clear diagnostics, FileTrace's bounded-buffer
 * streaming, and reset() replay equivalence with VectorTrace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "tracing/trace_format.hh"
#include "tracing/trace_io.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Write @p recs to a fresh .gzt and return its path. */
std::string
writeTrace(const std::string &name, const std::vector<TraceRecord> &recs,
           const std::string &meta = "unit-test")
{
    std::string path = tmpPath(name);
    TraceWriter w(path, meta);
    w.appendAll(recs);
    w.finish();
    return path;
}

/** Read a whole .gzt back through FileTrace. */
std::vector<TraceRecord>
readTrace(const std::string &path)
{
    FileTrace t(path);
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (t.next(rec))
        out.push_back(rec);
    return out;
}

TraceRecord
makeRec(PC pc, Addr vaddr, TraceOp op, uint16_t stall = 0)
{
    TraceRecord r;
    r.pc = pc;
    r.vaddr = vaddr;
    r.op = op;
    r.stallCycles = stall;
    return r;
}

/** In-place byte edit of a written file. */
void
corruptByte(const std::string &path, uint64_t offset, uint8_t value)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char *>(&value), 1);
}

void
truncateFile(const std::string &path, uint64_t keep)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<char> data(keep);
    in.read(data.data(), static_cast<std::streamsize>(keep));
    ASSERT_EQ(in.gcount(), std::streamsize(keep));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(keep));
}

// ---- codec primitives -----------------------------------------------

TEST(TraceFormat, VarintRoundTripsBoundaryValues)
{
    const uint64_t cases[] = {0,
                              1,
                              127,
                              128,
                              16383,
                              16384,
                              (1ULL << 32) - 1,
                              1ULL << 32,
                              UINT64_MAX - 1,
                              UINT64_MAX};
    for (uint64_t v : cases) {
        uint8_t buf[kMaxVarintBytes];
        size_t n = putVarint(buf, v);
        ASSERT_GE(n, 1u);
        ASSERT_LE(n, kMaxVarintBytes);
        uint64_t back = 0;
        EXPECT_EQ(getVarint(buf, buf + n, &back), n) << v;
        EXPECT_EQ(back, v);
        // A starved buffer must report truncation, not decode junk.
        EXPECT_EQ(getVarint(buf, buf + n - 1, &back), 0u) << v;
    }
}

TEST(TraceFormat, RejectsVarintOverflowingUint64)
{
    // Nine continuation bytes put the 10th at value bit 63: only 0 or
    // 1 fit there. Anything larger must be rejected, not truncated.
    uint8_t buf[kMaxVarintBytes];
    for (size_t i = 0; i < kMaxVarintBytes - 1; ++i)
        buf[i] = 0x80;
    uint64_t v = 0;
    buf[kMaxVarintBytes - 1] = 0x7E;
    EXPECT_EQ(getVarint(buf, buf + sizeof(buf), &v), 0u);
    buf[kMaxVarintBytes - 1] = 0x01;
    EXPECT_EQ(getVarint(buf, buf + sizeof(buf), &v), kMaxVarintBytes);
    EXPECT_EQ(v, 1ULL << 63);
}

TEST(TraceFormat, ZigzagRoundTripsExtremes)
{
    const int64_t cases[] = {0,  1,  -1, 63, -64, INT64_MAX,
                             INT64_MIN, -123456789, 123456789};
    for (int64_t v : cases)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    // Small magnitudes stay small: that is the whole point.
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
}

// ---- round trips ----------------------------------------------------

TEST(TraceRoundTrip, AllOpsAndExtremeValues)
{
    std::vector<TraceRecord> recs = {
        makeRec(0, 0, TraceOp::NonMem),
        makeRec(UINT64_MAX, UINT64_MAX, TraceOp::Load),
        makeRec(0x400000, 0, TraceOp::Stall, UINT16_MAX),
        makeRec(0x400004, 0x7fff'ffff'ffff'ffffULL,
                TraceOp::DependentLoad, 1),
        makeRec(0x400004, 1, TraceOp::Store),
        // vaddr == 0 on a memory op must survive (absent-field path).
        makeRec(0x3fffff, 0, TraceOp::Load),
        makeRec(1, UINT64_MAX, TraceOp::Store, 12345),
    };
    std::string path = writeTrace("roundtrip_extreme.gzt", recs);

    std::string error;
    EXPECT_TRUE(validateTraceFile(path, nullptr, &error)) << error;

    std::vector<TraceRecord> back = readTrace(path);
    ASSERT_EQ(back.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i)
        EXPECT_TRUE(back[i] == recs[i]) << "record " << i;
}

TEST(TraceRoundTrip, RandomStreamsAreExact)
{
    Rng rng(0xC0DEC);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<TraceRecord> recs;
        uint64_t n = rng.range(1, 3000);
        recs.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            TraceRecord r;
            r.op = static_cast<TraceOp>(rng.below(5));
            // Mix local deltas with full-range jumps.
            r.pc = rng.chance(0.8) ? 0x400000 + rng.below(1 << 20)
                                   : rng.next();
            r.vaddr = rng.chance(0.1) ? 0 : rng.next();
            r.stallCycles = static_cast<uint16_t>(
                rng.chance(0.3) ? rng.below(UINT16_MAX + 1) : 0);
            recs.push_back(r);
        }
        std::string path = writeTrace("roundtrip_rand.gzt", recs);
        std::vector<TraceRecord> back = readTrace(path);
        ASSERT_EQ(back.size(), recs.size()) << "iter " << iter;
        for (size_t i = 0; i < recs.size(); ++i)
            ASSERT_TRUE(back[i] == recs[i])
                << "iter " << iter << " record " << i;
    }
}

TEST(TraceRoundTrip, EmptyTraceIsValid)
{
    std::string path = writeTrace("empty.gzt", {});
    std::string error;
    TraceFileHeader head;
    EXPECT_TRUE(validateTraceFile(path, &head, &error)) << error;
    EXPECT_EQ(head.recordCount, 0u);
    EXPECT_TRUE(readTrace(path).empty());
}

TEST(TraceRoundTrip, LargeStreamCrossesBufferBoundaries)
{
    // > 64 KiB of payload forces multiple reader refills.
    Rng rng(7);
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 60000; ++i) {
        TraceRecord r;
        r.op = TraceOp::Load;
        r.pc = 0x400000 + uint64_t(i) * 4;
        r.vaddr = rng.next(); // worst-case deltas: ~10-byte varints
        recs.push_back(r);
    }
    std::string path = writeTrace("large.gzt", recs);
    TraceFileHeader head;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &head, &error)) << error;
    EXPECT_GT(head.payloadBytes, uint64_t(256 * 1024));

    std::vector<TraceRecord> back = readTrace(path);
    ASSERT_EQ(back.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i)
        ASSERT_TRUE(back[i] == recs[i]) << "record " << i;
}

TEST(TraceRoundTrip, DeltaEncodingStaysCompact)
{
    // A strided stream (the common case) should cost a few bytes per
    // record, far below the 19-byte in-memory footprint.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 10000; ++i)
        recs.push_back(makeRec(0x400000 + (i % 7) * 4,
                               0x10000000 + uint64_t(i) * 64,
                               TraceOp::Load));
    std::string path = writeTrace("compact.gzt", recs);
    TraceFileHeader head;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &head, &error)) << error;
    EXPECT_LT(head.payloadBytes, recs.size() * 6);
}

TEST(TraceRoundTrip, HeaderCarriesMeta)
{
    std::string path = writeTrace("meta.gzt", {makeRec(1, 2,
                                                       TraceOp::Load)},
                                  "workload=unit suite=test scale=1");
    TraceFileHeader head;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &head, &error)) << error;
    EXPECT_EQ(head.version, kGztVersion);
    EXPECT_EQ(head.recordCount, 1u);
    EXPECT_EQ(head.meta, "workload=unit suite=test scale=1");
    EXPECT_EQ(head.payloadOffset(), kGztFixedHeaderBytes
                                        + head.meta.size());
}

// ---- rejection of bad files -----------------------------------------

TEST(TraceRejection, MissingFile)
{
    std::string error;
    EXPECT_FALSE(probeTraceFile(tmpPath("nonexistent.gzt"), nullptr,
                                &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceRejection, CorruptMagic)
{
    std::string path =
        writeTrace("badmagic.gzt", {makeRec(1, 2, TraceOp::Load)});
    corruptByte(path, 0, 'X');
    std::string error;
    EXPECT_FALSE(probeTraceFile(path, nullptr, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
    EXPECT_FALSE(validateTraceFile(path, nullptr, &error));
}

TEST(TraceRejection, WrongVersion)
{
    std::string path =
        writeTrace("badver.gzt", {makeRec(1, 2, TraceOp::Load)});
    corruptByte(path, 4, 99);
    std::string error;
    EXPECT_FALSE(probeTraceFile(path, nullptr, &error));
    EXPECT_NE(error.find("unsupported .gzt version 99"),
              std::string::npos)
        << error;
}

TEST(TraceRejection, UnfinishedRecordingHasVersionZero)
{
    // A writer that never reaches finish() leaves the placeholder
    // version, which must read as "unfinished", not as an empty trace.
    std::string path = tmpPath("unfinished.gzt");
    {
        TraceWriter w(path, "meta");
        w.append(makeRec(1, 2, TraceOp::Load));
        // Simulate a crash: bypass finish() by corrupting afterwards.
        w.finish();
    }
    corruptByte(path, 4, 0);
    std::string error;
    EXPECT_FALSE(probeTraceFile(path, nullptr, &error));
    EXPECT_NE(error.find("version 0"), std::string::npos) << error;
}

TEST(TraceRejection, TruncatedHeader)
{
    std::string path =
        writeTrace("shorthead.gzt", {makeRec(1, 2, TraceOp::Load)});
    truncateFile(path, kGztFixedHeaderBytes / 2);
    std::string error;
    EXPECT_FALSE(probeTraceFile(path, nullptr, &error));
    EXPECT_NE(error.find("truncated header"), std::string::npos)
        << error;
}

TEST(TraceRejection, TruncatedPayload)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 100; ++i)
        recs.push_back(makeRec(0x1000 + i, 0x2000 + i, TraceOp::Load));
    std::string path = writeTrace("shortpayload.gzt", recs);
    TraceFileHeader head;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &head, &error)) << error;
    truncateFile(path, head.payloadOffset() + head.payloadBytes - 5);
    EXPECT_FALSE(probeTraceFile(path, nullptr, &error));
    EXPECT_NE(error.find("does not match header"), std::string::npos)
        << error;
}

TEST(TraceRejection, CorruptPayloadFailsChecksum)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 100; ++i)
        recs.push_back(makeRec(0x1000 + i, 0x2000 + i, TraceOp::Load));
    std::string path = writeTrace("badsum.gzt", recs);
    TraceFileHeader head;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &head, &error)) << error;

    // Flip a low bit of one delta mid-payload: still decodable, but
    // the checksum must catch it.
    uint64_t off = head.payloadOffset() + head.payloadBytes / 2;
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(off));
    char old = 0;
    in.read(&old, 1);
    in.close();
    corruptByte(path, off, static_cast<uint8_t>(old) ^ 0x01);

    EXPECT_TRUE(probeTraceFile(path, nullptr, &error)) << error;
    EXPECT_FALSE(validateTraceFile(path, nullptr, &error));
    EXPECT_TRUE(error.find("checksum") != std::string::npos
                || error.find("corrupt") != std::string::npos)
        << error;
}

TEST(TraceRejectionDeath, FileTraceRefusesBadFiles)
{
    std::string path =
        writeTrace("fatal.gzt", {makeRec(1, 2, TraceOp::Load)});
    corruptByte(path, 0, 'X');
    EXPECT_DEATH(FileTrace{path}, "bad magic");
    EXPECT_DEATH(FileTrace{tmpPath("nope.gzt")}, "cannot open");
}

// ---- FileTrace semantics --------------------------------------------

TEST(FileTrace, ResetReplaysIdenticallyToVectorTrace)
{
    const WorkloadDef &w = findWorkload("leslie3d");
    VectorTrace vec = w.make();
    std::string path = writeTrace("reset.gzt", vec.data());

    FileTrace file(path);
    ASSERT_EQ(file.size(), vec.size());

    // Two full passes over both sources, with an extra mid-stream
    // reset of the file reader in between: every pass must agree with
    // the in-memory trace record-for-record.
    for (int pass = 0; pass < 2; ++pass) {
        vec.reset();
        file.reset();
        TraceRecord a, b;
        uint64_t n = 0;
        while (vec.next(a)) {
            ASSERT_TRUE(file.next(b)) << "pass " << pass << " rec " << n;
            ASSERT_TRUE(a == b) << "pass " << pass << " rec " << n;
            ++n;
        }
        EXPECT_FALSE(file.next(b));
        // Exhausted sources stay exhausted.
        EXPECT_FALSE(file.next(b));
    }

    // A reset mid-stream restarts from record zero.
    file.reset();
    TraceRecord first;
    ASSERT_TRUE(file.next(first));
    for (int i = 0; i < 100; ++i) {
        TraceRecord skip;
        ASSERT_TRUE(file.next(skip));
    }
    file.reset();
    TraceRecord again;
    ASSERT_TRUE(file.next(again));
    EXPECT_TRUE(first == again);
}

TEST(FileTrace, HeaderAccessorMatchesProbe)
{
    std::string path = writeTrace(
        "accessor.gzt", {makeRec(1, 2, TraceOp::Load)}, "meta-string");
    TraceFileHeader probed;
    std::string error;
    ASSERT_TRUE(probeTraceFile(path, &probed, &error)) << error;

    FileTrace file(path);
    EXPECT_EQ(file.header().recordCount, probed.recordCount);
    EXPECT_EQ(file.header().checksum, probed.checksum);
    EXPECT_EQ(file.header().meta, probed.meta);
}

} // namespace
} // namespace gaze
