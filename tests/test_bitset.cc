/**
 * @file
 * Unit tests for the dynamic footprint bitset.
 */

#include <gtest/gtest.h>

#include "common/bitset.hh"

namespace gaze
{
namespace
{

TEST(Bitset, StartsEmpty)
{
    Bitset b(64);
    EXPECT_EQ(b.size(), 64u);
    EXPECT_EQ(b.count(), 0u);
    EXPECT_TRUE(b.none());
    EXPECT_FALSE(b.any());
    EXPECT_FALSE(b.all());
}

TEST(Bitset, SetTestReset)
{
    Bitset b(64);
    b.set(0);
    b.set(63);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_FALSE(b.test(32));
    EXPECT_EQ(b.count(), 2u);
    b.reset(0);
    EXPECT_FALSE(b.test(0));
    EXPECT_EQ(b.count(), 1u);
}

TEST(Bitset, AllAndSetAll)
{
    Bitset b(64);
    b.setAll();
    EXPECT_TRUE(b.all());
    EXPECT_EQ(b.count(), 64u);
    b.clearAll();
    EXPECT_TRUE(b.none());
}

TEST(Bitset, NonWordSizes)
{
    // Region sizes between 0.5KB and 64KB give 8..1024 bits.
    for (size_t bits : {8u, 32u, 100u, 128u, 1024u}) {
        Bitset b(bits);
        EXPECT_EQ(b.size(), bits);
        b.setAll();
        EXPECT_TRUE(b.all()) << bits;
        EXPECT_EQ(b.count(), bits);
        b.reset(bits - 1);
        EXPECT_FALSE(b.all());
        EXPECT_EQ(b.count(), bits - 1);
    }
}

TEST(Bitset, LeadingRun)
{
    Bitset b(128);
    EXPECT_EQ(b.leadingRun(), 0u);
    b.set(1); // bit 0 clear: no run
    EXPECT_EQ(b.leadingRun(), 0u);
    b.set(0);
    EXPECT_EQ(b.leadingRun(), 2u);
    for (size_t i = 0; i < 70; ++i)
        b.set(i); // run crosses the word boundary
    EXPECT_EQ(b.leadingRun(), 70u);
    b.reset(64);
    EXPECT_EQ(b.leadingRun(), 64u);
    b.setAll();
    EXPECT_EQ(b.leadingRun(), 128u);
}

TEST(Bitset, LeadingRunFullSmallSet)
{
    Bitset b(8);
    b.setAll();
    EXPECT_EQ(b.leadingRun(), 8u);
}

TEST(Bitset, FindFirstNext)
{
    Bitset b(128);
    EXPECT_EQ(b.findFirst(), 128u);
    b.set(5);
    b.set(70);
    b.set(127);
    EXPECT_EQ(b.findFirst(), 5u);
    EXPECT_EQ(b.findNext(6), 70u);
    EXPECT_EQ(b.findNext(71), 127u);
    EXPECT_EQ(b.findNext(128), 128u);
}

TEST(Bitset, IterationVisitsExactlySetBits)
{
    Bitset b(256);
    std::vector<size_t> want = {0, 1, 63, 64, 65, 200, 255};
    for (size_t i : want)
        b.set(i);
    std::vector<size_t> got;
    for (size_t i = b.findFirst(); i < b.size(); i = b.findNext(i + 1))
        got.push_back(i);
    EXPECT_EQ(got, want);
}

TEST(Bitset, UnionIntersection)
{
    Bitset a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    Bitset u = a | b;
    Bitset i = a & b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(2));
}

TEST(Bitset, EqualityAndDensity)
{
    Bitset a(64), b(64);
    EXPECT_EQ(a, b);
    a.set(10);
    EXPECT_NE(a, b);
    b.set(10);
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(a.density(), 1.0 / 64.0);
}

TEST(BitsetDeath, OutOfRangePanics)
{
    Bitset b(64);
    EXPECT_DEATH(b.set(64), "out of range");
    EXPECT_DEATH(b.test(1000), "out of range");
}

} // namespace
} // namespace gaze
