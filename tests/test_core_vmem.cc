/**
 * @file
 * Tests for the OoO core model (retire width, load blocking, dependent
 * loads, SQ pressure, trace replay, front-end stalls) and functional
 * virtual memory.
 */

#include <gtest/gtest.h>

#include "sim/core.hh"
#include "sim/vmem.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::FakeMemory;

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : mem(&clock, /*latency=*/100), vm(34)
    {
    }

    void
    build(std::vector<TraceRecord> recs, CoreParams p = {})
    {
        trace = VectorTrace(std::move(recs));
        core = std::make_unique<Core>(p, 0, &mem, &vm, &clock);
        core->setTrace(&trace);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            core->tick();
            mem.tick();
            ++clock;
        }
    }

    Cycle clock = 0;
    FakeMemory mem;
    VirtualMemory vm;
    VectorTrace trace;
    std::unique_ptr<Core> core;
};

std::vector<TraceRecord>
nonMemTrace(size_t n)
{
    std::vector<TraceRecord> v;
    for (size_t i = 0; i < n; ++i)
        v.push_back({0x1000 + 4 * i, 0, TraceOp::NonMem, 0});
    return v;
}

TEST_F(CoreTest, NonMemIpcApproachesWidth)
{
    build(nonMemTrace(4000));
    run(1100);
    // 4-wide: ~4000 instructions retire in ~1000 cycles (+ pipeline
    // fill).
    EXPECT_GE(core->retired(), 3900u);
}

TEST_F(CoreTest, LoadBlocksRetirementUntilFill)
{
    std::vector<TraceRecord> v;
    v.push_back({0x1000, 0x5000, TraceOp::Load, 0});
    auto tail = nonMemTrace(5000); // long enough to avoid replay
    v.insert(v.end(), tail.begin(), tail.end());
    build(std::move(v));
    run(50);
    // Memory latency is 100: nothing can retire yet (load at head).
    EXPECT_EQ(core->retired(), 0u);
    run(100);
    EXPECT_GT(core->retired(), 100u - 10);
    EXPECT_EQ(core->stats().loads, 1u);
}

TEST_F(CoreTest, IndependentLoadsOverlap)
{
    // 8 independent loads to distinct blocks: with latency 100 they
    // must overlap (MLP), finishing way before 8 * 100 cycles.
    std::vector<TraceRecord> v;
    for (int i = 0; i < 8; ++i)
        v.push_back({0x1000, Addr(0x10000 + i * 64), TraceOp::Load, 0});
    build(std::move(v));
    run(160);
    EXPECT_GE(core->retired(), 8u); // replay may add more
    EXPECT_GE(core->stats().loads, 8u);
}

TEST_F(CoreTest, DependentLoadsSerialize)
{
    std::vector<TraceRecord> v;
    for (int i = 0; i < 4; ++i)
        v.push_back({0x1000, Addr(0x20000 + i * 64),
                     TraceOp::DependentLoad, 0});
    build(std::move(v));
    run(250);
    // Serialized at ~100 cycles each: only ~2 can be done by 250.
    EXPECT_LE(core->retired(), 3u);
    run(250);
    EXPECT_EQ(core->retired(), 4u);
}

TEST_F(CoreTest, RobLimitsLookahead)
{
    CoreParams p;
    p.robSize = 8;
    // A long-latency load followed by many non-mems: only robSize-1
    // instructions can enter behind the blocked head.
    std::vector<TraceRecord> v;
    v.push_back({0x1000, 0x5000, TraceOp::Load, 0});
    auto tail = nonMemTrace(100);
    v.insert(v.end(), tail.begin(), tail.end());
    build(std::move(v), p);
    run(60);
    EXPECT_EQ(core->retired(), 0u);
    EXPECT_GT(core->stats().robFullCycles, 0u);
}

TEST_F(CoreTest, StoresRetireViaRfoAndOccupySq)
{
    std::vector<TraceRecord> v;
    v.push_back({0x1000, 0x7000, TraceOp::Store, 0});
    auto tail = nonMemTrace(2000);
    v.insert(v.end(), tail.begin(), tail.end());
    build(std::move(v));
    run(30);
    EXPECT_EQ(core->stats().stores, 1u);
    // The RFO went to memory.
    bool saw_rfo = false;
    for (const auto &r : mem.received)
        saw_rfo |= r.type == AccessType::Rfo;
    EXPECT_TRUE(saw_rfo);
}

TEST_F(CoreTest, TraceReplaysAtEnd)
{
    build(nonMemTrace(100));
    run(200);
    EXPECT_GT(core->retired(), 300u);
    EXPECT_GT(core->stats().traceReplays, 1u);
}

TEST_F(CoreTest, FrontendStallPausesDispatch)
{
    std::vector<TraceRecord> v;
    auto head = nonMemTrace(8);
    v.insert(v.end(), head.begin(), head.end());
    v.push_back({0, 0, TraceOp::Stall, 50});
    auto tail = nonMemTrace(8);
    v.insert(v.end(), tail.begin(), tail.end());
    build(std::move(v));
    run(20);
    uint64_t mid = core->retired();
    EXPECT_LE(mid, 9u); // second batch held back by the stall
    run(60);
    EXPECT_GT(core->stats().frontendStallCycles, 10u);
}

TEST_F(CoreTest, LoadsTranslateThroughVmem)
{
    std::vector<TraceRecord> v;
    v.push_back({0x1000, 0x123456, TraceOp::Load, 0});
    auto tail = nonMemTrace(2000);
    v.insert(v.end(), tail.begin(), tail.end());
    build(std::move(v));
    run(120);
    ASSERT_FALSE(mem.received.empty());
    // The physical address must match vmem's translation (the cache
    // block-aligns on entry; the core sends byte addresses).
    EXPECT_EQ(mem.received[0].paddr, vm.translate(0x123456, 0));
    EXPECT_EQ(mem.received[0].vaddr, Addr(0x123456));
}

// ----------------------------------------------------------------- vmem

TEST(VirtualMemoryTest, TranslationPreservesPageOffset)
{
    VirtualMemory vm(34);
    Addr va = 0x12345678;
    Addr pa = vm.translate(va, 0);
    EXPECT_EQ(pa & (pageSize - 1), va & (pageSize - 1));
}

TEST(VirtualMemoryTest, Deterministic)
{
    VirtualMemory vm(34);
    EXPECT_EQ(vm.translate(0x4000, 1), vm.translate(0x4000, 1));
}

TEST(VirtualMemoryTest, CoresGetDisjointMappings)
{
    VirtualMemory vm(34);
    EXPECT_NE(vm.pagePPN(7, 0), vm.pagePPN(7, 1));
}

TEST(VirtualMemoryTest, AdjacentPagesScatter)
{
    // Physical frames of adjacent virtual pages are unrelated, which
    // is what stops physical prefetchers from crossing 4KB usefully.
    VirtualMemory vm(34);
    Addr p0 = vm.pagePPN(100, 0);
    Addr p1 = vm.pagePPN(101, 0);
    EXPECT_NE(p1, p0 + 1);
}

TEST(VirtualMemoryTest, RespectsPhysicalBits)
{
    VirtualMemory vm(30); // 1GB => 18 bits of PPN
    for (Addr v = 0; v < 1000; ++v)
        EXPECT_LT(vm.pagePPN(v, 0), 1ULL << 18);
}

} // namespace
} // namespace gaze
