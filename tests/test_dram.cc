/**
 * @file
 * DRAM controller tests: Table II timing derivation, row-buffer
 * effects, bank-level parallelism, FR-FCFS with the starvation guard,
 * write-drain hysteresis, and the bandwidth ceiling implied by
 * 3200 MTPS over a 64-bit bus.
 */

#include <gtest/gtest.h>

#include "sim/dram.hh"
#include "test_util.hh"

namespace gaze
{
namespace
{

using test::FakeReceiver;

class DramTest : public ::testing::Test
{
  protected:
    DramTest()
    {
        params.channels = 1;
        params.ranksPerChannel = 1;
    }

    void
    build()
    {
        dram = std::make_unique<Dram>(params, &clock);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            dram->tick();
            ++clock;
        }
    }

    Request
    read(Addr a, FillReceiver *r)
    {
        Request q;
        q.paddr = a;
        q.type = AccessType::Load;
        q.requester = r;
        q.issueCycle = clock;
        return q;
    }

    Cycle clock = 0;
    DramParams params;
    std::unique_ptr<Dram> dram;
    FakeReceiver rx;
};

TEST_F(DramTest, TableIIScalingPerCores)
{
    EXPECT_EQ(DramParams::forCores(1).channels, 1u);
    EXPECT_EQ(DramParams::forCores(1).ranksPerChannel, 1u);
    EXPECT_EQ(DramParams::forCores(2).channels, 2u);
    EXPECT_EQ(DramParams::forCores(2).ranksPerChannel, 1u);
    EXPECT_EQ(DramParams::forCores(4).channels, 2u);
    EXPECT_EQ(DramParams::forCores(4).ranksPerChannel, 2u);
    EXPECT_EQ(DramParams::forCores(8).channels, 4u);
    EXPECT_EQ(DramParams::forCores(8).ranksPerChannel, 2u);
}

TEST_F(DramTest, SingleReadLatencyIsAccessPlusBurst)
{
    build();
    ASSERT_TRUE(dram->sendRequest(read(0x10000, &rx)));
    run(500);
    ASSERT_EQ(rx.fills.size(), 1u);
    // Cold bank: tRCD + tCAS = 100 cycles, + 10 burst.
    EXPECT_EQ(dram->stats().reads, 1u);
    EXPECT_NEAR(dram->stats().avgReadLatency(), 110.0, 2.0);
}

TEST_F(DramTest, RowHitIsFasterThanRowMiss)
{
    build();
    // Same bank, same row: channel=0 always (1ch); bank repeats every
    // 8 blocks; row buffer holds 32 blocks of a bank.
    Addr a = 0x100000;
    Addr same_row = a + 8 * 64; // same bank, +1 column
    dram->sendRequest(read(a, &rx));
    run(200);
    uint64_t lat_sum_first = dram->stats().readLatencySum;

    dram->sendRequest(read(same_row, &rx));
    run(200);
    uint64_t lat_second = dram->stats().readLatencySum - lat_sum_first;
    // Row hit: tCAS + burst = 60 vs cold 110.
    EXPECT_LT(lat_second, 70u);
    EXPECT_EQ(dram->stats().rowHits, 1u);
}

TEST_F(DramTest, RowConflictPaysPrechargeActivate)
{
    build();
    Addr a = 0x100000;
    // Same bank, different row: banks repeat every 8 blocks, a row
    // holds 32 blocks per bank -> +8*32 blocks is the next row.
    Addr other_row = a + 8 * 32 * 64;
    dram->sendRequest(read(a, &rx));
    run(200);
    uint64_t before = dram->stats().readLatencySum;
    dram->sendRequest(read(other_row, &rx));
    run(300);
    uint64_t lat = dram->stats().readLatencySum - before;
    // tRP + tRCD + tCAS + burst = 160.
    EXPECT_GE(lat, 155u);
    EXPECT_EQ(dram->stats().rowMisses, 2u);
}

TEST_F(DramTest, BankParallelismBeatsSerialAccess)
{
    build();
    // 8 reads to 8 different banks: total time far less than 8x one
    // access; data bus serializes only the 10-cycle bursts.
    for (int i = 0; i < 8; ++i)
        dram->sendRequest(read(0x200000 + i * 64, &rx));
    run(250);
    EXPECT_EQ(rx.fills.size(), 8u);
}

TEST_F(DramTest, ThroughputApproachesBusLimit)
{
    build();
    // Stream of same-row reads: steady state should approach one line
    // per burst (10 cycles).
    FakeReceiver sink;
    uint64_t issued = 0;
    for (Cycle t = 0; t < 4000; ++t) {
        if (issued < 300) {
            // Sequential blocks: rotate banks, stay in rows.
            if (dram->sendRequest(read(0x400000 + issued * 64, &sink)))
                ++issued;
        }
        dram->tick();
        ++clock;
    }
    run(500);
    EXPECT_GE(sink.fills.size(), 250u);
    double cycles_per_read = 4500.0 / double(sink.fills.size());
    EXPECT_LT(cycles_per_read, 18.0);
}

TEST_F(DramTest, ReadQueueBackpressure)
{
    params.rqSize = 4;
    build();
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(dram->sendRequest(read(0x10000 + i * 64, &rx)));
    EXPECT_FALSE(dram->sendRequest(read(0x90000, &rx)));
    EXPECT_EQ(dram->rqOccupancy(), 4u);
}

TEST_F(DramTest, WritesAreDrainedWithoutResponses)
{
    build();
    for (int i = 0; i < 60; ++i) {
        Request w;
        w.paddr = 0x500000 + i * 64;
        w.type = AccessType::Writeback;
        ASSERT_TRUE(dram->sendRequest(w));
    }
    run(4000);
    EXPECT_GT(dram->stats().writes, 0u);
    EXPECT_TRUE(rx.fills.empty());
}

TEST_F(DramTest, StarvationGuardBoundsReadWait)
{
    build();
    // One "victim" read to a lonely row, then a continuous stream of
    // row hits to another bank. The victim must still complete within
    // the starvation cap plus service time.
    dram->sendRequest(read(0x700000 + 1 * 64, &rx)); // bank 1
    FakeReceiver sink;
    uint64_t issued = 0;
    Cycle victim_done = 0;
    for (Cycle t = 0; t < 3000 && victim_done == 0; ++t) {
        // Keep bank 0 row-hitting (blocks 8 apart share bank 0's row).
        if (dram->sendRequest(read(0x800000 + issued * 8 * 64, &sink)))
            ++issued;
        dram->tick();
        ++clock;
        if (!rx.fills.empty())
            victim_done = clock;
    }
    ASSERT_NE(victim_done, 0u);
    EXPECT_LT(victim_done, 1200u);
}

TEST_F(DramTest, UtilizationTracksLoad)
{
    build();
    // Idle epoch -> ~0 utilization after one epoch rolls.
    run(10000);
    EXPECT_LT(dram->recentUtilization(), 0.05);

    // Saturate with reads for several epochs.
    FakeReceiver sink;
    uint64_t issued = 0;
    for (Cycle t = 0; t < 30000; ++t) {
        if (dram->sendRequest(read(0x600000 + issued * 64, &sink)))
            ++issued;
        dram->tick();
        ++clock;
    }
    EXPECT_GT(dram->recentUtilization(), 0.5);
}

TEST_F(DramTest, HigherMtpsShortensBurst)
{
    params.mtps = 12800.0; // DDR5-class
    build();
    dram->sendRequest(read(0x10000, &rx));
    run(300);
    // Burst shrinks from 10 to ceil(8*4000/12800)=3 cycles.
    EXPECT_NEAR(dram->stats().avgReadLatency(), 103.0, 2.0);
}

TEST_F(DramTest, MultiChannelPartitionsBlocks)
{
    params.channels = 4;
    build();
    // Consecutive blocks go to different channels: 4 simultaneous
    // cold accesses complete in about one access time, not four.
    for (int i = 0; i < 4; ++i)
        dram->sendRequest(read(0x900000 + i * 64, &rx));
    run(130);
    EXPECT_EQ(rx.fills.size(), 4u);
}

} // namespace
} // namespace gaze
