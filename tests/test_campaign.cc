/**
 * @file
 * Campaign subsystem tests: the JSON reader's happy/error paths, spec
 * parsing + deterministic expansion, canonical cell keys, the
 * content-addressed cache (round trip, collision guard, malformed
 * files), RunSummary equivalence with full-RunResult metric math, and
 * an in-process end-to-end: a tiny campaign run twice must serve the
 * second run entirely from cache with a byte-identical report, and
 * two complementary shards must aggregate to the unsharded result.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/engine.hh"
#include "campaign/json.hh"
#include "campaign/report.hh"
#include "campaign/spec.hh"
#include "harness/cell_key.hh"
#include "harness/metrics.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---- JSON reader ----------------------------------------------------

TEST(CampaignJson, ParsesNestedDocument)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"name":"x","n":-2.5e2,"flag":true,"none":null,)"
        R"("arr":[1,"two",{"k":3}],"esc":"a\"b\\cA\n"})",
        &doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("name")->asString(), "x");
    EXPECT_DOUBLE_EQ(doc.find("n")->asNumber(), -250.0);
    EXPECT_TRUE(doc.find("flag")->asBool());
    EXPECT_TRUE(doc.find("none")->isNull());
    const auto &arr = doc.find("arr")->items();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_DOUBLE_EQ(arr[0].asNumber(), 1.0);
    EXPECT_EQ(arr[1].asString(), "two");
    EXPECT_DOUBLE_EQ(arr[2].find("k")->asNumber(), 3.0);
    EXPECT_EQ(doc.find("esc")->asString(), "a\"b\\cA\n");
    EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(CampaignJson, RejectsMalformedDocuments)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson("", &doc, &error));
    EXPECT_FALSE(parseJson("{", &doc, &error));
    EXPECT_FALSE(parseJson("{\"a\":1,}", &doc, &error));
    EXPECT_FALSE(parseJson("[1 2]", &doc, &error));
    EXPECT_FALSE(parseJson("\"unterminated", &doc, &error));
    EXPECT_FALSE(parseJson("\"bad \\q escape\"", &doc, &error));
    EXPECT_FALSE(parseJson("01x", &doc, &error));
    EXPECT_FALSE(parseJson("{} trailing", &doc, &error));
    EXPECT_FALSE(parseJson("1e99999", &doc, &error));
    // The error names a position.
    parseJson("{} trailing", &doc, &error);
    EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(CampaignJson, DeepNestingIsRejectedNotACrash)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson(deep, &doc, &error));
    EXPECT_NE(error.find("nested too deeply"), std::string::npos);
}

TEST(CampaignJson, AsCountValidates)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson("[42, -1, 1.5, 300]", &doc, &error));
    EXPECT_EQ(doc.items()[0].asCount("x"), 42u);
    EXPECT_DEATH(doc.items()[1].asCount("x"), "non-negative");
    EXPECT_DEATH(doc.items()[2].asCount("x"), "non-negative");
    EXPECT_DEATH(doc.items()[3].asCount("x", 256), "out of range");
}

// ---- spec parsing + expansion ---------------------------------------

JsonValue
parseSpecText(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, &doc, &error)) << error;
    return doc;
}

TEST(CampaignSpecParse, MinimalSpecGetsDefaults)
{
    CampaignSpec spec = parseCampaignSpec(parseSpecText(
        R"({"name":"c1","prefetchers":["gaze"],"workloads":["mcf"]})"));
    EXPECT_EQ(spec.name, "c1");
    EXPECT_EQ(spec.prefetchers, (std::vector<std::string>{"gaze"}));
    EXPECT_EQ(spec.levels, (std::vector<std::string>{"l1"}));
    EXPECT_EQ(spec.coreCounts, (std::vector<uint32_t>{1}));
    EXPECT_EQ(spec.run.warmupInstr, 0u);
    EXPECT_TRUE(spec.traceDir.empty());
}

TEST(CampaignSpecParse, FatalSpecErrors)
{
    EXPECT_DEATH(parseCampaignSpec(parseSpecText(
                     R"({"prefetchers":["gaze"]})")),
                 "missing required \"name\"");
    EXPECT_DEATH(parseCampaignSpec(parseSpecText(R"({"name":"x"})")),
                 "missing required \"prefetchers\"");
    EXPECT_DEATH(parseCampaignSpec(parseSpecText(
                     R"({"name":"x","prefetchers":["warp_drive"]})")),
                 "");
    EXPECT_DEATH(
        parseCampaignSpec(parseSpecText(
            R"({"name":"x","prefetchers":["gaze"],"typo_key":1})")),
        "unknown key");
    EXPECT_DEATH(
        parseCampaignSpec(parseSpecText(
            R"({"name":"x","prefetchers":["gaze"],"levels":["l3"]})")),
        "unknown attach level");
    // Suites are validated even when "workloads" overrides them — a
    // typo'd axis must never be silently dropped.
    EXPECT_DEATH(
        parseCampaignSpec(parseSpecText(
            R"({"name":"x","prefetchers":["gaze"],)"
            R"("workloads":["mcf"],"suites":["spec6_typo"]})")),
        "unknown suite");
    EXPECT_DEATH(
        parseCampaignSpec(parseSpecText(
            R"({"name":"x","prefetchers":["gaze"],"cores":[0]})")),
        ">= 1");
    EXPECT_DEATH(
        parseCampaignSpec(parseSpecText(
            R"({"name":"x","prefetchers":["gaze"],)"
            R"("workloads":["nope"]})")),
        "unknown workload");
}

// The service preflights specs with checkCampaignSpecDoc so a typo'd
// submission becomes a "rejected" event instead of killing the daemon.
// These tests pin the contract: empty string for anything the fatal
// parser accepts, and a reason mirroring each GAZE_FATAL diagnosis.

TEST(CampaignSpecPreflight, AcceptsWhatTheFatalParserAccepts)
{
    EXPECT_EQ(checkCampaignSpecDoc(parseSpecText(
                  R"({"name":"c1","prefetchers":["gaze"],)"
                  R"("workloads":["mcf"]})")),
              "");
    EXPECT_EQ(checkCampaignSpecDoc(parseSpecText(
                  R"({"name":"c2",)"
                  R"("prefetchers":["none","bingo:region=4096"],)"
                  R"("suites":["spec06","gap"],"levels":["l1","l2"],)"
                  R"("cores":[1,4],"warmup":1000,"sim":5000})")),
              "");
}

TEST(CampaignSpecPreflight, MirrorsEveryFatalDiagnosisNonFatally)
{
    auto check = [](const char *text) {
        return checkCampaignSpecDoc(parseSpecText(text));
    };
    auto has = [](const std::string &msg, const char *needle) {
        return msg.find(needle) != std::string::npos;
    };
    EXPECT_TRUE(has(check(R"({"prefetchers":["gaze"]})"),
                    "missing required \"name\""));
    EXPECT_TRUE(has(check(R"({"name":"x"})"),
                    "missing required \"prefetchers\""));
    EXPECT_TRUE(has(check(R"({"name":"x","prefetchers":["warp_drive"]})"),
                    "unknown prefetcher 'warp_drive'"));
    EXPECT_TRUE(
        has(check(R"({"name":"x","prefetchers":["gaze"],"typo_key":1})"),
            "unknown key"));
    EXPECT_TRUE(
        has(check(
                R"({"name":"x","prefetchers":["gaze"],"levels":["l3"]})"),
            "unknown attach level"));
    // Suites are validated even when "workloads" overrides them.
    EXPECT_TRUE(has(check(R"({"name":"x","prefetchers":["gaze"],)"
                          R"("workloads":["mcf"],)"
                          R"("suites":["spec6_typo"]})"),
                    "unknown suite"));
    EXPECT_TRUE(
        has(check(R"({"name":"x","prefetchers":["gaze"],"cores":[0]})"),
            ">= 1"));
    EXPECT_TRUE(has(check(R"({"name":"x","prefetchers":["gaze"],)"
                          R"("workloads":["nope"]})"),
                    "unknown workload 'nope'"));
    EXPECT_TRUE(has(check(R"(["not","an","object"])"),
                    "must be a JSON object"));
    EXPECT_TRUE(has(check(R"({"name":"","prefetchers":["gaze"]})"),
                    "non-empty"));
    // trace_dir is probed up front: a dangling path is a reason, not
    // a mid-campaign surprise.
    EXPECT_TRUE(has(check(R"({"name":"x","prefetchers":["gaze"],)"
                          R"("workloads":["mcf"],)"
                          R"("trace_dir":"/no/such/dir"})"),
                    "no usable trace"));
}

TEST(CampaignSpecPreflight, PrefetcherOptionDiagnoses)
{
    EXPECT_EQ(checkPrefetcherSpecText(""), "");
    EXPECT_EQ(checkPrefetcherSpecText("none"), "");
    EXPECT_EQ(checkPrefetcherSpecText("gaze"), "");
    EXPECT_EQ(checkPrefetcherSpecText("bingo:region=4096:phtways=8"),
              "");
    auto has = [](const std::string &msg, const char *needle) {
        return msg.find(needle) != std::string::npos;
    };
    EXPECT_TRUE(has(checkPrefetcherSpecText("warp_drive"),
                    "unknown prefetcher"));
    EXPECT_TRUE(has(checkPrefetcherSpecText("bingo:warp=1"),
                    "unknown option 'warp'"));
    EXPECT_TRUE(has(checkPrefetcherSpecText("bingo:region"), "needs =N"));
    EXPECT_TRUE(has(checkPrefetcherSpecText("bingo:region=3000"),
                    "power of two"));
    EXPECT_TRUE(
        has(checkPrefetcherSpecText("bingo:region=128:region=128"),
            "given twice"));
    EXPECT_TRUE(has(checkPrefetcherSpecText("sms:scheme=psychic"),
                    "unknown value 'psychic'"));
}

TEST(CampaignExpand, CellOrderAndBaselineDedup)
{
    CampaignSpec spec = parseCampaignSpec(parseSpecText(
        R"({"name":"c2","prefetchers":["ip_stride","gaze"],)"
        R"("workloads":["leslie3d","mcf"],"levels":["l1","l2"],)"
        R"("cores":[1],"warmup":1000,"sim":4000})"));
    Campaign c = expandCampaign(spec);

    // 2 levels x 1 core count x 2 prefetchers x 2 workloads.
    ASSERT_EQ(c.cells.size(), 8u);
    // Baselines do not depend on prefetcher or level: one per
    // (cores, workload).
    EXPECT_EQ(c.baselines.size(), 2u);

    EXPECT_EQ(c.cells[0].prefetcher, "ip_stride");
    EXPECT_EQ(c.cells[0].workload.name, "leslie3d");
    EXPECT_EQ(c.cells[0].level, "l1");
    EXPECT_EQ(c.cells[1].workload.name, "mcf");
    EXPECT_EQ(c.cells[2].prefetcher, "gaze");
    EXPECT_EQ(c.cells[4].level, "l2");

    // l1 and l2 attachment of the same prefetcher are different
    // cells, but share a baseline.
    EXPECT_NE(c.cells[0].hash, c.cells[4].hash);
    EXPECT_EQ(c.cells[0].baselineHash, c.cells[4].baselineHash);

    // Expansion is deterministic.
    Campaign again = expandCampaign(spec);
    ASSERT_EQ(again.cells.size(), c.cells.size());
    for (size_t i = 0; i < c.cells.size(); ++i) {
        EXPECT_EQ(again.cells[i].key, c.cells[i].key);
        EXPECT_EQ(again.cells[i].hash, c.cells[i].hash);
    }
}

// ---- canonical cell keys --------------------------------------------

TEST(CellKey, SensitiveToEveryAxis)
{
    RunConfig cfg;
    cfg.warmupInstr = 1000;
    cfg.simInstr = 4000;
    std::vector<WorkloadDef> mix = {findWorkload("mcf")};

    std::string base = canonicalCellText(cfg, PfSpec{"gaze"}, mix);
    EXPECT_EQ(base, canonicalCellText(cfg, PfSpec{"gaze"}, mix));
    EXPECT_NE(base, canonicalCellText(cfg, PfSpec{"pmp"}, mix));
    EXPECT_NE(base, canonicalCellText(cfg, PfSpec{"none", "gaze"}, mix));
    EXPECT_NE(base, canonicalCellText(cfg, PfSpec{}, mix));

    RunConfig warm = cfg;
    warm.warmupInstr = 2000;
    EXPECT_NE(base, canonicalCellText(warm, PfSpec{"gaze"}, mix));

    RunConfig bigL2 = cfg;
    bigL2.system.l2Bytes *= 2;
    EXPECT_NE(base, canonicalCellText(bigL2, PfSpec{"gaze"}, mix));

    std::vector<WorkloadDef> wide(2, findWorkload("mcf"));
    EXPECT_NE(base, canonicalCellText(cfg, PfSpec{"gaze"}, wide));

    std::vector<WorkloadDef> other = {findWorkload("leslie3d")};
    EXPECT_NE(base, canonicalCellText(cfg, PfSpec{"gaze"}, other));

    // The schema version is part of the text.
    EXPECT_NE(base.find("schema="), std::string::npos);

    uint64_t h = cellHash(base);
    EXPECT_EQ(h, cellHash(base));
    EXPECT_NE(h, cellHash(base + "x"));
    EXPECT_EQ(cellHashHex(h).size(), 16u);
}

// ---- result cache ---------------------------------------------------

TEST(ResultCacheTest, StoreLookupRoundTrip)
{
    ResultCache cache(freshDir("campaign_cache_rt"));
    CellRecord rec;
    rec.key = "schema=1;test-key";
    rec.summary.ipc = 1.2345;
    rec.summary.pfIssued = 100;
    rec.summary.pfFilled = 90;
    rec.summary.pfUseful = 70;
    rec.summary.pfLate = 5;
    rec.summary.llcDemandMiss = 1234;
    rec.seconds = 0.5;
    uint64_t hash = cellHash(rec.key);

    CellRecord out;
    EXPECT_FALSE(cache.lookup(hash, rec.key, &out));
    cache.store(hash, rec);
    ASSERT_TRUE(cache.lookup(hash, rec.key, &out));
    EXPECT_DOUBLE_EQ(out.summary.ipc, 1.2345);
    EXPECT_EQ(out.summary.pfIssued, 100u);
    EXPECT_EQ(out.summary.pfFilled, 90u);
    EXPECT_EQ(out.summary.pfUseful, 70u);
    EXPECT_EQ(out.summary.pfLate, 5u);
    EXPECT_EQ(out.summary.llcDemandMiss, 1234u);

    // No temp droppings left behind by the atomic publish.
    size_t files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             cache.directory())) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(ResultCacheTest, KeyMismatchAndCorruptionReadAsMiss)
{
    ResultCache cache(freshDir("campaign_cache_bad"));
    CellRecord rec;
    rec.key = "schema=1;the-real-key";
    rec.summary.ipc = 1.0;
    uint64_t hash = cellHash(rec.key);
    cache.store(hash, rec);

    // Same hash, different canonical text: hash collision guard.
    CellRecord out;
    std::string why;
    EXPECT_FALSE(cache.lookup(hash, "schema=1;other-key", &out, &why));
    EXPECT_NE(why.find("mismatch"), std::string::npos);

    // Parseable record with a matching key but a missing counter
    // (e.g. written by a modified build that forgot to bump the
    // schema): a miss to recompute, never a fatal.
    {
        std::ofstream f(cache.path(hash),
                        std::ios::binary | std::ios::trunc);
        f << "{\"schema\":" << kCellSchemaVersion << ",\"key\":\""
          << rec.key << "\",\"ipc\":1.0,\"seconds\":0.1}";
    }
    why.clear();
    EXPECT_FALSE(cache.lookup(hash, rec.key, &out, &why));
    EXPECT_NE(why.find("malformed"), std::string::npos);

    // A record from a previous schema version: stale, reads as miss.
    {
        std::ofstream f(cache.path(hash),
                        std::ios::binary | std::ios::trunc);
        f << "{\"schema\":" << kCellSchemaVersion - 1 << ",\"key\":\""
          << rec.key << "\",\"ipc\":1.0,\"seconds\":0.1}";
    }
    why.clear();
    EXPECT_FALSE(cache.lookup(hash, rec.key, &out, &why));
    EXPECT_NE(why.find("schema"), std::string::npos);

    // Truncated/garbage file: miss with a reason, not a crash.
    {
        std::ofstream f(cache.path(hash),
                        std::ios::binary | std::ios::trunc);
        f << "{\"schema\":" << kCellSchemaVersion << ",";
    }
    why.clear();
    EXPECT_FALSE(cache.lookup(hash, rec.key, &out, &why));
    EXPECT_NE(why.find("unparseable"), std::string::npos);
}

// ---- RunSummary equivalence -----------------------------------------

TEST(RunSummaryTest, MatchesFullRunResultMetrics)
{
    RunResult base;
    base.cores.push_back({10000, 20000});
    base.llc.loadMiss = 800;
    base.llc.rfoMiss = 200;

    RunResult pf;
    pf.cores.push_back({10000, 15000});
    pf.llc.loadMiss = 350;
    pf.llc.rfoMiss = 50;
    pf.l1d.pfIssued = 500;
    pf.l1d.pfFilled = 400;
    pf.l1d.pfUseful = 300;
    pf.l1d.pfLate = 20;
    pf.l2.pfIssued = 100;
    pf.l2.pfFilled = 80;
    pf.l2.pfUseful = 40;
    pf.l2.pfLate = 4;

    PrefetchMetrics full = computeMetrics(base, pf);
    PrefetchMetrics summarized =
        computeMetrics(summarize(base), summarize(pf));

    EXPECT_DOUBLE_EQ(full.speedup, summarized.speedup);
    EXPECT_DOUBLE_EQ(full.accuracy, summarized.accuracy);
    EXPECT_DOUBLE_EQ(full.coverage, summarized.coverage);
    EXPECT_DOUBLE_EQ(full.lateFraction, summarized.lateFraction);
    EXPECT_EQ(full.pfIssued, summarized.pfIssued);
    EXPECT_EQ(full.pfFilled, summarized.pfFilled);
    EXPECT_EQ(full.pfUseful, summarized.pfUseful);
    EXPECT_EQ(full.pfLate, summarized.pfLate);
    EXPECT_EQ(full.llcMissBase, summarized.llcMissBase);
    EXPECT_EQ(full.llcMissPf, summarized.llcMissPf);
}

// ---- end to end -----------------------------------------------------

Campaign
tinyCampaign()
{
    CampaignSpec spec = parseCampaignSpec(parseSpecText(
        R"({"name":"tiny","prefetchers":["ip_stride"],)"
        R"("workloads":["leslie3d","mcf"],)"
        R"("warmup":500,"sim":2000})"));
    return expandCampaign(spec);
}

TEST(CampaignEndToEnd, SecondRunIsAllCacheHitsAndByteIdentical)
{
    Campaign campaign = tinyCampaign();
    ResultCache cache(freshDir("campaign_e2e"));

    CampaignRunOptions opt;
    opt.threads = 2;
    opt.verbose = false;

    CampaignRunStats first = runCampaign(campaign, cache, opt);
    EXPECT_EQ(first.executed, 4u); // 2 cells + 2 baselines
    EXPECT_EQ(first.cacheHits, 0u);

    CampaignRunStats second = runCampaign(campaign, cache, opt);
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.cacheHits, 4u);

    CampaignReport r1 = buildReport(campaign, cache, nullptr);
    CampaignReport r2 = buildReport(campaign, cache, nullptr);
    EXPECT_EQ(r1.json, r2.json);
    EXPECT_EQ(r1.csv, r2.csv);
    ASSERT_EQ(r1.suites.size(), 1u);
    EXPECT_EQ(r1.suites[0].prefetcher, "ip_stride");
    EXPECT_EQ(r1.suites[0].workloads, 2u);
    EXPECT_GT(r1.suites[0].summary.speedup, 0.0);
}

TEST(CampaignEndToEnd, ShardsPartitionAndAggregateIdentically)
{
    Campaign campaign = tinyCampaign();

    ResultCache whole(freshDir("campaign_whole"));
    CampaignRunOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    runCampaign(campaign, whole, opt);
    CampaignReport expected = buildReport(campaign, whole, nullptr);

    ResultCache sharded(freshDir("campaign_sharded"));
    CampaignRunOptions shard0 = opt;
    shard0.shardIndex = 0;
    shard0.shardCount = 2;
    CampaignRunOptions shard1 = opt;
    shard1.shardIndex = 1;
    shard1.shardCount = 2;

    CampaignRunStats s0 = runCampaign(campaign, sharded, shard0);
    EXPECT_EQ(s0.executed, 2u);
    EXPECT_EQ(s0.otherShards, 2u);

    // Before the sibling shard finishes, aggregation must refuse.
    EXPECT_DEATH(buildReport(campaign, sharded, nullptr),
                 "not in cache");

    CampaignRunStats s1 = runCampaign(campaign, sharded, shard1);
    EXPECT_EQ(s1.executed, 2u);

    CampaignReport merged = buildReport(campaign, sharded, nullptr);
    EXPECT_EQ(merged.json, expected.json);
    EXPECT_EQ(merged.csv, expected.csv);

    CampaignCacheStatus status = campaignStatus(campaign, sharded);
    EXPECT_EQ(status.cached, 4u);
    EXPECT_EQ(status.missing, 0u);
}

TEST(CampaignEndToEnd, DuplicateAxisEntriesExecuteOnce)
{
    // A careless spec can name the same workload twice; the duplicate
    // cells share one hash and must collapse to one job (two
    // concurrent jobs would race on the same cache file) while the
    // report still renders every expanded cell.
    CampaignSpec spec = parseCampaignSpec(parseSpecText(
        R"({"name":"dup","prefetchers":["ip_stride"],)"
        R"("workloads":["mcf","mcf"],"warmup":500,"sim":2000})"));
    Campaign campaign = expandCampaign(spec);
    ASSERT_EQ(campaign.cells.size(), 2u);
    EXPECT_EQ(campaign.cells[0].hash, campaign.cells[1].hash);
    EXPECT_EQ(campaign.baselines.size(), 1u);

    ResultCache cache(freshDir("campaign_dup"));
    CampaignRunOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    CampaignRunStats stats = runCampaign(campaign, cache, opt);
    EXPECT_EQ(stats.executed, 2u); // 1 baseline + 1 unique cell
    EXPECT_EQ(stats.cacheHits, 0u);

    CampaignReport report = buildReport(campaign, cache, nullptr);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(report.json, &doc, &error)) << error;
    EXPECT_EQ(doc.find("cells")->items().size(), 2u);
}

TEST(CampaignEndToEnd, CompareSectionReportsZeroDeltaAgainstSelf)
{
    Campaign campaign = tinyCampaign();
    ResultCache cache(freshDir("campaign_cmp"));
    CampaignRunOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    runCampaign(campaign, cache, opt);

    CampaignReport plain = buildReport(campaign, cache, nullptr);
    JsonValue previous;
    std::string error;
    ASSERT_TRUE(parseJson(plain.json, &previous, &error)) << error;

    CampaignReport compared = buildReport(campaign, cache, &previous);
    JsonValue doc;
    ASSERT_TRUE(parseJson(compared.json, &doc, &error)) << error;
    const JsonValue *compare = doc.find("compare");
    ASSERT_NE(compare, nullptr);
    const auto &rows = compare->find("suites")->items();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].find("speedup_delta")->asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(
        compare->find("rows_without_previous")->asNumber(), 0.0);
}

} // namespace
} // namespace gaze
