/**
 * @file
 * Pattern History Module tests: the PHT's trigger-index/second-tag
 * structure (the paper's key mechanism — temporal order verified by
 * the table lookup itself), the generalized n-offset events of Fig. 4,
 * and the streaming detector's DPCT/DC behaviour.
 */

#include <gtest/gtest.h>

#include "core/pattern_history.hh"

namespace gaze
{
namespace
{

InitialAccesses
event(std::initializer_list<uint16_t> offsets)
{
    InitialAccesses e;
    for (uint16_t o : offsets)
        e.push(o);
    return e;
}

Bitset
footprint(std::initializer_list<size_t> bits, size_t size = 64)
{
    Bitset f(size);
    for (size_t b : bits)
        f.set(b);
    return f;
}

TEST(PatternHistoryTable, LearnThenExactLookup)
{
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9, 12, 20}));

    const Bitset *hit = pht.lookup(event({5, 9}));
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(hit->test(12));
    EXPECT_TRUE(hit->test(20));
}

TEST(PatternHistoryTable, SecondOffsetIsPartOfTheKey)
{
    // The Fig. 2 scenario: same trigger, different second access.
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9, 12}));
    pht.learn(event({5, 30}), footprint({5, 30, 40}));

    const Bitset *a = pht.lookup(event({5, 9}));
    const Bitset *b = pht.lookup(event({5, 30}));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->test(12));
    EXPECT_FALSE(a->test(40));
    EXPECT_TRUE(b->test(40));
    EXPECT_FALSE(b->test(12));
}

TEST(PatternHistoryTable, TemporalOrderIsVerified)
{
    // (5, 9) and (9, 5) are different events: the access order
    // matters, which is exactly what distinguishes Gaze from
    // footprint-only characterization.
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9, 12}));
    EXPECT_EQ(pht.lookup(event({9, 5})), nullptr);
    EXPECT_NE(pht.lookup(event({5, 9})), nullptr);
}

TEST(PatternHistoryTable, StrictMissOnUnseenEvent)
{
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9}));
    EXPECT_EQ(pht.lookup(event({5, 10})), nullptr);
    EXPECT_EQ(pht.lookup(event({6, 9})), nullptr);
}

TEST(PatternHistoryTable, ApproxFallsBackToTriggerMatch)
{
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9, 13}));
    // Approx lookup with matching trigger but different second finds
    // *some* pattern from the set (the strictMatch=false ablation).
    const Bitset *fp = pht.lookupApprox(event({5, 21}));
    ASSERT_NE(fp, nullptr);
    EXPECT_TRUE(fp->test(13));
}

TEST(PatternHistoryTable, RelearnOverwrites)
{
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    pht.learn(event({3, 4}), footprint({3, 4, 10}));
    pht.learn(event({3, 4}), footprint({3, 4, 50}));
    const Bitset *fp = pht.lookup(event({3, 4}));
    ASSERT_NE(fp, nullptr);
    EXPECT_FALSE(fp->test(10));
    EXPECT_TRUE(fp->test(50));
    EXPECT_EQ(pht.occupancy(), 1u);
}

TEST(PatternHistoryTable, FourWaySetCapacity)
{
    // Default geometry: 64 sets x 4 ways indexed by trigger. Five
    // events sharing one trigger overflow the set, evicting LRU.
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    for (uint16_t s = 10; s < 15; ++s)
        pht.learn(event({7, s}), footprint({7, s}));
    EXPECT_EQ(pht.occupancy(), 4u);
    EXPECT_EQ(pht.lookup(event({7, 10})), nullptr); // LRU evicted
    EXPECT_NE(pht.lookup(event({7, 14})), nullptr);
}

TEST(PatternHistoryTable, ThreeOffsetEvents)
{
    GazeConfig cfg;
    cfg.numInitialAccesses = 3;
    cfg.phtSets = 1;
    cfg.phtWays = 256;
    PatternHistoryTable pht(cfg);
    pht.learn(event({1, 2, 3}), footprint({1, 2, 3, 30}));
    EXPECT_NE(pht.lookup(event({1, 2, 3})), nullptr);
    EXPECT_EQ(pht.lookup(event({1, 2, 4})), nullptr);
    EXPECT_EQ(pht.lookup(event({1, 3, 2})), nullptr);
}

TEST(PatternHistoryTable, SingleOffsetEvents)
{
    GazeConfig cfg;
    cfg.numInitialAccesses = 1;
    PatternHistoryTable pht(cfg);
    pht.learn(event({42}), footprint({42, 43}));
    EXPECT_NE(pht.lookup(event({42})), nullptr);
    // With n=1 the second offset is ignored entirely.
    InitialAccesses e = event({42, 7});
    EXPECT_NE(pht.lookup(e), nullptr);
}

TEST(PatternHistoryTable, LargeRegionGeometry)
{
    // 64KB regions: 1024 offsets; trigger folds into 64 sets and the
    // surplus trigger bits move into the tag, so distinct triggers
    // that alias the same set must not collide.
    GazeConfig cfg;
    cfg.regionSize = 65536;
    PatternHistoryTable pht(cfg);
    pht.learn(event({5, 9}), footprint({5, 9}, 1024));
    pht.learn(event({5 + 64, 9}), footprint({100}, 1024));
    const Bitset *a = pht.lookup(event({5, 9}));
    const Bitset *b = pht.lookup(event({5 + 64, 9}));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->test(5));
    EXPECT_FALSE(a->test(100));
    EXPECT_TRUE(b->test(100));
}

TEST(PatternHistoryTable, StorageBitsMatchTableI)
{
    GazeConfig cfg;
    // Table I: PHT = 256 entries x (6 tag + 2 LRU + 64 bits) = 2304B.
    PatternHistoryTable pht(cfg);
    EXPECT_EQ(pht.storageBits(), 256u * 72);
    EXPECT_EQ(pht.storageBits() / 8, 2304u);
}

// ----------------------------------------------------- StreamingDetector

TEST(StreamingDetector, DensePcIsRemembered)
{
    GazeConfig cfg;
    StreamingDetector sd(cfg);
    EXPECT_FALSE(sd.isDensePc(0x123));
    sd.onDenseRegion(0x123);
    EXPECT_TRUE(sd.isDensePc(0x123));
    EXPECT_FALSE(sd.isDensePc(0x456));
}

TEST(StreamingDetector, DpctCapacityEightPcs)
{
    GazeConfig cfg;
    StreamingDetector sd(cfg);
    for (uint64_t pc = 0; pc < 9; ++pc)
        sd.onDenseRegion(pc);
    EXPECT_FALSE(sd.isDensePc(0)); // LRU evicted
    EXPECT_TRUE(sd.isDensePc(8));
}

TEST(StreamingDetector, CounterFollowsPaperRules)
{
    GazeConfig cfg;
    StreamingDetector sd(cfg);
    EXPECT_FALSE(sd.counterAboveHalf());
    for (int i = 0; i < 7; ++i)
        sd.onDenseRegion(1);
    EXPECT_TRUE(sd.counterFull());
    sd.onSparseRegion(); // 7 -> 3 (fast halve)
    EXPECT_FALSE(sd.counterFull());
    EXPECT_TRUE(sd.counterAboveHalf());
    sd.onSparseRegion(); // 3 -> 1
    EXPECT_FALSE(sd.counterAboveHalf());
}

TEST(StreamingDetector, StorageBitsMatchTableI)
{
    GazeConfig cfg;
    StreamingDetector sd(cfg);
    // Table I: DPCT = 8 x (12 + 3) = 120 bits = 15 bytes (+3b DC).
    EXPECT_EQ(sd.storageBits(), 8u * 15 + 3);
}

} // namespace
} // namespace gaze
