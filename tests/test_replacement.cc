/**
 * @file
 * Replacement policy tests: LRU recency order, SRRIP insertion and
 * aging (prefetch fills inserted distant), Random bounds, factory.
 */

#include <gtest/gtest.h>

#include "sim/replacement.hh"

namespace gaze
{
namespace
{

uint64_t
allValid(uint32_t ways)
{
    return ways >= 64 ? ~uint64_t(0) : (uint64_t(1) << ways) - 1;
}

TEST(Lru, PrefersInvalidWays)
{
    LruPolicy p(2, 4);
    // Ways 0, 2, 3 valid; way 1 free.
    EXPECT_EQ(p.victim(0, 0b1101), 1u);
}

TEST(Lru, EvictsOldest)
{
    LruPolicy p(1, 4);
    for (uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, false);
    EXPECT_EQ(p.victim(0, allValid(4)), 0u);
    p.onHit(0, 0);
    EXPECT_EQ(p.victim(0, allValid(4)), 1u);
}

TEST(Lru, SetsIndependent)
{
    LruPolicy p(2, 2);
    p.onFill(0, 0, false);
    p.onFill(0, 1, false);
    p.onFill(1, 1, false);
    p.onFill(1, 0, false);
    EXPECT_EQ(p.victim(0, allValid(2)), 0u);
    EXPECT_EQ(p.victim(1, allValid(2)), 1u);
}

TEST(Srrip, HitPromotesToNearImminent)
{
    SrripPolicy p(1, 4);
    for (uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, false);
    p.onHit(0, 2);
    // Way 2 was promoted: the victim must be one of the others.
    EXPECT_NE(p.victim(0, allValid(4)), 2u);
}

TEST(Srrip, PrefetchInsertedDistant)
{
    SrripPolicy p(1, 2);
    p.onFill(0, 0, /*prefetch=*/true);
    p.onFill(0, 1, /*prefetch=*/false);
    // The prefetch (distant RRPV) is the first victim.
    EXPECT_EQ(p.victim(0, allValid(2)), 0u);
}

TEST(Random, VictimWithinRangeAndInvalidFirst)
{
    RandomPolicy p(1, 8);
    uint64_t valid = allValid(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(p.victim(0, valid), 8u);
    valid &= ~(uint64_t(1) << 5);
    EXPECT_EQ(p.victim(0, valid), 5u);
}

TEST(Factory, MakesAllPolicies)
{
    EXPECT_EQ(makeReplacementPolicy("lru", 4, 4)->name(), "lru");
    EXPECT_EQ(makeReplacementPolicy("srrip", 4, 4)->name(), "srrip");
    EXPECT_EQ(makeReplacementPolicy("random", 4, 4)->name(), "random");
}

TEST(FactoryDeath, UnknownPolicyFatal)
{
    EXPECT_DEATH((void)makeReplacementPolicy("plru", 4, 4),
                 "unknown replacement");
}

} // namespace
} // namespace gaze
