/**
 * @file
 * Workload generator tests: determinism, structural properties of each
 * archetype (streaming density, template order consistency, pointer-
 * chase serialization, hazard mix), the graph builder, and the suite
 * registry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/generators.hh"
#include "workloads/graph.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

/** Collect the distinct-block access order per 4KB page. */
std::map<Addr, std::vector<uint32_t>>
pageAccessOrders(const VectorTrace &t)
{
    std::map<Addr, std::vector<uint32_t>> orders;
    std::map<Addr, std::set<uint32_t>> seen;
    for (const auto &r : t.data()) {
        if (r.op == TraceOp::NonMem || r.op == TraceOp::Stall)
            continue;
        Addr page = pageNumber(r.vaddr);
        uint32_t off = regionOffset(r.vaddr);
        if (seen[page].insert(off).second)
            orders[page].push_back(off);
    }
    return orders;
}

double
memFraction(const VectorTrace &t)
{
    size_t mem = 0;
    for (const auto &r : t.data())
        mem += r.op == TraceOp::Load || r.op == TraceOp::Store
               || r.op == TraceOp::DependentLoad;
    return double(mem) / double(t.size());
}

TEST(Generators, StreamIsDeterministic)
{
    StreamParams p;
    p.records = 50000;
    VectorTrace a = genStream(p);
    VectorTrace b = genStream(p);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.data()[i].vaddr, b.data()[i].vaddr);
        EXPECT_EQ(a.data()[i].pc, b.data()[i].pc);
    }
}

TEST(Generators, DifferentSeedsDiffer)
{
    StreamParams p1, p2;
    p1.records = p2.records = 20000;
    p1.seed = 1;
    p2.seed = 2;
    VectorTrace a = genStream(p1);
    VectorTrace b = genStream(p2);
    bool differ = false;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i)
        differ |= a.data()[i].vaddr != b.data()[i].vaddr;
    EXPECT_TRUE(differ);
}

TEST(Generators, StreamPagesAreDenseAndInOrder)
{
    StreamParams p;
    p.records = 200000;
    p.streams = 1;
    VectorTrace t = genStream(p);
    auto orders = pageAccessOrders(t);
    ASSERT_GT(orders.size(), 3u);
    size_t full = 0;
    for (const auto &[page, order] : orders) {
        if (order.size() == blocksPerPage) {
            ++full;
            // Offsets visited strictly ascending: the streaming-case
            // (trigger 0, second 1) the paper's §III-C keys on.
            for (size_t i = 0; i < order.size(); ++i)
                EXPECT_EQ(order[i], i);
        }
    }
    EXPECT_GT(full, 2u);
}

TEST(Generators, StreamElementGranularityGivesReuse)
{
    StreamParams p;
    p.records = 50000;
    p.streams = 1;
    p.elemBytes = 8;
    VectorTrace t = genStream(p);
    // 8 consecutive accesses per block -> mem accesses greatly exceed
    // distinct blocks.
    std::set<Addr> blocks;
    size_t mem = 0;
    for (const auto &r : t.data()) {
        if (r.op == TraceOp::Load || r.op == TraceOp::Store) {
            ++mem;
            blocks.insert(blockNumber(r.vaddr));
        }
    }
    EXPECT_GT(mem, blocks.size() * 6);
}

TEST(Generators, StridedStreamSkipsBlocks)
{
    StreamParams p;
    p.records = 100000;
    p.streams = 1;
    p.strideBlocks = 4;
    VectorTrace t = genStream(p);
    auto orders = pageAccessOrders(t);
    for (const auto &[page, order] : orders) {
        if (order.size() < 8)
            continue;
        for (size_t i = 1; i < order.size(); ++i)
            EXPECT_EQ((order[i] - order[i - 1]) % 4, 0u);
    }
}

TEST(Generators, StoresAppearAtRequestedFraction)
{
    StreamParams p;
    p.records = 100000;
    p.storeFraction = 0.4;
    VectorTrace t = genStream(p);
    size_t loads = 0, stores = 0;
    for (const auto &r : t.data()) {
        loads += r.op == TraceOp::Load;
        stores += r.op == TraceOp::Store;
    }
    double frac = double(stores) / double(loads + stores);
    EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(Generators, TemplatesReplayConsistentOrder)
{
    TemplateParams p;
    p.records = 300000;
    p.numTemplates = 4;
    p.conflictDegree = 2;
    p.blocksPerTemplate = 6;
    p.revisitFraction = 0.0; // fresh pages: template per page
    p.jitter = 0.0;
    VectorTrace t = genTemplates(p);
    auto orders = pageAccessOrders(t);

    // Every completed page's order must equal one of <=4 sequences.
    std::set<std::vector<uint32_t>> distinct;
    for (const auto &[page, order] : orders)
        if (order.size() == p.blocksPerTemplate)
            distinct.insert(order);
    EXPECT_LE(distinct.size(), 4u);
    EXPECT_GE(distinct.size(), 2u);
}

TEST(Generators, ConflictingTemplatesShareTriggerDifferInSecond)
{
    TemplateParams p;
    p.records = 300000;
    p.numTemplates = 4;
    p.conflictDegree = 4; // all four share one trigger
    p.blocksPerTemplate = 6;
    p.revisitFraction = 0.0;
    VectorTrace t = genTemplates(p);
    auto orders = pageAccessOrders(t);

    std::set<uint32_t> triggers, seconds;
    for (const auto &[page, order] : orders) {
        if (order.size() != p.blocksPerTemplate)
            continue;
        triggers.insert(order[0]);
        seconds.insert(order[1]);
    }
    EXPECT_EQ(triggers.size(), 1u); // the Fig. 2 conflict
    EXPECT_GE(seconds.size(), 3u);  // disambiguated by the 2nd access
}

TEST(Generators, TemplateRevisitKeepsPageBinding)
{
    TemplateParams p;
    p.records = 400000;
    p.numTemplates = 6;
    p.blocksPerTemplate = 6;
    p.revisitFraction = 1.0; // only pool pages
    p.numPages = 64;
    p.concurrentRegions = 1;  // serial generations
    p.accessesPerBlock = 1;   // one access per block: exact replay
    VectorTrace t = genTemplates(p);

    // Group distinct-block sequences per page per generation: every
    // generation of one page must use the same template (same first
    // two offsets).
    std::map<Addr, std::set<std::pair<uint32_t, uint32_t>>> firstTwo;
    std::map<Addr, std::vector<uint32_t>> current;
    std::map<Addr, std::set<uint32_t>> seen;
    for (const auto &r : t.data()) {
        if (r.op != TraceOp::Load)
            continue;
        Addr page = pageNumber(r.vaddr);
        uint32_t off = regionOffset(r.vaddr);
        if (!seen[page].insert(off).second)
            continue;
        current[page].push_back(off);
        if (current[page].size() == 6) { // blocksPerTemplate default..
            firstTwo[page].insert({current[page][0], current[page][1]});
            current[page].clear();
            seen[page].clear();
        }
    }
    size_t consistent = 0, total = 0;
    for (const auto &[page, set] : firstTwo) {
        ++total;
        consistent += set.size() == 1;
    }
    EXPECT_GT(total, 10u);
    EXPECT_GT(double(consistent) / total, 0.9);
}

TEST(Generators, PointerChaseIsDependentAndIrregular)
{
    ChaseParams p;
    p.records = 100000;
    p.noiseFraction = 0.0;
    VectorTrace t = genPointerChase(p);
    size_t dep = 0, mem = 0;
    std::set<Addr> blocks;
    for (const auto &r : t.data()) {
        if (r.op == TraceOp::DependentLoad) {
            ++dep;
            ++mem;
            blocks.insert(blockNumber(r.vaddr));
        } else if (r.op == TraceOp::Load) {
            ++mem;
        }
    }
    EXPECT_EQ(dep, mem); // all chase loads are dependent
    // A permutation cycle: nearly every access hits a fresh block.
    EXPECT_GT(blocks.size(), dep * 9 / 10);
}

TEST(Generators, ServerTraceHasStallsAndLightMemory)
{
    ServerParams p;
    p.records = 100000;
    VectorTrace t = genServer(p);
    size_t stalls = 0;
    for (const auto &r : t.data())
        stalls += r.op == TraceOp::Stall;
    EXPECT_GT(stalls, 50u);
    EXPECT_LT(memFraction(t), 0.2); // instruction-bound
}

TEST(Generators, HazardMixesDenseAndSparse)
{
    StreamHazardParams p;
    p.records = 400000;
    p.denseFraction = 0.5;
    VectorTrace t = genStreamHazard(p);
    auto orders = pageAccessOrders(t);
    size_t dense = 0, sparse = 0;
    for (const auto &[page, order] : orders) {
        if (order.size() >= blocksPerPage)
            ++dense;
        else if (order.size() <= p.sparseBlocks)
            ++sparse;
    }
    EXPECT_GT(dense, 5u);
    EXPECT_GT(sparse, 5u);
}

TEST(Generators, HazardLookalikesStartAtZero)
{
    StreamHazardParams p;
    p.records = 300000;
    p.denseFraction = 0.3;
    p.sparseLookalike = 1.0; // every sparse region is a lookalike
    VectorTrace t = genStreamHazard(p);
    auto orders = pageAccessOrders(t);
    for (const auto &[page, order] : orders) {
        if (order.size() >= 2)
            EXPECT_EQ(order[0], 0u) << "page " << page;
    }
}

// ---------------------------------------------------------------- graph

TEST(Graph, CsrIsConsistent)
{
    SyntheticGraph g = makeGraph(1 << 12, 6.0, 7);
    EXPECT_EQ(g.rowStart.size(), g.numVertices + 1);
    EXPECT_EQ(g.rowStart.back(), g.neighbors.size());
    for (uint32_t n : g.neighbors)
        EXPECT_LT(n, g.numVertices);
    // Arena layout must not overlap.
    EXPECT_GT(g.neighborsBase, g.offsetsBase);
    EXPECT_GT(g.propertyBase, g.neighborsBase);
    EXPECT_GT(g.frontierBase, g.propertyBase);
}

TEST(Graph, DeterministicBySeed)
{
    SyntheticGraph a = makeGraph(1 << 10, 4.0, 3);
    SyntheticGraph b = makeGraph(1 << 10, 4.0, 3);
    EXPECT_EQ(a.neighbors, b.neighbors);
}

TEST(Graph, InitPhaseIsStreamingHeavy)
{
    GraphTraceParams p;
    p.records = 100000;
    p.vertices = 1 << 12;
    VectorTrace t = genPageRank(p, /*init=*/true);
    auto orders = pageAccessOrders(t);
    // Ascending block-ordered pages dominate the init phase.
    size_t ordered = 0, considered = 0;
    for (const auto &[page, order] : orders) {
        if (order.size() < 8)
            continue;
        ++considered;
        bool asc = true;
        for (size_t i = 1; i < order.size(); ++i)
            asc &= order[i] > order[i - 1];
        ordered += asc;
    }
    ASSERT_GT(considered, 0u);
    EXPECT_GT(double(ordered) / considered, 0.9);
}

TEST(Graph, ComputePhaseMixesIrregular)
{
    GraphTraceParams p;
    p.records = 100000;
    p.vertices = 1 << 16; // property array spans many pages
    VectorTrace t = genBfs(p, /*init=*/false);
    // Property gathers are scattered: a sizable share of pages is
    // touched only sparsely (the irregular component).
    auto orders = pageAccessOrders(t);
    size_t sparse_pages = 0;
    for (const auto &[page, order] : orders)
        sparse_pages += order.size() <= 8;
    ASSERT_GT(orders.size(), 0u);
    EXPECT_GT(double(sparse_pages) / orders.size(), 0.10);
}

// --------------------------------------------------------------- suites

TEST(Suites, RegistryIsComplete)
{
    EXPECT_GE(allWorkloads().size(), 40u);
    for (const auto &s : mainSuites())
        EXPECT_GE(suiteWorkloads(s).size(), 4u) << s;
    EXPECT_GE(suiteWorkloads("gap").size(), 6u);
    EXPECT_GE(suiteWorkloads("qmm").size(), 6u);
}

TEST(Suites, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Suites, FindWorkloadByName)
{
    const WorkloadDef &w = findWorkload("fotonik3d_s");
    EXPECT_EQ(w.suite, "spec17");
    VectorTrace t = w.make();
    EXPECT_GT(t.size(), 1000u);
}

TEST(Suites, EveryWorkloadGeneratesMemoryTraffic)
{
    for (const auto &w : allWorkloads()) {
        VectorTrace t = w.make();
        ASSERT_GT(t.size(), 1000u) << w.name;
        double frac = memFraction(t);
        EXPECT_GT(frac, 0.03) << w.name;
        EXPECT_LT(frac, 0.8) << w.name;
    }
}

TEST(SuitesDeath, UnknownNamesAreFatal)
{
    EXPECT_DEATH((void)findWorkload("no-such-trace"), "unknown workload");
    EXPECT_DEATH((void)suiteWorkloads("no-such-suite"), "unknown suite");
}

// --------------------------------------------------- suite shapes

TEST(SuiteShapes, CloudTracesCarryTriggerConflicts)
{
    // The cloud stand-ins must exhibit the Fig. 2 property: several
    // distinct second offsets behind one shared trigger offset.
    VectorTrace t = findWorkload("cassandra-p0c0").make();
    auto orders = pageAccessOrders(t);
    std::map<uint32_t, std::set<uint32_t>> seconds_by_trigger;
    for (const auto &[page, order] : orders)
        if (order.size() >= 4)
            seconds_by_trigger[order[0]].insert(order[1]);
    size_t conflicted = 0;
    for (const auto &[trig, seconds] : seconds_by_trigger)
        conflicted += seconds.size() >= 3;
    EXPECT_GE(conflicted, 3u);
}

TEST(SuiteShapes, QmmServerIsFrontendBound)
{
    VectorTrace t = findWorkload("srv.09").make();
    size_t stalls = 0;
    for (const auto &r : t.data())
        stalls += r.op == TraceOp::Stall;
    EXPECT_GT(stalls, t.size() / 500);
    EXPECT_LT(memFraction(t), 0.2);
}

TEST(SuiteShapes, SpecStreamsStartAtRegionHead)
{
    // bwaves-class traces must activate regions with blocks 0,1 in
    // order — the §III-C streaming-case trigger.
    VectorTrace t = findWorkload("bwaves").make();
    auto orders = pageAccessOrders(t);
    size_t head_started = 0, full = 0;
    for (const auto &[page, order] : orders) {
        if (order.size() < 8)
            continue;
        ++full;
        head_started += order[0] == 0 && order[1] == 1;
    }
    ASSERT_GT(full, 10u);
    EXPECT_GT(double(head_started) / full, 0.9);
}

TEST(SuiteShapes, PointerChaseTracesSerialize)
{
    VectorTrace t = findWorkload("mcf").make();
    size_t dep = 0, mem = 0;
    for (const auto &r : t.data()) {
        dep += r.op == TraceOp::DependentLoad;
        mem += r.op != TraceOp::NonMem && r.op != TraceOp::Stall;
    }
    EXPECT_GT(double(dep) / mem, 0.5);
}

TEST(SuiteShapes, GapAndLigraShareGraphStructure)
{
    // GAP stand-ins reuse the graph generators: traces must contain
    // both sequential (CSR) and scattered (gather) page behaviour.
    VectorTrace t = findWorkload("pr.twi").make();
    auto orders = pageAccessOrders(t);
    size_t seq = 0, scattered = 0;
    for (const auto &[page, order] : orders) {
        if (order.size() < 4)
            continue;
        bool asc = true;
        for (size_t i = 1; i < order.size(); ++i)
            asc &= order[i] > order[i - 1];
        (asc ? seq : scattered)++;
    }
    EXPECT_GT(seq, 5u);
    EXPECT_GT(scattered, 5u);
}

} // namespace
} // namespace gaze
