/**
 * @file
 * Prefetcher-registry tests: canonical spec normalization (idempotent,
 * invariant under option order / alias spelling / default elision, and
 * reflected one-to-one in the cell-key hashes the caches address by),
 * schema-validation fatalities for every registered scheme (unknown
 * options, malformed numbers, bad enum values, misshapen flags), and
 * campaign-level dedupe of equivalently spelled cells.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "campaign/spec.hh"
#include "common/types.hh"
#include "core/gaze.hh"
#include "harness/cell_key.hh"
#include "harness/runner.hh"
#include "prefetchers/factory.hh"
#include "prefetchers/registry.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

/**
 * A legal, non-default value for @p os, or "" when the option is a
 * flag (which is spelled bare). Keeps the generated-spec sweeps
 * schema-driven: a new option on any scheme is exercised without
 * touching this file.
 */
std::string
nonDefaultValue(const OptionSchema &os)
{
    if (os.type == OptionType::Flag)
        return "";
    if (os.type == OptionType::Enum) {
        for (const auto &v : os.enumValues)
            if (v != os.enumDefault)
                return v;
        ADD_FAILURE() << "enum option '" << os.name
                      << "' has no non-default value";
        return os.enumDefault;
    }
    for (uint64_t c :
         {uint64_t(256), uint64_t(512), os.min, os.max, os.min + 1}) {
        if (c < os.min || c > os.max || c == os.uintDefault)
            continue;
        if (os.pow2 && c != 0 && !isPowerOfTwo(c))
            continue;
        return std::to_string(c);
    }
    ADD_FAILURE() << "uint option '" << os.name
                  << "' has no usable non-default candidate";
    return std::to_string(os.uintDefault);
}

/**
 * A deliberately ugly spelling of @p d with every option set to a
 * non-default value: reverse declaration order, an alias instead of
 * the primary name when one exists, and leading zeros on numbers.
 */
std::string
uglySpelling(const PrefetcherDescriptor &d)
{
    std::string spec = d.aliases.empty() ? d.name : d.aliases.front();
    for (auto it = d.options.rbegin(); it != d.options.rend(); ++it) {
        std::string v = nonDefaultValue(*it);
        if (v.empty())
            spec += ":" + it->name;
        else if (it->type == OptionType::Uint)
            spec += ":" + it->name + "=0" + v; // leading zero
        else
            spec += ":" + it->name + "=" + v;
    }
    return spec;
}

std::string
cellTextFor(const std::string &spec)
{
    RunConfig cfg;
    cfg.warmupInstr = 1000;
    cfg.simInstr = 1000;
    std::vector<WorkloadDef> mix{findWorkload("mcf")};
    return canonicalCellText(cfg, pfSpecAt(spec, "l1"), mix);
}

// ---- enumeration ----------------------------------------------------

TEST(Registry, EnumeratesEverySchemeSorted)
{
    auto descs = PrefetcherRegistry::instance().all();
    std::vector<std::string> names;
    for (const auto *d : descs)
        names.push_back(d->name);

    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names, (std::vector<std::string>{
                         "bingo", "dspatch", "gaze", "ip_stride",
                         "ipcp", "pmp", "sms", "spp", "spp_ppf",
                         "vberti"}));

    // knownPrefetcherSpecs() is derived from the registry, never a
    // parallel hand-list.
    EXPECT_EQ(knownPrefetcherSpecs(), names);
}

TEST(Registry, AliasesResolveToTheSameDescriptor)
{
    const auto &reg = PrefetcherRegistry::instance();
    EXPECT_EQ(reg.find("berti"), reg.find("vberti"));
    ASSERT_NE(reg.find("berti"), nullptr);
    EXPECT_EQ(reg.find("warp_drive"), nullptr);
}

TEST(Registry, EverySchemeDeclaresDocAndBuilds)
{
    for (const auto *d : PrefetcherRegistry::instance().all()) {
        EXPECT_FALSE(d->doc.empty()) << d->name;
        auto pf = resolvePrefetcherSpec(d->name).build();
        ASSERT_NE(pf, nullptr) << d->name;
        EXPECT_GT(pf->storageBits(), 0u) << d->name;
        for (const auto &os : d->options)
            EXPECT_FALSE(os.doc.empty()) << d->name << ":" << os.name;
    }
}

// ---- canonicalization ----------------------------------------------

TEST(Canonical, PrimaryNamesAreFixpoints)
{
    for (const auto *d : PrefetcherRegistry::instance().all())
        EXPECT_EQ(canonicalPrefetcherSpec(d->name), d->name);
    EXPECT_EQ(canonicalPrefetcherSpec("none"), "none");
    EXPECT_EQ(canonicalPrefetcherSpec(""), "none");
}

TEST(Canonical, IdempotentOverGeneratedSpecsForEveryScheme)
{
    for (const auto *d : PrefetcherRegistry::instance().all()) {
        std::string ugly = uglySpelling(*d);
        std::string canon = canonicalPrefetcherSpec(ugly);
        EXPECT_EQ(canonicalPrefetcherSpec(canon), canon) << ugly;
        // Canonical text always leads with the primary name.
        EXPECT_EQ(canon.compare(0, d->name.size(), d->name), 0)
            << ugly << " -> " << canon;
        // Both spellings build the same configuration.
        auto from_ugly = makePrefetcher(ugly);
        auto from_canon = makePrefetcher(canon);
        ASSERT_NE(from_ugly, nullptr) << ugly;
        EXPECT_EQ(from_ugly->name(), from_canon->name()) << ugly;
        EXPECT_EQ(from_ugly->storageBits(), from_canon->storageBits())
            << ugly;
    }
}

TEST(Canonical, OptionOrderDoesNotMatter)
{
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:region=2048:n=1"),
              canonicalPrefetcherSpec("gaze:n=1:region=2048"));
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:n=1:region=2048"),
              "gaze:n=1:region=2048");
    EXPECT_EQ(canonicalPrefetcherSpec("sms:phtsets=64:scheme=offset"),
              canonicalPrefetcherSpec("sms:scheme=offset:phtsets=64"));
}

TEST(Canonical, AliasAndNumberSpellingsNormalize)
{
    EXPECT_EQ(canonicalPrefetcherSpec("berti"), "vberti");
    EXPECT_EQ(canonicalPrefetcherSpec("berti:oracle"),
              "vberti:oracle");
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:n=01"), "gaze:n=1");
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:region=0002048"),
              "gaze:region=2048");
}

TEST(Canonical, SchemaDefaultsAreElided)
{
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:region=4096"), "gaze");
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:n=2:region=4096"), "gaze");
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:phtsets=0:phtways=0"),
              "gaze");
    EXPECT_EQ(canonicalPrefetcherSpec("sms:scheme=pc+offset"), "sms");
    EXPECT_EQ(canonicalPrefetcherSpec("bingo:phtways=16:phtsets=1024"),
              "bingo");
}

TEST(Canonical, AutoGeometrySentinelStaysValueDriven)
{
    // "gaze:n=3" relies on the 0 = auto sentinel: canonical form
    // keeps no pht options, and the build picks the 256-entry
    // fully-associative table the paper uses for n >= 3.
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:n=3"), "gaze:n=3");
    auto pf = makePrefetcher(canonicalPrefetcherSpec("gaze:n=3"));
    ASSERT_NE(pf, nullptr);
    // An explicit geometry survives canonicalization (64 != auto 0).
    EXPECT_EQ(canonicalPrefetcherSpec("gaze:n=3:phtsets=64"),
              "gaze:n=3:phtsets=64");
}

TEST(Canonical, GazeAutoGeometryPinsTheBuiltTables)
{
    auto geom = [](const char *spec) {
        auto pf = makePrefetcher(spec);
        auto *g = dynamic_cast<GazePrefetcher *>(pf.get());
        EXPECT_NE(g, nullptr) << spec;
        return std::make_pair(g->config().phtSets,
                              g->config().phtWays);
    };
    // Auto geometry: the n >= 3 fully-associative table.
    EXPECT_EQ(geom("gaze:n=3"), std::make_pair(1u, 256u));
    EXPECT_EQ(geom("gaze"), std::make_pair(64u, 4u));
    // An explicit phtsets opts out of the fully-associative shape
    // (matching the pre-registry factory): 64x4, not 64x256.
    EXPECT_EQ(geom("gaze:n=3:phtsets=64"), std::make_pair(64u, 4u));
    // Explicit ways are honored (the old factory silently discarded
    // them for n >= 3).
    EXPECT_EQ(geom("gaze:n=3:phtways=8"), std::make_pair(1u, 8u));
    EXPECT_EQ(geom("gaze:phtsets=32"), std::make_pair(32u, 4u));
}

// ---- canonical identity flows into the cache keys -------------------

TEST(CanonicalCellKey, EquivalentSpellingsShareHash)
{
    // The ISSUE acceptance criterion, verbatim.
    std::string a = cellTextFor("gaze:region=2048:n=1");
    std::string b = cellTextFor("gaze:n=1:region=2048");
    EXPECT_EQ(a, b);
    EXPECT_EQ(cellHash(a), cellHash(b));

    EXPECT_EQ(cellTextFor("berti"), cellTextFor("vberti"));
    EXPECT_EQ(cellTextFor("gaze:region=4096"), cellTextFor("gaze"));
}

TEST(CanonicalCellKey, DifferentVariantsKeepDistinctHashes)
{
    EXPECT_NE(cellHash(cellTextFor("gaze")),
              cellHash(cellTextFor("gaze:n=1")));
    EXPECT_NE(cellHash(cellTextFor("vberti")),
              cellHash(cellTextFor("vberti:oracle")));
}

// ---- validation fatalities ------------------------------------------

using RegistryDeath = ::testing::Test;

TEST(RegistryDeath, UnknownOptionIsFatalForEveryScheme)
{
    for (const auto *d : PrefetcherRegistry::instance().all()) {
        EXPECT_DEATH(
            (void)makePrefetcher(d->name
                                 + ":definitely_not_an_option=1"),
            "unknown option")
            << d->name;
        EXPECT_DEATH((void)makePrefetcher(d->name + ":typo"),
                     "unknown option")
            << d->name;
    }
    // The exact silent-ignore bug from the ISSUE: this used to build
    // a default Gaze.
    EXPECT_DEATH((void)makePrefetcher("gaze:typo=1"),
                 "unknown option 'typo' in spec 'gaze:typo=1'");
}

TEST(RegistryDeath, MalformedNumbersAreFatal)
{
    // This used to parse as 0 via unchecked strtoull.
    EXPECT_DEATH((void)makePrefetcher("gaze:n=abc"),
                 "wants an unsigned integer, got 'abc' in spec "
                 "'gaze:n=abc'");
    EXPECT_DEATH((void)makePrefetcher("gaze:n="),
                 "wants an unsigned integer");
    EXPECT_DEATH((void)makePrefetcher("gaze:n"), "needs =N");
    EXPECT_DEATH((void)makePrefetcher("gaze:region=-4096"),
                 "wants an unsigned integer");
    EXPECT_DEATH((void)makePrefetcher("gaze:n=1e3"),
                 "wants an unsigned integer");
    EXPECT_DEATH(
        (void)makePrefetcher("gaze:n=99999999999999999999999"),
        "wants an unsigned integer");
}

TEST(RegistryDeath, OutOfRangeAndShapeViolationsAreFatal)
{
    EXPECT_DEATH((void)makePrefetcher("gaze:n=9"), "out of range");
    EXPECT_DEATH((void)makePrefetcher("gaze:n=0"), "out of range");
    EXPECT_DEATH((void)makePrefetcher("gaze:region=64"),
                 "out of range");
    EXPECT_DEATH((void)makePrefetcher("gaze:region=3000"),
                 "must be a power of two");
}

TEST(RegistryDeath, EnumViolationsAreFatalForEveryEnumOption)
{
    for (const auto *d : PrefetcherRegistry::instance().all())
        for (const auto &os : d->options) {
            if (os.type != OptionType::Enum)
                continue;
            EXPECT_DEATH((void)makePrefetcher(
                             d->name + ":" + os.name + "=bogus_value"),
                         "unknown value 'bogus_value'")
                << d->name << ":" << os.name;
            EXPECT_DEATH((void)makePrefetcher(d->name + ":" + os.name),
                         "needs =VALUE")
                << d->name << ":" << os.name;
        }
}

TEST(RegistryDeath, FlagsTakeNoValueForEveryFlagOption)
{
    for (const auto *d : PrefetcherRegistry::instance().all())
        for (const auto &os : d->options) {
            if (os.type != OptionType::Flag)
                continue;
            EXPECT_DEATH((void)makePrefetcher(d->name + ":" + os.name
                                              + "=1"),
                         "takes no value")
                << d->name << ":" << os.name;
        }
}

TEST(RegistryDeath, DuplicateOptionsAreFatal)
{
    EXPECT_DEATH((void)makePrefetcher("gaze:n=1:n=2"), "given twice");
    EXPECT_DEATH((void)makePrefetcher("gaze:nostream:nostream"),
                 "given twice");
    // A default-valued first occurrence is elided from the canonical
    // form but must still arm the duplicate check: these specs are
    // contradictions, not spellings of the second value.
    EXPECT_DEATH((void)makePrefetcher("gaze:n=2:n=4"), "given twice");
    EXPECT_DEATH(
        (void)makePrefetcher("sms:scheme=pc+offset:scheme=pc"),
        "given twice");
}

TEST(RegistryDeath, UnknownSchemeNamesTheSpecAndTheRegistry)
{
    EXPECT_DEATH((void)makePrefetcher("warp_drive:x=1"),
                 "unknown prefetcher 'warp_drive' in spec "
                 "'warp_drive:x=1'");
}

// ---- introspection --------------------------------------------------

TEST(Introspection, JsonRenderIsParseableAndComplete)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(renderPrefetcherList(true), &doc, &error))
        << error;

    const JsonValue *schemes = doc.find("prefetchers");
    ASSERT_NE(schemes, nullptr);
    auto descs = PrefetcherRegistry::instance().all();
    ASSERT_EQ(schemes->items().size(), descs.size());

    for (size_t i = 0; i < descs.size(); ++i) {
        const JsonValue &s = schemes->items()[i];
        const JsonValue *name = s.find("name");
        ASSERT_NE(name, nullptr);
        EXPECT_EQ(name->asString(), descs[i]->name);
        const JsonValue *canonical = s.find("canonical");
        ASSERT_NE(canonical, nullptr);
        EXPECT_EQ(canonical->asString(), descs[i]->name);
        const JsonValue *storage = s.find("storage_kib");
        ASSERT_NE(storage, nullptr);
        EXPECT_GT(storage->asNumber(), 0.0);
        const JsonValue *options = s.find("options");
        ASSERT_NE(options, nullptr);
        EXPECT_EQ(options->items().size(), descs[i]->options.size());
    }
}

TEST(Introspection, TextRenderNamesEverySchemeAndOption)
{
    std::string text = renderPrefetcherList(false);
    for (const auto *d : PrefetcherRegistry::instance().all()) {
        EXPECT_NE(text.find(d->name), std::string::npos) << d->name;
        for (const auto &os : d->options)
            EXPECT_NE(text.find(os.name), std::string::npos)
                << d->name << ":" << os.name;
        for (const auto &a : d->aliases)
            EXPECT_NE(text.find("alias: " + a), std::string::npos);
    }
}

// ---- campaign-level spelling invariance -----------------------------

JsonValue
parseDoc(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, &doc, &error)) << error;
    return doc;
}

TEST(CampaignCanonical, EquivalentSpellingsDedupeToOneCell)
{
    CampaignSpec spec = parseCampaignSpec(parseDoc(
        R"({"name":"dedupe",)"
        R"("prefetchers":["gaze:n=1:region=2048",)"
        R"("gaze:region=2048:n=1","berti"],)"
        R"("workloads":["mcf"],"warmup":1000,"sim":1000})"));

    // Axis canonicalized and deduped, first spelling wins the slot.
    EXPECT_EQ(spec.prefetchers,
              (std::vector<std::string>{"gaze:n=1:region=2048",
                                        "vberti"}));

    Campaign c = expandCampaign(spec);
    ASSERT_EQ(c.cells.size(), 2u);
    EXPECT_EQ(c.baselines.size(), 1u);
    EXPECT_EQ(c.cells[0].pf.l1, "gaze:n=1:region=2048");
    EXPECT_EQ(c.cells[1].pf.l1, "vberti");
    EXPECT_NE(c.cells[0].hash, c.cells[1].hash);
}

TEST(CampaignCanonical, RespelledSpecExpandsToIdenticalCells)
{
    const char *a_text =
        R"({"name":"x","prefetchers":["gaze:region=2048:n=1"],)"
        R"("workloads":["mcf"],"warmup":1000,"sim":1000})";
    const char *b_text =
        R"({"name":"x","prefetchers":["gaze:n=1:region=0002048"],)"
        R"("workloads":["mcf"],"warmup":1000,"sim":1000})";

    Campaign a = expandCampaign(parseCampaignSpec(parseDoc(a_text)));
    Campaign b = expandCampaign(parseCampaignSpec(parseDoc(b_text)));
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].key, b.cells[i].key);
        EXPECT_EQ(a.cells[i].hash, b.cells[i].hash);
    }
}

} // namespace
} // namespace gaze
