/**
 * @file
 * Dedicated ThreadPool coverage: submission-order execution on one
 * worker, full parallel drain, exception capture + rethrow from
 * wait() (with the pool staying usable afterwards), and destruction
 * with jobs still queued — which must run them, not drop them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/thread_pool.hh"

namespace gaze
{
namespace
{

TEST(ThreadPool, SingleWorkerRunsJobsInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(ThreadPool, ParallelWorkersDrainEverything)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.submit([&] {
        ++ran;
        throw std::runtime_error("job one failed");
    });
    // Later jobs still run: one failure fails the run but must not
    // starve the queue (cells are independent).
    pool.submit([&] { ++ran; });
    pool.submit([&] {
        ++ran;
        throw std::runtime_error("job three failed");
    });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job one failed");
    }
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, PoolStaysUsableAfterException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error was consumed by the previous wait().
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DestructorRunsQueuedJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        // The first job blocks the lone worker long enough for the
        // rest to be observed still queued at destruction time.
        pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            count.fetch_add(1);
        });
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): the destructor must drain the queue.
    }
    EXPECT_EQ(count.load(), 11);
}

} // namespace
} // namespace gaze
