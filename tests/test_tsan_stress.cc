/**
 * @file
 * Concurrency stress tests, written to run race-clean under
 * ThreadSanitizer (scripts/check.sh --sanitize=thread, which runs
 * exactly the "concurrency"-labeled CTest cases). They hammer the
 * three pieces of shared-state machinery every parallel run leans
 * on — the ThreadPool, the promise/shared_future BaselineCache, and
 * the campaign ResultCache with multiple in-process shards
 * publishing into one directory — far harder than the functional
 * tests do, so a data race introduced into any of them is caught
 * here *before* worker-thread cores (ROADMAP item 2) multiply the
 * threading surface.
 *
 * The tests also run in plain builds (tier1): the assertions hold
 * everywhere, TSan just adds the race verdict.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/engine.hh"
#include "campaign/json.hh"
#include "campaign/report.hh"
#include "campaign/spec.hh"
#include "driver/thread_pool.hh"
#include "harness/runner.hh"

namespace gaze
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---- ThreadPool ------------------------------------------------------

TEST(TsanThreadPool, ManyProducersManyRounds)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};

    // Several rounds of concurrent submitters: submit() racing
    // submit() and racing the workers draining the queue is exactly
    // the surface a lost notify or unlocked queue touch would break.
    for (int round = 0; round < 8; ++round) {
        std::vector<std::thread> producers;
        producers.reserve(4);
        for (int p = 0; p < 4; ++p) {
            producers.emplace_back([&pool, &ran] {
                for (int j = 0; j < 64; ++j)
                    pool.submit([&ran] {
                        ran.fetch_add(1, std::memory_order_relaxed);
                    });
            });
        }
        for (auto &t : producers)
            t.join();
        pool.wait();
    }
    EXPECT_EQ(ran.load(), 8u * 4u * 64u);
}

TEST(TsanThreadPool, ExceptionUnderLoadReachesWait)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};
    for (int j = 0; j < 128; ++j) {
        pool.submit([&ran, j] {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (j % 37 == 5)
                throw std::runtime_error("stress failure");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 128u);
    // The pool must stay usable after a rethrow.
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(ran.load(), 129u);
}

// ---- BaselineCache ---------------------------------------------------

TEST(TsanBaselineCache, EachKeyComputedOnceAllWaitersAgree)
{
    BaselineCache cache;
    constexpr int kKeys = 6;
    constexpr int kThreads = 8;
    std::atomic<uint32_t> computes[kKeys] = {};

    auto worker = [&](int tid) {
        // Every thread touches every key, in a thread-specific
        // order, so first-requester ownership and waiter handoff
        // both happen many times.
        for (int i = 0; i < kKeys; ++i) {
            int k = (i + tid) % kKeys;
            const RunResult &r = cache.getOrCompute(
                "key" + std::to_string(k), [&, k] {
                    computes[k].fetch_add(1);
                    RunResult result;
                    result.instructionsRetired = 1000u + uint64_t(k);
                    return result;
                });
            EXPECT_EQ(r.instructionsRetired, 1000u + uint64_t(k));
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();

    for (int k = 0; k < kKeys; ++k)
        EXPECT_EQ(computes[k].load(), 1u) << "key" << k;
    EXPECT_EQ(cache.size(), size_t(kKeys));
}

TEST(TsanBaselineCache, ComputeFailurePropagatesToEveryWaiter)
{
    BaselineCache cache;
    std::atomic<uint32_t> threw{0};
    auto worker = [&] {
        try {
            cache.getOrCompute("poison", []() -> RunResult {
                throw std::runtime_error("baseline failed");
            });
        } catch (const std::runtime_error &) {
            threw.fetch_add(1);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(6);
    for (int t = 0; t < 6; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(threw.load(), 6u);
}

// ---- campaign shards sharing one cache directory ---------------------

Campaign
stressCampaign()
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(
        R"({"name":"tsan","prefetchers":["ip_stride"],)"
        R"("workloads":["leslie3d","mcf"],)"
        R"("warmup":500,"sim":2000})",
        &doc, &error))
        << error;
    return expandCampaign(parseCampaignSpec(doc));
}

TEST(TsanCampaignShards, TwoInProcessShardsOneCacheDir)
{
    Campaign campaign = stressCampaign();

    // Reference: unsharded, single-threaded-pool run.
    ResultCache whole(freshDir("tsan_whole"));
    CampaignRunOptions base;
    base.threads = 2;
    base.verbose = false;
    runCampaign(campaign, whole, base);
    CampaignReport expected = buildReport(campaign, whole, nullptr);

    // Two shards of the same campaign, each on its own pool, racing
    // into ONE cache directory from one process: store() tempfile
    // naming, atomic rename publication and lookup-vs-publish are
    // all exercised concurrently.
    ResultCache shared(freshDir("tsan_sharded"));
    CampaignRunStats stats[2];
    std::vector<std::thread> shards;
    shards.reserve(2);
    for (uint32_t s = 0; s < 2; ++s) {
        shards.emplace_back([&campaign, &shared, &stats, s] {
            CampaignRunOptions opt;
            opt.shardIndex = s;
            opt.shardCount = 2;
            opt.threads = 2;
            opt.verbose = false;
            stats[s] = runCampaign(campaign, shared, opt);
        });
    }
    for (auto &t : shards)
        t.join();

    EXPECT_EQ(stats[0].executed + stats[1].executed, 4u);
    CampaignReport merged = buildReport(campaign, shared, nullptr);
    EXPECT_EQ(merged.json, expected.json);
    EXPECT_EQ(merged.csv, expected.csv);
}

TEST(TsanCampaignShards, DuplicateFullRunsRaceOnEveryCell)
{
    Campaign campaign = stressCampaign();

    // Harsher than disjoint shards: two full unsharded runs race on
    // *every* cell, so the same hash is written twice concurrently
    // (last rename wins whole) and cache hits race live publishes.
    ResultCache shared(freshDir("tsan_duplicate"));
    std::vector<std::thread> runs;
    runs.reserve(2);
    for (int i = 0; i < 2; ++i) {
        runs.emplace_back([&campaign, &shared] {
            CampaignRunOptions opt;
            opt.threads = 2;
            opt.verbose = false;
            runCampaign(campaign, shared, opt);
        });
    }
    for (auto &t : runs)
        t.join();

    CampaignReport merged = buildReport(campaign, shared, nullptr);
    CampaignCacheStatus status = campaignStatus(campaign, shared);
    EXPECT_EQ(status.cached, 4u);
    EXPECT_EQ(status.missing, 0u);
    EXPECT_FALSE(merged.json.empty());
}

} // namespace
} // namespace gaze
