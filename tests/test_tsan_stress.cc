/**
 * @file
 * Concurrency stress tests, written to run race-clean under
 * ThreadSanitizer (scripts/check.sh --sanitize=thread, which runs
 * exactly the "concurrency"-labeled CTest cases). They hammer the
 * three pieces of shared-state machinery every parallel run leans
 * on — the ThreadPool, the promise/shared_future BaselineCache, and
 * the campaign ResultCache with multiple in-process shards
 * publishing into one directory — far harder than the functional
 * tests do, so a data race introduced into any of them is caught
 * here before it corrupts a simulation — plus the SliceTeam fork/join
 * barrier behind the threaded engine (--sim-threads), stressed with
 * maximally skewed slice runtimes, a prefetcher-heavy shared-LLC run,
 * and exceptions thrown from worker threads.
 *
 * The tests also run in plain builds (tier1): the assertions hold
 * everywhere, TSan just adds the race verdict.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/engine.hh"
#include "campaign/json.hh"
#include "campaign/report.hh"
#include "campaign/spec.hh"
#include "driver/thread_pool.hh"
#include "harness/runner.hh"
#include "sim/threaded.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---- ThreadPool ------------------------------------------------------

TEST(TsanThreadPool, ManyProducersManyRounds)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};

    // Several rounds of concurrent submitters: submit() racing
    // submit() and racing the workers draining the queue is exactly
    // the surface a lost notify or unlocked queue touch would break.
    for (int round = 0; round < 8; ++round) {
        std::vector<std::thread> producers;
        producers.reserve(4);
        for (int p = 0; p < 4; ++p) {
            producers.emplace_back([&pool, &ran] {
                for (int j = 0; j < 64; ++j)
                    pool.submit([&ran] {
                        ran.fetch_add(1, std::memory_order_relaxed);
                    });
            });
        }
        for (auto &t : producers)
            t.join();
        pool.wait();
    }
    EXPECT_EQ(ran.load(), 8u * 4u * 64u);
}

TEST(TsanThreadPool, ExceptionUnderLoadReachesWait)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};
    for (int j = 0; j < 128; ++j) {
        pool.submit([&ran, j] {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (j % 37 == 5)
                throw std::runtime_error("stress failure");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 128u);
    // The pool must stay usable after a rethrow.
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(ran.load(), 129u);
}

// ---- BaselineCache ---------------------------------------------------

TEST(TsanBaselineCache, EachKeyComputedOnceAllWaitersAgree)
{
    BaselineCache cache;
    constexpr int kKeys = 6;
    constexpr int kThreads = 8;
    std::atomic<uint32_t> computes[kKeys] = {};

    auto worker = [&](int tid) {
        // Every thread touches every key, in a thread-specific
        // order, so first-requester ownership and waiter handoff
        // both happen many times.
        for (int i = 0; i < kKeys; ++i) {
            int k = (i + tid) % kKeys;
            const RunResult &r = cache.getOrCompute(
                "key" + std::to_string(k), [&, k] {
                    computes[k].fetch_add(1);
                    RunResult result;
                    result.instructionsRetired = 1000u + uint64_t(k);
                    return result;
                });
            EXPECT_EQ(r.instructionsRetired, 1000u + uint64_t(k));
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();

    for (int k = 0; k < kKeys; ++k)
        EXPECT_EQ(computes[k].load(), 1u) << "key" << k;
    EXPECT_EQ(cache.size(), size_t(kKeys));
}

TEST(TsanBaselineCache, ComputeFailurePropagatesToEveryWaiter)
{
    BaselineCache cache;
    std::atomic<uint32_t> threw{0};
    auto worker = [&] {
        try {
            cache.getOrCompute("poison", []() -> RunResult {
                throw std::runtime_error("baseline failed");
            });
        } catch (const std::runtime_error &) {
            threw.fetch_add(1);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(6);
    for (int t = 0; t < 6; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(threw.load(), 6u);
}

TEST(TsanBaselineCache, LruEvictionNeverCorruptsResults)
{
    // Capacity 2, 6 keys, 8 threads: evictions churn constantly.
    // Recomputing an evicted key is fine — compute-once holds per
    // residency, not per eternity — but a torn or cross-key result
    // never is, and in-flight entries must never be evicted out from
    // under their waiters.
    BaselineCache cache(2);
    constexpr int kKeys = 6;
    constexpr int kThreads = 8;
    auto worker = [&](int tid) {
        for (int round = 0; round < 4; ++round) {
            for (int i = 0; i < kKeys; ++i) {
                int k = (i + tid) % kKeys;
                const RunResult &r = cache.getOrCompute(
                    "key" + std::to_string(k), [k] {
                        RunResult result;
                        result.instructionsRetired =
                            1000u + uint64_t(k);
                        return result;
                    });
                EXPECT_EQ(r.instructionsRetired, 1000u + uint64_t(k));
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();
    EXPECT_LE(cache.size(), 2u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.capacity(), 2u);
}

TEST(TsanBaselineCache, LruEvictsLeastRecentlyUsedDeterministically)
{
    BaselineCache cache(2);
    int builds[3] = {0, 0, 0};
    auto make = [&](int k) {
        return cache
            .getOrCompute("key" + std::to_string(k),
                          [&builds, k] {
                              ++builds[k];
                              RunResult result;
                              result.instructionsRetired = uint64_t(k);
                              return result;
                          })
            .instructionsRetired;
    };
    EXPECT_EQ(make(0), 0u);
    EXPECT_EQ(make(1), 1u);
    EXPECT_EQ(make(0), 0u); // touch: key0 becomes most-recent
    EXPECT_EQ(make(2), 2u); // capacity 2: evicts key1, not key0
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(make(0), 0u);
    EXPECT_EQ(builds[0], 1); // survived as the recently-used entry
    EXPECT_EQ(make(1), 1u);
    EXPECT_EQ(builds[1], 2); // evicted, so this ask recomputed
}

TEST(TsanBaselineCache, FailurePropagationSurvivesEviction)
{
    BaselineCache cache(1);
    std::atomic<uint32_t> poisonComputes{0};
    auto poison = [&]() -> RunResult {
        poisonComputes.fetch_add(1);
        throw std::runtime_error("baseline failed");
    };
    // The memoized exception replays without recomputing...
    EXPECT_THROW(cache.getOrCompute("poison", poison),
                 std::runtime_error);
    EXPECT_THROW(cache.getOrCompute("poison", poison),
                 std::runtime_error);
    EXPECT_EQ(poisonComputes.load(), 1u);
    // ...ages out like any result (failed computes are evictable)...
    const RunResult &good = cache.getOrCompute("good", [] {
        RunResult result;
        result.instructionsRetired = 7;
        return result;
    });
    EXPECT_EQ(good.instructionsRetired, 7u);
    EXPECT_GE(cache.evictions(), 1u);
    // ...after which the key recomputes fresh instead of answering
    // from a ghost of the evicted failure.
    EXPECT_THROW(cache.getOrCompute("poison", poison),
                 std::runtime_error);
    EXPECT_EQ(poisonComputes.load(), 2u);
    EXPECT_LE(cache.size(), 1u);
}

// ---- campaign shards sharing one cache directory ---------------------

Campaign
stressCampaign()
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(
        R"({"name":"tsan","prefetchers":["ip_stride"],)"
        R"("workloads":["leslie3d","mcf"],)"
        R"("warmup":500,"sim":2000})",
        &doc, &error))
        << error;
    return expandCampaign(parseCampaignSpec(doc));
}

TEST(TsanCampaignShards, TwoInProcessShardsOneCacheDir)
{
    Campaign campaign = stressCampaign();

    // Reference: unsharded, single-threaded-pool run.
    ResultCache whole(freshDir("tsan_whole"));
    CampaignRunOptions base;
    base.threads = 2;
    base.verbose = false;
    runCampaign(campaign, whole, base);
    CampaignReport expected = buildReport(campaign, whole, nullptr);

    // Two shards of the same campaign, each on its own pool, racing
    // into ONE cache directory from one process: store() tempfile
    // naming, atomic rename publication and lookup-vs-publish are
    // all exercised concurrently.
    ResultCache shared(freshDir("tsan_sharded"));
    CampaignRunStats stats[2];
    std::vector<std::thread> shards;
    shards.reserve(2);
    for (uint32_t s = 0; s < 2; ++s) {
        shards.emplace_back([&campaign, &shared, &stats, s] {
            CampaignRunOptions opt;
            opt.shardIndex = s;
            opt.shardCount = 2;
            opt.threads = 2;
            opt.verbose = false;
            stats[s] = runCampaign(campaign, shared, opt);
        });
    }
    for (auto &t : shards)
        t.join();

    EXPECT_EQ(stats[0].executed + stats[1].executed, 4u);
    CampaignReport merged = buildReport(campaign, shared, nullptr);
    EXPECT_EQ(merged.json, expected.json);
    EXPECT_EQ(merged.csv, expected.csv);
}

TEST(TsanCampaignShards, DuplicateFullRunsRaceOnEveryCell)
{
    Campaign campaign = stressCampaign();

    // Harsher than disjoint shards: two full unsharded runs race on
    // *every* cell, so the same hash is written twice concurrently
    // (last rename wins whole) and cache hits race live publishes.
    ResultCache shared(freshDir("tsan_duplicate"));
    std::vector<std::thread> runs;
    runs.reserve(2);
    for (int i = 0; i < 2; ++i) {
        runs.emplace_back([&campaign, &shared] {
            CampaignRunOptions opt;
            opt.threads = 2;
            opt.verbose = false;
            runCampaign(campaign, shared, opt);
        });
    }
    for (auto &t : runs)
        t.join();

    CampaignReport merged = buildReport(campaign, shared, nullptr);
    CampaignCacheStatus status = campaignStatus(campaign, shared);
    EXPECT_EQ(status.cached, 4u);
    EXPECT_EQ(status.missing, 0u);
    EXPECT_FALSE(merged.json.empty());
}

// ---- SliceTeam (the threaded engine's fork/join barrier) -------------

TEST(TsanSliceTeam, MaxSkewSliceRuntimesManyCycles)
{
    // One slice per cycle does ~1000x the work of the others, and
    // which one rotates every cycle — the worst case for the barrier:
    // fast members hammer the arrival counter while the skewed one
    // still runs, and the coordinator joins against a different
    // laggard each cycle. Slice-local counters are plain (non-atomic)
    // on purpose: the go-token/arrival protocol must order them.
    constexpr uint32_t kSlices = 8;
    constexpr uint32_t kCycles = 2000;
    SliceTeam team(4);
    uint64_t perSlice[kSlices] = {};
    uint32_t cycle = 0;

    team.beginRun([&](uint32_t s) {
        uint64_t spins = (s == cycle % kSlices) ? 1000 : 1;
        volatile uint64_t sink = 0;
        for (uint64_t i = 0; i < spins; ++i)
            sink = sink + i;
        perSlice[s] += 1;
    });
    for (cycle = 0; cycle < kCycles; ++cycle)
        team.runCycle(kSlices);
    team.endRun();

    for (uint32_t s = 0; s < kSlices; ++s)
        EXPECT_EQ(perSlice[s], kCycles) << "slice " << s;

    // Re-arm the same team for a second run: park/unpark must hand
    // over cleanly, including to workers that never saw a bump yet.
    team.beginRun([&](uint32_t s) { perSlice[s] += 1; });
    team.runCycle(kSlices);
    team.endRun();
    for (uint32_t s = 0; s < kSlices; ++s)
        EXPECT_EQ(perSlice[s], kCycles + 1) << "slice " << s;
}

TEST(TsanSliceTeam, PrefetcherHeavyLlcContentionMatchesSingleThread)
{
    // End-to-end: a 4-core mix with prefetchers at both L1 and L2
    // pushes the most concurrent traffic through the staged LLC
    // portals, on real simulator state. The assertion is the
    // differential contract (bit-identical to --sim-threads=1); TSan
    // adds the race verdict over the whole engine.
    std::vector<WorkloadDef> mix = {
        findWorkload("fotonik3d_s"), findWorkload("leslie3d"),
        findWorkload("mcf"), findWorkload("canneal")};
    PfSpec pf;
    pf.l1 = "gaze";
    pf.l2 = "ip_stride";
    RunConfig cfg;
    cfg.warmupInstr = 500;
    cfg.simInstr = 2000;
    cfg.system.engine = EngineKind::Event;

    cfg.system.simThreads = 1;
    RunResult one = Runner(cfg).runMix(mix, pf);
    cfg.system.simThreads = 4;
    RunResult four = Runner(cfg).runMix(mix, pf);

    EXPECT_EQ(one.ipc(), four.ipc());
    ASSERT_EQ(one.cores.size(), four.cores.size());
    for (size_t c = 0; c < one.cores.size(); ++c) {
        EXPECT_EQ(one.cores[c].instructions, four.cores[c].instructions);
        EXPECT_EQ(one.cores[c].cycles, four.cores[c].cycles);
    }
    EXPECT_EQ(one.llc.loadMiss, four.llc.loadMiss);
    EXPECT_EQ(one.llc.pfIssued, four.llc.pfIssued);
    EXPECT_EQ(one.dram.reads, four.dram.reads);
    EXPECT_EQ(one.engine.cyclesTotal, four.engine.cyclesTotal);
}

TEST(TsanSliceTeam, ExceptionInWorkerTeardown)
{
    // Slice 1 runs on worker member 1 (round-robin over 4 members):
    // its exception must cross the barrier, surface in runCycle on
    // the coordinating thread, leave the team usable, and tear down
    // cleanly afterwards. With two slices throwing at once the lowest
    // member index wins, deterministically.
    SliceTeam team(4);
    std::atomic<uint32_t> ran{0};
    bool throwS1 = false, throwS2 = false;

    team.beginRun([&](uint32_t s) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (s == 1 && throwS1)
            throw std::runtime_error("slice1");
        if (s == 2 && throwS2)
            throw std::runtime_error("slice2");
    });

    team.runCycle(8); // healthy cycle first
    EXPECT_EQ(ran.load(), 8u);

    throwS1 = throwS2 = true;
    try {
        team.runCycle(8);
        FAIL() << "runCycle must rethrow a slice exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "slice1") << "lowest member must win";
    }

    // The team stays usable: a clean cycle after the throw, then a
    // second throwing cycle straight into endRun + destruction (the
    // teardown path with error slots freshly cleared).
    throwS1 = throwS2 = false;
    team.runCycle(8);
    throwS2 = true;
    EXPECT_THROW(team.runCycle(8), std::runtime_error);
    team.endRun();
}

} // namespace
} // namespace gaze
