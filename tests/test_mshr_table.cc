/**
 * @file
 * Property tests for MshrTable, the flat open-addressed map behind
 * the cache MSHRs and SPP-PPF's in-flight records. The table's whole
 * value is that it behaves exactly like the std::unordered_map it
 * replaced (minus iteration order, which it *improves* to insertion
 * FIFO), so the core test is differential: a long randomized
 * insert/find/erase churn checked op-by-op against a reference model,
 * across capacities and under sustained full pressure, with the FIFO
 * walk re-validated against a recorded insertion order. Backward-shift
 * deletion is the delicate part — small capacities and a dense key
 * space keep probe chains colliding so slot moves happen constantly.
 *
 * The waiter-chain test reproduces the cache's usage pattern: entries
 * carry intrusive RequestPool chains, slots move under deletion, and
 * the pool's outstanding count must stay balanced and reach zero on
 * drain (the same invariant System's destructor asserts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/mshr_table.hh"
#include "sim/request_pool.hh"

namespace
{

using namespace gaze;

Addr
key(uint64_t n)
{
    return Addr(n << 6); // block-aligned, like every real caller
}

TEST(MshrTableProperty, DifferentialVsUnorderedMapReference)
{
    for (uint32_t cap : {1u, 2u, 3u, 8u, 16u, 64u}) {
        std::mt19937_64 rng(0xC0FFEE ^ cap);
        MshrTable<uint64_t> table(cap);
        std::unordered_map<Addr, uint64_t> ref;
        std::vector<Addr> order; // live keys, insertion order

        // Key space ~4x capacity: plenty of collisions, plenty of
        // reuse of recently erased keys (the backward-shift stress).
        auto randKey = [&] { return key(rng() % (cap * 4 + 4)); };

        for (int op = 0; op < 20000; ++op) {
            Addr k = randKey();
            switch (rng() % 3) {
              case 0:
                if (!ref.count(k) && ref.size() < cap) {
                    uint64_t v = rng();
                    table.insert(k) = v;
                    ref[k] = v;
                    order.push_back(k);
                }
                break;
              case 1: {
                auto it = ref.find(k);
                uint64_t *got = table.find(k);
                ASSERT_EQ(got != nullptr, it != ref.end());
                if (got)
                    ASSERT_EQ(*got, it->second);
                break;
              }
              case 2: {
                bool erased = table.erase(k);
                ASSERT_EQ(erased, ref.erase(k) == 1);
                if (erased)
                    order.erase(
                        std::find(order.begin(), order.end(), k));
                break;
              }
            }
            ASSERT_EQ(table.size(), ref.size());
            ASSERT_EQ(table.full(), ref.size() >= cap);
            if (op % 512 == 0) {
                std::vector<Addr> walked;
                table.forEachInOrder([&](Addr a, uint64_t &v) {
                    ASSERT_EQ(v, ref.at(a));
                    walked.push_back(a);
                });
                ASSERT_EQ(walked, order)
                    << "FIFO walk diverged from insertion order "
                       "(capacity " << cap << ", op " << op << ")";
            }
        }
    }
}

TEST(MshrTableProperty, FullPressureChurn)
{
    // Steady state at exactly full() — the regime a saturated cache
    // lives in: every insert is paired with an erase, every probe
    // chain is as long as this load factor (0.5 by construction)
    // allows, and the FIFO head keeps changing.
    constexpr uint32_t cap = 16;
    std::mt19937_64 rng(2025);
    MshrTable<uint64_t> table(cap);
    std::unordered_map<Addr, uint64_t> ref;
    std::vector<Addr> order;

    uint64_t next = 0;
    while (!table.full()) {
        table.insert(key(next)) = next;
        ref[key(next)] = next;
        order.push_back(key(next));
        ++next;
    }
    for (int op = 0; op < 50000; ++op) {
        // Erase a random *live* key (bias toward the oldest third so
        // the order list head churns), then insert a fresh one.
        size_t idx = rng() % 2 ? rng() % order.size()
                               : rng() % (order.size() / 3 + 1);
        Addr victim = order[idx];
        ASSERT_TRUE(table.erase(victim));
        ref.erase(victim);
        order.erase(order.begin() + idx);

        table.insert(key(next)) = next;
        ref[key(next)] = next;
        order.push_back(key(next));
        ++next;

        ASSERT_TRUE(table.full());
        ASSERT_EQ(table.size(), cap);
        if (op % 1024 == 0) {
            std::vector<Addr> walked;
            table.forEachInOrder([&](Addr a, uint64_t &v) {
                ASSERT_EQ(v, ref.at(a));
                walked.push_back(a);
            });
            ASSERT_EQ(walked, order);
        }
    }
}

TEST(MshrTableProperty, CapacityExhaustionAndRecovery)
{
    MshrTable<int> table(4);
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_FALSE(table.full());
        table.insert(key(i)) = int(i);
    }
    EXPECT_TRUE(table.full());
    EXPECT_EQ(table.size(), 4u);

    // A full table still answers lookups for absent keys correctly
    // (the probe terminates on an empty slot; load factor <= 0.5
    // guarantees one exists).
    EXPECT_EQ(table.find(key(99)), nullptr);

    EXPECT_TRUE(table.erase(key(2)));
    EXPECT_FALSE(table.full());
    table.insert(key(100)) = 100;
    EXPECT_TRUE(table.full());
    ASSERT_NE(table.find(key(100)), nullptr);
    EXPECT_EQ(*table.find(key(100)), 100);
}

TEST(MshrTableDeath, GeometryAndOverflowAssert)
{
    EXPECT_DEATH(MshrTable<int>(0), "at least one MSHR");

    MshrTable<int> table(2);
    table.insert(key(1)) = 1;
    EXPECT_DEATH(table.insert(key(1)), "duplicate MSHR insert");
    table.insert(key(2)) = 2;
    EXPECT_DEATH(table.insert(key(3)), "full MSHR table");
}

TEST(MshrTableProperty, WaiterChainBalanceAcrossChurn)
{
    // The cache's usage pattern: each entry owns an intrusive pooled
    // waiter chain; backward-shift slot moves must carry the chain
    // pointers intact (the nodes themselves are heap-stable), and
    // every alloc must be matched by a release by the time the table
    // drains — the invariant System's destructor asserts at teardown.
    struct Entry
    {
        RequestPool::Node *head = nullptr;
        RequestPool::Node *tail = nullptr;
        uint32_t waiters = 0;
    };

    RequestPool pool;
    MshrTable<Entry> table(8);
    std::mt19937_64 rng(7);
    size_t liveWaiters = 0;

    auto retire = [&](Addr k, Entry &e) {
        // Chain integrity: every node must still belong to this key
        // and the length must match, no matter how many slot moves
        // the entry survived.
        uint32_t n = 0;
        for (auto *node = e.head; node; node = node->next) {
            ASSERT_EQ(node->req.paddr, k);
            ++n;
        }
        ASSERT_EQ(n, e.waiters);
        pool.releaseChain(e.head);
        liveWaiters -= e.waiters;
        ASSERT_TRUE(table.erase(k));
    };

    for (int round = 0; round < 20000; ++round) {
        Addr k = key(rng() % 24);
        if (Entry *e = table.find(k)) {
            if (rng() % 4 == 0) {
                retire(k, *e);
            } else {
                Request r;
                r.paddr = k;
                auto *node = pool.alloc(r);
                if (e->tail)
                    e->tail->next = node;
                else
                    e->head = node;
                e->tail = node;
                ++e->waiters;
                ++liveWaiters;
            }
        } else if (!table.full()) {
            table.insert(k);
        } else {
            // Saturated: retire the FIFO head, like retry-precedence
            // order would.
            Addr oldest = 0;
            table.forEachInOrder([&](Addr a, Entry &) {
                oldest = a;
                return false;
            });
            Entry *head = table.find(oldest);
            ASSERT_NE(head, nullptr);
            retire(oldest, *head);
        }
        ASSERT_EQ(pool.outstanding(), liveWaiters);
    }

    table.forEachInOrder([&](Addr k2, Entry &e) {
        uint32_t n = 0;
        for (auto *node = e.head; node; node = node->next) {
            ASSERT_EQ(node->req.paddr, k2);
            ++n;
        }
        ASSERT_EQ(n, e.waiters);
        pool.releaseChain(e.head);
    });
    ASSERT_EQ(pool.outstanding(), 0u)
        << "waiter chain leaked across table churn";
}

} // namespace
