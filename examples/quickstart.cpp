/**
 * @file
 * Quickstart: build a single-core Table-II system, run one workload
 * with and without the Gaze prefetcher, and print the headline
 * metrics. This is the smallest end-to-end use of the public API:
 *
 *   Runner (harness) -> System (simulator) -> GazePrefetcher (core).
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/suites.hh"

int
main()
{
    using namespace gaze;

    // 1. Pick a workload from the suite registry. fotonik3d_s is the
    //    paper's Fig. 2 example: recurring spatial footprints whose
    //    internal access order identifies the pattern.
    const WorkloadDef &workload = findWorkload("fotonik3d_s");

    // 2. A Runner owns the system configuration and the no-prefetch
    //    baselines used by speedup/coverage.
    RunConfig cfg; // Table II defaults: 4-wide OoO, 48K/512K/2M, DDR4
    Runner runner(cfg);

    // 3. Evaluate prefetchers by factory spec string.
    TextTable table({"prefetcher", "speedup", "accuracy", "coverage",
                     "late"});
    for (const char *spec : {"ip_stride", "pmp", "vberti", "gaze"}) {
        PrefetchMetrics m = runner.evaluate(workload, PfSpec{spec});
        table.addRow({spec, TextTable::fmt(m.speedup),
                      TextTable::pct(m.accuracy),
                      TextTable::pct(m.coverage),
                      TextTable::pct(m.lateFraction)});
    }

    std::printf("quickstart: %s (%s suite)\n\n%s",
                workload.name.c_str(), workload.suite.c_str(),
                table.toString().c_str());
    return 0;
}
