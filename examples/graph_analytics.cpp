/**
 * @file
 * Graph-analytics example: the §III-C motivating scenario end to end.
 *
 * Ligra-style BFS interleaves two access patterns from nearby code:
 * dense streaming over the frontier array and sparse gathers over the
 * vertex data. Regions of both kinds frequently begin at blocks 0,1,
 * so a prefetcher that blindly replays dense footprints over-
 * prefetches on the sparse regions.
 *
 * This example runs the two phases of a synthetic PageRank plus the
 * isolated hazard workload, comparing full Gaze against its two
 * Fig. 10 ablations:
 *   - PHT4SS: dense streaming patterns learned in the ordinary PHT
 *   - SM4SS:  the dedicated streaming module (DPCT + DC, two-stage)
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/suites.hh"

int
main()
{
    using namespace gaze;

    RunConfig cfg;
    Runner runner(cfg);

    const char *workloads[] = {
        "PageRank-1",  // init phase: almost pure streaming
        "PageRank-61", // compute phase: interleaved patterns
        "BC-4",        // the hazard in isolation (55% dense)
        "MIS-17",      // hazard with sparse majority (35% dense)
    };

    std::printf("graph analytics: the spatial-streaming hazard\n\n");
    TextTable table({"workload", "PHT4SS", "SM4SS", "full Gaze"});
    for (const char *name : workloads) {
        const WorkloadDef &w = findWorkload(name);
        double a = runner.evaluate(w, PfSpec{"gaze:pht4ss"}).speedup;
        double b = runner.evaluate(w, PfSpec{"gaze:sm4ss"}).speedup;
        double c = runner.evaluate(w, PfSpec{"gaze"}).speedup;
        table.addRow({name, TextTable::fmt(a), TextTable::fmt(b),
                      TextTable::fmt(c)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("expected: near-ties on the init phase; on interleaved "
                "phases the dedicated module (SM4SS ~ Gaze) beats the "
                "naive PHT replay (PHT4SS).\n");
    return 0;
}
