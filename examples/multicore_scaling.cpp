/**
 * @file
 * Multi-core scaling example: bandwidth contention and prefetcher
 * aggressiveness (the paper's Fig. 14 mechanism in miniature).
 *
 * Runs a homogeneous leslie3d-like mix on 1/2/4/8 cores (DRAM
 * channels scale with cores per Table II) and reports per-scheme
 * speedups plus the DRAM bus utilization behind them. Accurate
 * prefetchers (Gaze) degrade gracefully as contention grows;
 * aggressive inaccurate ones (PMP class) fall off.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/suites.hh"

int
main()
{
    using namespace gaze;

    RunConfig cfg;
    cfg.warmupInstr = 80000;
    cfg.simInstr = 150000;

    const char *schemes[] = {"vberti", "pmp", "gaze"};

    std::printf("multicore scaling: homogeneous leslie3d mix\n\n");
    TextTable table({"cores", "vberti", "pmp", "gaze",
                     "bus util (gaze)"});
    for (uint32_t cores : {1u, 2u, 4u, 8u}) {
        std::vector<std::string> row = {std::to_string(cores)};
        double util = 0.0;
        for (const char *pf : schemes) {
            Runner runner(cfg);
            std::vector<WorkloadDef> mix(cores,
                                         findWorkload("leslie3d"));
            RunResult base = runner.baselineMix(mix);
            RunResult r = runner.runMix(mix, PfSpec{pf});
            PrefetchMetrics m = computeMetrics(base, r);
            row.push_back(TextTable::fmt(m.speedup));
            if (std::string(pf) == "gaze") {
                double cycles = double(r.cores[0].cycles);
                uint32_t channels = DramParams::forCores(cores).channels;
                util = cycles > 0 ? double(r.dram.busBusyCycles)
                                        / (cycles * channels)
                                  : 0.0;
            }
        }
        row.push_back(TextTable::pct(util));
        table.addRow(row);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("expected: per-core gains shrink as cores contend for "
                "DRAM; Gaze declines most gracefully (accuracy keeps "
                "its traffic useful).\n");
    return 0;
}
