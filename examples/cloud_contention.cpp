/**
 * @file
 * Cloud-workload example: why environmental-context characterization
 * breaks down on scale-out server traces (the paper's Fig. 1/2 story).
 *
 * Cloud footprints are code-correlated but the code footprint is
 * huge, and many distinct footprint templates share the same trigger
 * offset. This example measures, on a cassandra-like trace:
 *   - offset-only characterization (PMP's class): trigger conflicts
 *     dilute the merged counters -> inaccurate, over-aggressive;
 *   - PC-based (DSPatch's class): the 256-entry PC table thrashes;
 *   - PC+Address (Bingo's class): accurate but >100KB;
 *   - Gaze: the second access disambiguates at ~4.5KB.
 *
 * It also prints the prefetcher-internal counters Gaze exposes so you
 * can see the strict-match PHT doing the work.
 */

#include <cstdio>

#include "core/gaze.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "prefetchers/factory.hh"
#include "workloads/suites.hh"

int
main()
{
    using namespace gaze;

    RunConfig cfg;
    Runner runner(cfg);
    const WorkloadDef &w = findWorkload("cassandra-p0c0");

    std::printf("cloud contention: characterization under trigger "
                "conflicts (%s)\n\n", w.name.c_str());

    struct Scheme
    {
        const char *label;
        const char *spec;
    };
    const Scheme schemes[] = {
        {"offset-only (PMP class)", "pmp"},
        {"PC-based (DSPatch class)", "dspatch"},
        {"PC+Addr (Bingo class)", "bingo"},
        {"Gaze (trigger+second)", "gaze"},
    };

    TextTable table({"scheme", "speedup", "accuracy", "coverage",
                     "storage"});
    for (const auto &s : schemes) {
        PrefetchMetrics m = runner.evaluate(w, PfSpec{s.spec});
        double kib =
            double(makePrefetcher(s.spec)->storageBits()) / 8 / 1024;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fKB", kib);
        table.addRow({s.label, TextTable::fmt(m.speedup),
                      TextTable::pct(m.accuracy),
                      TextTable::pct(m.coverage), buf});
    }
    std::printf("%s\n", table.toString().c_str());

    // Peek inside Gaze: run once more with direct access to counters.
    {
        System sys(cfg.system);
        VectorTrace trace = w.make();
        sys.setTrace(0, &trace);
        auto gaze_pf = std::make_unique<GazePrefetcher>();
        GazePrefetcher *g = gaze_pf.get();
        sys.setL1Prefetcher(0, std::move(gaze_pf));
        sys.run(cfg.effectiveWarmup() + cfg.effectiveSim());

        const GazeCounters &c = g->counters();
        std::printf("gaze internals: regions activated %llu, PHT hits "
                    "%llu / misses %llu (hit rate %.1f%%), patterns "
                    "learned %llu, stride backups %llu\n",
                    (unsigned long long)c.regionsActivated,
                    (unsigned long long)c.phtHits,
                    (unsigned long long)c.phtMisses,
                    100.0 * c.phtHits
                        / std::max<uint64_t>(1, c.phtHits + c.phtMisses),
                    (unsigned long long)c.learnedPht,
                    (unsigned long long)c.stridePromotions);
    }
    return 0;
}
