#!/usr/bin/env sh
# Campaign-engine smoke, run by CTest (and usable standalone):
#
#   campaign_smoke.sh <gaze_campaign binary> <scratch dir>
#
# Asserts the ISSUE/acceptance behavior end to end on a tiny 2-cell
# campaign:
#   1. first run executes 4 simulations (2 cells + 2 baselines),
#   2. a second run is served 100% from cache (0 simulations) and its
#      aggregate report is byte-identical,
#   3. --shard=0/2 + --shard=1/2 into a fresh cache followed by
#      `report` equals the unsharded report byte for byte,
#   4. --compare against the first report yields an exact 0 delta,
#   5. a respelled spec (non-canonical prefetcher spellings: explicit
#      defaults, reordered options) against the warm cache is 100%
#      cache hits with a byte-identical report — cache identity is
#      spelling-invariant.
set -eu

BIN=$1
WORKDIR=$2

# The script cds into WORKDIR; tolerate a relative binary path.
case "$BIN" in
  /*) ;;
  *) BIN=$(cd "$(dirname "$BIN")" && pwd)/$(basename "$BIN") ;;
esac

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

cat > spec.json <<'EOF'
{
  "name": "smoke2cell",
  "prefetchers": ["gaze"],
  "workloads": ["leslie3d", "mcf"],
  "warmup": 2000,
  "sim": 8000
}
EOF

# No `cmd | tee` anywhere: plain sh has no pipefail, and a pipeline
# would hide the binary's exit status (e.g. a sanitizer failure after
# the stats line printed). Redirect, assert, then show.
echo "== run 1 (cold cache)"
"$BIN" run --spec=spec.json --cache-dir=cache --quiet \
    --out=report1.json > run1.txt
cat run1.txt
grep -q "executed 4 simulation(s), 0 cache hit(s)" run1.txt

echo "== run 2 (must be 100% cache hits)"
"$BIN" run --spec=spec.json --cache-dir=cache --quiet \
    --out=report2.json > run2.txt
cat run2.txt
grep -q "executed 0 simulation(s), 4 cache hit(s)" run2.txt
cmp report1.json report2.json
echo "OK: second run byte-identical, zero simulations"

echo "== sharded into a fresh cache"
"$BIN" run --spec=spec.json --cache-dir=cache_sharded --quiet \
    --shard=0/2 > shard0.txt
cat shard0.txt
grep -q "executed 2 simulation(s)" shard0.txt
"$BIN" run --spec=spec.json --cache-dir=cache_sharded --quiet \
    --shard=1/2 > shard1.txt
cat shard1.txt
grep -q "executed 2 simulation(s)" shard1.txt
"$BIN" report --spec=spec.json --cache-dir=cache_sharded \
    --out=report_sharded.json --csv=report_sharded.csv
cmp report1.json report_sharded.json
echo "OK: sharded + report equals unsharded"

echo "== respelled spec against the warm cache"
# "gaze:region=4096:n=2" spells out schema defaults in arbitrary
# order; it canonicalizes to plain "gaze", so every cell must hit the
# cache the canonical spelling populated and the report must not
# change by a byte.
cat > spec_respelled.json <<'EOF'
{
  "name": "smoke2cell",
  "prefetchers": ["gaze:region=4096:n=2"],
  "workloads": ["leslie3d", "mcf"],
  "warmup": 2000,
  "sim": 8000
}
EOF
"$BIN" run --spec=spec_respelled.json --cache-dir=cache --quiet \
    --out=report_respelled.json > respelled.txt
cat respelled.txt
grep -q "executed 0 simulation(s), 4 cache hit(s)" respelled.txt
cmp report1.json report_respelled.json
echo "OK: non-canonical spellings are pure cache hits, same report"

echo "== compare against self"
"$BIN" report --spec=spec.json --cache-dir=cache \
    --out=report_cmp.json --compare=report1.json
grep -q '"speedup_delta":0[,}]' report_cmp.json
echo "OK: self-compare delta is exactly 0"

echo "campaign_smoke: all stages passed"
