#!/usr/bin/env python3
"""bench_compare — perf-regression gate over BENCH_engine.json.

Compares a freshly generated BENCH_engine.json against the committed
baseline and fails (exit 1) when the geomean of the per-(cell, engine)
minstr_per_sec ratios drops by more than --threshold (default 10%).
Engine-throughput numbers are only comparable between like hosts and
like workload sizes, so the gate SKIPS with a notice (exit 0) when:

  * host_cpus differs between the two files (different machine class),
  * scale / warmup / sim instruction counts differ (different work),
  * the files share no cells (renamed workload matrix).

Per-cell wall noise is expected — single cells finish in tens of
milliseconds — which is why the gate is on the geomean across all
cells x {polled, event, auto}, not on any single cell. Cells slower
than the threshold are still listed, marked, for the human reading
the log.

Usage: scripts/bench_compare.py [--threshold F] BASELINE FRESH
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print("bench_compare: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)


def cell_throughputs(doc):
    """(workload, prefetcher, engine) -> minstr_per_sec for the
    single-core cells. Mix cells are excluded: their wall time is
    dominated by host thread scheduling, not simulator work."""
    out = {}
    for cell in doc.get("cells", []):
        for engine in ("polled", "event", "auto"):
            block = cell.get(engine)
            if block and block.get("minstr_per_sec", 0) > 0:
                out[(cell["workload"], cell["prefetcher"], engine)] = \
                    block["minstr_per_sec"]
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail on a geomean Minstr/s regression between "
                    "two BENCH_engine.json files")
    parser.add_argument("baseline", help="committed BENCH_engine.json")
    parser.add_argument("fresh", help="freshly generated BENCH_engine.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated geomean drop "
                        "(default: 0.10 = 10%%)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    fresh = load(args.fresh)

    for field in ("host_cpus", "scale", "warmup_instructions",
                  "sim_instructions"):
        if base.get(field) != fresh.get(field):
            print("bench_compare: SKIPPED — %s differs (baseline %r, "
                  "fresh %r); throughput is only comparable on a like "
                  "host running like work" %
                  (field, base.get(field), fresh.get(field)))
            return 0

    b = cell_throughputs(base)
    f = cell_throughputs(fresh)
    common = sorted(set(b) & set(f))
    if not common:
        print("bench_compare: SKIPPED — no common cells between %s "
              "and %s" % (args.baseline, args.fresh))
        return 0

    floor = 1.0 - args.threshold
    ratios = []
    print("%-12s %-8s %-7s | %9s %9s %7s" %
          ("workload", "pf", "engine", "before", "after", "ratio"))
    for key in common:
        ratio = f[key] / b[key]
        ratios.append(ratio)
        flag = "  << below %.0f%% floor" % (floor * 100) \
            if ratio < floor else ""
        print("%-12s %-8s %-7s | %9.3f %9.3f %6.2fx%s" %
              (key + (b[key], f[key], ratio, flag)))

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print("geomean over %d (cell, engine) pairs: %.3fx "
          "(gate: >= %.2fx)" % (len(ratios), geomean, floor))
    if geomean < floor:
        print("bench_compare: FAIL — geomean Minstr/s dropped %.1f%% "
              "(> %.0f%% tolerated)" %
              ((1.0 - geomean) * 100, args.threshold * 100),
              file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
