#!/usr/bin/env python3
"""Validate `gaze_sim --list-prefetchers=json` output.

scripts/check.sh used to smoke the registry listing with a chain of
greps for literal substrings; this parses the JSON instead and
asserts the actual contract: every registered scheme has a non-empty
`canonical` spelling, a numeric non-negative `storage_kib`, and
non-empty documentation. Optionally asserts that specific schemes are
present at all (--require).

    registry_check.py [--require=name,name,...] registry.json
    gaze_sim --list-prefetchers=json | registry_check.py --require=gaze -
"""

import argparse
import json
import sys


def fail(msg):
    print("registry_check: %s" % msg, file=sys.stderr)
    return 1


def check(doc, require):
    if not isinstance(doc, dict) or "prefetchers" not in doc:
        return fail("top level must be an object with a "
                    "'prefetchers' array")
    schemes = doc["prefetchers"]
    if not isinstance(schemes, list) or not schemes:
        return fail("'prefetchers' must be a non-empty array")

    names = set()
    for i, entry in enumerate(schemes):
        if not isinstance(entry, dict):
            return fail("prefetchers[%d] is not an object" % i)
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            return fail("prefetchers[%d] has no name" % i)
        if name in names:
            return fail("scheme '%s' listed twice" % name)
        names.add(name)

        canonical = entry.get("canonical")
        if not isinstance(canonical, str) or not canonical:
            return fail("scheme '%s': missing/empty 'canonical'" % name)
        if not canonical.startswith(name):
            return fail("scheme '%s': canonical '%s' does not start "
                        "with the scheme name" % (name, canonical))

        storage = entry.get("storage_kib")
        if not isinstance(storage, (int, float)) \
                or isinstance(storage, bool) or storage < 0:
            return fail("scheme '%s': 'storage_kib' must be a "
                        "non-negative number (got %r)" % (name, storage))

        doc_text = entry.get("doc")
        if not isinstance(doc_text, str) or not doc_text.strip():
            return fail("scheme '%s': missing/empty 'doc'" % name)

    missing = [r for r in require if r not in names]
    if missing:
        return fail("required scheme(s) absent: %s (have: %s)"
                    % (", ".join(missing), ", ".join(sorted(names))))

    print("registry_check: %d scheme%s OK%s"
          % (len(names), "" if len(names) == 1 else "s",
             " (required: %s)" % ",".join(require) if require else ""))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate gaze_sim --list-prefetchers=json output")
    parser.add_argument("--require", default="",
                        help="comma-separated scheme names that must "
                        "be registered")
    parser.add_argument("path", help="registry JSON file, or - for stdin")
    args = parser.parse_args(argv)

    try:
        if args.path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(args.path, encoding="utf-8") as f:
                doc = json.load(f)
    except (OSError, ValueError) as err:
        return fail("cannot read %s: %s" % (args.path, err))

    require = [r for r in args.require.split(",") if r]
    return check(doc, require)


if __name__ == "__main__":
    sys.exit(main())
