#!/usr/bin/env python3
"""Per-rule tests for gaze_lint, driven by the fixture trees in
scripts/lint/fixtures/: every rule has one violating fixture file
(asserting rule id + exact line), the clean tree must report nothing,
and the suppression comment grammar (justified allow() on the same
line, the preceding line, or a comment block; unjustified and typo'd
allow() are findings) is pinned. Run directly or via CTest
(gaze_lint_selftest, tier1)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import gaze_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")


def lint(tree):
    findings = gaze_lint.run_lint(os.path.join(FIXTURES, tree), ["src"])
    return [(f.path, f.line, f.rule) for f in findings]


class ViolationFixtures(unittest.TestCase):
    """One fixture file per rule; ids and lines must match exactly."""

    def setUp(self):
        self.findings = lint("violations")

    def assert_found(self, path, line, rule):
        self.assertIn((path, line, rule), self.findings)

    def test_wall_clock(self):
        self.assert_found("src/harness/uses_clock.cc", 8, "wall-clock")
        self.assert_found("src/harness/uses_clock.cc", 10, "wall-clock")

    def test_unordered_in_output(self):
        self.assert_found("src/harness/export.cc", 9,
                          "unordered-in-output")

    def test_pointer_order(self):
        self.assert_found("src/sim/pointer_key.hh", 11, "pointer-order")
        self.assert_found("src/sim/pointer_key.hh", 16, "pointer-order")

    def test_raw_thread(self):
        self.assert_found("src/sim/rogue_thread.cc", 7, "raw-thread")
        self.assert_found("src/sim/rogue_thread.cc", 9, "raw-thread")

    def test_raw_thread_shims_are_allow_listed(self):
        # The fixture thread_pool.hh holds std::thread members but is
        # a sanctioned shim path: the rule must stay silent there.
        self.assertNotIn(
            "src/driver/thread_pool.hh",
            [path for path, _, rule in self.findings
             if rule == "raw-thread"])

    def test_hot_container(self):
        self.assert_found("src/sim/hot_map.cc", 6, "hot-container")
        self.assert_found("src/sim/hot_map.cc", 7, "hot-container")
        self.assert_found("src/prefetchers/hot_list.cc", 5,
                          "hot-container")

    def test_hot_container_scoped_to_hot_dirs(self):
        # export.cc deliberately holds an unordered_map (for the
        # unordered-in-output fixture) but lives in harness/: the
        # hot-container rule must stay out of it.
        self.assertNotIn(
            "src/harness/export.cc",
            [path for path, _, rule in self.findings
             if rule == "hot-container"])

    def test_using_namespace_header(self):
        self.assert_found("src/common/using_ns.hh", 6,
                          "using-namespace-header")

    def test_pragma_once(self):
        self.assert_found("src/common/no_pragma.hh", 1, "pragma-once")

    def test_register_anchor_missing(self):
        self.assert_found("src/prefetchers/orphan.cc", 5,
                          "register-anchor")

    def test_register_anchor_stale(self):
        self.assert_found("src/prefetchers/registry.cc", 9,
                          "register-anchor")

    def test_anchored_scheme_is_clean(self):
        for path, line, rule in self.findings:
            if rule == "register-anchor":
                self.assertNotEqual((path, line),
                                    ("src/prefetchers/orphan.cc", 6))

    def test_serve_isolation_core_including_serve(self):
        self.assert_found("src/sim/uses_serve.cc", 3,
                          "serve-isolation")

    def test_serve_isolation_host_time_in_serve(self):
        self.assert_found("src/serve/host_clock.cc", 3,
                          "serve-isolation")
        self.assert_found("src/serve/host_clock.cc", 4,
                          "serve-isolation")

    def test_serve_including_serve_is_clean(self):
        # serve/ including its own headers (host_clock.cc line 5) is
        # normal layering; only the time headers may fire there.
        self.assertNotIn(("src/serve/host_clock.cc", 5,
                          "serve-isolation"), self.findings)

    def test_obs_direct_mutation(self):
        self.assert_found("src/sim/cache.cc", 8, "obs-direct-mutation")

    def test_obs_listed_counter_is_clean(self):
        # ++stat.loadMiss (line 7) is in the fixture manifest: the
        # rule must fire only on the unlisted rogueCounter.
        for path, line, rule in self.findings:
            if rule == "obs-direct-mutation":
                self.assertEqual((path, line), ("src/sim/cache.cc", 8))

    def test_exact_finding_set(self):
        # No rule may fire anywhere a fixture did not plant it.
        self.assertEqual(sorted(self.findings), sorted([
            ("src/harness/uses_clock.cc", 8, "wall-clock"),
            ("src/harness/uses_clock.cc", 10, "wall-clock"),
            ("src/harness/export.cc", 9, "unordered-in-output"),
            ("src/sim/pointer_key.hh", 11, "pointer-order"),
            # ...which, being a std::map in sim/, is also a hot
            # container: two independent reasons to rewrite that line.
            ("src/sim/pointer_key.hh", 11, "hot-container"),
            ("src/sim/pointer_key.hh", 16, "pointer-order"),
            ("src/sim/rogue_thread.cc", 7, "raw-thread"),
            ("src/sim/rogue_thread.cc", 9, "raw-thread"),
            ("src/sim/hot_map.cc", 6, "hot-container"),
            ("src/sim/hot_map.cc", 7, "hot-container"),
            ("src/prefetchers/hot_list.cc", 5, "hot-container"),
            ("src/common/using_ns.hh", 6, "using-namespace-header"),
            ("src/common/no_pragma.hh", 1, "pragma-once"),
            ("src/prefetchers/orphan.cc", 5, "register-anchor"),
            ("src/prefetchers/registry.cc", 9, "register-anchor"),
            ("src/sim/cache.cc", 8, "obs-direct-mutation"),
            ("src/sim/uses_serve.cc", 3, "serve-isolation"),
            ("src/serve/host_clock.cc", 3, "serve-isolation"),
            ("src/serve/host_clock.cc", 4, "serve-isolation"),
        ]))


class CleanTree(unittest.TestCase):
    def test_no_findings(self):
        self.assertEqual(lint("clean"), [])


class Suppressions(unittest.TestCase):
    def test_justified_allows_are_honored(self):
        findings = lint("suppressed")
        self.assertNotIn(
            "src/harness/timed.cc", [path for path, _, _ in findings])
        self.assertNotIn(
            "src/serve/justified_time.cc",
            [path for path, _, _ in findings])
        self.assertNotIn(
            "src/sim/justified_map.cc",
            [path for path, _, _ in findings])

    def test_unjustified_allow_is_a_finding(self):
        self.assertIn(("src/harness/unjustified.cc", 9, "wall-clock"),
                      lint("suppressed"))

    def test_unknown_rule_id_is_a_finding(self):
        findings = lint("suppressed")
        self.assertIn(("src/harness/unjustified.cc", 10,
                       "bad-suppression"), findings)
        # ...and the typo'd allow suppresses nothing.
        self.assertIn(("src/harness/unjustified.cc", 11, "wall-clock"),
                      findings)


class CliExitCodes(unittest.TestCase):
    def run_main(self, tree):
        import contextlib
        import io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = gaze_lint.main(
                ["--root", os.path.join(FIXTURES, tree), "src"])
        return rc, buf.getvalue()

    def test_clean_exits_zero(self):
        rc, out = self.run_main("clean")
        self.assertEqual(rc, 0)
        self.assertEqual(out, "")

    def test_violations_exit_one_with_file_line_output(self):
        rc, out = self.run_main("violations")
        self.assertEqual(rc, 1)
        self.assertIn(
            "src/common/using_ns.hh:6: [using-namespace-header]", out)


if __name__ == "__main__":
    unittest.main()
