#!/usr/bin/env python3
"""gaze_lint — project-specific determinism and hygiene linter.

Every number this repro publishes (golden metrics, campaign cache
cells, polled-vs-event bitwise equivalence) rests on the simulator
being bit-deterministic. The golden tests only *sample* that
invariant at runtime; this linter states the rules that make it hold
and fails the build when a change breaks one statically:

  wall-clock             host clock / ambient randomness outside the
                         harness/wallclock.hh shim
  unordered-in-output    unordered containers in code that produces
                         published bytes (reports, exports, cell keys,
                         metrics, tables) — iteration order would leak
  pointer-order          ordering or hashing raw pointer values —
                         allocator-dependent, differs run to run
  raw-thread             std::thread/std::jthread outside the two
                         sanctioned shims (driver/thread_pool.hh and
                         sim/threaded.{hh,cc}) — ad-hoc threads are
                         where nondeterminism and leaked joins start
  hot-container          std::unordered_map/std::map/std::list inside
                         src/sim/ or src/prefetchers/ — node-based or
                         rehashing containers on the per-access hot
                         path allocate per element and chase pointers
                         per lookup; use the flat project structures
                         (MshrTable, LruTable, RingBuffer) or plain
                         vectors, or justify genuinely cold uses
  using-namespace-header `using namespace` at header scope
  pragma-once            header missing `#pragma once`
  register-anchor        GAZE_REGISTER_PREFETCHER without the matching
                         force-link anchor in prefetchers/registry.cc
                         (the static-lib linker would drop the scheme)
  obs-direct-mutation    a `stat.<field>` counter mutated in an
                         instrumented sim file without a matching
                         GAZE_OBS_*_STAT entry in obs/stat_names.inc —
                         the obs registry (and every --obs-timeline
                         column) would silently miss the counter
  serve-isolation        layering between the simulator and the
                         gaze_serve daemon: sim/core/prefetchers/
                         harness must never include serve/ headers
                         (the service depends on the simulator, not
                         the reverse), and serve/ must not include
                         host-time headers directly — daemon timing
                         goes through harness/wallclock.hh

Findings print as `file:line: [rule-id] message` and make the exit
status 1. A finding can be suppressed where the code is genuinely
right with an inline comment on the same or the preceding line:

    // gaze-lint: allow(rule-id): why this use is sound

The justification text after the second colon is mandatory; an
allow() without one is itself an error. Usage:

    scripts/lint/gaze_lint.py [--root DIR] [--list-rules] [PATH ...]

With no PATH arguments, scans src/ under --root (default: the
repository root containing this script).
"""

import argparse
import os
import re
import sys

SUPPRESS_RE = re.compile(
    r"//\s*gaze-lint:\s*allow\(([a-z0-9-]+)\)(?::\s*(\S.*))?")

# Published-bytes code: anything here feeds report/export/cell-key/
# metrics output, where container iteration order becomes file bytes.
ORDERED_OUTPUT_FILES = re.compile(
    r"(campaign/(report|cache)|harness/(export|cell_key|metrics|table))"
    r"\.(hh|cc)$")

# The one file allowed to read the host clock.
WALLCLOCK_SHIM = re.compile(r"harness/wallclock\.hh$")

REGISTRY_CC = "prefetchers/registry.cc"

REGISTER_RE = re.compile(r"\bGAZE_REGISTER_PREFETCHER\((\w+)\)")
ANCHOR_RE = re.compile(r"&gazePrefetcherRegistrar_(\w+)\b")


def strip_comments_and_strings(text):
    """Blank out comment bodies and string/char literals, preserving
    line structure, so rule patterns never fire on prose or data."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class SourceFile:
    """One scanned file: raw text, stripped text, and the per-line
    suppression table (rule id -> justification or None)."""

    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            self.raw = f.read()
        self.stripped = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self.lines = self.stripped.splitlines()
        self.suppressions = {}  # line number -> {rule: justification}
        for lineno, line in enumerate(self.raw_lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                self.suppressions.setdefault(lineno, {})[m.group(1)] = \
                    m.group(2)

    def is_header(self):
        return self.relpath.endswith((".hh", ".h"))

    def suppressed(self, lineno, rule):
        """allow() on the finding's line, or anywhere in the block of
        comment-only lines directly above it, covers the finding; a
        missing justification turns the suppression into an error."""
        candidates = [lineno]
        cand = lineno - 1
        while (1 <= cand <= len(self.raw_lines)
               and self.raw_lines[cand - 1].lstrip().startswith("//")):
            candidates.append(cand)
            cand -= 1
        for cand in candidates:
            rules = self.suppressions.get(cand, {})
            if rule in rules:
                if rules[rule] is None:
                    return None  # present but unjustified
                return True
        return False


def grep_rule(sf, rule, patterns, message):
    """Yield one finding per line matching any of @p patterns.
    #include lines are skipped: the use site is the finding."""
    for lineno, line in enumerate(sf.lines, 1):
        if re.match(r"\s*#\s*include\b", line):
            continue
        for pat in patterns:
            m = pat.search(line)
            if m:
                yield Finding(sf.relpath, lineno, rule,
                              message % m.group(0).strip())
                break


# ---- rules -----------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    re.compile(r"\b(rand|srand|rand_r|drand48)\s*\("),
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\btime\s*\(\s*(NULL|nullptr|0|&|\))"),
    re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
    re.compile(r"\bclock\s*\(\s*\)"),
    re.compile(r"\b\w*_clock::now\s*\("),
    re.compile(r"\bgetpid\s*\(\s*\)"),
]


def rule_wall_clock(sf):
    if WALLCLOCK_SHIM.search(sf.relpath):
        return
    yield from grep_rule(
        sf, "wall-clock", WALL_CLOCK_PATTERNS,
        "'%s' reads the host clock/entropy/pid; route wall-clock "
        "timing through harness/wallclock.hh (simulated behaviour "
        "must never depend on the host)")


UNORDERED_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")


def rule_unordered_in_output(sf):
    if not ORDERED_OUTPUT_FILES.search(sf.relpath):
        return
    yield from grep_rule(
        sf, "unordered-in-output", [UNORDERED_RE],
        "'%s' in published-bytes code: its iteration order is "
        "hash-seed/allocator dependent and would leak into report "
        "bytes; use std::map/std::set or sort explicitly")


POINTER_ORDER_PATTERNS = [
    re.compile(r"std::(map|set|multimap|multiset)<\s*[^,<>()]*\*"),
    re.compile(r"std::hash<\s*[^<>]*\*\s*>"),
    re.compile(r"reinterpret_cast<\s*u?intptr_t\s*>"),
]


def rule_pointer_order(sf):
    yield from grep_rule(
        sf, "pointer-order", POINTER_ORDER_PATTERNS,
        "'%s' orders or hashes a raw pointer value; pointer values "
        "are allocator-dependent and differ run to run — key on a "
        "stable id instead")


# The sanctioned homes for raw threads: the task pool that runs
# matrix/campaign cells, and the slice team behind --sim-threads.
RAW_THREAD_SHIMS = re.compile(
    r"(driver/thread_pool\.(hh|cc)|sim/threaded\.(hh|cc))$")

RAW_THREAD_RE = re.compile(r"\bstd::(thread|jthread)\b")


def rule_raw_thread(sf):
    if RAW_THREAD_SHIMS.search(sf.relpath):
        return
    yield from grep_rule(
        sf, "raw-thread", [RAW_THREAD_RE],
        "'%s' uses a raw thread outside the sanctioned shims; go "
        "through driver/thread_pool.hh (task parallelism) or "
        "sim/threaded.hh (the cycle-lockstep slice team) so joins, "
        "exception capture and determinism stay centralized")


# The per-access hot path: every simulated memory reference walks
# src/sim/ and src/prefetchers/ code, so a node-based or rehashing
# container there means heap churn per miss and pointer chasing per
# lookup. The flat structures (sim/mshr_table.hh, common/lru_table.hh,
# common/ring_buffer.hh) exist to replace them; uses that are
# genuinely cold (parse-time option tables, error paths) carry a
# justified allow instead.
HOT_PATH_DIRS = re.compile(r"(^|/)src/(sim|prefetchers)/")

HOT_CONTAINER_RE = re.compile(r"\bstd::(unordered_map|map|list)\b")


def rule_hot_container(sf):
    if not HOT_PATH_DIRS.search(sf.relpath):
        return
    yield from grep_rule(
        sf, "hot-container", [HOT_CONTAINER_RE],
        "'%s' on the simulator hot path: node-based/rehashing "
        "containers allocate per element and chase pointers per "
        "lookup; use MshrTable/LruTable/RingBuffer or a flat vector, "
        "or justify a genuinely cold use with an allow()")


USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")


def rule_using_namespace_header(sf):
    if not sf.is_header():
        return
    yield from grep_rule(
        sf, "using-namespace-header", [USING_NAMESPACE_RE],
        "'%s' in a header leaks into every includer; qualify names "
        "or move the directive into a .cc")


def rule_pragma_once(sf):
    if not sf.is_header():
        return
    for line in sf.raw_lines:
        if line.strip() == "#pragma once":
            return
    yield Finding(sf.relpath, 1, "pragma-once",
                  "header has no '#pragma once'")


def rule_register_anchor(files):
    """Whole-tree rule: every GAZE_REGISTER_PREFETCHER(x) needs a
    force-link anchor (&gazePrefetcherRegistrar_x) in registry.cc, and
    every anchor needs a live registration; registrations must live in
    a .cc so each scheme has exactly one registrar object."""
    registry = None
    registered = {}  # ident -> (file, line)
    for sf in files:
        if sf.relpath.endswith(REGISTRY_CC):
            registry = sf
            continue
        for lineno, line in enumerate(sf.lines, 1):
            if re.search(r"#\s*define\s+GAZE_REGISTER_PREFETCHER", line):
                continue  # the macro's own definition
            for m in REGISTER_RE.finditer(line):
                ident = m.group(1)
                if sf.is_header():
                    yield Finding(
                        sf.relpath, lineno, "register-anchor",
                        "GAZE_REGISTER_PREFETCHER(%s) in a header: "
                        "every includer would define a duplicate "
                        "registrar; register in the scheme's .cc"
                        % ident)
                elif ident in registered:
                    prev = registered[ident]
                    yield Finding(
                        sf.relpath, lineno, "register-anchor",
                        "duplicate GAZE_REGISTER_PREFETCHER(%s) "
                        "(also at %s:%d)" % (ident, prev[0], prev[1]))
                else:
                    registered[ident] = (sf.relpath, lineno)
    if registry is None:
        if registered:
            first = sorted(registered.items())[0]
            yield Finding(first[1][0], first[1][1], "register-anchor",
                          "schemes are registered but %s was not "
                          "scanned; run on the whole src/ tree"
                          % REGISTRY_CC)
        return
    anchors = {}
    for lineno, line in enumerate(registry.lines, 1):
        for m in ANCHOR_RE.finditer(line):
            anchors.setdefault(m.group(1), lineno)
    for ident, (path, lineno) in sorted(registered.items()):
        if ident not in anchors:
            yield Finding(
                path, lineno, "register-anchor",
                "GAZE_REGISTER_PREFETCHER(%s) has no "
                "&gazePrefetcherRegistrar_%s anchor in %s; the "
                "static-lib linker will drop this scheme from any "
                "binary that does not name its symbols"
                % (ident, ident, REGISTRY_CC))
    for ident, lineno in sorted(anchors.items()):
        if ident not in registered:
            yield Finding(
                registry.relpath, lineno, "register-anchor",
                "anchor &gazePrefetcherRegistrar_%s has no matching "
                "GAZE_REGISTER_PREFETCHER(%s); remove the stale "
                "anchor" % (ident, ident))


# Sim files whose `stat.` counter mutations must be mirrored in the
# obs bind manifest; the includer-side macros in system.cc turn each
# manifest entry into a registry binding.
OBS_INSTRUMENTED_FILES = re.compile(r"sim/(cache|core|dram|event)\.cc$")
OBS_MANIFEST = "obs/stat_names.inc"
OBS_MUTATION_RE = re.compile(r"\bstat\.(\w+)")
OBS_BINDING_RE = re.compile(
    r"\bGAZE_OBS_(?:CACHE|CORE|DRAM|EVENT)_STAT\((\w+)\)")


def rule_obs_direct_mutation(files):
    """Whole-tree rule: every counter field mutated through the
    `stat.` member in an instrumented sim file must be named in the
    obs bind manifest (obs/stat_names.inc). The manifest is what the
    registry binds, so an unlisted counter would exist in --engine
    stats yet silently never appear in any --obs-timeline column.
    (The reverse direction needs no rule: a stale manifest entry
    names a nonexistent field and fails to compile.)"""
    manifest = None
    for sf in files:
        if sf.relpath.endswith(OBS_MANIFEST):
            manifest = sf
            break
    mutated = {}  # field name -> first (file, line) mutating it
    for sf in files:
        if not OBS_INSTRUMENTED_FILES.search(sf.relpath):
            continue
        for lineno, line in enumerate(sf.lines, 1):
            if "++" not in line and "+=" not in line:
                continue
            for m in OBS_MUTATION_RE.finditer(line):
                mutated.setdefault(m.group(1), (sf.relpath, lineno))
    if not mutated:
        return
    if manifest is None:
        first = sorted(mutated.items())[0]
        yield Finding(first[1][0], first[1][1], "obs-direct-mutation",
                      "stat counters are mutated but %s was not "
                      "scanned; run on the whole src/ tree"
                      % OBS_MANIFEST)
        return
    bound = set()
    for line in manifest.lines:
        for m in OBS_BINDING_RE.finditer(line):
            bound.add(m.group(1))
    for name, (path, lineno) in sorted(mutated.items()):
        if name not in bound:
            yield Finding(
                path, lineno, "obs-direct-mutation",
                "counter 'stat.%s' is mutated here but not listed in "
                "%s; add a GAZE_OBS_*_STAT(%s) entry so the obs "
                "registry binds it" % (name, OBS_MANIFEST, name))


# Layering around the gaze_serve daemon: the simulator proper (and the
# harness it rests on) must stay linkable and testable without the
# service; serve/ sits on top. And serve/, being long-running host
# code, is the most tempting place to reach for <chrono> — which the
# wall-clock rule would only catch at the call site, after the include
# already normalized it. Ban the includes themselves.
SERVE_PROTECTED_DIRS = re.compile(r"(^|/)src/(sim|core|prefetchers|harness)/")
SERVE_DIR = re.compile(r"(^|/)src/serve/")
SERVE_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*\"serve/")
SERVE_HOST_TIME_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*[<\"](chrono|ctime|time\.h|sys/time\.h)[>\"]")


def rule_serve_isolation(sf):
    """Scans raw lines: grep_rule skips #include lines by design, and
    the stripped text blanks the quoted include path anyway."""
    if SERVE_PROTECTED_DIRS.search(sf.relpath):
        for lineno, line in enumerate(sf.raw_lines, 1):
            if SERVE_INCLUDE_RE.match(line):
                yield Finding(
                    sf.relpath, lineno, "serve-isolation",
                    "'%s' pulls the service layer into the simulator "
                    "core; serve/ may include sim/core/prefetchers/"
                    "harness, never the reverse" % line.strip())
    elif SERVE_DIR.search(sf.relpath):
        for lineno, line in enumerate(sf.raw_lines, 1):
            if SERVE_HOST_TIME_INCLUDE_RE.match(line):
                yield Finding(
                    sf.relpath, lineno, "serve-isolation",
                    "'%s' reads host time directly in the service "
                    "layer; route timing through harness/wallclock.hh "
                    "(WallTimer / hostNowUs) so daemon timing stays "
                    "shimmed and testable" % line.strip())


PER_FILE_RULES = [
    ("wall-clock", rule_wall_clock,
     "host clock/entropy outside harness/wallclock.hh"),
    ("unordered-in-output", rule_unordered_in_output,
     "unordered containers in report/export/cell-key/metrics code"),
    ("pointer-order", rule_pointer_order,
     "ordering or hashing raw pointer values"),
    ("raw-thread", rule_raw_thread,
     "std::thread outside thread_pool.hh / sim/threaded.*"),
    ("hot-container", rule_hot_container,
     "node-based/rehashing std container in sim/ or prefetchers/"),
    ("using-namespace-header", rule_using_namespace_header,
     "`using namespace` at header scope"),
    ("pragma-once", rule_pragma_once,
     "header missing `#pragma once`"),
    ("serve-isolation", rule_serve_isolation,
     "core including serve/, or serve/ reading host time directly"),
]

TREE_RULES = [
    ("register-anchor", rule_register_anchor,
     "GAZE_REGISTER_PREFETCHER without a registry.cc anchor"),
    ("obs-direct-mutation", rule_obs_direct_mutation,
     "stat counter mutated without an obs/stat_names.inc entry"),
]

ALL_RULE_IDS = ([rid for rid, _, _ in PER_FILE_RULES]
                + [rid for rid, _, _ in TREE_RULES])


def collect_files(root, paths):
    rels = []
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            rels.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh", ".h", ".cpp", ".inc")):
                    rels.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return rels


def run_lint(root, paths):
    """Scan @p paths under @p root; returns the list of findings."""
    files = [SourceFile(root, rel) for rel in collect_files(root, paths)]
    findings = []

    def emit(sf, finding):
        state = sf.suppressed(finding.line, finding.rule)
        if state is True:
            return
        if state is None:
            finding = Finding(
                finding.path, finding.line, finding.rule,
                "allow(%s) without a justification — write "
                "'// gaze-lint: allow(%s): <why this is sound>'"
                % (finding.rule, finding.rule))
        findings.append(finding)

    by_path = {sf.relpath: sf for sf in files}
    for sf in files:
        for _, rule_fn, _ in PER_FILE_RULES:
            for finding in rule_fn(sf):
                emit(sf, finding)
    for _, rule_fn, _ in TREE_RULES:
        for finding in rule_fn(files):
            emit(by_path[finding.path], finding)

    # Unknown rule ids in allow() comments are findings too: a typo'd
    # suppression would otherwise silently suppress nothing.
    for sf in files:
        for lineno, rules in sorted(sf.suppressions.items()):
            for rid in rules:
                if rid not in ALL_RULE_IDS:
                    findings.append(Finding(
                        sf.relpath, lineno, "bad-suppression",
                        "allow(%s) names no known rule (known: %s)"
                        % (rid, ", ".join(ALL_RULE_IDS))))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="gaze determinism/hygiene linter")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels "
                        "above this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to root "
                        "(default: src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, _, doc in PER_FILE_RULES + TREE_RULES:
            print("%-24s %s" % (rid, doc))
        return 0

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src"]
    findings = run_lint(root, paths)
    for f in findings:
        print(f)
    if findings:
        print("gaze_lint: %d finding%s" % (
            len(findings), "" if len(findings) == 1 else "s"),
            file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
