// Fixture: a justified allow() on a banned host-time include in the
// service layer — honored, like any other rule's suppressions.
#include <ctime> // gaze-lint: allow(serve-isolation): strftime for a log banner only; no simulated state sees it

void
banner()
{
}
