// Fixture: allow() without a justification is itself a finding, and
// a typo'd rule id suppresses nothing.
#include <chrono>

double
bad()
{
    // gaze-lint: allow(wall-clock)
    auto a = std::chrono::steady_clock::now(); // line 9: finding
    // gaze-lint: allow(wallclock-typo): not a real rule id
    auto b = std::chrono::steady_clock::now(); // line 11: finding
    (void)a;
    (void)b;
    return 0.0;
}
