// Fixture: a justified allow() on the same line, one on the
// preceding line, and one multi-line comment block — all honored.
#include <chrono>
#include <ctime>

double
probes()
{
    auto a = std::chrono::steady_clock::now(); // gaze-lint: allow(wall-clock): host-only probe for a local progress meter
    // gaze-lint: allow(wall-clock): seeding a log banner, not state
    auto b = std::time(nullptr);
    // gaze-lint: allow(wall-clock): this reading feeds an advisory
    // stderr line only; nothing simulated or published sees it.
    auto c = std::chrono::steady_clock::now();
    (void)a;
    (void)c;
    return double(b);
}
