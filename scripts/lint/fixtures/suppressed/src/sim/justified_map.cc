// Justified hot-container allows must be honored, both same-line and
// comment-block-above forms.
#include <map>

namespace gaze {
// gaze-lint: allow(hot-container): parse-time option table, never
// touched per simulated access
std::map<int, int> optionTable;

std::list<int> coldList; // gaze-lint: allow(hot-container): drained once at shutdown
} // namespace gaze
