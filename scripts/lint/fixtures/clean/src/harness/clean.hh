// Fixture: a perfectly ordinary header. The prose below mentions
// std::unordered_map, rand() and steady_clock::now() — comments and
// string literals must never trip a rule.
#pragma once

#include <map>
#include <string>

inline std::string
describe()
{
    return "uses rand() and steady_clock::now() at runtime: no";
}

struct Ordered
{
    std::map<int, std::string> rows;
};
