// Fixture: a clean tree — registration with a matching anchor, no
// determinism hazards anywhere.
#define GAZE_REGISTER_PREFETCHER(x) int registered_##x = 1;

GAZE_REGISTER_PREFETCHER(tidy)
