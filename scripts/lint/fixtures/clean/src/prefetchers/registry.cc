// Fixture registry.cc for the clean tree: one anchor per
// registration, nothing stale.
struct PrefetcherRegistrar;
extern PrefetcherRegistrar gazePrefetcherRegistrar_tidy;

const PrefetcherRegistrar *const kSchemeAnchors[] = {
    &gazePrefetcherRegistrar_tidy,
};
