// Fixture: instrumented sim file whose mutations are all listed in
// the obs manifest; obs-direct-mutation must stay silent.

void
finishRead(Stats &stat, unsigned latency)
{
    ++stat.reads;
    stat.readLatencySum += latency;
}
