// Fixture: a serve file doing it right — timing through the wallclock
// shim, simulator headers flowing upward; serve-isolation must stay
// silent (including on serve-internal includes).
#include "harness/wallclock.hh"
#include "serve/scheduler.hh"

double
drainSeconds()
{
    WallTimer timer;
    return timer.seconds();
}
