// Fixture: raw-thread allow-list — this path is a sanctioned shim,
// so its std::thread members must NOT fire the rule.
#pragma once
#include <thread>
#include <vector>

struct FixturePool
{
    std::vector<std::thread> workers;
};
