// hot-container fixture, prefetcher side: a std::list FIFO (line 5).
#include <list>

namespace gaze {
std::list<unsigned long> issueFifo;
} // namespace gaze
