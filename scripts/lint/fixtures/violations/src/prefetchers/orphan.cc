// Fixture: register-anchor — a scheme registered without a matching
// force-link anchor in prefetchers/registry.cc.
#define GAZE_REGISTER_PREFETCHER(x) int registered_##x = 1;

GAZE_REGISTER_PREFETCHER(orphan) // line 5: finding (no anchor)
GAZE_REGISTER_PREFETCHER(good)   // line 6: clean (anchored)
