// Fixture registry.cc: anchors `good`, lacks `orphan`, and carries a
// stale anchor for a scheme nothing registers any more.
struct PrefetcherRegistrar;
extern PrefetcherRegistrar gazePrefetcherRegistrar_good;
extern PrefetcherRegistrar gazePrefetcherRegistrar_stale;

const PrefetcherRegistrar *const kSchemeAnchors[] = {
    &gazePrefetcherRegistrar_good,
    &gazePrefetcherRegistrar_stale, // line 9: finding (stale anchor)
};
