// Fixture: raw-thread — spawns std::thread outside the shims.
#include <thread>

void
rogue()
{
    std::thread t([] {}); // line 7: finding
    t.join();
    unsigned n = std::thread::hardware_concurrency(); // line 9: finding
    (void)n;
}
