// Fixture: an instrumented sim file. loadMiss is in the manifest
// (clean); rogueCounter is not (obs-direct-mutation).

void
tickStats(Stats &stat)
{
    ++stat.loadMiss;
    stat.rogueCounter += 2;
}
