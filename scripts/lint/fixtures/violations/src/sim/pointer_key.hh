// Fixture: pointer-order — ordered container keyed by pointer value.
#pragma once

#include <cstdint>
#include <map>

struct Widget;

struct Sched
{
    std::map<Widget *, int> byOwner; // line 11: finding

    static uint64_t
    hashOf(const Widget *w)
    {
        return reinterpret_cast<uintptr_t>(w); // line 16: finding
    }
};
