// Fixture: serve-isolation — simulator core including a serve header.
#include "sim/cache.hh"
#include "serve/protocol.hh" // line 3: finding

void
simSideHelper()
{
}
