// hot-container fixture: node/rehashing containers on the per-access
// path. Lines 6 and 7 must each fire exactly once.
#include <map>

namespace gaze {
std::unordered_map<unsigned long, int> mshrByAddr;
std::map<unsigned long, int> tagIndex;
} // namespace gaze
