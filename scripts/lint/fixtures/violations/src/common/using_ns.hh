// Fixture: using-namespace-header.
#pragma once

#include <string>

using namespace std; // line 6: finding
