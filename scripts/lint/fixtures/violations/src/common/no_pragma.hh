// Fixture: pragma-once — header with a legacy ifndef guard only.
#ifndef FIXTURE_NO_PRAGMA_HH
#define FIXTURE_NO_PRAGMA_HH

struct Empty
{
};

#endif // FIXTURE_NO_PRAGMA_HH
