// Fixture: unordered-in-output — unordered container in an
// ordered-output (published bytes) file.
#include <string>
#include <unordered_map>

std::string
renderReport()
{
    std::unordered_map<int, std::string> rows; // line 9: finding
    std::string out;
    for (const auto &kv : rows)
        out += kv.second;
    return out;
}
