// Fixture: wall-clock — reads the host clock outside the shim.
#include <chrono>
#include <cstdlib>

double
elapsed()
{
    auto t0 = std::chrono::steady_clock::now(); // line 8: finding
    (void)t0;
    return std::rand() % 100; // line 10: finding
}
