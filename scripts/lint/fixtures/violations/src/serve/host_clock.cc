// Fixture: serve-isolation — service layer reading host time headers
// directly instead of going through harness/wallclock.hh.
#include <chrono> // line 3: finding
#include <sys/time.h> // line 4: finding
#include "serve/service.hh"

void
serveSideHelper()
{
}
