#!/usr/bin/env sh
# gaze_serve end-to-end smoke, run by CTest (and usable standalone):
#
#   serve_smoke.sh <gaze_serve> <gaze_campaign> <scratch dir> \
#                  [validate_obs.py]
#
# Asserts the campaign-service acceptance behavior against the real
# daemon over a real Unix socket:
#   1. the daemon starts, a submit streams to a report, and that
#      report is byte-identical to the offline `gaze_campaign run` +
#      `report` pipeline for the same spec (the determinism contract),
#   2. resubmitting the same spec enqueues zero cells (pure cache
#      answer) and yields the same bytes again,
#   3. `gaze_serve status` answers one status JSON line, and
#      `gaze_campaign status --json` against the daemon's cache agrees
#      nothing is missing,
#   4. SIGTERM drains cleanly: the daemon exits 0 and reports what it
#      served; its obs trace (queue-wait/execute spans) validates.
set -eu

SERVE=$1
CAMPAIGN=$2
WORKDIR=$3
VALIDATE_OBS=${4:-}

# The script cds into WORKDIR; tolerate relative binary paths.
case "$SERVE" in
  /*) ;;
  *) SERVE=$(cd "$(dirname "$SERVE")" && pwd)/$(basename "$SERVE") ;;
esac
case "$CAMPAIGN" in
  /*) ;;
  *) CAMPAIGN=$(cd "$(dirname "$CAMPAIGN")" && pwd)/$(basename "$CAMPAIGN") ;;
esac
case "$VALIDATE_OBS" in
  ""|/*) ;;
  *) VALIDATE_OBS=$(cd "$(dirname "$VALIDATE_OBS")" && pwd)/$(basename "$VALIDATE_OBS") ;;
esac

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

# A scaled-down cut of examples/campaign_fig06.json: same shape (a
# prefetcher axis times a workload axis), sized for a smoke gate.
cat > spec.json <<'EOF'
{
  "name": "serve_smoke",
  "prefetchers": ["ip_stride", "gaze"],
  "workloads": ["leslie3d", "mcf"],
  "warmup": 2000,
  "sim": 8000
}
EOF

# The socket lives at a cwd-relative path: sun_path is only ~100
# bytes and build trees nest deep.
echo "== daemon up"
"$SERVE" daemon --socket=./serve.sock --cache-dir=cache \
    --obs-trace=obs_trace.json --verbose 2> daemon.log &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT
i=0
while [ ! -S ./serve.sock ]; do
    i=$((i + 1))
    test "$i" -le 100 || { echo "daemon never bound"; cat daemon.log; exit 1; }
    sleep 0.1
done

# No `cmd | tee` anywhere: plain sh has no pipefail, and a pipeline
# would hide a binary's exit status. Redirect, assert, then show.
echo "== submit (cold cache)"
"$SERVE" submit --socket=./serve.sock --spec=spec.json \
    --out=daemon_report.json --csv=daemon.csv 2> submit1.txt
cat submit1.txt
grep -q "report: daemon_report.json" submit1.txt

echo "== offline pipeline must produce the same bytes"
"$CAMPAIGN" run --spec=spec.json --cache-dir=cache_offline --quiet \
    --out=offline_report.json --csv=offline.csv > offline.txt
cat offline.txt
cmp daemon_report.json offline_report.json
cmp daemon.csv offline.csv
echo "OK: daemon report byte-identical to gaze_campaign run + report"

echo "== resubmit (must enqueue nothing)"
"$SERVE" submit --socket=./serve.sock --spec=spec.json \
    --out=daemon_report2.json 2> submit2.txt
cat submit2.txt
grep -q "enqueued=0" submit2.txt
cmp daemon_report.json daemon_report2.json
echo "OK: repeat submission answered from cache, same bytes"

echo "== status, both producers"
"$SERVE" status --socket=./serve.sock > status.json
cat status.json
grep -q '"event":"status"' status.json
grep -q '"submits":2' status.json
"$CAMPAIGN" status --spec=spec.json --cache-dir=cache --json \
    > campaign_status.json
cat campaign_status.json
grep -q '"missing":0' campaign_status.json
echo "OK: daemon and campaign status agree the cache is complete"

echo "== SIGTERM drain"
kill -TERM "$DPID"
rc=0
wait "$DPID" || rc=$?
trap - EXIT
cat daemon.log
test "$rc" -eq 0 || { echo "daemon exited $rc, want 0"; exit 1; }
grep -q "drained" daemon.log
test -f obs_trace.json
if [ -n "$VALIDATE_OBS" ] && command -v python3 > /dev/null 2>&1; then
    python3 "$VALIDATE_OBS" obs_trace.json
    echo "OK: obs trace validates"
fi
test ! -e ./serve.sock
echo "OK: clean drain, exit 0, socket unlinked"

echo "serve_smoke: all stages passed"
