#!/usr/bin/env python3
"""validate_obs — structural validator for --obs-trace documents.

A --obs-trace file must load in chrome://tracing / ui.perfetto.dev,
so this validator pins the contract the TraceSink promises:

 1. The file parses as JSON: one object with a "traceEvents" array.
 2. Every event is an object with a string "ph" in {X, C, M}, a
    string "name", and integer "pid"/"tid".
 3. 'X' (complete span) events carry non-negative numeric "ts" and
    "dur"; 'C' (counter) events carry "ts" and an "args" object.
 4. Spans nest monotonically per (pid, tid) track: sorted by start
    time, every span either follows the previous one or is fully
    contained in a still-open enclosing span (stack discipline —
    RAII scopes on one thread / one simulated track can produce
    nothing else; overlap without containment means a track id was
    shared or a duration was computed wrong).
 5. The two process_name metadata records (simulated time pid 1,
    host time pid 2) exist, so the viewer labels the tracks.

Usage: validate_obs.py TRACE.json [TRACE.json ...]
Exit status 0 when every file is valid, 1 with a diagnostic line per
defect otherwise (check.sh runs this fail-fast on a fresh trace).
"""

import json
import sys

VALID_PHASES = {"X", "C", "M", "m"}


def fail(path, msg):
    print("%s: %s" % (path, msg))
    return False


def validate_events(path, events):
    ok = True
    spans = {}  # (pid, tid) -> [(ts, dur, name, index)]
    process_names = set()
    for i, e in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(e, dict):
            ok = fail(path, "%s: not an object" % where)
            continue
        ph = e.get("ph")
        name = e.get("name")
        pid = e.get("pid")
        tid = e.get("tid")
        if ph not in VALID_PHASES:
            ok = fail(path, "%s: bad ph %r" % (where, ph))
            continue
        if not isinstance(name, str) or not name:
            ok = fail(path, "%s: bad name %r" % (where, name))
            continue
        if not isinstance(pid, int) or not isinstance(tid, int):
            ok = fail(path, "%s: non-integer pid/tid" % where)
            continue
        if ph in ("M", "m"):
            if name == "process_name":
                process_names.add(pid)
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            ok = fail(path, "%s: bad ts %r" % (where, ts))
            continue
        if ph == "C":
            if not isinstance(e.get("args"), dict):
                ok = fail(path, "%s: counter without args" % where)
            continue
        dur = e.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            ok = fail(path, "%s: bad dur %r" % (where, dur))
            continue
        spans.setdefault((pid, tid), []).append((ts, dur, name, i))

    # Stack-discipline nesting per track: sort by (start, -duration)
    # so an enclosing span precedes the spans it contains.
    for (pid, tid), track in sorted(spans.items()):
        track.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (end, name)
        for ts, dur, name, i in track:
            end = ts + dur
            while stack and stack[-1][0] <= ts:
                stack.pop()
            if stack and end > stack[-1][0]:
                ok = fail(
                    path,
                    "track (pid %d, tid %d): span '%s' "
                    "(traceEvents[%d], [%s, %s)) overlaps enclosing "
                    "span '%s' ending at %s without nesting"
                    % (pid, tid, name, i, ts, end, stack[-1][1],
                       stack[-1][0]))
                continue
            stack.append((end, name))

    for pid in (1, 2):
        if pid not in process_names:
            ok = fail(path,
                      "missing process_name metadata for pid %d" % pid)
    return ok


def validate_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(path, "unreadable or malformed JSON: %s" % e)
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, 'no "traceEvents" array')
    if not events:
        return fail(path, '"traceEvents" is empty')
    return validate_events(path, events)


def main(argv):
    if len(argv) < 2:
        print("usage: validate_obs.py TRACE.json [TRACE.json ...]")
        return 2
    ok = True
    for path in argv[1:]:
        ok = validate_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
