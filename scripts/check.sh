#!/usr/bin/env sh
# Fast local gate, run from the repository root: ./scripts/check.sh
#
# Builds everything, runs the tier-1-labeled CTest set (the "slow"
# label — long paper-claim sweeps — is what full `ctest` adds on top,
# which is the exact tier-1 verify line from ROADMAP.md), then smokes
# the trace record -> replay path and the campaign cache end to end.
# set -e plus --stop-on-failure makes every stage fail fast on the
# first error.
#
#   ./scripts/check.sh             # normal gate, build/
#   ./scripts/check.sh --sanitize  # same gate under ASan+UBSan, in
#                                  # build-sanitize/ (slower; run on
#                                  # memory-touching changes)
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_EXTRA=""
for arg in "$@"; do
    case "$arg" in
      --sanitize)
        BUILD_DIR=build-sanitize
        CMAKE_EXTRA="-DGAZE_SANITIZE=ON"
        ;;
      *)
        echo "usage: $0 [--sanitize]" >&2
        exit 2
        ;;
    esac
done

# $CMAKE_EXTRA is deliberately unquoted: empty means no extra flag.
# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . $CMAKE_EXTRA
cmake --build "$BUILD_DIR" -j

cd "$BUILD_DIR"
ctest -L tier1 --output-on-failure --stop-on-failure -j

# Prefetcher-registry smoke (runs under the sanitize gate too):
# rendering the JSON listing round-trips every registered scheme
# through the registry — parse, canonicalize, build, storageBits() —
# so a bad registration or schema dies here before anything simulates.
./src/gaze_sim --list-prefetchers=json > registry.json
grep -q '"name":"gaze"' registry.json
grep -q '"name":"vberti"' registry.json
grep -q '"storage_kib":' registry.json
grep -q '"canonical":"gaze"' registry.json
./src/gaze_campaign describe > /dev/null

# Trace subsystem smoke: record two workloads, validate the files,
# inspect them as JSON, replay them through the suite runner.
SMOKE_DIR=check_traces
rm -rf "$SMOKE_DIR"
GAZE_SIM_SCALE=0.02 ./src/gaze_trace record \
    --workloads=leslie3d,mcf --out-dir="$SMOKE_DIR"
./src/gaze_trace validate "$SMOKE_DIR"/leslie3d.gzt "$SMOKE_DIR"/mcf.gzt
./src/gaze_trace info --json "$SMOKE_DIR"/leslie3d.gzt > /dev/null
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=gaze --workloads=leslie3d,mcf \
    --trace-dir="$SMOKE_DIR" --warmup=2000 --sim=8000 \
    --out="$SMOKE_DIR"/BENCH_check.json

# Campaign cache smoke: 2-cell campaign twice (second run must be
# 100% cache hits, byte-identical report) + sharded equivalence.
GAZE_SIM_SCALE=0.02 sh ../scripts/campaign_smoke.sh \
    ./src/gaze_campaign check_campaign

# Engine throughput smoke: one short event-engine cell must simulate
# at a positive Minstr/s (asserted inside the binary, printed here so
# the gate records the number) and skip idle cycles. No pipeline: the
# binary's exit status must reach set -e.
GAZE_SIM_SCALE=0.02 ./bench/bench_engine --quick > engine_smoke.txt
cat engine_smoke.txt
grep -q "Minstr/s" engine_smoke.txt

echo "check.sh: all stages passed"
