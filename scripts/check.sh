#!/usr/bin/env sh
# Fast local gate, run from the repository root: ./scripts/check.sh
#
# Builds everything, runs the tier-1-labeled CTest set (the "slow"
# label — long paper-claim sweeps — is what full `ctest` adds on top,
# which is the exact tier-1 verify line from ROADMAP.md), then smokes
# the trace record -> replay path end to end. set -e plus
# --stop-on-failure makes every stage fail fast on the first error.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

cd build
ctest -L tier1 --output-on-failure --stop-on-failure -j

# Trace subsystem smoke: record two workloads, validate the files,
# replay them through the suite runner.
SMOKE_DIR=check_traces
rm -rf "$SMOKE_DIR"
GAZE_SIM_SCALE=0.02 ./src/gaze_trace record \
    --workloads=leslie3d,mcf --out-dir="$SMOKE_DIR"
./src/gaze_trace validate "$SMOKE_DIR"/leslie3d.gzt "$SMOKE_DIR"/mcf.gzt
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=gaze --workloads=leslie3d,mcf \
    --trace-dir="$SMOKE_DIR" --warmup=2000 --sim=8000 \
    --out="$SMOKE_DIR"/BENCH_check.json

echo "check.sh: all stages passed"
