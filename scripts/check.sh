#!/usr/bin/env sh
# The exact tier-1 verify line from ROADMAP.md, so local runs match the
# gate. Run from the repository root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build \
    && ctest --output-on-failure -j
