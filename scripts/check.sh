#!/usr/bin/env sh
# Fast local gate, run from the repository root: ./scripts/check.sh
#
# Stages, in fail-fast order:
#   1. gaze_lint            determinism/hygiene linter (pure python,
#                           runs before any compile time is spent)
#   2. configure + build    with GAZE_WERROR=ON: the hardened warning
#                           set (-Wall -Wextra -Wshadow
#                           -Wnon-virtual-dtor -Wextra-semi
#                           -Wsuggest-override) is part of the gate
#   3. ctest -L tier1       the fast test set ("slow" label is what a
#                           full `ctest` adds on top)
#   4. smokes               registry JSON contract (registry_check.py),
#                           trace record->validate->replay, campaign
#                           cache, campaign service daemon
#                           (serve_smoke.sh), engine throughput +
#                           structure microbench, obs trace
#                           (validate_obs.py on a fresh --obs-trace)
#   5. bench_compare        normal (non-sanitize) gate only: rerun the
#                           full engine benchmark at the committed
#                           baseline's scale and fail on a >10%
#                           geomean Minstr/s regression against the
#                           checked-in BENCH_engine.json;
#                           bench_compare.py SKIPs with a notice when
#                           host_cpus (or the workload size) differs
#
# Variants:
#   ./scripts/check.sh                    normal gate, build/
#   ./scripts/check.sh --sanitize         ASan+UBSan gate (alias for
#                                         --sanitize=address),
#                                         build-sanitize/
#   ./scripts/check.sh --sanitize=thread  TSan gate, build-sanitize-
#                                         thread/: builds everything
#                                         and runs the concurrency-
#                                         labeled tests (ThreadPool /
#                                         BaselineCache / campaign-
#                                         shard stress) race-clean
#   ./scripts/check.sh --tidy             clang-tidy over src/ against
#                                         compile_commands.json
#   ./scripts/check.sh --format           clang-format --dry-run
#                                         -Werror (diff-only, never
#                                         rewrites)
#
# --tidy and --format SKIP with a notice when the tool is not
# installed (this container ships only GCC); they fail loudly on any
# finding where the tools exist. Everything else has no external
# dependencies beyond cmake/g++/python3.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_EXTRA="-DGAZE_WERROR=ON"
RUN_TIDY=0
RUN_FORMAT=0
TSAN=0
for arg in "$@"; do
    case "$arg" in
      --sanitize|--sanitize=address)
        BUILD_DIR=build-sanitize
        CMAKE_EXTRA="-DGAZE_SANITIZE=address"
        ;;
      --sanitize=thread)
        BUILD_DIR=build-sanitize-thread
        CMAKE_EXTRA="-DGAZE_SANITIZE=thread"
        TSAN=1
        ;;
      --tidy)
        RUN_TIDY=1
        ;;
      --format)
        RUN_FORMAT=1
        ;;
      *)
        echo "usage: $0 [--sanitize[=address|thread]] [--tidy] [--format]" >&2
        exit 2
        ;;
    esac
done

# Stage 1: the linter gates everything — it is pure python and fails
# in under a second, before any compile time is spent.
echo "== gaze_lint =="
python3 scripts/lint/gaze_lint.py

if [ "$RUN_FORMAT" = 1 ]; then
    echo "== clang-format (diff-only) =="
    if command -v clang-format >/dev/null 2>&1; then
        # shellcheck disable=SC2046
        clang-format --dry-run -Werror \
            $(find src bench tests examples \
                -name '*.cc' -o -name '*.hh' -o -name '*.cpp')
        echo "clang-format: clean"
    else
        echo "clang-format: not installed, stage SKIPPED"
    fi
fi

# $CMAKE_EXTRA is deliberately unquoted: it is a flag list.
# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . $CMAKE_EXTRA
cmake --build "$BUILD_DIR" -j

if [ "$RUN_TIDY" = 1 ]; then
    echo "== clang-tidy =="
    if command -v clang-tidy >/dev/null 2>&1; then
        # shellcheck disable=SC2046
        clang-tidy -p "$BUILD_DIR" --quiet \
            $(find src -name '*.cc')
        echo "clang-tidy: clean"
    else
        echo "clang-tidy: not installed, stage SKIPPED"
    fi
fi

cd "$BUILD_DIR"

if [ "$TSAN" = 1 ]; then
    # The TSan gate is focused: the concurrency-labeled tests hammer
    # the ThreadPool, the shared BaselineCache (incl. LRU eviction),
    # two in-process campaign shards publishing into one cache dir,
    # and the campaign service (multi-client dedup + the socket
    # daemon end to end). Simulation-heavy
    # tier1 tests run 10-20x slower under TSan and exercise no
    # threading the stress tests don't; the address gate covers them.
    ctest -L concurrency --output-on-failure --stop-on-failure
    echo "check.sh: TSan gate passed"
    exit 0
fi

ctest -L tier1 --output-on-failure --stop-on-failure -j

# Prefetcher-registry smoke (runs under the sanitize gate too):
# rendering the JSON listing round-trips every registered scheme
# through the registry — parse, canonicalize, build, storageBits() —
# and registry_check.py asserts the contract on the result: every
# scheme has a canonical spelling, a sane storage_kib and non-empty
# docs.
./src/gaze_sim --list-prefetchers=json > registry.json
python3 ../scripts/lint/registry_check.py \
    --require=gaze,vberti,sms,dspatch,ip_stride registry.json
./src/gaze_campaign describe > /dev/null

# Trace subsystem smoke: record two workloads, validate the files,
# inspect them as JSON, replay them through the suite runner.
SMOKE_DIR=check_traces
rm -rf "$SMOKE_DIR"
GAZE_SIM_SCALE=0.02 ./src/gaze_trace record \
    --workloads=leslie3d,mcf --out-dir="$SMOKE_DIR"
./src/gaze_trace validate "$SMOKE_DIR"/leslie3d.gzt "$SMOKE_DIR"/mcf.gzt
./src/gaze_trace info --json "$SMOKE_DIR"/leslie3d.gzt > /dev/null
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=gaze --workloads=leslie3d,mcf \
    --trace-dir="$SMOKE_DIR" --warmup=2000 --sim=8000 \
    --out="$SMOKE_DIR"/BENCH_check.json

# Campaign cache smoke: 2-cell campaign twice (second run must be
# 100% cache hits, byte-identical report) + sharded equivalence.
GAZE_SIM_SCALE=0.02 sh ../scripts/campaign_smoke.sh \
    ./src/gaze_campaign check_campaign

# Campaign service smoke: a real daemon on a temp socket must answer
# a submit with bytes identical to the offline pipeline, serve a
# resubmit from cache (enqueued=0), answer status on both producers,
# and drain cleanly on SIGTERM (serve_smoke.sh asserts each stage).
GAZE_SIM_SCALE=0.02 sh ../scripts/serve_smoke.sh \
    ./src/gaze_serve ./src/gaze_campaign check_serve \
    ../scripts/validate_obs.py

# Engine throughput smoke: one short event-engine cell must simulate
# at a positive Minstr/s (asserted inside the binary, printed here so
# the gate records the number) and skip idle cycles, and the quick
# mode's cross-engine identity gate (polled == event == auto ==
# threaded) dies fatally on any mismatch. No pipeline: the binary's
# exit status must reach set -e.
GAZE_SIM_SCALE=0.02 ./bench/bench_engine --quick > engine_smoke.txt
cat engine_smoke.txt
grep -q "Minstr/s" engine_smoke.txt
grep -q "metrics identical" engine_smoke.txt

# Structure microbench smoke: the self-timed MshrTable/LruTable
# harness must run its quick slice and report every structure (the
# numbers are informational; a crash or a missing row is the failure).
./bench/micro_structures --quick > micro_smoke.txt
grep -q "MshrTable find (hit)" micro_smoke.txt
grep -q "LruTable insert" micro_smoke.txt

# Adaptive + threaded engine smoke through the real CLI: the auto
# engine must run a matrix end to end, and a 4-core mix must run on
# a 4-thread slice team (bit-identity is the differential suite's
# job; this proves the flags work from the binary).
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=ip_stride --workloads=canneal,leslie3d \
    --engine=auto --warmup=2000 --sim=8000 --engine-stats \
    --out=engine_auto_smoke.json
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=ip_stride --workloads=mcf \
    --cores=4 --sim-threads=4 --warmup=1000 --sim=4000 \
    --out=engine_threaded_smoke.json

# Observability smoke: one matrix with the tracer and sampler on must
# leave a valid Chrome-trace JSON (validate_obs.py pins the span
# nesting + metadata contract, fail-fast) and an interval-timeline
# CSV with the canonical header.
GAZE_SIM_SCALE=0.02 ./src/gaze_sim --quiet \
    --prefetchers=gaze,ip_stride --workloads=mcf \
    --warmup=2000 --sim=8000 \
    --obs-trace=obs_smoke_trace.json \
    --obs-timeline=obs_smoke_timeline.csv \
    --obs-interval=2048 \
    --out=obs_smoke.json
python3 ../scripts/validate_obs.py obs_smoke_trace.json
head -1 obs_smoke_timeline.csv | grep -q "^prefetcher,workload,cycle,"

# Perf-regression gate, normal build only: sanitizer instrumentation
# slows the simulator 5-20x, so those builds would always "regress".
# The fresh run uses the committed baseline's own scale so the work
# matches; bench_compare.py skips itself on a host mismatch.
if [ "$BUILD_DIR" = build ]; then
    echo "== bench_compare =="
    BASE_SCALE=$(python3 -c "import json; \
print(json.load(open('../BENCH_engine.json'))['scale'])")
    GAZE_SIM_SCALE="$BASE_SCALE" ./bench/bench_engine \
        > bench_engine_full.txt
    tail -n 6 bench_engine_full.txt
    python3 ../scripts/bench_compare.py \
        ../BENCH_engine.json BENCH_engine.json
fi

echo "check.sh: all stages passed"
