/**
 * @file
 * Figure 7: overall prefetch accuracy (L1D + L2C fills, §IV-A3) of
 * the nine evaluated prefetchers per suite.
 *
 * Paper shape: Gaze second-highest behind vBerti (within ~4% of it
 * outside Cloud), clearly above PMP (+22.5%) and DSPatch (+37.6%);
 * vBerti/IP-stride highly accurate on Cloud but with low coverage.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 7", "prefetch accuracy per suite");

    RunConfig cfg;
    Runner runner(cfg);

    std::vector<std::string> headers = {"prefetcher"};
    for (const auto &s : mainSuites())
        headers.push_back(s);
    headers.push_back("AVG");
    TextTable table(headers);

    for (const auto &pf : fig6Prefetchers()) {
        std::vector<std::string> row = {pf};
        double sum = 0;
        for (const auto &suite : mainSuites()) {
            SuiteSummary s =
                evaluateSuite(runner, suiteWorkloads(suite), PfSpec{pf});
            row.push_back(TextTable::pct(s.accuracy));
            sum += s.accuracy;
        }
        row.push_back(TextTable::pct(sum / mainSuites().size()));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: Gaze accuracy ~2nd best overall; "
                "above SMS +4.7%%, Bingo +3.6%%, DSPatch +37.6%%, "
                "PMP +22.5%%; vBerti best outside Cloud.\n");
    return 0;
}
