/**
 * @file
 * Figure 8: LLC miss coverage and late-prefetch fraction per suite.
 *
 * Paper shape: Gaze coverage at the Bingo/PMP level and +6.6% over
 * vBerti; Gaze timeliness second-best with only ~0.5pp more late
 * prefetches than vBerti (12.3% vs 11.8%) despite waiting for the
 * second access; IPCP/SPP-PPF notably late.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 8", "LLC coverage and late fraction per suite");

    RunConfig cfg;
    Runner runner(cfg);

    std::vector<std::string> headers = {"prefetcher"};
    for (const auto &s : mainSuites())
        headers.push_back(s);
    headers.push_back("AVG-cov");
    headers.push_back("AVG-late");
    TextTable table(headers);

    for (const auto &pf : fig6Prefetchers()) {
        std::vector<std::string> row = {pf};
        double cov_sum = 0, late_sum = 0;
        for (const auto &suite : mainSuites()) {
            SuiteSummary s =
                evaluateSuite(runner, suiteWorkloads(suite), PfSpec{pf});
            row.push_back(TextTable::pct(s.coverage));
            cov_sum += s.coverage;
            late_sum += s.lateFraction;
        }
        row.push_back(TextTable::pct(cov_sum / mainSuites().size()));
        row.push_back(TextTable::pct(late_sum / mainSuites().size()));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: Gaze coverage ~ Bingo ~ PMP, "
                "vBerti lowest of the four; Gaze late fraction "
                "~12.3%% vs vBerti 11.8%%.\n");
    return 0;
}
