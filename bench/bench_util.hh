/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard header
 * printing, suite/prefetcher matrices, and representative trace lists.
 * All benches honor GAZE_SIM_SCALE for trace/interval scaling.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/suites.hh"

namespace gaze::bench
{

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("simulation scale: %.2fx (GAZE_SIM_SCALE), "
                "warm/sim per run: %llu/%llu instructions\n",
                simScale(),
                static_cast<unsigned long long>(RunConfig{}.effectiveWarmup()),
                static_cast<unsigned long long>(RunConfig{}.effectiveSim()));
    std::printf("==================================================="
                "=========\n\n");
}

/** The nine Fig. 6 prefetchers in the paper's plotting order. */
inline std::vector<std::string>
fig6Prefetchers()
{
    return {"ip_stride", "spp_ppf", "ipcp", "vberti", "sms",
            "bingo", "dspatch", "pmp", "gaze"};
}

/** The six multi-core prefetchers of Fig. 14. */
inline std::vector<std::string>
fig14Prefetchers()
{
    return {"spp_ppf", "vberti", "bingo", "dspatch", "pmp", "gaze"};
}

/** Representative single-core traces used by Figs. 10/11/16-18. */
inline std::vector<std::string>
representativeTraces()
{
    return {"leslie3d",    "bwaves_s",   "lbm",         "milc",
            "mcf",         "fotonik3d_s", "xalancbmk_s", "gcc_s",
            "PageRank-1",  "PageRank-61", "BFS-17",      "BC-4",
            "MIS-17",      "streamcluster", "canneal",
            "cassandra-p0c0", "nutch-p0c0", "stream-p1c0"};
}

/** Geomean over per-trace speedups of @p pf on the named traces. */
inline double
speedupOver(Runner &runner, const std::vector<std::string> &names,
            const PfSpec &pf)
{
    std::vector<double> s;
    for (const auto &n : names)
        s.push_back(runner.evaluate(findWorkload(n), pf).speedup);
    return geomean(s);
}

} // namespace gaze::bench
