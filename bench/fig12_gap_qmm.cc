/**
 * @file
 * Figure 12: vBerti / PMP / Gaze on (a) the GAP graph-analytics suite
 * and (b) the QMM industry traces, split into server (front-end-bound)
 * and client (memory-intensive) halves.
 *
 * Paper shape: on GAP, Gaze edges out vBerti (+1.3%) and PMP (+2.7%),
 * with PMP degrading on irregular traces. On QMM servers data
 * prefetching cannot help (Gaze -1.6%, vBerti +0.4%, PMP -10.2%);
 * clients behave like SPEC.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

namespace
{

void
section(Runner &runner, const char *title,
        const std::vector<WorkloadDef> &traces)
{
    std::printf("--- %s ---\n", title);
    TextTable table({"trace", "vBerti", "PMP", "Gaze"});
    std::vector<double> sb, sp, sg;
    for (const auto &w : traces) {
        double b = runner.evaluate(w, PfSpec{"vberti"}).speedup;
        double p = runner.evaluate(w, PfSpec{"pmp"}).speedup;
        double g = runner.evaluate(w, PfSpec{"gaze"}).speedup;
        table.addRow({w.name, TextTable::fmt(b), TextTable::fmt(p),
                      TextTable::fmt(g)});
        sb.push_back(b);
        sp.push_back(p);
        sg.push_back(g);
        std::fflush(stdout);
    }
    table.addRow({"AVG", TextTable::fmt(geomean(sb)),
                  TextTable::fmt(geomean(sp)),
                  TextTable::fmt(geomean(sg))});
    std::printf("%s\n", table.toString().c_str());
}

} // namespace

int
main()
{
    banner("Figure 12", "GAP and QMM suites: vBerti / PMP / Gaze");

    RunConfig cfg;
    Runner runner(cfg);

    section(runner, "(a) GAP", suiteWorkloads("gap"));
    section(runner, "(b) QMM server", suiteWorkloads("qmm_server"));
    section(runner, "(b) QMM client", suiteWorkloads("qmm_client"));

    std::printf("paper reference: GAP avg Gaze > vBerti (+1.3%%) > "
                "PMP (+2.7%% behind); QMM server: Gaze -1.6%%, "
                "vBerti +0.4%%, PMP -10.2%%; client gains like SPEC.\n");
    return 0;
}
