/**
 * @file
 * Table I: Gaze's detailed storage requirements, structure by
 * structure, computed from the field lists, plus the relative
 * area/energy proxies of §III-E (pattern-entry bit widths).
 */

#include "bench_util.hh"
#include "harness/storage_model.hh"
#include "prefetchers/factory.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Table I", "Gaze storage breakdown");

    TextTable table({"structure", "description", "bytes"});
    double total = 0;
    for (const auto &row : gazeStorageBreakdown()) {
        char bytes[32];
        std::snprintf(bytes, sizeof(bytes), "%.1f", row.bits / 8.0);
        table.addRow({row.structure, row.description, bytes});
        total += row.kib();
    }
    std::printf("%s\ntotal: %.2fKB (paper: 4.46KB; 31x below Bingo, "
                "0.54KB below PMP)\n\n", table.toString().c_str(),
                total);

    // §III-E area/energy proxy: bits per pattern-history line. Gaze
    // stores a 64b bit vector where PMP stores a 320b counter vector
    // (plus a 160b coarse vector) — the source of its ~29% area and
    // <46% access-energy figures.
    TextTable proxy({"scheme", "pattern line width", "relative"});
    proxy.addRow({"gaze PHT", "64b bit vector", "1.0x"});
    proxy.addRow({"pmp OPT", "384b counter vector (64x6b)", "6.0x"});
    std::printf("pattern-line width proxy (area/energy driver):\n%s\n",
                proxy.toString().c_str());
    return 0;
}
