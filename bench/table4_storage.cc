/**
 * @file
 * Table IV: configuration and storage overhead of every evaluated
 * prefetcher — the paper's published budgets next to this repo's
 * field-level model of each implementation.
 */

#include "bench_util.hh"
#include "harness/storage_model.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Table IV", "evaluated prefetcher configurations + storage");

    TextTable table({"scheme", "configuration", "modeled", "paper"});
    for (const auto &row : evaluatedSchemeStorage()) {
        char modeled[32], paper[32];
        std::snprintf(modeled, sizeof(modeled), "%.2fKB", row.kib());
        std::snprintf(paper, sizeof(paper), "%.2fKB", row.paperKib);
        table.addRow({row.scheme, row.configuration, modeled, paper});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("note: modeled figures count the structures this repo "
                "implements field by field; the paper's figures follow "
                "its own accounting (e.g. vBerti's latency bits live "
                "in extended L1D lines).\n");
    return 0;
}
