/**
 * @file
 * Figure 4: effect of the number of aligned initial accesses required
 * for a match (1..4) on IPC, accuracy and coverage across the
 * evaluation set.
 *
 * Paper shape: accuracy climbs steeply from n=1 (56%) through n=2
 * (75%) to n=4 (~90%), while coverage and IPC peak at n=2 and fall
 * beyond it — the design point Gaze picks.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 4", "number of initial accesses used for matching");

    RunConfig cfg;
    Runner runner(cfg);

    // The paper averages over the whole evaluation set; we use the
    // five main suites.
    std::vector<WorkloadDef> all;
    for (const auto &s : mainSuites())
        for (const auto &w : suiteWorkloads(s))
            all.push_back(w);

    TextTable table({"n", "norm. IPC", "accuracy", "coverage"});
    for (uint32_t n = 1; n <= 4; ++n) {
        std::string spec = "gaze:n=" + std::to_string(n);
        std::vector<double> speedups;
        double acc = 0, cov = 0;
        for (const auto &w : all) {
            PrefetchMetrics m = runner.evaluate(w, PfSpec{spec});
            speedups.push_back(m.speedup);
            acc += m.accuracy;
            cov += m.coverage;
        }
        table.addRow({std::to_string(n),
                      TextTable::fmt(geomean(speedups)),
                      TextTable::pct(acc / all.size()),
                      TextTable::pct(cov / all.size())});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: IPC 1.16/1.20/1.18/~1.16, accuracy "
                "56%%/75%%/87%%/90%%, coverage 50%%/50%%/45%%/40%% "
                "for n=1..4 — n=2 is the balance point.\n");
    return 0;
}
