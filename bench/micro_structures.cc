/**
 * @file
 * Google-benchmark microbenchmarks of the hot structures: PHT lookup,
 * FT/AT flow through GazePrefetcher::onAccess, cache tick, and DRAM
 * scheduling. These verify the "each table can be accessed within a
 * single CPU cycle" spirit of §III-E: the structures are tiny and the
 * operations O(associativity).
 */

#include <benchmark/benchmark.h>

#include "common/lru_table.hh"
#include "core/gaze.hh"
#include "core/pattern_history.hh"

namespace
{

using namespace gaze;

void
BM_LruTableFind(benchmark::State &state)
{
    LruTable<uint64_t> table(64, 4);
    for (uint64_t i = 0; i < 256; ++i)
        table.insert(i % 64, i, i);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(i % 64, i % 256));
        ++i;
    }
}
BENCHMARK(BM_LruTableFind);

void
BM_PhtLookup(benchmark::State &state)
{
    GazeConfig cfg;
    PatternHistoryTable pht(cfg);
    Bitset fp(64);
    fp.set(3);
    fp.set(7);
    for (uint16_t t = 0; t < 64; ++t) {
        InitialAccesses ev;
        ev.push(t);
        ev.push((t + 3) % 64);
        pht.learn(ev, fp);
    }
    uint16_t t = 0;
    for (auto _ : state) {
        InitialAccesses ev;
        ev.push(t % 64);
        ev.push((t + 3) % 64);
        benchmark::DoNotOptimize(pht.lookup(ev));
        ++t;
    }
}
BENCHMARK(BM_PhtLookup);

void
BM_GazeOnAccess(benchmark::State &state)
{
    GazePrefetcher gaze;
    PrefetcherContext ctx; // no cache: issue path unused in this bench
    ctx.level = levelL1;
    gaze.attach(ctx);

    DemandAccess a;
    a.type = AccessType::Load;
    a.pc = 0x400100;
    uint64_t i = 0;
    for (auto _ : state) {
        a.vaddr = 0x10000000 + (i % 4096) * 64;
        a.cycle = i;
        gaze.onAccess(a);
        ++i;
    }
}
BENCHMARK(BM_GazeOnAccess);

} // namespace

BENCHMARK_MAIN();
