/**
 * @file
 * micro_structures — self-timed microbenchmarks of the hot-path data
 * structures, in isolation from the simulator: MshrTable
 * lookup/insert/erase (vs the std::unordered_map it replaced),
 * LruTable find/insert/acquire over the split tag/payload layout, PHT
 * lookup, and the full GazePrefetcher::onAccess flow. These verify the
 * "each table can be accessed within a single CPU cycle" spirit of
 * §III-E — the structures are tiny and the operations
 * O(associativity) — and give the per-structure numbers behind the
 * engine-level Minstr/s deltas in BENCH_engine.json.
 *
 * Self-timed on purpose: no Google Benchmark dependency, so the
 * harness builds and runs everywhere the simulator does. Each bench
 * runs a fixed deterministic op sequence, takes the best wall time of
 * five repeats (the least noisy estimator for sub-second loops), and
 * reports ns/op and Mops/s.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/lru_table.hh"
#include "core/gaze.hh"
#include "core/pattern_history.hh"
#include "sim/mshr_table.hh"

namespace
{

using namespace gaze;

/** Keep a value (and everything feeding it) out of the optimizer. */
template <typename T>
inline void
sink(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

/** Best-of-@p repeats wall time for fn(), reported as ns per op. */
template <typename Fn>
double
nsPerOp(uint64_t ops, Fn &&fn, int repeats = 5)
{
    using clk = std::chrono::steady_clock;
    double best = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
        auto t0 = clk::now();
        fn();
        auto t1 = clk::now();
        double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count()
            / double(ops);
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

void
report(const char *name, double ns)
{
    std::printf("%-36s | %8.2f ns/op | %8.1f Mops/s\n", name, ns,
                ns > 0.0 ? 1e3 / ns : 0.0);
}

/** Payload shaped like a cache MshrEntry (a few words, trivially
 *  copyable) so insert/erase costs are representative. */
struct FakeEntry
{
    uint64_t a = 0, b = 0, c = 0, d = 0;
};

constexpr uint32_t kMshrs = 64;    // L2-sized MSHR file
constexpr uint64_t kOps = 1 << 20; // per-bench op count

/** Deterministic 64-bit mix (addresses; no libc rand). */
inline uint64_t
mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

inline Addr
blockAddr(uint64_t i)
{
    return Addr(mix(i) << 6); // block-aligned, well spread
}

// --- MshrTable ---------------------------------------------------------

void
benchMshr()
{
    // Steady state at half occupancy (a busy but not saturated MSHR
    // file): every op inserts one miss and retires another.
    {
        MshrTable<FakeEntry> t(kMshrs);
        for (uint64_t i = 0; i < kMshrs / 2; ++i)
            t.insert(blockAddr(i)).a = i;
        report("MshrTable insert+erase (50% full)",
               nsPerOp(2 * kOps, [&] {
                   for (uint64_t i = 0; i < kOps; ++i) {
                       t.insert(blockAddr(kMshrs / 2 + i)).a = i;
                       t.erase(blockAddr(i + 1));
                   }
                   // Walk i backwards so the table returns to its
                   // pre-rep state and every repeat times the same
                   // key sequence.
                   for (uint64_t i = kOps; i > 0; --i) {
                       t.insert(blockAddr(i)).a = i;
                       t.erase(blockAddr(kMshrs / 2 + i - 1));
                   }
               }));
    }

    {
        MshrTable<FakeEntry> t(kMshrs);
        for (uint64_t i = 0; i < kMshrs / 2; ++i)
            t.insert(blockAddr(i)).a = i;
        report("MshrTable find (hit)", nsPerOp(kOps, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps; ++i)
                       acc += t.find(blockAddr(i % (kMshrs / 2)))->a;
                   sink(acc);
               }));
        report("MshrTable find (miss)", nsPerOp(kOps, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps; ++i)
                       acc += t.find(blockAddr(1000000 + i)) != nullptr;
                   sink(acc);
               }));
        report("MshrTable FIFO walk (32 live)",
               nsPerOp(kOps / 32, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps / (32 * 32); ++i)
                       t.forEachInOrder(
                           [&](Addr, FakeEntry &e) { acc += e.a; });
                   sink(acc);
               }));
    }

    // The structure this table replaced, same op mix, for an honest
    // in-isolation before/after.
    {
        // gaze-lint: allow(hot-container): reference baseline the
        // bench compares the flat table against.
        std::unordered_map<Addr, FakeEntry> t;
        t.reserve(kMshrs * 2);
        for (uint64_t i = 0; i < kMshrs / 2; ++i)
            t[blockAddr(i)].a = i;
        report("std::unordered_map insert+erase",
               nsPerOp(2 * kOps, [&] {
                   for (uint64_t i = 0; i < kOps; ++i) {
                       t[blockAddr(kMshrs / 2 + i)].a = i;
                       t.erase(blockAddr(i + 1));
                   }
                   for (uint64_t i = kOps; i > 0; --i) {
                       t[blockAddr(i)].a = i;
                       t.erase(blockAddr(kMshrs / 2 + i - 1));
                   }
               }));
        report("std::unordered_map find (hit)", nsPerOp(kOps, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps; ++i)
                       acc += t.find(blockAddr(i % (kMshrs / 2)))
                                  ->second.a;
                   sink(acc);
               }));
    }
}

// --- LruTable ----------------------------------------------------------

void
benchLru()
{
    // Gaze-FT geometry: 64 sets x 8 ways, word payload.
    {
        LruTable<uint64_t> t(64, 8);
        for (uint64_t i = 0; i < 512; ++i)
            t.insert(i % 64, i, i);
        report("LruTable find (hit, 8-way)", nsPerOp(kOps, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps; ++i)
                       acc += *t.find(i % 64, i % 512);
                   sink(acc);
               }));
        report("LruTable find (miss, 8-way)", nsPerOp(kOps, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps; ++i)
                       acc += t.find(i % 64, 1000 + i) != nullptr;
                   sink(acc);
               }));
        report("LruTable insert (evict, 8-way)", nsPerOp(kOps, [&] {
                   for (uint64_t i = 0; i < kOps; ++i)
                       t.insert(i % 64, 2000 + i, i);
               }));
    }

    // acquire() with a fat payload: the PB's install path. The victim's
    // vector keeps its capacity, so steady state allocates nothing.
    {
        struct Fat
        {
            std::vector<uint8_t> pattern;
        };
        LruTable<Fat> t(32, 8);
        report("LruTable acquire+reinit (fat payload)",
               nsPerOp(kOps / 16, [&] {
                   for (uint64_t i = 0; i < kOps / 16; ++i) {
                       Fat &f = *t.acquire(i % 32, 4000 + i).data;
                       f.pattern.assign(32, uint8_t(i));
                   }
               }));
    }
}

// --- Prefetcher-level flows -------------------------------------------

void
benchPrefetcher()
{
    {
        GazeConfig cfg;
        PatternHistoryTable pht(cfg);
        Bitset fp(64);
        fp.set(3);
        fp.set(7);
        for (uint16_t tr = 0; tr < 64; ++tr) {
            InitialAccesses ev;
            ev.push(tr);
            ev.push((tr + 3) % 64);
            pht.learn(ev, fp);
        }
        report("PHT lookup", nsPerOp(kOps / 16, [&] {
                   uint64_t acc = 0;
                   for (uint64_t i = 0; i < kOps / 16; ++i) {
                       InitialAccesses ev;
                       ev.push(uint16_t(i % 64));
                       ev.push(uint16_t((i + 3) % 64));
                       acc += pht.lookup(ev) != nullptr;
                   }
                   sink(acc);
               }));
    }

    {
        GazePrefetcher gz;
        PrefetcherContext ctx; // no cache: issue path unused here
        ctx.level = levelL1;
        gz.attach(ctx);
        DemandAccess a;
        a.type = AccessType::Load;
        a.pc = 0x400100;
        uint64_t i = 0;
        report("GazePrefetcher onAccess", nsPerOp(kOps / 16, [&] {
                   for (uint64_t n = 0; n < kOps / 16; ++n, ++i) {
                       a.vaddr = 0x10000000 + (i % 4096) * 64;
                       a.cycle = i;
                       gz.onAccess(a);
                   }
               }));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::fprintf(stderr,
                         "unknown option '%s' "
                         "(usage: micro_structures [--quick])\n",
                         argv[i]);
            return 1;
        }
    }

    std::printf("micro_structures — hot-structure ns/op "
                "(best of 5, %llu ops each)\n\n",
                static_cast<unsigned long long>(kOps));
    benchMshr();
    benchLru();
    if (!quick)
        benchPrefetcher();
    return 0;
}
