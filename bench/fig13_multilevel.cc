/**
 * @file
 * Figure 13: multi-level prefetching. Group 1 pairs each recent L1D
 * prefetcher with an L2C prefetcher (SPP-PPF or Bingo); group 2 uses
 * the commercial IP-stride at L1D with each scheme at L2C.
 *
 * Paper shape: Gaze+Bingo is the only combination marginally above
 * Gaze-alone (+0.34%); every other combo falls short of Gaze alone,
 * and L2 aggressiveness can even degrade — multi-level prefetching
 * buys nothing over a good L1D spatial prefetcher.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 13", "multi-level prefetching combinations");

    RunConfig cfg;
    Runner runner(cfg);

    // A mixed single-core set keeps this bench affordable.
    const std::vector<std::string> traces = {
        "leslie3d", "fotonik3d_s", "bwaves_s", "mcf",
        "PageRank-61", "BC-4", "cassandra-p0c0", "gcc_s"};

    double gaze_alone = speedupOver(runner, traces, PfSpec{"gaze"});
    std::printf("reference: Gaze alone at L1D = %.3f\n\n", gaze_alone);

    TextTable g1({"L1 + L2 combo", "speedup", "vs gaze-alone"});
    const std::vector<std::string> l1s = {"vberti", "pmp", "dspatch",
                                          "ipcp", "gaze"};
    const std::vector<std::string> l2s = {"spp_ppf", "bingo"};
    for (const auto &l1 : l1s) {
        for (const auto &l2 : l2s) {
            PfSpec pf{l1, l2};
            double s = speedupOver(runner, traces, pf);
            char delta[32];
            std::snprintf(delta, sizeof(delta), "%+.2f%%",
                          (s / gaze_alone - 1.0) * 100.0);
            g1.addRow({pf.label(), TextTable::fmt(s), delta});
            std::fflush(stdout);
        }
    }
    std::printf("Group 1 (recent L1D prefetchers + L2):\n%s\n",
                g1.toString().c_str());

    TextTable g2({"L1 + L2 combo", "speedup", "vs gaze-alone"});
    const std::vector<std::string> l2_group2 = {
        "vberti", "sms", "bingo", "dspatch", "pmp", "gaze"};
    for (const auto &l2 : l2_group2) {
        PfSpec pf{"ip_stride", l2};
        double s = speedupOver(runner, traces, pf);
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+.2f%%",
                      (s / gaze_alone - 1.0) * 100.0);
        g2.addRow({pf.label(), TextTable::fmt(s), delta});
        std::fflush(stdout);
    }
    std::printf("Group 2 (commercial IP-stride at L1D + L2):\n%s\n",
                g2.toString().c_str());

    std::printf("paper reference: best combo Gaze+Bingo at +0.34%% "
                "over Gaze alone; all others below Gaze alone.\n");
    return 0;
}
