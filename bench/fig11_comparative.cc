/**
 * @file
 * Figure 11: detailed per-trace comparison of the three latest
 * low-cost spatial prefetchers — vBerti, PMP, Gaze — on
 * representative traces, with category averages and the redundant-
 * prefetch statistic behind the §IV-B3 vBerti analysis.
 *
 * Paper shape: vBerti lags where spatial streaming exists (redundant
 * prefetches clog the PQ); PMP collapses on complex-pattern traces
 * (canneal/PageRank/cassandra classes); Gaze handles both, with worst-
 * case decline far milder than PMP's.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 11", "vBerti vs PMP vs Gaze, representative traces");

    RunConfig cfg;
    Runner runner(cfg);

    TextTable table({"trace", "vBerti", "PMP", "Gaze",
                     "vBerti redundant pf"});
    std::vector<double> sb, sp, sg;
    double worst_b = 10, worst_p = 10, worst_g = 10;
    for (const auto &name : representativeTraces()) {
        const WorkloadDef &w = findWorkload(name);
        PfSpec berti{"vberti"};
        RunResult rb = runner.run(w, berti);
        PrefetchMetrics mb = computeMetrics(runner.baseline(w), rb);
        double b = mb.speedup;
        double p = runner.evaluate(w, PfSpec{"pmp"}).speedup;
        double g = runner.evaluate(w, PfSpec{"gaze"}).speedup;
        // Redundant prefetches: dropped-on-tag-hit at the L1D.
        uint64_t redundant = rb.l1d.pfDroppedHit;
        table.addRow({name, TextTable::fmt(b), TextTable::fmt(p),
                      TextTable::fmt(g), std::to_string(redundant)});
        sb.push_back(b);
        sp.push_back(p);
        sg.push_back(g);
        worst_b = std::min(worst_b, b);
        worst_p = std::min(worst_p, p);
        worst_g = std::min(worst_g, g);
        std::fflush(stdout);
    }
    table.addRow({"AVG", TextTable::fmt(geomean(sb)),
                  TextTable::fmt(geomean(sp)),
                  TextTable::fmt(geomean(sg)), ""});
    table.addRow({"WORST", TextTable::fmt(worst_b),
                  TextTable::fmt(worst_p), TextTable::fmt(worst_g),
                  ""});
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: max decline Gaze -6.9%% vs PMP "
                "-27.3%% and vBerti -8.5%%; Gaze leads the average "
                "(paper avg_all 1.88 class).\n");
    return 0;
}
