/**
 * @file
 * Figure 17: Gaze's sensitivity to (a) region size (0.5-4KB) and (b)
 * PHT size (128-1024 entries), normalized to the 4KB/256-entry
 * baseline configuration.
 *
 * Paper shape: smaller regions lose coverage (-9.1% / -4.4% / -1.6%
 * for 0.5/1/2KB); the 256-entry PHT is the knee — 128 costs ~0.6%,
 * 512/1024 gain only ~0.1%.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

namespace
{

const std::vector<std::string> traces = {
    "bwaves",      "lbm",        "gcc_s",        "mcf_s",
    "xalancbmk_s", "pop2_s",     "fotonik3d_s",  "roms_s",
    "PageRank-1",  "PageRank-61", "BellmanFord-4", "streamcluster"};

} // namespace

int
main()
{
    banner("Figure 17", "Gaze region-size and PHT-size sensitivity");

    RunConfig cfg;
    Runner runner(cfg);

    double base = speedupOver(runner, traces, PfSpec{"gaze"});
    std::printf("baseline (4KB region, 256-entry PHT): %.3f\n\n", base);

    {
        std::printf("--- (a) region size, normalized to 4KB ---\n");
        TextTable table({"region", "speedup", "normalized"});
        for (uint64_t bytes : {512, 1024, 2048, 4096}) {
            std::string spec = "gaze:region=" + std::to_string(bytes);
            // PHT sets track the offset count for sub-4KB regions.
            if (bytes < 4096)
                spec += ":phtsets="
                        + std::to_string(bytes / blockSize);
            double s = speedupOver(runner, traces, PfSpec{spec});
            table.addRow({std::to_string(bytes / 1024.0).substr(0, 4)
                              + "KB",
                          TextTable::fmt(s),
                          TextTable::fmt(s / base)});
            std::fflush(stdout);
        }
        std::printf("%s\n", table.toString().c_str());
    }
    {
        std::printf("--- (b) PHT entries, normalized to 256 ---\n");
        TextTable table({"entries", "speedup", "normalized"});
        for (uint32_t ways : {2, 4, 8, 16}) {
            uint32_t entries = 64 * ways;
            std::string spec =
                "gaze:phtways=" + std::to_string(ways);
            double s = speedupOver(runner, traces, PfSpec{spec});
            table.addRow({std::to_string(entries), TextTable::fmt(s),
                          TextTable::fmt(s / base)});
            std::fflush(stdout);
        }
        std::printf("%s\n", table.toString().c_str());
    }

    std::printf("paper reference: 0.5/1/2KB regions cost 9.1/4.4/1.6%%;"
                " 128-entry PHT costs ~0.6%%, 512/1024 gain ~0.1%%.\n");
    return 0;
}
