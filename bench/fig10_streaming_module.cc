/**
 * @file
 * Figure 10: effect of the dedicated streaming module. PHT4SS learns
 * dense streaming patterns in the PHT; SM4SS uses the DPCT+DC module;
 * both restricted to streaming-case regions (first two blocks 0,1).
 * Full Gaze shown for reference.
 *
 * Paper shape: on initial (data-preparation) phases all three tie; on
 * compute phases with interleaved patterns PHT4SS misuses the dense
 * pattern while SM4SS ~ Gaze stay ahead.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 10", "streaming module: PHT4SS vs SM4SS vs Gaze");

    RunConfig cfg;
    Runner runner(cfg);

    // Streaming-relevant traces: pure streams, Ligra init (streaming)
    // and compute (interleaved) phases, plus the hazard traces.
    const std::vector<std::string> traces = {
        "bwaves",     "leslie3d",    "streamcluster", "lbm_s",
        "PageRank-1", "PageRank-61", "BFS-1",         "BFS-17",
        "BC-4",       "MIS-17"};

    TextTable table({"trace", "PHT4SS", "SM4SS", "Gaze"});
    std::vector<double> s1, s2, s3;
    for (const auto &name : traces) {
        const WorkloadDef &w = findWorkload(name);
        double a = runner.evaluate(w, PfSpec{"gaze:pht4ss"}).speedup;
        double b = runner.evaluate(w, PfSpec{"gaze:sm4ss"}).speedup;
        double c = runner.evaluate(w, PfSpec{"gaze"}).speedup;
        table.addRow({name, TextTable::fmt(a), TextTable::fmt(b),
                      TextTable::fmt(c)});
        s1.push_back(a);
        s2.push_back(b);
        s3.push_back(c);
        std::fflush(stdout);
    }
    table.addRow({"AVG", TextTable::fmt(geomean(s1)),
                  TextTable::fmt(geomean(s2)),
                  TextTable::fmt(geomean(s3))});
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: near-ties on initial phases; on "
                "compute phases SM4SS ~ Gaze > PHT4SS (e.g. averages "
                "2.24/2.24/2.67 vs 1.87/1.95/2.02 classes).\n");
    return 0;
}
