/**
 * @file
 * Figure 9: effect of the pattern characterization scheme — naive
 * trigger-offset (Offset), Gaze's two-access PHT without the
 * streaming module (Gaze-PHT), and full Gaze — per trace, sorted by
 * baseline-relative speedup, plus averages.
 *
 * Paper shape: averages 1.16 / 1.24 / 1.28. On irregular traces
 * (left), Offset misuses patterns while Gaze-PHT stays safe; on
 * regular traces (right) the streaming module adds the final gap.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 9", "Offset vs Gaze-PHT vs full Gaze, per trace");

    RunConfig cfg;
    Runner runner(cfg);

    std::vector<WorkloadDef> all;
    for (const auto &s : mainSuites())
        for (const auto &w : suiteWorkloads(s))
            all.push_back(w);

    struct Row
    {
        std::string name;
        double offset, pht, full;
    };
    std::vector<Row> rows;
    for (const auto &w : all) {
        Row r;
        r.name = w.name;
        r.offset = runner.evaluate(w, PfSpec{"gaze:n=1"}).speedup;
        r.pht = runner.evaluate(w, PfSpec{"gaze:nostream"}).speedup;
        r.full = runner.evaluate(w, PfSpec{"gaze"}).speedup;
        rows.push_back(r);
        std::fflush(stdout);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.full < b.full; });

    TextTable table({"trace", "Offset", "Gaze-PHT", "full Gaze"});
    std::vector<double> so, sp, sf;
    for (const auto &r : rows) {
        table.addRow({r.name, TextTable::fmt(r.offset),
                      TextTable::fmt(r.pht), TextTable::fmt(r.full)});
        so.push_back(r.offset);
        sp.push_back(r.pht);
        sf.push_back(r.full);
    }
    table.addRow({"AVG", TextTable::fmt(geomean(so)),
                  TextTable::fmt(geomean(sp)),
                  TextTable::fmt(geomean(sf))});
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: AVG 1.16 (Offset) / 1.24 (Gaze-PHT) "
                "/ 1.28 (full Gaze).\n");
    return 0;
}
