/**
 * @file
 * Figure 14: multi-core speedup in (a) homogeneous and (b)
 * heterogeneous mixes on 1/2/4/8 cores, for the six contending
 * prefetchers. DRAM channels/ranks scale with the core count per
 * Table II, so bandwidth contention intensifies with cores.
 *
 * Paper shape: all schemes degrade as cores grow, but Gaze degrades
 * most gracefully thanks to accuracy; PMP and DSPatch fall hardest
 * (>= 4 cores); at 8 cores Gaze leads Bingo +3.1%, PMP +11.7%,
 * vBerti +9.0% (homogeneous).
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

namespace
{

/** Homogeneous workloads: one trace copied per core. */
const std::vector<std::string> homoTraces = {
    "leslie3d", "fotonik3d_s", "PageRank-61", "cassandra-p0c0"};

/** Heterogeneous pool drawn round-robin per mix. */
const std::vector<std::string> heteroPool = {
    "leslie3d", "mcf",        "fotonik3d_s",   "BC-4",
    "bwaves_s", "canneal",    "cassandra-p0c0", "gcc_s"};

double
homoSpeedup(const RunConfig &base, uint32_t cores,
            const std::string &pf_spec)
{
    std::vector<double> speedups;
    for (const auto &name : homoTraces) {
        RunConfig cfg = base;
        Runner runner(cfg);
        std::vector<WorkloadDef> mix(cores, findWorkload(name));
        speedups.push_back(
            runner.evaluateMix(mix, PfSpec{pf_spec}).speedup);
    }
    return geomean(speedups);
}

double
heteroSpeedup(const RunConfig &base, uint32_t cores,
              const std::string &pf_spec)
{
    std::vector<double> speedups;
    for (uint32_t m = 0; m < 2; ++m) { // two mixes per core count
        RunConfig cfg = base;
        Runner runner(cfg);
        std::vector<WorkloadDef> mix;
        for (uint32_t c = 0; c < cores; ++c)
            mix.push_back(findWorkload(
                heteroPool[(m * 3 + c) % heteroPool.size()]));
        speedups.push_back(
            runner.evaluateMix(mix, PfSpec{pf_spec}).speedup);
    }
    return geomean(speedups);
}

} // namespace

int
main()
{
    banner("Figure 14", "multi-core homogeneous/heterogeneous scaling");

    // Multi-core sims are expensive: shorten the measured interval.
    RunConfig cfg;
    cfg.warmupInstr = scaledRecords(100'000);
    cfg.simInstr = scaledRecords(200'000);

    const uint32_t core_counts[] = {1, 2, 4, 8};

    std::printf("--- (a) homogeneous mixes ---\n");
    TextTable homo({"prefetcher", "1", "2", "4", "8"});
    for (const auto &pf : fig14Prefetchers()) {
        std::vector<std::string> row = {pf};
        for (uint32_t n : core_counts)
            row.push_back(TextTable::fmt(homoSpeedup(cfg, n, pf)));
        homo.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", homo.toString().c_str());

    std::printf("--- (b) heterogeneous mixes ---\n");
    TextTable het({"prefetcher", "1", "2", "4", "8"});
    for (const auto &pf : fig14Prefetchers()) {
        std::vector<std::string> row = {pf};
        for (uint32_t n : core_counts)
            row.push_back(TextTable::fmt(heteroSpeedup(cfg, n, pf)));
        het.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", het.toString().c_str());

    std::printf("paper reference: monotone degradation with cores; "
                "PMP/DSPatch steepest at >=4 cores; 8-core homo: "
                "Gaze over Bingo +3.1%%, PMP +11.7%%, vBerti +9.0%%.\n");
    return 0;
}
