/**
 * @file
 * Figure 1: speedup achieved by the context-based characterization
 * schemes (and Gaze) on CloudSuite vs SPEC17, with storage budgets.
 * Schemes: Offset (64-entry PHT), Offset-opt = PMP, PC (256-entry),
 * PC-opt = DSPatch, PC+Addr = SMS (16k), PC+Addr-opt = Bingo, Gaze.
 *
 * Paper shape: coarse events (Offset/PC classes) are cheap but lose or
 * degrade on Cloud; PC+Addr classes win on Cloud but cost >100KB;
 * Gaze reaches the upper-right corner (best of both) at ~4.5KB.
 */

#include "bench_util.hh"
#include "prefetchers/factory.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 1", "characterization schemes: Cloud vs SPEC17");

    struct Scheme
    {
        const char *label;
        const char *spec;
    };
    const Scheme schemes[] = {
        {"Offset", "sms:scheme=offset"},
        {"Offset-opt (PMP)", "pmp"},
        {"PC", "sms:scheme=pc"},
        {"PC-opt (DSPatch)", "dspatch"},
        {"PC+Addr (SMS)", "sms:scheme=pc+addr"},
        {"PC+Addr-opt (Bingo)", "bingo"},
        {"Gaze", "gaze"},
    };

    RunConfig cfg;
    Runner runner(cfg);
    auto cloud = suiteWorkloads("cloud");
    auto spec17 = suiteWorkloads("spec17");

    TextTable table({"scheme", "cloud speedup", "spec17 speedup",
                     "storage"});
    for (const auto &s : schemes) {
        SuiteSummary c = evaluateSuite(runner, cloud, PfSpec{s.spec});
        SuiteSummary p = evaluateSuite(runner, spec17, PfSpec{s.spec});
        double kib =
            double(makePrefetcher(s.spec)->storageBits()) / 8 / 1024;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fKB", kib);
        table.addRow({s.label, TextTable::fmt(c.speedup),
                      TextTable::fmt(p.speedup), buf});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("paper reference: Offset/PC classes ~<=1.0 on Cloud; "
                "SMS/Bingo ~1.05-1.07 on Cloud at >100KB; Gaze "
                "~1.07 cloud / ~1.33 spec17 at ~4.5KB.\n");
    return 0;
}
