/**
 * @file
 * Figure 18: vGaze (virtual-address Gaze) with region sizes from 4KB
 * to 64KB, normalized to the 4KB baseline. Gaze at the L1D already
 * sees virtual addresses, so large regions need no extra hardware.
 *
 * Paper shape: only long streaming traces (bwaves class) benefit
 * noticeably from larger regions; most workloads' spatial patterns
 * align with 4KB, so bigger regions mostly lose (accuracy falls
 * faster than coverage grows).
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

namespace
{

const std::vector<std::string> traces = {
    "bwaves",      "lbm",         "gcc_s",       "mcf_s",
    "xalancbmk_s", "fotonik3d_s", "PageRank-1",  "PageRank-61",
    "streamcluster"};

} // namespace

int
main()
{
    banner("Figure 18", "vGaze with 4KB-64KB regions");

    RunConfig cfg;
    Runner runner(cfg);

    TextTable table({"trace", "4KB", "8KB", "16KB", "32KB", "64KB"});
    std::map<uint64_t, std::vector<double>> per_size;

    for (const auto &name : traces) {
        const WorkloadDef &w = findWorkload(name);
        std::vector<std::string> row = {name};
        double base = 0;
        for (uint64_t kb : {4, 8, 16, 32, 64}) {
            std::string spec =
                "gaze:region=" + std::to_string(kb * 1024);
            double s = runner.evaluate(w, PfSpec{spec}).speedup;
            if (kb == 4)
                base = s;
            double norm = base > 0 ? s / base : 1.0;
            row.push_back(TextTable::fmt(norm));
            per_size[kb].push_back(norm);
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    std::vector<std::string> avg = {"AVG"};
    for (uint64_t kb : {4, 8, 16, 32, 64})
        avg.push_back(TextTable::fmt(geomean(per_size[kb])));
    table.addRow(avg);
    std::printf("%s\n", table.toString().c_str());

    std::printf("paper reference: bwaves gains up to ~1.25 at large "
                "regions; most traces degrade beyond 4KB — naive "
                "large regions are ineffective.\n");
    return 0;
}
