/**
 * @file
 * Figure 6: single-core speedup of the nine evaluated prefetchers on
 * each benchmark suite plus the overall average, and the Table V
 * qualitative comparison derived from the same data.
 *
 * Paper shape to reproduce: Gaze highest overall (~1.28 vs
 * no-prefetch), Bingo second; PMP/DSPatch degrade on Cloud while the
 * fine-grained schemes and Gaze stay positive; everything does well on
 * Ligra.
 */

#include "bench_util.hh"
#include "harness/export.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 6", "single-core speedup per suite (geomean)");

    RunConfig cfg;
    Runner runner(cfg);

    std::vector<std::string> headers = {"prefetcher"};
    for (const auto &s : mainSuites())
        headers.push_back(s);
    headers.push_back("AVG");
    TextTable table(headers);
    CsvExport csv("fig06_speedup");
    csv.header(headers);

    struct Cell
    {
        double cloud = 1.0;
        double simple = 1.0; ///< spec06+spec17 proxy for Table V
        double avg = 1.0;
    };
    std::map<std::string, Cell> derived;

    for (const auto &pf : fig6Prefetchers()) {
        std::vector<std::string> row = {pf};
        std::vector<double> all;
        Cell cell;
        for (const auto &suite : mainSuites()) {
            SuiteSummary s =
                evaluateSuite(runner, suiteWorkloads(suite), PfSpec{pf});
            row.push_back(TextTable::fmt(s.speedup));
            all.push_back(s.speedup);
            if (suite == "cloud")
                cell.cloud = s.speedup;
            if (suite == "spec06")
                cell.simple = s.speedup;
        }
        cell.avg = geomean(all);
        row.push_back(TextTable::fmt(cell.avg));
        table.addRow(row);
        csv.row(row);
        derived[pf] = cell;
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
    if (CsvExport::enabled())
        std::printf("results written to %s\n\n", csv.write().c_str());

    // Table V, derived: simple-pattern column from SPEC06 (streaming
    // heavy), complex-pattern column from CloudSuite.
    std::printf("Table V (derived): handles simple / complex "
                "patterns (threshold: speedup > 1.02)\n\n");
    TextTable tv({"prefetcher", "hardware cost", "simple (stream)",
                  "complex (cloud)"});
    auto mark = [](double v) { return v > 1.02 ? "yes" : "NO"; };
    for (const auto &pf :
         {std::string("gaze"), std::string("vberti"),
          std::string("pmp"), std::string("bingo")}) {
        const Cell &c = derived[pf];
        const char *cost = pf == "bingo" ? "high (>100KB)" : "low";
        tv.addRow({pf, cost, mark(c.simple), mark(c.cloud)});
    }
    std::printf("%s\n", tv.toString().c_str());

    std::printf("paper reference: Gaze AVG 1.277 (+27.7%% over "
                "no-prefetch), beats Bingo by 1.9%%, PMP by 5.7%%, "
                "vBerti by 5.4%%; PMP/DSPatch degrade on Cloud.\n");
    return 0;
}
