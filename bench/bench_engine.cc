/**
 * @file
 * bench_engine — simulator-throughput benchmark for the simulation
 * engines. Runs representative cells under the polled reference loop,
 * the timing-wheel event engine and the adaptive auto engine, verifies
 * their metrics are bit-identical, and reports wall-clock speedup,
 * Minstr/s and the skipped-cycle fraction per cell. A 4-core mix
 * section additionally times the threaded engine (--sim-threads=4)
 * against the same mix single-threaded. Everything lands in
 * BENCH_engine.json — per-cell rows plus geomean/min aggregate rows
 * per engine column and the host CPU count, so the perf trajectory
 * (and the host it was measured on) is recorded over time.
 *
 * The headline case is the low-MLP pointer chase (canneal): one
 * dependent load in flight at a time leaves almost every cycle idle,
 * which the event engine skips in O(1). The dense stream (leslie3d)
 * is the honest lower bound — little to skip — and where the auto
 * engine must flip to polled dispatch to stay >= 1.0x.
 *
 * Timing is best-of-3 per (cell, engine): metrics are identical across
 * repeats by construction (asserted elsewhere), so the fastest wall
 * time is the least noisy estimate — the dense cells finish in tens
 * of milliseconds, where single-run scheduler noise dwarfs the
 * engine-overhead differences being measured. The median of the same
 * repeats is reported alongside (seconds_median / minstr_per_sec_median
 * in the JSON) as the robustness check: best and median diverging
 * flags a noisy host, not a faster simulator.
 *
 * When a committed BENCH_engine.json baseline is readable (cwd or the
 * parent directory, i.e. the repo root when run from build/), the
 * full run additionally prints a per-cell before/after table of
 * polled-engine Minstr/s against it, so structure-level work shows up
 * as a reviewable throughput delta per cell.
 *
 *   bench_engine            full comparison (honors GAZE_SIM_SCALE)
 *   bench_engine --quick    short cells; asserts throughput > 0 AND
 *                           cross-engine metric identity, dying
 *                           loudly on any mismatch (the check.sh /
 *                           CTest smoke)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "common/log.hh"
#include "harness/export.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "workloads/suites.hh"

namespace
{

using namespace gaze;

/** One engine's timed view of a cell. */
struct EngineRun
{
    RunResult result;
    double bestSeconds = 0.0;
    double medianSeconds = 0.0;

    double
    minstrPerSec(double seconds) const
    {
        return seconds > 0.0
                   ? double(result.instructionsRetired) / seconds / 1e6
                   : 0.0;
    }
};

RunConfig
configFor(EngineKind engine, uint32_t simThreads = 1)
{
    RunConfig cfg;
    cfg.system.engine = engine;
    cfg.system.simThreads = simThreads;
    return cfg; // phase lengths come from GAZE_SIM_SCALE
}

/**
 * Run @p mix under @p cfg @p repeats times; keep the first run's
 * metrics (repeats are bit-identical), the fastest wall time, and the
 * median wall time (the headline vs the robustness check).
 */
EngineRun
timedRun(const RunConfig &cfg, const std::vector<WorkloadDef> &mix,
         const PfSpec &pf, int repeats = 3)
{
    EngineRun er;
    std::vector<double> seconds;
    seconds.reserve(repeats);
    for (int i = 0; i < repeats; ++i) {
        Runner runner(cfg);
        RunResult r = runner.runMix(mix, pf);
        seconds.push_back(r.wallSeconds);
        if (i == 0)
            er.result = std::move(r);
    }
    std::sort(seconds.begin(), seconds.end());
    er.bestSeconds = seconds.front();
    er.medianSeconds = seconds[seconds.size() / 2];
    return er;
}

/**
 * Per-cell polled Minstr/s from a committed BENCH_engine.json, keyed
 * "workload|prefetcher". The file is our own JsonWriter output, so a
 * targeted scan (no general JSON parser in the tree) is enough: for
 * each "workload"/"prefetcher" pair, take the first "minstr_per_sec"
 * inside the following "polled" block. Cells whose next block is not
 * "polled" (the mix rows) are skipped. Returns empty when no baseline
 * is readable — the before/after table is then simply omitted.
 */
std::vector<std::pair<std::string, double>>
loadPolledBaseline(std::string *pathUsed)
{
    std::vector<std::pair<std::string, double>> base;
    std::string text;
    for (const char *path : {"BENCH_engine.json", "../BENCH_engine.json"}) {
        std::FILE *f = std::fopen(path, "rb");
        if (!f)
            continue;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        *pathUsed = path;
        break;
    }
    if (text.empty())
        return base;

    auto stringAfter = [&](const char *key, size_t &pos) {
        size_t k = text.find(key, pos);
        if (k == std::string::npos)
            return std::string();
        k += std::strlen(key);
        size_t end = text.find('"', k);
        if (end == std::string::npos)
            return std::string();
        pos = end + 1;
        return text.substr(k, end - k);
    };

    size_t pos = 0;
    while (true) {
        std::string wl = stringAfter("\"workload\":\"", pos);
        if (wl.empty())
            break;
        std::string pf = stringAfter("\"prefetcher\":\"", pos);
        if (pf.empty())
            break;
        size_t polled = text.find("\"polled\":{", pos);
        size_t nextCell = text.find("\"workload\":\"", pos);
        if (polled == std::string::npos
            || (nextCell != std::string::npos && polled > nextCell))
            continue; // mix cell: no polled block before the next row
        size_t v = text.find("\"minstr_per_sec\":", polled);
        if (v == std::string::npos)
            break;
        v += std::strlen("\"minstr_per_sec\":");
        base.emplace_back(wl + "|" + pf,
                          std::strtod(text.c_str() + v, nullptr));
        pos = v;
    }
    return base;
}

/**
 * Die unless @p got reproduced @p ref bit for bit on everything the
 * paper metrics consume: the summary slice, per-core retirement and
 * the total cycle count. Engine-speed counters (events dispatched,
 * cycles skipped) legitimately differ between engines and are
 * excluded — that is the differential-test contract
 * (tests/test_engine_diff.cc) applied at bench time.
 */
void
checkIdentical(const RunResult &ref, const RunResult &got,
               const std::string &cell, const char *engineLabel)
{
    RunSummary a = summarize(ref);
    RunSummary b = summarize(got);
    bool same = a.ipc == b.ipc && a.pfIssued == b.pfIssued
                && a.pfFilled == b.pfFilled
                && a.pfUseful == b.pfUseful && a.pfLate == b.pfLate
                && a.llcDemandMiss == b.llcDemandMiss
                && ref.engine.cyclesTotal == got.engine.cyclesTotal
                && ref.cores.size() == got.cores.size();
    if (same) {
        for (size_t c = 0; c < ref.cores.size(); ++c)
            same = same
                   && ref.cores[c].instructions
                          == got.cores[c].instructions
                   && ref.cores[c].cycles == got.cores[c].cycles;
    }
    if (!same)
        GAZE_FATAL("engine mismatch on ", cell, ": ", engineLabel,
                   " metrics differ from the polled/reference run — "
                   "engines must be bit-identical");
}

void
printAggregate(const char *label, const std::vector<double> &speedups)
{
    double lo = speedups.empty() ? 0.0 : speedups[0];
    for (double s : speedups)
        lo = std::min(lo, s);
    std::printf("%-18s | geomean %.2fx | min %.2fx\n", label,
                geomean(speedups), lo);
}

void
jsonAggregate(JsonWriter &j, const char *key,
              const std::vector<double> &speedups)
{
    double lo = speedups.empty() ? 0.0 : speedups[0];
    for (double s : speedups)
        lo = std::min(lo, s);
    j.key(key).beginObject();
    j.field("geomean_wall_speedup", geomean(speedups));
    j.field("min_wall_speedup", lo);
    j.endObject();
}

void
jsonEngineBlock(JsonWriter &j, const char *key, const EngineRun &er)
{
    const RunResult &r = er.result;
    j.key(key).beginObject();
    j.field("seconds", er.bestSeconds);
    j.field("minstr_per_sec", er.minstrPerSec(er.bestSeconds));
    j.field("seconds_median", er.medianSeconds);
    j.field("minstr_per_sec_median", er.minstrPerSec(er.medianSeconds));
    j.field("cycles_total", r.engine.cyclesTotal);
    j.field("cycles_executed", r.engine.cyclesExecuted);
    j.field("cycles_skipped", r.engine.cyclesSkipped);
    j.field("events_dispatched", r.engine.eventsDispatched);
    j.field("engine_flips", r.engine.engineFlips);
    j.field("polled_cycles", r.engine.polledCycles);
    j.field("skip_fraction", r.engine.skipFraction());
    j.endObject();
}

int
quickSmoke()
{
    // One short cell, event engine: throughput and idle-skip sanity.
    Runner runner(configFor(EngineKind::Event));
    RunResult r = runner.run(findWorkload("canneal"), PfSpec{});
    double minstr = r.minstrPerSec();
    std::printf("bench_engine quick: canneal x none | "
                "%.3f Minstr/s | %llu/%llu cycles skipped (%.1f%%)\n",
                minstr,
                static_cast<unsigned long long>(r.engine.cyclesSkipped),
                static_cast<unsigned long long>(r.engine.cyclesTotal),
                100.0 * r.engine.skipFraction());
    GAZE_ASSERT(minstr > 0.0, "throughput must be positive");
    GAZE_ASSERT(r.engine.cyclesSkipped > 0,
                "a pointer chase must skip idle cycles");

    // Cross-engine identity gate: every engine variant must reproduce
    // the polled reference bit for bit, and checkIdentical dies with
    // GAZE_FATAL if it ever does not. Single-core canneal x gaze
    // covers polled/event/auto; a 2-core mix covers the threaded
    // fork/join path against its single-threaded twin.
    PfSpec gazePf;
    gazePf.l1 = "gaze";
    std::vector<WorkloadDef> one = {findWorkload("canneal")};
    RunResult polled = Runner(configFor(EngineKind::Polled))
                           .runMix(one, gazePf);
    checkIdentical(polled,
                   Runner(configFor(EngineKind::Event))
                       .runMix(one, gazePf),
                   "canneal x gaze", "event");
    checkIdentical(polled,
                   Runner(configFor(EngineKind::Auto))
                       .runMix(one, gazePf),
                   "canneal x gaze", "auto");
    std::vector<WorkloadDef> two = {findWorkload("canneal"),
                                    findWorkload("mcf")};
    checkIdentical(Runner(configFor(EngineKind::Event, 1))
                       .runMix(two, gazePf),
                   Runner(configFor(EngineKind::Event, 2))
                       .runMix(two, gazePf),
                   "canneal+mcf x gaze", "threaded(2)");
    std::printf("bench_engine quick: metrics identical across "
                "polled/event/auto and --sim-threads=2\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gaze;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            GAZE_FATAL("unknown option '", argv[i],
                       "' (usage: bench_engine [--quick])");
    }
    if (quick)
        return quickSmoke();

    bench::banner("bench_engine",
                  "polled vs event vs auto vs threaded engine "
                  "throughput");

    unsigned hostCpus = std::thread::hardware_concurrency();
    std::printf("host CPUs: %u (threaded wall-clock numbers need at "
                "least as many cores as --sim-threads)\n\n",
                hostCpus);

    // Low-MLP pointer chases (big idle-skip win), a dense stream
    // (little to skip: the honest lower bound and the auto engine's
    // reason to exist), and a mixed graph workload, with and without
    // a prefetcher.
    const std::vector<std::string> workloads = {"canneal", "mcf",
                                                "leslie3d", "BFS-17"};
    const std::vector<std::string> prefetchers = {"none", "gaze"};

    struct SingleCell
    {
        std::string workload;
        std::string prefetcher;
        EngineRun polled, event, autorun;
    };
    std::vector<SingleCell> cells;
    std::vector<double> eventSpeedups, autoSpeedups;
    for (const auto &wname : workloads) {
        std::vector<WorkloadDef> mix = {findWorkload(wname)};
        for (const auto &pname : prefetchers) {
            PfSpec pf;
            if (pname != "none")
                pf.l1 = pname;
            SingleCell c;
            c.workload = wname;
            c.prefetcher = pname;
            c.polled = timedRun(configFor(EngineKind::Polled), mix, pf);
            c.event = timedRun(configFor(EngineKind::Event), mix, pf);
            c.autorun = timedRun(configFor(EngineKind::Auto), mix, pf);
            std::string cell = wname + " x " + pname;
            checkIdentical(c.polled.result, c.event.result, cell,
                           "event");
            checkIdentical(c.polled.result, c.autorun.result, cell,
                           "auto");
            double se = c.polled.bestSeconds / c.event.bestSeconds;
            double sa = c.polled.bestSeconds / c.autorun.bestSeconds;
            eventSpeedups.push_back(se);
            autoSpeedups.push_back(sa);
            std::printf(
                "%-10s x %-6s | polled %6.3fs | event %6.3fs "
                "(%4.2fx) | auto %6.3fs (%4.2fx, %llu flips) | "
                "%4.1f%% skipped\n",
                wname.c_str(), pname.c_str(), c.polled.bestSeconds,
                c.event.bestSeconds, se, c.autorun.bestSeconds, sa,
                static_cast<unsigned long long>(
                    c.autorun.result.engine.engineFlips),
                100.0 * c.event.result.engine.skipFraction());
            cells.push_back(std::move(c));
        }
    }

    // Per-cell before/after against the committed baseline: the polled
    // column is where data-structure work shows up undiluted by
    // idle-cycle skipping, so it is the one compared.
    std::string basePath;
    auto baseline = loadPolledBaseline(&basePath);
    if (!baseline.empty()) {
        std::printf("\npolled Minstr/s vs committed baseline (%s):\n",
                    basePath.c_str());
        std::vector<double> ratios;
        for (const auto &c : cells) {
            std::string key = c.workload + "|" + c.prefetcher;
            double before = 0.0;
            for (const auto &kv : baseline)
                if (kv.first == key)
                    before = kv.second;
            double after = c.polled.minstrPerSec(c.polled.bestSeconds);
            if (before <= 0.0) {
                std::printf("  %-10s x %-6s | (no baseline) -> %6.3f\n",
                            c.workload.c_str(), c.prefetcher.c_str(),
                            after);
                continue;
            }
            ratios.push_back(after / before);
            std::printf(
                "  %-10s x %-6s | before %6.3f -> after %6.3f (%.2fx)\n",
                c.workload.c_str(), c.prefetcher.c_str(), before, after,
                after / before);
        }
        if (!ratios.empty())
            std::printf("  geomean polled improvement: %.2fx\n",
                        geomean(ratios));
    }

    // 4-core mixes: the threaded engine (--sim-threads=4) against the
    // same mix on one thread. Cores interact only through the shared
    // LLC/DRAM; identity is asserted, not assumed.
    const uint32_t kMixThreads = 4;
    std::vector<WorkloadDef> mix4 = {
        findWorkload("canneal"), findWorkload("mcf"),
        findWorkload("canneal"), findWorkload("mcf")};
    struct MixCell
    {
        std::string prefetcher;
        EngineRun one, threaded;
    };
    std::vector<MixCell> mixCells;
    std::vector<double> threadedSpeedups;
    std::printf("\n4-core mix canneal+mcf+canneal+mcf, event engine:\n");
    for (const auto &pname : prefetchers) {
        PfSpec pf;
        if (pname != "none")
            pf.l1 = pname;
        MixCell m;
        m.prefetcher = pname;
        m.one = timedRun(configFor(EngineKind::Event, 1), mix4, pf);
        m.threaded =
            timedRun(configFor(EngineKind::Event, kMixThreads), mix4,
                     pf);
        checkIdentical(m.one.result, m.threaded.result,
                       "mix4 x " + pname, "threaded(4)");
        double st = m.one.bestSeconds / m.threaded.bestSeconds;
        threadedSpeedups.push_back(st);
        std::printf("  mix4 x %-6s | 1 thread %6.3fs | 4 threads "
                    "%6.3fs | speedup %.2fx\n",
                    pname.c_str(), m.one.bestSeconds,
                    m.threaded.bestSeconds, st);
        mixCells.push_back(std::move(m));
    }

    std::printf("\nwall-clock speedups (metrics bit-identical on "
                "every cell):\n");
    printAggregate("event vs polled", eventSpeedups);
    printAggregate("auto vs polled", autoSpeedups);
    printAggregate("4 threads vs 1", threadedSpeedups);

    JsonWriter j;
    j.beginObject();
    j.field("experiment", "engine");
    j.field("scale", simScale());
    j.field("warmup_instructions", RunConfig{}.effectiveWarmup());
    j.field("sim_instructions", RunConfig{}.effectiveSim());
    j.field("host_cpus", uint64_t(hostCpus));
    j.key("cells").beginArray();
    for (const auto &c : cells) {
        j.beginObject();
        j.field("workload", c.workload);
        j.field("prefetcher", c.prefetcher);
        jsonEngineBlock(j, "polled", c.polled);
        jsonEngineBlock(j, "event", c.event);
        jsonEngineBlock(j, "auto", c.autorun);
        j.field("wall_speedup",
                c.polled.bestSeconds / c.event.bestSeconds);
        j.field("wall_speedup_auto",
                c.polled.bestSeconds / c.autorun.bestSeconds);
        j.field("metrics_identical", true); // asserted fatally above
        j.endObject();
    }
    j.endArray();
    j.key("mix_cells").beginArray();
    for (const auto &m : mixCells) {
        j.beginObject();
        j.field("workload", "canneal+mcf+canneal+mcf");
        j.field("prefetcher", m.prefetcher);
        j.field("cores", uint64_t(mix4.size()));
        j.field("sim_threads", uint64_t(kMixThreads));
        jsonEngineBlock(j, "one_thread", m.one);
        jsonEngineBlock(j, "threaded", m.threaded);
        j.field("wall_speedup",
                m.one.bestSeconds / m.threaded.bestSeconds);
        j.field("metrics_identical", true); // asserted fatally above
        j.endObject();
    }
    j.endArray();
    j.key("aggregates").beginObject();
    jsonAggregate(j, "event", eventSpeedups);
    jsonAggregate(j, "auto", autoSpeedups);
    jsonAggregate(j, "threaded_4core", threadedSpeedups);
    j.endObject();
    j.field("geomean_wall_speedup", geomean(eventSpeedups));
    j.endObject();

    JsonExport doc("engine", j.str());
    std::string path = doc.write();
    std::printf("results: %s\n", path.c_str());
    return 0;
}
