/**
 * @file
 * bench_engine — simulator-throughput benchmark for the event-driven
 * engine. Runs representative cells under both engines (the polled
 * reference loop and the timing-wheel event engine), verifies their
 * metrics are bit-identical, and reports wall-clock speedup, Minstr/s
 * and the skipped-cycle fraction per cell, writing everything to
 * BENCH_engine.json so the perf trajectory is recorded over time.
 *
 * The headline case is the low-MLP pointer chase (canneal): one
 * dependent load in flight at a time leaves almost every cycle idle,
 * which the event engine skips in O(1).
 *
 *   bench_engine            full comparison (honors GAZE_SIM_SCALE)
 *   bench_engine --quick    one short event-engine cell; asserts
 *                           Minstr/s > 0 (the check.sh smoke)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/log.hh"
#include "harness/export.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "workloads/suites.hh"

namespace
{

using namespace gaze;

struct CellReport
{
    std::string workload;
    std::string prefetcher;
    RunResult event;
    RunResult polled;

    double
    wallSpeedup() const
    {
        return event.wallSeconds > 0.0
                   ? polled.wallSeconds / event.wallSeconds
                   : 0.0;
    }
};

RunConfig
configFor(EngineKind engine)
{
    RunConfig cfg;
    cfg.system.engine = engine;
    return cfg; // phase lengths come from GAZE_SIM_SCALE
}

/** Fatal unless the two runs produced identical metrics. */
void
checkIdentical(const CellReport &r)
{
    RunSummary e = summarize(r.event);
    RunSummary p = summarize(r.polled);
    GAZE_ASSERT(e.ipc == p.ipc && e.pfIssued == p.pfIssued
                    && e.pfFilled == p.pfFilled
                    && e.pfUseful == p.pfUseful
                    && e.pfLate == p.pfLate
                    && e.llcDemandMiss == p.llcDemandMiss,
                "engine mismatch on ", r.workload, " x ",
                r.prefetcher,
                " — event and polled metrics must be bit-identical");
}

int
quickSmoke()
{
    // One short cell, event engine: the check.sh / CTest smoke.
    Runner runner(configFor(EngineKind::Event));
    RunResult r = runner.run(findWorkload("canneal"), PfSpec{});
    double minstr = r.minstrPerSec();
    std::printf("bench_engine quick: canneal x none | "
                "%.3f Minstr/s | %llu/%llu cycles skipped (%.1f%%)\n",
                minstr,
                static_cast<unsigned long long>(r.engine.cyclesSkipped),
                static_cast<unsigned long long>(r.engine.cyclesTotal),
                100.0 * r.engine.skipFraction());
    GAZE_ASSERT(minstr > 0.0, "throughput must be positive");
    GAZE_ASSERT(r.engine.cyclesSkipped > 0,
                "a pointer chase must skip idle cycles");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gaze;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            GAZE_FATAL("unknown option '", argv[i],
                       "' (usage: bench_engine [--quick])");
    }
    if (quick)
        return quickSmoke();

    bench::banner("bench_engine",
                  "event-driven vs polled engine throughput");

    // Low-MLP pointer chases (big idle-skip win), a dense stream
    // (little to skip: the honest lower bound), and a mixed graph
    // workload, with and without a prefetcher.
    const std::vector<std::string> workloads = {"canneal", "mcf",
                                                "leslie3d", "BFS-17"};
    const std::vector<std::string> prefetchers = {"none", "gaze"};

    Runner eventRunner(configFor(EngineKind::Event));
    Runner polledRunner(configFor(EngineKind::Polled));

    std::vector<CellReport> cells;
    for (const auto &wname : workloads) {
        WorkloadDef w = findWorkload(wname);
        for (const auto &pname : prefetchers) {
            PfSpec pf;
            if (pname != "none")
                pf.l1 = pname;
            CellReport r;
            r.workload = wname;
            r.prefetcher = pname;
            r.polled = polledRunner.run(w, pf);
            r.event = eventRunner.run(w, pf);
            checkIdentical(r);
            cells.push_back(std::move(r));
            std::printf(
                "%-10s x %-6s | polled %6.2f Minstr/s | event "
                "%6.2f Minstr/s | %4.1f%% skipped | speedup %.2fx\n",
                wname.c_str(), pname.c_str(),
                cells.back().polled.minstrPerSec(),
                cells.back().event.minstrPerSec(),
                100.0 * cells.back().event.engine.skipFraction(),
                cells.back().wallSpeedup());
        }
    }

    std::vector<double> speedups;
    for (const auto &c : cells)
        speedups.push_back(c.wallSpeedup());
    double gmean = geomean(speedups);
    std::printf("\ngeomean wall-clock speedup (event over polled): "
                "%.2fx — metrics bit-identical on every cell\n",
                gmean);

    JsonWriter j;
    j.beginObject();
    j.field("experiment", "engine");
    j.field("scale", simScale());
    j.field("warmup_instructions", RunConfig{}.effectiveWarmup());
    j.field("sim_instructions", RunConfig{}.effectiveSim());
    j.key("cells").beginArray();
    for (const auto &c : cells) {
        j.beginObject();
        j.field("workload", c.workload);
        j.field("prefetcher", c.prefetcher);
        j.key("polled").beginObject();
        j.field("seconds", c.polled.wallSeconds);
        j.field("minstr_per_sec", c.polled.minstrPerSec());
        j.field("cycles_total", c.polled.engine.cyclesTotal);
        j.endObject();
        j.key("event").beginObject();
        j.field("seconds", c.event.wallSeconds);
        j.field("minstr_per_sec", c.event.minstrPerSec());
        j.field("cycles_total", c.event.engine.cyclesTotal);
        j.field("cycles_executed", c.event.engine.cyclesExecuted);
        j.field("cycles_skipped", c.event.engine.cyclesSkipped);
        j.field("events_dispatched",
                c.event.engine.eventsDispatched);
        j.field("skip_fraction", c.event.engine.skipFraction());
        j.endObject();
        j.field("wall_speedup", c.wallSpeedup());
        j.field("metrics_identical", true);
        j.endObject();
    }
    j.endArray();
    j.field("geomean_wall_speedup", gmean);
    j.endObject();

    JsonExport doc("engine", j.str());
    std::string path = doc.write();
    std::printf("results: %s\n", path.c_str());
    return 0;
}
