/**
 * @file
 * Figure 15: per-core speedup on representative four-core
 * heterogeneous mixes (Table VI analog) for vBerti / PMP / Gaze.
 *
 * Paper shape: Gaze leads per-core and on mix averages; prefetching
 * effectiveness varies across the cores of one mix because workloads
 * compete for shared LLC/DRAM differently.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

int
main()
{
    banner("Figure 15", "four-core heterogeneous mixes, per core");

    // Table VI analogs built from our suite stand-ins.
    const std::vector<std::vector<std::string>> mixes = {
        {"leslie3d", "Triangle-4", "lbm_s", "BFS-17"},
        {"fotonik3d_s", "PageRank-1", "BFS-1", "BC-4"},
        {"bwaves_s", "MIS-17", "gcc_s", "mcf"},
        {"PageRank-61", "bwaves", "PageRank-1", "facesim"},
        {"cassandra-p0c0", "cassandra-p1c1", "nutch-p0c0",
         "cloud9-p5c2"},
    };

    RunConfig cfg;
    cfg.warmupInstr = scaledRecords(100'000);
    cfg.simInstr = scaledRecords(200'000);

    const std::vector<std::string> pfs = {"vberti", "pmp", "gaze"};

    for (size_t m = 0; m < mixes.size(); ++m) {
        std::vector<WorkloadDef> mix;
        for (const auto &n : mixes[m])
            mix.push_back(findWorkload(n));

        Runner runner(cfg);
        const RunResult &base = runner.baselineMix(mix);

        std::printf("--- mix%zu: %s, %s, %s, %s ---\n", m + 1,
                    mixes[m][0].c_str(), mixes[m][1].c_str(),
                    mixes[m][2].c_str(), mixes[m][3].c_str());
        TextTable table({"prefetcher", "c0", "c1", "c2", "c3", "avg"});
        for (const auto &pf : pfs) {
            RunResult r = runner.runMix(mix, PfSpec{pf});
            std::vector<std::string> row = {pf};
            std::vector<double> per;
            for (uint32_t c = 0; c < 4; ++c) {
                double s = base.coreIpc(c) > 0
                               ? r.coreIpc(c) / base.coreIpc(c)
                               : 1.0;
                row.push_back(TextTable::fmt(s));
                per.push_back(s);
            }
            row.push_back(TextTable::fmt(geomean(per)));
            table.addRow(row);
            std::fflush(stdout);
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("paper reference: Gaze highest per-core and mix "
                "averages; eight-core heterogeneous margins +9.4%% "
                "over PMP, +7.8%% over vBerti.\n");
    return 0;
}
