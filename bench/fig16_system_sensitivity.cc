/**
 * @file
 * Figure 16: sensitivity to (a) DRAM bandwidth (MTPS), (b) LLC size
 * per core, and (c) L2C size, for the six contending prefetchers on a
 * representative trace set.
 *
 * Paper shape: Gaze scales from low- to high-bandwidth environments
 * and across cache sizes; vBerti is strong under scarce resources but
 * does not scale up; PMP collapses when bandwidth or cache shrinks.
 */

#include "bench_util.hh"

using namespace gaze;
using namespace gaze::bench;

namespace
{

const std::vector<std::string> traces = {
    "leslie3d", "fotonik3d_s", "bwaves_s", "PageRank-61", "BC-4",
    "cassandra-p0c0"};

void
sweep(const char *title, const std::vector<std::string> &labels,
      const std::vector<RunConfig> &configs)
{
    std::printf("--- %s ---\n", title);
    std::vector<std::string> headers = {"prefetcher"};
    headers.insert(headers.end(), labels.begin(), labels.end());
    TextTable table(headers);
    for (const auto &pf : fig14Prefetchers()) {
        std::vector<std::string> row = {pf};
        for (const auto &cfg : configs) {
            Runner runner(cfg);
            row.push_back(TextTable::fmt(
                speedupOver(runner, traces, PfSpec{pf})));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.toString().c_str());
}

} // namespace

int
main()
{
    banner("Figure 16", "sensitivity to DRAM MTPS / LLC size / L2 size");

    RunConfig base;
    base.warmupInstr = scaledRecords(120'000);
    base.simInstr = scaledRecords(250'000);

    {
        std::vector<RunConfig> cfgs;
        std::vector<std::string> labels;
        for (double mtps : {800.0, 1600.0, 3200.0, 6400.0, 12800.0}) {
            RunConfig c = base;
            c.system.dram.mtps = mtps;
            cfgs.push_back(c);
            labels.push_back(std::to_string(int(mtps)));
        }
        sweep("(a) DRAM MTPS (baseline 3200)", labels, cfgs);
    }
    {
        std::vector<RunConfig> cfgs;
        std::vector<std::string> labels;
        for (uint64_t mb : {1, 2, 4, 8}) {
            RunConfig c = base;
            c.system.llcBytesPerCore = mb * 512 * 1024;
            cfgs.push_back(c);
            labels.push_back(TextTable::fmt(mb * 0.5, 1) + "MB");
        }
        sweep("(b) LLC size per core (baseline 2MB)", labels, cfgs);
    }
    {
        std::vector<RunConfig> cfgs;
        std::vector<std::string> labels;
        for (uint64_t kb : {128, 256, 512, 1024}) {
            RunConfig c = base;
            c.system.l2Bytes = kb * 1024;
            cfgs.push_back(c);
            labels.push_back(std::to_string(kb) + "KB");
        }
        sweep("(c) L2C size (baseline 512KB)", labels, cfgs);
    }

    std::printf("paper reference: Gaze stays on top across the full "
                "sweep; PMP drops sharply at low bandwidth / small "
                "caches; vBerti flattens at high resources.\n");
    return 0;
}
