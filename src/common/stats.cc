#include "common/stats.hh"

#include <cstdio>
#include <sstream>

namespace gaze
{

void
StatSet::add(const std::string &name, double value)
{
    values.emplace_back(name, value);
}

void
StatSet::add(const std::string &name, uint64_t value)
{
    values.emplace_back(name, static_cast<double>(value));
}

std::string
StatSet::toString() const
{
    size_t width = 0;
    for (const auto &[name, v] : values)
        width = std::max(width, name.size());

    std::ostringstream os;
    for (const auto &[name, v] : values) {
        char buf[64];
        if (v == static_cast<double>(static_cast<uint64_t>(v)))
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(v));
        else
            std::snprintf(buf, sizeof(buf), "%.4f", v);
        os << name;
        for (size_t i = name.size(); i < width + 2; ++i)
            os << ' ';
        os << buf << '\n';
    }
    return os.str();
}

} // namespace gaze
