/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for unusable user configuration, warn()
 * for suspicious-but-survivable conditions.
 */

#pragma once

#include <sstream>
#include <string>

namespace gaze
{

/** Abort with a message: an internal simulator bug (never user error). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit(1) with a message: invalid configuration or arguments. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr and continue. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace gaze

#define GAZE_PANIC(...) \
    ::gaze::panicImpl(__FILE__, __LINE__, ::gaze::detail::formatAll(__VA_ARGS__))

#define GAZE_FATAL(...) \
    ::gaze::fatalImpl(__FILE__, __LINE__, ::gaze::detail::formatAll(__VA_ARGS__))

#define GAZE_WARN(...) \
    ::gaze::warnImpl(__FILE__, __LINE__, ::gaze::detail::formatAll(__VA_ARGS__))

/** Panic when @p cond does not hold; use for internal invariants. */
#define GAZE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            GAZE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)
