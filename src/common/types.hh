/**
 * @file
 * Fundamental address/cycle types and address-arithmetic helpers shared by
 * the whole simulator. All addresses are byte addresses unless a name says
 * otherwise (blockAddr, pageNumber, ...).
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace gaze
{

/** Byte address (virtual or physical; context decides). */
using Addr = uint64_t;

/** Simulation time in CPU cycles. */
using Cycle = uint64_t;

/** Program counter of the instruction that issued an access. */
using PC = uint64_t;

/** Cache block (line) size in bytes. Fixed at 64B across the hierarchy. */
inline constexpr uint64_t blockSize = 64;

/** log2(blockSize). */
inline constexpr uint64_t blockShift = 6;

/** Base page / default spatial-region size (4KB, one physical page). */
inline constexpr uint64_t pageSize = 4096;

/** log2(pageSize). */
inline constexpr uint64_t pageShift = 12;

/** Blocks per 4KB page: 64 distinct offsets, each fits in 6 bits. */
inline constexpr uint64_t blocksPerPage = pageSize / blockSize;

/** Return the block-aligned address containing @p a. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(blockSize - 1);
}

/** Return the block number (address >> 6) of @p a. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

/** Return the 4KB page number of @p a. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> pageShift;
}

/** Return the page-aligned address containing @p a. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(pageSize - 1);
}

/**
 * Block offset of @p a within a spatial region of @p region_size bytes.
 * For the default 4KB region this is the 6-bit offset (0..63) the paper
 * calls simply "offset".
 */
constexpr uint32_t
regionOffset(Addr a, uint64_t region_size = pageSize)
{
    return static_cast<uint32_t>((a & (region_size - 1)) >> blockShift);
}

/** Region number of @p a for a region of @p region_size bytes. */
constexpr Addr
regionNumber(Addr a, uint64_t region_size = pageSize)
{
    Addr mask = region_size - 1;
    return (a & ~mask) / region_size;
}

/** Base byte address of the region containing @p a. */
constexpr Addr
regionBase(Addr a, uint64_t region_size = pageSize)
{
    return a & ~(region_size - 1);
}

/** Number of 64B blocks in a region of @p region_size bytes. */
constexpr uint32_t
blocksPerRegion(uint64_t region_size)
{
    return static_cast<uint32_t>(region_size / blockSize);
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * True iff @p entries split across @p ways gives a mask-indexable
 * table: ways >= 1, an even split, and a power-of-two set count.
 * Shared by every structure that partitions entries into LRU sets
 * (the prefetch buffer and its per-scheme configs).
 */
constexpr bool
isValidSetSplit(uint64_t entries, uint64_t ways)
{
    return ways >= 1 && entries >= ways && entries % ways == 0
           && isPowerOfTwo(entries / ways);
}

/** Integer log2 for power-of-two values. */
constexpr uint32_t
floorLog2(uint64_t v)
{
    uint32_t l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/**
 * Mix a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 * Used for table indexing and the deterministic page mapping.
 */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Fold a PC into @p bits bits, as the paper's "hashed PC" fields do. */
constexpr uint64_t
hashPC(PC pc, uint32_t bits)
{
    return mix64(pc) & ((1ULL << bits) - 1);
}

/** Access type carried by memory requests throughout the hierarchy. */
enum class AccessType : uint8_t
{
    Load,       ///< demand load
    Rfo,        ///< store / read-for-ownership
    Prefetch,   ///< prefetcher-generated request
    Writeback,  ///< dirty eviction travelling down
    Translation ///< page-walk style access (unused by default)
};

/** Human-readable name for an AccessType. */
const char *accessTypeName(AccessType t);

inline const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Rfo: return "rfo";
      case AccessType::Prefetch: return "prefetch";
      case AccessType::Writeback: return "writeback";
      case AccessType::Translation: return "translation";
    }
    return "?";
}

} // namespace gaze
