/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by the
 * synthetic workload generators and the tests. Determinism matters: the
 * suites must generate identical traces across runs so experiments are
 * reproducible.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.hh"

namespace gaze
{

/** Small, fast, seedable RNG; never use std::rand in the simulator. */
class Rng
{
  public:
    /** Seed via splitmix64 so nearby seeds give unrelated streams. */
    explicit Rng(uint64_t seed = 1)
    {
        uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift bounded draw; bias is negligible at our scales.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Skewed draw in [0, n): floor(n * u^(1+s)) concentrates mass on low
     * ranks as @p s grows (s=0 is uniform). A cheap stand-in for Zipf
     * popularity, used for hot/cold page selection in the workloads.
     */
    uint64_t
    skewed(uint64_t n, double s = 1.0)
    {
        double u = uniform();
        uint64_t idx = static_cast<uint64_t>(std::pow(u, 1.0 + s) * n);
        return idx >= n ? n - 1 : idx;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace gaze
