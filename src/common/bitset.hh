/**
 * @file
 * Dynamic bitset used for spatial footprints and prefetch patterns.
 *
 * A spatial region of R bytes has R/64 block offsets; the default 4KB
 * region needs 64 bits, but vGaze regions go up to 64KB (1024 bits), so
 * footprints are dynamically sized. The word layout is little-endian:
 * bit i lives in word i/64 at position i%64.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"

namespace gaze
{

/** A fixed-size-at-construction bitset sized for region footprints. */
class Bitset
{
  public:
    /** Construct an all-zero bitset of @p num_bits bits. */
    explicit Bitset(size_t num_bits = 64);

    /** Number of bits this set holds. */
    size_t size() const { return numBits; }

    /** Set bit @p i. */
    void
    set(size_t i)
    {
        checkIndex(i);
        words[i >> 6] |= 1ULL << (i & 63);
    }

    /** Clear bit @p i. */
    void
    reset(size_t i)
    {
        checkIndex(i);
        words[i >> 6] &= ~(1ULL << (i & 63));
    }

    /** Test bit @p i. */
    bool
    test(size_t i) const
    {
        checkIndex(i);
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    /** Clear all bits. */
    void clearAll();

    /** Set all bits. */
    void setAll();

    /** Number of set bits. */
    size_t count() const;

    /** True iff every bit is set ("entirely requested" in the paper). */
    bool all() const;

    /** True iff at least one bit is set. */
    bool any() const;

    /** True iff no bit is set. */
    bool none() const { return !any(); }

    /** Fraction of set bits; the paper's footprint "density". */
    double density() const { return size() ? double(count()) / size() : 0.0; }

    /**
     * Length of the contiguous run of set bits starting at bit 0
     * (0 when bit 0 is clear). Streaming footprints are recognized by
     * a long leading run even when the generation was truncated.
     */
    size_t leadingRun() const;

    /** Index of the lowest set bit, or size() when empty. */
    size_t findFirst() const;

    /** Index of the lowest set bit at or after @p from, or size(). */
    size_t findNext(size_t from) const;

    /** In-place union. Sizes must match. */
    Bitset &operator|=(const Bitset &o);

    /** In-place intersection. Sizes must match. */
    Bitset &operator&=(const Bitset &o);

    bool operator==(const Bitset &o) const;
    bool operator!=(const Bitset &o) const { return !(*this == o); }

    /** Raw word access for tests and hashing (word 0 = bits 0..63). */
    uint64_t word(size_t w) const { return words[w]; }

    /** Number of 64-bit words backing this set. */
    size_t numWords() const { return words.size(); }

    /** "0101..."-style string, bit 0 first; handy in test failures. */
    std::string toString() const;

  private:
    void
    checkIndex(size_t i) const
    {
        GAZE_ASSERT(i < numBits, "bit ", i, " out of range ", numBits);
    }

    size_t numBits;
    std::vector<uint64_t> words;
};

/** Union of two equal-size bitsets. */
Bitset operator|(Bitset a, const Bitset &b);

/** Intersection of two equal-size bitsets. */
Bitset operator&(Bitset a, const Bitset &b);

} // namespace gaze
