#include "common/bitset.hh"

#include <bit>

namespace gaze
{

Bitset::Bitset(size_t num_bits)
    : numBits(num_bits), words((num_bits + 63) / 64, 0)
{
    GAZE_ASSERT(num_bits > 0, "empty bitset");
}

void
Bitset::clearAll()
{
    for (auto &w : words)
        w = 0;
}

void
Bitset::setAll()
{
    for (auto &w : words)
        w = ~0ULL;
    // Mask tail bits beyond numBits so count()/all() stay exact.
    size_t tail = numBits & 63;
    if (tail)
        words.back() &= (1ULL << tail) - 1;
}

size_t
Bitset::count() const
{
    size_t n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

bool
Bitset::all() const
{
    return count() == numBits;
}

bool
Bitset::any() const
{
    for (auto w : words)
        if (w)
            return true;
    return false;
}

size_t
Bitset::leadingRun() const
{
    size_t run = 0;
    for (auto w : words) {
        if (w == ~0ULL) {
            run += 64;
            continue;
        }
        run += std::countr_one(w);
        break;
    }
    return run > numBits ? numBits : run;
}

size_t
Bitset::findFirst() const
{
    return findNext(0);
}

size_t
Bitset::findNext(size_t from) const
{
    if (from >= numBits)
        return numBits;
    size_t w = from >> 6;
    uint64_t cur = words[w] & (~0ULL << (from & 63));
    while (true) {
        if (cur)
            return (w << 6) + std::countr_zero(cur);
        if (++w >= words.size())
            return numBits;
        cur = words[w];
    }
}

Bitset &
Bitset::operator|=(const Bitset &o)
{
    GAZE_ASSERT(numBits == o.numBits, "size mismatch");
    for (size_t i = 0; i < words.size(); ++i)
        words[i] |= o.words[i];
    return *this;
}

Bitset &
Bitset::operator&=(const Bitset &o)
{
    GAZE_ASSERT(numBits == o.numBits, "size mismatch");
    for (size_t i = 0; i < words.size(); ++i)
        words[i] &= o.words[i];
    return *this;
}

bool
Bitset::operator==(const Bitset &o) const
{
    return numBits == o.numBits && words == o.words;
}

std::string
Bitset::toString() const
{
    std::string s;
    s.reserve(numBits);
    for (size_t i = 0; i < numBits; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

Bitset
operator|(Bitset a, const Bitset &b)
{
    a |= b;
    return a;
}

Bitset
operator&(Bitset a, const Bitset &b)
{
    a &= b;
    return a;
}

} // namespace gaze
