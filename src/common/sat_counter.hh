/**
 * @file
 * Saturating counter used by confidence fields throughout the prefetchers
 * and by the paper's 3-bit Dense Counter (DC), which has asymmetric
 * update rules: slow increment, and a decrement that halves large values.
 */

#pragma once

#include <cstdint>

#include "common/log.hh"

namespace gaze
{

/** An unsigned saturating counter with a configurable maximum. */
class SatCounter
{
  public:
    /** Construct with saturation value @p max_value and initial @p value. */
    explicit SatCounter(uint32_t max_value, uint32_t value = 0)
        : maxValue(max_value), cur(value)
    {
        GAZE_ASSERT(value <= max_value, "initial value above max");
    }

    /** Current value. */
    uint32_t value() const { return cur; }

    /** Saturation value. */
    uint32_t max() const { return maxValue; }

    /** True when the counter is at its maximum. */
    bool saturated() const { return cur == maxValue; }

    /** Add @p n, saturating at max(). */
    void
    increment(uint32_t n = 1)
    {
        cur = (maxValue - cur < n) ? maxValue : cur + n;
    }

    /** Subtract @p n, saturating at zero. */
    void
    decrement(uint32_t n = 1)
    {
        cur = (cur < n) ? 0 : cur - n;
    }

    /** Halve the value (the DC's "fast decrement"). */
    void halve() { cur /= 2; }

    /** Set to an explicit value clamped to [0, max]. */
    void
    assign(uint32_t v)
    {
        cur = v > maxValue ? maxValue : v;
    }

    /** Reset to zero. */
    void clear() { cur = 0; }

  private:
    uint32_t maxValue;
    uint32_t cur;
};

/**
 * The paper's Dense Counter: 3 bits, slow increment (+1), and a
 * decrement that is fast (halving) while the value is above the
 * half-saturation threshold and slow (-1) otherwise (§III-C, Fig. 3a).
 */
class DenseCounter
{
  public:
    static constexpr uint32_t maxValue = 7;       ///< 3-bit saturation
    static constexpr uint32_t halfThreshold = 2;  ///< the paper's "DC > 2"

    /** Current value in [0, 7]. */
    uint32_t value() const { return ctr.value(); }

    /** True when fully saturated ("DC full" in Fig. 3c). */
    bool full() const { return ctr.saturated(); }

    /** True when above the half threshold ("DC > 2"). */
    bool aboveHalf() const { return ctr.value() > halfThreshold; }

    /** A dense (entirely-requested) streaming region was learned. */
    void onDense() { ctr.increment(); }

    /** A streaming-triggered region turned out not dense. */
    void
    onSparse()
    {
        if (aboveHalf())
            ctr.halve();
        else
            ctr.decrement();
    }

    /** Reset to zero. */
    void clear() { ctr.clear(); }

  private:
    SatCounter ctr{maxValue, 0};
};

} // namespace gaze
