/**
 * @file
 * Tiny named-statistics helper used by examples and benches to print
 * component counters uniformly. The heavy lifting (speedup, accuracy,
 * coverage math) lives in src/harness/metrics.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gaze
{

/** An ordered list of (name, value) pairs with aligned printing. */
class StatSet
{
  public:
    /** Add a counter line. */
    void add(const std::string &name, double value);
    void add(const std::string &name, uint64_t value);

    /** Render as aligned "name .... value" lines. */
    std::string toString() const;

    const std::vector<std::pair<std::string, double>> &entries() const
    {
        return values;
    }

  private:
    std::vector<std::pair<std::string, double>> values;
};

} // namespace gaze
