/**
 * @file
 * Contiguous power-of-two ring buffer used for the simulator's hot
 * FIFO queues (cache read/write/prefetch queues, DRAM channel queues,
 * the prefetch buffer's issue queue).
 *
 * std::deque allocates its map-of-chunks on first use and touches two
 * indirections per element access; on the per-access hot path those
 * queues hold a handful of small PODs and are pushed/popped millions
 * of times per simulated second. This ring keeps the elements in one
 * flat allocation, grows by doubling (amortized over the whole run —
 * steady state never allocates), and supports the one non-FIFO
 * operation the DRAM scheduler needs: order-preserving erase of a
 * middle element (FR-FCFS picks row hits out of queue order).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace gaze
{

/** Flat FIFO ring with order-preserving middle erase. */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(size_t initial_capacity = 8)
    {
        size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        buf.resize(cap);
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Slots before the next growth (tests/sizing). */
    size_t capacity() const { return buf.size(); }

    T &operator[](size_t i)
    {
        GAZE_ASSERT(i < count, "ring index ", i, " out of range ", count);
        return buf[(head + i) & mask()];
    }

    const T &operator[](size_t i) const
    {
        GAZE_ASSERT(i < count, "ring index ", i, " out of range ", count);
        return buf[(head + i) & mask()];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count - 1]; }
    const T &back() const { return (*this)[count - 1]; }

    void
    push_back(const T &v)
    {
        reserveOneMore();
        buf[(head + count) & mask()] = v;
        ++count;
    }

    void
    push_back(T &&v)
    {
        reserveOneMore();
        buf[(head + count) & mask()] = std::move(v);
        ++count;
    }

    void
    pop_front()
    {
        GAZE_ASSERT(count > 0, "pop_front on empty ring");
        head = (head + 1) & mask();
        --count;
    }

    /**
     * Remove element @p i, preserving the relative order of everything
     * else (the FIFO age order FR-FCFS and the PQ dedup scan rely on).
     * Shifts whichever side is shorter.
     */
    void
    erase(size_t i)
    {
        GAZE_ASSERT(i < count, "ring erase ", i, " out of range ", count);
        if (i < count - i - 1) {
            for (size_t j = i; j > 0; --j)
                (*this)[j] = std::move((*this)[j - 1]);
            pop_front();
        } else {
            for (size_t j = i; j + 1 < count; ++j)
                (*this)[j] = std::move((*this)[j + 1]);
            --count;
        }
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    size_t mask() const { return buf.size() - 1; }

    void
    reserveOneMore()
    {
        if (count < buf.size())
            return;
        std::vector<T> bigger(buf.size() * 2);
        for (size_t i = 0; i < count; ++i)
            bigger[i] = std::move(buf[(head + i) & mask()]);
        buf.swap(bigger);
        head = 0;
    }

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
};

} // namespace gaze
