/**
 * @file
 * Generic set-associative, LRU-replaced lookup table.
 *
 * Every metadata structure in the paper is a small set-associative table
 * with LRU replacement: Gaze's FT (8-way x 64), AT (8-way x 64),
 * PHT (4-way x 64 sets), PB (8-way x 32), DPCT (fully associative x 8),
 * and the equivalents inside SMS/Bingo/DSPatch/PMP. This template
 * implements that shape once, with eviction reporting so callers can run
 * "learning on eviction" logic (e.g. the AT sends its footprint to the
 * PHM when an entry is replaced).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gaze
{

/**
 * Set-associative table of EntryT payloads addressed by (set, tag).
 *
 * The caller owns the set-index and tag derivation (tables in the paper
 * index by region number, trigger offset, hashed PC, ...). A table with
 * one set is fully associative.
 */
template <typename EntryT>
class LruTable
{
  public:
    /** An evicted (tag, payload) pair reported from insert(). */
    struct Evicted
    {
        uint64_t tag;
        EntryT data;
    };

    /**
     * @param num_sets number of sets (a power of two: every caller
     *        derives the set index with `key & (sets() - 1)`, which
     *        silently aliases or skips sets for other counts)
     * @param num_ways associativity (>=1)
     */
    LruTable(size_t num_sets, size_t num_ways)
        : numSets(num_sets), numWays(num_ways),
          slots(num_sets * num_ways), setStamp(num_sets, 0)
    {
        GAZE_ASSERT(isPowerOfTwo(num_sets),
                    "set count must be a power of two, got ", num_sets);
        GAZE_ASSERT(num_ways >= 1, "bad geometry");
    }

    /** Total capacity in entries. */
    size_t capacity() const { return numSets * numWays; }

    size_t sets() const { return numSets; }
    size_t ways() const { return numWays; }

    /**
     * Look up (set, tag); returns the payload or nullptr.
     * @param touch refresh the entry's LRU position on hit (default).
     */
    EntryT *
    find(uint64_t set, uint64_t tag, bool touch = true)
    {
        Slot *s = findSlot(set, tag);
        if (!s)
            return nullptr;
        if (touch)
            s->stamp = nextStamp(set);
        return &s->data;
    }

    /** Const lookup that never touches LRU state. */
    const EntryT *
    peek(uint64_t set, uint64_t tag) const
    {
        const Slot *s = const_cast<LruTable *>(this)->findSlot(set, tag);
        return s ? &s->data : nullptr;
    }

    /** True iff (set, tag) is present. */
    bool contains(uint64_t set, uint64_t tag) const
    {
        return peek(set, tag) != nullptr;
    }

    /**
     * Insert (or overwrite) the payload for (set, tag), refreshing LRU.
     * When the set is full and the tag is new, the LRU way is replaced
     * and its contents returned so the caller can learn from it.
     */
    std::optional<Evicted>
    insert(uint64_t set, uint64_t tag, EntryT data)
    {
        checkSet(set);
        Slot *hit = findSlot(set, tag);
        if (hit) {
            hit->data = std::move(data);
            hit->stamp = nextStamp(set);
            return std::nullopt;
        }

        Slot *victim = nullptr;
        for (size_t w = 0; w < numWays; ++w) {
            Slot &s = slotAt(set, w);
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (!victim || s.stamp < victim->stamp)
                victim = &s;
        }

        std::optional<Evicted> out;
        if (victim->valid)
            out = Evicted{victim->tag, std::move(victim->data)};
        victim->valid = true;
        victim->tag = tag;
        victim->data = std::move(data);
        victim->stamp = nextStamp(set);
        return out;
    }

    /**
     * Remove (set, tag) and return its payload, if present.
     * Used when a region is deactivated explicitly (e.g. a tracked
     * block is evicted from the cache, ending the AT generation).
     */
    std::optional<EntryT>
    erase(uint64_t set, uint64_t tag)
    {
        Slot *s = findSlot(set, tag);
        if (!s)
            return std::nullopt;
        s->valid = false;
        return std::move(s->data);
    }

    /** Drop every entry. */
    void
    clear()
    {
        for (auto &s : slots)
            s.valid = false;
    }

    /** Number of valid entries (O(capacity)). */
    size_t
    occupancy() const
    {
        size_t n = 0;
        for (const auto &s : slots)
            n += s.valid;
        return n;
    }

    /**
     * Visit every valid entry as fn(set, tag, EntryT&). Iteration order
     * is unspecified; mutation of payloads is allowed.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t set = 0; set < numSets; ++set) {
            for (size_t w = 0; w < numWays; ++w) {
                Slot &s = slotAt(set, w);
                if (s.valid)
                    fn(set, s.tag, s.data);
            }
        }
    }

    /**
     * Return the tag that LRU would evict next from @p set, if the set
     * is full; nullopt while there is still an invalid way.
     */
    std::optional<uint64_t>
    victimTag(uint64_t set) const
    {
        checkSet(set);
        const Slot *victim = nullptr;
        for (size_t w = 0; w < numWays; ++w) {
            const Slot &s = slots[set * numWays + w];
            if (!s.valid)
                return std::nullopt;
            if (!victim || s.stamp < victim->stamp)
                victim = &s;
        }
        return victim->tag;
    }

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t stamp = 0;
        EntryT data{};
    };

    void
    checkSet(uint64_t set) const
    {
        GAZE_ASSERT(set < numSets, "set ", set, " out of range ", numSets);
    }

    Slot &slotAt(size_t set, size_t way) { return slots[set * numWays + way]; }

    Slot *
    findSlot(uint64_t set, uint64_t tag)
    {
        checkSet(set);
        for (size_t w = 0; w < numWays; ++w) {
            Slot &s = slotAt(set, w);
            if (s.valid && s.tag == tag)
                return &s;
        }
        return nullptr;
    }

    uint64_t nextStamp(uint64_t set) { return ++setStamp[set]; }

    size_t numSets;
    size_t numWays;
    std::vector<Slot> slots;
    std::vector<uint64_t> setStamp;
};

} // namespace gaze
