/**
 * @file
 * Generic set-associative, LRU-replaced lookup table.
 *
 * Every metadata structure in the paper is a small set-associative table
 * with LRU replacement: Gaze's FT (8-way x 64), AT (8-way x 64),
 * PHT (4-way x 64 sets), PB (8-way x 32), DPCT (fully associative x 8),
 * and the equivalents inside SMS/Bingo/DSPatch/PMP. This template
 * implements that shape once, with eviction reporting so callers can run
 * "learning on eviction" logic (e.g. the AT sends its footprint to the
 * PHM when an entry is replaced).
 *
 * Layout: split arrays, not an array of slot structs. A set scan reads
 * only the tag array (8 ways x 8B = one cache line) plus the stamp
 * array; payloads — which can be fat (the PB's pattern vectors) — are
 * touched only on a hit. Validity is encoded in the stamp (0 =
 * invalid; live stamps start at 1), so the scan needs no third array.
 * acquire() additionally lets a caller claim the victim slot and
 * rebuild its payload *in place*, which is what makes the prefetch
 * buffer's install path allocation-free (pattern vectors are recycled
 * with their heap capacity intact).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gaze
{

/**
 * Set-associative table of EntryT payloads addressed by (set, tag).
 *
 * The caller owns the set-index and tag derivation (tables in the paper
 * index by region number, trigger offset, hashed PC, ...). A table with
 * one set is fully associative.
 */
template <typename EntryT>
class LruTable
{
  public:
    /** An evicted (tag, payload) pair reported from insert(). */
    struct Evicted
    {
        uint64_t tag;
        EntryT data;
    };

    /**
     * Result of acquire(): the payload slot for (set, tag). On a miss
     * the slot is the claimed victim and still holds the *previous*
     * payload — the caller must fully reinitialize it (reusing any
     * heap capacity it carries).
     */
    struct Acquired
    {
        EntryT *data;
        bool hit;
        bool evicted;        ///< the claimed way held a valid entry
        uint64_t evictedTag; ///< meaningful only when evicted
    };

    /**
     * @param num_sets number of sets (a power of two: every caller
     *        derives the set index with `key & (sets() - 1)`, which
     *        silently aliases or skips sets for other counts)
     * @param num_ways associativity (>=1)
     */
    LruTable(size_t num_sets, size_t num_ways)
        : numSets(num_sets), numWays(num_ways),
          tags(num_sets * num_ways, 0), stamps(num_sets * num_ways, 0),
          payload(num_sets * num_ways), setStamp(num_sets, 0)
    {
        GAZE_ASSERT(isPowerOfTwo(num_sets),
                    "set count must be a power of two, got ", num_sets);
        GAZE_ASSERT(num_ways >= 1, "bad geometry");
    }

    /** Total capacity in entries. */
    size_t capacity() const { return numSets * numWays; }

    size_t sets() const { return numSets; }
    size_t ways() const { return numWays; }

    /**
     * Look up (set, tag); returns the payload or nullptr.
     * @param touch refresh the entry's LRU position on hit (default).
     */
    EntryT *
    find(uint64_t set, uint64_t tag, bool touch = true)
    {
        size_t i = findSlot(set, tag);
        if (i == kNoSlot)
            return nullptr;
        if (touch)
            stamps[i] = nextStamp(set);
        return &payload[i];
    }

    /** Const lookup that never touches LRU state. */
    const EntryT *
    peek(uint64_t set, uint64_t tag) const
    {
        size_t i = const_cast<LruTable *>(this)->findSlot(set, tag);
        return i == kNoSlot ? nullptr : &payload[i];
    }

    /** True iff (set, tag) is present. */
    bool contains(uint64_t set, uint64_t tag) const
    {
        return peek(set, tag) != nullptr;
    }

    /**
     * Claim the slot for (set, tag) without constructing a payload: a
     * hit touches LRU and returns the existing entry; a miss claims
     * the LRU victim (identical victim choice to insert()), retags and
     * touches it, and reports what it evicted. The returned payload is
     * the victim's old contents, for in-place reinitialization.
     */
    Acquired
    acquire(uint64_t set, uint64_t tag)
    {
        size_t i = findSlot(set, tag);
        if (i != kNoSlot) {
            stamps[i] = nextStamp(set);
            return Acquired{&payload[i], true, false, 0};
        }
        size_t v = victimSlot(set);
        Acquired out{&payload[v], false, stamps[v] != 0, tags[v]};
        tags[v] = tag;
        stamps[v] = nextStamp(set);
        return out;
    }

    /**
     * Insert (or overwrite) the payload for (set, tag), refreshing LRU.
     * When the set is full and the tag is new, the LRU way is replaced
     * and its contents returned so the caller can learn from it.
     */
    std::optional<Evicted>
    insert(uint64_t set, uint64_t tag, EntryT data)
    {
        size_t i = findSlot(set, tag);
        if (i != kNoSlot) {
            payload[i] = std::move(data);
            stamps[i] = nextStamp(set);
            return std::nullopt;
        }

        size_t v = victimSlot(set);
        std::optional<Evicted> out;
        if (stamps[v] != 0)
            out = Evicted{tags[v], std::move(payload[v])};
        tags[v] = tag;
        payload[v] = std::move(data);
        stamps[v] = nextStamp(set);
        return out;
    }

    /**
     * Remove (set, tag) and return its payload, if present.
     * Used when a region is deactivated explicitly (e.g. a tracked
     * block is evicted from the cache, ending the AT generation).
     */
    std::optional<EntryT>
    erase(uint64_t set, uint64_t tag)
    {
        size_t i = findSlot(set, tag);
        if (i == kNoSlot)
            return std::nullopt;
        stamps[i] = 0;
        return std::move(payload[i]);
    }

    /** Drop every entry. */
    void
    clear()
    {
        for (auto &s : stamps)
            s = 0;
    }

    /** Number of valid entries (O(capacity)). */
    size_t
    occupancy() const
    {
        size_t n = 0;
        for (auto s : stamps)
            n += s != 0;
        return n;
    }

    /**
     * Visit every valid entry as fn(set, tag, EntryT&). Iteration order
     * is unspecified; mutation of payloads is allowed.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t set = 0; set < numSets; ++set) {
            for (size_t w = 0; w < numWays; ++w) {
                size_t i = set * numWays + w;
                if (stamps[i] != 0)
                    fn(set, tags[i], payload[i]);
            }
        }
    }

    /**
     * Return the tag that LRU would evict next from @p set, if the set
     * is full; nullopt while there is still an invalid way.
     */
    std::optional<uint64_t>
    victimTag(uint64_t set) const
    {
        checkSet(set);
        size_t base = set * numWays;
        size_t best = kNoSlot;
        for (size_t w = 0; w < numWays; ++w) {
            size_t i = base + w;
            if (stamps[i] == 0)
                return std::nullopt;
            if (best == kNoSlot || stamps[i] < stamps[best])
                best = i;
        }
        return tags[best];
    }

  private:
    static constexpr size_t kNoSlot = ~size_t(0);

    void
    checkSet(uint64_t set) const
    {
        GAZE_ASSERT(set < numSets, "set ", set, " out of range ", numSets);
    }

    size_t
    findSlot(uint64_t set, uint64_t tag)
    {
        checkSet(set);
        size_t base = set * numWays;
        for (size_t w = 0; w < numWays; ++w) {
            size_t i = base + w;
            if (tags[i] == tag && stamps[i] != 0)
                return i;
        }
        return kNoSlot;
    }

    /**
     * The way insert()/acquire() claim: stamp 0 (invalid) sorts below
     * every live stamp (which start at 1), so a single min-stamp,
     * first-wins scan lands on the first free way when one exists and
     * on true LRU otherwise.
     */
    size_t
    victimSlot(uint64_t set) const
    {
        size_t base = set * numWays;
        size_t best = base;
        for (size_t w = 1; w < numWays; ++w) {
            if (stamps[base + w] < stamps[best])
                best = base + w;
        }
        return best;
    }

    uint64_t nextStamp(uint64_t set) { return ++setStamp[set]; }

    size_t numSets;
    size_t numWays;
    std::vector<uint64_t> tags;
    std::vector<uint64_t> stamps;
    std::vector<EntryT> payload;
    std::vector<uint64_t> setStamp;
};

} // namespace gaze
