#include "tracing/trace_io.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace gaze
{
namespace
{

/** Writer/reader chunk size: bounds FileTrace memory per open file. */
constexpr size_t kIoChunkBytes = 64 * 1024;

/** Worst-case encoded record: tag + three maximal varints. */
constexpr size_t kMaxRecordBytes = 1 + 3 * kMaxVarintBytes;

void
putLe32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(in[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(in[i]) << (8 * i);
    return v;
}

/**
 * Encode one record into @p out (>= kMaxRecordBytes free); advances
 * the delta state. Returns bytes written.
 */
size_t
encodeRecord(uint8_t *out, const TraceRecord &rec, PC &prev_pc,
             Addr &prev_vaddr)
{
    uint8_t tag = static_cast<uint8_t>(rec.op) & kGztOpMask;
    if (rec.stallCycles != 0)
        tag |= kGztHasStall;
    if (rec.vaddr != 0)
        tag |= kGztHasVaddr;
    size_t n = 0;
    out[n++] = tag;
    n += putVarint(out + n,
                   zigzagEncode(int64_t(rec.pc - prev_pc)));
    prev_pc = rec.pc;
    if (tag & kGztHasVaddr) {
        n += putVarint(out + n,
                       zigzagEncode(int64_t(rec.vaddr - prev_vaddr)));
        prev_vaddr = rec.vaddr;
    }
    if (tag & kGztHasStall)
        n += putVarint(out + n, rec.stallCycles);
    return n;
}

/**
 * Decode one record from [@p in, @p end). Returns bytes consumed, 0 on
 * a malformed or incomplete record (with a reason in @p error).
 */
size_t
decodeRecord(const uint8_t *in, const uint8_t *end, TraceRecord *rec,
             PC &prev_pc, Addr &prev_vaddr, std::string *error)
{
    if (in >= end) {
        *error = "record truncated (missing tag byte)";
        return 0;
    }
    uint8_t tag = in[0];
    if (tag & kGztReservedMask) {
        *error = "corrupt record tag (reserved bits set)";
        return 0;
    }
    uint8_t op = tag & kGztOpMask;
    if (op > static_cast<uint8_t>(TraceOp::Stall)) {
        *error = "corrupt record tag (unknown op)";
        return 0;
    }
    size_t n = 1;
    uint64_t raw = 0;
    size_t used = getVarint(in + n, end, &raw);
    if (!used) {
        *error = "record truncated (pc delta)";
        return 0;
    }
    n += used;
    rec->pc = prev_pc + uint64_t(zigzagDecode(raw));
    prev_pc = rec->pc;

    rec->vaddr = 0;
    if (tag & kGztHasVaddr) {
        used = getVarint(in + n, end, &raw);
        if (!used) {
            *error = "record truncated (vaddr delta)";
            return 0;
        }
        n += used;
        rec->vaddr = prev_vaddr + uint64_t(zigzagDecode(raw));
        prev_vaddr = rec->vaddr;
    }

    rec->stallCycles = 0;
    if (tag & kGztHasStall) {
        used = getVarint(in + n, end, &raw);
        if (!used) {
            *error = "record truncated (stall cycles)";
            return 0;
        }
        if (raw > UINT16_MAX) {
            *error = "corrupt record (stall cycles out of range)";
            return 0;
        }
        n += used;
        rec->stallCycles = static_cast<uint16_t>(raw);
    }

    rec->op = static_cast<TraceOp>(op);
    return n;
}

} // namespace

uint64_t
TraceFileHeader::payloadOffset() const
{
    return kGztFixedHeaderBytes + meta.size();
}

// ---- TraceWriter ----------------------------------------------------

TraceWriter::TraceWriter(const std::string &path_, std::string meta_)
    : path(path_), out(path_, std::ios::binary | std::ios::trunc)
{
    if (!out)
        GAZE_FATAL("cannot create trace file '", path, "'");
    GAZE_ASSERT(meta_.size() <= UINT32_MAX, "trace meta too long");

    // Placeholder header; finish() rewrites it with real totals. The
    // placeholder deliberately carries version 0 so an unfinished file
    // is rejected by probeTraceFile, not replayed short.
    uint8_t head[kGztFixedHeaderBytes] = {};
    putLe32(head + 0, kGztMagic);
    putLe32(head + 32, static_cast<uint32_t>(meta_.size()));
    out.write(reinterpret_cast<const char *>(head), sizeof(head));
    out.write(meta_.data(), static_cast<std::streamsize>(meta_.size()));
    if (!out)
        GAZE_FATAL("write failed on trace file '", path, "'");
    buffer.reserve(kIoChunkBytes + kMaxRecordBytes);
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    hash.update(buffer.data(), buffer.size());
    out.write(reinterpret_cast<const char *>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    if (!out)
        GAZE_FATAL("write failed on trace file '", path, "'");
    buffer.clear();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    GAZE_ASSERT(!finished, "append to a finished TraceWriter");
    uint8_t enc[kMaxRecordBytes];
    size_t n = encodeRecord(enc, rec, prevPc, prevVaddr);
    buffer.insert(buffer.end(), enc, enc + n);
    payloadBytes += n;
    ++count;
    if (buffer.size() >= kIoChunkBytes)
        flushBuffer();
}

void
TraceWriter::appendAll(const std::vector<TraceRecord> &recs)
{
    for (const auto &r : recs)
        append(r);
}

void
TraceWriter::finish()
{
    if (finished)
        return;
    finished = true;
    flushBuffer();

    uint8_t totals[28];
    putLe32(totals + 0, kGztVersion);
    putLe64(totals + 4, count);
    putLe64(totals + 12, payloadBytes);
    putLe64(totals + 20, hash.digest());
    out.seekp(4, std::ios::beg);
    out.write(reinterpret_cast<const char *>(totals), sizeof(totals));
    out.close();
    if (!out)
        GAZE_FATAL("finalizing trace file '", path, "' failed");
}

// ---- probe / validate -----------------------------------------------

namespace
{

bool
readHeader(std::ifstream &in, const std::string &path,
           TraceFileHeader *header, std::string *error)
{
    uint8_t head[kGztFixedHeaderBytes];
    in.read(reinterpret_cast<char *>(head), sizeof(head));
    if (in.gcount() != std::streamsize(sizeof(head))) {
        *error = path + ": truncated header (not a .gzt file?)";
        return false;
    }
    if (getLe32(head + 0) != kGztMagic) {
        *error = path + ": bad magic (not a .gzt trace file)";
        return false;
    }
    header->version = getLe32(head + 4);
    if (header->version != kGztVersion) {
        *error = path + ": unsupported .gzt version "
                 + std::to_string(header->version) + " (expected "
                 + std::to_string(kGztVersion)
                 + "; version 0 means an unfinished recording)";
        return false;
    }
    header->recordCount = getLe64(head + 8);
    header->payloadBytes = getLe64(head + 16);
    header->checksum = getLe64(head + 24);

    uint32_t meta_len = getLe32(head + 32);
    header->meta.resize(meta_len);
    if (meta_len) {
        in.read(header->meta.data(), meta_len);
        if (in.gcount() != std::streamsize(meta_len)) {
            *error = path + ": truncated meta string";
            return false;
        }
    }

    in.seekg(0, std::ios::end);
    uint64_t file_size = static_cast<uint64_t>(in.tellg());
    uint64_t want = header->payloadOffset() + header->payloadBytes;
    if (file_size != want) {
        *error = path + ": file size " + std::to_string(file_size)
                 + " does not match header (expected "
                 + std::to_string(want) + " bytes; truncated?)";
        return false;
    }
    return true;
}

} // namespace

bool
probeTraceFile(const std::string &path, TraceFileHeader *header,
               std::string *error)
{
    TraceFileHeader local;
    std::string local_err;
    TraceFileHeader *h = header ? header : &local;
    std::string *e = error ? error : &local_err;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *e = path + ": cannot open trace file";
        return false;
    }
    return readHeader(in, path, h, e);
}

bool
validateTraceFile(const std::string &path, TraceFileHeader *header,
                  std::string *error, TraceOpHistogram *histogram)
{
    TraceFileHeader local;
    std::string local_err;
    TraceFileHeader *h = header ? header : &local;
    std::string *e = error ? error : &local_err;

    if (!probeTraceFile(path, h, e))
        return false;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *e = path + ": cannot open trace file";
        return false;
    }
    in.seekg(static_cast<std::streamoff>(h->payloadOffset()));

    // Stream the payload through the same bounded buffer discipline
    // FileTrace uses, decoding every record and hashing every byte.
    std::vector<uint8_t> buf;
    buf.reserve(kIoChunkBytes + kMaxRecordBytes);
    Fnv1a hash;
    uint64_t records = 0, bytes = 0;
    PC prev_pc = 0;
    Addr prev_vaddr = 0;
    size_t pos = 0;
    bool eof = false;
    std::string reason;
    while (bytes < h->payloadBytes) {
        if (!eof && buf.size() - pos < kMaxRecordBytes) {
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<ptrdiff_t>(pos));
            pos = 0;
            size_t old = buf.size();
            buf.resize(old + kIoChunkBytes);
            in.read(reinterpret_cast<char *>(buf.data() + old),
                    kIoChunkBytes);
            size_t got = static_cast<size_t>(in.gcount());
            buf.resize(old + got);
            hash.update(buf.data() + old, got);
            eof = got < kIoChunkBytes;
        }
        TraceRecord rec;
        size_t used = decodeRecord(buf.data() + pos,
                                   buf.data() + buf.size(), &rec,
                                   prev_pc, prev_vaddr, &reason);
        if (!used) {
            *e = path + ": payload corrupt at record "
                 + std::to_string(records) + ": " + reason;
            return false;
        }
        pos += used;
        bytes += used;
        ++records;
        if (histogram)
            ++histogram->counts[static_cast<uint8_t>(rec.op)];
    }
    if (bytes != h->payloadBytes || pos != buf.size()) {
        *e = path + ": payload does not end on a record boundary";
        return false;
    }
    if (records != h->recordCount) {
        *e = path + ": decoded " + std::to_string(records)
             + " records but header says "
             + std::to_string(h->recordCount);
        return false;
    }
    if (hash.digest() != h->checksum) {
        *e = path + ": payload checksum mismatch (file corrupt)";
        return false;
    }
    return true;
}

// ---- FileTrace ------------------------------------------------------

FileTrace::FileTrace(const std::string &path_)
    : path(path_)
{
    std::string error;
    if (!probeTraceFile(path, &head, &error))
        GAZE_FATAL("unusable trace: ", error);
    in.open(path, std::ios::binary);
    if (!in)
        GAZE_FATAL("cannot open trace file '", path, "'");
    buffer.reserve(kIoChunkBytes + kMaxRecordBytes);
    reset();
}

void
FileTrace::reset()
{
    in.clear();
    in.seekg(static_cast<std::streamoff>(head.payloadOffset()));
    buffer.clear();
    bufPos = 0;
    bufLen = 0;
    consumed = 0;
    delivered = 0;
    prevPc = 0;
    prevVaddr = 0;
}

bool
FileTrace::fill(size_t need)
{
    if (bufLen - bufPos >= need)
        return true;
    buffer.erase(buffer.begin(), buffer.begin()
                                     + static_cast<ptrdiff_t>(bufPos));
    bufLen -= bufPos;
    bufPos = 0;
    uint64_t left = head.payloadBytes - consumed - bufLen;
    size_t want = left < kIoChunkBytes ? static_cast<size_t>(left)
                                       : kIoChunkBytes;
    if (want) {
        buffer.resize(bufLen + want);
        in.read(reinterpret_cast<char *>(buffer.data() + bufLen),
                static_cast<std::streamsize>(want));
        size_t got = static_cast<size_t>(in.gcount());
        buffer.resize(bufLen + got);
        bufLen += got;
    }
    return bufLen - bufPos >= need;
}

bool
FileTrace::next(TraceRecord &out)
{
    if (delivered >= head.recordCount)
        return false;
    fill(kMaxRecordBytes); // best effort; short near end-of-payload
    std::string reason;
    size_t used = decodeRecord(buffer.data() + bufPos,
                               buffer.data() + bufLen, &out, prevPc,
                               prevVaddr, &reason);
    if (!used)
        GAZE_FATAL("trace file '", path, "' record ", delivered, ": ",
                   reason, " (file changed since probe?)");
    bufPos += used;
    consumed += used;
    ++delivered;
    return true;
}

std::string
traceFileName(const std::string &workload)
{
    return workload + ".gzt";
}

std::string
traceCacheKeyFromHeader(const TraceFileHeader &header)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "gzt:v%u:%llu:%016llx",
                  header.version,
                  static_cast<unsigned long long>(header.recordCount),
                  static_cast<unsigned long long>(header.checksum));
    return buf;
}

std::string
traceCacheKey(const std::string &path)
{
    TraceFileHeader head;
    std::string error;
    if (!probeTraceFile(path, &head, &error))
        GAZE_FATAL("cannot derive cache key: ", error);
    return traceCacheKeyFromHeader(head);
}

} // namespace gaze
