/**
 * @file
 * The .gzt on-disk trace format, version 1.
 *
 * A .gzt file is a fixed little-endian header followed by a
 * varint-delta-encoded payload of TraceRecords:
 *
 *   offset  size  field
 *   0       4     magic "GZTF"
 *   4       4     format version (currently 1)
 *   8       8     record count
 *   16      8     payload size in bytes
 *   24      8     FNV-1a 64 checksum of the payload bytes
 *   32      4     meta length M
 *   36      M     meta string (workload provenance, UTF-8, no NUL)
 *   36+M    ...   payload
 *
 * Each payload record is:
 *
 *   tag byte:  bits 0-2  TraceOp
 *              bit  3    stall field present (stallCycles != 0)
 *              bit  4    vaddr field present (vaddr != 0)
 *              bits 5-7  reserved, must be zero
 *   varint     zigzag(pc - previous pc)
 *   [varint    zigzag(vaddr - previous present vaddr)]   if bit 4
 *   [varint    stallCycles]                              if bit 3
 *
 * Deltas start from zero at the beginning of the payload; the vaddr
 * predictor only advances on records that carry a vaddr, so NonMem
 * records interleaved with a stream do not break its deltas. Both the
 * writer and the reader live in trace_io.hh; this header only defines
 * the layout constants and the primitive varint/zigzag/checksum codecs
 * shared between them (and unit-tested directly).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gaze
{

/** "GZTF" in little-endian byte order. */
constexpr uint32_t kGztMagic = 0x46545A47u;

/** Current .gzt format version. */
constexpr uint32_t kGztVersion = 1;

/** Fixed header bytes before the variable-length meta string. */
constexpr size_t kGztFixedHeaderBytes = 36;

/** Longest LEB128 encoding of a uint64_t. */
constexpr size_t kMaxVarintBytes = 10;

/** Tag-byte layout. */
constexpr uint8_t kGztOpMask = 0x07;
constexpr uint8_t kGztHasStall = 0x08;
constexpr uint8_t kGztHasVaddr = 0x10;
constexpr uint8_t kGztReservedMask = 0xE0;

/** Map a signed delta onto small unsigned values (protobuf zigzag). */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1)
           ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/**
 * Append the LEB128 encoding of @p v to @p out; returns bytes written.
 * @p out must have room for kMaxVarintBytes.
 */
inline size_t
putVarint(uint8_t *out, uint64_t v)
{
    size_t n = 0;
    while (v >= 0x80) {
        out[n++] = static_cast<uint8_t>(v) | 0x80;
        v >>= 7;
    }
    out[n++] = static_cast<uint8_t>(v);
    return n;
}

/**
 * Decode a LEB128 varint from [@p in, @p end). Returns bytes consumed,
 * or 0 when the buffer ends mid-varint or the encoding overflows 64
 * bits (both mean a corrupt or truncated payload).
 */
inline size_t
getVarint(const uint8_t *in, const uint8_t *end, uint64_t *v)
{
    uint64_t result = 0;
    size_t n = 0;
    while (in + n < end && n < kMaxVarintBytes) {
        uint8_t byte = in[n];
        // The 10th byte holds value bit 63 only; anything above
        // overflows uint64 and must be rejected, not shifted away.
        if (n == kMaxVarintBytes - 1 && byte > 1)
            return 0;
        result |= uint64_t(byte & 0x7F) << (7 * n);
        ++n;
        if (!(byte & 0x80)) {
            *v = result;
            return n;
        }
    }
    return 0;
}

/** Streaming FNV-1a 64 over the payload bytes. */
class Fnv1a
{
  public:
    void
    update(const uint8_t *data, size_t len)
    {
        for (size_t i = 0; i < len; ++i) {
            state ^= data[i];
            state *= 0x100000001b3ULL;
        }
    }

    uint64_t digest() const { return state; }

  private:
    uint64_t state = 0xcbf29ce484222325ULL;
};

} // namespace gaze
