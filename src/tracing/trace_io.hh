/**
 * @file
 * Binary trace record/replay: TraceWriter serializes a TraceRecord
 * stream into a .gzt file (see trace_format.hh for the layout) and
 * FileTrace streams one back as a TraceSource, so any workload the
 * registry knows can be recorded once and replayed bit-identically —
 * the gaze_trace CLI and gaze_sim --trace-dir are thin wrappers over
 * these.
 *
 * Error handling follows the repo convention: probe/validate are
 * non-fatal (they return false plus a diagnostic, for CLI-friendly
 * reporting and negative tests), while FileTrace treats an unusable
 * file as a fatal configuration error.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "tracing/trace_format.hh"

namespace gaze
{

/** Parsed .gzt header (everything before the payload). */
struct TraceFileHeader
{
    uint32_t version = 0;
    uint64_t recordCount = 0;
    uint64_t payloadBytes = 0;
    uint64_t checksum = 0;
    std::string meta; ///< provenance, e.g. "workload=mcf scale=1"

    /** First payload byte's offset in the file. */
    uint64_t payloadOffset() const;
};

/**
 * Streams TraceRecords into @p path. The header is back-patched with
 * the final count/size/checksum by finish() (also run by the
 * destructor), so a crash mid-write leaves a file that probe/validate
 * reject rather than a silently short trace. I/O failures are fatal.
 */
class TraceWriter
{
  public:
    /** @param meta free-form provenance recorded in the header. */
    explicit TraceWriter(const std::string &path, std::string meta = "");
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (delta state advances). */
    void append(const TraceRecord &rec);

    /** Append a whole in-memory trace. */
    void appendAll(const std::vector<TraceRecord> &recs);

    /** Flush, back-patch the header, close. Idempotent. */
    void finish();

    uint64_t recordsWritten() const { return count; }
    uint64_t payloadBytesWritten() const { return payloadBytes; }

  private:
    void flushBuffer();

    std::string path;
    std::ofstream out;
    std::vector<uint8_t> buffer;
    Fnv1a hash;
    uint64_t count = 0;
    uint64_t payloadBytes = 0;
    PC prevPc = 0;
    Addr prevVaddr = 0;
    bool finished = false;
};

/**
 * Read and sanity-check just the header: magic, version, meta length
 * and payload size versus the actual file size. Cheap (no payload
 * decode). Returns false with a one-line reason in @p error.
 */
bool probeTraceFile(const std::string &path, TraceFileHeader *header,
                    std::string *error);

/** Per-op record counts of one trace payload (indexed by TraceOp). */
struct TraceOpHistogram
{
    uint64_t counts[5] = {0, 0, 0, 0, 0};

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t c : counts)
            sum += c;
        return sum;
    }
};

/**
 * Full integrity check: probe, then decode every record and verify the
 * record count, payload size and checksum all match the header. When
 * @p histogram is non-null it receives the per-op record counts (this
 * is what gaze_trace info --json reports).
 */
bool validateTraceFile(const std::string &path, TraceFileHeader *header,
                       std::string *error,
                       TraceOpHistogram *histogram = nullptr);

/**
 * Stable identity of a recorded trace for result-cache keys:
 * "gzt:v<version>:<records>:<checksum hex>". Only reads the header
 * (the checksum was computed over the whole payload at record time).
 * Fatal on a missing or malformed file — cache keys must never be
 * derived from guesses.
 */
std::string traceCacheKey(const std::string &path);

/** The same key from an already-probed header (no file I/O). */
std::string traceCacheKeyFromHeader(const TraceFileHeader &header);

/**
 * A .gzt file as a TraceSource: decodes records through a fixed-size
 * read buffer (never the whole payload in memory), and reset() seeks
 * back to the payload start so multi-pass replay works like
 * VectorTrace. Construction is fatal on a missing or malformed file;
 * a payload that ends early mid-record is fatal at next() (the header
 * said there was more).
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    bool next(TraceRecord &out) override;
    void reset() override;

    const TraceFileHeader &header() const { return head; }
    uint64_t size() const { return head.recordCount; }

  private:
    /** Top up the buffer so >= @p need bytes are decodable. */
    bool fill(size_t need);

    std::string path;
    std::ifstream in;
    TraceFileHeader head;

    std::vector<uint8_t> buffer;
    size_t bufPos = 0;   ///< next undecoded byte in buffer
    size_t bufLen = 0;   ///< valid bytes in buffer
    uint64_t consumed = 0; ///< payload bytes fully decoded so far
    uint64_t delivered = 0; ///< records returned since reset
    PC prevPc = 0;
    Addr prevVaddr = 0;
};

/** Conventional file name for a recorded workload: "<name>.gzt". */
std::string traceFileName(const std::string &workload);

} // namespace gaze
