#include "sim/core.hh"

#include "common/log.hh"
#include "sim/vmem.hh"

namespace gaze
{

Core::Core(const CoreParams &params, uint32_t cpu_id, MemoryDevice *l1,
           VirtualMemory *vm, const Cycle *clock_ptr)
    : cfg(params), cpu(cpu_id), l1d(l1), vmem(vm), clock(clock_ptr)
{
    GAZE_ASSERT(l1d && vmem && clock, "core wiring incomplete");
}

void
Core::setTrace(TraceSource *t)
{
    trace = t;
}

void
Core::recvFill(const Request &req)
{
    if (req.token & storeTokenBit) {
        GAZE_ASSERT(sqOccupancy > 0, "store completion underflow");
        --sqOccupancy;
        return;
    }
    if (rob.empty())
        return;
    uint64_t id = req.token;
    uint64_t head = rob.front().id;
    if (id < head)
        return; // already retired (cannot happen for loads, but be safe)
    size_t idx = id - head;
    GAZE_ASSERT(idx < rob.size(), "fill for unknown instruction");
    RobEntry &e = rob[idx];
    GAZE_ASSERT((e.op == TraceOp::Load
                 || e.op == TraceOp::DependentLoad) && e.issued,
                "bogus load fill");
    if (!e.done) {
        e.done = true;
        GAZE_ASSERT(lqOccupancy > 0, "LQ underflow");
        --lqOccupancy;
    }
}

void
Core::retire()
{
    for (uint32_t n = 0; n < cfg.retireWidth && !rob.empty(); ++n) {
        RobEntry &head = rob.front();
        if (head.op == TraceOp::Store) {
            // Stores retire by firing their RFO; they occupy an SQ
            // slot until the line arrives (write is post-commit).
            if (sqOccupancy >= cfg.sqSize)
                break;
            Request r;
            r.type = AccessType::Rfo;
            r.vaddr = head.vaddr;
            r.paddr = vmem->translate(head.vaddr, cpu);
            r.pc = head.pc;
            r.cpu = cpu;
            r.fillLevel = levelL1;
            r.requester = this;
            r.token = storeTokenBit | head.id;
            r.issueCycle = now();
            if (!l1d->sendRequest(r))
                break;
            ++sqOccupancy;
            ++stat.stores;
        } else if (!head.done) {
            break;
        } else if (head.op == TraceOp::Load
                   || head.op == TraceOp::DependentLoad) {
            ++stat.loads;
        }
        rob.pop_front();
        ++retiredCount;
        ++stat.instructions;
    }
}

void
Core::issueLoads()
{
    uint32_t issued = 0;
    while (issued < cfg.loadPorts && !pendingLoadOffsets.empty()) {
        if (lqOccupancy >= cfg.lqSize)
            return;
        uint64_t id = pendingLoadOffsets.front();
        GAZE_ASSERT(!rob.empty() && id >= rob.front().id,
                    "pending load fell out of the ROB");
        RobEntry &e = rob[id - rob.front().id];
        // Dependent loads model pointer chasing: the next hop's address
        // comes from the previous load, so it cannot issue while any
        // load is outstanding.
        if (e.op == TraceOp::DependentLoad && lqOccupancy > 0)
            return;

        Request r;
        r.type = AccessType::Load;
        r.vaddr = e.vaddr;
        r.paddr = vmem->translate(e.vaddr, cpu);
        r.pc = e.pc;
        r.cpu = cpu;
        r.fillLevel = levelL1;
        r.requester = this;
        r.token = e.id;
        r.issueCycle = now();
        if (!l1d->sendRequest(r))
            return; // L1D read queue full; retry next cycle
        e.issued = true;
        ++lqOccupancy;
        pendingLoadOffsets.pop_front();
        ++issued;
    }
}

void
Core::dispatch()
{
    if (!trace)
        return;
    if (now() < frontendStallUntil) {
        ++stat.frontendStallCycles;
        return;
    }
    for (uint32_t n = 0; n < cfg.fetchWidth; ++n) {
        if (rob.size() >= cfg.robSize) {
            ++stat.robFullCycles;
            return;
        }
        TraceRecord rec;
        if (!trace->next(rec)) {
            trace->reset();
            ++stat.traceReplays;
            if (!trace->next(rec))
                return; // empty trace
        }
        if (rec.op == TraceOp::Stall) {
            frontendStallUntil = now() + rec.stallCycles;
            return;
        }
        RobEntry e;
        e.id = nextInstrId++;
        e.op = rec.op;
        e.vaddr = rec.vaddr;
        e.pc = rec.pc;
        bool is_load = rec.op == TraceOp::Load
                       || rec.op == TraceOp::DependentLoad;
        e.done = !is_load;
        rob.push_back(e);
        if (is_load)
            pendingLoadOffsets.push_back(e.id);
    }
}

void
Core::tick()
{
    retire();
    issueLoads();
    dispatch();
}

} // namespace gaze
