#include "sim/core.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/vmem.hh"

namespace gaze
{

Core::Core(const CoreParams &params, uint32_t cpu_id, MemoryDevice *l1,
           VirtualMemory *vm, const Cycle *clock_ptr)
    : cfg(params), cpu(cpu_id), l1d(l1), vmem(vm), clock(clock_ptr)
{
    GAZE_ASSERT(l1d && vmem && clock, "core wiring incomplete");
}

void
Core::setTrace(TraceSource *t)
{
    trace = t;
    // A core without a trace reports nextWakeCycle() == kNeverWake;
    // binding one creates dispatch work, so the wake hint must drop or
    // a gated polled run would never tick this core again.
    sched.requestWake(now());
}

void
Core::recvFill(const Request &req)
{
    // Fills arrive from the L1D's tick, after this core's tick of the
    // cycle (cores tick first): whatever they unblock starts next
    // cycle, exactly as under the polled engine.
    sched.requestWake(now() + 1);

    if (req.token & storeTokenBit) {
        GAZE_ASSERT(sqOccupancy > 0, "store completion underflow");
        --sqOccupancy;
        return;
    }
    if (rob.empty())
        return;
    uint64_t id = req.token;
    uint64_t head = rob.front().id;
    if (id < head)
        return; // already retired (cannot happen for loads, but be safe)
    size_t idx = id - head;
    GAZE_ASSERT(idx < rob.size(), "fill for unknown instruction");
    RobEntry &e = rob[idx];
    GAZE_ASSERT((e.op == TraceOp::Load
                 || e.op == TraceOp::DependentLoad) && e.issued,
                "bogus load fill");
    if (!e.done) {
        e.done = true;
        GAZE_ASSERT(lqOccupancy > 0, "LQ underflow");
        --lqOccupancy;
    }
}

void
Core::retire()
{
    for (uint32_t n = 0; n < cfg.retireWidth && !rob.empty(); ++n) {
        RobEntry &head = rob.front();
        if (head.op == TraceOp::Store) {
            // Stores retire by firing their RFO; they occupy an SQ
            // slot until the line arrives (write is post-commit).
            if (sqOccupancy >= cfg.sqSize)
                break;
            Request r;
            r.type = AccessType::Rfo;
            r.vaddr = head.vaddr;
            r.paddr = vmem->translate(head.vaddr, cpu);
            r.pc = head.pc;
            r.cpu = cpu;
            r.fillLevel = levelL1;
            r.requester = this;
            r.token = storeTokenBit | head.id;
            r.issueCycle = now();
            if (!l1d->sendRequest(r)) {
                issueBlockedOnL1d = true;
                break;
            }
            ++sqOccupancy;
            ++stat.stores;
        } else if (!head.done) {
            break;
        } else if (head.op == TraceOp::Load
                   || head.op == TraceOp::DependentLoad) {
            ++stat.loads;
        }
        rob.pop_front();
        ++retiredCount;
        ++stat.instructions;
    }
}

void
Core::issueLoads()
{
    uint32_t issued = 0;
    while (issued < cfg.loadPorts && !pendingLoadOffsets.empty()) {
        if (lqOccupancy >= cfg.lqSize)
            return;
        uint64_t id = pendingLoadOffsets.front();
        GAZE_ASSERT(!rob.empty() && id >= rob.front().id,
                    "pending load fell out of the ROB");
        RobEntry &e = rob[id - rob.front().id];
        // Dependent loads model pointer chasing: the next hop's address
        // comes from the previous load, so it cannot issue while any
        // load is outstanding.
        if (e.op == TraceOp::DependentLoad && lqOccupancy > 0)
            return;

        Request r;
        r.type = AccessType::Load;
        r.vaddr = e.vaddr;
        r.paddr = vmem->translate(e.vaddr, cpu);
        r.pc = e.pc;
        r.cpu = cpu;
        r.fillLevel = levelL1;
        r.requester = this;
        r.token = e.id;
        r.issueCycle = now();
        if (!l1d->sendRequest(r)) {
            issueBlockedOnL1d = true;
            return; // L1D read queue full; retry next cycle
        }
        e.issued = true;
        ++lqOccupancy;
        pendingLoadOffsets.pop_front();
        ++issued;
    }
}

void
Core::dispatch()
{
    if (!trace)
        return;
    if (now() < frontendStallUntil) {
        ++stat.frontendStallCycles;
        return;
    }
    for (uint32_t n = 0; n < cfg.fetchWidth; ++n) {
        if (rob.size() >= cfg.robSize) {
            ++stat.robFullCycles;
            return;
        }
        TraceRecord rec;
        if (!trace->next(rec)) {
            trace->reset();
            ++stat.traceReplays;
            if (!trace->next(rec))
                return; // empty trace
        }
        if (rec.op == TraceOp::Stall) {
            frontendStallUntil = now() + rec.stallCycles;
            return;
        }
        RobEntry e;
        e.id = nextInstrId++;
        e.op = rec.op;
        e.vaddr = rec.vaddr;
        e.pc = rec.pc;
        bool is_load = rec.op == TraceOp::Load
                       || rec.op == TraceOp::DependentLoad;
        e.done = !is_load;
        rob.push_back(e);
        if (is_load)
            pendingLoadOffsets.push_back(e.id);
    }
}

void
Core::catchUpStallCounters()
{
    Cycle t = now();
    if (t <= lastTickCycle + 1 || !trace)
        return; // no skipped cycles (always true under polling)

    // Skipped cycles u in [lastTickCycle+1, t-1]: the polled engine
    // would have run dispatch() on each with unchanged state, landing
    // in the frontend-stall branch while u < frontendStallUntil and
    // in the ROB-full branch otherwise (a sleeping core has no third
    // option: anything else would have made progress).
    uint64_t skipped = t - lastTickCycle - 1;
    uint64_t stalled = 0;
    if (frontendStallUntil > lastTickCycle + 1) {
        Cycle end = std::min(t, frontendStallUntil);
        stalled = end - (lastTickCycle + 1);
    }
    stat.frontendStallCycles += stalled;
    if (rob.size() >= cfg.robSize)
        stat.robFullCycles += skipped - stalled;
}

void
Core::tick()
{
    // Wake-hint gate (see TickEvent): skip cycles proven unproductive
    // by the last tick's nextWakeCycle(). catchUpStallCounters()
    // keeps the per-cycle stall counters exact across the skips.
    if (!sched.due(now()))
        return;

    catchUpStallCounters();
    issueBlockedOnL1d = false;
    retire();
    issueLoads();
    dispatch();
    lastTickCycle = now();
    sched.tickDone(nextWakeCycle());
}

Cycle
Core::nextWakeCycle() const
{
    Cycle wake = kNeverWake;
    auto consider = [&wake](Cycle c) { wake = std::min(wake, c); };

    // A rejected L1D send retries next cycle: the queue drains on the
    // cache's own clock and nothing calls back when space frees.
    if (issueBlockedOnL1d)
        consider(now() + 1);

    if (!rob.empty()) {
        const RobEntry &head = rob.front();
        if (head.op == TraceOp::Store) {
            // (Stores carry done=true from dispatch, so this case
            // must come first.) Store retirement depends on L1D
            // acceptance, which the core cannot observe: poll. With
            // the SQ full it instead waits for a store completion,
            // which wakes the core.
            if (sqOccupancy < cfg.sqSize)
                consider(now() + 1);
        } else if (head.done) {
            consider(now() + 1); // retirement can proceed
        }
    }

    if (!pendingLoadOffsets.empty() && lqOccupancy < cfg.lqSize) {
        uint64_t id = pendingLoadOffsets.front();
        const RobEntry &e = rob[id - rob.front().id];
        // A dependent load with loads outstanding unblocks via a fill
        // (which wakes the core); anything else can try next cycle.
        if (!(e.op == TraceOp::DependentLoad && lqOccupancy > 0))
            consider(now() + 1);
    }

    if (trace && rob.size() < cfg.robSize) {
        // Dispatch resumes after any frontend stall. (With the ROB
        // full it instead waits on retirement, i.e. on a fill.)
        consider(std::max(now() + 1, frontendStallUntil));
    }

    return wake;
}

} // namespace gaze
