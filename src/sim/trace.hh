/**
 * @file
 * Trace record format consumed by the core model. The synthetic workload
 * generators in src/workloads produce these; the format deliberately
 * mirrors what matters in a ChampSim data-access trace: a PC, an optional
 * memory operand, and front-end stall events (standing in for branch
 * mispredictions / instruction misses, see DESIGN.md).
 *
 * Sources come in two flavors: the in-memory VectorTrace below (what
 * the generators emit) and the streaming FileTrace in
 * tracing/trace_io.hh, which replays a recorded .gzt file — both are
 * interchangeable behind TraceSource, and a recorded replay is
 * bit-identical to the generator run it was recorded from.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace gaze
{

/** Instruction class in a trace. */
enum class TraceOp : uint8_t
{
    NonMem,        ///< ALU-like instruction, completes immediately
    Load,          ///< demand load from vaddr
    DependentLoad, ///< load that cannot issue until prior loads finish
                   ///< (serializes pointer chasing)
    Store,         ///< store to vaddr (RFO at retire)
    Stall          ///< front-end stall (mispredict/L1I miss stand-in)
};

/** One trace record = one instruction. */
struct TraceRecord
{
    PC pc = 0;
    Addr vaddr = 0;
    TraceOp op = TraceOp::NonMem;
    uint16_t stallCycles = 0;

    /** Field-wise equality (record/replay round-trip checks). */
    bool
    operator==(const TraceRecord &o) const
    {
        return pc == o.pc && vaddr == o.vaddr && op == o.op
               && stallCycles == o.stallCycles;
    }

    bool operator!=(const TraceRecord &o) const { return !(*this == o); }
};

/**
 * Pull interface the core reads from. Implementations must support
 * reset() so a finished trace replays from the start (the paper replays
 * traces until every core has simulated enough instructions).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fetch the next record; false at end-of-trace. */
    virtual bool next(TraceRecord &out) = 0;

    /** Rewind to the beginning. */
    virtual void reset() = 0;
};

/** An in-memory trace (what the generators emit). */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceRecord> recs)
        : records(std::move(recs))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (pos >= records.size())
            return false;
        out = records[pos++];
        return true;
    }

    void reset() override { pos = 0; }

    size_t size() const { return records.size(); }
    std::vector<TraceRecord> &data() { return records; }
    const std::vector<TraceRecord> &data() const { return records; }

  private:
    std::vector<TraceRecord> records;
    size_t pos = 0;
};

} // namespace gaze
