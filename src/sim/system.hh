/**
 * @file
 * Whole-system builder and run loop: N cores with private L1D/L2C, a
 * shared LLC, one DRAM controller, functional virtual memory, and
 * prefetchers attachable at L1D and L2C (the paper's single-level and
 * multi-level configurations).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/event.hh"
#include "sim/prefetcher.hh"
#include "sim/request_pool.hh"
#include "sim/threaded.hh"
#include "sim/trace.hh"
#include "sim/vmem.hh"

namespace gaze
{

namespace obs
{
class Registry;
class IntervalSampler;
class TraceSink;
} // namespace obs

/**
 * How the system advances time. All engines produce bit-identical
 * metrics (test_engine / test_engine_diff assert it); Event skips
 * idle cycles and is the default, Polled ticks every component every
 * cycle and remains the reference implementation and bench_engine
 * baseline, and Auto measures the skip fraction as it runs and flips
 * between the two dispatch strategies mid-run so dense workloads do
 * not pay the event queue's overhead.
 *
 * Orthogonally, `SystemConfig::simThreads > 1` runs a multi-core
 * system's per-core slices on worker threads (cycle-lockstep
 * fork/join, see threaded.hh); that loop both ticks like Polled and
 * skips like Event, and is engaged for any engine kind.
 */
enum class EngineKind
{
    Event,  ///< timing-wheel scheduler, idle cycles skipped in O(1)
    Polled, ///< classic tickAll() loop
    Auto    ///< adaptive: flips between Event and Polled dispatch
};

/** CLI name of an engine ("event" / "polled" / "auto"). */
const char *engineKindName(EngineKind kind);

/** Parse an --engine= value; fatal on anything unknown. */
EngineKind parseEngineKind(const std::string &name);

/** Full-system configuration (Table II defaults). */
struct SystemConfig
{
    uint32_t numCores = 1;

    /** Simulation engine (results are identical for every kind). */
    EngineKind engine = EngineKind::Event;

    /**
     * Worker threads for multi-core runs (1 = single-threaded).
     * Takes effect when both simThreads > 1 and numCores > 1; results
     * are bit-identical to single-threaded for any value. Thread
     * counts beyond numCores are clamped (one slice per core).
     */
    uint32_t simThreads = 1;

    CoreParams core;

    uint64_t l1dBytes = 48 * 1024;
    uint32_t l1dWays = 12;
    uint32_t l1dLatency = 5;
    uint32_t l1dMshrs = 16;

    uint64_t l2Bytes = 512 * 1024;
    uint32_t l2Ways = 8;
    uint32_t l2Latency = 10;
    uint32_t l2Mshrs = 32;

    uint64_t llcBytesPerCore = 2 * 1024 * 1024;
    uint32_t llcWays = 16;
    uint32_t llcLatency = 20;
    uint32_t llcMshrsPerCore = 64;

    std::string replacement = "lru";

    /**
     * When true (default) the DRAM channel/rank count follows the
     * paper's per-core-count scaling; otherwise @p dram is used as-is.
     */
    bool dramAuto = true;
    DramParams dram;

    /** Safety valve: abort a run after this many cycles per instr. */
    uint64_t maxCyclesPerInstr = 2000;
};

/**
 * Simulation-speed counters over a System's lifetime (warmup included;
 * deterministic for a given engine, so they cache and compare cleanly).
 */
struct EngineStats
{
    bool eventDriven = true; ///< engine can skip cycles (kind != Polled)
    EngineKind kind = EngineKind::Event;
    uint32_t simThreads = 1;       ///< configured worker threads
    uint64_t cyclesTotal = 0;      ///< simulated cycles (clock)
    uint64_t cyclesExecuted = 0;   ///< cycles at least one event ran
    uint64_t cyclesSkipped = 0;    ///< idle cycles jumped over
    uint64_t eventsDispatched = 0; ///< component ticks performed
    uint64_t engineFlips = 0;      ///< auto-mode dispatch switches
    uint64_t polledCycles = 0;     ///< cycles run by polled dispatch

    const char *kindName() const { return engineKindName(kind); }

    double
    skipFraction() const
    {
        return cyclesTotal
                   ? double(cyclesSkipped) / double(cyclesTotal)
                   : 0.0;
    }
};

/** Per-core outcome of a measured simulation interval. */
struct CoreResult
{
    uint64_t instructions = 0;
    uint64_t cycles = 0; ///< cycles this core took to retire them

    double
    ipc() const
    {
        return cycles ? double(instructions) / cycles : 0.0;
    }
};

/** One simulated machine. Construct, attach traces/prefetchers, run. */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Attach the instruction trace for @p cpu (not owned). */
    void setTrace(uint32_t cpu, TraceSource *trace);

    /** Attach (and own) an L1D prefetcher for @p cpu. */
    void setL1Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf);

    /** Attach (and own) an L2C prefetcher for @p cpu. */
    void setL2Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf);

    /**
     * Run until every core has retired @p instr_per_core more
     * instructions; prefetchers keep training. Used for warmup.
     */
    void run(uint64_t instr_per_core);

    /** Zero all statistics (end of warmup). */
    void resetStats();

    /**
     * Measured run: like run(), but records the cycle at which each
     * core individually reaches its instruction target, which is what
     * per-core IPC is computed from (early finishers keep replaying,
     * as in the paper).
     */
    std::vector<CoreResult> simulate(uint64_t instr_per_core);

    uint32_t numCores() const { return cfg.numCores; }
    Cycle cycle() const { return clock; }

    /**
     * Obs scheme labels in id order: schemeNames()[i] is the label
     * ("<scheme>@l1" / "<scheme>@l2") of scheme id i+1. Ids are
     * assigned in attach order, shared by every core's copy of a
     * scheme, so they are deterministic for a given configuration.
     */
    const std::vector<std::string> &schemeNames() const
    {
        return schemeLabels;
    }

    /**
     * Bind every counter and occupancy gauge of this system into
     * @p reg under the obs naming scheme (core<i>.*, l1d<i>.*,
     * l2<i>.*, llc.*, dram.*, eventq.*, engine.*). The registry must
     * not outlive the system.
     */
    void bindObsCounters(obs::Registry *reg);

    /**
     * Attach (or detach, with null) an interval sampler. Pure
     * observation: the engine calls IntervalSampler::advanceTo before
     * executing each cycle and never wakes for a boundary.
     */
    void setObsSampler(obs::IntervalSampler *sampler);

    /**
     * Attach a trace sink for simulated-time spans (engine stints,
     * per-core measured activity, DRAM utilization samples);
     * @p label prefixes this system's track names.
     */
    void setObsTrace(obs::TraceSink *sink, const std::string &label);

    /** Simulation-speed counters (never reset by resetStats). */
    EngineStats engineStats() const;

    /** The shared MSHR-waiter pool (leak checks in tests). */
    const RequestPool &requestPool() const { return pool; }

    Core &core(uint32_t cpu) { return *cores[cpu]; }
    Cache &l1d(uint32_t cpu) { return *l1ds[cpu]; }
    Cache &l2(uint32_t cpu) { return *l2s[cpu]; }
    Cache &llc() { return *llcCache; }
    Dram &dram() { return *dramCtrl; }
    VirtualMemory &vmem() { return vm; }

    const SystemConfig &config() const { return cfg; }

  private:
    /** How an inner simulation loop stopped. */
    enum class LoopExit
    {
        Done,  ///< the done() predicate fired
        Capped,///< cycle cap reached (or wedged: nothing schedulable)
        Stint  ///< stint budget exhausted / adaptive flip requested
    };

    /** Tick every component once at the current cycle (no clock). */
    void tickComponents();

    /** tickComponents() plus the clock/speed-counter bookkeeping. */
    void tickAll();

    /** Event mode: make sure every component considers cycle `clock`. */
    void scheduleAll();

    /** Earliest next wake over every component (kNeverWake if none). */
    Cycle minNextWakeCycle() const;

    /** True when this run executes per-core slices on worker threads. */
    bool threadedActive() const;

    /**
     * Event-driven inner loop shared by run(), simulate() and the
     * auto engine: advance the clock to each next event cycle and
     * dispatch it, until @p done returns true (checked between
     * cycles, exactly where the polled loops check), the cycle cap is
     * hit, or @p exec_limit more cycles have executed (auto-engine
     * stints; pass kNeverWake for no limit).
     */
    template <typename DoneFn, typename PostCycleFn>
    LoopExit eventLoop(uint64_t cap, uint64_t exec_limit, DoneFn &&done,
                       PostCycleFn &&post);

    /** Classic tick-every-cycle loop (engine == Polled). */
    template <typename DoneFn, typename PostCycleFn>
    bool polledLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post);

    /**
     * One polled stint of the auto engine: tick up to @p stint_len
     * cycles without the event queue, probing the components'
     * nextWakeCycle() periodically so genuinely idle stretches are
     * still skipped exactly; an idle gap of kAutoFlipGap+ cycles ends
     * the stint early (flip back to event dispatch).
     */
    template <typename DoneFn, typename PostCycleFn>
    LoopExit polledStint(uint64_t cap, uint64_t stint_len, DoneFn &&done,
                         PostCycleFn &&post);

    /** Adaptive loop (engine == Auto): see system.cc for the policy. */
    template <typename DoneFn, typename PostCycleFn>
    bool autoLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post);

    /**
     * Multi-threaded loop: per-core slices fork/joined across the
     * SliceTeam every executed cycle, LLC/DRAM and all cross-core
     * traffic serialized on this thread, idle stretches skipped via
     * the same global min-wake argument the event engine uses.
     */
    template <typename DoneFn, typename PostCycleFn>
    bool threadedLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post);

    /**
     * Execute the cycle `clock` points at (threaded mode), advance the
     * clock past it and return the earliest cycle at which any
     * component next needs to run (kNeverWake when none do).
     */
    Cycle executeThreadedCycle();

    /** Dispatch to the loop this config runs (engine × threading). */
    template <typename DoneFn, typename PostCycleFn>
    bool driveLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post);

    /** Obs id for scheme @p name attached at @p level (assigns new). */
    uint16_t schemeIdFor(const std::string &name, uint32_t level);

    /**
     * Obs trace: emit one engine-stint span [begin, clock) plus a
     * DRAM-utilization counter sample. No-op without a sink.
     */
    void obsStintSpan(const char *name, Cycle begin);

    SystemConfig cfg;
    Cycle clock = 0;

    // Scheduler and pool are declared before the components so they
    // outlive them: component destructors return waiter chains to the
    // pool, and dangling tick events must never outlive the queue.
    EventQueue eq;
    RequestPool pool;

    // Engine-speed accounting (see EngineStats).
    uint64_t executedCycles = 0;
    uint64_t dispatchedEvents = 0;
    uint64_t statEngineFlips = 0;
    uint64_t statPolledCycles = 0;

    // Auto-engine state: which dispatch strategy is live, and the
    // exponential-backoff length of the next polled stint (reset when
    // an event stint measures a healthy skip fraction).
    bool autoInPolled = false;
    uint64_t autoPolledStintLen;

    VirtualMemory vm;
    std::unique_ptr<Dram> dramCtrl;
    std::unique_ptr<Cache> llcCache;
    // Portals are declared before the L2s that send through them.
    std::vector<std::unique_ptr<LlcPortal>> portals;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::vector<std::unique_ptr<Cache>> l1ds;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<Prefetcher>> ownedPrefetchers;

    // Obs attachment points (see src/obs/): null/empty when unused,
    // and every hot-path touch point is compiled out with GAZE_OBS.
    obs::IntervalSampler *obsSampler = nullptr;
    obs::TraceSink *obsTrace = nullptr;
    uint32_t obsEngineTid = 0;
    uint32_t obsDramTid = 0;
    std::vector<uint32_t> obsCoreTids;
    std::vector<std::string> schemeLabels;

    // Threaded-mode state (see threaded.hh and executeThreadedCycle).
    std::unique_ptr<SliceTeam> team;
    std::vector<Cycle> sliceWake;      ///< per-slice next-wake cycle
    std::vector<uint32_t> activeSlices;///< slices due this cycle
    uint32_t maxPqSendsPerSlice = 0;   ///< LLC-pq backpressure budget
};

} // namespace gaze
