/**
 * @file
 * Whole-system builder and run loop: N cores with private L1D/L2C, a
 * shared LLC, one DRAM controller, functional virtual memory, and
 * prefetchers attachable at L1D and L2C (the paper's single-level and
 * multi-level configurations).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/event.hh"
#include "sim/prefetcher.hh"
#include "sim/request_pool.hh"
#include "sim/trace.hh"
#include "sim/vmem.hh"

namespace gaze
{

/**
 * How the system advances time. Both engines produce bit-identical
 * metrics (test_engine asserts it); Event skips idle cycles and is
 * the default, Polled ticks every component every cycle and remains
 * as the reference implementation and bench_engine baseline.
 */
enum class EngineKind
{
    Event, ///< timing-wheel scheduler, idle cycles skipped in O(1)
    Polled ///< classic tickAll() loop
};

/** CLI name of an engine ("event" / "polled"). */
const char *engineKindName(EngineKind kind);

/** Parse an --engine= value; fatal on anything unknown. */
EngineKind parseEngineKind(const std::string &name);

/** Full-system configuration (Table II defaults). */
struct SystemConfig
{
    uint32_t numCores = 1;

    /** Simulation engine (results are identical either way). */
    EngineKind engine = EngineKind::Event;

    CoreParams core;

    uint64_t l1dBytes = 48 * 1024;
    uint32_t l1dWays = 12;
    uint32_t l1dLatency = 5;
    uint32_t l1dMshrs = 16;

    uint64_t l2Bytes = 512 * 1024;
    uint32_t l2Ways = 8;
    uint32_t l2Latency = 10;
    uint32_t l2Mshrs = 32;

    uint64_t llcBytesPerCore = 2 * 1024 * 1024;
    uint32_t llcWays = 16;
    uint32_t llcLatency = 20;
    uint32_t llcMshrsPerCore = 64;

    std::string replacement = "lru";

    /**
     * When true (default) the DRAM channel/rank count follows the
     * paper's per-core-count scaling; otherwise @p dram is used as-is.
     */
    bool dramAuto = true;
    DramParams dram;

    /** Safety valve: abort a run after this many cycles per instr. */
    uint64_t maxCyclesPerInstr = 2000;
};

/**
 * Simulation-speed counters over a System's lifetime (warmup included;
 * deterministic for a given engine, so they cache and compare cleanly).
 */
struct EngineStats
{
    bool eventDriven = true;
    uint64_t cyclesTotal = 0;      ///< simulated cycles (clock)
    uint64_t cyclesExecuted = 0;   ///< cycles at least one event ran
    uint64_t cyclesSkipped = 0;    ///< idle cycles jumped over
    uint64_t eventsDispatched = 0; ///< component ticks performed

    const char *
    kindName() const
    {
        return eventDriven ? "event" : "polled";
    }

    double
    skipFraction() const
    {
        return cyclesTotal
                   ? double(cyclesSkipped) / double(cyclesTotal)
                   : 0.0;
    }
};

/** Per-core outcome of a measured simulation interval. */
struct CoreResult
{
    uint64_t instructions = 0;
    uint64_t cycles = 0; ///< cycles this core took to retire them

    double
    ipc() const
    {
        return cycles ? double(instructions) / cycles : 0.0;
    }
};

/** One simulated machine. Construct, attach traces/prefetchers, run. */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Attach the instruction trace for @p cpu (not owned). */
    void setTrace(uint32_t cpu, TraceSource *trace);

    /** Attach (and own) an L1D prefetcher for @p cpu. */
    void setL1Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf);

    /** Attach (and own) an L2C prefetcher for @p cpu. */
    void setL2Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf);

    /**
     * Run until every core has retired @p instr_per_core more
     * instructions; prefetchers keep training. Used for warmup.
     */
    void run(uint64_t instr_per_core);

    /** Zero all statistics (end of warmup). */
    void resetStats();

    /**
     * Measured run: like run(), but records the cycle at which each
     * core individually reaches its instruction target, which is what
     * per-core IPC is computed from (early finishers keep replaying,
     * as in the paper).
     */
    std::vector<CoreResult> simulate(uint64_t instr_per_core);

    uint32_t numCores() const { return cfg.numCores; }
    Cycle cycle() const { return clock; }

    /** Simulation-speed counters (never reset by resetStats). */
    EngineStats engineStats() const;

    /** The shared MSHR-waiter pool (leak checks in tests). */
    const RequestPool &requestPool() const { return pool; }

    Core &core(uint32_t cpu) { return *cores[cpu]; }
    Cache &l1d(uint32_t cpu) { return *l1ds[cpu]; }
    Cache &l2(uint32_t cpu) { return *l2s[cpu]; }
    Cache &llc() { return *llcCache; }
    Dram &dram() { return *dramCtrl; }
    VirtualMemory &vmem() { return vm; }

    const SystemConfig &config() const { return cfg; }

  private:
    void tickAll();

    /** Event mode: make sure every component considers cycle `clock`. */
    void scheduleAll();

    /**
     * Event-driven inner loop shared by run() and simulate(): advance
     * the clock to each next event cycle and dispatch it, until
     * @p done returns true (checked between cycles, exactly where the
     * polled loops check) or the cycle cap is hit. Returns false on a
     * cap/wedge stop.
     */
    template <typename DoneFn, typename PostCycleFn>
    bool eventLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post);

    SystemConfig cfg;
    Cycle clock = 0;

    // Scheduler and pool are declared before the components so they
    // outlive them: component destructors return waiter chains to the
    // pool, and dangling tick events must never outlive the queue.
    EventQueue eq;
    RequestPool pool;

    // Engine-speed accounting (see EngineStats).
    uint64_t executedCycles = 0;
    uint64_t dispatchedEvents = 0;

    VirtualMemory vm;
    std::unique_ptr<Dram> dramCtrl;
    std::unique_ptr<Cache> llcCache;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::vector<std::unique_ptr<Cache>> l1ds;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<Prefetcher>> ownedPrefetchers;
};

} // namespace gaze
