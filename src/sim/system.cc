#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace gaze
{

namespace
{

// ---- Auto-engine policy knobs (all deterministic, all counted in ----
// ---- cycles, so the adaptive schedule replays identically). ----

/**
 * Executed cycles per event-dispatch measurement stint. Deliberately
 * short: on a dense workload every event-dispatched cycle costs a few
 * times a polled tick, and the startup stint is pure overhead until
 * the first flip — 1k cycles keeps that under ~3% even for tiny runs
 * while still sampling enough cycles for a stable skip fraction.
 */
constexpr uint64_t kAutoEventStint = 1024;

/** Stint skip fraction at or above which event dispatch is a win. */
constexpr double kAutoSkipThreshold = 0.20;

/** First polled stint length; doubles per failed event trial. */
constexpr uint64_t kAutoPolledStintBase = 1ull << 16;

/** Polled-stint backoff ceiling (~4.2M cycles). */
constexpr uint64_t kAutoPolledStintMax = 1ull << 22;

/** Polled stints probe component wakes every this many cycles. */
constexpr uint64_t kAutoProbePeriod = 1024;

/** Idle gap (cycles) that ends a polled stint early: flip to event. */
constexpr uint64_t kAutoFlipGap = 256;

} // namespace

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Event:
        return "event";
      case EngineKind::Polled:
        return "polled";
      case EngineKind::Auto:
        return "auto";
    }
    return "?";
}

EngineKind
parseEngineKind(const std::string &name)
{
    if (name == "event")
        return EngineKind::Event;
    if (name == "polled")
        return EngineKind::Polled;
    if (name == "auto")
        return EngineKind::Auto;
    GAZE_FATAL("unknown simulation engine '", name,
               "' (known: event, polled, auto)");
}

System::System(const SystemConfig &config)
    : cfg(config), autoPolledStintLen(kAutoPolledStintBase), vm(34)
{
    GAZE_ASSERT(cfg.numCores >= 1 && cfg.numCores <= 64, "bad core count");
    // Validate the replacement policy eagerly, before any cache is
    // built, so a bad campaign/CLI string dies here with the full
    // list instead of surfacing from some worker mid-run (mirrors the
    // prefetcher registry's unknown-scheme diagnostics).
    if (!isKnownReplacementPolicy(cfg.replacement))
        GAZE_FATAL("unknown replacement policy '", cfg.replacement,
                   "' in SystemConfig (known: ",
                   knownReplacementPolicyList(), ")");

    DramParams dp = cfg.dramAuto ? DramParams::forCores(cfg.numCores)
                                 : cfg.dram;
    if (cfg.dramAuto) {
        // Keep any user-tuned timing/bus fields from cfg.dram.
        dp.mtps = cfg.dram.mtps;
        dp.cpuGhz = cfg.dram.cpuGhz;
    }
    dramCtrl = std::make_unique<Dram>(dp, &clock);

    CacheParams llc_p;
    llc_p.name = "LLC";
    llc_p.level = levelLLC;
    llc_p.ways = cfg.llcWays;
    llc_p.sets = CacheParams::setsFor(cfg.llcBytesPerCore * cfg.numCores,
                                      cfg.llcWays);
    llc_p.latency = cfg.llcLatency;
    llc_p.mshrs = cfg.llcMshrsPerCore * cfg.numCores;
    llc_p.rqSize = 64 * cfg.numCores;
    llc_p.wqSize = 64 * cfg.numCores;
    llc_p.pqSize = 32 * cfg.numCores;
    llc_p.replacement = cfg.replacement;
    llcCache = std::make_unique<Cache>(llc_p, dramCtrl.get(), &clock,
                                       &pool);

    // In threaded mode the per-core caches get private request pools
    // (slice-local allocation, no sharing across workers) and send to
    // the LLC through a staging portal; see executeThreadedCycle().
    bool threaded = threadedActive();
    RequestPool *corePool = threaded ? nullptr : &pool;

    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        MemoryDevice *llcPort = llcCache.get();
        if (threaded) {
            portals.push_back(std::make_unique<LlcPortal>(llcCache.get()));
            llcPort = portals.back().get();
        }

        CacheParams l2_p;
        l2_p.name = "L2C" + std::to_string(c);
        l2_p.level = levelL2;
        l2_p.ways = cfg.l2Ways;
        l2_p.sets = CacheParams::setsFor(cfg.l2Bytes, cfg.l2Ways);
        l2_p.latency = cfg.l2Latency;
        l2_p.mshrs = cfg.l2Mshrs;
        l2_p.rqSize = 32;
        l2_p.wqSize = 32;
        l2_p.pqSize = 16;
        l2_p.replacement = cfg.replacement;
        l2s.push_back(std::make_unique<Cache>(l2_p, llcPort, &clock,
                                              corePool));

        CacheParams l1_p;
        l1_p.name = "L1D" + std::to_string(c);
        l1_p.level = levelL1;
        l1_p.ways = cfg.l1dWays;
        l1_p.sets = CacheParams::setsFor(cfg.l1dBytes, cfg.l1dWays);
        l1_p.latency = cfg.l1dLatency;
        l1_p.mshrs = cfg.l1dMshrs;
        l1_p.rqSize = 64;
        l1_p.wqSize = 64;
        l1_p.pqSize = 8;
        l1_p.replacement = cfg.replacement;
        l1ds.push_back(std::make_unique<Cache>(l1_p, l2s.back().get(),
                                               &clock, corePool));

        cores.push_back(std::make_unique<Core>(cfg.core, c,
                                               l1ds.back().get(), &vm,
                                               &clock));
    }

    if (!threaded && cfg.engine != EngineKind::Polled) {
        // Priorities reproduce tickAll()'s fixed order: all cores,
        // then L1Ds, L2s, the LLC, DRAM last — so same-cycle events
        // dispatch exactly as the polled engine ticks. The threaded
        // loop leaves everything unbound (requestWake no-ops) and
        // does its own wake bookkeeping in sliceWake.
        int n = static_cast<int>(cfg.numCores);
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            cores[c]->bindScheduler(&eq, static_cast<int>(c));
            l1ds[c]->bindScheduler(&eq, n + static_cast<int>(c));
            l2s[c]->bindScheduler(&eq, 2 * n + static_cast<int>(c));
        }
        llcCache->bindScheduler(&eq, 3 * n);
        dramCtrl->bindScheduler(&eq, 3 * n + 1);
    }

    if (threaded) {
        sliceWake.assign(cfg.numCores, 0);
        activeSlices.reserve(cfg.numCores);
        // One L2 can push at most its prefetch issue rate (bounded by
        // its tag ports) plus a retry and a demand-side spill into the
        // LLC prefetch queue per cycle; 2*tagPorts + 2 over-covers it.
        // replay() asserts no staged send is ever rejected, so if this
        // bound were ever wrong the run dies loudly instead of
        // silently diverging from the single-threaded engines.
        maxPqSendsPerSlice = 2 * l2s[0]->params().tagPorts + 2;
    }
}

System::~System()
{
    // Stop the worker team before the components it ticks go away.
    team.reset();
    // Tear the hierarchy down first so every in-flight MSHR returns
    // its waiter chain, then hold the pool to its balance contract:
    // anything still outstanding is a leaked Request.
    cores.clear();
    l1ds.clear();
    l2s.clear();
    portals.clear();
    llcCache.reset();
    dramCtrl.reset();
    GAZE_ASSERT(pool.outstanding() == 0,
                "request pool imbalance at teardown: ",
                pool.outstanding(), " node(s) leaked");
}

bool
System::threadedActive() const
{
    return cfg.simThreads > 1 && cfg.numCores > 1;
}

void
System::setTrace(uint32_t cpu, TraceSource *trace)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    cores[cpu]->setTrace(trace);
}

void
System::setL1Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    pf->setSchemeId(schemeIdFor(pf->name(), levelL1));
    l1ds[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

void
System::setL2Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    pf->setSchemeId(schemeIdFor(pf->name(), levelL2));
    l2s[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

uint16_t
System::schemeIdFor(const std::string &name, uint32_t level)
{
    std::string label = name + (level == levelL1 ? "@l1" : "@l2");
    for (size_t i = 0; i < schemeLabels.size(); ++i) {
        if (schemeLabels[i] == label)
            return static_cast<uint16_t>(i + 1);
    }
    GAZE_ASSERT(schemeLabels.size() < 0xFFFF, "scheme id space exhausted");
    schemeLabels.push_back(label);
    return static_cast<uint16_t>(schemeLabels.size());
}

void
System::bindObsCounters(obs::Registry *reg)
{
    GAZE_ASSERT(reg, "bindObsCounters needs a registry");

    auto bindCache = [&](const std::string &prefix, Cache *c) {
        const CacheStats &s = c->stats();
#define GAZE_OBS_CACHE_STAT(f)                                             \
    reg->bindCounter(prefix + "." #f, &s.f);
#define GAZE_OBS_CORE_STAT(f)
#define GAZE_OBS_DRAM_STAT(f)
#define GAZE_OBS_EVENT_STAT(f)
#include "obs/stat_names.inc"
#undef GAZE_OBS_CACHE_STAT
#undef GAZE_OBS_CORE_STAT
#undef GAZE_OBS_DRAM_STAT
#undef GAZE_OBS_EVENT_STAT
        reg->bindGauge(prefix + ".pqOccupancy",
                       [c] { return uint64_t(c->pqOccupancy()); });
        reg->bindGauge(prefix + ".mshrOccupancy",
                       [c] { return uint64_t(c->mshrOccupancy()); });
    };

    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        const std::string n = std::to_string(c);
        const CoreStats &s = cores[c]->stats();
#define GAZE_OBS_CACHE_STAT(f)
#define GAZE_OBS_CORE_STAT(f)                                              \
    reg->bindCounter("core" + n + "." #f, &s.f);
#define GAZE_OBS_DRAM_STAT(f)
#define GAZE_OBS_EVENT_STAT(f)
#include "obs/stat_names.inc"
#undef GAZE_OBS_CACHE_STAT
#undef GAZE_OBS_CORE_STAT
#undef GAZE_OBS_DRAM_STAT
#undef GAZE_OBS_EVENT_STAT
        bindCache("l1d" + n, l1ds[c].get());
        bindCache("l2" + n, l2s[c].get());
    }
    bindCache("llc", llcCache.get());

    {
        const DramStats &s = dramCtrl->stats();
        const EventQueueStats &q = eq.stats();
#define GAZE_OBS_CACHE_STAT(f)
#define GAZE_OBS_CORE_STAT(f)
#define GAZE_OBS_DRAM_STAT(f) reg->bindCounter("dram." #f, &s.f);
#define GAZE_OBS_EVENT_STAT(f) reg->bindCounter("eventq." #f, &q.f);
#include "obs/stat_names.inc"
#undef GAZE_OBS_CACHE_STAT
#undef GAZE_OBS_CORE_STAT
#undef GAZE_OBS_DRAM_STAT
#undef GAZE_OBS_EVENT_STAT
    }

    // Engine-speed counters: deterministic per engine kind, not
    // across kinds (cross-engine comparisons must filter "engine.*"
    // and "eventq.*" out, exactly as EngineStats is excluded from the
    // bitwise differential checks).
    reg->bindCounter("engine.cycle", &clock);
    reg->bindCounter("engine.executedCycles", &executedCycles);
    reg->bindCounter("engine.dispatchedEvents", &dispatchedEvents);
    reg->bindCounter("engine.flips", &statEngineFlips);
    reg->bindCounter("engine.polledCycles", &statPolledCycles);
}

void
System::setObsSampler(obs::IntervalSampler *sampler)
{
    obsSampler = sampler;
}

void
System::setObsTrace(obs::TraceSink *sink, const std::string &label)
{
    obsTrace = sink;
    if (!sink)
        return;
    obsEngineTid = sink->allocTrack(obs::kPidSim, label + " engine");
    obsCoreTids.clear();
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        obsCoreTids.push_back(sink->allocTrack(
            obs::kPidSim, label + " core" + std::to_string(c)));
    obsDramTid = sink->allocTrack(obs::kPidSim, label + " dram");
}

void
System::obsStintSpan(const char *name, Cycle begin)
{
    if (!obsTrace || clock < begin)
        return;
    obsTrace->span(obs::kPidSim, obsEngineTid, name, begin,
                   clock - begin);
    obsTrace->counter(obs::kPidSim, obsDramTid, "dram_util", clock,
                      dramCtrl->recentUtilization());
}

void
System::tickComponents()
{
    for (auto &c : cores)
        c->tick();
    for (auto &c : l1ds)
        c->tick();
    for (auto &c : l2s)
        c->tick();
    llcCache->tick();
    dramCtrl->tick();
}

void
System::tickAll()
{
    tickComponents();
    ++clock;
    ++executedCycles;
    ++statPolledCycles;
    dispatchedEvents += 3 * uint64_t(cfg.numCores) + 2;
}

void
System::scheduleAll()
{
    // Arm every component at the current cycle so a (re)started run
    // considers it, exactly like the polled engine's unconditional
    // first tickAll(). Anything already scheduled earlier keeps its
    // slot; anything stranded in the past by a cycle-cap jump (or
    // gone stale across an auto-engine polled stint) is pulled
    // forward or superseded.
    for (auto &c : cores)
        c->wakeAt(clock);
    for (auto &c : l1ds)
        c->wakeAt(clock);
    for (auto &c : l2s)
        c->wakeAt(clock);
    llcCache->wakeAt(clock);
    dramCtrl->wakeAt(clock);
}

Cycle
System::minNextWakeCycle() const
{
    Cycle m = kNeverWake;
    for (const auto &c : cores)
        m = std::min(m, c->nextWakeCycle());
    for (const auto &c : l1ds)
        m = std::min(m, c->nextWakeCycle());
    for (const auto &c : l2s)
        m = std::min(m, c->nextWakeCycle());
    m = std::min(m, llcCache->nextWakeCycle());
    m = std::min(m, dramCtrl->nextWakeCycle());
    return m;
}

template <typename DoneFn, typename PostCycleFn>
System::LoopExit
System::eventLoop(uint64_t cap, uint64_t exec_limit, DoneFn &&done,
                  PostCycleFn &&post)
{
    scheduleAll();
    uint64_t execBase = executedCycles;
    while (!done()) {
        if (executedCycles - execBase >= exec_limit)
            return LoopExit::Stint;
        Cycle next = eq.nextEventCycle();
        if (next == EventQueue::kNoEvent) {
            // Every component asleep with targets unmet: the polled
            // engine would spin no-op cycles to the cap; jump there.
            clock = cap;
            return LoopExit::Capped;
        }
        if (next < clock) {
            // A cycle flagged only by superseded entries (lazy
            // deschedule): drain it without touching the clock.
            size_t stale = eq.dispatchCycle(next);
            GAZE_ASSERT(stale == 0, "live event behind the clock");
            continue;
        }
        if (next >= cap) {
            clock = cap;
            return LoopExit::Capped;
        }
        clock = next;
        GAZE_OBS_HOOK(if (obsSampler) obsSampler->advanceTo(next););
        size_t n = eq.dispatchCycle(next);
        clock = next + 1;
        if (n > 0) {
            ++executedCycles;
            dispatchedEvents += n;
            post();
        }
    }
    return LoopExit::Done;
}

template <typename DoneFn, typename PostCycleFn>
bool
System::polledLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post)
{
    while (!done()) {
        if (clock >= cap)
            return false;
        GAZE_OBS_HOOK(if (obsSampler) obsSampler->advanceTo(clock););
        tickAll();
        post();
    }
    return true;
}

template <typename DoneFn, typename PostCycleFn>
System::LoopExit
System::polledStint(uint64_t cap, uint64_t stint_len, DoneFn &&done,
                    PostCycleFn &&post)
{
    uint64_t ticked = 0;
    while (true) {
        if (done())
            return LoopExit::Done;
        if (clock >= cap)
            return LoopExit::Capped;
        if (ticked >= stint_len)
            return LoopExit::Stint;

        // Execute the cycle `clock` points at. The wake probe (every
        // kAutoProbePeriod-th cycle) must run while the clock still
        // names the cycle just ticked: nextWakeCycle() answers
        // relative to now(), and post-tick it is always > now(), so a
        // min over every component bounds the first future cycle any
        // tick could matter — the same argument that makes the event
        // engine's skips exact.
        bool probe = (clock & (kAutoProbePeriod - 1)) == 0;
        GAZE_OBS_HOOK(if (obsSampler) obsSampler->advanceTo(clock););
        tickComponents();
        Cycle wake = probe ? minNextWakeCycle() : 0;
        ++clock;
        ++executedCycles;
        ++statPolledCycles;
        ++ticked;
        dispatchedEvents += 3 * uint64_t(cfg.numCores) + 2;
        post();

        if (probe) {
            if (wake == kNeverWake) {
                // Nothing will ever self-wake again: either the run
                // just finished, or it is wedged — jump to the cap
                // exactly as the event engine does.
                if (done())
                    return LoopExit::Done;
                clock = cap;
                return LoopExit::Capped;
            }
            if (wake > clock) {
                uint64_t gap = wake - clock;
                clock = std::min(wake, cap);
                if (gap >= kAutoFlipGap) {
                    // A real idle stretch: event dispatch will win.
                    return LoopExit::Stint;
                }
            }
        }
    }
}

template <typename DoneFn, typename PostCycleFn>
bool
System::autoLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post)
{
    // Policy: run event-driven by default, measuring the skip
    // fraction over fixed stints of executed cycles. A dense stint
    // (skip < kAutoSkipThreshold) parks the event queue and ticks the
    // polled way for autoPolledStintLen cycles — doubling per failed
    // event re-trial so steady dense workloads pay the trial tax
    // geometrically less often — while a periodic wake probe inside
    // the polled stint still skips (and flips out of) genuinely idle
    // stretches. Every transition is a function of executed-cycle
    // counts only, so a given run always takes the same path.
    [[maybe_unused]] Cycle stintBegin = clock;
    while (true) {
        if (!autoInPolled) {
            eq.resume();
            Cycle clockBase = clock;
            uint64_t execBase = executedCycles;
            LoopExit ex = eventLoop(cap, kAutoEventStint, done, post);
            if (ex == LoopExit::Done || ex == LoopExit::Capped) {
                GAZE_OBS_HOOK(obsStintSpan("event stint", stintBegin););
                return ex == LoopExit::Done;
            }
            uint64_t delta = clock - clockBase;
            uint64_t exec = executedCycles - execBase;
            double skip =
                delta ? double(delta - exec) / double(delta) : 0.0;
            if (skip >= kAutoSkipThreshold) {
                // Healthy skipping: stay event, forget the backoff.
                autoPolledStintLen = kAutoPolledStintBase;
                continue;
            }
            eq.suspend();
            ++statEngineFlips;
            GAZE_OBS_HOOK(obsStintSpan("event stint", stintBegin);
                          stintBegin = clock;);
            autoInPolled = true;
        } else {
            uint64_t stint = autoPolledStintLen;
            autoPolledStintLen =
                std::min(autoPolledStintLen * 2, kAutoPolledStintMax);
            LoopExit ex = polledStint(cap, stint, done, post);
            if (ex == LoopExit::Done || ex == LoopExit::Capped) {
                GAZE_OBS_HOOK(obsStintSpan("polled stint", stintBegin););
                return ex == LoopExit::Done;
            }
            // Stint over (or an idle gap opened): trial event mode.
            // scheduleAll() at eventLoop entry re-arms every
            // component, repairing whatever went stale in the queue
            // while it was suspended.
            ++statEngineFlips;
            GAZE_OBS_HOOK(obsStintSpan("polled stint", stintBegin);
                          stintBegin = clock;);
            autoInPolled = false;
        }
    }
}

Cycle
System::executeThreadedCycle()
{
    // Which slices are due this cycle? sliceWake is exact (see below),
    // so a skipped slice's ticks would all have been no-ops.
    activeSlices.clear();
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        if (sliceWake[c] <= clock)
            activeSlices.push_back(c);
    }
    uint32_t active = static_cast<uint32_t>(activeSlices.size());

    // Backpressure guard: the parallel phase replaces the LLC's
    // accept/reject answer with unconditional staging, which is only
    // faithful if the LLC could not have rejected anything. Its read
    // and writeback queues are sized so the L2 MSHRs can never
    // overrun them; the prefetch queue is the one that can fill, so
    // run parallel only when even a worst-case burst fits, and fall
    // back to exact inline (passthrough) execution otherwise.
    bool parallel =
        active > 1
        && llcCache->pqOccupancy()
                   + uint64_t(active) * maxPqSendsPerSlice
               <= llcCache->params().pqSize;

    if (parallel) {
        for (uint32_t c : activeSlices)
            portals[c]->setStaging(true);
        team->runCycle(active);
        for (uint32_t c : activeSlices) {
            // Replay in core order: the LLC sees the same arrival
            // sequence the single-threaded engines produce.
            portals[c]->setStaging(false);
            portals[c]->replay();
        }
    } else {
        // Serial fallback (also the 0/1-active-slice fast path):
        // exact single-threaded semantics, portals passing through.
        for (uint32_t c : activeSlices) {
            cores[c]->tick();
            l1ds[c]->tick();
            l2s[c]->tick();
        }
    }

    // Cross-core structures always run serially, every executed
    // cycle, on this thread — this is where LLC fills mutate L2s/L1s
    // and cores, which is why the wake recomputation must come after.
    llcCache->tick();
    dramCtrl->tick();

    ++executedCycles;
    dispatchedEvents += 3 * uint64_t(active) + 2;

    // Recompute every wake with the clock still naming the executed
    // cycle (nextWakeCycle() answers relative to now()). Serial-phase
    // fills can have woken slices that did not run this cycle, so all
    // of them are refreshed, not just the active ones.
    Cycle wake = kNeverWake;
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        Cycle w = cores[c]->nextWakeCycle();
        w = std::min(w, l1ds[c]->nextWakeCycle());
        w = std::min(w, l2s[c]->nextWakeCycle());
        sliceWake[c] = w;
        wake = std::min(wake, w);
    }
    wake = std::min(wake, llcCache->nextWakeCycle());
    wake = std::min(wake, dramCtrl->nextWakeCycle());
    ++clock;
    return wake;
}

template <typename DoneFn, typename PostCycleFn>
bool
System::threadedLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post)
{
    if (!team) {
        // One worker per extra slice at most; the team persists
        // across run()/simulate() calls (parked in between).
        team = std::make_unique<SliceTeam>(
            std::min(cfg.simThreads, cfg.numCores));
    }
    // Mirror scheduleAll(): the first cycle of a (re)started run
    // considers every component unconditionally.
    std::fill(sliceWake.begin(), sliceWake.end(), clock);
    Cycle wake = clock;

    team->beginRun([this](uint32_t i) {
        uint32_t c = activeSlices[i];
        cores[c]->tick();
        l1ds[c]->tick();
        l2s[c]->tick();
    });
    struct RunGuard
    {
        SliceTeam *t;
        ~RunGuard() { t->endRun(); }
    } guard{team.get()};

    while (!done()) {
        if (clock >= cap)
            return false;
        if (wake == kNeverWake) {
            // Nothing schedulable with targets unmet: wedged; jump to
            // the cap exactly as the event engine does.
            clock = cap;
            return false;
        }
        if (wake > clock) {
            clock = std::min(wake, cap);
            if (clock >= cap)
                return false;
        }
        GAZE_OBS_HOOK(if (obsSampler) obsSampler->advanceTo(clock););
        wake = executeThreadedCycle();
        post();
    }
    return true;
}

template <typename DoneFn, typename PostCycleFn>
bool
System::driveLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post)
{
    if (threadedActive())
        return threadedLoop(cap, done, post);
    switch (cfg.engine) {
      case EngineKind::Event:
        return eventLoop(cap, kNeverWake, done, post) == LoopExit::Done;
      case EngineKind::Polled:
        return polledLoop(cap, done, post);
      case EngineKind::Auto:
        return autoLoop(cap, done, post);
    }
    return false;
}

void
System::run(uint64_t instr_per_core)
{
    std::vector<uint64_t> target(cfg.numCores);
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        target[c] = cores[c]->retired() + instr_per_core;

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    auto all_done = [&] {
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (cores[c]->retired() < target[c])
                return false;
        }
        return true;
    };

    [[maybe_unused]] Cycle runBegin = clock;
    if (!driveLoop(cap, all_done, [] {}))
        GAZE_WARN("run() hit the cycle cap; simulation wedged?");
    GAZE_OBS_HOOK(obsStintSpan("run", runBegin););
}

void
System::resetStats()
{
    for (auto &c : cores)
        c->resetStats();
    for (auto &c : l1ds)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    llcCache->resetStats();
    dramCtrl->resetStats();
}

std::vector<CoreResult>
System::simulate(uint64_t instr_per_core)
{
    std::vector<uint64_t> base(cfg.numCores);
    std::vector<CoreResult> out(cfg.numCores);
    std::vector<bool> finished(cfg.numCores, false);
    Cycle start = clock;

    for (uint32_t c = 0; c < cfg.numCores; ++c)
        base[c] = cores[c]->retired();

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    uint32_t remaining = cfg.numCores;

    auto recordFinishers = [&] {
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (finished[c])
                continue;
            if (cores[c]->retired() - base[c] >= instr_per_core) {
                finished[c] = true;
                out[c].instructions = cores[c]->retired() - base[c];
                out[c].cycles = clock - start;
                --remaining;
                GAZE_OBS_HOOK(
                    if (obsTrace && c < obsCoreTids.size())
                        obsTrace->span(obs::kPidSim, obsCoreTids[c],
                                       "core active", start,
                                       clock - start););
            }
        }
    };

    driveLoop(cap, [&] { return remaining == 0; }, recordFinishers);
    GAZE_OBS_HOOK(obsStintSpan("simulate", start););

    if (remaining > 0)
        GAZE_WARN("simulate() hit the cycle cap with ", remaining,
                  " cores unfinished");
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!finished[c]) {
            out[c].instructions = cores[c]->retired() - base[c];
            out[c].cycles = clock - start;
        }
    }
    return out;
}

EngineStats
System::engineStats() const
{
    EngineStats s;
    s.eventDriven = cfg.engine != EngineKind::Polled || threadedActive();
    s.kind = cfg.engine;
    s.simThreads = cfg.simThreads;
    s.cyclesTotal = clock;
    s.cyclesExecuted = executedCycles;
    s.cyclesSkipped = clock - executedCycles;
    s.eventsDispatched = dispatchedEvents;
    s.engineFlips = statEngineFlips;
    s.polledCycles = statPolledCycles;
    return s;
}

} // namespace gaze
