#include "sim/system.hh"

#include "common/log.hh"

namespace gaze
{

System::System(const SystemConfig &config)
    : cfg(config), vm(34)
{
    GAZE_ASSERT(cfg.numCores >= 1 && cfg.numCores <= 64, "bad core count");

    DramParams dp = cfg.dramAuto ? DramParams::forCores(cfg.numCores)
                                 : cfg.dram;
    if (cfg.dramAuto) {
        // Keep any user-tuned timing/bus fields from cfg.dram.
        dp.mtps = cfg.dram.mtps;
        dp.cpuGhz = cfg.dram.cpuGhz;
    }
    dramCtrl = std::make_unique<Dram>(dp, &clock);

    CacheParams llc_p;
    llc_p.name = "LLC";
    llc_p.level = levelLLC;
    llc_p.ways = cfg.llcWays;
    llc_p.sets = CacheParams::setsFor(cfg.llcBytesPerCore * cfg.numCores,
                                      cfg.llcWays);
    llc_p.latency = cfg.llcLatency;
    llc_p.mshrs = cfg.llcMshrsPerCore * cfg.numCores;
    llc_p.rqSize = 64 * cfg.numCores;
    llc_p.wqSize = 64 * cfg.numCores;
    llc_p.pqSize = 32 * cfg.numCores;
    llc_p.replacement = cfg.replacement;
    llcCache = std::make_unique<Cache>(llc_p, dramCtrl.get(), &clock);

    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        CacheParams l2_p;
        l2_p.name = "L2C" + std::to_string(c);
        l2_p.level = levelL2;
        l2_p.ways = cfg.l2Ways;
        l2_p.sets = CacheParams::setsFor(cfg.l2Bytes, cfg.l2Ways);
        l2_p.latency = cfg.l2Latency;
        l2_p.mshrs = cfg.l2Mshrs;
        l2_p.rqSize = 32;
        l2_p.wqSize = 32;
        l2_p.pqSize = 16;
        l2_p.replacement = cfg.replacement;
        l2s.push_back(std::make_unique<Cache>(l2_p, llcCache.get(),
                                              &clock));

        CacheParams l1_p;
        l1_p.name = "L1D" + std::to_string(c);
        l1_p.level = levelL1;
        l1_p.ways = cfg.l1dWays;
        l1_p.sets = CacheParams::setsFor(cfg.l1dBytes, cfg.l1dWays);
        l1_p.latency = cfg.l1dLatency;
        l1_p.mshrs = cfg.l1dMshrs;
        l1_p.rqSize = 64;
        l1_p.wqSize = 64;
        l1_p.pqSize = 8;
        l1_p.replacement = cfg.replacement;
        l1ds.push_back(std::make_unique<Cache>(l1_p, l2s.back().get(),
                                               &clock));

        cores.push_back(std::make_unique<Core>(cfg.core, c,
                                               l1ds.back().get(), &vm,
                                               &clock));
    }
}

System::~System() = default;

void
System::setTrace(uint32_t cpu, TraceSource *trace)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    cores[cpu]->setTrace(trace);
}

void
System::setL1Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    l1ds[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

void
System::setL2Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    l2s[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

void
System::tickAll()
{
    for (auto &c : cores)
        c->tick();
    for (auto &c : l1ds)
        c->tick();
    for (auto &c : l2s)
        c->tick();
    llcCache->tick();
    dramCtrl->tick();
    ++clock;
}

void
System::run(uint64_t instr_per_core)
{
    std::vector<uint64_t> target(cfg.numCores);
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        target[c] = cores[c]->retired() + instr_per_core;

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    while (true) {
        bool all_done = true;
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (cores[c]->retired() < target[c]) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            return;
        if (clock >= cap) {
            GAZE_WARN("run() hit the cycle cap; simulation wedged?");
            return;
        }
        tickAll();
    }
}

void
System::resetStats()
{
    for (auto &c : cores)
        c->resetStats();
    for (auto &c : l1ds)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    llcCache->resetStats();
    dramCtrl->resetStats();
}

std::vector<CoreResult>
System::simulate(uint64_t instr_per_core)
{
    std::vector<uint64_t> base(cfg.numCores);
    std::vector<CoreResult> out(cfg.numCores);
    std::vector<bool> finished(cfg.numCores, false);
    Cycle start = clock;

    for (uint32_t c = 0; c < cfg.numCores; ++c)
        base[c] = cores[c]->retired();

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    uint32_t remaining = cfg.numCores;
    while (remaining > 0 && clock < cap) {
        tickAll();
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (finished[c])
                continue;
            if (cores[c]->retired() - base[c] >= instr_per_core) {
                finished[c] = true;
                out[c].instructions = cores[c]->retired() - base[c];
                out[c].cycles = clock - start;
                --remaining;
            }
        }
    }
    if (remaining > 0)
        GAZE_WARN("simulate() hit the cycle cap with ", remaining,
                  " cores unfinished");
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!finished[c]) {
            out[c].instructions = cores[c]->retired() - base[c];
            out[c].cycles = clock - start;
        }
    }
    return out;
}

} // namespace gaze
