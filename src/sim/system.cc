#include "sim/system.hh"

#include "common/log.hh"

namespace gaze
{

const char *
engineKindName(EngineKind kind)
{
    return kind == EngineKind::Event ? "event" : "polled";
}

EngineKind
parseEngineKind(const std::string &name)
{
    if (name == "event")
        return EngineKind::Event;
    if (name == "polled")
        return EngineKind::Polled;
    GAZE_FATAL("unknown simulation engine '", name,
               "' (known: event, polled)");
}

System::System(const SystemConfig &config)
    : cfg(config), vm(34)
{
    GAZE_ASSERT(cfg.numCores >= 1 && cfg.numCores <= 64, "bad core count");
    // Validate the replacement policy eagerly, before any cache is
    // built, so a bad campaign/CLI string dies here with the full
    // list instead of surfacing from some worker mid-run (mirrors the
    // prefetcher registry's unknown-scheme diagnostics).
    if (!isKnownReplacementPolicy(cfg.replacement))
        GAZE_FATAL("unknown replacement policy '", cfg.replacement,
                   "' in SystemConfig (known: ",
                   knownReplacementPolicyList(), ")");

    DramParams dp = cfg.dramAuto ? DramParams::forCores(cfg.numCores)
                                 : cfg.dram;
    if (cfg.dramAuto) {
        // Keep any user-tuned timing/bus fields from cfg.dram.
        dp.mtps = cfg.dram.mtps;
        dp.cpuGhz = cfg.dram.cpuGhz;
    }
    dramCtrl = std::make_unique<Dram>(dp, &clock);

    CacheParams llc_p;
    llc_p.name = "LLC";
    llc_p.level = levelLLC;
    llc_p.ways = cfg.llcWays;
    llc_p.sets = CacheParams::setsFor(cfg.llcBytesPerCore * cfg.numCores,
                                      cfg.llcWays);
    llc_p.latency = cfg.llcLatency;
    llc_p.mshrs = cfg.llcMshrsPerCore * cfg.numCores;
    llc_p.rqSize = 64 * cfg.numCores;
    llc_p.wqSize = 64 * cfg.numCores;
    llc_p.pqSize = 32 * cfg.numCores;
    llc_p.replacement = cfg.replacement;
    llcCache = std::make_unique<Cache>(llc_p, dramCtrl.get(), &clock,
                                       &pool);

    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        CacheParams l2_p;
        l2_p.name = "L2C" + std::to_string(c);
        l2_p.level = levelL2;
        l2_p.ways = cfg.l2Ways;
        l2_p.sets = CacheParams::setsFor(cfg.l2Bytes, cfg.l2Ways);
        l2_p.latency = cfg.l2Latency;
        l2_p.mshrs = cfg.l2Mshrs;
        l2_p.rqSize = 32;
        l2_p.wqSize = 32;
        l2_p.pqSize = 16;
        l2_p.replacement = cfg.replacement;
        l2s.push_back(std::make_unique<Cache>(l2_p, llcCache.get(),
                                              &clock, &pool));

        CacheParams l1_p;
        l1_p.name = "L1D" + std::to_string(c);
        l1_p.level = levelL1;
        l1_p.ways = cfg.l1dWays;
        l1_p.sets = CacheParams::setsFor(cfg.l1dBytes, cfg.l1dWays);
        l1_p.latency = cfg.l1dLatency;
        l1_p.mshrs = cfg.l1dMshrs;
        l1_p.rqSize = 64;
        l1_p.wqSize = 64;
        l1_p.pqSize = 8;
        l1_p.replacement = cfg.replacement;
        l1ds.push_back(std::make_unique<Cache>(l1_p, l2s.back().get(),
                                               &clock, &pool));

        cores.push_back(std::make_unique<Core>(cfg.core, c,
                                               l1ds.back().get(), &vm,
                                               &clock));
    }

    if (cfg.engine == EngineKind::Event) {
        // Priorities reproduce tickAll()'s fixed order: all cores,
        // then L1Ds, L2s, the LLC, DRAM last — so same-cycle events
        // dispatch exactly as the polled engine ticks.
        int n = static_cast<int>(cfg.numCores);
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            cores[c]->bindScheduler(&eq, static_cast<int>(c));
            l1ds[c]->bindScheduler(&eq, n + static_cast<int>(c));
            l2s[c]->bindScheduler(&eq, 2 * n + static_cast<int>(c));
        }
        llcCache->bindScheduler(&eq, 3 * n);
        dramCtrl->bindScheduler(&eq, 3 * n + 1);
    }
}

System::~System()
{
    // Tear the hierarchy down first so every in-flight MSHR returns
    // its waiter chain, then hold the pool to its balance contract:
    // anything still outstanding is a leaked Request.
    cores.clear();
    l1ds.clear();
    l2s.clear();
    llcCache.reset();
    dramCtrl.reset();
    GAZE_ASSERT(pool.outstanding() == 0,
                "request pool imbalance at teardown: ",
                pool.outstanding(), " node(s) leaked");
}

void
System::setTrace(uint32_t cpu, TraceSource *trace)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    cores[cpu]->setTrace(trace);
}

void
System::setL1Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    l1ds[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

void
System::setL2Prefetcher(uint32_t cpu, std::unique_ptr<Prefetcher> pf)
{
    GAZE_ASSERT(cpu < cfg.numCores, "cpu out of range");
    if (!pf)
        return;
    l2s[cpu]->setPrefetcher(pf.get(), &vm, dramCtrl.get(), cpu);
    ownedPrefetchers.push_back(std::move(pf));
}

void
System::tickAll()
{
    for (auto &c : cores)
        c->tick();
    for (auto &c : l1ds)
        c->tick();
    for (auto &c : l2s)
        c->tick();
    llcCache->tick();
    dramCtrl->tick();
    ++clock;
    ++executedCycles;
    dispatchedEvents += 3 * uint64_t(cfg.numCores) + 2;
}

void
System::scheduleAll()
{
    // Arm every component at the current cycle so a (re)started run
    // considers it, exactly like the polled engine's unconditional
    // first tickAll(). Anything already scheduled earlier keeps its
    // slot; anything stranded in the past by a cycle-cap jump is
    // pulled forward.
    for (auto &c : cores)
        c->wakeAt(clock);
    for (auto &c : l1ds)
        c->wakeAt(clock);
    for (auto &c : l2s)
        c->wakeAt(clock);
    llcCache->wakeAt(clock);
    dramCtrl->wakeAt(clock);
}

template <typename DoneFn, typename PostCycleFn>
bool
System::eventLoop(uint64_t cap, DoneFn &&done, PostCycleFn &&post)
{
    scheduleAll();
    while (!done()) {
        Cycle next = eq.nextEventCycle();
        if (next == EventQueue::kNoEvent) {
            // Every component asleep with targets unmet: the polled
            // engine would spin no-op cycles to the cap; jump there.
            clock = cap;
            return false;
        }
        if (next < clock) {
            // A cycle flagged only by superseded entries (lazy
            // deschedule): drain it without touching the clock.
            size_t stale = eq.dispatchCycle(next);
            GAZE_ASSERT(stale == 0, "live event behind the clock");
            continue;
        }
        if (next >= cap) {
            clock = cap;
            return false;
        }
        clock = next;
        size_t n = eq.dispatchCycle(next);
        clock = next + 1;
        if (n > 0) {
            ++executedCycles;
            dispatchedEvents += n;
            post();
        }
    }
    return true;
}

void
System::run(uint64_t instr_per_core)
{
    std::vector<uint64_t> target(cfg.numCores);
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        target[c] = cores[c]->retired() + instr_per_core;

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    auto all_done = [&] {
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (cores[c]->retired() < target[c])
                return false;
        }
        return true;
    };

    if (cfg.engine == EngineKind::Event) {
        if (!eventLoop(cap, all_done, [] {}))
            GAZE_WARN("run() hit the cycle cap; simulation wedged?");
        return;
    }

    while (true) {
        if (all_done())
            return;
        if (clock >= cap) {
            GAZE_WARN("run() hit the cycle cap; simulation wedged?");
            return;
        }
        tickAll();
    }
}

void
System::resetStats()
{
    for (auto &c : cores)
        c->resetStats();
    for (auto &c : l1ds)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    llcCache->resetStats();
    dramCtrl->resetStats();
}

std::vector<CoreResult>
System::simulate(uint64_t instr_per_core)
{
    std::vector<uint64_t> base(cfg.numCores);
    std::vector<CoreResult> out(cfg.numCores);
    std::vector<bool> finished(cfg.numCores, false);
    Cycle start = clock;

    for (uint32_t c = 0; c < cfg.numCores; ++c)
        base[c] = cores[c]->retired();

    uint64_t cap = clock + instr_per_core * cfg.maxCyclesPerInstr
                   + 1000000;
    uint32_t remaining = cfg.numCores;

    auto recordFinishers = [&] {
        for (uint32_t c = 0; c < cfg.numCores; ++c) {
            if (finished[c])
                continue;
            if (cores[c]->retired() - base[c] >= instr_per_core) {
                finished[c] = true;
                out[c].instructions = cores[c]->retired() - base[c];
                out[c].cycles = clock - start;
                --remaining;
            }
        }
    };

    if (cfg.engine == EngineKind::Event) {
        eventLoop(cap, [&] { return remaining == 0; },
                  recordFinishers);
    } else {
        while (remaining > 0 && clock < cap) {
            tickAll();
            recordFinishers();
        }
    }

    if (remaining > 0)
        GAZE_WARN("simulate() hit the cycle cap with ", remaining,
                  " cores unfinished");
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!finished[c]) {
            out[c].instructions = cores[c]->retired() - base[c];
            out[c].cycles = clock - start;
        }
    }
    return out;
}

EngineStats
System::engineStats() const
{
    EngineStats s;
    s.eventDriven = cfg.engine == EngineKind::Event;
    s.cyclesTotal = clock;
    s.cyclesExecuted = executedCycles;
    s.cyclesSkipped = clock - executedCycles;
    s.eventsDispatched = dispatchedEvents;
    return s;
}

} // namespace gaze
