/**
 * @file
 * Fixed-capacity, open-addressed hash table for the cache MSHRs (and
 * other bounded addr-keyed hot-path maps, e.g. SPP-PPF's in-flight
 * prefetch records).
 *
 * The previous std::unordered_map allocated a node per miss and chased
 * bucket pointers on every lookup — on the per-access hot path, where
 * occupancy is bounded by the MSHR count anyway. This table stores
 * everything in three flat arrays sized at construction (slot count =
 * 2x capacity rounded to a power of two, so load factor never exceeds
 * 0.5), probes linearly, and deletes by backward-shift compaction —
 * tombstone-free, so probe chains never rot over a long campaign.
 *
 * Iteration is by *insertion order* (an intrusive doubly-linked list
 * over slot indices), which makes retry precedence under congestion a
 * deterministic FIFO instead of whatever bucket order the standard
 * library produced. Steady state allocates nothing.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gaze
{

/** Flat Addr -> EntryT map with a hard capacity and FIFO iteration. */
template <typename EntryT>
class MshrTable
{
  public:
    explicit MshrTable(uint32_t capacity_limit)
        : capLimit(capacity_limit)
    {
        GAZE_ASSERT(capLimit >= 1, "table needs at least one MSHR slot");
        size_t slots = 8;
        while (slots < size_t(capLimit) * 2)
            slots <<= 1;
        keys.assign(slots, 0);
        entries.resize(slots);
        used.assign(slots, 0);
        orderNext.assign(slots, -1);
        orderPrev.assign(slots, -1);
        shift = 64;
        for (size_t s = slots; s > 1; s >>= 1)
            --shift;
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t capacity() const { return capLimit; }
    bool full() const { return count >= capLimit; }

    EntryT *
    find(Addr key)
    {
        size_t i = findSlot(key);
        return i != kNoSlot ? &entries[i] : nullptr;
    }

    const EntryT *
    find(Addr key) const
    {
        size_t i = const_cast<MshrTable *>(this)->findSlot(key);
        return i != kNoSlot ? &entries[i] : nullptr;
    }

    /**
     * Insert @p key (must be absent, table must not be full) and
     * return its default-initialized payload slot.
     */
    EntryT &
    insert(Addr key)
    {
        GAZE_ASSERT(!full(), "insert into a full MSHR table");
        size_t i = home(key);
        while (used[i]) {
            GAZE_ASSERT(keys[i] != key, "duplicate MSHR insert");
            i = (i + 1) & mask();
        }
        keys[i] = key;
        entries[i] = EntryT{};
        used[i] = 1;
        linkTail(i);
        ++count;
        return entries[i];
    }

    /** Remove @p key; returns false when it was not present. */
    bool
    erase(Addr key)
    {
        size_t i = findSlot(key);
        if (i == kNoSlot)
            return false;
        unlink(i);
        --count;
        // Backward-shift compaction: pull every displaced follower of
        // the probe chain into the hole so lookups never need
        // tombstones. Moved slots drag their order links along.
        size_t j = i;
        while (true) {
            j = (j + 1) & mask();
            if (!used[j])
                break;
            size_t k = home(keys[j]);
            if (((j - k) & mask()) >= ((j - i) & mask())) {
                moveSlot(j, i);
                i = j;
            }
        }
        used[i] = 0;
        entries[i] = EntryT{};
        return true;
    }

    /**
     * Visit entries oldest-insertion-first as fn(Addr, EntryT&).
     * A fn returning bool stops the walk on false. Payload mutation is
     * allowed; insert/erase during the walk is not.
     */
    template <typename Fn>
    void
    forEachInOrder(Fn &&fn)
    {
        for (int32_t i = orderHead; i >= 0; i = orderNext[i]) {
            if constexpr (std::is_void_v<decltype(fn(
                              std::declval<Addr>(),
                              std::declval<EntryT &>()))>) {
                fn(keys[i], entries[i]);
            } else {
                if (!fn(keys[i], entries[i]))
                    return;
            }
        }
    }

  private:
    static constexpr size_t kNoSlot = ~size_t(0);

    size_t mask() const { return keys.size() - 1; }

    size_t
    home(Addr key) const
    {
        return size_t((uint64_t(key) * 0x9E3779B97F4A7C15ull) >> shift);
    }

    size_t
    findSlot(Addr key)
    {
        size_t i = home(key);
        while (used[i]) {
            if (keys[i] == key)
                return i;
            i = (i + 1) & mask();
        }
        return kNoSlot;
    }

    void
    linkTail(size_t i)
    {
        int32_t n = static_cast<int32_t>(i);
        orderPrev[i] = orderTail;
        orderNext[i] = -1;
        if (orderTail >= 0)
            orderNext[orderTail] = n;
        else
            orderHead = n;
        orderTail = n;
    }

    void
    unlink(size_t i)
    {
        if (orderPrev[i] >= 0)
            orderNext[orderPrev[i]] = orderNext[i];
        else
            orderHead = orderNext[i];
        if (orderNext[i] >= 0)
            orderPrev[orderNext[i]] = orderPrev[i];
        else
            orderTail = orderPrev[i];
    }

    void
    moveSlot(size_t from, size_t to)
    {
        keys[to] = keys[from];
        entries[to] = std::move(entries[from]);
        orderNext[to] = orderNext[from];
        orderPrev[to] = orderPrev[from];
        int32_t n = static_cast<int32_t>(to);
        if (orderPrev[to] >= 0)
            orderNext[orderPrev[to]] = n;
        else
            orderHead = n;
        if (orderNext[to] >= 0)
            orderPrev[orderNext[to]] = n;
        else
            orderTail = n;
    }

    uint32_t capLimit;
    int shift;
    size_t count = 0;
    int32_t orderHead = -1;
    int32_t orderTail = -1;

    std::vector<Addr> keys;
    std::vector<EntryT> entries;
    std::vector<uint8_t> used;
    std::vector<int32_t> orderNext;
    std::vector<int32_t> orderPrev;
};

} // namespace gaze
