/**
 * @file
 * DDR4-style DRAM controller: per-channel read/write queues with
 * FR-FCFS scheduling, bank row-buffer state, write-drain mode, and a
 * shared data bus whose occupancy produces the bandwidth contention the
 * paper's multi-core and MTPS-sweep results depend on.
 *
 * Timing follows Table II: tRP = tRCD = tCAS = 12.5ns, 3200 MTPS over a
 * 64-bit bus (a 64B line = 8 transfers = 2.5ns of bus time), 8 banks per
 * rank, 2KB row buffer per bank.
 */

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "sim/event.hh"
#include "sim/request.hh"

namespace gaze
{

/** DRAM organization and timing. */
struct DramParams
{
    uint32_t channels = 1;
    uint32_t ranksPerChannel = 1;
    uint32_t banksPerRank = 8;
    uint64_t rowBufferBytes = 2048;

    /** Mega-transfers per second on the data bus. */
    double mtps = 3200.0;

    /** CPU frequency, to convert ns to core cycles. */
    double cpuGhz = 4.0;

    uint32_t busWidthBits = 64;

    double tRpNs = 12.5;
    double tRcdNs = 12.5;
    double tCasNs = 12.5;

    uint32_t rqSize = 64; ///< per channel
    uint32_t wqSize = 64; ///< per channel
    uint32_t wqDrainHigh = 48;
    uint32_t wqDrainLow = 16;

    /** Channel/rank scaling the paper uses per core count (Table II). */
    static DramParams forCores(uint32_t cores);
};

/** Aggregate DRAM statistics. */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t busBusyCycles = 0;
    uint64_t readLatencySum = 0; ///< enqueue -> data, demand+prefetch

    double
    rowHitRate() const
    {
        uint64_t t = rowHits + rowMisses;
        return t ? double(rowHits) / t : 0.0;
    }

    double
    avgReadLatency() const
    {
        return reads ? double(readLatencySum) / reads : 0.0;
    }

    void reset() { *this = DramStats{}; }
};

/** The memory controller: one instance serves the whole system. */
class Dram final : public MemoryDevice
{
  public:
    Dram(const DramParams &params, const Cycle *clock);

    bool sendRequest(const Request &req) override;
    void tick() override;

    const DramStats &stats() const { return stat; }
    void resetStats();

    /**
     * Recent data-bus utilization in [0,1], averaged over the last
     * completed epoch (~8K cycles). DSPatch keys its CovP/AccP choice
     * off this. Epoch boundaries the controller slept across are
     * accounted on the fly, so the answer is identical to the polled
     * engine's no matter how many idle cycles were skipped.
     */
    double recentUtilization() const;

    /** Join an event-driven System (priority = tickAll() position). */
    void
    bindScheduler(EventQueue *eq, int priority)
    {
        sched.bind(eq, this, priority);
    }

    /** Event mode, run start: guarantee a tick at @p when. */
    void wakeAt(Cycle when) { sched.bootstrapWake(when); }

    /**
     * Earliest future cycle a tick could issue a command or deliver a
     * completion; kNeverWake when every queue and the completion heap
     * are empty (sendRequest wakes the controller).
     */
    Cycle nextWakeCycle() const;

    const DramParams &params() const { return cfg; }

    /** Total read-queue occupancy across channels (tests). */
    size_t rqOccupancy() const;

  private:
    struct Bank
    {
        int64_t openRow = -1;
        Cycle ready = 0;
    };

    struct QueuedRequest
    {
        Request req;
        Cycle enqueue;
        uint64_t row;
        uint32_t bank;
    };

    struct Channel
    {
        RingBuffer<QueuedRequest> rq;
        RingBuffer<QueuedRequest> wq;
        std::vector<Bank> banks;
        Cycle busFree = 0;
        bool draining = false;

        /** Row hits served past an older request (reorder bound). */
        uint32_t rowHitBypasses = 0;
    };

    struct Completion
    {
        Cycle ready;
        uint64_t seq;
        Request req;
        bool operator>(const Completion &o) const
        {
            return ready != o.ready ? ready > o.ready : seq > o.seq;
        }
    };

    struct Decoded
    {
        uint32_t channel;
        uint32_t bank;
        uint64_t row;
    };

    Decoded decode(Addr paddr) const;
    void serviceChannel(Channel &ch);

    /**
     * Process epoch boundaries that fell strictly before the current
     * cycle while the controller slept (the polled engine handles
     * each at its own cycle; idle epochs publish a zero utilization).
     */
    void catchUpEpochs();

    /** Candidate pair found by a queue scan (q.size() = none). */
    struct Pick
    {
        size_t rowHit;
        size_t oldest;
    };

    /**
     * Scan @p q for the first ready row hit and the oldest ready
     * request. When @p demands_only, prefetch-typed requests are
     * invisible (demand-over-prefetch read priority).
     */
    Pick scanQueue(const Channel &ch,
                   const RingBuffer<QueuedRequest> &q,
                   bool demands_only) const;

    /**
     * FR-FCFS with a reorder bound: serve ready row hits, but after
     * @ref rowHitBypassLimit consecutive bypasses of an older ready
     * request, serve the oldest so nothing starves. (An age cap is
     * the wrong tool: under heavy queueing every request exceeds any
     * fixed age and the policy would collapse to row-missing FCFS.)
     */
    size_t choose(Channel &ch, const Pick &p, size_t none) const;

    static constexpr uint32_t rowHitBypassLimit = 8;

    Cycle now() const { return *clock; }

    DramParams cfg;
    const Cycle *clock;

    TickEvent<Dram> sched;

    std::vector<Channel> channels;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> completions;
    uint64_t completionSeq = 0;

    uint32_t banksPerChannel;
    uint64_t blocksPerRow;
    Cycle tRp, tRcd, tCas, burst;

    DramStats stat;

    // Utilization epoch tracking.
    static constexpr Cycle epochLength = 8192;
    Cycle epochStart = 0;
    uint64_t epochBusy = 0;
    double lastEpochUtil = 0.0;
};

} // namespace gaze
