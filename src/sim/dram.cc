#include "sim/dram.hh"

#include <cmath>

#include "common/log.hh"

namespace gaze
{

DramParams
DramParams::forCores(uint32_t cores)
{
    // Table II: 1C single channel 1 rank; 2C dual channel 1 rank;
    // 4C dual channel 2 ranks; 8C quad channel 2 ranks.
    DramParams p;
    if (cores <= 1) {
        p.channels = 1;
        p.ranksPerChannel = 1;
    } else if (cores <= 2) {
        p.channels = 2;
        p.ranksPerChannel = 1;
    } else if (cores <= 4) {
        p.channels = 2;
        p.ranksPerChannel = 2;
    } else {
        p.channels = 4;
        p.ranksPerChannel = 2;
    }
    return p;
}

Dram::Dram(const DramParams &params, const Cycle *clock_ptr)
    : cfg(params), clock(clock_ptr), channels(params.channels)
{
    GAZE_ASSERT(clock != nullptr, "dram needs a clock");
    banksPerChannel = cfg.ranksPerChannel * cfg.banksPerRank;
    blocksPerRow = cfg.rowBufferBytes / blockSize;
    for (auto &ch : channels)
        ch.banks.assign(banksPerChannel, Bank{});

    auto ns_to_cycles = [&](double ns) {
        return static_cast<Cycle>(std::ceil(ns * cfg.cpuGhz));
    };
    tRp = ns_to_cycles(cfg.tRpNs);
    tRcd = ns_to_cycles(cfg.tRcdNs);
    tCas = ns_to_cycles(cfg.tCasNs);

    // One 64B line = blockSize*8/busWidth transfers; each transfer takes
    // cpuGhz*1e3/mtps cycles.
    double transfers = double(blockSize) * 8.0 / cfg.busWidthBits;
    burst = static_cast<Cycle>(
        std::ceil(transfers * cfg.cpuGhz * 1000.0 / cfg.mtps));
    GAZE_ASSERT(burst >= 1, "degenerate burst length");
}

Dram::Decoded
Dram::decode(Addr paddr) const
{
    uint64_t block = blockNumber(paddr);
    Decoded d;
    d.channel = static_cast<uint32_t>(block % cfg.channels);
    block /= cfg.channels;
    d.bank = static_cast<uint32_t>(block % banksPerChannel);
    block /= banksPerChannel;
    // Consecutive blocks in the same bank share a row buffer.
    d.row = block / blocksPerRow;
    return d;
}

bool
Dram::sendRequest(const Request &req)
{
    Decoded d = decode(req.paddr);
    Channel &ch = channels[d.channel];

    QueuedRequest q;
    q.req = req;
    q.enqueue = now();
    q.row = d.row;
    q.bank = d.bank;

    if (req.type == AccessType::Writeback) {
        // Writes are sunk unconditionally; drain mode keeps occupancy
        // bounded in practice (see Cache::sendRequest rationale).
        ch.wq.push_back(q);
        sched.requestWake(now());
        return true;
    }
    if (ch.rq.size() >= cfg.rqSize)
        return false;
    ch.rq.push_back(q);
    sched.requestWake(now());
    return true;
}

Dram::Pick
Dram::scanQueue(const Channel &ch, const RingBuffer<QueuedRequest> &q,
                bool demands_only) const
{
    Pick p{q.size(), q.size()};
    for (size_t i = 0; i < q.size(); ++i) {
        const QueuedRequest &r = q[i];
        if (demands_only && r.req.type == AccessType::Prefetch)
            continue;
        const Bank &b = ch.banks[r.bank];
        if (b.ready > now())
            continue;
        if (p.oldest == q.size())
            p.oldest = i; // queue order == age order
        if (p.rowHit == q.size() && b.openRow == int64_t(r.row)) {
            p.rowHit = i;
            if (p.oldest != q.size())
                break; // both found
        }
    }
    return p;
}

size_t
Dram::choose(Channel &ch, const Pick &p, size_t none) const
{
    if (p.rowHit == none || p.rowHit == p.oldest) {
        ch.rowHitBypasses = 0;
        return p.oldest;
    }
    if (ch.rowHitBypasses < rowHitBypassLimit) {
        ++ch.rowHitBypasses;
        return p.rowHit;
    }
    ch.rowHitBypasses = 0;
    return p.oldest;
}

void
Dram::serviceChannel(Channel &ch)
{
    // Hysteretic write drain: start when the WQ is nearly full (or
    // reads are absent), stop when drained low.
    if (!ch.draining &&
        (ch.wq.size() >= cfg.wqDrainHigh || (ch.rq.empty() && !ch.wq.empty())))
        ch.draining = true;
    if (ch.draining && (ch.wq.size() <= cfg.wqDrainLow ||
                        (ch.wq.empty())))
        ch.draining = false;

    bool do_write = ch.draining && !ch.wq.empty();
    RingBuffer<QueuedRequest> &q = do_write ? ch.wq : ch.rq;
    if (q.empty())
        return;

    // One command per cycle per channel; bank-level parallelism is
    // implicit (each command occupies only its own bank), and the
    // shared data bus serializes transfers via the busFree high-water
    // mark. The issue horizon must exceed the worst-case bank access
    // (precharge+activate+CAS) or a single row miss on an idle bus
    // would stall command issue for the whole access latency; beyond
    // that, allow a few bursts of transfer pipelining.
    Cycle horizon = tRp + tRcd + tCas + 4 * burst;
    if (ch.busFree > now() + horizon)
        return;

    // Demand reads outrank prefetch reads (memory controllers treat
    // speculative traffic as low priority); within each class,
    // FR-FCFS with the reorder bound applies.
    size_t idx = q.size();
    if (!do_write) {
        idx = choose(ch, scanQueue(ch, q, /*demands_only=*/true),
                     q.size());
        if (idx == q.size())
            idx = choose(ch, scanQueue(ch, q, /*demands_only=*/false),
                         q.size());
    } else {
        idx = choose(ch, scanQueue(ch, q, /*demands_only=*/false),
                     q.size());
    }
    if (idx == q.size())
        return;

    QueuedRequest r = q[idx];
    q.erase(idx);

    Bank &bank = ch.banks[r.bank];
    Cycle start = std::max(now(), bank.ready);
    Cycle access;
    if (bank.openRow == int64_t(r.row)) {
        access = tCas;
        ++stat.rowHits;
    } else if (bank.openRow < 0) {
        access = tRcd + tCas;
        ++stat.rowMisses;
    } else {
        access = tRp + tRcd + tCas;
        ++stat.rowMisses;
    }
    Cycle data_start = std::max(start + access, ch.busFree);
    Cycle data_end = data_start + burst;

    bank.openRow = int64_t(r.row);
    bank.ready = data_end;
    ch.busFree = data_end;

    stat.busBusyCycles += burst;
    epochBusy += burst;

    if (do_write) {
        ++stat.writes;
        return; // no response for writes
    }

    ++stat.reads;
    stat.readLatencySum += data_end - r.enqueue;
    completions.push(Completion{data_end, completionSeq++, r.req});
}

void
Dram::catchUpEpochs()
{
    // Boundaries strictly before the current cycle: under polling
    // each fires at exactly epochStart + epochLength (checked every
    // cycle), publishing the busy count accumulated so far — which
    // cannot have changed while the controller slept. Looping brings
    // a long sleep through any number of (empty) epochs.
    while (now() - epochStart > epochLength) {
        double denom = double(epochLength) * cfg.channels;
        lastEpochUtil = double(epochBusy) / denom;
        epochBusy = 0;
        epochStart += epochLength;
    }
}

Cycle
Dram::nextWakeCycle() const
{
    for (const auto &ch : channels) {
        if (!ch.rq.empty() || !ch.wq.empty())
            return now() + 1;
    }
    if (!completions.empty())
        return completions.top().ready;
    return kNeverWake;
}

void
Dram::tick()
{
    // Wake-hint gate (see TickEvent). Epoch boundaries crossed while
    // skipping are reconstructed exactly by catchUpEpochs(), and
    // recentUtilization() is already sleep-aware.
    if (!sched.due(now()))
        return;

    catchUpEpochs();

    while (!completions.empty() && completions.top().ready <= now()) {
        Request r = completions.top().req;
        completions.pop();
        if (r.requester)
            r.requester->recvFill(r);
    }

    for (auto &ch : channels)
        serviceChannel(ch);

    if (now() - epochStart >= epochLength) {
        // Utilization is per-channel-normalized so 1.0 means every data
        // bus was busy every cycle of the epoch.
        double denom = double(epochLength) * cfg.channels;
        lastEpochUtil = double(epochBusy) / denom;
        epochBusy = 0;
        epochStart += epochLength;
    }

    sched.tickDone(nextWakeCycle());
}

double
Dram::recentUtilization() const
{
    // Readers (DSPatch, during a cache's tick) run before the
    // controller's tick of the cycle, so only boundaries strictly in
    // the past count — compute what catchUpEpochs() will later make
    // official without mutating anything.
    Cycle t = now();
    if (t - epochStart <= epochLength)
        return lastEpochUtil;
    if (t - epochStart > 2 * epochLength)
        return 0.0; // >= 2 idle boundaries passed: latest epoch empty
    return double(epochBusy) / (double(epochLength) * cfg.channels);
}

void
Dram::resetStats()
{
    stat.reset();
}

size_t
Dram::rqOccupancy() const
{
    size_t n = 0;
    for (const auto &ch : channels)
        n += ch.rq.size();
    return n;
}

} // namespace gaze
