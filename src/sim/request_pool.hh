/**
 * @file
 * Free-list pool of Request nodes for the MSHR waiter lists on the
 * L1D -> L2C -> LLC -> DRAM path. Every cache miss used to allocate a
 * std::vector<Request> per MSHR entry (and grow it per merged
 * waiter); with the pool, waiter nodes are recycled through a
 * singly-linked free list and the steady state allocates nothing.
 *
 * The pool tracks its outstanding-node count so end-of-run teardown
 * can assert balance: every node taken was returned, or an MSHR
 * leaked its waiters (System's destructor checks this, and the
 * --sanitize gate runs the same check under ASan).
 */

#pragma once

#include <memory>
#include <vector>

#include "common/log.hh"
#include "sim/request.hh"

namespace gaze
{

/** Recycling allocator for intrusive Request waiter lists. */
class RequestPool
{
  public:
    /** One pooled request: the payload plus the intrusive link. */
    struct Node
    {
        Request req;
        Node *next = nullptr;
    };

    RequestPool() = default;

    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Take a node holding a copy of @p r (free list first). */
    Node *
    alloc(const Request &r)
    {
        Node *n = freeHead;
        if (n) {
            freeHead = n->next;
        } else {
            if (slabs.empty() || slabUsed == slabNodes) {
                slabs.push_back(
                    std::make_unique<Node[]>(slabNodes));
                slabUsed = 0;
            }
            n = &slabs.back()[slabUsed++];
        }
        n->req = r;
        n->next = nullptr;
        ++liveNodes;
        return n;
    }

    /** Return one node to the free list. */
    void
    release(Node *n)
    {
        GAZE_ASSERT(liveNodes > 0, "request pool double free");
        n->next = freeHead;
        freeHead = n;
        --liveNodes;
    }

    /** Return a whole waiter chain starting at @p head. */
    void
    releaseChain(Node *head)
    {
        while (head) {
            Node *next = head->next;
            release(head);
            head = next;
        }
    }

    /** Nodes currently handed out (0 after a clean teardown). */
    size_t outstanding() const { return liveNodes; }

    /** Nodes ever created (pool growth; reuse keeps this flat). */
    size_t
    allocated() const
    {
        return slabs.empty()
                   ? 0
                   : (slabs.size() - 1) * slabNodes + slabUsed;
    }

  private:
    static constexpr size_t slabNodes = 64;

    std::vector<std::unique_ptr<Node[]>> slabs;
    size_t slabUsed = 0;
    Node *freeHead = nullptr;
    size_t liveNodes = 0;
};

} // namespace gaze
