/**
 * @file
 * Memory request plumbing shared by the core, caches and DRAM model.
 *
 * Requests travel *down* the hierarchy (core -> L1D -> L2C -> LLC ->
 * DRAM); completions travel back *up* via FillReceiver::recvFill. A
 * request carries both its physical and virtual addresses so that
 * L1D-attached prefetchers (which the paper trains on virtual loads)
 * and physical-side structures can both observe it.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace gaze
{

class FillReceiver;

/**
 * Cache levels, numbered from the core outwards. A prefetch's
 * fillLevel names the innermost level that may allocate the block:
 * every cache with level >= fillLevel on the response path fills.
 */
enum CacheLevel : uint32_t
{
    levelL1 = 1,
    levelL2 = 2,
    levelLLC = 3,
    levelDram = 4
};

/** One block-granularity memory request. */
struct Request
{
    /** Physical address (block aligned by the first cache it enters). */
    Addr paddr = 0;

    /** Virtual address, when the request originated from a core/L1D. */
    Addr vaddr = 0;

    /** PC of the triggering instruction (0 for writebacks). */
    PC pc = 0;

    /** Demand load / RFO / prefetch / writeback. */
    AccessType type = AccessType::Load;

    /** Originating core, for multi-core stats and page mapping. */
    uint32_t cpu = 0;

    /** Innermost cache level allowed to allocate the block. */
    uint32_t fillLevel = levelL1;

    /**
     * Cache level whose prefetcher created this request (0 for demand).
     * Prefetch usefulness is attributed at level == fillLevel only.
     */
    uint32_t pfOrigin = 0;

    /**
     * Obs attribution: System-assigned id of the scheme that issued
     * this prefetch (0 = demand / no scheme). Rides the request down
     * the hierarchy and into the filled block, so usefulness,
     * lateness and pollution can be credited to the issuing scheme
     * wherever they are detected.
     */
    uint16_t pfScheme = 0;

    /** Who to notify when this request's data is available. */
    FillReceiver *requester = nullptr;

    /** Opaque completion token for the requester (e.g. ROB index). */
    uint64_t token = 0;

    /** Cycle the request was created, for latency accounting. */
    Cycle issueCycle = 0;

    /** True for demand (non-prefetch, non-writeback) requests. */
    bool
    isDemand() const
    {
        return type == AccessType::Load || type == AccessType::Rfo;
    }
};

/** Upward-facing interface: anything that can receive completed fills. */
class FillReceiver
{
  public:
    virtual ~FillReceiver() = default;

    /** Called by the lower level when @p req has been satisfied. */
    virtual void recvFill(const Request &req) = 0;
};

/** Downward-facing interface: anything that accepts requests. */
class MemoryDevice
{
  public:
    virtual ~MemoryDevice() = default;

    /**
     * Try to enqueue @p req. Returns false when the target queue is
     * full; the sender must hold the request and retry on a later
     * cycle (this is how back-pressure propagates to the core).
     */
    virtual bool sendRequest(const Request &req) = 0;

    /** Advance one CPU cycle. */
    virtual void tick() = 0;
};

} // namespace gaze
