#include "sim/cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/obs.hh"
#include "sim/vmem.hh"

namespace gaze
{

Cache::Cache(const CacheParams &params, MemoryDevice *lower_dev,
             const Cycle *clock_ptr, RequestPool *pool_ptr)
    : cfg(params), lower(lower_dev), clock(clock_ptr), pool(pool_ptr),
      tagArr(size_t(params.sets) * params.ways, 0),
      meta(size_t(params.sets) * params.ways),
      repl(makeReplacementPolicy(params.replacement, params.sets,
                                 params.ways)),
      readQ(params.rqSize), writeQ(params.wqSize),
      prefetchQ(params.pqSize), mshr(params.mshrs)
{
    GAZE_ASSERT(isPowerOfTwo(cfg.sets),
                cfg.name, ": sets must be a power of two, got ", cfg.sets);
    GAZE_ASSERT(cfg.ways >= 1, cfg.name, ": cache needs at least one way");
    GAZE_ASSERT(cfg.mshrs >= 1, cfg.name, ": cache needs at least one MSHR");
    GAZE_ASSERT(lower != nullptr, "cache needs a lower level");
    GAZE_ASSERT(clock != nullptr, "cache needs a clock");
    if (!pool) {
        ownedPool = std::make_unique<RequestPool>();
        pool = ownedPool.get();
    }
}

Cache::~Cache()
{
    // Runs can end with fetches in flight; their waiter chains go
    // back to the pool here so System can assert pool balance.
    mshr.forEachInOrder(
        [this](Addr, MshrEntry &e) { pool->releaseChain(e.waitersHead); });
}

void
Cache::setPrefetcher(Prefetcher *prefetcher, VirtualMemory *vm,
                     const Dram *dram, uint32_t cpu)
{
    pf = prefetcher;
    vmem = vm;
    if (pf) {
        PrefetcherContext ctx;
        ctx.cache = this;
        ctx.vmem = vm;
        ctx.dram = dram;
        ctx.cpu = cpu;
        ctx.level = cfg.level;
        pf->attach(ctx);
    }
}

uint32_t
Cache::setIndex(Addr paddr) const
{
    return static_cast<uint32_t>(blockNumber(paddr) & (cfg.sets - 1));
}

size_t
Cache::lookupSlot(Addr paddr) const
{
    // One compare per way: a tag word with the valid bit set and the
    // dirty/prefetch bits masked off must equal (aligned addr | valid).
    Addr want = blockAlign(paddr) | kBlkValid;
    size_t base = size_t(setIndex(paddr)) * cfg.ways;
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        if ((tagArr[base + w] & ~(kBlkDirty | kBlkPrefetch)) == want)
            return base + w;
    }
    return kNoSlot;
}

bool
Cache::present(Addr paddr) const
{
    return lookupSlot(paddr) != kNoSlot;
}

bool
Cache::sendRequest(const Request &req)
{
    Request r = req;
    r.paddr = blockAlign(r.paddr);
    switch (r.type) {
      case AccessType::Load:
      case AccessType::Rfo:
        if (readQ.size() >= cfg.rqSize)
            return false;
        readQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Writeback:
        // Writebacks are sunk unconditionally (see DESIGN.md): a full
        // WQ would otherwise deadlock fills; occupancy is still
        // tracked so DRAM write-drain pressure is realistic.
        writeQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Prefetch:
        if (prefetchQ.size() >= cfg.pqSize) {
            ++stat.pfDroppedFull;
            return false;
        }
        prefetchQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Translation:
        break;
    }
    GAZE_PANIC("unroutable request type");
}

bool
Cache::issuePrefetch(Addr addr, uint32_t fill_level, bool virt,
                     uint32_t cpu)
{
    // A scheme written for L1D attach may ask for an L1 fill while
    // running at L2C (Fig. 13 combos): clamp to this cache's level.
    fill_level = std::max(fill_level, cfg.level);
    GAZE_ASSERT(fill_level <= levelLLC, "bad prefetch fill level");
    Request r;
    r.type = AccessType::Prefetch;
    r.cpu = cpu;
    r.fillLevel = fill_level;
    r.pfOrigin = cfg.level;
    r.pfScheme = pf ? pf->schemeId() : 0;
    r.issueCycle = now();
    if (virt) {
        GAZE_ASSERT(vmem, "virtual prefetch needs vmem at ", cfg.name);
        r.vaddr = blockAlign(addr);
        r.paddr = blockAlign(vmem->translate(addr, cpu));
    } else {
        r.vaddr = 0;
        r.paddr = blockAlign(addr);
    }

    // ChampSim-style PQ dedup: an identical pending target is not
    // queued twice (delta prefetchers re-propose the same block on
    // every access of a cache line).
    for (size_t i = 0; i < prefetchQ.size(); ++i) {
        if (prefetchQ[i].paddr == r.paddr) {
            ++stat.pfDroppedDup;
            return true;
        }
    }
    if (prefetchQ.size() >= cfg.pqSize) {
        ++stat.pfDroppedFull;
        return false;
    }
    prefetchQ.push_back(r);
    ++stat.pfIssued;
    GAZE_OBS_HOOK(if (r.pfScheme) ++schemeSlot(r.pfScheme).issued;);
    // Covers prefetchers driven from outside this cache's tick (unit
    // tests poking onAccess by hand); from inside a tick this is a
    // no-op — the end-of-tick wake hint sees the non-empty PQ.
    sched.requestWake(now());
    return true;
}

void
Cache::scheduleResponse(const Request &req, Cycle when)
{
    responses.push(PendingResponse{when, responseSeq++, req});
}

void
Cache::deliverResponses()
{
    while (!responses.empty() && responses.top().ready <= now()) {
        Request r = responses.top().req;
        responses.pop();
        if (r.requester)
            r.requester->recvFill(r);
    }
}

void
Cache::notifyPrefetcherAccess(const Request &req, bool hit)
{
    if (!pf || !req.isDemand())
        return;
    DemandAccess a;
    a.vaddr = req.vaddr;
    a.paddr = req.paddr;
    a.pc = req.pc;
    a.hit = hit;
    a.type = req.type;
    a.cycle = now();
    a.cpu = req.cpu;
    pf->onAccess(a);
}

void
Cache::appendWaiter(MshrEntry &e, const Request &req)
{
    RequestPool::Node *n = pool->alloc(req);
    if (e.waitersTail)
        e.waitersTail->next = n;
    else
        e.waitersHead = n;
    e.waitersTail = n;
}

bool
Cache::missToMshr(Request &req)
{
    if (MshrEntry *e = mshr.find(req.paddr)) {
        if (req.isDemand()) {
            if (e->wasPrefetchOnly && !e->demanded) {
                ++stat.pfLate;
                (req.type == AccessType::Load ? stat.loadMissLate
                                              : stat.rfoMissLate)++;
                GAZE_OBS_HOOK(
                    if (e->downstream.pfScheme)
                        ++schemeSlot(e->downstream.pfScheme).late;);
            }
            e->demanded = true;
            // A demand upgrade pulls the fill all the way in.
            e->downstream.fillLevel =
                std::min(e->downstream.fillLevel, req.fillLevel);
        }
        appendWaiter(*e, req);
        ++stat.mshrMerge;
        return true;
    }

    if (mshr.full())
        return false;

    MshrEntry &e = mshr.insert(req.paddr);
    e.downstream = req;
    e.downstream.requester = this;
    e.downstream.issueCycle = now();
    e.demanded = req.isDemand();
    e.wasPrefetchOnly = !req.isDemand();
    e.allocCycle = now();
    appendWaiter(e, req);
    e.issuedToLower = lower->sendRequest(e.downstream);
    if (!e.issuedToLower)
        ++unissuedMshrs;
    return true;
}

bool
Cache::handleRead(Request &req)
{
    bool is_load = req.type == AccessType::Load;

    size_t slot = lookupSlot(req.paddr);
    if (slot != kNoSlot) {
        (is_load ? stat.loadAccess : stat.rfoAccess)++;
        (is_load ? stat.loadHit : stat.rfoHit)++;
        uint32_t set = setIndex(req.paddr);
        uint32_t way = static_cast<uint32_t>(slot
                                             - size_t(set) * cfg.ways);
        repl->onHit(set, way);
        if (tagArr[slot] & kBlkPrefetch) {
            ++stat.pfUseful;
            GAZE_OBS_HOOK(if (meta[slot].pfScheme) {
                SchemeStats &ss = schemeSlot(meta[slot].pfScheme);
                ++ss.useful;
                ss.fillToUseSum += now() - meta[slot].fillCycle;
                ++ss.fillToUseCnt;
            });
            tagArr[slot] &= ~kBlkPrefetch;
        }
        if (req.type == AccessType::Rfo)
            tagArr[slot] |= kBlkDirty;
        if (req.vaddr)
            meta[slot].vaddr = blockAlign(req.vaddr);
        notifyPrefetcherAccess(req, true);
        scheduleResponse(req, now() + cfg.latency);
        return true;
    }

    if (!missToMshr(req)) {
        // Retry next cycle; count the access only when it proceeds so
        // the prefetcher is not double-trained on stalls.
        ++stat.mshrFullStall;
        return false;
    }
    (is_load ? stat.loadAccess : stat.rfoAccess)++;
    (is_load ? stat.loadMiss : stat.rfoMiss)++;
    notifyPrefetcherAccess(req, false);
    return true;
}

bool
Cache::handleWrite(Request &req)
{
    ++stat.wbAccess;
    size_t slot = lookupSlot(req.paddr);
    if (slot != kNoSlot) {
        ++stat.wbHit;
        tagArr[slot] |= kBlkDirty;
        return true;
    }
    // Non-inclusive writeback miss: the line is complete, so allocate
    // directly without fetching from below.
    ++stat.wbMiss;
    fillBlock(req, /*mark_prefetch=*/false);
    return true;
}

Cache::PfOutcome
Cache::handlePrefetch(Request &req)
{
    if (req.fillLevel > cfg.level) {
        // Targeted at a lower level: pass it down untouched. The lower
        // cache adopts it as its own prefetch request.
        return lower->sendRequest(req) ? PfOutcome::Done
                                       : PfOutcome::Retry;
    }

    size_t slot = lookupSlot(req.paddr);
    if (slot != kNoSlot) {
        // Redundant prefetch. A requester-less prefetch (issued at
        // this level) is simply dropped; one that came from an upper
        // cache's MSHR must be answered or that MSHR leaks.
        ++stat.pfDroppedHit;
        if (req.requester) {
            uint32_t set = setIndex(req.paddr);
            uint32_t way = static_cast<uint32_t>(
                slot - size_t(set) * cfg.ways);
            repl->onHit(set, way);
            scheduleResponse(req, now() + cfg.latency);
        }
        return PfOutcome::Done;
    }
    if (MshrEntry *e = mshr.find(req.paddr)) {
        // Already being fetched: ride along (or drop if local).
        ++stat.pfDroppedHit;
        if (req.requester) {
            appendWaiter(*e, req);
            ++stat.mshrMerge;
        }
        return PfOutcome::Done;
    }
    if (mshr.full()) {
        ++stat.pfMshrWait;
        if (req.requester)
            return PfOutcome::Retry; // dropping would leak upper MSHR
        if (cfg.level == levelL1) {
            // The L1 PQ holds mixed fill levels; a waiting L1-fill
            // head would starve L2-targeted prefetches behind it.
            // Demote it instead: fetch anyway, park one level out (a
            // later demand hits L2 instead of DRAM — most of the
            // benefit, none of the clog).
            Request demoted = req;
            demoted.fillLevel = cfg.level + 1;
            if (!lower->sendRequest(demoted))
                return PfOutcome::Retry;
            ++stat.pfDemoted;
            return PfOutcome::Done;
        }
        // L2/LLC PQs are homogeneous (everything targets this level
        // or beyond), so waiting at the head starves nothing, and the
        // fetch keeps its slot until an MSHR frees.
        return PfOutcome::Retry;
    }
    return missToMshr(req) ? PfOutcome::Done : PfOutcome::Retry;
}

void
Cache::tick()
{
    // Wake-hint gate: skip cycles where the last tick's
    // nextWakeCycle() proved (and no wake since lowered the bar) that
    // ticking can have no effect — the exact cycles the event engine
    // never dispatches, so the gated polled engine stays bit-identical
    // to the ungated one by the same contract.
    if (!sched.due(now()))
        return;

    deliverResponses();
    retryUnissuedMshrs();

    uint32_t ops = 0;

    // Demand reads take priority for tag bandwidth.
    while (ops < cfg.tagPorts && !readQ.empty()) {
        Request req = readQ.front();
        if (!handleRead(req))
            break; // MSHR full: head-of-line stall
        readQ.pop_front();
        ++ops;
    }

    // One writeback per cycle keeps WQ drain realistic but cheap.
    if (!writeQ.empty()) {
        Request req = writeQ.front();
        writeQ.pop_front();
        handleWrite(req);
    }

    while (ops < cfg.tagPorts && !prefetchQ.empty()) {
        Request req = prefetchQ.front();
        if (handlePrefetch(req) == PfOutcome::Retry)
            break; // blocked: retry next cycle
        prefetchQ.pop_front();
        ++ops;
    }

    if (pf)
        pf->tick();

    sched.tickDone(nextWakeCycle());
}

void
Cache::retryUnissuedMshrs()
{
    if (unissuedMshrs == 0)
        return;
    uint32_t budget = 2;
    // Insertion order: the oldest stranded fetch retries first, a
    // deterministic FIFO precedence (the hash map this table replaced
    // retried in unspecified bucket order).
    mshr.forEachInOrder([&](Addr, MshrEntry &e) {
        if (e.issuedToLower)
            return true;
        e.issuedToLower = lower->sendRequest(e.downstream);
        if (e.issuedToLower)
            --unissuedMshrs;
        return --budget != 0;
    });
}

void
Cache::fillBlock(const Request &req, bool mark_prefetch)
{
    uint32_t set = setIndex(req.paddr);
    size_t base = size_t(set) * cfg.ways;
    uint64_t valid_mask = 0;
    for (uint32_t w = 0; w < cfg.ways; ++w)
        valid_mask |= uint64_t(tagArr[base + w] & kBlkValid) << w;

    uint32_t way = repl->victim(set, valid_mask);
    size_t slot = base + way;
    Addr old = tagArr[slot];

    Addr evicted = 0;
    if (old & kBlkValid) {
        evicted = old & ~kBlkFlags;
        if (old & kBlkPrefetch) {
            ++stat.pfUseless;
            GAZE_OBS_HOOK(
                if (meta[slot].pfScheme)
                    ++schemeSlot(meta[slot].pfScheme).useless;);
        }
        if (old & kBlkDirty) {
            Request wb;
            wb.type = AccessType::Writeback;
            wb.paddr = evicted;
            wb.cpu = req.cpu;
            wb.fillLevel = cfg.level + 1;
            wb.issueCycle = now();
            lower->sendRequest(wb);
            ++stat.writebacksSent;
        }
        if (pf)
            pf->onEvict(evicted, meta[slot].vaddr);
    }

    GAZE_ASSERT((req.paddr & kBlkFlags) == 0, "unaligned fill address");
    Addr tag = req.paddr | kBlkValid;
    // RFO fills dirty the block at the level the store lives (L1);
    // copies allocated further out on the response path stay clean.
    if (req.type == AccessType::Writeback ||
        (req.type == AccessType::Rfo && cfg.level == req.fillLevel))
        tag |= kBlkDirty;
    if (mark_prefetch)
        tag |= kBlkPrefetch;
    tagArr[slot] = tag;
    meta[slot].pfScheme = mark_prefetch ? req.pfScheme : 0;
    meta[slot].fillCycle = now();
    meta[slot].vaddr = req.vaddr ? blockAlign(req.vaddr) : 0;
    repl->onFill(set, way, mark_prefetch);

    if (mark_prefetch) {
        ++stat.pfFilled;
        GAZE_OBS_HOOK(
            if (req.pfScheme) ++schemeSlot(req.pfScheme).filled;);
    }

    if (pf && req.type != AccessType::Writeback) {
        FillEvent f;
        f.paddr = req.paddr;
        f.vaddr = meta[slot].vaddr;
        f.pc = req.pc;
        f.prefetch = mark_prefetch;
        f.latency = now() >= req.issueCycle ? now() - req.issueCycle : 0;
        f.evictedPaddr = evicted;
        f.cycle = now();
        pf->onFill(f);
    }
}

void
Cache::recvFill(const Request &req)
{
    MshrEntry *slot = mshr.find(req.paddr);
    GAZE_ASSERT(slot, cfg.name, ": fill without MSHR for 0x",
                std::hex, req.paddr);
    MshrEntry e = *slot;
    mshr.erase(req.paddr);

    // Mark the block as a prefetch only when this level is the
    // prefetch's target and no demand merged while it was in flight.
    bool pure_prefetch = e.wasPrefetchOnly && !e.demanded;
    bool mark_pf = pure_prefetch &&
                   e.downstream.fillLevel == cfg.level;

    // Fill wherever level >= fillLevel (response path allocation).
    Request fill_req = e.downstream;
    // Propagate the vaddr of the first waiter that knows it.
    for (const RequestPool::Node *w = e.waitersHead; w; w = w->next) {
        if (w->req.vaddr) {
            fill_req.vaddr = w->req.vaddr;
            break;
        }
    }
    if (cfg.level >= e.downstream.fillLevel)
        fillBlock(fill_req, mark_pf);

    if (e.demanded) {
        Cycle lat = now() - e.allocCycle;
        stat.demandMissLatencySum += lat;
        ++stat.demandMissLatencyCnt;
    }

    // Wake all waiters one cycle later (fill-to-use forwarding), then
    // recycle the chain.
    for (const RequestPool::Node *w = e.waitersHead; w; w = w->next) {
        if (w->req.requester)
            scheduleResponse(w->req, now() + 1);
    }
    pool->releaseChain(e.waitersHead);

    // This call arrives from the lower level's tick, after this
    // cache's own tick of the cycle: anything it set in motion (the
    // pending responses, a prefetcher pattern installed by onFill)
    // starts next cycle.
    sched.requestWake(now() + 1);
}

Cycle
Cache::nextWakeCycle() const
{
    // Anything queued (or retryable) makes the very next cycle
    // potentially productive — the polled engine would process it
    // then, so the event engine must too.
    if (!readQ.empty() || !writeQ.empty() || !prefetchQ.empty())
        return now() + 1;
    if (unissuedMshrs > 0)
        return now() + 1;
    if (pf && pf->busy())
        return now() + 1;
    // Quiet queues: the only self-known work is delivering already
    // scheduled responses (all strictly in the future here, since
    // tick() drained everything due).
    if (!responses.empty())
        return responses.top().ready;
    return kNeverWake;
}

bool
Prefetcher::issuePrefetch(Addr addr, uint32_t fill_level, bool virt)
{
    GAZE_ASSERT(context.cache, "prefetcher not attached");
    return context.cache->issuePrefetch(addr, fill_level, virt,
                                        context.cpu);
}

} // namespace gaze
