#include "sim/cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/obs.hh"
#include "sim/vmem.hh"

namespace gaze
{

Cache::Cache(const CacheParams &params, MemoryDevice *lower_dev,
             const Cycle *clock_ptr, RequestPool *pool_ptr)
    : cfg(params), lower(lower_dev), clock(clock_ptr), pool(pool_ptr),
      blocks(size_t(params.sets) * params.ways),
      repl(makeReplacementPolicy(params.replacement, params.sets,
                                 params.ways))
{
    GAZE_ASSERT(isPowerOfTwo(cfg.sets),
                cfg.name, ": sets must be a power of two, got ", cfg.sets);
    GAZE_ASSERT(cfg.ways >= 1, cfg.name, ": cache needs at least one way");
    GAZE_ASSERT(cfg.mshrs >= 1, cfg.name, ": cache needs at least one MSHR");
    GAZE_ASSERT(lower != nullptr, "cache needs a lower level");
    GAZE_ASSERT(clock != nullptr, "cache needs a clock");
    if (!pool) {
        ownedPool = std::make_unique<RequestPool>();
        pool = ownedPool.get();
    }
    // Occupancy is bounded by the MSHR count: reserving up front
    // pins the bucket count for the cache's whole life, so the map
    // never rehashes mid-run (and its iteration order — which decides
    // retry precedence under congestion — never shifts as it grows).
    mshr.reserve(size_t(cfg.mshrs) * 2);
}

Cache::~Cache()
{
    // Runs can end with fetches in flight; their waiter chains go
    // back to the pool here so System can assert pool balance.
    for (auto &[addr, e] : mshr)
        pool->releaseChain(e.waitersHead);
}

void
Cache::setPrefetcher(Prefetcher *prefetcher, VirtualMemory *vm,
                     const Dram *dram, uint32_t cpu)
{
    pf = prefetcher;
    vmem = vm;
    if (pf) {
        PrefetcherContext ctx;
        ctx.cache = this;
        ctx.vmem = vm;
        ctx.dram = dram;
        ctx.cpu = cpu;
        ctx.level = cfg.level;
        pf->attach(ctx);
    }
}

uint32_t
Cache::setIndex(Addr paddr) const
{
    return static_cast<uint32_t>(blockNumber(paddr) & (cfg.sets - 1));
}

Cache::Block *
Cache::lookup(Addr paddr)
{
    Addr want = blockAlign(paddr);
    uint32_t set = setIndex(paddr);
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Block &b = blocks[size_t(set) * cfg.ways + w];
        if (b.valid && b.paddr == want)
            return &b;
    }
    return nullptr;
}

const Cache::Block *
Cache::lookupConst(Addr paddr) const
{
    return const_cast<Cache *>(this)->lookup(paddr);
}

bool
Cache::present(Addr paddr) const
{
    return lookupConst(paddr) != nullptr;
}

bool
Cache::sendRequest(const Request &req)
{
    Request r = req;
    r.paddr = blockAlign(r.paddr);
    switch (r.type) {
      case AccessType::Load:
      case AccessType::Rfo:
        if (readQ.size() >= cfg.rqSize)
            return false;
        readQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Writeback:
        // Writebacks are sunk unconditionally (see DESIGN.md): a full
        // WQ would otherwise deadlock fills; occupancy is still
        // tracked so DRAM write-drain pressure is realistic.
        writeQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Prefetch:
        if (prefetchQ.size() >= cfg.pqSize) {
            ++stat.pfDroppedFull;
            return false;
        }
        prefetchQ.push_back(r);
        sched.requestWake(now());
        return true;
      case AccessType::Translation:
        break;
    }
    GAZE_PANIC("unroutable request type");
}

bool
Cache::issuePrefetch(Addr addr, uint32_t fill_level, bool virt,
                     uint32_t cpu)
{
    // A scheme written for L1D attach may ask for an L1 fill while
    // running at L2C (Fig. 13 combos): clamp to this cache's level.
    fill_level = std::max(fill_level, cfg.level);
    GAZE_ASSERT(fill_level <= levelLLC, "bad prefetch fill level");
    Request r;
    r.type = AccessType::Prefetch;
    r.cpu = cpu;
    r.fillLevel = fill_level;
    r.pfOrigin = cfg.level;
    r.pfScheme = pf ? pf->schemeId() : 0;
    r.issueCycle = now();
    if (virt) {
        GAZE_ASSERT(vmem, "virtual prefetch needs vmem at ", cfg.name);
        r.vaddr = blockAlign(addr);
        r.paddr = blockAlign(vmem->translate(addr, cpu));
    } else {
        r.vaddr = 0;
        r.paddr = blockAlign(addr);
    }

    // ChampSim-style PQ dedup: an identical pending target is not
    // queued twice (delta prefetchers re-propose the same block on
    // every access of a cache line).
    for (const auto &q : prefetchQ) {
        if (q.paddr == r.paddr) {
            ++stat.pfDroppedDup;
            return true;
        }
    }
    if (prefetchQ.size() >= cfg.pqSize) {
        ++stat.pfDroppedFull;
        return false;
    }
    prefetchQ.push_back(r);
    ++stat.pfIssued;
    GAZE_OBS_HOOK(if (r.pfScheme) ++schemeSlot(r.pfScheme).issued;);
    return true;
}

void
Cache::scheduleResponse(const Request &req, Cycle when)
{
    responses.push(PendingResponse{when, responseSeq++, req});
}

void
Cache::deliverResponses()
{
    while (!responses.empty() && responses.top().ready <= now()) {
        Request r = responses.top().req;
        responses.pop();
        if (r.requester)
            r.requester->recvFill(r);
    }
}

void
Cache::notifyPrefetcherAccess(const Request &req, bool hit)
{
    if (!pf || !req.isDemand())
        return;
    DemandAccess a;
    a.vaddr = req.vaddr;
    a.paddr = req.paddr;
    a.pc = req.pc;
    a.hit = hit;
    a.type = req.type;
    a.cycle = now();
    a.cpu = req.cpu;
    pf->onAccess(a);
}

void
Cache::appendWaiter(MshrEntry &e, const Request &req)
{
    RequestPool::Node *n = pool->alloc(req);
    if (e.waitersTail)
        e.waitersTail->next = n;
    else
        e.waitersHead = n;
    e.waitersTail = n;
}

bool
Cache::missToMshr(Request &req)
{
    auto it = mshr.find(req.paddr);
    if (it != mshr.end()) {
        MshrEntry &e = it->second;
        if (req.isDemand()) {
            if (e.wasPrefetchOnly && !e.demanded) {
                ++stat.pfLate;
                (req.type == AccessType::Load ? stat.loadMissLate
                                              : stat.rfoMissLate)++;
                GAZE_OBS_HOOK(
                    if (e.downstream.pfScheme)
                        ++schemeSlot(e.downstream.pfScheme).late;);
            }
            e.demanded = true;
            // A demand upgrade pulls the fill all the way in.
            e.downstream.fillLevel =
                std::min(e.downstream.fillLevel, req.fillLevel);
        }
        appendWaiter(e, req);
        ++stat.mshrMerge;
        return true;
    }

    if (mshr.size() >= cfg.mshrs)
        return false;

    MshrEntry e;
    e.downstream = req;
    e.downstream.requester = this;
    e.downstream.issueCycle = now();
    e.demanded = req.isDemand();
    e.wasPrefetchOnly = !req.isDemand();
    e.allocCycle = now();
    appendWaiter(e, req);
    e.issuedToLower = lower->sendRequest(e.downstream);
    if (!e.issuedToLower)
        ++unissuedMshrs;
    mshr.emplace(req.paddr, std::move(e));
    return true;
}

bool
Cache::handleRead(Request &req)
{
    bool is_load = req.type == AccessType::Load;

    Block *b = lookup(req.paddr);
    if (b) {
        (is_load ? stat.loadAccess : stat.rfoAccess)++;
        (is_load ? stat.loadHit : stat.rfoHit)++;
        uint32_t set = setIndex(req.paddr);
        uint32_t way = static_cast<uint32_t>(b - &blocks[size_t(set)
                                                         * cfg.ways]);
        repl->onHit(set, way);
        if (b->prefetch) {
            ++stat.pfUseful;
            GAZE_OBS_HOOK(if (b->pfScheme) {
                SchemeStats &ss = schemeSlot(b->pfScheme);
                ++ss.useful;
                ss.fillToUseSum += now() - b->fillCycle;
                ++ss.fillToUseCnt;
            });
            b->prefetch = false;
        }
        if (req.type == AccessType::Rfo)
            b->dirty = true;
        b->vaddr = req.vaddr ? blockAlign(req.vaddr) : b->vaddr;
        notifyPrefetcherAccess(req, true);
        scheduleResponse(req, now() + cfg.latency);
        return true;
    }

    if (!missToMshr(req)) {
        // Retry next cycle; count the access only when it proceeds so
        // the prefetcher is not double-trained on stalls.
        ++stat.mshrFullStall;
        return false;
    }
    (is_load ? stat.loadAccess : stat.rfoAccess)++;
    (is_load ? stat.loadMiss : stat.rfoMiss)++;
    notifyPrefetcherAccess(req, false);
    return true;
}

bool
Cache::handleWrite(Request &req)
{
    ++stat.wbAccess;
    Block *b = lookup(req.paddr);
    if (b) {
        ++stat.wbHit;
        b->dirty = true;
        return true;
    }
    // Non-inclusive writeback miss: the line is complete, so allocate
    // directly without fetching from below.
    ++stat.wbMiss;
    fillBlock(req, /*mark_prefetch=*/false);
    return true;
}

Cache::PfOutcome
Cache::handlePrefetch(Request &req)
{
    if (req.fillLevel > cfg.level) {
        // Targeted at a lower level: pass it down untouched. The lower
        // cache adopts it as its own prefetch request.
        return lower->sendRequest(req) ? PfOutcome::Done
                                       : PfOutcome::Retry;
    }

    Block *b = lookup(req.paddr);
    if (b) {
        // Redundant prefetch. A requester-less prefetch (issued at
        // this level) is simply dropped; one that came from an upper
        // cache's MSHR must be answered or that MSHR leaks.
        ++stat.pfDroppedHit;
        if (req.requester) {
            uint32_t set = setIndex(req.paddr);
            uint32_t way = static_cast<uint32_t>(
                b - &blocks[size_t(set) * cfg.ways]);
            repl->onHit(set, way);
            scheduleResponse(req, now() + cfg.latency);
        }
        return PfOutcome::Done;
    }
    if (auto it = mshr.find(req.paddr); it != mshr.end()) {
        // Already being fetched: ride along (or drop if local).
        ++stat.pfDroppedHit;
        if (req.requester) {
            appendWaiter(it->second, req);
            ++stat.mshrMerge;
        }
        return PfOutcome::Done;
    }
    if (mshr.size() >= cfg.mshrs) {
        ++stat.pfMshrWait;
        if (req.requester)
            return PfOutcome::Retry; // dropping would leak upper MSHR
        if (cfg.level == levelL1) {
            // The L1 PQ holds mixed fill levels; a waiting L1-fill
            // head would starve L2-targeted prefetches behind it.
            // Demote it instead: fetch anyway, park one level out (a
            // later demand hits L2 instead of DRAM — most of the
            // benefit, none of the clog).
            Request demoted = req;
            demoted.fillLevel = cfg.level + 1;
            if (!lower->sendRequest(demoted))
                return PfOutcome::Retry;
            ++stat.pfDemoted;
            return PfOutcome::Done;
        }
        // L2/LLC PQs are homogeneous (everything targets this level
        // or beyond), so waiting at the head starves nothing, and the
        // fetch keeps its slot until an MSHR frees.
        return PfOutcome::Retry;
    }
    return missToMshr(req) ? PfOutcome::Done : PfOutcome::Retry;
}

void
Cache::tick()
{
    deliverResponses();
    retryUnissuedMshrs();

    uint32_t ops = 0;

    // Demand reads take priority for tag bandwidth.
    while (ops < cfg.tagPorts && !readQ.empty()) {
        Request req = readQ.front();
        if (!handleRead(req))
            break; // MSHR full: head-of-line stall
        readQ.pop_front();
        ++ops;
    }

    // One writeback per cycle keeps WQ drain realistic but cheap.
    if (!writeQ.empty()) {
        Request req = writeQ.front();
        writeQ.pop_front();
        handleWrite(req);
    }

    while (ops < cfg.tagPorts && !prefetchQ.empty()) {
        Request req = prefetchQ.front();
        if (handlePrefetch(req) == PfOutcome::Retry)
            break; // blocked: retry next cycle
        prefetchQ.pop_front();
        ++ops;
    }

    if (pf)
        pf->tick();
}

void
Cache::retryUnissuedMshrs()
{
    if (unissuedMshrs == 0)
        return;
    uint32_t budget = 2;
    for (auto &[addr, e] : mshr) {
        if (e.issuedToLower)
            continue;
        e.issuedToLower = lower->sendRequest(e.downstream);
        if (e.issuedToLower)
            --unissuedMshrs;
        if (--budget == 0)
            break;
    }
}

void
Cache::fillBlock(const Request &req, bool mark_prefetch)
{
    uint32_t set = setIndex(req.paddr);
    std::vector<bool> valid(cfg.ways);
    for (uint32_t w = 0; w < cfg.ways; ++w)
        valid[w] = blocks[size_t(set) * cfg.ways + w].valid;

    uint32_t way = repl->victim(set, valid);
    Block &b = blocks[size_t(set) * cfg.ways + way];

    Addr evicted = 0;
    if (b.valid) {
        evicted = b.paddr;
        if (b.prefetch) {
            ++stat.pfUseless;
            GAZE_OBS_HOOK(
                if (b.pfScheme) ++schemeSlot(b.pfScheme).useless;);
        }
        if (b.dirty) {
            Request wb;
            wb.type = AccessType::Writeback;
            wb.paddr = b.paddr;
            wb.cpu = req.cpu;
            wb.fillLevel = cfg.level + 1;
            wb.issueCycle = now();
            lower->sendRequest(wb);
            ++stat.writebacksSent;
        }
        if (pf)
            pf->onEvict(b.paddr, b.vaddr);
    }

    b.valid = true;
    // RFO fills dirty the block at the level the store lives (L1);
    // copies allocated further out on the response path stay clean.
    b.dirty = req.type == AccessType::Writeback ||
              (req.type == AccessType::Rfo && cfg.level == req.fillLevel);
    b.prefetch = mark_prefetch;
    b.pfScheme = mark_prefetch ? req.pfScheme : 0;
    b.fillCycle = now();
    b.paddr = req.paddr;
    b.vaddr = req.vaddr ? blockAlign(req.vaddr) : 0;
    repl->onFill(set, way, mark_prefetch);

    if (mark_prefetch) {
        ++stat.pfFilled;
        GAZE_OBS_HOOK(
            if (req.pfScheme) ++schemeSlot(req.pfScheme).filled;);
    }

    if (pf && req.type != AccessType::Writeback) {
        FillEvent f;
        f.paddr = req.paddr;
        f.vaddr = b.vaddr;
        f.pc = req.pc;
        f.prefetch = mark_prefetch;
        f.latency = now() >= req.issueCycle ? now() - req.issueCycle : 0;
        f.evictedPaddr = evicted;
        f.cycle = now();
        pf->onFill(f);
    }
}

void
Cache::recvFill(const Request &req)
{
    auto it = mshr.find(req.paddr);
    GAZE_ASSERT(it != mshr.end(), cfg.name, ": fill without MSHR for 0x",
                std::hex, req.paddr);
    MshrEntry e = std::move(it->second);
    it->second.waitersHead = it->second.waitersTail = nullptr;
    mshr.erase(it);

    // Mark the block as a prefetch only when this level is the
    // prefetch's target and no demand merged while it was in flight.
    bool pure_prefetch = e.wasPrefetchOnly && !e.demanded;
    bool mark_pf = pure_prefetch &&
                   e.downstream.fillLevel == cfg.level;

    // Fill wherever level >= fillLevel (response path allocation).
    Request fill_req = e.downstream;
    // Propagate the vaddr of the first waiter that knows it.
    for (const RequestPool::Node *w = e.waitersHead; w; w = w->next) {
        if (w->req.vaddr) {
            fill_req.vaddr = w->req.vaddr;
            break;
        }
    }
    if (cfg.level >= e.downstream.fillLevel)
        fillBlock(fill_req, mark_pf);

    if (e.demanded) {
        Cycle lat = now() - e.allocCycle;
        stat.demandMissLatencySum += lat;
        ++stat.demandMissLatencyCnt;
    }

    // Wake all waiters one cycle later (fill-to-use forwarding), then
    // recycle the chain.
    for (const RequestPool::Node *w = e.waitersHead; w; w = w->next) {
        if (w->req.requester)
            scheduleResponse(w->req, now() + 1);
    }
    pool->releaseChain(e.waitersHead);

    // This call arrives from the lower level's tick, after this
    // cache's own tick of the cycle: anything it set in motion (the
    // pending responses, a prefetcher pattern installed by onFill)
    // starts next cycle.
    sched.requestWake(now() + 1);
}

Cycle
Cache::nextWakeCycle() const
{
    // Anything queued (or retryable) makes the very next cycle
    // potentially productive — the polled engine would process it
    // then, so the event engine must too.
    if (!readQ.empty() || !writeQ.empty() || !prefetchQ.empty())
        return now() + 1;
    if (unissuedMshrs > 0)
        return now() + 1;
    if (pf && pf->busy())
        return now() + 1;
    // Quiet queues: the only self-known work is delivering already
    // scheduled responses (all strictly in the future here, since
    // tick() drained everything due).
    if (!responses.empty())
        return responses.top().ready;
    return kNeverWake;
}

bool
Prefetcher::issuePrefetch(Addr addr, uint32_t fill_level, bool virt)
{
    GAZE_ASSERT(context.cache, "prefetcher not attached");
    return context.cache->issuePrefetch(addr, fill_level, virt,
                                        context.cpu);
}

} // namespace gaze
