/**
 * @file
 * Set-associative, non-inclusive writeback cache with MSHRs, separate
 * read/write/prefetch queues, per-level prefetch fill targeting, and the
 * prefetch accounting the paper's metrics need (useful / useless / late,
 * attributed at each prefetch's target fill level).
 *
 * Timing model (ChampSim-like): a bounded number of tag lookups per
 * cycle; hits respond after the configured access latency; misses
 * allocate an MSHR and forward downwards, and the fill propagates back
 * up through every cache on the path, allocating wherever
 * level >= fillLevel.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "sim/event.hh"
#include "sim/mshr_table.hh"
#include "sim/prefetcher.hh"
#include "sim/replacement.hh"
#include "sim/request.hh"
#include "sim/request_pool.hh"

namespace gaze
{

class VirtualMemory;

/** Static configuration of one cache. */
struct CacheParams
{
    std::string name = "cache";
    uint32_t level = levelL1;
    uint32_t sets = 64;
    uint32_t ways = 8;

    /** Access (hit) latency in cycles. */
    uint32_t latency = 5;

    uint32_t mshrs = 16;
    uint32_t rqSize = 64;
    uint32_t wqSize = 64;
    uint32_t pqSize = 8;

    /** Tag lookups (across RQ/WQ/PQ) per cycle. */
    uint32_t tagPorts = 2;

    std::string replacement = "lru";

    /** Derive sets from a byte size and associativity. */
    static uint32_t
    setsFor(uint64_t bytes, uint32_t ways)
    {
        return static_cast<uint32_t>(bytes / (uint64_t(ways) * blockSize));
    }
};

/** Prefetch/demand counters for one cache. */
struct CacheStats
{
    uint64_t loadAccess = 0;
    uint64_t loadHit = 0;
    uint64_t loadMiss = 0;
    uint64_t rfoAccess = 0;
    uint64_t rfoHit = 0;
    uint64_t rfoMiss = 0;

    /**
     * Of loadMiss/rfoMiss: demands that merged into an in-flight
     * prefetch MSHR (the prefetch was late, but still hid part of the
     * miss). Distinct sub-counters, not a reclassification — the
     * plain miss counters keep their historical meaning, and
     * loadMissLate + rfoMissLate == pfLate at every level.
     */
    uint64_t loadMissLate = 0;
    uint64_t rfoMissLate = 0;
    uint64_t wbAccess = 0;
    uint64_t wbHit = 0;
    uint64_t wbMiss = 0;

    /** Prefetch requests accepted into the PQ at this level. */
    uint64_t pfIssued = 0;
    /** Prefetch requests rejected because the PQ was full. */
    uint64_t pfDroppedFull = 0;
    /** Prefetch requests whose target was already pending in the PQ. */
    uint64_t pfDroppedDup = 0;
    /** Prefetch requests dropped on a tag hit (redundant prefetches). */
    uint64_t pfDroppedHit = 0;
    /** Prefetch requests dropped for want of an MSHR (LLC only). */
    uint64_t pfDroppedMshr = 0;
    /** MSHR-full events on the prefetch path (congestion signal). */
    uint64_t pfMshrWait = 0;
    /** Prefetches demoted one level out because MSHRs were full. */
    uint64_t pfDemoted = 0;
    /** Blocks filled with the prefetch bit at this level. */
    uint64_t pfFilled = 0;
    /** Prefetched blocks demanded before eviction. */
    uint64_t pfUseful = 0;
    /** Prefetched blocks evicted untouched. */
    uint64_t pfUseless = 0;
    /** Demand accesses that merged into an in-flight prefetch MSHR. */
    uint64_t pfLate = 0;

    uint64_t mshrMerge = 0;
    uint64_t mshrFullStall = 0;
    uint64_t writebacksSent = 0;

    /** Sum of demand miss latencies (allocation -> fill), and count. */
    uint64_t demandMissLatencySum = 0;
    uint64_t demandMissLatencyCnt = 0;

    uint64_t demandAccess() const { return loadAccess + rfoAccess; }
    uint64_t demandHit() const { return loadHit + rfoHit; }
    uint64_t demandMiss() const { return loadMiss + rfoMiss; }

    double
    avgDemandMissLatency() const
    {
        return demandMissLatencyCnt
            ? double(demandMissLatencySum) / demandMissLatencyCnt : 0.0;
    }

    void reset() { *this = CacheStats{}; }
};

/**
 * Obs attribution: lifecycle counters for one prefetching scheme at
 * one cache (indexed by the System-assigned scheme id). Pure
 * additions next to the aggregate CacheStats counters; compiled-out
 * hooks when GAZE_OBS is off (the vectors stay empty).
 */
struct SchemeStats
{
    uint64_t issued = 0;   ///< accepted into this cache's PQ
    uint64_t filled = 0;   ///< blocks filled with the prefetch bit
    uint64_t useful = 0;   ///< demanded before eviction
    uint64_t late = 0;     ///< demand merged while still in flight
    uint64_t useless = 0;  ///< evicted untouched
    /** Fill-to-first-demand-hit latency (timeliness), sum and count. */
    uint64_t fillToUseSum = 0;
    uint64_t fillToUseCnt = 0;

    void
    add(const SchemeStats &o)
    {
        issued += o.issued;
        filled += o.filled;
        useful += o.useful;
        late += o.late;
        useless += o.useless;
        fillToUseSum += o.fillToUseSum;
        fillToUseCnt += o.fillToUseCnt;
    }
};

/**
 * One cache level. Requests enter via sendRequest (queue-routed by
 * type); completions from the lower level arrive via recvFill and
 * propagate upwards to each waiting requester.
 */
class Cache final : public MemoryDevice, public FillReceiver
{
  public:
    /**
     * @param pool shared Request pool for MSHR waiter nodes; when
     *        null the cache owns a private one (standalone caches in
     *        unit tests).
     */
    Cache(const CacheParams &params, MemoryDevice *lower,
          const Cycle *clock, RequestPool *pool = nullptr);

    ~Cache() override;

    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /** Attach a prefetcher to this level (may be null). */
    void setPrefetcher(Prefetcher *pf, VirtualMemory *vmem,
                       const Dram *dram, uint32_t cpu);

    // MemoryDevice
    bool sendRequest(const Request &req) override;
    void tick() override;

    // FillReceiver
    void recvFill(const Request &req) override;

    /**
     * Prefetcher-facing issue hook (called via
     * Prefetcher::issuePrefetch). Translates virtual targets, aligns,
     * and enqueues into the PQ.
     */
    bool issuePrefetch(Addr addr, uint32_t fill_level, bool virt,
                       uint32_t cpu);

    /** True when the block containing @p paddr is resident. */
    bool present(Addr paddr) const;

    /** Current cycle (shared system clock). */
    Cycle now() const { return *clock; }

    /**
     * Join an event-driven System: subsequent queue/response activity
     * self-schedules ticks instead of relying on per-cycle polling.
     * @p priority is this cache's position in the polled tickAll()
     * order, which same-cycle dispatch reproduces.
     */
    void
    bindScheduler(EventQueue *eq, int priority)
    {
        sched.bind(eq, this, priority);
    }

    /** Event mode, run start: guarantee a tick at @p when. */
    void wakeAt(Cycle when) { sched.bootstrapWake(when); }

    /**
     * Earliest future cycle at which tick() could have any effect:
     * next cycle while any queue, unissued MSHR, or prefetcher work
     * is pending; the next response-ready cycle otherwise; kNeverWake
     * when only a lower-level fill can create work.
     */
    Cycle nextWakeCycle() const;

    const CacheParams &params() const { return cfg; }
    const CacheStats &stats() const { return stat; }

    /** Per-scheme lifecycle counters, indexed by scheme id (0 unused). */
    const std::vector<SchemeStats> &schemeStats() const
    {
        return schemeStat;
    }

    void
    resetStats()
    {
        stat.reset();
        for (auto &s : schemeStat)
            s = SchemeStats{};
    }

    const std::string &name() const { return cfg.name; }
    uint32_t level() const { return cfg.level; }

    /** Number of in-flight MSHR entries (tests/backpressure checks). */
    size_t mshrOccupancy() const { return mshr.size(); }

    size_t rqOccupancy() const { return readQ.size(); }
    size_t pqOccupancy() const { return prefetchQ.size(); }

    Prefetcher *prefetcher() const { return pf; }

  private:
    /**
     * Block state lives in two split arrays: a flat tag word per block
     * (block-aligned paddr with valid/dirty/prefetch packed into the
     * low, always-zero address bits) and a cold metadata record. A set
     * scan touches only the tag array — ways x 8B, one cache line for
     * the default 8-way geometry — instead of 40B-wide block structs.
     */
    static constexpr Addr kBlkValid = 1;
    static constexpr Addr kBlkDirty = 2;
    static constexpr Addr kBlkPrefetch = 4;
    static constexpr Addr kBlkFlags = kBlkValid | kBlkDirty | kBlkPrefetch;
    static_assert(blockSize >= 8, "tag words need 3 low flag bits");

    /** "No such block" result from lookupSlot(). */
    static constexpr size_t kNoSlot = ~size_t(0);

    /** Cold per-block metadata, touched on hits and fills only. */
    struct BlockMeta
    {
        Addr vaddr = 0;         ///< block-aligned vaddr of last toucher
        Cycle fillCycle = 0;    ///< fill time, for fill-to-use latency
        uint16_t pfScheme = 0;  ///< issuing scheme id while prefetch set
    };

    struct MshrEntry
    {
        Request downstream;          ///< request sent to the lower level
        /** Waiting requesters: a pooled, insertion-ordered list. */
        RequestPool::Node *waitersHead = nullptr;
        RequestPool::Node *waitersTail = nullptr;
        bool demanded = false;       ///< a demand access depends on it
        bool wasPrefetchOnly = false;
        bool issuedToLower = false;
        Cycle allocCycle = 0;
    };

    struct PendingResponse
    {
        Cycle ready;
        uint64_t seq;
        Request req;
        bool operator>(const PendingResponse &o) const
        {
            return ready != o.ready ? ready > o.ready : seq > o.seq;
        }
    };

    uint32_t setIndex(Addr paddr) const;

    /** Flat block index of the resident block, or kNoSlot. */
    size_t lookupSlot(Addr paddr) const;

    /** Fill a block; evicts (with writeback) as needed. */
    void fillBlock(const Request &req, bool mark_prefetch);

    void scheduleResponse(const Request &req, Cycle when);
    void deliverResponses();

    /** Outcome of processing the PQ head. */
    enum class PfOutcome
    {
        Done, ///< consumed (issued, merged, dropped, or forwarded)
        Retry ///< blocked at the head; retry next cycle
    };

    bool handleRead(Request &req);
    bool handleWrite(Request &req);
    PfOutcome handlePrefetch(Request &req);

    /** Allocate or merge into an MSHR; false => caller must stall. */
    bool missToMshr(Request &req);

    void retryUnissuedMshrs();

    void notifyPrefetcherAccess(const Request &req, bool hit);

    /** Append @p req to @p e's pooled waiter list. */
    void appendWaiter(MshrEntry &e, const Request &req);

    CacheParams cfg;
    MemoryDevice *lower;
    const Cycle *clock;

    TickEvent<Cache> sched;
    RequestPool *pool;
    std::unique_ptr<RequestPool> ownedPool;

    /** MSHRs whose downstream send is still pending (retry set). */
    uint32_t unissuedMshrs = 0;

    std::vector<Addr> tagArr;
    std::vector<BlockMeta> meta;
    std::unique_ptr<ReplacementPolicy> repl;

    RingBuffer<Request> readQ;
    RingBuffer<Request> writeQ;
    RingBuffer<Request> prefetchQ;

    /** Flat open-addressed MSHR map; capacity = cfg.mshrs. */
    MshrTable<MshrEntry> mshr;

    std::priority_queue<PendingResponse, std::vector<PendingResponse>,
                        std::greater<>> responses;
    uint64_t responseSeq = 0;

    /** Counter slot for @p scheme_id, growing the table on demand. */
    SchemeStats &
    schemeSlot(uint16_t scheme_id)
    {
        if (schemeStat.size() <= scheme_id)
            schemeStat.resize(size_t(scheme_id) + 1);
        return schemeStat[scheme_id];
    }

    Prefetcher *pf = nullptr;
    VirtualMemory *vmem = nullptr;

    CacheStats stat;
    std::vector<SchemeStats> schemeStat;
};

} // namespace gaze
