#include "sim/replacement.hh"

#include "common/log.hh"

namespace gaze
{

LruPolicy::LruPolicy(uint32_t sets, uint32_t ways)
    : numWays(ways), stamp(size_t(sets) * ways, 0)
{
}

void
LruPolicy::onHit(uint32_t set, uint32_t way)
{
    stamp[size_t(set) * numWays + way] = ++tick;
}

void
LruPolicy::onFill(uint32_t set, uint32_t way, bool /*prefetch*/)
{
    stamp[size_t(set) * numWays + way] = ++tick;
}

uint32_t
LruPolicy::victim(uint32_t set, uint64_t valid_mask)
{
    uint32_t best = 0;
    uint64_t best_stamp = ~0ULL;
    for (uint32_t w = 0; w < numWays; ++w) {
        if (!((valid_mask >> w) & 1))
            return w;
        uint64_t s = stamp[size_t(set) * numWays + w];
        if (s < best_stamp) {
            best_stamp = s;
            best = w;
        }
    }
    return best;
}

SrripPolicy::SrripPolicy(uint32_t sets, uint32_t ways)
    : numWays(ways), rrpv(size_t(sets) * ways, maxRrpv)
{
}

void
SrripPolicy::onHit(uint32_t set, uint32_t way)
{
    rrpv[size_t(set) * numWays + way] = 0;
}

void
SrripPolicy::onFill(uint32_t set, uint32_t way, bool prefetch)
{
    // Demand fills: long re-reference (maxRrpv-1). Prefetch fills:
    // distant (maxRrpv) so useless prefetches leave quickly.
    rrpv[size_t(set) * numWays + way] = prefetch ? maxRrpv : maxRrpv - 1;
}

uint32_t
SrripPolicy::victim(uint32_t set, uint64_t valid_mask)
{
    for (uint32_t w = 0; w < numWays; ++w)
        if (!((valid_mask >> w) & 1))
            return w;
    while (true) {
        for (uint32_t w = 0; w < numWays; ++w)
            if (rrpv[size_t(set) * numWays + w] == maxRrpv)
                return w;
        for (uint32_t w = 0; w < numWays; ++w)
            ++rrpv[size_t(set) * numWays + w];
    }
}

RandomPolicy::RandomPolicy(uint32_t /*sets*/, uint32_t ways, uint64_t seed)
    : numWays(ways), rng(seed)
{
}

uint32_t
RandomPolicy::victim(uint32_t /*set*/, uint64_t valid_mask)
{
    for (uint32_t w = 0; w < numWays; ++w)
        if (!((valid_mask >> w) & 1))
            return w;
    return static_cast<uint32_t>(rng.below(numWays));
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, uint32_t sets, uint32_t ways)
{
    GAZE_ASSERT(ways >= 1 && ways <= 64,
                "cache needs at least one way (and victim masks cap "
                "associativity at 64), got ", ways);
    if (name == "lru")
        return std::make_unique<LruPolicy>(sets, ways);
    if (name == "srrip")
        return std::make_unique<SrripPolicy>(sets, ways);
    if (name == "random")
        return std::make_unique<RandomPolicy>(sets, ways);
    GAZE_FATAL("unknown replacement policy '", name, "' (known: ",
               knownReplacementPolicyList(), ")");
}

const std::vector<std::string> &
knownReplacementPolicies()
{
    static const std::vector<std::string> names = {"lru", "srrip",
                                                   "random"};
    return names;
}

bool
isKnownReplacementPolicy(const std::string &name)
{
    for (const auto &n : knownReplacementPolicies())
        if (n == name)
            return true;
    return false;
}

std::string
knownReplacementPolicyList()
{
    std::string out;
    for (const auto &n : knownReplacementPolicies()) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace gaze
