#include "sim/vmem.hh"

#include "common/log.hh"

namespace gaze
{

VirtualMemory::VirtualMemory(uint32_t physical_bits)
{
    GAZE_ASSERT(physical_bits > pageShift && physical_bits <= 48,
                "bad physical address width");
    ppageMask = (1ULL << (physical_bits - pageShift)) - 1;
}

Addr
VirtualMemory::pagePPN(Addr vpage, uint32_t cpu) const
{
    // Distinct cores get disjoint streams: mix the core id into the
    // hash so homogeneous multi-core mixes do not alias in the LLC.
    uint64_t h = mix64(vpage * 0x9e3779b97f4a7c15ULL + cpu + 1);
    return h & ppageMask;
}

Addr
VirtualMemory::translate(Addr vaddr, uint32_t cpu) const
{
    Addr vpage = pageNumber(vaddr);
    Addr offset = vaddr & (pageSize - 1);
    return (pagePPN(vpage, cpu) << pageShift) | offset;
}

} // namespace gaze
