/**
 * @file
 * The prefetcher interface every scheme in this repo implements (Gaze and
 * the eight baselines). It mirrors ChampSim's module hooks: operate on
 * demand accesses, observe fills and evictions, tick once per cycle, and
 * issue prefetches through the attached cache.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/request.hh"

namespace gaze
{

class Cache;
class VirtualMemory;
class Dram;

/** A demand access observed by a prefetcher at its attach point. */
struct DemandAccess
{
    /** Virtual address (valid at L1D attach; 0 below L1). */
    Addr vaddr = 0;

    /** Physical address. */
    Addr paddr = 0;

    /** PC of the load/store. */
    PC pc = 0;

    /** Did the access hit in the attached cache? */
    bool hit = false;

    /** Load or Rfo. */
    AccessType type = AccessType::Load;

    /** Current cycle. */
    Cycle cycle = 0;

    /** Originating core. */
    uint32_t cpu = 0;
};

/** A fill observed by a prefetcher at its attach point. */
struct FillEvent
{
    Addr paddr = 0;
    Addr vaddr = 0;

    /** PC of the demand that caused the fill (0 for pure prefetches). */
    PC pc = 0;

    /** Block was filled with the prefetch bit set at this level. */
    bool prefetch = false;

    /** Cycles between MSHR allocation and fill (Berti's fetch latency). */
    Cycle latency = 0;

    /** Block address evicted to make room (0 if the way was free). */
    Addr evictedPaddr = 0;

    Cycle cycle = 0;
};

/**
 * Environment handed to a prefetcher when it is attached to a cache.
 * The bandwidth monitor is the DRAM controller (DSPatch consults it);
 * it may be null in unit tests.
 */
struct PrefetcherContext
{
    Cache *cache = nullptr;
    VirtualMemory *vmem = nullptr;
    const Dram *dram = nullptr;
    uint32_t cpu = 0;
    uint32_t level = levelL1;
};

/** Base class for all prefetching schemes. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Scheme name as used by the factory and result tables. */
    virtual std::string name() const = 0;

    /** Called once when the scheme is bound to a cache. */
    virtual void
    attach(const PrefetcherContext &ctx)
    {
        context = ctx;
    }

    /** A demand load/RFO was looked up in the attached cache. */
    virtual void onAccess(const DemandAccess &access) = 0;

    /** A block was filled into the attached cache. */
    virtual void onFill(const FillEvent &fill) { (void)fill; }

    /**
     * A valid block was evicted from the attached cache. Spatial
     * prefetchers use this to end a region's accumulation generation.
     */
    virtual void onEvict(Addr paddr, Addr vaddr)
    {
        (void)paddr;
        (void)vaddr;
    }

    /** Advance one cycle (prefetch buffers drain here). */
    virtual void tick() {}

    /**
     * True while tick() has pending work (a prefetch buffer still
     * draining). The event-driven engine keeps the attached cache
     * ticking every cycle this returns true; schemes whose tick() is
     * a no-op keep the default and never force a wake-up.
     */
    virtual bool busy() const { return false; }

    /** Metadata storage in bits, for the Table I / Table IV benches. */
    virtual uint64_t storageBits() const { return 0; }

    /**
     * Obs attribution id, assigned deterministically by System when
     * the scheme is attached (keyed by (name, attach level), so every
     * core's copy of one scheme shares an id). 0 = unassigned
     * (standalone prefetchers in unit tests).
     */
    uint16_t schemeId() const { return obsSchemeId; }
    void setSchemeId(uint16_t id) { obsSchemeId = id; }

  protected:
    /**
     * Issue a prefetch for the block containing @p addr.
     *
     * Virtual so tests can intercept the issue stream without a full
     * cache hierarchy behind the prefetcher.
     *
     * @param addr      target address (virtual if @p virt, else physical)
     * @param fill_level innermost level allowed to keep the block
     * @param virt      interpret @p addr as a virtual address and
     *                  translate (only valid at an L1D attach point)
     * @return true when the request was accepted into the prefetch queue
     */
    virtual bool issuePrefetch(Addr addr, uint32_t fill_level, bool virt);

    PrefetcherContext context;

  private:
    uint16_t obsSchemeId = 0;
};

} // namespace gaze
