/**
 * @file
 * Simplified out-of-order core: a ROB-windowed trace executor with
 * bounded load/store queues. Non-memory instructions retire at full
 * width; loads block retirement at the ROB head until their data
 * returns, so memory-level parallelism is limited by the ROB window,
 * the LQ, and the L1D's MSHRs — the properties a prefetching study
 * needs from the core (Table II: 4-wide, 352-entry ROB, 128/72 LQ/SQ).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "sim/event.hh"
#include "sim/request.hh"
#include "sim/trace.hh"

namespace gaze
{

class VirtualMemory;

/** Core microarchitecture parameters (Table II defaults). */
struct CoreParams
{
    uint32_t fetchWidth = 4;
    uint32_t retireWidth = 4;
    uint32_t robSize = 352;
    uint32_t lqSize = 128;
    uint32_t sqSize = 72;

    /** Loads the core can present to the L1D per cycle. */
    uint32_t loadPorts = 2;
};

/** Retired-instruction / cycle counters. */
struct CoreStats
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t traceReplays = 0;
    uint64_t robFullCycles = 0;
    uint64_t frontendStallCycles = 0;

    void reset() { *this = CoreStats{}; }
};

/** One simulated hardware thread executing a TraceSource. */
class Core final : public FillReceiver
{
  public:
    Core(const CoreParams &params, uint32_t cpu_id,
         MemoryDevice *l1d, VirtualMemory *vmem, const Cycle *clock);

    /** Bind the instruction trace (required before ticking). */
    void setTrace(TraceSource *trace);

    /** Advance one cycle: retire, issue, dispatch. */
    void tick();

    // FillReceiver: load/store completions from the L1D.
    void recvFill(const Request &req) override;

    /** Total retired instructions since construction. */
    uint64_t retired() const { return retiredCount; }

    /** Join an event-driven System (priority = tickAll() position). */
    void
    bindScheduler(EventQueue *eq, int priority)
    {
        sched.bind(eq, this, priority);
    }

    /** Event mode, run start: guarantee a tick at @p when. */
    void wakeAt(Cycle when) { sched.bootstrapWake(when); }

    /**
     * Earliest future cycle a tick could retire, issue, or dispatch
     * anything; kNeverWake when only a fill can unblock the pipeline
     * (recvFill wakes the core then).
     */
    Cycle nextWakeCycle() const;

    /**
     * Counters, settled: stall cycles accrue lazily across gate- or
     * event-skipped stretches (see catchUpStallCounters), so reading
     * through here first accounts everything up to the previous
     * cycle — exactly what the ungated polled engine would show. The
     * settle arithmetic is a pure function of component state, so it
     * cannot perturb engine bit-identity.
     */
    const CoreStats &
    stats() const
    {
        auto *self = const_cast<Core *>(this);
        self->catchUpStallCounters();
        if (now() > 0)
            self->lastTickCycle = std::max(lastTickCycle, now() - 1);
        return stat;
    }

    /**
     * Zero the counters. The skipped-cycle catch-up baseline resets
     * with them so stall cycles skipped before the reset are not
     * re-attributed after it.
     */
    void
    resetStats()
    {
        stat.reset();
        lastTickCycle = now() > 0 ? now() - 1 : 0;
    }

    uint32_t cpuId() const { return cpu; }

    /** Outstanding-load count (tests). */
    uint32_t outstandingLoads() const { return lqOccupancy; }

  private:
    struct RobEntry
    {
        uint64_t id;
        TraceOp op;
        Addr vaddr;
        PC pc;
        bool issued = false;
        bool done = false;
    };

    static constexpr uint64_t storeTokenBit = 1ULL << 63;

    void retire();
    void issueLoads();
    void dispatch();

    /**
     * Account the stall counters for cycles the event engine skipped:
     * the polled engine increments robFullCycles/frontendStallCycles
     * every idle cycle, so a sleeping core adds the arithmetic
     * equivalent on wake-up. The core state is provably unchanged
     * across the skipped window (it slept because no tick could act,
     * and any fill wakes it for the following cycle), which makes the
     * catch-up exact, not an estimate.
     */
    void catchUpStallCounters();

    Cycle now() const { return *clock; }

    CoreParams cfg;
    uint32_t cpu;
    MemoryDevice *l1d;
    VirtualMemory *vmem;
    const Cycle *clock;
    TraceSource *trace = nullptr;

    std::deque<RobEntry> rob;
    std::deque<size_t> pendingLoadOffsets; ///< ROB ids awaiting issue
    uint64_t nextInstrId = 0;

    uint32_t lqOccupancy = 0;
    uint32_t sqOccupancy = 0;
    Cycle frontendStallUntil = 0;

    TickEvent<Core> sched;
    Cycle lastTickCycle = 0;      ///< catch-up baseline
    bool issueBlockedOnL1d = false; ///< l1d rejected a send this tick

    uint64_t retiredCount = 0;
    CoreStats stat;
};

} // namespace gaze
