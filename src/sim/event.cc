#include "sim/event.hh"

#include <algorithm>
#include <cstddef>

namespace gaze
{

EventQueue::EventQueue(uint32_t wheel_size)
    : wheelSize(wheel_size), wheel(wheel_size),
      occupied((size_t(wheel_size) + 63) / 64, 0)
{
    GAZE_ASSERT(isPowerOfTwo(wheel_size),
                "timing wheel size must be a power of two, got ",
                wheel_size);
}

void
EventQueue::setBit(size_t bucket)
{
    occupied[bucket >> 6] |= 1ULL << (bucket & 63);
}

void
EventQueue::clearBit(size_t bucket)
{
    occupied[bucket >> 6] &= ~(1ULL << (bucket & 63));
}

void
EventQueue::insert(const Entry &e)
{
    if (e.when < wheelBase + wheelSize) {
        size_t b = bucketOf(e.when);
        wheel[b].push_back(e);
        setBit(b);
    } else {
        overflow.push(e);
        ++stat.heapSpills;
    }
}

void
EventQueue::schedule(Event *ev, Cycle when)
{
    if (isSuspended)
        return;
    GAZE_ASSERT(ev != nullptr, "cannot schedule a null event");
    GAZE_ASSERT(!ev->isScheduled, "event is already scheduled");
    Cycle floor = inDispatch ? curCycle : wheelBase;
    GAZE_ASSERT(when >= floor, "cannot schedule into the past (",
                when, " < ", floor, ")");
    // Scheduling for the cycle being dispatched is only meaningful for
    // an event that has not run yet this cycle — re-running one would
    // tick a component twice in one cycle.
    GAZE_ASSERT(!(inDispatch && when == curCycle
                  && ev->lastRun == curCycle),
                "same-cycle reschedule of an already-dispatched event");

    ev->isScheduled = true;
    ev->whenCycle = when;
    ev->token = nextToken++;
    ++numScheduled;
    ++stat.scheduled;
    insert(Entry{when, ev->priority(), ev->token, ev});
}

void
EventQueue::scheduleEarlier(Event *ev, Cycle when)
{
    if (isSuspended)
        return;
    if (ev->isScheduled) {
        if (ev->whenCycle <= when)
            return;
        // Supersede: the old entry's token no longer matches and is
        // dropped lazily when it surfaces.
        ev->isScheduled = false;
        --numScheduled;
    }
    schedule(ev, when);
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->isScheduled)
        return;
    ev->isScheduled = false;
    --numScheduled;
}

Cycle
EventQueue::nextEventCycle() const
{
    Cycle best = kNoEvent;

    size_t baseBucket = bucketOf(wheelBase);

    // Dense fast path: an entry scheduled for the wheel base itself
    // (every component ticking every cycle) is the earliest anything
    // can be — only wheelBase maps to its bucket within the horizon,
    // and the overflow heap holds nothing before the horizon's end.
    if (occupied[baseBucket >> 6] & (1ULL << (baseBucket & 63)))
        return wheelBase;

    // Scan the occupancy bitmap in circular cycle order starting at
    // the wheel base. Every flagged bucket maps to exactly one cycle
    // in [wheelBase, wheelBase + wheelSize).
    size_t words = occupied.size();
    for (size_t wi = 0; wi <= words && best == kNoEvent; ++wi) {
        size_t word = ((baseBucket >> 6) + wi) % words;
        uint64_t bits = occupied[word];
        if (wi == 0) {
            // Mask off buckets before the base within the first word.
            bits &= ~0ULL << (baseBucket & 63);
        } else if (wi == words) {
            // Wrapped back to the first word: only the masked-off part.
            word = baseBucket >> 6;
            bits = occupied[word] & ~(~0ULL << (baseBucket & 63));
        }
        while (bits) {
            size_t bit = static_cast<size_t>(__builtin_ctzll(bits));
            size_t bucket = (word << 6) | bit;
            if (bucket < wheelSize) {
                // bucket -> cycle within the current horizon.
                Cycle c = wheelBase
                          + ((bucket - baseBucket) & (wheelSize - 1));
                best = c;
                break;
            }
            bits &= bits - 1; // bucket beyond the wheel (padding bits)
        }
    }

    if (!overflow.empty() && overflow.top().when < best)
        best = overflow.top().when;
    return best;
}

void
EventQueue::refillFromHeap()
{
    while (!overflow.empty()
           && overflow.top().when < wheelBase + wheelSize) {
        Entry e = overflow.top();
        overflow.pop();
        if (!live(e)) {
            ++stat.staleDropped;
            continue;
        }
        size_t b = bucketOf(e.when);
        wheel[b].push_back(e);
        setBit(b);
    }
}

size_t
EventQueue::dispatchCycle(Cycle cycle)
{
    GAZE_ASSERT(!inDispatch, "dispatchCycle is not reentrant");
    GAZE_ASSERT(cycle >= wheelBase, "dispatching a past cycle");

    inDispatch = true;
    curCycle = cycle;

    if (cycle >= wheelBase + wheelSize) {
        // The target lies beyond the horizon, so (cycle being the
        // minimum) every wheel bucket is empty or stale; jump the
        // wheel there and pull the heap in behind it.
        for (auto &bucket : wheel) {
            for ([[maybe_unused]] const Entry &e : bucket)
                GAZE_ASSERT(!live(e), "live event left behind a "
                            "beyond-horizon jump");
            bucket.clear();
        }
        std::fill(occupied.begin(), occupied.end(), 0);
        wheelBase = cycle;
        refillFromHeap();
    }

    size_t b = bucketOf(cycle);
    auto &bucket = wheel[b];
    size_t dispatched = 0;

    // Batch dispatch: drain the bucket into a scratch list sorted by
    // (priority, schedule token) once and run it straight through.
    // The dense-mode common case — every component scheduled, nothing
    // woken mid-cycle — then costs one small sort instead of a
    // quadratic rescan per pop. Events processed here may still
    // append same-cycle entries (a core waking a sleeping cache);
    // the re-fold below merges them into the unrun tail, preserving
    // exact (priority, token) pop-min order.
    auto entryBefore = [](const Entry &a, const Entry &b_) {
        return a.prio != b_.prio ? a.prio < b_.prio
                                 : a.token < b_.token;
    };
    batch.clear();
    size_t next = 0;
    while (true) {
        if (!bucket.empty()) {
            for (const Entry &e : bucket) {
                GAZE_ASSERT(e.when == cycle,
                            "foreign-cycle entry in wheel bucket");
                batch.push_back(e);
            }
            bucket.clear();
            std::sort(batch.begin() + std::ptrdiff_t(next),
                      batch.end(), entryBefore);
        }
        if (next >= batch.size())
            break;
        // Copy, not a reference: later iterations re-fold into (and
        // may reallocate) `batch`.
        const Entry e = batch[next++];
        if (!live(e)) {
            ++stat.staleDropped;
            continue;
        }
        Event *ev = e.ev;
        ev->isScheduled = false;
        ev->lastRun = cycle;
        --numScheduled;
        ++stat.dispatched;
        ++dispatched;
        ev->process();
    }

    clearBit(b);
    wheelBase = cycle + 1;
    refillFromHeap();
    inDispatch = false;
    return dispatched;
}

} // namespace gaze
