#include "sim/threaded.hh"

#include "common/log.hh"

namespace gaze
{

namespace
{

/** Spin iterations before a waiter starts yielding its timeslice. */
constexpr int kSpinBeforeYield = 1 << 14;

} // namespace

SliceTeam::SliceTeam(uint32_t threads)
    : memberCount(threads), errors(threads)
{
    GAZE_ASSERT(threads >= 1, "a slice team needs at least one member");
    // Pure spinning assumes every member owns a hardware thread. When
    // the team is oversubscribed (CI containers, TSan runs), a waiter
    // spinning only steals time from the thread it is waiting FOR —
    // yield immediately instead. hardware_concurrency() may report 0
    // ("unknown"); treat that as oversubscribed, the safe direction.
    uint32_t hw = std::thread::hardware_concurrency();
    spinLimit = (hw >= threads) ? kSpinBeforeYield : 0;
    workers.reserve(threads - 1);
    for (uint32_t m = 1; m < threads; ++m)
        workers.emplace_back([this, m] { workerMain(m); });
}

SliceTeam::~SliceTeam()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        phase.store(Stopping, std::memory_order_release);
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
SliceTeam::beginRun(std::function<void(uint32_t)> fn)
{
    GAZE_ASSERT(phase.load(std::memory_order_relaxed) == Parked,
                "beginRun on a team that is already running");
    sliceFn = std::move(fn);
    {
        std::lock_guard<std::mutex> lk(mu);
        // Release-publish sliceFn/sliceCount to workers waking on the
        // condition variable *and* to any straggler still spinning from
        // the previous run (it acquire-loads phase each iteration).
        phase.store(Active, std::memory_order_release);
    }
    cv.notify_all();
}

void
SliceTeam::endRun()
{
    GAZE_ASSERT(phase.load(std::memory_order_relaxed) == Active,
                "endRun without a matching beginRun");
    // No cycle is in flight (runCycle joined), so no go-token bump is
    // pending: workers are spinning on (goToken, phase) and will see
    // this store, park on the condition variable, and be re-armed by
    // the predicate check of the next beginRun even if they race it.
    {
        std::lock_guard<std::mutex> lk(mu);
        phase.store(Parked, std::memory_order_release);
    }
    sliceFn = nullptr;
    sliceCount = 0;
}

void
SliceTeam::runCycle(uint32_t slices)
{
    GAZE_ASSERT(phase.load(std::memory_order_relaxed) == Active,
                "runCycle outside beginRun/endRun");
    // The previous join saw every worker's arrival increment, so no
    // late increment can race this reset — and no worker can still be
    // reading the previous sliceCount, making the plain store safe.
    sliceCount = slices;
    arrived.store(0, std::memory_order_relaxed);
    goToken.fetch_add(1, std::memory_order_release);

    runSlices(0); // the coordinator is member 0

    // Join: the acquire pairs with each worker's release increment,
    // making all slice writes visible once the count completes. Spin
    // first — cycles are microseconds apart — but yield eventually so
    // oversubscribed hosts (TSan CI) still make progress.
    uint32_t needed = memberCount - 1;
    int spins = 0;
    while (arrived.load(std::memory_order_acquire) < needed) {
        if (++spins > spinLimit)
            std::this_thread::yield();
    }

    if (hasError.load(std::memory_order_acquire)) {
        for (uint32_t m = 0; m < memberCount; ++m) {
            if (errors[m]) {
                std::exception_ptr e = errors[m];
                for (auto &slot : errors)
                    slot = nullptr;
                hasError.store(false, std::memory_order_relaxed);
                std::rethrow_exception(e);
            }
        }
    }
}

void
SliceTeam::runSlices(uint32_t member)
{
    try {
        for (uint32_t s = member; s < sliceCount; s += memberCount)
            sliceFn(s);
    } catch (...) {
        errors[member] = std::current_exception();
        hasError.store(true, std::memory_order_release);
    }
}

void
SliceTeam::workerMain(uint32_t member)
{
    // The go token is bumped only by runCycle(), exactly once per
    // cycle, so "token != seenToken" unambiguously means "run one
    // cycle" and every bump is consumed exactly once. Park/stop are
    // signalled through `phase` alone, which the spin loop polls.
    // seenToken starts at the token's initial value, NOT a load of
    // its current one: a worker scheduled late could otherwise miss a
    // bump issued before it got here and deadlock the first join.
    uint64_t seenToken = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [this] {
                return phase.load(std::memory_order_relaxed) != Parked;
            });
        }
        while (true) {
            uint64_t t;
            uint32_t p;
            int spins = 0;
            for (;;) {
                t = goToken.load(std::memory_order_acquire);
                p = phase.load(std::memory_order_acquire);
                if (t != seenToken || p != Active)
                    break;
                if (++spins > spinLimit)
                    std::this_thread::yield();
            }
            if (t != seenToken) {
                // A cycle is pending; run it even if the phase just
                // changed (runCycle() is still waiting on the join).
                seenToken = t;
                runSlices(member);
                arrived.fetch_add(1, std::memory_order_release);
                continue;
            }
            if (p == Stopping)
                return;
            break; // Parked: back to the condition variable.
        }
    }
}

} // namespace gaze
