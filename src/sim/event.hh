/**
 * @file
 * The event-driven simulation engine: a timing-wheel scheduler with an
 * overflow heap, the per-component tick events that drive Core, Cache
 * and Dram, and the free-list Request pool.
 *
 * The engine exists to make idle cycles free. The polled engine ticks
 * every component every cycle whether or not anything is in flight; an
 * event-driven System instead schedules each component's next useful
 * tick and advances the clock directly to the earliest scheduled
 * cycle, skipping quiescent stretches in O(1). A component is ticked
 * on exactly the cycles where its polled tick() could have had any
 * effect (each component's nextWakeCycle() is conservative, and
 * external inputs — sendRequest/recvFill — wake the target), and
 * same-cycle events dispatch in a fixed (priority, schedule-order)
 * order that reproduces the polled tickAll() sequence. The two engines
 * are therefore metrics-bit-identical; test_engine asserts it.
 */

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gaze
{

/** "No wake needed": a component with nothing self-scheduled. */
inline constexpr Cycle kNeverWake = ~Cycle(0);

class EventQueue;

/**
 * One schedulable unit of work. Events are owned by their components
 * (gem5-style intrusive scheduling); the queue never allocates or
 * frees them. An event may be scheduled for at most one cycle at a
 * time; rescheduling to an earlier cycle supersedes the old entry
 * (which the queue drops lazily when it surfaces).
 */
class Event
{
  public:
    explicit Event(int priority_ = 0) : prio(priority_) {}
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Run the event. Called with the queue's cycle == when(). */
    virtual void process() = 0;

    bool scheduled() const { return isScheduled; }
    Cycle when() const { return whenCycle; }
    int priority() const { return prio; }
    void setPriority(int p) { prio = p; }

  private:
    friend class EventQueue;

    int prio;
    Cycle whenCycle = 0;
    Cycle lastRun = kNeverWake; ///< cycle of the latest dispatch
    uint64_t token = 0;         ///< matches the live queue entry
    bool isScheduled = false;
};

/** Aggregate scheduler counters (bench_engine / --engine-stats). */
struct EventQueueStats
{
    uint64_t scheduled = 0;  ///< schedule() calls that enqueued
    uint64_t dispatched = 0; ///< events actually processed
    uint64_t staleDropped = 0; ///< superseded entries dropped lazily
    uint64_t heapSpills = 0;   ///< entries beyond the wheel horizon
};

/**
 * The scheduler: a timing wheel of `wheelSize` one-cycle buckets for
 * the near future plus a min-heap for events beyond the horizon.
 *
 * Ordering guarantee: within one cycle, events dispatch by ascending
 * (priority, schedule order); across cycles, strictly by cycle. This
 * is what makes an event-driven System deterministic and bit-identical
 * to the polled engine (components get tickAll()'s fixed order via
 * their priorities).
 *
 * Events scheduled *for the cycle currently dispatching* (by an
 * earlier event of that cycle) are dispatched within the same cycle,
 * in order — this is how a core's sendRequest at cycle T wakes a
 * sleeping L1D in time for its cycle-T tick, exactly as the polled
 * engine's fixed tick order would have.
 */
class EventQueue
{
  public:
    static constexpr Cycle kNoEvent = kNeverWake;

    /** @param wheel_size span of the timing wheel (power of two). */
    explicit EventQueue(uint32_t wheel_size = 1024);

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev for @p when. The event must not already be
     * scheduled. @p when must not lie in the past (before the cycle
     * being dispatched / the wheel base).
     */
    void schedule(Event *ev, Cycle when);

    /**
     * Ensure @p ev runs no later than @p when: schedules it, or pulls
     * an already-scheduled event earlier. No-op when it is already
     * scheduled at or before @p when.
     */
    void scheduleEarlier(Event *ev, Cycle when);

    /** Drop a scheduled event (lazy: the queue entry expires). */
    void deschedule(Event *ev);

    /**
     * Earliest cycle with a (possibly superseded) entry; kNoEvent when
     * nothing is scheduled. May name a cycle holding only stale
     * entries — dispatching it is then a no-op, never an error.
     */
    Cycle nextEventCycle() const;

    /**
     * Dispatch every live event scheduled for @p cycle in (priority,
     * schedule order) and return how many ran. @p cycle must be the
     * value nextEventCycle() returned (>= the wheel base).
     */
    size_t dispatchCycle(Cycle cycle);

    /** The cycle currently dispatching (valid inside process()). */
    Cycle currentCycle() const { return curCycle; }

    bool dispatching() const { return inDispatch; }

    /**
     * Suspend scheduling: schedule()/scheduleEarlier() become no-ops
     * until resume(). The auto engine parks the queue like this during
     * its polled stints so the per-cycle wake-up traffic of a dense
     * workload costs nothing; existing entries stay put (possibly
     * going stale) and a System::scheduleAll() after resume() re-arms
     * every component via bootstrapWake, which forwards or supersedes
     * anything stranded in the past.
     */
    void
    suspend()
    {
        GAZE_ASSERT(!inDispatch, "cannot suspend mid-dispatch");
        isSuspended = true;
    }

    void
    resume()
    {
        GAZE_ASSERT(!inDispatch, "cannot resume mid-dispatch");
        isSuspended = false;
    }

    bool suspended() const { return isSuspended; }

    /** Live scheduled events (excludes superseded entries). */
    size_t size() const { return numScheduled; }
    bool empty() const { return numScheduled == 0; }

    const EventQueueStats &stats() const { return stat; }

  private:
    struct Entry
    {
        Cycle when;
        int prio;
        uint64_t token;
        Event *ev;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.token > b.token; // tokens grow in schedule order
        }
    };

    bool
    live(const Entry &e) const
    {
        return e.ev->isScheduled && e.ev->token == e.token;
    }

    size_t bucketOf(Cycle when) const { return when & (wheelSize - 1); }
    void insert(const Entry &e);
    void refillFromHeap();
    void setBit(size_t bucket);
    void clearBit(size_t bucket);

    uint32_t wheelSize;
    Cycle wheelBase = 0; ///< earliest cycle the wheel can hold

    std::vector<std::vector<Entry>> wheel;
    std::vector<uint64_t> occupied; ///< bitmap over wheel buckets

    std::priority_queue<Entry, std::vector<Entry>, EntryLater> overflow;

    uint64_t nextToken = 1;
    size_t numScheduled = 0;
    Cycle curCycle = 0;
    bool inDispatch = false;
    bool isSuspended = false;

    /** Scratch list dispatchCycle() drains each bucket into. */
    std::vector<Entry> batch;

    EventQueueStats stat;
};

/**
 * The tick event of one simulated component. A component owns its
 * TickEvent; System binds it to the queue with the component's
 * tickAll() position as its priority. Unbound (polled engine, unit
 * tests that tick by hand), every method is a no-op, so components
 * carry their wake-up calls unconditionally.
 *
 * The component contract:
 *  - `void tick()` — one cycle of work, identical to the polled tick.
 *    It opens with `if (!sched.due(now())) return;` and closes with
 *    `sched.tickDone(nextWakeCycle())`.
 *  - `Cycle nextWakeCycle() const` — earliest future cycle at which
 *    ticking could have any effect given current state (kNeverWake
 *    when only external input can create work).
 * External inputs (sendRequest, recvFill) call requestWake() on the
 * target so a sleeping component is woken exactly when the polled
 * engine would first have ticked it to any effect.
 *
 * The event also carries the component's *wake hint* — the cycle its
 * last tick promised as the next possibly-productive one, lowered by
 * every requestWake. This is what lets the polled engine share the
 * event engine's idle-skipping proof without a queue: a tick whose
 * entry gate sees hint > now is exactly a cycle the event engine would
 * never have dispatched, so returning without work preserves
 * bit-identical metrics. The hint is maintained unbound too (the
 * polled and threaded engines never bind), which is why due()/
 * tickDone()/requestWake() do their bookkeeping before any queue
 * check.
 */
template <typename Component>
class TickEvent : public Event
{
  public:
    TickEvent() = default;

    void
    bind(EventQueue *q, Component *c, int priority_)
    {
        GAZE_ASSERT(q && c, "tick event needs a queue and a component");
        queue = q;
        comp = c;
        setPriority(priority_);
    }

    bool bound() const { return queue != nullptr; }

    /**
     * Entry gate for the component's tick: true when ticking at
     * @p now_cycle could do work. The polled engine calls tick()
     * every cycle; this turns the no-op ones into a two-load compare.
     */
    bool due(Cycle now_cycle) const { return wakeHint <= now_cycle; }

    /**
     * End-of-tick bookkeeping: record the component's freshly
     * computed nextWakeCycle() as the hint the gate tests next.
     */
    void tickDone(Cycle next) { wakeHint = next; }

    /** The current hint (diagnostics / engine bookkeeping). */
    Cycle hint() const { return wakeHint; }

    /**
     * Ensure the component ticks at @p when or earlier. Lowers the
     * wake hint (except from inside the component's own tick, whose
     * closing tickDone() recomputes the hint from full state anyway)
     * and, when bound, pulls the queue entry earlier.
     */
    void
    requestWake(Cycle when)
    {
        if (inTick) {
            if (when <= tickCycle)
                return;
            if (queue)
                queue->scheduleEarlier(this, when);
            return;
        }
        if (when < wakeHint)
            wakeHint = when;
        if (queue)
            queue->scheduleEarlier(this, when);
    }

    /**
     * Run-start (re)arming: guarantee a tick at @p when. Unlike
     * requestWake this also forwards an entry stranded in the past by
     * a cycle-cap jump (the wedge safety valve), so a follow-up run
     * always starts from a clean schedule.
     */
    void
    bootstrapWake(Cycle when)
    {
        if (!queue)
            return;
        if (scheduled() && this->when() < when)
            queue->deschedule(this);
        queue->scheduleEarlier(this, when);
    }

    void
    process() override
    {
        inTick = true;
        tickCycle = queue->currentCycle();
        comp->tick();
        inTick = false;
        // tick() left its nextWakeCycle() in the hint (or, when the
        // gate skipped a bootstrapWake dispatch, the hint is the
        // still-future cycle to resume at). Either way it is the
        // reschedule target, saving a second nextWakeCycle() walk.
        if (wakeHint != kNeverWake)
            queue->scheduleEarlier(this, wakeHint);
    }

  private:
    EventQueue *queue = nullptr;
    Component *comp = nullptr;
    Cycle tickCycle = 0;
    Cycle wakeHint = 0; ///< earliest possibly-productive tick cycle
    bool inTick = false;
};

} // namespace gaze
