/**
 * @file
 * SliceTeam: the persistent worker team behind multi-threaded
 * simulation (`--sim-threads=N`). The threaded engine runs every
 * simulated cycle as a fork/join pair: a parallel phase where each
 * worker ticks its assigned per-core slices ({core, L1D, L2}), then a
 * serial phase on the coordinating thread (staged LLC sends replayed
 * in core order, LLC + DRAM ticks). Results stay bitwise identical to
 * the single-threaded engines because slices share no mutable state
 * during the parallel phase and everything cross-core is serialized.
 *
 * The join happens hundreds of thousands of times per second, so the
 * per-cycle barrier is pure atomics (a release-published go token and
 * an arrival counter) — no mutex, no condition variable, and no
 * wall-clock reads on the hot path. Workers park on a condition
 * variable only *between* runs (beginRun/endRun), where latency does
 * not matter.
 *
 * This header is the one sanctioned home (with driver/thread_pool.hh)
 * for raw std::thread use; gaze_lint's raw-thread rule points all
 * other code at these shims.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "sim/request.hh"

namespace gaze
{

/**
 * The per-core valve between an L2 and the shared LLC that keeps the
 * parallel phase share-nothing. In passthrough mode it forwards
 * sendRequest() straight to the LLC (single-threaded semantics, used
 * for serial-fallback cycles). In staging mode — the parallel phase —
 * it records the request instead, and System replays every slice's
 * staged requests into the LLC in core order during the serial phase,
 * reproducing the exact arrival order of the single-threaded engines.
 *
 * Staging unconditionally "accepts": the threaded loop only runs a
 * cycle in parallel when a backpressure guard proves the LLC could
 * not have rejected any of it (see System::executeThreadedCycle), and
 * replay() re-asserts that by checking every real send.
 */
class LlcPortal : public MemoryDevice
{
  public:
    explicit LlcPortal(MemoryDevice *llc_) : llc(llc_) {}

    void setStaging(bool on) { staging = on; }

    bool
    sendRequest(const Request &req) override
    {
        if (!staging)
            return llc->sendRequest(req);
        staged.push_back(req);
        return true;
    }

    /** Never ticked: the portal is wiring, not a component. */
    void tick() override {}

    /** Forward staged requests to the LLC, in issue order. */
    void
    replay()
    {
        for (const Request &req : staged) {
            [[maybe_unused]] bool ok = llc->sendRequest(req);
            GAZE_ASSERT(ok, "LLC rejected a staged request despite the "
                        "backpressure guard");
        }
        staged.clear();
    }

    size_t stagedCount() const { return staged.size(); }

  private:
    MemoryDevice *llc;
    bool staging = false;
    std::vector<Request> staged;
};

/**
 * A fixed team of threads (the constructing thread included) that
 * executes `fn(slice)` for every slice of a cycle, fork/join style.
 *
 * Usage:
 *   SliceTeam team(threads);
 *   team.beginRun(slices, fn);     // binds work, unparks the workers
 *   for each cycle: team.runCycle();
 *   team.endRun();                 // parks the workers again
 *
 * Slices are statically partitioned round-robin over the members, so
 * the assignment — and therefore any slice-local side effect order —
 * is deterministic for a given (slices, threads) pair; the simulation
 * keeps cross-slice effects out of the parallel phase entirely, which
 * is what makes results independent of the thread count too.
 *
 * Exceptions thrown by fn are captured per member and rethrown (first
 * member wins, deterministically) from runCycle() after the join; the
 * team stays usable afterwards and tears down cleanly either way.
 */
class SliceTeam
{
  public:
    /** @param threads total team size including the caller (>= 1). */
    explicit SliceTeam(uint32_t threads);

    /** Joins the workers; safe while parked or active. */
    ~SliceTeam();

    SliceTeam(const SliceTeam &) = delete;
    SliceTeam &operator=(const SliceTeam &) = delete;

    /**
     * Bind this run's work function and unpark the workers. No
     * runCycle() may be in flight.
     */
    void beginRun(std::function<void(uint32_t)> fn);

    /** Park the workers (they spin while a run is open). */
    void endRun();

    /**
     * One parallel phase over @p slices slices: every member (caller
     * included) runs its round-robin share; returns once all have
     * finished. Rethrows the first captured slice exception, if any.
     */
    void runCycle(uint32_t slices);

    /** Total members, caller included. */
    uint32_t threadCount() const { return memberCount; }

  private:
    enum Phase : uint32_t
    {
        Parked,  ///< workers wait on the condition variable
        Active,  ///< workers spin on the go token
        Stopping ///< workers exit
    };

    void workerMain(uint32_t member);

    /** Run member's round-robin share of the slices, capturing. */
    void runSlices(uint32_t member);

    uint32_t memberCount;
    /**
     * This cycle's slice count. Written by the coordinator before the
     * go-token bump that publishes it (release) and read by workers
     * only after acquiring that bump, so it needs no atomicity.
     */
    uint32_t sliceCount = 0;
    std::function<void(uint32_t)> sliceFn;

    // Park/unpark path (cold): phase transitions under the mutex.
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<uint32_t> phase{Parked};

    // Per-cycle barrier (hot): coordinator bumps goToken (release),
    // workers spin-acquire it, run, then bump arrived (release).
    std::atomic<uint64_t> goToken{0};
    std::atomic<uint32_t> arrived{0};

    std::atomic<bool> hasError{false};
    std::vector<std::exception_ptr> errors; ///< one slot per member

    /** Spin budget before yielding (0 when oversubscribed). */
    int spinLimit = 0;

    std::vector<std::thread> workers;
};

} // namespace gaze
