/**
 * @file
 * Functional virtual memory: a deterministic per-core vpage -> ppage
 * mapping. Translation latency is not modeled (see DESIGN.md); the
 * mapping exists so that
 *  - physical-address prefetchers cannot usefully cross 4KB boundaries
 *    (adjacent virtual pages land on unrelated physical pages), and
 *  - virtual-address prefetchers (vBerti, vGaze) legitimately can.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace gaze
{

/** Deterministic hash-based page table shared by all cores. */
class VirtualMemory
{
  public:
    /**
     * @param physical_bits size of the physical address space
     *        (default 34 = 16GB), bounding the ppage namespace.
     */
    explicit VirtualMemory(uint32_t physical_bits = 34);

    /** Translate a full virtual address for core @p cpu. */
    Addr translate(Addr vaddr, uint32_t cpu) const;

    /** Physical page number backing (cpu, vpage). */
    Addr pagePPN(Addr vpage, uint32_t cpu) const;

  private:
    uint64_t ppageMask;
};

} // namespace gaze
