/**
 * @file
 * Cache replacement policies. The paper's configuration uses LRU in all
 * caches; SRRIP and Random are provided for sensitivity studies and to
 * exercise the policy interface.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace gaze
{

/**
 * Replacement policy for one cache. The cache reports hits and fills;
 * the policy picks victims. Way state is kept inside the policy,
 * indexed by (set * ways + way).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A block in (set, way) was hit by a demand or prefetch access. */
    virtual void onHit(uint32_t set, uint32_t way) = 0;

    /** A block was filled into (set, way). @p prefetch for pf fills. */
    virtual void onFill(uint32_t set, uint32_t way, bool prefetch) = 0;

    /**
     * Choose a victim way in @p set. Bit w of @p valid_mask is set
     * when way w holds a valid block; invalid ways must be preferred.
     * (A mask, not a vector<bool>: the fill path builds it from a tag
     * scan without allocating. Caps associativity at 64 ways.)
     */
    virtual uint32_t victim(uint32_t set, uint64_t valid_mask) = 0;

    virtual std::string name() const = 0;
};

/** True least-recently-used. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(uint32_t sets, uint32_t ways);

    void onHit(uint32_t set, uint32_t way) override;
    void onFill(uint32_t set, uint32_t way, bool prefetch) override;
    uint32_t victim(uint32_t set, uint64_t valid_mask) override;
    std::string name() const override { return "lru"; }

  private:
    uint32_t numWays;
    std::vector<uint64_t> stamp;
    uint64_t tick = 0;
};

/**
 * Static RRIP (SRRIP-HP): 2-bit re-reference interval prediction.
 * Prefetch fills are inserted with a distant prediction, which gives a
 * little built-in pollution resistance.
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    SrripPolicy(uint32_t sets, uint32_t ways);

    void onHit(uint32_t set, uint32_t way) override;
    void onFill(uint32_t set, uint32_t way, bool prefetch) override;
    uint32_t victim(uint32_t set, uint64_t valid_mask) override;
    std::string name() const override { return "srrip"; }

  private:
    static constexpr uint8_t maxRrpv = 3;
    uint32_t numWays;
    std::vector<uint8_t> rrpv;
};

/** Uniform-random victim selection (deterministic seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(uint32_t sets, uint32_t ways, uint64_t seed = 0xdead);

    void onHit(uint32_t /*set*/, uint32_t /*way*/) override {}
    void onFill(uint32_t /*set*/, uint32_t /*way*/,
                bool /*prefetch*/) override
    {
    }
    uint32_t victim(uint32_t set, uint64_t valid_mask) override;
    std::string name() const override { return "random"; }

  private:
    uint32_t numWays;
    Rng rng;
};

/** Factory: "lru" | "srrip" | "random". */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, uint32_t sets, uint32_t ways);

/** Every name makeReplacementPolicy accepts, in listing order. */
const std::vector<std::string> &knownReplacementPolicies();

/** True when @p name names a registered policy. */
bool isKnownReplacementPolicy(const std::string &name);

/** "lru, srrip, random" — for diagnostics naming the alternatives. */
std::string knownReplacementPolicyList();

} // namespace gaze
