#include "serve/client.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "campaign/json.hh"
#include "common/log.hh"
#include "harness/export.hh"
#include "serve/protocol.hh"

namespace gaze
{
namespace serve
{
namespace
{

/** Blocking line-framed connection to the daemon socket. */
class Connection
{
  public:
    explicit Connection(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            GAZE_FATAL("gaze_serve: socket path too long: ", path);
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            GAZE_FATAL("gaze_serve: socket(): ",
                       std::strerror(errno));
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr))
            != 0)
            GAZE_FATAL("gaze_serve: cannot connect to ", path, ": ",
                       std::strerror(errno),
                       " (is the daemon running? start one with: "
                       "gaze_serve daemon --socket=",
                       path, ")");
    }

    ~Connection()
    {
        if (fd >= 0)
            close(fd);
    }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    void
    sendLine(const std::string &line)
    {
        std::string framed = line + "\n";
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = write(fd, framed.data() + off,
                              framed.size() - off);
            if (n <= 0)
                GAZE_FATAL("gaze_serve: write(): ",
                           std::strerror(errno));
            off += size_t(n);
        }
    }

    /** False on clean EOF; fatal on I/O errors. */
    bool
    readLine(std::string *line)
    {
        size_t nl;
        while ((nl = buf.find('\n')) == std::string::npos) {
            char chunk[4096];
            ssize_t n = read(fd, chunk, sizeof(chunk));
            if (n < 0)
                GAZE_FATAL("gaze_serve: read(): ",
                           std::strerror(errno));
            if (n == 0)
                return false;
            buf.append(chunk, size_t(n));
        }
        *line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
    }

  private:
    int fd = -1;
    std::string buf;
};

JsonValue
parseEvent(const std::string &line)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(line, &doc, &err) || !doc.isObject())
        GAZE_FATAL("gaze_serve: malformed event from daemon: ", err);
    return doc;
}

std::string
eventName(const JsonValue &doc)
{
    const JsonValue *e = doc.find("event");
    return e && e->isString() ? e->asString() : "";
}

std::string
stringField(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.find(key);
    return v && v->isString() ? v->asString() : "";
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        GAZE_FATAL("cannot write ", path);
    out << text;
}

} // namespace

int
submitToDaemon(const std::string &socketPath,
               const std::string &specPath, int64_t priority,
               const std::string &outPath, const std::string &csvPath,
               bool quiet)
{
    // Parse the spec locally first: a file-level typo dies here with
    // the normal fatal diagnostics instead of a daemon rejection.
    JsonValue spec = parseJsonFile(specPath);

    Connection conn(socketPath);
    conn.sendLine(encodeSubmit(spec, priority));

    std::string line;
    while (conn.readLine(&line)) {
        JsonValue doc = parseEvent(line);
        std::string event = eventName(doc);
        if (event == "rejected") {
            std::fprintf(stderr, "gaze_serve: rejected: %s\n",
                         stringField(doc, "reason").c_str());
            return 3;
        }
        if (event == "accepted") {
            if (!quiet) {
                auto count = [&](const char *key) {
                    const JsonValue *v = doc.find(key);
                    return v && v->isNumber()
                               ? static_cast<unsigned long long>(
                                     v->asNumber())
                               : 0ULL;
                };
                std::fprintf(stderr,
                             "accepted: cells=%llu cached=%llu "
                             "shared=%llu enqueued=%llu\n",
                             count("cells"), count("cached"),
                             count("shared"), count("enqueued"));
            }
            continue;
        }
        if (event == "progress") {
            if (!quiet) {
                const JsonValue *done = doc.find("done");
                const JsonValue *total = doc.find("total");
                std::fprintf(
                    stderr, "[%llu/%llu] %s\n",
                    done && done->isNumber()
                        ? static_cast<unsigned long long>(
                              done->asNumber())
                        : 0ULL,
                    total && total->isNumber()
                        ? static_cast<unsigned long long>(
                              total->asNumber())
                        : 0ULL,
                    stringField(doc, "cell").c_str());
            }
            continue;
        }
        if (event == "error") {
            std::fprintf(stderr, "gaze_serve: %s\n",
                         stringField(doc, "message").c_str());
            return 4;
        }
        if (event == "report") {
            std::string name = stringField(doc, "name");
            std::string report = stringField(doc, "report");
            std::string path =
                outPath.empty() ? "BENCH_" + name + ".json" : outPath;
            writeText(path, report + "\n");
            if (!csvPath.empty())
                writeText(csvPath, stringField(doc, "csv"));
            if (!quiet)
                std::fprintf(stderr, "report: %s\n", path.c_str());
            return 0;
        }
        // Unknown events from a newer daemon are skipped, not fatal.
    }
    std::fprintf(stderr,
                 "gaze_serve: connection closed before the report\n");
    return 5;
}

int
queryStatus(const std::string &socketPath)
{
    Connection conn(socketPath);
    conn.sendLine(encodeStatus());
    std::string line;
    while (conn.readLine(&line)) {
        JsonValue doc = parseEvent(line);
        if (eventName(doc) == "status") {
            std::printf("%s\n", line.c_str());
            return 0;
        }
    }
    std::fprintf(stderr,
                 "gaze_serve: connection closed before status\n");
    return 5;
}

int
requestShutdown(const std::string &socketPath)
{
    Connection conn(socketPath);
    conn.sendLine(encodeShutdown());
    std::string line;
    while (conn.readLine(&line)) {
        JsonValue doc = parseEvent(line);
        if (eventName(doc) == "bye")
            return 0;
    }
    // EOF without a bye still means the daemon is going down.
    return 0;
}

} // namespace serve
} // namespace gaze
