/**
 * @file
 * `gaze_serve --bench`: sustained-throughput probe of the in-process
 * service, written as BENCH_serve.json next to BENCH_engine.json.
 * Phase 1 (cold) submits a fixed multi-prefetcher spec into an empty
 * result cache and measures cells/sec of real simulation; phase 2
 * (warm) resubmits the identical spec and measures pure cache-hit
 * answer throughput — the marginal cost of a repeated question.
 */

#pragma once

#include <string>

namespace gaze
{
namespace serve
{

struct BenchOptions
{
    std::string outPath;  ///< empty = BENCH_serve.json default path
    std::string cacheDir; ///< empty = fresh temp dir under the cwd
    uint32_t threads = 0; ///< sim workers (0 = hardware)
};

int runServeBench(const BenchOptions &opt);

} // namespace serve
} // namespace gaze
