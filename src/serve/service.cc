#include "serve/service.hh"

#include <cstdio>

#include "campaign/report.hh"
#include "common/log.hh"
#include "harness/export.hh"
#include "obs/trace.hh"

namespace gaze
{
namespace serve
{

Service::Service(const ServiceConfig &cfg_)
    : cfg(cfg_), cache(cfg_.cacheDir),
      baselines(
          std::make_shared<BaselineCache>(cfg_.baselineCapacity))
{
    SchedulerConfig scfg;
    scfg.threads = cfg.threads;
    scfg.maxQueuedCells = cfg.maxQueuedCells;
    sched = std::make_unique<CellScheduler>(cache, baselines, scfg,
                                            cfg.executor);
}

Service::~Service()
{
    // The scheduler member is destroyed first (declared last); its
    // destructor drains and joins, so no completion callback can
    // observe a half-destroyed Service.
}

void
Service::setWakeup(std::function<void()> fn)
{
    std::unique_lock<std::mutex> lock(mtx);
    wakeup = std::move(fn);
}

uint64_t
Service::openSession(EventFn deliver)
{
    std::unique_lock<std::mutex> lock(mtx);
    uint64_t id = nextClient++;
    sessions[id] = Session{std::move(deliver), 0};
    ++ctr.clientsTotal;
    ++ctr.clientsOpen;
    emitObsCountersLocked();
    return id;
}

void
Service::closeSession(uint64_t client)
{
    std::unique_lock<std::mutex> lock(mtx);
    auto it = sessions.find(client);
    if (it == sessions.end())
        return;
    // In-flight submissions of this client keep running: their cells
    // may be shared with other clients, and publishing them warms the
    // cache either way. Their events just have nowhere to go.
    sessions.erase(it);
    --ctr.clientsOpen;
    emitObsCountersLocked();
}

void
Service::deliverLocked(uint64_t client, const std::string &line)
{
    auto it = sessions.find(client);
    if (it != sessions.end() && it->second.deliver)
        it->second.deliver(line);
}

void
Service::rejectLocked(uint64_t client, const std::string &reason)
{
    ++ctr.rejected;
    if (cfg.verbose)
        std::fprintf(stderr, "gaze_serve: rejected client %llu: %s\n",
                     static_cast<unsigned long long>(client),
                     reason.c_str());
    deliverLocked(client, eventRejected(reason));
}

void
Service::handleLine(uint64_t client, const std::string &line)
{
    std::unique_lock<std::mutex> lock(mtx);
    auto sit = sessions.find(client);
    if (sit == sessions.end())
        return;

    Request req;
    std::string why;
    if (!parseRequest(line, &req, &why)) {
        rejectLocked(client, why);
        return;
    }

    switch (req.op) {
      case Request::Op::Status: {
        deliverLocked(client, statusJsonLocked());
        break;
      }
      case Request::Op::Shutdown: {
        shutdownFlag = true;
        draining = true;
        deliverLocked(client, eventBye());
        if (wakeup)
            wakeup();
        break;
      }
      case Request::Op::Submit: {
        handleSubmitLocked(client, sit->second, req);
        break;
      }
    }
}

void
Service::handleSubmitLocked(uint64_t client, Session &session,
                            const Request &req)
{
    if (draining) {
        rejectLocked(client, "daemon is draining (shutdown requested); "
                             "no new submissions");
        return;
    }
    if (session.active >= cfg.maxClientInFlight) {
        rejectLocked(client,
                     "client already has "
                         + std::to_string(session.active)
                         + " submission(s) in flight (limit "
                         + std::to_string(cfg.maxClientInFlight)
                         + "); wait for a report");
        return;
    }
    std::string specErr = checkCampaignSpecDoc(req.spec);
    if (!specErr.empty()) {
        rejectLocked(client, specErr);
        return;
    }

    // The preflight guarantees the fatal parser accepts the document.
    auto sub = std::make_shared<Submission>();
    sub->id = nextSubmission++;
    sub->client = client;
    sub->campaign = expandCampaign(parseCampaignSpec(req.spec));

    std::vector<CampaignJob> jobs = expandCampaignJobs(sub->campaign);
    sub->total = jobs.size();

    // Register before submitBatch: completion callbacks can fire on
    // worker threads the moment the lock is released, and they look
    // the submission up by id.
    submissions[sub->id] = sub;
    uint64_t id = sub->id;
    auto outcome = sched->submitBatch(
        sub->campaign.spec.run, jobs, req.priority,
        [this, id](const CampaignJob &job, const CellRecord &rec,
                   bool ok, const std::string &error) {
            onCellDone(id, job, rec, ok, error);
        });
    if (!outcome.accepted) {
        submissions.erase(id);
        rejectLocked(client, outcome.reason);
        return;
    }

    ++ctr.submits;
    ++session.active;
    ctr.cacheHits += outcome.cacheHits;
    ctr.dedupHits += outcome.shared;
    sub->done = outcome.cacheHits;
    deliverLocked(client,
                  eventAccepted(sub->id, sub->total, outcome.cacheHits,
                                outcome.shared, outcome.enqueued));
    if (cfg.verbose)
        std::fprintf(stderr,
                     "gaze_serve: submission %llu from client %llu: "
                     "%llu cell(s), %llu cached, %llu shared, %llu "
                     "enqueued\n",
                     static_cast<unsigned long long>(sub->id),
                     static_cast<unsigned long long>(client),
                     static_cast<unsigned long long>(sub->total),
                     static_cast<unsigned long long>(outcome.cacheHits),
                     static_cast<unsigned long long>(outcome.shared),
                     static_cast<unsigned long long>(outcome.enqueued));
    emitObsCountersLocked();

    if (sub->done == sub->total) {
        // Fully answered from the cache: the repeated-question case
        // the daemon exists for. Report immediately, zero simulations.
        finishSubmissionLocked(sub);
    }
}

void
Service::onCellDone(uint64_t submissionId, const CampaignJob &job,
                    const CellRecord &rec, bool ok,
                    const std::string &error)
{
    std::unique_lock<std::mutex> lock(mtx);
    auto it = submissions.find(submissionId);
    if (it == submissions.end())
        return;
    std::shared_ptr<Submission> sub = it->second;
    ++sub->done;
    ++ctr.cellsExecuted;
    if (!ok && !sub->failed) {
        sub->failed = true;
        sub->error = "cell '" + job.label + "' failed: " + error;
    }
    deliverLocked(sub->client,
                  eventProgress(sub->id, sub->done, sub->total,
                                job.label, rec.seconds));
    if (sub->done == sub->total)
        finishSubmissionLocked(sub);
    if (wakeup)
        wakeup();
}

void
Service::finishSubmissionLocked(const std::shared_ptr<Submission> &sub)
{
    if (sub->failed) {
        deliverLocked(sub->client, eventError(sub->id, sub->error));
    } else {
        // Every job of this submission is published by now, so the
        // report — a pure function of cache content — is complete,
        // and byte-identical to the offline gaze_campaign pipeline.
        CampaignReport report =
            buildReport(sub->campaign, cache, nullptr);
        deliverLocked(sub->client,
                      eventReport(sub->id, sub->campaign.spec.name,
                                  report.json, report.csv));
    }
    ++ctr.completed;
    auto sit = sessions.find(sub->client);
    if (sit != sessions.end() && sit->second.active > 0)
        --sit->second.active;
    submissions.erase(sub->id);
    if (cfg.verbose)
        std::fprintf(stderr,
                     "gaze_serve: submission %llu %s (%llu cell(s))\n",
                     static_cast<unsigned long long>(sub->id),
                     sub->failed ? "failed" : "completed",
                     static_cast<unsigned long long>(sub->total));
    emitObsCountersLocked();
    if (submissions.empty())
        idleCv.notify_all();
}

void
Service::beginDrain()
{
    std::unique_lock<std::mutex> lock(mtx);
    draining = true;
}

bool
Service::shutdownRequested() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return shutdownFlag;
}

bool
Service::idle() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return submissions.empty();
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lock(mtx);
    idleCv.wait(lock, [this] { return submissions.empty(); });
}

ServiceCounters
Service::counters() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return ctr;
}

std::string
Service::statusJson()
{
    std::unique_lock<std::mutex> lock(mtx);
    return statusJsonLocked();
}

std::string
Service::statusJsonLocked()
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "status");
    j.key("server").beginObject();
    j.field("cache_dir", cache.directory());
    j.field("threads", static_cast<uint64_t>(sched->threads()));
    j.field("clients", ctr.clientsOpen);
    j.field("clients_total", ctr.clientsTotal);
    j.field("submits", ctr.submits);
    j.field("rejected", ctr.rejected);
    j.field("completed", ctr.completed);
    j.field("executed", ctr.cellsExecuted);
    j.field("cache_hits", ctr.cacheHits);
    j.field("dedup_hits", ctr.dedupHits);
    j.field("queued", sched->inFlight());
    j.field("baselines", static_cast<uint64_t>(baselines->size()));
    j.field("draining", draining);
    j.endObject();
    j.key("submissions").beginArray();
    for (const auto &kv : submissions) {
        const Submission &s = *kv.second;
        j.beginObject();
        j.field("id", s.id);
        j.field("client", s.client);
        // The shared status shape — same keys gaze_campaign status
        // --json prints, so scripts parse either producer.
        CampaignCacheStatus st;
        st.cached = s.done;
        st.missing = s.total - s.done;
        writeCampaignStatusFields(j, s.campaign.spec.name, st);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    return j.str();
}

void
Service::emitObsCountersLocked()
{
    obs::TraceSink *sink = obs::globalTrace();
    if (!sink)
        return;
    if (!obsTrack)
        obsTrack = sink->allocTrack(obs::kPidHost, "gaze_serve service");
    uint64_t ts = sink->hostNowUs();
    sink->counter(obs::kPidHost, obsTrack, "serve clients", ts,
                  double(ctr.clientsOpen));
    sink->counter(obs::kPidHost, obsTrack, "serve submits", ts,
                  double(ctr.submits));
    sink->counter(obs::kPidHost, obsTrack, "serve dedup hits", ts,
                  double(ctr.dedupHits));
    sink->counter(obs::kPidHost, obsTrack, "serve cache hits", ts,
                  double(ctr.cacheHits));
}

} // namespace serve
} // namespace gaze
