/**
 * @file
 * The gaze_serve daemon's transport: a Unix-domain stream socket with
 * newline-delimited JSON lines, served by a single poll() loop. All
 * campaign logic lives in serve/service.hh; this file only moves
 * bytes, accepts connections, and turns SIGTERM/SIGINT into a
 * graceful drain — in-flight cells finish and publish atomically,
 * pending events flush, then the process exits 0.
 */

#pragma once

#include <string>

#include "serve/service.hh"

namespace gaze
{
namespace serve
{

struct ServerConfig
{
    std::string socketPath;
    std::string obsTracePath; ///< write a host-time trace on exit
    ServiceConfig service;
};

/**
 * Bind, listen, and serve until a shutdown request or SIGTERM/SIGINT,
 * then drain and return the process exit code. Fatal on setup errors
 * (unbindable path); never fatal on client input.
 */
int runServer(const ServerConfig &cfg);

} // namespace serve
} // namespace gaze
