/**
 * @file
 * Transport-independent core of the gaze_serve daemon: sessions hand
 * in request lines, events come back through a per-session callback.
 * The Unix-socket server, the in-process tests, and the bench mode
 * all drive this same object — so everything the daemon promises
 * (admission control, dedup, the determinism contract) is provable
 * without a socket.
 *
 * Determinism contract: a report produced here is byte-identical to
 * offline `gaze_campaign run` + `report` for the same spec, whatever
 * the client count, arrival order, or priorities. That is not a
 * property of the scheduler but of the report itself — it is a pure
 * function of the result cache content, and cells are content-
 * addressed — so the service only reorders *execution*, never
 * *results*.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "campaign/cache.hh"
#include "campaign/spec.hh"
#include "harness/runner.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"

namespace gaze
{
namespace serve
{

struct ServiceConfig
{
    std::string cacheDir = "campaign_cache";

    /** Simulation workers (0 = hardware concurrency). */
    uint32_t threads = 0;

    /** Scheduler admission cap: queued + running cells. */
    uint64_t maxQueuedCells = 4096;

    /** Per-client cap on submissions awaiting their report. */
    uint64_t maxClientInFlight = 8;

    /** Baseline-memo LRU capacity (0 = unbounded). */
    size_t baselineCapacity = BaselineCache::kDefaultCapacity;

    /** Per-submission lifecycle lines on stderr. */
    bool verbose = false;

    /** Test seam forwarded to the scheduler (empty = simulate). */
    CellScheduler::Executor executor;
};

/** Monotonic service counters (also exported as obs counter tracks). */
struct ServiceCounters
{
    uint64_t clientsTotal = 0; ///< sessions ever opened
    uint64_t clientsOpen = 0;
    uint64_t submits = 0;  ///< accepted submissions
    uint64_t rejected = 0; ///< refused requests (admission/validation)
    uint64_t completed = 0;
    uint64_t cellsExecuted = 0;
    uint64_t cacheHits = 0;
    uint64_t dedupHits = 0;
};

class Service
{
  public:
    /**
     * Event delivery for one session: called with one encoded event
     * line (no newline), possibly from a worker thread, with the
     * service lock held — implementations must be quick and must not
     * call back into the Service.
     */
    using EventFn = std::function<void(const std::string &line)>;

    explicit Service(const ServiceConfig &cfg);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /** Poked after asynchronous event deliveries so a poll loop can
        flush; set once before the first session opens. */
    void setWakeup(std::function<void()> fn);

    uint64_t openSession(EventFn deliver);
    void closeSession(uint64_t client);

    /** Handle one request line from @p client; every outcome —
        including malformed input — is an event, never an exit. */
    void handleLine(uint64_t client, const std::string &line);

    /** Stop admitting submissions; rejections say the daemon drains. */
    void beginDrain();

    /** True once a client asked for shutdown. */
    bool shutdownRequested() const;

    /** No submission is awaiting cells or report delivery. */
    bool idle() const;

    /** Block until idle() (in-process tests + bench). */
    void drain();

    ServiceCounters counters() const;
    SchedulerStats schedulerStats() const { return sched->stats(); }
    std::vector<std::string> executionLog() const
    {
        return sched->executionLog();
    }
    uint32_t threads() const { return sched->threads(); }

    /** The status event body (also sent for op=status). */
    std::string statusJson();

  private:
    struct Session
    {
        EventFn deliver;
        uint64_t active = 0; ///< submissions awaiting their report
    };

    struct Submission
    {
        uint64_t id = 0;
        uint64_t client = 0;
        Campaign campaign;
        uint64_t total = 0; ///< deduplicated jobs in this submission
        uint64_t done = 0;
        bool failed = false;
        std::string error;
    };

    void handleSubmitLocked(uint64_t client, Session &session,
                            const Request &req);
    void rejectLocked(uint64_t client, const std::string &reason);
    void deliverLocked(uint64_t client, const std::string &line);
    void onCellDone(uint64_t submissionId, const CampaignJob &job,
                    const CellRecord &rec, bool ok,
                    const std::string &error);
    void finishSubmissionLocked(const std::shared_ptr<Submission> &sub);
    std::string statusJsonLocked();
    void emitObsCountersLocked();

    ServiceConfig cfg;
    ResultCache cache;
    std::shared_ptr<BaselineCache> baselines;

    mutable std::mutex mtx;
    std::condition_variable idleCv;
    uint64_t nextClient = 1;
    uint64_t nextSubmission = 1;
    std::map<uint64_t, Session> sessions;
    std::map<uint64_t, std::shared_ptr<Submission>> submissions;
    ServiceCounters ctr;
    bool draining = false;
    bool shutdownFlag = false;
    std::function<void()> wakeup;
    uint32_t obsTrack = 0; ///< counter track, allocated on first use

    /** Last member: its workers must stop before the rest is torn
        down (completion callbacks touch everything above). */
    std::unique_ptr<CellScheduler> sched;
};

} // namespace serve
} // namespace gaze
