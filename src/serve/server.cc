#include "serve/server.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "obs/trace.hh"

namespace gaze
{
namespace serve
{
namespace
{

/** Self-pipe for async-signal-safe shutdown notification. */
int gSignalPipe[2] = {-1, -1};

extern "C" void
onShutdownSignal(int)
{
    char b = 's';
    ssize_t r = write(gSignalPipe[1], &b, 1);
    (void)r;
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
drainPipe(int fd)
{
    char buf[64];
    while (read(fd, buf, sizeof(buf)) > 0) {
    }
}

/**
 * One client connection's outbound buffer. Shared with the Service's
 * event callback (worker threads append) and the poll loop (flushes);
 * shared_ptr so a connection torn down mid-simulation leaves workers
 * a safe, marked-closed buffer instead of a dangling pointer.
 */
struct Outbuf
{
    std::mutex mtx;
    std::string data;
    bool open = true;
};

struct Conn
{
    int fd = -1;
    uint64_t client = 0;
    std::string in;
    std::shared_ptr<Outbuf> out;
};

} // namespace

int
runServer(const ServerConfig &cfg)
{
    if (cfg.socketPath.empty())
        GAZE_FATAL("gaze_serve: --socket=PATH is required");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        GAZE_FATAL("gaze_serve: socket path too long (max ",
                   sizeof(addr.sun_path) - 1, " bytes): ",
                   cfg.socketPath);
    std::memcpy(addr.sun_path, cfg.socketPath.c_str(),
                cfg.socketPath.size() + 1);

    int listenFd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        GAZE_FATAL("gaze_serve: socket(): ", std::strerror(errno));
    // A stale socket file from a crashed daemon would make bind fail;
    // a *live* daemon still holds its listener, and replacing its file
    // is exactly what the operator restarting the service wants.
    unlink(cfg.socketPath.c_str());
    if (bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr))
        != 0)
        GAZE_FATAL("gaze_serve: bind(", cfg.socketPath,
                   "): ", std::strerror(errno));
    if (listen(listenFd, 64) != 0)
        GAZE_FATAL("gaze_serve: listen(): ", std::strerror(errno));
    setNonBlocking(listenFd);

    if (pipe(gSignalPipe) != 0)
        GAZE_FATAL("gaze_serve: pipe(): ", std::strerror(errno));
    setNonBlocking(gSignalPipe[0]);
    setNonBlocking(gSignalPipe[1]);

    int wakePipe[2];
    if (pipe(wakePipe) != 0)
        GAZE_FATAL("gaze_serve: pipe(): ", std::strerror(errno));
    setNonBlocking(wakePipe[0]);
    setNonBlocking(wakePipe[1]);

    struct sigaction sa{};
    sa.sa_handler = onShutdownSignal;
    sa.sa_flags = SA_RESTART;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    // Ignore SIGPIPE: a client that vanished mid-write is a normal
    // disconnect, handled by the write()'s EPIPE, not process death.
    struct sigaction ign{};
    ign.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ign, nullptr);

    std::unique_ptr<obs::TraceSink> trace;
    if (!cfg.obsTracePath.empty()) {
        trace = std::make_unique<obs::TraceSink>();
        obs::setGlobalTrace(trace.get());
    }

    Service service(cfg.service);
    int wakeWr = wakePipe[1];
    service.setWakeup([wakeWr] {
        char b = 'w';
        ssize_t r = write(wakeWr, &b, 1);
        (void)r;
    });

    std::fprintf(stderr,
                 "gaze_serve: listening on %s (cache %s, %u "
                 "worker(s))\n",
                 cfg.socketPath.c_str(),
                 cfg.service.cacheDir.c_str(), service.threads());
    std::fflush(stderr);

    std::map<int, Conn> conns;
    bool draining = false;

    auto beginDrain = [&] {
        if (draining)
            return;
        draining = true;
        service.beginDrain();
        if (cfg.service.verbose)
            std::fprintf(stderr, "gaze_serve: draining...\n");
    };

    auto closeConn = [&](int fd) {
        auto it = conns.find(fd);
        if (it == conns.end())
            return;
        {
            std::unique_lock<std::mutex> lock(it->second.out->mtx);
            it->second.out->open = false;
        }
        service.closeSession(it->second.client);
        close(fd);
        conns.erase(it);
    };

    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({gSignalPipe[0], POLLIN, 0});
        fds.push_back({wakePipe[0], POLLIN, 0});
        if (!draining)
            fds.push_back({listenFd, POLLIN, 0});
        for (auto &kv : conns) {
            short events = POLLIN;
            {
                std::unique_lock<std::mutex> lock(kv.second.out->mtx);
                if (!kv.second.out->data.empty())
                    events |= POLLOUT;
            }
            fds.push_back({kv.first, events, 0});
        }

        int rc = poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            GAZE_FATAL("gaze_serve: poll(): ", std::strerror(errno));
        }

        size_t idx = 0;
        if (fds[idx].revents & POLLIN) {
            drainPipe(gSignalPipe[0]);
            beginDrain();
        }
        ++idx;
        if (fds[idx].revents & POLLIN)
            drainPipe(wakePipe[0]);
        ++idx;
        if (!draining) {
            if (fds[idx].revents & POLLIN) {
                for (;;) {
                    int fd = accept(listenFd, nullptr, nullptr);
                    if (fd < 0)
                        break;
                    setNonBlocking(fd);
                    Conn conn;
                    conn.fd = fd;
                    conn.out = std::make_shared<Outbuf>();
                    std::shared_ptr<Outbuf> out = conn.out;
                    conn.client = service.openSession(
                        [out, wakeWr](const std::string &line) {
                            std::unique_lock<std::mutex> lock(
                                out->mtx);
                            if (!out->open)
                                return;
                            out->data += line;
                            out->data += '\n';
                            char b = 'w';
                            ssize_t r = write(wakeWr, &b, 1);
                            (void)r;
                        });
                    conns.emplace(fd, std::move(conn));
                }
            }
            ++idx;
        }

        // Connection I/O. Collect fds first: closeConn mutates conns.
        std::vector<int> toClose;
        for (; idx < fds.size(); ++idx) {
            auto it = conns.find(fds[idx].fd);
            if (it == conns.end())
                continue;
            Conn &conn = it->second;
            if (fds[idx].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                toClose.push_back(conn.fd);
                continue;
            }
            if (fds[idx].revents & POLLIN) {
                char buf[4096];
                bool eof = false;
                for (;;) {
                    ssize_t n = read(conn.fd, buf, sizeof(buf));
                    if (n > 0) {
                        conn.in.append(buf, size_t(n));
                        continue;
                    }
                    if (n == 0)
                        eof = true;
                    break;
                }
                size_t nl;
                while ((nl = conn.in.find('\n'))
                       != std::string::npos) {
                    std::string line = conn.in.substr(0, nl);
                    conn.in.erase(0, nl + 1);
                    if (!line.empty() && line.back() == '\r')
                        line.pop_back();
                    if (!line.empty())
                        service.handleLine(conn.client, line);
                }
                if (service.shutdownRequested())
                    beginDrain();
                if (eof) {
                    // Flush whatever is pending, then close: a client
                    // that half-closes after submitting still gets
                    // buffered events dropped — it said goodbye.
                    toClose.push_back(conn.fd);
                    continue;
                }
            }
            if (fds[idx].revents & POLLOUT) {
                std::string pending;
                {
                    std::unique_lock<std::mutex> lock(conn.out->mtx);
                    pending.swap(conn.out->data);
                }
                size_t off = 0;
                while (off < pending.size()) {
                    ssize_t n = write(conn.fd, pending.data() + off,
                                      pending.size() - off);
                    if (n <= 0)
                        break;
                    off += size_t(n);
                }
                if (off < pending.size()) {
                    std::unique_lock<std::mutex> lock(conn.out->mtx);
                    // Events appended while we wrote come after the
                    // unwritten tail, preserving order.
                    conn.out->data.insert(0, pending.substr(off));
                }
            }
        }
        for (int fd : toClose)
            closeConn(fd);

        if (draining && service.idle()) {
            bool flushed = true;
            for (auto &kv : conns) {
                std::unique_lock<std::mutex> lock(kv.second.out->mtx);
                if (!kv.second.out->data.empty())
                    flushed = false;
            }
            if (flushed)
                break;
        }
    }

    // Drained: every in-flight cell is finished and published, every
    // pending event flushed. Tear down and exit cleanly.
    std::vector<int> open;
    open.reserve(conns.size());
    for (auto &kv : conns)
        open.push_back(kv.first);
    for (int fd : open)
        closeConn(fd);
    close(listenFd);
    unlink(cfg.socketPath.c_str());
    close(gSignalPipe[0]);
    close(gSignalPipe[1]);
    close(wakePipe[0]);
    close(wakePipe[1]);

    ServiceCounters c = service.counters();
    std::fprintf(stderr,
                 "gaze_serve: drained; %llu submission(s), %llu "
                 "cell(s) executed, %llu cache hit(s), %llu dedup "
                 "hit(s)\n",
                 static_cast<unsigned long long>(c.submits),
                 static_cast<unsigned long long>(c.cellsExecuted),
                 static_cast<unsigned long long>(c.cacheHits),
                 static_cast<unsigned long long>(c.dedupHits));

    if (trace) {
        obs::setGlobalTrace(nullptr);
        trace->writeTo(cfg.obsTracePath);
    }
    return 0;
}

} // namespace serve
} // namespace gaze
