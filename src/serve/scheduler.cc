#include "serve/scheduler.hh"

#include "common/log.hh"
#include "obs/trace.hh"

namespace gaze
{
namespace serve
{

CellScheduler::CellScheduler(ResultCache &cache_,
                             std::shared_ptr<BaselineCache> baselines_,
                             const SchedulerConfig &cfg_,
                             Executor executor)
    : cache(cache_), baselines(std::move(baselines_)), cfg(cfg_),
      exec(std::move(executor)),
      // SIZE_MAX jobs: a daemon's pool is sized for the host, not for
      // any one batch — it stays warm across submissions.
      workerCount(resolvePoolThreads(cfg_.threads, SIZE_MAX))
{
    GAZE_ASSERT(baselines, "scheduler needs a baseline cache");
    if (!exec)
        exec = [this](const RunConfig &run, const CampaignJob &job) {
            return executeCampaignJob(run, job, baselines);
        };
    pool = std::make_unique<ThreadPool>(workerCount);
}

CellScheduler::~CellScheduler()
{
    drainAll();
    pool.reset();
}

CellScheduler::BatchOutcome
CellScheduler::submitBatch(const RunConfig &run,
                           const std::vector<CampaignJob> &jobs,
                           int64_t priority, const CellDone &onDone)
{
    enum class Source
    {
        Cache,
        Shared,
        Enqueued
    };

    BatchOutcome out;
    std::unique_lock<std::mutex> lock(mtx);

    // Classify without mutating first, so admission is all-or-nothing:
    // a rejected batch leaves no queued debris behind.
    std::vector<Source> source(jobs.size());
    std::vector<CellRecord> hit(jobs.size());
    uint64_t wouldEnqueue = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (tasks.count(jobs[i].hash)) {
            source[i] = Source::Shared;
            continue;
        }
        std::string why;
        if (cache.lookup(jobs[i].hash, jobs[i].key, &hit[i], &why)) {
            source[i] = Source::Cache;
            continue;
        }
        if (!why.empty())
            GAZE_WARN(why);
        source[i] = Source::Enqueued;
        ++wouldEnqueue;
    }
    if (tasks.size() + wouldEnqueue > cfg.maxQueuedCells) {
        out.reason = "queue full: " + std::to_string(wouldEnqueue)
                     + " new cell(s) would exceed the "
                     + std::to_string(cfg.maxQueuedCells)
                     + "-cell limit (" + std::to_string(tasks.size())
                     + " in flight); retry later or shrink the spec";
        return out;
    }

    out.accepted = true;
    obs::TraceSink *sink = obs::globalTrace();
    for (size_t i = 0; i < jobs.size(); ++i) {
        switch (source[i]) {
          case Source::Cache: {
            ++out.cacheHits;
            ++statsData.cacheHits;
            out.cachedNow.emplace_back(i, std::move(hit[i]));
            break;
          }
          case Source::Shared: {
            ++out.shared;
            ++statsData.dedupHits;
            auto &t = tasks.at(jobs[i].hash);
            t->waiters.push_back(onDone);
            // A later, more urgent submission promotes the shared
            // cell (only the queued copy can still be reordered).
            if (priority > t->priority) {
                if (!t->running) {
                    ready.erase({-t->priority, t->seq, jobs[i].hash});
                    ready.insert({-priority, t->seq, jobs[i].hash});
                }
                t->priority = priority;
            }
            break;
          }
          case Source::Enqueued: {
            ++out.enqueued;
            auto t = std::make_shared<Task>();
            t->seq = nextSeq++;
            t->priority = priority;
            t->run = run;
            t->job = jobs[i];
            t->waiters.push_back(onDone);
            if (sink)
                t->enqueueUs = sink->hostNowUs();
            ready.insert({-priority, t->seq, jobs[i].hash});
            tasks.emplace(jobs[i].hash, std::move(t));
            break;
          }
        }
    }
    dispatchLocked();
    return out;
}

void
CellScheduler::dispatchLocked()
{
    // Keep exactly workerCount cells in the pool: handing the pool
    // more would freeze their relative order before a higher-priority
    // submission had a chance to overtake.
    while (runningCount < workerCount && !ready.empty()) {
        auto it = ready.begin();
        uint64_t hash = std::get<2>(*it);
        ready.erase(it);
        std::shared_ptr<Task> t = tasks.at(hash);
        t->running = true;
        ++runningCount;
        execLog.push_back(t->job.label);
        pool->submit([this, t, hash] { runTask(t, hash); });
    }
}

void
CellScheduler::runTask(std::shared_ptr<Task> t, uint64_t hash)
{
    obs::TraceSink *sink = obs::globalTrace();
    uint64_t startUs = sink ? sink->hostNowUs() : 0;

    CellRecord rec;
    bool ok = true;
    std::string error;
    try {
        rec = exec(t->run, t->job);
        rec.key = t->job.key;
        cache.store(hash, rec);
    } catch (const std::exception &e) {
        ok = false;
        error = e.what();
    } catch (...) {
        ok = false;
        error = "unknown execution error";
    }

    if (sink) {
        // Queue-wait + execute, sequential on a per-cell track: spans
        // of one cell never overlap however workers interleave, so
        // validate_obs.py's nesting contract holds by construction.
        uint32_t track =
            sink->allocTrack(obs::kPidHost, "serve " + t->job.label);
        if (startUs >= t->enqueueUs)
            sink->span(obs::kPidHost, track, "queued", t->enqueueUs,
                       startUs - t->enqueueUs);
        uint64_t endUs = sink->hostNowUs();
        sink->span(obs::kPidHost, track, "execute", startUs,
                   endUs >= startUs ? endUs - startUs : 0);
    }

    std::vector<CellDone> waiters;
    {
        std::unique_lock<std::mutex> lock(mtx);
        // Waiters that attached while we simulated are all here: a
        // task leaves `tasks` only now, and later submissions find
        // the published record in the result cache instead.
        waiters = std::move(t->waiters);
        tasks.erase(hash);
        --runningCount;
        if (ok)
            ++statsData.executed;
        else
            ++statsData.failed;
        dispatchLocked();
        if (tasks.empty())
            idleCv.notify_all();
    }
    for (const auto &w : waiters)
        if (w)
            w(t->job, rec, ok, error);
}

void
CellScheduler::drainAll()
{
    std::unique_lock<std::mutex> lock(mtx);
    idleCv.wait(lock, [this] { return tasks.empty(); });
}

uint64_t
CellScheduler::inFlight() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return tasks.size();
}

SchedulerStats
CellScheduler::stats() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return statsData;
}

std::vector<std::string>
CellScheduler::executionLog() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return execLog;
}

} // namespace serve
} // namespace gaze
