/**
 * @file
 * Thin scripting client for the gaze_serve daemon: connect to the
 * Unix socket, send one request line, stream events until the answer
 * arrives. Exit codes are script-friendly: 0 success, 3 rejected,
 * 4 submission failed, 5 protocol/connection trouble.
 */

#pragma once

#include <cstdint>
#include <string>

namespace gaze
{
namespace serve
{

/**
 * Submit the spec file at @p specPath and wait for the report. The
 * report JSON is written to @p outPath (default: BENCH_<name>.json in
 * the cwd), the CSV to @p csvPath when non-empty. Progress events go
 * to stderr unless @p quiet.
 */
int submitToDaemon(const std::string &socketPath,
                   const std::string &specPath, int64_t priority,
                   const std::string &outPath,
                   const std::string &csvPath, bool quiet);

/** Print the daemon's one-line status JSON to stdout. */
int queryStatus(const std::string &socketPath);

/** Ask the daemon to drain and exit; returns when acknowledged. */
int requestShutdown(const std::string &socketPath);

} // namespace serve
} // namespace gaze
