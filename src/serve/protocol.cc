#include "serve/protocol.hh"

#include <cmath>

#include "harness/export.hh"

namespace gaze
{
namespace serve
{

void
writeJsonValue(JsonWriter &j, const JsonValue &v)
{
    switch (v.type()) {
      case JsonValue::Type::Null:
        j.nullValue();
        break;
      case JsonValue::Type::Bool:
        j.value(v.asBool());
        break;
      case JsonValue::Type::Number:
        j.value(v.asNumber());
        break;
      case JsonValue::Type::String:
        j.value(v.asString());
        break;
      case JsonValue::Type::Array:
        j.beginArray();
        for (const auto &item : v.items())
            writeJsonValue(j, item);
        j.endArray();
        break;
      case JsonValue::Type::Object:
        j.beginObject();
        for (const auto &member : v.members()) {
            j.key(member.first);
            writeJsonValue(j, member.second);
        }
        j.endObject();
        break;
    }
}

bool
parseRequest(const std::string &line, Request *out, std::string *why)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(line, &doc, &err)) {
        *why = "malformed request: " + err;
        return false;
    }
    if (!doc.isObject()) {
        *why = "malformed request: expected a JSON object";
        return false;
    }

    const JsonValue *op = doc.find("op");
    if (!op || !op->isString()) {
        *why = "malformed request: missing string \"op\"";
        return false;
    }

    Request req;
    bool haveSpec = false;
    for (const auto &member : doc.members()) {
        const std::string &key = member.first;
        if (key == "op")
            continue;
        if (key == "spec") {
            req.spec = member.second;
            haveSpec = true;
        } else if (key == "priority") {
            const JsonValue &p = member.second;
            double n = p.isNumber() ? p.asNumber() : std::nan("");
            if (!(n == std::floor(n))
                || !(n >= double(-kMaxPriority))
                || !(n <= double(kMaxPriority))) {
                *why = "malformed request: \"priority\" must be an "
                       "integer in [-1000000, 1000000]";
                return false;
            }
            req.priority = static_cast<int64_t>(n);
        } else {
            *why = "malformed request: unknown key \"" + key + "\"";
            return false;
        }
    }

    const std::string &name = op->asString();
    if (name == "submit") {
        req.op = Request::Op::Submit;
        if (!haveSpec) {
            *why = "malformed request: submit needs a \"spec\" object";
            return false;
        }
    } else if (name == "status") {
        req.op = Request::Op::Status;
    } else if (name == "shutdown") {
        req.op = Request::Op::Shutdown;
    } else {
        *why = "malformed request: unknown op \"" + name + "\"";
        return false;
    }
    if (req.op != Request::Op::Submit && haveSpec) {
        *why = "malformed request: \"spec\" only applies to submit";
        return false;
    }
    *out = std::move(req);
    return true;
}

std::string
encodeSubmit(const JsonValue &spec, int64_t priority)
{
    JsonWriter j;
    j.beginObject();
    j.field("op", "submit");
    // JsonWriter has no signed-64 overload; int covers the clamped
    // priority range exactly.
    j.field("priority", static_cast<int>(priority));
    j.key("spec");
    writeJsonValue(j, spec);
    j.endObject();
    return j.str();
}

std::string
encodeStatus()
{
    JsonWriter j;
    j.beginObject();
    j.field("op", "status");
    j.endObject();
    return j.str();
}

std::string
encodeShutdown()
{
    JsonWriter j;
    j.beginObject();
    j.field("op", "shutdown");
    j.endObject();
    return j.str();
}

std::string
eventAccepted(uint64_t submission, uint64_t cells, uint64_t cached,
              uint64_t shared, uint64_t enqueued)
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "accepted");
    j.field("submission", submission);
    j.field("cells", cells);
    j.field("cached", cached);
    j.field("shared", shared);
    j.field("enqueued", enqueued);
    j.endObject();
    return j.str();
}

std::string
eventRejected(const std::string &reason)
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "rejected");
    j.field("reason", reason);
    j.endObject();
    return j.str();
}

std::string
eventProgress(uint64_t submission, uint64_t done, uint64_t total,
              const std::string &label, double seconds)
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "progress");
    j.field("submission", submission);
    j.field("done", done);
    j.field("total", total);
    j.field("cell", label);
    j.field("seconds", seconds);
    j.endObject();
    return j.str();
}

std::string
eventReport(uint64_t submission, const std::string &name,
            const std::string &reportJson, const std::string &csv)
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "report");
    j.field("submission", submission);
    j.field("name", name);
    j.field("report", reportJson);
    j.field("csv", csv);
    j.endObject();
    return j.str();
}

std::string
eventError(uint64_t submission, const std::string &message)
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "error");
    j.field("submission", submission);
    j.field("message", message);
    j.endObject();
    return j.str();
}

std::string
eventBye()
{
    JsonWriter j;
    j.beginObject();
    j.field("event", "bye");
    j.endObject();
    return j.str();
}

} // namespace serve
} // namespace gaze
