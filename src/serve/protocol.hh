/**
 * @file
 * Wire protocol of the gaze_serve daemon: newline-delimited JSON over
 * a local stream socket, one complete document per line in either
 * direction, parsed with campaign/json and emitted with JsonWriter.
 *
 * Requests (client -> server):
 *   {"op":"submit","priority":N,"spec":{...campaign spec...}}
 *   {"op":"status"}
 *   {"op":"shutdown"}
 *
 * Events (server -> client), keyed by "event":
 *   accepted  submission id + cells/cached/shared/enqueued counts
 *   rejected  admission or validation refusal, with a reason
 *   progress  one finished cell: done/total + label + seconds
 *   report    the finished submission's report + CSV documents
 *   status    live service counters + per-submission progress
 *   error     a submission failed (cell simulation threw)
 *   bye       shutdown acknowledged; the daemon drains and exits
 */

#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.hh"

namespace gaze
{

class JsonWriter;

namespace serve
{

/** One parsed client request line. */
struct Request
{
    enum class Op
    {
        Submit,
        Status,
        Shutdown
    };

    Op op = Op::Status;
    JsonValue spec;       ///< Submit only: the inline spec document
    int64_t priority = 0; ///< Submit only: higher schedules earlier
};

/** Highest priority a submission may request (and the negated floor). */
constexpr int64_t kMaxPriority = 1'000'000;

/**
 * Parse one request line. Returns false with a client-facing reason on
 * anything malformed — the daemon must never die on client input.
 */
bool parseRequest(const std::string &line, Request *out,
                  std::string *why);

/**
 * Re-serialize @p v compactly (single line, JsonWriter escaping) into
 * an already-positioned writer slot. Embedding a client's spec file —
 * which may span many lines — into a one-line request needs this.
 */
void writeJsonValue(JsonWriter &j, const JsonValue &v);

// ----------------------------------------- requests (client side)

std::string encodeSubmit(const JsonValue &spec, int64_t priority);
std::string encodeStatus();
std::string encodeShutdown();

// ------------------------------------------- events (server side)

std::string eventAccepted(uint64_t submission, uint64_t cells,
                          uint64_t cached, uint64_t shared,
                          uint64_t enqueued);
std::string eventRejected(const std::string &reason);
std::string eventProgress(uint64_t submission, uint64_t done,
                          uint64_t total, const std::string &label,
                          double seconds);
std::string eventReport(uint64_t submission, const std::string &name,
                        const std::string &reportJson,
                        const std::string &csv);
std::string eventError(uint64_t submission,
                       const std::string &message);
std::string eventBye();

} // namespace serve
} // namespace gaze
