#include "serve/bench.hh"

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <vector>

#include "campaign/json.hh"
#include "common/log.hh"
#include "driver/thread_pool.hh"
#include "harness/export.hh"
#include "harness/wallclock.hh"
#include "serve/service.hh"
#include "workloads/suites.hh"

namespace gaze
{
namespace serve
{
namespace
{

JsonValue
benchSpec()
{
    // Small but real: two schemes x three workloads -> 6 cells + 3
    // baselines. Phases are fixed (not scale-derived) so the recorded
    // throughput is comparable across hosts at any GAZE_SIM_SCALE.
    std::vector<std::pair<std::string, JsonValue>> doc;
    doc.emplace_back("name", JsonValue::makeString("serve_bench"));
    doc.emplace_back(
        "prefetchers",
        JsonValue::makeArray({JsonValue::makeString("ip_stride"),
                              JsonValue::makeString("gaze")}));
    doc.emplace_back(
        "workloads",
        JsonValue::makeArray({JsonValue::makeString("leslie3d"),
                              JsonValue::makeString("mcf"),
                              JsonValue::makeString("canneal")}));
    doc.emplace_back("warmup", JsonValue::makeNumber(2000));
    doc.emplace_back("sim", JsonValue::makeNumber(8000));
    return JsonValue::makeObject(std::move(doc));
}

/** One session that remembers whether the report landed. */
struct BenchSession
{
    std::mutex mtx;
    uint64_t reports = 0;
    uint64_t errors = 0;
};

} // namespace

int
runServeBench(const BenchOptions &opt)
{
    std::string cacheDir = opt.cacheDir;
    bool tempCache = cacheDir.empty();
    if (tempCache)
        cacheDir = "serve_bench_cache";
    // Cold means cold: the throughput number must never be poisoned
    // by a leftover cache from a previous run.
    std::filesystem::remove_all(cacheDir);

    ServiceConfig cfg;
    cfg.cacheDir = cacheDir;
    cfg.threads = opt.threads;
    Service service(cfg);

    BenchSession session;
    uint64_t client = service.openSession([&](const std::string &line) {
        std::unique_lock<std::mutex> lock(session.mtx);
        if (line.find("\"event\":\"report\"") != std::string::npos)
            ++session.reports;
        if (line.find("\"event\":\"error\"") != std::string::npos
            || line.find("\"event\":\"rejected\"")
                   != std::string::npos)
            ++session.errors;
    });

    JsonValue spec = benchSpec();
    std::string submitLine = encodeSubmit(spec, 0);

    auto submitAndDrain = [&] {
        WallTimer timer;
        service.handleLine(client, submitLine);
        service.drain();
        return timer.seconds();
    };

    double coldSeconds = submitAndDrain();
    SchedulerStats afterCold = service.schedulerStats();
    uint64_t jobs = afterCold.executed;
    GAZE_ASSERT(jobs > 0, "bench executed no cells");
    GAZE_ASSERT(afterCold.failed == 0, "bench cells failed");

    // Warm phase, best of 3: every job must come straight from the
    // result cache — zero new simulations is the contract.
    double warmSeconds = -1.0;
    for (int i = 0; i < 3; ++i) {
        double s = submitAndDrain();
        if (warmSeconds < 0.0 || s < warmSeconds)
            warmSeconds = s;
    }
    SchedulerStats afterWarm = service.schedulerStats();
    GAZE_ASSERT(afterWarm.executed == jobs,
                "warm submissions re-simulated cached cells");
    {
        std::unique_lock<std::mutex> lock(session.mtx);
        GAZE_ASSERT(session.errors == 0, "bench submissions failed");
        GAZE_ASSERT(session.reports == 4,
                    "expected 4 reports, got ", session.reports);
    }
    service.closeSession(client);

    uint32_t hostCpus = resolvePoolThreads(0, SIZE_MAX);
    double coldRate = double(jobs) / coldSeconds;
    double warmRate =
        warmSeconds > 0.0 ? double(jobs) / warmSeconds : 0.0;

    JsonWriter j;
    j.beginObject();
    j.field("experiment", "serve");
    j.field("scale", simScale());
    j.field("host_cpus", uint64_t(hostCpus));
    j.field("threads", uint64_t(service.threads()));
    j.field("jobs", jobs);
    j.key("cold").beginObject();
    j.field("seconds", coldSeconds);
    j.field("cells_per_sec", coldRate);
    j.field("executed", jobs);
    j.endObject();
    j.key("warm").beginObject();
    j.field("seconds", warmSeconds);
    j.field("cells_per_sec", warmRate);
    j.field("executed", uint64_t(0));
    j.field("cache_hits", afterWarm.cacheHits);
    j.endObject();
    j.endObject();

    std::printf("serve bench: %llu job(s), cold %.2f cells/s, warm "
                "%.0f cells/s (%u worker(s))\n",
                static_cast<unsigned long long>(jobs), coldRate,
                warmRate, service.threads());

    JsonExport doc("serve", j.str());
    std::string path =
        opt.outPath.empty() ? doc.write() : doc.writeTo(opt.outPath);
    std::printf("results: %s\n", path.c_str());

    if (tempCache)
        std::filesystem::remove_all(cacheDir);
    return 0;
}

} // namespace serve
} // namespace gaze
