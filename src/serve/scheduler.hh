/**
 * @file
 * The daemon's cell scheduler: a priority work-queue over campaign
 * jobs, deduplicating by cell hash at every stage. A submitted batch
 * classifies each job as a result-cache hit (answered synchronously),
 * an attach to an identical in-flight cell (the simulation is shared;
 * every attached submission gets the completion callback), or a fresh
 * enqueue — so each distinct cell simulates at most once, ever,
 * however many clients ask for it.
 *
 * Scheduling is deterministic for a fixed arrival sequence: ready
 * cells start in (priority desc, arrival seq asc) order on a
 * fixed-size worker pool that stays warm for the daemon's lifetime.
 * Attaching a higher-priority submission to a queued cell promotes it.
 * Determinism of *results* needs none of this — reports are pure
 * functions of the result cache — but a predictable start order is
 * what makes priorities testable and latency explainable.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/engine.hh"
#include "driver/thread_pool.hh"
#include "harness/runner.hh"

namespace gaze
{
namespace serve
{

struct SchedulerConfig
{
    /** Simulation workers (0 = hardware concurrency). */
    uint32_t threads = 0;

    /** Admission cap: queued + running cells across all clients. */
    uint64_t maxQueuedCells = 4096;
};

struct SchedulerStats
{
    uint64_t executed = 0;  ///< simulations run (and published)
    uint64_t cacheHits = 0; ///< jobs answered from the result cache
    uint64_t dedupHits = 0; ///< jobs attached to an in-flight cell
    uint64_t failed = 0;    ///< simulations that threw
};

class CellScheduler
{
  public:
    /**
     * Per-job completion callback, invoked on a worker thread with no
     * scheduler lock held, once per requested job that was not a
     * cache hit at submit time. @p ok false means the simulation
     * threw; @p error carries the message and @p rec is empty.
     */
    using CellDone = std::function<void(const CampaignJob &job,
                                        const CellRecord &rec, bool ok,
                                        const std::string &error)>;

    /**
     * Test seam: how one job is simulated. The default executor is
     * executeCampaignJob with the shared baseline cache; the result is
     * always published to the result cache by the scheduler itself.
     */
    using Executor = std::function<CellRecord(const RunConfig &,
                                              const CampaignJob &)>;

    CellScheduler(ResultCache &cache,
                  std::shared_ptr<BaselineCache> baselines,
                  const SchedulerConfig &cfg, Executor executor = {});
    ~CellScheduler();

    CellScheduler(const CellScheduler &) = delete;
    CellScheduler &operator=(const CellScheduler &) = delete;

    /** What submitBatch decided, per batch and per job. */
    struct BatchOutcome
    {
        bool accepted = false;
        std::string reason; ///< set when rejected

        uint64_t cacheHits = 0;
        uint64_t shared = 0;
        uint64_t enqueued = 0;

        /** Cache-hit jobs resolved synchronously at submit time:
            (index into the submitted batch, its record). */
        std::vector<std::pair<size_t, CellRecord>> cachedNow;
    };

    /**
     * Admit one submission's @p jobs all-or-nothing: if the fresh
     * cells would push queued+running past maxQueuedCells the whole
     * batch is rejected with a reason and nothing is enqueued.
     * @p onDone fires later for every non-cache-hit job.
     */
    BatchOutcome submitBatch(const RunConfig &run,
                             const std::vector<CampaignJob> &jobs,
                             int64_t priority, const CellDone &onDone);

    /** Block until no queued or running cells remain. */
    void drainAll();

    uint64_t inFlight() const; ///< queued + running cells
    uint32_t threads() const { return workerCount; }
    SchedulerStats stats() const;

    /** Cell labels in execution-start order (tests + diagnostics). */
    std::vector<std::string> executionLog() const;

  private:
    struct Task
    {
        uint64_t seq = 0;     ///< arrival order (admission time)
        int64_t priority = 0; ///< max over attached submissions
        RunConfig run;
        CampaignJob job;
        bool running = false;
        std::vector<CellDone> waiters;
        uint64_t enqueueUs = 0; ///< obs: host time when queued
    };

    void dispatchLocked();
    void runTask(std::shared_ptr<Task> task, uint64_t hash);

    ResultCache &cache;
    std::shared_ptr<BaselineCache> baselines;
    SchedulerConfig cfg;
    Executor exec;
    uint32_t workerCount;

    mutable std::mutex mtx;
    std::condition_variable idleCv;
    uint64_t nextSeq = 1;
    uint32_t runningCount = 0;
    std::map<uint64_t, std::shared_ptr<Task>> tasks; ///< by cell hash

    /** Ready order: (-priority, arrival seq, cell hash). */
    std::set<std::tuple<int64_t, uint64_t, uint64_t>> ready;

    SchedulerStats statsData;
    std::vector<std::string> execLog;

    /** Created last, destroyed first: workers must die before state. */
    std::unique_ptr<ThreadPool> pool;
};

} // namespace serve
} // namespace gaze
