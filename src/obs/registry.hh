/**
 * @file
 * Deterministic hierarchical counter registry. Subsystems keep
 * incrementing their own stat fields directly on the hot path (no
 * indirection, no perturbation); the registry merely *binds* names to
 * those fields after construction, so readers — the interval sampler,
 * --obs-timeline export — can snapshot every counter by name.
 *
 * Names are hierarchical dotted paths, `<component>.<counter>`:
 * `core0.instructions`, `l1d0.loadMiss`, `llc.pfFilled`,
 * `dram.busBusyCycles`, `engine.flips`. Export order is always
 * name-sorted, so two runs (or two engines) produce byte-identical
 * documents for identical counter values.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gaze
{

class JsonWriter;

namespace obs
{

/** Name -> counter bindings with deterministic, name-sorted readout. */
class Registry
{
  public:
    /** Bind @p name to a live counter field (not owned; must outlive). */
    void bindCounter(const std::string &name, const uint64_t *counter);

    /**
     * Bind @p name to a computed gauge (e.g. a queue occupancy).
     * Gauges must be pure reads of simulator state.
     */
    void bindGauge(const std::string &name, std::function<uint64_t()> fn);

    /**
     * Freeze the registry: sort by name, fatal on duplicates. Binding
     * after seal(), or reading before it, is fatal.
     */
    void seal();

    bool sealed() const { return isSealed; }
    size_t size() const { return entries.size(); }

    /** i-th name in sorted order (valid after seal()). */
    const std::string &nameAt(size_t i) const;

    /** Current value of the i-th counter/gauge (valid after seal()). */
    uint64_t valueAt(size_t i) const;

    /** Current values of all entries, in name order. */
    std::vector<uint64_t> snapshot() const;

    /** {"name": value, ...} object in name order. */
    void exportJson(JsonWriter &j) const;

  private:
    struct Entry
    {
        std::string name;
        const uint64_t *counter = nullptr;  ///< null for gauges
        std::function<uint64_t()> gauge;
    };

    std::vector<Entry> entries;
    bool isSealed = false;
};

} // namespace obs
} // namespace gaze
