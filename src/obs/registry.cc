#include "obs/registry.hh"

#include <algorithm>

#include "common/log.hh"
#include "harness/export.hh"

namespace gaze
{
namespace obs
{

void
Registry::bindCounter(const std::string &name, const uint64_t *counter)
{
    GAZE_ASSERT(!isSealed, "obs registry sealed; cannot bind '", name, "'");
    GAZE_ASSERT(counter, "obs registry: null counter for '", name, "'");
    entries.push_back(Entry{name, counter, {}});
}

void
Registry::bindGauge(const std::string &name, std::function<uint64_t()> fn)
{
    GAZE_ASSERT(!isSealed, "obs registry sealed; cannot bind '", name, "'");
    GAZE_ASSERT(fn, "obs registry: empty gauge for '", name, "'");
    entries.push_back(Entry{name, nullptr, std::move(fn)});
}

void
Registry::seal()
{
    GAZE_ASSERT(!isSealed, "obs registry sealed twice");
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.name < b.name; });
    for (size_t i = 1; i < entries.size(); ++i)
        GAZE_ASSERT(entries[i - 1].name != entries[i].name,
                    "obs registry: duplicate counter name '",
                    entries[i].name, "'");
    isSealed = true;
}

const std::string &
Registry::nameAt(size_t i) const
{
    GAZE_ASSERT(isSealed, "obs registry read before seal()");
    return entries.at(i).name;
}

uint64_t
Registry::valueAt(size_t i) const
{
    GAZE_ASSERT(isSealed, "obs registry read before seal()");
    const Entry &e = entries.at(i);
    return e.counter ? *e.counter : e.gauge();
}

std::vector<uint64_t>
Registry::snapshot() const
{
    std::vector<uint64_t> values(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        values[i] = valueAt(i);
    return values;
}

void
Registry::exportJson(JsonWriter &j) const
{
    GAZE_ASSERT(isSealed, "obs registry exported before seal()");
    j.beginObject();
    for (size_t i = 0; i < entries.size(); ++i)
        j.field(entries[i].name, valueAt(i));
    j.endObject();
}

} // namespace obs
} // namespace gaze
