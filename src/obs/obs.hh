/**
 * @file
 * Observability master switch. The obs subsystem (prefetch lifecycle
 * attribution, the stats registry + interval sampler, and the Chrome
 * trace exporter) instruments simulator hot paths; every such hook is
 * wrapped in GAZE_OBS_HOOK so a -DGAZE_OBS=OFF build compiles them
 * out entirely and pays nothing.
 *
 * Obs is observation only, never perturbation: with the hooks
 * compiled in, all architectural metrics are bitwise identical
 * whether obs outputs are requested or not, across every engine and
 * thread count (test_engine_diff asserts this). Hooks therefore must
 * only read simulator state or bump obs-private counters — never
 * schedule work, touch queues, or force wake-ups.
 */

#pragma once

#ifdef GAZE_OBS_ENABLED
#define GAZE_OBS_ON 1
#else
#define GAZE_OBS_ON 0
#endif

#if GAZE_OBS_ON
/** Emit @p ... only when observability is compiled in. */
#define GAZE_OBS_HOOK(...)                                                 \
    do {                                                                   \
        __VA_ARGS__                                                        \
    } while (0)
#else
#define GAZE_OBS_HOOK(...)                                                 \
    do {                                                                   \
    } while (0)
#endif
