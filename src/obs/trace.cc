#include "obs/trace.hh"

#include <fstream>

#include "common/log.hh"
#include "harness/export.hh"

namespace gaze
{
namespace obs
{

namespace
{

TraceSink *globalSink = nullptr;

} // namespace

TraceSink *
globalTrace()
{
    return globalSink;
}

void
setGlobalTrace(TraceSink *sink)
{
    globalSink = sink;
}

TraceSink::TraceSink() : start(wallNow())
{
    // Name the two time-domain "processes" up front so the viewer
    // labels them even for traces with a single span.
    events.push_back(Event{'M', kPidSim, 0, 0, 0, 0.0,
                           "simulated time (1us = 1 cycle)"});
    events.push_back(Event{'M', kPidHost, 0, 0, 0, 0.0, "host time"});
}

uint32_t
TraceSink::allocTrack(uint32_t pid, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mtx);
    uint32_t tid = nextTid++;
    events.push_back(Event{'m', pid, tid, 0, 0, 0.0, label});
    return tid;
}

uint32_t
TraceSink::hostThreadTrack()
{
    // One track per (sink, OS thread): RAII HostSpans on one thread
    // are strictly nested, which is the per-(pid,tid) stack
    // discipline validate_obs.py checks.
    struct Cached
    {
        const TraceSink *sink = nullptr;
        uint32_t tid = 0;
    };
    static thread_local Cached cached;
    if (cached.sink != this) {
        cached.sink = this;
        cached.tid = allocTrack(kPidHost, "host worker");
    }
    return cached.tid;
}

void
TraceSink::span(uint32_t pid, uint32_t tid, const std::string &name,
                uint64_t ts, uint64_t dur)
{
    std::lock_guard<std::mutex> lock(mtx);
    events.push_back(Event{'X', pid, tid, ts, dur, 0.0, name});
}

void
TraceSink::counter(uint32_t pid, uint32_t tid, const std::string &name,
                   uint64_t ts, double value)
{
    std::lock_guard<std::mutex> lock(mtx);
    events.push_back(Event{'C', pid, tid, ts, 0, value, name});
}

uint64_t
TraceSink::hostNowUs() const
{
    return static_cast<uint64_t>(wallSecondsSince(start) * 1e6);
}

size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return events.size();
}

std::string
TraceSink::toJson() const
{
    std::lock_guard<std::mutex> lock(mtx);
    JsonWriter j;
    j.beginObject();
    j.key("traceEvents").beginArray();
    for (const Event &e : events) {
        j.beginObject();
        switch (e.phase) {
          case 'M': // process_name metadata
          case 'm': // thread_name metadata
            j.field("ph", "M");
            j.field("name", e.phase == 'M' ? "process_name"
                                           : "thread_name");
            j.field("pid", uint64_t(e.pid));
            j.field("tid", uint64_t(e.tid));
            j.key("args").beginObject().field("name", e.name).endObject();
            break;
          case 'X':
            j.field("ph", "X");
            j.field("name", e.name);
            j.field("pid", uint64_t(e.pid));
            j.field("tid", uint64_t(e.tid));
            j.field("ts", e.ts);
            j.field("dur", e.dur);
            break;
          case 'C':
            j.field("ph", "C");
            j.field("name", e.name);
            j.field("pid", uint64_t(e.pid));
            j.field("tid", uint64_t(e.tid));
            j.field("ts", e.ts);
            j.key("args").beginObject().field("value", e.value)
                .endObject();
            break;
          default:
            GAZE_PANIC("unknown trace event phase");
        }
        j.endObject();
    }
    j.endArray();
    j.field("displayTimeUnit", "ms");
    j.endObject();
    return j.str();
}

void
TraceSink::writeTo(const std::string &path) const
{
    std::string text = toJson();
    text += '\n';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        GAZE_FATAL("cannot create obs trace file '", path, "'");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out)
        GAZE_FATAL("write failed on obs trace file '", path, "'");
}

} // namespace obs
} // namespace gaze
