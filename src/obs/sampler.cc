#include "obs/sampler.hh"

#include "common/log.hh"
#include "harness/export.hh"

namespace gaze
{
namespace obs
{

std::string
SampleSeries::toCsv() const
{
    std::string text = "cycle";
    for (const auto &n : names) {
        text += ',';
        text += n;
    }
    text += '\n';
    for (const auto &row : rows) {
        text += std::to_string(row.cycle);
        for (uint64_t v : row.values) {
            text += ',';
            text += std::to_string(v);
        }
        text += '\n';
    }
    return text;
}

void
SampleSeries::exportJson(JsonWriter &j) const
{
    j.beginObject();
    j.field("interval", interval);
    j.key("counters").beginArray();
    for (const auto &n : names)
        j.value(n);
    j.endArray();
    j.key("samples").beginArray();
    for (const auto &row : rows) {
        j.beginArray();
        j.value(uint64_t(row.cycle));
        for (uint64_t v : row.values)
            j.value(v);
        j.endArray();
    }
    j.endArray();
    j.endObject();
}

IntervalSampler::IntervalSampler(const Registry *registry,
                                 uint64_t interval_)
    : reg(registry), interval(interval_), nextBoundary(interval_)
{
    GAZE_ASSERT(reg && reg->sealed(),
                "interval sampler needs a sealed registry");
    GAZE_ASSERT(interval > 0, "interval sampler needs interval > 0");
    out.interval = interval;
    out.names.reserve(reg->size());
    for (size_t i = 0; i < reg->size(); ++i)
        out.names.push_back(reg->nameAt(i));
}

void
IntervalSampler::emitBoundary()
{
    out.rows.push_back(Sample{nextBoundary, reg->snapshot()});
    nextBoundary += interval;
}

} // namespace obs
} // namespace gaze
