/**
 * @file
 * Interval sampler: snapshots every registry counter at exact epoch
 * boundaries (cycle N, 2N, 3N, ...) of *simulated* time, building the
 * --obs-timeline time series (IPC, miss rates, queue occupancies,
 * engine flips — whatever the registry binds).
 *
 * Exactness without perturbation: the engine calls advanceTo(c)
 * immediately before executing cycle c. Every still-pending boundary
 * b < c lies in a stretch where no cycle after the previously
 * executed one has run — those cycles were idle (skipped or simply
 * not yet reached) — so the counter state *at* b is exactly the
 * current counter state, and the sampler can emit b's row late
 * without ever forcing the engine to wake at b. This is the same
 * lazy-catch-up argument Core::catchUpStallCounters uses, which is
 * why sampler-on runs are bitwise identical to sampler-off runs on
 * every engine (test_engine_diff / test_obs assert it).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/registry.hh"

namespace gaze
{
namespace obs
{

/** One emitted epoch boundary: registry values at cycle `cycle`. */
struct Sample
{
    Cycle cycle = 0;
    std::vector<uint64_t> values; ///< registry order (name-sorted)
};

/** The rows a finished run hands back to its driver for export. */
struct SampleSeries
{
    uint64_t interval = 0;
    std::vector<std::string> names; ///< column names, sorted
    std::vector<Sample> rows;

    bool empty() const { return rows.empty(); }

    /** "cycle,<name>,..." header plus one row per boundary. */
    std::string toCsv() const;

    /** {"interval":N,"counters":[...],"samples":[[cycle,v...],...]} */
    void exportJson(JsonWriter &j) const;
};

class IntervalSampler
{
  public:
    /**
     * @param registry sealed registry to snapshot (not owned).
     * @param interval epoch length in cycles (> 0).
     */
    IntervalSampler(const Registry *registry, uint64_t interval);

    /**
     * Attach point: skip every boundary at or before @p cycle. The
     * runner attaches the sampler after warmup + resetStats, so the
     * series must begin at the first boundary of *measured* time, not
     * replay warmup-era boundaries with freshly-reset counters.
     */
    void
    startAt(Cycle cycle)
    {
        nextBoundary = (cycle / interval + 1) * interval;
    }

    /**
     * The engine is about to execute cycle @p cycle: emit every
     * pending boundary strictly before it.
     */
    void
    advanceTo(Cycle cycle)
    {
        while (nextBoundary < cycle)
            emitBoundary();
    }

    /** Run ended with the clock at @p final_cycle: flush boundaries. */
    void
    finish(Cycle final_cycle)
    {
        while (nextBoundary <= final_cycle)
            emitBoundary();
    }

    const SampleSeries &series() const { return out; }
    SampleSeries takeSeries() { return std::move(out); }

  private:
    void emitBoundary();

    const Registry *reg;
    uint64_t interval;
    Cycle nextBoundary;
    SampleSeries out;
};

} // namespace obs
} // namespace gaze
