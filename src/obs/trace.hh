/**
 * @file
 * Chrome-trace / Perfetto JSON exporter (--obs-trace). A TraceSink
 * collects complete-event spans on two process tracks:
 *
 *  - pid 1, "simulated time": ts/dur are *cycles* (read them as "1 us
 *    = 1 cycle" in the viewer). Engine stints and flips, per-core
 *    measured activity, DRAM utilization counter samples.
 *  - pid 2, "host time": ts/dur are real microseconds since the sink
 *    was created (via harness/wallclock, the sanctioned host-clock
 *    shim). Campaign cells, shard workers, baseline-cache waits.
 *
 * The sink is thread-safe: host spans are recorded from thread-pool
 *workers, each on its own lazily allocated per-thread track, so the
 * spans of any one (pid, tid) always nest properly (RAII scopes on
 * one thread) — scripts/validate_obs.py asserts exactly that.
 *
 * Tracing is pure observation: sinks only record; they never
 * influence scheduling. Trace *content* on the host track reflects
 * real wall time and is not expected to be reproducible — simulated
 * metrics still are (test_engine_diff runs with a sink attached).
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "harness/wallclock.hh"

namespace gaze
{
namespace obs
{

/** Trace-process ids: simulated vs host time domains. */
constexpr uint32_t kPidSim = 1;
constexpr uint32_t kPidHost = 2;

class TraceSink
{
  public:
    TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Allocate a named track (a tid) under @p pid; emits the
     * thread_name metadata record. Thread-safe.
     */
    uint32_t allocTrack(uint32_t pid, const std::string &label);

    /** The calling thread's host-time track (allocated on first use). */
    uint32_t hostThreadTrack();

    /** Record a complete ("ph":"X") span. Thread-safe. */
    void span(uint32_t pid, uint32_t tid, const std::string &name,
              uint64_t ts, uint64_t dur);

    /** Record a counter ("ph":"C") sample. Thread-safe. */
    void counter(uint32_t pid, uint32_t tid, const std::string &name,
                 uint64_t ts, double value);

    /** Microseconds of host time since the sink was created. */
    uint64_t hostNowUs() const;

    /** The whole document: {"traceEvents":[...]}. */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal if not writable. */
    void writeTo(const std::string &path) const;

    size_t eventCount() const;

  private:
    struct Event
    {
        char phase;  ///< 'X' span, 'C' counter, 'M' metadata
        uint32_t pid = 0;
        uint32_t tid = 0;
        uint64_t ts = 0;
        uint64_t dur = 0;
        double value = 0.0; ///< counter value ('C' only)
        std::string name;
    };

    mutable std::mutex mtx;
    WallTime start;
    uint32_t nextTid = 1;
    std::vector<Event> events;
};

/**
 * Process-global host-span hook: installed by a CLI when --obs-trace
 * is given, null otherwise. Subsystems that want to report host-time
 * spans (campaign engine, baseline cache) check this instead of
 * threading a sink through every signature.
 */
TraceSink *globalTrace();
void setGlobalTrace(TraceSink *sink);

/** RAII host-time span on the calling thread's track; null-sink safe. */
class HostSpan
{
  public:
    HostSpan(TraceSink *sink_, std::string name_)
        : sink(sink_), name(std::move(name_)),
          begin(sink_ ? sink_->hostNowUs() : 0)
    {
    }

    ~HostSpan()
    {
        if (!sink)
            return;
        uint64_t end = sink->hostNowUs();
        sink->span(kPidHost, sink->hostThreadTrack(), name, begin,
                   end >= begin ? end - begin : 0);
    }

    HostSpan(const HostSpan &) = delete;
    HostSpan &operator=(const HostSpan &) = delete;

  private:
    TraceSink *sink;
    std::string name;
    uint64_t begin;
};

} // namespace obs
} // namespace gaze
