/**
 * @file
 * gaze_campaign: declarative experiment campaigns over the content-
 * addressed result cache. "run" simulates whatever the cache is
 * missing (optionally one shard of it) and, when unsharded,
 * aggregates the report; "report" aggregates from the cache alone;
 * "status" shows cache coverage. Flag parsing lives in driver/cli,
 * everything else in src/campaign.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/report.hh"
#include "campaign/spec.hh"
#include "common/log.hh"
#include "driver/cli.hh"
#include "harness/export.hh"
#include "obs/trace.hh"
#include "prefetchers/registry.hh"

namespace
{

using namespace gaze;

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        GAZE_FATAL("cannot create '", path, "'");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out)
        GAZE_FATAL("write failed on '", path, "'");
}

/** Aggregate + write the JSON (and optional CSV) report. */
void
emitReport(const Campaign &campaign, const ResultCache &cache,
           const GazeCampaignOptions &opt)
{
    JsonValue previous;
    bool have_previous = false;
    if (!opt.comparePath.empty()) {
        previous = parseJsonFile(opt.comparePath);
        have_previous = true;
    }

    CampaignReport report =
        buildReport(campaign, cache, have_previous ? &previous : nullptr);

    std::printf("\n%s\n", reportTable(report.suites).c_str());

    JsonExport doc(campaign.spec.name, report.json);
    std::string path =
        opt.outPath.empty() ? doc.write() : doc.writeTo(opt.outPath);
    std::printf("report: %s\n", path.c_str());
    if (!opt.csvPath.empty()) {
        writeText(opt.csvPath, report.csv);
        std::printf("csv: %s\n", opt.csvPath.c_str());
    }
}

int
cmdRun(const GazeCampaignOptions &opt)
{
    Campaign campaign = loadCampaign(opt.specPath);
    ResultCache cache(opt.cacheDir);

    // --obs-trace: host-time spans of the run (cell jobs, shard,
    // baseline waits) via the process-global hook the engine checks.
    std::unique_ptr<obs::TraceSink> traceSink;
    if (!opt.obsTracePath.empty()) {
        traceSink = std::make_unique<obs::TraceSink>();
        obs::setGlobalTrace(traceSink.get());
    }

    CampaignRunOptions run_opt;
    run_opt.shardIndex = opt.shardIndex;
    run_opt.shardCount = opt.shardCount;
    run_opt.threads = opt.threads;
    run_opt.verbose = !opt.quiet;

    std::printf("gaze_campaign: %s: %zu cell(s) + %zu baseline(s), "
                "cache %s%s\n",
                campaign.spec.name.c_str(), campaign.cells.size(),
                campaign.baselines.size(), opt.cacheDir.c_str(),
                opt.shardCount > 1 ? ", sharded" : "");

    CampaignRunStats stats = runCampaign(campaign, cache, run_opt);
    if (traceSink) {
        obs::setGlobalTrace(nullptr);
        traceSink->writeTo(opt.obsTracePath);
        std::printf("obs trace: %s\n", opt.obsTracePath.c_str());
    }
    std::printf("executed %llu simulation(s), %llu cache hit(s)"
                ", %llu left to other shards (%.1fs on %u thread(s))\n",
                static_cast<unsigned long long>(stats.executed),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.otherShards),
                stats.seconds, stats.threadsUsed);

    if (opt.shardCount > 1) {
        std::printf("shard %u/%u done; aggregate with: gaze_campaign "
                    "report --spec=%s --cache-dir=%s\n",
                    opt.shardIndex, opt.shardCount,
                    opt.specPath.c_str(), opt.cacheDir.c_str());
        return 0;
    }
    emitReport(campaign, cache, opt);
    return 0;
}

int
cmdReport(const GazeCampaignOptions &opt)
{
    Campaign campaign = loadCampaign(opt.specPath);
    ResultCache cache(opt.cacheDir);
    emitReport(campaign, cache, opt);
    return 0;
}

int
cmdStatus(const GazeCampaignOptions &opt)
{
    Campaign campaign = loadCampaign(opt.specPath);
    ResultCache cache(opt.cacheDir);
    CampaignCacheStatus status = campaignStatus(campaign, cache);
    if (opt.jsonOutput) {
        // Machine-readable line sharing its shape with the daemon's
        // per-submission status entries; exit code still says missing.
        std::printf("%s\n",
                    campaignStatusJson(campaign, cache).c_str());
        return status.missing ? 2 : 0;
    }
    std::printf("%s: %llu cached, %llu missing (cache %s)\n",
                campaign.spec.name.c_str(),
                static_cast<unsigned long long>(status.cached),
                static_cast<unsigned long long>(status.missing),
                opt.cacheDir.c_str());
    return status.missing ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    GazeCampaignOptions opt = parseGazeCampaignArgs(
        std::vector<std::string>(argv + 1, argv + argc));

    switch (opt.command) {
      case GazeCampaignOptions::Command::Run:
        return cmdRun(opt);
      case GazeCampaignOptions::Command::Report:
        return cmdReport(opt);
      case GazeCampaignOptions::Command::Status:
        return cmdStatus(opt);
      case GazeCampaignOptions::Command::Describe:
        std::fputs(renderPrefetcherList(opt.jsonOutput).c_str(),
                   stdout);
        return 0;
      case GazeCampaignOptions::Command::Help:
        std::fputs(gazeCampaignUsage(), stdout);
        return 0;
    }
    return 0;
}
