/**
 * @file
 * gaze_sim: the suite-runner CLI. Expands --suites/--workloads and
 * --prefetchers into a matrix, runs it on a thread pool via
 * driver/runMatrix, prints the per-suite table, and writes the full
 * matrix as BENCH_<name>.json.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hh"
#include "driver/driver.hh"
#include "harness/export.hh"
#include "prefetchers/factory.hh"
#include "workloads/suites.hh"

namespace
{

const char *usageText =
    "usage: gaze_sim [options]\n"
    "\n"
    "Runs a prefetcher x workload matrix in parallel (one simulated\n"
    "System per cell plus one shared no-prefetch baseline per\n"
    "workload) and writes every cell's metrics as JSON.\n"
    "\n"
    "options:\n"
    "  --prefetchers=a,b,...  factory specs (default: ip_stride,gaze)\n"
    "  --suites=s1,s2,...     workload suites (default: the five\n"
    "                         main-evaluation suites)\n"
    "  --workloads=w1,w2,...  explicit workloads (overrides --suites)\n"
    "  --level=l1|l2          prefetcher attach level (default: l1)\n"
    "  --cores=N              homogeneous cores per cell (default: 1)\n"
    "  --threads=N            worker threads (default: hardware)\n"
    "  --warmup=N             warmup instructions per core\n"
    "  --sim=N                measured instructions per core\n"
    "  --name=ID              experiment id (default: gaze_sim)\n"
    "  --out=FILE             JSON output path (default:\n"
    "                         [$GAZE_RESULTS_DIR/]BENCH_<name>.json)\n"
    "  --quiet                no per-cell progress on stderr\n"
    "  --list                 print known prefetchers/suites/workloads\n"
    "  --help                 this text\n"
    "\n"
    "GAZE_SIM_SCALE scales default trace/phase lengths, as in the\n"
    "bench binaries.\n";

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

uint64_t
parseCount(const std::string &flag, const std::string &v,
           uint64_t max = UINT64_MAX)
{
    // strtoull silently wraps a leading minus, so digits only.
    bool digits_only = !v.empty();
    for (char c : v)
        digits_only = digits_only && c >= '0' && c <= '9';
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (!digits_only || (end && *end != '\0') || errno == ERANGE)
        GAZE_FATAL("bad numeric value for ", flag, ": '", v, "'");
    if (n > max)
        GAZE_FATAL(flag, " out of range: ", v, " (max ", max, ")");
    return n;
}

void
printLists()
{
    std::printf("prefetchers:\n");
    for (const auto &p : gaze::knownPrefetcherSpecs())
        std::printf("  %s\n", p.c_str());
    std::printf("\nworkloads (name / suite):\n");
    for (const auto &w : gaze::allWorkloads())
        std::printf("  %-20s %s\n", w.name.c_str(), w.suite.c_str());
    std::printf("\nmain suites:");
    for (const auto &s : gaze::mainSuites())
        std::printf(" %s", s.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gaze;

    std::vector<std::string> pfSpecs = {"ip_stride", "gaze"};
    std::vector<std::string> suites;
    std::vector<std::string> workloadNames;
    bool suitesGiven = false, workloadsGiven = false;
    MatrixSpec spec;
    spec.verbose = true;
    std::string outPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string key = arg, val;
        size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            val = arg.substr(eq + 1);
        }

        if (key == "--help" || key == "-h") {
            std::fputs(usageText, stdout);
            return 0;
        } else if (key == "--list") {
            printLists();
            return 0;
        } else if (key == "--quiet") {
            spec.verbose = false;
        } else if (key == "--prefetchers") {
            pfSpecs = splitList(val);
        } else if (key == "--suites") {
            suites = splitList(val);
            suitesGiven = true;
        } else if (key == "--workloads") {
            workloadNames = splitList(val);
            workloadsGiven = true;
        } else if (key == "--level") {
            spec.level = val;
        } else if (key == "--cores") {
            spec.cores = static_cast<uint32_t>(parseCount(key, val, 256));
        } else if (key == "--threads") {
            spec.threads =
                static_cast<uint32_t>(parseCount(key, val, 4096));
        } else if (key == "--warmup") {
            spec.run.warmupInstr = parseCount(key, val);
        } else if (key == "--sim") {
            spec.run.simInstr = parseCount(key, val);
        } else if (key == "--name") {
            spec.name = val;
        } else if (key == "--out") {
            outPath = val;
        } else {
            std::fputs(usageText, stderr);
            GAZE_FATAL("unknown option '", arg, "'");
        }
    }

    if (pfSpecs.empty())
        GAZE_FATAL("--prefetchers needs at least one spec");
    spec.prefetchers = pfSpecs;

    // An explicitly empty list is a mistake (often a script with an
    // unset variable), not a request for the default matrix.
    if (workloadsGiven && workloadNames.empty())
        GAZE_FATAL("--workloads needs at least one name");
    if (suitesGiven && suites.empty())
        GAZE_FATAL("--suites needs at least one suite");

    if (!workloadNames.empty()) {
        for (const auto &n : workloadNames)
            spec.workloads.push_back(findWorkload(n));
    } else {
        if (suites.empty())
            suites = mainSuites();
        for (const auto &s : suites)
            for (const auto &w : suiteWorkloads(s))
                spec.workloads.push_back(w);
    }

    std::printf("gaze_sim: %zu prefetcher(s) x %zu workload(s), "
                "%u core(s)/cell, level %s\n",
                spec.prefetchers.size(), spec.workloads.size(),
                spec.cores, spec.level.c_str());

    MatrixResult result = runMatrix(spec);

    std::printf("\n%s\n", matrixToTable(result).c_str());
    std::printf("total: %zu cells in %.1fs on %u thread(s)\n",
                result.cells.size(), result.seconds,
                result.threadsUsed);

    JsonExport doc(spec.name, matrixToJson(spec, result));
    std::string path =
        outPath.empty() ? doc.write() : doc.writeTo(outPath);
    std::printf("results: %s\n", path.c_str());
    return 0;
}
