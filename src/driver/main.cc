/**
 * @file
 * gaze_sim: the suite-runner CLI. Flag parsing (including
 * --suites/--workloads/--trace-dir expansion) lives in driver/cli so
 * its error paths are unit-testable; this file only sequences parse ->
 * run -> report.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "driver/cli.hh"
#include "driver/driver.hh"
#include "harness/export.hh"
#include "prefetchers/factory.hh"
#include "prefetchers/registry.hh"
#include "workloads/suites.hh"

namespace
{

void
printLists()
{
    std::printf("prefetchers:\n");
    for (const auto &p : gaze::knownPrefetcherSpecs())
        std::printf("  %s\n", p.c_str());
    std::printf("\nworkloads (name / suite):\n");
    for (const auto &w : gaze::allWorkloads())
        std::printf("  %-20s %s\n", w.name.c_str(), w.suite.c_str());
    std::printf("\nmain suites:");
    for (const auto &s : gaze::mainSuites())
        std::printf(" %s", s.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gaze;

    GazeSimOptions opt =
        parseGazeSimArgs(std::vector<std::string>(argv + 1, argv + argc));
    if (opt.showHelp) {
        std::fputs(gazeSimUsage(), stdout);
        return 0;
    }
    if (opt.showList) {
        printLists();
        return 0;
    }
    if (opt.listPrefetchers != GazeSimOptions::ListPrefetchers::No) {
        std::fputs(renderPrefetcherList(
                       opt.listPrefetchers
                       == GazeSimOptions::ListPrefetchers::Json)
                       .c_str(),
                   stdout);
        return 0;
    }

    const MatrixSpec &spec = opt.spec;
    std::printf("gaze_sim: %zu prefetcher(s) x %zu workload(s), "
                "%u core(s)/cell, level %s%s%s\n",
                spec.prefetchers.size(), spec.workloads.size(),
                spec.cores, spec.level.c_str(),
                spec.traceDir.empty() ? "" : ", traces from ",
                spec.traceDir.c_str());

    MatrixResult result = runMatrix(spec);

    std::printf("\n%s\n", matrixToTable(result).c_str());
    std::string schemeTable = matrixSchemeTable(result);
    if (!schemeTable.empty())
        std::printf("per-scheme attribution:\n%s\n",
                    schemeTable.c_str());
    if (opt.engineStats)
        std::printf("\n%s\n", matrixEngineTable(result).c_str());
    std::printf("total: %zu cells in %.1fs on %u thread(s), "
                "%.2f Minstr/s\n",
                result.cells.size(), result.seconds,
                result.threadsUsed, result.minstrPerSec());
    if (!spec.obsTimelinePath.empty())
        std::printf("obs timeline: %s\n", spec.obsTimelinePath.c_str());
    if (!spec.obsTracePath.empty())
        std::printf("obs trace: %s\n", spec.obsTracePath.c_str());

    JsonExport doc(spec.name, matrixToJson(spec, result));
    std::string path =
        opt.outPath.empty() ? doc.write() : doc.writeTo(opt.outPath);
    std::printf("results: %s\n", path.c_str());
    return 0;
}
