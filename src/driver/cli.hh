/**
 * @file
 * Flag parsing for the three CLIs (gaze_sim, gaze_trace and
 * gaze_campaign), factored out of the main()s so the error paths —
 * unknown flags, bad suite/workload/prefetcher names, malformed
 * --trace-dir or --shard, junk numbers — are unit-testable. Parsers
 * resolve names against the registries eagerly: anything wrong in
 * argv is fatal here, before a single cycle is simulated.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "workloads/suites.hh"

namespace gaze
{

/** Parsed gaze_sim command line. */
struct GazeSimOptions
{
    /** --list-prefetchers[=json]: registry introspection mode. */
    enum class ListPrefetchers
    {
        No,   ///< flag absent
        Text, ///< human-readable scheme/option table
        Json  ///< one machine-readable JSON document
    };

    MatrixSpec spec;
    std::string outPath;    ///< --out; empty = default BENCH path
    bool showHelp = false;  ///< --help: print usage, run nothing
    bool showList = false;  ///< --list: print registries, run nothing

    /** --engine-stats: print per-cell simulation speed after the run. */
    bool engineStats = false;

    /** Render the prefetcher registry, run nothing. */
    ListPrefetchers listPrefetchers = ListPrefetchers::No;
};

/**
 * Parse gaze_sim flags (argv without the program name). Expands
 * --suites/--workloads into WorkloadDefs, rebinds them to recorded
 * traces when --trace-dir is given, and canonicalizes every
 * prefetcher spec against the registry (equivalent spellings collapse
 * to one matrix row). Fatal on any malformed or unknown argument.
 */
GazeSimOptions parseGazeSimArgs(const std::vector<std::string> &args);

/** gaze_sim usage text. */
const char *gazeSimUsage();

/** Parsed gaze_trace command line. */
struct GazeTraceOptions
{
    enum class Command
    {
        Record,   ///< generate workloads and persist them as .gzt
        Info,     ///< print header/provenance of .gzt files
        Validate, ///< full decode + checksum verification
        Help
    };

    Command command = Command::Help;
    std::vector<WorkloadDef> workloads; ///< record: what to record
    std::string outDir = ".";           ///< record: --out-dir
    std::vector<std::string> files;     ///< info/validate operands
    bool jsonOutput = false;            ///< info: --json
};

/**
 * Parse gaze_trace arguments: "record [--suites=|--workloads=]
 * [--out-dir=]", "info FILE...", "validate FILE...". Fatal on unknown
 * commands/flags, unresolvable workload names, or missing operands.
 */
GazeTraceOptions parseGazeTraceArgs(const std::vector<std::string> &args);

/** gaze_trace usage text. */
const char *gazeTraceUsage();

/** Parsed gaze_campaign command line. */
struct GazeCampaignOptions
{
    enum class Command
    {
        Run,      ///< execute missing cells, then aggregate (unsharded)
        Report,   ///< aggregate from cache only
        Status,   ///< count cached vs missing cells
        Describe, ///< render the prefetcher registry (no --spec)
        Help
    };

    Command command = Command::Help;
    std::string specPath;                  ///< --spec (required)
    std::string cacheDir = "campaign_cache"; ///< --cache-dir
    uint32_t shardIndex = 0;               ///< --shard=i/n
    uint32_t shardCount = 1;
    uint32_t threads = 0;                  ///< --threads
    std::string outPath;                   ///< --out (report JSON)
    std::string csvPath;                   ///< --csv (suite CSV)
    std::string comparePath;               ///< --compare (old report)
    std::string obsTracePath;              ///< run: --obs-trace
    bool quiet = false;                    ///< --quiet
    bool jsonOutput = false;               ///< describe/status: --json
};

/**
 * Parse gaze_campaign arguments: "run|report|status --spec=FILE
 * [--cache-dir=] [--shard=i/n] [--threads=] [--out=] [--csv=]
 * [--compare=] [--quiet]" or "describe [--json]". Validates flag
 * syntax only — the spec file itself is loaded (and validated) by the
 * campaign library. Fatal on unknown commands/flags, a missing --spec
 * for the spec-driven commands, or a malformed --shard.
 */
GazeCampaignOptions
parseGazeCampaignArgs(const std::vector<std::string> &args);

/** gaze_campaign usage text. */
const char *gazeCampaignUsage();

/** Parsed gaze_serve command line. */
struct GazeServeOptions
{
    enum class Command
    {
        Daemon,   ///< run the campaign service on a Unix socket
        Submit,   ///< client: send a spec, stream events, write report
        Status,   ///< client: print the daemon's status JSON line
        Shutdown, ///< client: ask the daemon to drain and exit
        Bench,    ///< --bench: in-process throughput probe
        Help
    };

    Command command = Command::Help;
    std::string socketPath;   ///< --socket (all socket commands)
    std::string specPath;     ///< submit: --spec (required)
    std::string cacheDir;     ///< daemon/bench: --cache-dir
                              ///< (daemon default: campaign_cache;
                              ///< bench default: fresh temp dir)
    uint32_t threads = 0;     ///< daemon/bench: --threads (0 = hw)
    uint64_t maxQueued = 4096;  ///< daemon: --max-queued cells
    uint64_t maxInFlight = 8; ///< daemon: --max-inflight per client
    std::string obsTracePath; ///< daemon: --obs-trace
    int64_t priority = 0;     ///< submit: --priority (may be negative)
    std::string outPath;      ///< submit/bench: --out
    std::string csvPath;      ///< submit: --csv
    bool quiet = false;       ///< submit: --quiet
    bool verbose = false;     ///< daemon: --verbose
};

/**
 * Parse gaze_serve arguments: "daemon --socket=PATH [--cache-dir=]
 * [--threads=] [--max-queued=] [--max-inflight=] [--obs-trace=]
 * [--verbose]", "submit --socket=PATH --spec=FILE [--priority=]
 * [--out=] [--csv=] [--quiet]", "status|shutdown --socket=PATH", or
 * "--bench [--out=] [--cache-dir=] [--threads=]". Fatal on unknown
 * commands/flags, flags that don't apply to the chosen command, or a
 * missing required flag.
 */
GazeServeOptions parseGazeServeArgs(const std::vector<std::string> &args);

/** gaze_serve usage text. */
const char *gazeServeUsage();

/** Split "a,b,c" into tokens, dropping empties. */
std::vector<std::string> splitList(const std::string &s);

/**
 * Strict decimal parse for flag values: digits only, within
 * [0, @p max]. Fatal otherwise, naming @p flag.
 */
uint64_t parseCount(const std::string &flag, const std::string &value,
                    uint64_t max = UINT64_MAX);

} // namespace gaze
