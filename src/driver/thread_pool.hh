/**
 * @file
 * Fixed-size worker pool for the suite-runner driver. Each simulation
 * cell is a self-contained job (its own System, traces, prefetchers),
 * so the pool needs nothing beyond submit/wait: no futures, no
 * cancellation, no work stealing.
 */

#ifndef GAZE_DRIVER_THREAD_POOL_HH
#define GAZE_DRIVER_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace gaze
{

/** Runs submitted jobs on @p threads workers; wait() drains the queue. */
class ThreadPool
{
  public:
    explicit ThreadPool(uint32_t threads)
    {
        GAZE_ASSERT(threads >= 1, "thread pool needs at least one worker");
        workers.reserve(threads);
        for (uint32_t i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mtx);
            stopping = true;
        }
        workAvailable.notify_all();
        for (auto &w : workers)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; runs as soon as a worker is free. */
    void
    submit(std::function<void()> job)
    {
        {
            std::unique_lock<std::mutex> lock(mtx);
            GAZE_ASSERT(!stopping, "submit after shutdown");
            queue.push_back(std::move(job));
            ++pending;
        }
        workAvailable.notify_one();
    }

    /** Block until every submitted job has finished. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mtx);
        allDone.wait(lock, [this] { return pending == 0; });
    }

    size_t threadCount() const { return workers.size(); }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mtx);
                workAvailable.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping, nothing left
                job = std::move(queue.front());
                queue.pop_front();
            }
            job();
            {
                std::unique_lock<std::mutex> lock(mtx);
                if (--pending == 0)
                    allDone.notify_all();
            }
        }
    }

    std::mutex mtx;
    std::condition_variable workAvailable;
    std::condition_variable allDone;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    size_t pending = 0;
    bool stopping = false;
};

} // namespace gaze

#endif // GAZE_DRIVER_THREAD_POOL_HH
