/**
 * @file
 * Fixed-size worker pool for the suite-runner driver and the campaign
 * engine. Each simulation cell is a self-contained job (its own
 * System, traces, prefetchers), so the pool needs nothing beyond
 * submit/wait: no futures, no cancellation, no work stealing.
 *
 * A job that throws does not kill the process: the first exception is
 * captured and rethrown from the next wait(), after the queue has
 * drained (later exceptions are dropped — one failure already fails
 * the run). Destruction drains queued jobs before joining.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace gaze
{

/**
 * Resolve a requested worker count against the job count: 0 means
 * hardware concurrency, and there is never a point in more workers
 * than jobs. Shared by the matrix driver and the campaign engine.
 */
inline uint32_t
resolvePoolThreads(uint32_t requested, size_t jobs)
{
    uint32_t n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    if (size_t(n) > jobs)
        n = static_cast<uint32_t>(jobs);
    return n < 1 ? 1 : n;
}

/** Runs submitted jobs on @p threads workers; wait() drains the queue. */
class ThreadPool
{
  public:
    explicit ThreadPool(uint32_t threads)
    {
        GAZE_ASSERT(threads >= 1, "thread pool needs at least one worker");
        workers.reserve(threads);
        for (uint32_t i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mtx);
            stopping = true;
        }
        workAvailable.notify_all();
        for (auto &w : workers)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; runs as soon as a worker is free. */
    void
    submit(std::function<void()> job)
    {
        {
            std::unique_lock<std::mutex> lock(mtx);
            GAZE_ASSERT(!stopping, "submit after shutdown");
            queue.push_back(std::move(job));
            ++pending;
        }
        workAvailable.notify_one();
    }

    /**
     * Block until every submitted job has finished, then rethrow the
     * first exception any job raised (the pool stays usable after).
     */
    void
    wait()
    {
        std::exception_ptr err;
        {
            std::unique_lock<std::mutex> lock(mtx);
            allDone.wait(lock, [this] { return pending == 0; });
            err = firstError;
            firstError = nullptr;
        }
        if (err)
            std::rethrow_exception(err);
    }

    size_t threadCount() const { return workers.size(); }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mtx);
                workAvailable.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping, nothing left
                job = std::move(queue.front());
                queue.pop_front();
            }
            try {
                job();
            } catch (...) {
                std::unique_lock<std::mutex> lock(mtx);
                if (!firstError)
                    firstError = std::current_exception();
            }
            {
                std::unique_lock<std::mutex> lock(mtx);
                if (--pending == 0)
                    allDone.notify_all();
            }
        }
    }

    std::mutex mtx;
    std::condition_variable workAvailable;
    std::condition_variable allDone;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    size_t pending = 0;
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace gaze
