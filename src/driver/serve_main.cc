/**
 * @file
 * gaze_serve: the campaign service binary. "daemon" runs the
 * long-lived Unix-socket service (src/serve/server); submit/status/
 * shutdown are the thin scripting clients (src/serve/client);
 * "--bench" probes in-process throughput and writes BENCH_serve.json
 * (src/serve/bench). Flag parsing lives in driver/cli with the other
 * binaries so the error paths are unit-testable.
 */

#include <cstdio>
#include <vector>

#include "driver/cli.hh"
#include "serve/bench.hh"
#include "serve/client.hh"
#include "serve/server.hh"

int
main(int argc, char **argv)
{
    using namespace gaze;
    GazeServeOptions opt = parseGazeServeArgs(
        std::vector<std::string>(argv + 1, argv + argc));

    switch (opt.command) {
      case GazeServeOptions::Command::Daemon: {
        serve::ServerConfig cfg;
        cfg.socketPath = opt.socketPath;
        cfg.obsTracePath = opt.obsTracePath;
        cfg.service.cacheDir =
            opt.cacheDir.empty() ? "campaign_cache" : opt.cacheDir;
        cfg.service.threads = opt.threads;
        cfg.service.maxQueuedCells = opt.maxQueued;
        cfg.service.maxClientInFlight = opt.maxInFlight;
        cfg.service.verbose = opt.verbose;
        return serve::runServer(cfg);
      }
      case GazeServeOptions::Command::Submit:
        return serve::submitToDaemon(opt.socketPath, opt.specPath,
                                     opt.priority, opt.outPath,
                                     opt.csvPath, opt.quiet);
      case GazeServeOptions::Command::Status:
        return serve::queryStatus(opt.socketPath);
      case GazeServeOptions::Command::Shutdown:
        return serve::requestShutdown(opt.socketPath);
      case GazeServeOptions::Command::Bench: {
        serve::BenchOptions bench;
        bench.outPath = opt.outPath;
        bench.cacheDir = opt.cacheDir;
        bench.threads = opt.threads;
        return serve::runServeBench(bench);
      }
      case GazeServeOptions::Command::Help:
        std::fputs(gazeServeUsage(), stdout);
        return 0;
    }
    return 0;
}
