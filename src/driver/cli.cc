#include "driver/cli.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"
#include "prefetchers/registry.hh"

namespace gaze
{
namespace
{

const char *gazeSimUsageText =
    "usage: gaze_sim [options]\n"
    "\n"
    "Runs a prefetcher x workload matrix in parallel (one simulated\n"
    "System per cell plus one shared no-prefetch baseline per\n"
    "workload) and writes every cell's metrics as JSON.\n"
    "\n"
    "options:\n"
    "  --prefetchers=a,b,...  factory specs (default: ip_stride,gaze)\n"
    "  --suites=s1,s2,...     workload suites (default: the five\n"
    "                         main-evaluation suites)\n"
    "  --workloads=w1,w2,...  explicit workloads (overrides --suites)\n"
    "  --trace-dir=DIR        replay workloads from DIR/<name>.gzt\n"
    "                         (recorded by gaze_trace) instead of\n"
    "                         regenerating them\n"
    "  --level=l1|l2          prefetcher attach level (default: l1)\n"
    "  --cores=N              homogeneous cores per cell (default: 1)\n"
    "  --threads=N            worker threads (default: hardware)\n"
    "  --engine=event|polled|auto\n"
    "                         simulation engine (default: event, the\n"
    "                         idle-cycle-skipping scheduler; polled is\n"
    "                         the metrics-identical reference loop;\n"
    "                         auto flips between them per workload\n"
    "                         phase, still metrics-identical)\n"
    "  --sim-threads=N        threads per simulated System; with\n"
    "                         multi-core cells (--cores>1) the cores\n"
    "                         run on a worker team, bit-identical to\n"
    "                         --sim-threads=1 (default: 1)\n"
    "  --engine-stats         print per-cell simulation speed\n"
    "                         (Minstr/s, skipped cycles, events, late\n"
    "                         prefetches) after the matrix; the JSON\n"
    "                         always carries them\n"
    "  --obs-timeline=FILE    write a per-interval counter CSV (one\n"
    "                         row per cell per epoch boundary; columns\n"
    "                         are the obs registry, name-sorted)\n"
    "  --obs-trace=FILE       write a Chrome-trace JSON (open in\n"
    "                         chrome://tracing or ui.perfetto.dev):\n"
    "                         engine stints/flips and per-core spans\n"
    "                         in simulated time, cells and baseline\n"
    "                         waits in host time\n"
    "  --obs-interval=N       sampler epoch in cycles for\n"
    "                         --obs-timeline (default: 4096)\n"
    "  --warmup=N             warmup instructions per core\n"
    "  --sim=N                measured instructions per core\n"
    "  --name=ID              experiment id (default: gaze_sim)\n"
    "  --out=FILE             JSON output path (default:\n"
    "                         [$GAZE_RESULTS_DIR/]BENCH_<name>.json)\n"
    "  --quiet                no per-cell progress on stderr\n"
    "  --list                 print known prefetchers/suites/workloads\n"
    "  --list-prefetchers[=json]\n"
    "                         print every registered scheme with its\n"
    "                         typed options, defaults and docs,\n"
    "                         generated from the registry (json: one\n"
    "                         machine-readable document)\n"
    "  --help                 this text\n"
    "\n"
    "GAZE_SIM_SCALE scales default trace/phase lengths, as in the\n"
    "bench binaries.\n";

const char *gazeTraceUsageText =
    "usage: gaze_trace <command> [options]\n"
    "\n"
    "Records registry workloads as .gzt trace files and inspects\n"
    "them. A recorded trace replays bit-identically through\n"
    "gaze_sim --trace-dir=DIR.\n"
    "\n"
    "commands:\n"
    "  record    generate workloads and write DIR/<name>.gzt each\n"
    "    --workloads=w1,...   explicit workloads (overrides --suites)\n"
    "    --suites=s1,...      whole suites (default: the five\n"
    "                         main-evaluation suites)\n"
    "    --out-dir=DIR        destination directory (default: .)\n"
    "  info FILE...      print header, provenance and size stats\n"
    "    --json               machine-readable output: one JSON\n"
    "                         document with record count, checksum,\n"
    "                         per-op histogram and meta per file\n"
    "  validate FILE...  decode every record, verify count/checksum\n"
    "  --help            this text\n"
    "\n"
    "GAZE_SIM_SCALE scales generated trace lengths; the scale used at\n"
    "record time is stored in the file's meta string.\n";

const char *gazeCampaignUsageText =
    "usage: gaze_campaign <command> --spec=FILE [options]\n"
    "\n"
    "Runs declarative experiment campaigns with a content-addressed\n"
    "result cache: every (config, prefetcher, workload) cell and\n"
    "every shared no-prefetch baseline is simulated at most once,\n"
    "persisted to the cache directory, and aggregated into a\n"
    "BENCH_<name>.json / CSV report from the cache alone.\n"
    "\n"
    "commands:\n"
    "  run       execute the spec's missing cells, then (when not\n"
    "            sharded) aggregate and write the report\n"
    "  report    aggregate from the cache only (all cells must be\n"
    "            present; use after all shards finished)\n"
    "  status    print how many cells are cached vs missing (add\n"
    "            --json for one machine-readable line; exit 2 when\n"
    "            cells are missing either way)\n"
    "  describe  print every registered prefetcher scheme with its\n"
    "            typed options, defaults and docs (add --json for a\n"
    "            machine-readable document); needs no --spec\n"
    "\n"
    "options:\n"
    "  --spec=FILE        campaign spec (JSON; see README)\n"
    "  --cache-dir=DIR    result cache (default: campaign_cache)\n"
    "  --shard=I/N        run only every N-th job, offset I (I < N);\n"
    "                     shards coordinate through the cache dir only\n"
    "  --threads=N        worker threads (default: hardware)\n"
    "  --out=FILE         report JSON path (default:\n"
    "                     [$GAZE_RESULTS_DIR/]BENCH_<name>.json)\n"
    "  --csv=FILE         also write the per-suite CSV here\n"
    "  --compare=FILE     previous report JSON; appends a \"compare\"\n"
    "                     section with per-suite speedup deltas\n"
    "  --obs-trace=FILE   run: write a Chrome-trace JSON of host-time\n"
    "                     spans (cell jobs, shard, baseline waits)\n"
    "  --quiet            no per-cell progress on stderr\n"
    "  --help             this text\n"
    "\n"
    "A killed run resumes cleanly: finished cells are published to\n"
    "the cache atomically and are skipped on the next run.\n";

const char *gazeServeUsageText =
    "usage: gaze_serve <command> [options]\n"
    "\n"
    "Long-running campaign service: a daemon that keeps the result\n"
    "cache, shared baselines and trace corpus warm and answers\n"
    "campaign submissions from many concurrent clients over a local\n"
    "Unix socket. Every cell is simulated at most once, ever —\n"
    "overlapping submissions share in-flight work, repeats are pure\n"
    "cache hits — and a daemon report is byte-identical to the\n"
    "offline gaze_campaign run for the same spec.\n"
    "\n"
    "commands:\n"
    "  daemon    serve submissions on --socket until SIGTERM/SIGINT,\n"
    "            then drain in-flight cells and exit 0\n"
    "  submit    send a campaign spec to a running daemon, stream\n"
    "            progress, write the report when it arrives\n"
    "  status    print the daemon's one-line status JSON on stdout\n"
    "  shutdown  ask the daemon to drain and exit\n"
    "  --bench   in-process throughput probe (no daemon needed);\n"
    "            writes BENCH_serve.json with cold/warm cells-per-sec\n"
    "\n"
    "daemon options:\n"
    "  --socket=PATH       Unix socket to listen on (required)\n"
    "  --cache-dir=DIR     result cache (default: campaign_cache)\n"
    "  --threads=N         sim workers (default: hardware)\n"
    "  --max-queued=N      admission: max distinct cells queued or\n"
    "                      running at once (default: 4096)\n"
    "  --max-inflight=N    admission: max unfinished submissions per\n"
    "                      client (default: 8)\n"
    "  --obs-trace=FILE    write a Chrome-trace JSON of queue-wait /\n"
    "                      execute spans on drain\n"
    "  --verbose           per-submission log lines on stderr\n"
    "\n"
    "submit options:\n"
    "  --socket=PATH       daemon socket (required)\n"
    "  --spec=FILE         campaign spec JSON (required)\n"
    "  --priority=N        scheduling priority, higher first; may be\n"
    "                      negative (default: 0)\n"
    "  --out=FILE          report path (default: BENCH_<name>.json)\n"
    "  --csv=FILE          also write the per-suite CSV here\n"
    "  --quiet             no progress events on stderr\n"
    "\n"
    "exit codes: 0 ok, 3 submission rejected (admission control or\n"
    "spec errors), 4 a cell failed, 5 connection/protocol trouble.\n";

/** Split "--key=value" (value empty when no '='). */
void
splitFlag(const std::string &arg, std::string *key, std::string *val)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
        *key = arg;
        val->clear();
    } else {
        *key = arg.substr(0, eq);
        *val = arg.substr(eq + 1);
    }
}

std::vector<WorkloadDef>
expandWorkloads(const std::vector<std::string> &workload_names,
                bool workloads_given,
                const std::vector<std::string> &suite_names,
                bool suites_given, const char *cli)
{
    // An explicitly empty list is a mistake (often a script with an
    // unset variable), not a request for the default matrix.
    if (workloads_given && workload_names.empty())
        GAZE_FATAL(cli, ": --workloads needs at least one name");
    if (suites_given && suite_names.empty())
        GAZE_FATAL(cli, ": --suites needs at least one suite");

    std::vector<WorkloadDef> out;
    if (!workload_names.empty()) {
        for (const auto &n : workload_names)
            out.push_back(findWorkload(n));
        return out;
    }
    std::vector<std::string> suites = suite_names;
    if (suites.empty())
        suites = mainSuites();
    for (const auto &s : suites)
        for (const auto &w : suiteWorkloads(s))
            out.push_back(w);
    return out;
}

} // namespace

const char *
gazeSimUsage()
{
    return gazeSimUsageText;
}

const char *
gazeTraceUsage()
{
    return gazeTraceUsageText;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

uint64_t
parseCount(const std::string &flag, const std::string &v, uint64_t max)
{
    // strtoull silently wraps a leading minus, so digits only.
    bool digits_only = !v.empty();
    for (char c : v)
        digits_only = digits_only && c >= '0' && c <= '9';
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (!digits_only || (end && *end != '\0') || errno == ERANGE)
        GAZE_FATAL("bad numeric value for ", flag, ": '", v, "'");
    if (n > max)
        GAZE_FATAL(flag, " out of range: ", v, " (max ", max, ")");
    return n;
}

GazeSimOptions
parseGazeSimArgs(const std::vector<std::string> &args)
{
    GazeSimOptions opt;
    opt.spec.prefetchers = {"ip_stride", "gaze"};
    opt.spec.verbose = true;

    std::vector<std::string> suites;
    std::vector<std::string> workloadNames;
    bool suitesGiven = false, workloadsGiven = false;

    for (const auto &arg : args) {
        std::string key, val;
        splitFlag(arg, &key, &val);

        if (key == "--help" || key == "-h") {
            opt.showHelp = true;
            return opt;
        } else if (key == "--list") {
            opt.showList = true;
            return opt;
        } else if (key == "--list-prefetchers") {
            if (val.empty())
                opt.listPrefetchers =
                    GazeSimOptions::ListPrefetchers::Text;
            else if (val == "json")
                opt.listPrefetchers =
                    GazeSimOptions::ListPrefetchers::Json;
            else
                GAZE_FATAL("--list-prefetchers takes no value or "
                           "=json, got '", val, "'");
            return opt;
        } else if (key == "--quiet") {
            opt.spec.verbose = false;
        } else if (key == "--prefetchers") {
            opt.spec.prefetchers = splitList(val);
        } else if (key == "--suites") {
            suites = splitList(val);
            suitesGiven = true;
        } else if (key == "--workloads") {
            workloadNames = splitList(val);
            workloadsGiven = true;
        } else if (key == "--trace-dir") {
            if (val.empty())
                GAZE_FATAL("--trace-dir needs a directory");
            opt.spec.traceDir = val;
        } else if (key == "--level") {
            opt.spec.level = val;
        } else if (key == "--cores") {
            opt.spec.cores =
                static_cast<uint32_t>(parseCount(key, val, 256));
        } else if (key == "--threads") {
            opt.spec.threads =
                static_cast<uint32_t>(parseCount(key, val, 4096));
        } else if (key == "--engine") {
            opt.spec.run.system.engine = parseEngineKind(val);
        } else if (key == "--sim-threads") {
            opt.spec.run.system.simThreads =
                static_cast<uint32_t>(parseCount(key, val, 64));
        } else if (key == "--engine-stats") {
            opt.engineStats = true;
        } else if (key == "--obs-timeline") {
            if (val.empty())
                GAZE_FATAL("--obs-timeline needs a file path");
            opt.spec.obsTimelinePath = val;
        } else if (key == "--obs-trace") {
            if (val.empty())
                GAZE_FATAL("--obs-trace needs a file path");
            opt.spec.obsTracePath = val;
        } else if (key == "--obs-interval") {
            opt.spec.obsInterval = parseCount(key, val);
            if (opt.spec.obsInterval == 0)
                GAZE_FATAL("--obs-interval must be >= 1");
        } else if (key == "--warmup") {
            opt.spec.run.warmupInstr = parseCount(key, val);
        } else if (key == "--sim") {
            opt.spec.run.simInstr = parseCount(key, val);
        } else if (key == "--name") {
            opt.spec.name = val;
        } else if (key == "--out") {
            opt.outPath = val;
        } else {
            GAZE_FATAL("unknown option '", arg,
                       "' (see gaze_sim --help)");
        }
    }

    if (opt.spec.prefetchers.empty())
        GAZE_FATAL("--prefetchers needs at least one spec");
    // Canonicalize (and thereby reject bad specs) at parse time, on
    // the calling thread. Two spellings of the same variant collapse
    // to one matrix row instead of simulating — and labeling — the
    // same cell twice.
    opt.spec.prefetchers =
        canonicalizeSpecList(opt.spec.prefetchers, "--prefetchers");

    opt.spec.workloads = expandWorkloads(workloadNames, workloadsGiven,
                                         suites, suitesGiven,
                                         "gaze_sim");
    if (!opt.spec.traceDir.empty())
        opt.spec.workloads =
            withTraceDir(std::move(opt.spec.workloads),
                         opt.spec.traceDir);
    return opt;
}

GazeTraceOptions
parseGazeTraceArgs(const std::vector<std::string> &args)
{
    GazeTraceOptions opt;
    if (args.empty())
        return opt; // Help

    const std::string &cmd = args[0];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return opt;

    std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "record") {
        opt.command = GazeTraceOptions::Command::Record;
        std::vector<std::string> suites, workloadNames;
        bool suitesGiven = false, workloadsGiven = false;
        for (const auto &arg : rest) {
            std::string key, val;
            splitFlag(arg, &key, &val);
            if (key == "--workloads") {
                workloadNames = splitList(val);
                workloadsGiven = true;
            } else if (key == "--suites") {
                suites = splitList(val);
                suitesGiven = true;
            } else if (key == "--out-dir") {
                if (val.empty())
                    GAZE_FATAL("--out-dir needs a directory");
                opt.outDir = val;
            } else {
                GAZE_FATAL("unknown record option '", arg,
                           "' (see gaze_trace --help)");
            }
        }
        opt.workloads = expandWorkloads(workloadNames, workloadsGiven,
                                        suites, suitesGiven,
                                        "gaze_trace");
        return opt;
    }

    if (cmd == "info" || cmd == "validate") {
        opt.command = cmd == "info" ? GazeTraceOptions::Command::Info
                                    : GazeTraceOptions::Command::Validate;
        for (const auto &arg : rest) {
            if (cmd == "info" && arg == "--json") {
                opt.jsonOutput = true;
                continue;
            }
            // Anything dash-prefixed is a flag typo, not a file name.
            if (!arg.empty() && arg[0] == '-')
                GAZE_FATAL("unknown ", cmd, " option '", arg,
                           "' (see gaze_trace --help)");
            opt.files.push_back(arg);
        }
        if (opt.files.empty())
            GAZE_FATAL("gaze_trace ", cmd,
                       " needs at least one .gzt file");
        return opt;
    }

    GAZE_FATAL("unknown gaze_trace command '", cmd,
               "' (want record, info or validate)");
}

const char *
gazeCampaignUsage()
{
    return gazeCampaignUsageText;
}

GazeCampaignOptions
parseGazeCampaignArgs(const std::vector<std::string> &args)
{
    GazeCampaignOptions opt;
    if (args.empty())
        return opt; // Help

    const std::string &cmd = args[0];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return opt;

    if (cmd == "run")
        opt.command = GazeCampaignOptions::Command::Run;
    else if (cmd == "report")
        opt.command = GazeCampaignOptions::Command::Report;
    else if (cmd == "status")
        opt.command = GazeCampaignOptions::Command::Status;
    else if (cmd == "describe")
        opt.command = GazeCampaignOptions::Command::Describe;
    else
        GAZE_FATAL("unknown gaze_campaign command '", cmd,
                   "' (want run, report, status or describe)");

    if (opt.command == GazeCampaignOptions::Command::Describe) {
        for (size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--json")
                opt.jsonOutput = true;
            else if (args[i] == "--help" || args[i] == "-h")
                opt.command = GazeCampaignOptions::Command::Help;
            else
                GAZE_FATAL("unknown describe option '", args[i],
                           "' (see gaze_campaign --help)");
        }
        return opt;
    }

    for (size_t i = 1; i < args.size(); ++i) {
        std::string key, val;
        splitFlag(args[i], &key, &val);
        if (key == "--help" || key == "-h") {
            opt.command = GazeCampaignOptions::Command::Help;
            return opt;
        } else if (key == "--spec") {
            if (val.empty())
                GAZE_FATAL("--spec needs a file path");
            opt.specPath = val;
        } else if (key == "--cache-dir") {
            if (val.empty())
                GAZE_FATAL("--cache-dir needs a directory");
            opt.cacheDir = val;
        } else if (key == "--shard") {
            size_t slash = val.find('/');
            if (slash == std::string::npos)
                GAZE_FATAL("--shard must look like I/N (e.g. 0/4), "
                           "got '", val, "'");
            opt.shardCount = static_cast<uint32_t>(
                parseCount("--shard count",
                           val.substr(slash + 1), 4096));
            if (opt.shardCount < 1)
                GAZE_FATAL("--shard needs at least one shard");
            opt.shardIndex = static_cast<uint32_t>(
                parseCount("--shard index", val.substr(0, slash),
                           UINT32_MAX));
            if (opt.shardIndex >= opt.shardCount)
                GAZE_FATAL("--shard index ", opt.shardIndex,
                           " out of range (", opt.shardCount,
                           " shards)");
        } else if (key == "--threads") {
            opt.threads =
                static_cast<uint32_t>(parseCount(key, val, 4096));
        } else if (key == "--out") {
            opt.outPath = val;
        } else if (key == "--csv") {
            opt.csvPath = val;
        } else if (key == "--compare") {
            if (val.empty())
                GAZE_FATAL("--compare needs a report file");
            opt.comparePath = val;
        } else if (key == "--obs-trace") {
            if (val.empty())
                GAZE_FATAL("--obs-trace needs a file path");
            opt.obsTracePath = val;
        } else if (key == "--quiet") {
            opt.quiet = true;
        } else if (key == "--json") {
            opt.jsonOutput = true;
        } else {
            GAZE_FATAL("unknown option '", args[i],
                       "' (see gaze_campaign --help)");
        }
    }

    if (opt.specPath.empty())
        GAZE_FATAL("gaze_campaign ", cmd, " needs --spec=FILE");
    if (opt.jsonOutput
        && opt.command != GazeCampaignOptions::Command::Status)
        GAZE_FATAL("--json only applies to gaze_campaign status "
                   "and describe");
    if (opt.shardCount > 1
        && opt.command != GazeCampaignOptions::Command::Run)
        GAZE_FATAL("--shard only applies to gaze_campaign run");
    if (!opt.obsTracePath.empty()
        && opt.command != GazeCampaignOptions::Command::Run)
        GAZE_FATAL("--obs-trace only applies to gaze_campaign run");
    return opt;
}

const char *
gazeServeUsage()
{
    return gazeServeUsageText;
}

GazeServeOptions
parseGazeServeArgs(const std::vector<std::string> &args)
{
    GazeServeOptions opt;
    if (args.empty())
        return opt; // Help

    const std::string &cmd = args[0];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return opt;

    if (cmd == "daemon")
        opt.command = GazeServeOptions::Command::Daemon;
    else if (cmd == "submit")
        opt.command = GazeServeOptions::Command::Submit;
    else if (cmd == "status")
        opt.command = GazeServeOptions::Command::Status;
    else if (cmd == "shutdown")
        opt.command = GazeServeOptions::Command::Shutdown;
    else if (cmd == "--bench")
        opt.command = GazeServeOptions::Command::Bench;
    else
        GAZE_FATAL("unknown gaze_serve command '", cmd,
                   "' (want daemon, submit, status, shutdown or "
                   "--bench)");

    bool daemon = opt.command == GazeServeOptions::Command::Daemon;
    bool submit = opt.command == GazeServeOptions::Command::Submit;
    bool bench = opt.command == GazeServeOptions::Command::Bench;

    auto only = [&](const char *flag, bool ok) {
        if (!ok)
            GAZE_FATAL(flag, " does not apply to gaze_serve ", cmd,
                       " (see gaze_serve --help)");
    };

    for (size_t i = 1; i < args.size(); ++i) {
        std::string key, val;
        splitFlag(args[i], &key, &val);
        if (key == "--help" || key == "-h") {
            opt.command = GazeServeOptions::Command::Help;
            return opt;
        } else if (key == "--socket") {
            only("--socket", !bench);
            if (val.empty())
                GAZE_FATAL("--socket needs a path");
            opt.socketPath = val;
        } else if (key == "--spec") {
            only("--spec", submit);
            if (val.empty())
                GAZE_FATAL("--spec needs a file path");
            opt.specPath = val;
        } else if (key == "--cache-dir") {
            only("--cache-dir", daemon || bench);
            if (val.empty())
                GAZE_FATAL("--cache-dir needs a directory");
            opt.cacheDir = val;
        } else if (key == "--threads") {
            only("--threads", daemon || bench);
            opt.threads =
                static_cast<uint32_t>(parseCount(key, val, 4096));
        } else if (key == "--max-queued") {
            only("--max-queued", daemon);
            opt.maxQueued = parseCount(key, val, 1u << 20);
            if (opt.maxQueued < 1)
                GAZE_FATAL("--max-queued needs at least one cell");
        } else if (key == "--max-inflight") {
            only("--max-inflight", daemon);
            opt.maxInFlight = parseCount(key, val, 1u << 20);
            if (opt.maxInFlight < 1)
                GAZE_FATAL("--max-inflight needs at least one "
                           "submission");
        } else if (key == "--obs-trace") {
            only("--obs-trace", daemon);
            if (val.empty())
                GAZE_FATAL("--obs-trace needs a file path");
            opt.obsTracePath = val;
        } else if (key == "--verbose") {
            only("--verbose", daemon);
            opt.verbose = true;
        } else if (key == "--priority") {
            only("--priority", submit);
            // Priorities order the daemon's ready queue both ways:
            // digits with an optional leading '-'. Range matches the
            // protocol's accepted window.
            bool neg = !val.empty() && val[0] == '-';
            uint64_t mag = parseCount(
                key, neg ? val.substr(1) : val, 1000000);
            opt.priority = neg ? -static_cast<int64_t>(mag)
                               : static_cast<int64_t>(mag);
        } else if (key == "--out") {
            only("--out", submit || bench);
            opt.outPath = val;
        } else if (key == "--csv") {
            only("--csv", submit);
            opt.csvPath = val;
        } else if (key == "--quiet") {
            only("--quiet", submit);
            opt.quiet = true;
        } else {
            GAZE_FATAL("unknown option '", args[i],
                       "' (see gaze_serve --help)");
        }
    }

    if (!bench && opt.socketPath.empty())
        GAZE_FATAL("gaze_serve ", cmd, " needs --socket=PATH");
    if (submit && opt.specPath.empty())
        GAZE_FATAL("gaze_serve submit needs --spec=FILE");
    return opt;
}

} // namespace gaze
