/**
 * @file
 * gaze_trace: record registry workloads as .gzt files and inspect
 * them. "record" regenerates each workload deterministically and
 * persists it; "info" prints the header/provenance; "validate" decodes
 * every record and verifies the count and checksum. Parsing lives in
 * driver/cli.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/log.hh"
#include "driver/cli.hh"
#include "harness/export.hh"
#include "tracing/trace_io.hh"
#include "workloads/suites.hh"

namespace
{

using namespace gaze;

int
cmdRecord(const GazeTraceOptions &opt)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec)
        GAZE_FATAL("cannot create --out-dir '", opt.outDir,
                   "': ", ec.message());
    for (const auto &w : opt.workloads) {
        std::string path = opt.outDir + "/" + traceFileName(w.name);
        VectorTrace trace = w.make();
        std::string meta = "workload=" + w.name + " suite=" + w.suite
                           + " scale=" + std::to_string(simScale());
        TraceWriter writer(path, meta);
        writer.appendAll(trace.data());
        writer.finish();
        double bytes_per_rec =
            writer.recordsWritten()
                ? double(writer.payloadBytesWritten())
                      / double(writer.recordsWritten())
                : 0.0;
        std::printf("%s: %llu records, %llu payload bytes "
                    "(%.2f B/record)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    static_cast<unsigned long long>(
                        writer.payloadBytesWritten()),
                    bytes_per_rec);
    }
    std::printf("recorded %zu trace(s) to %s\n", opt.workloads.size(),
                opt.outDir.c_str());
    return 0;
}

/**
 * info --json: one document for all operands, so campaign tooling
 * and external scripts consume trace metadata without text scraping.
 * The op histogram requires a full decode (validate-grade), so bad
 * payloads surface here too: failed files get an "error" member and
 * a non-zero exit.
 */
int
cmdInfoJson(const GazeTraceOptions &opt)
{
    static const char *op_names[] = {"non_mem", "load",
                                     "dependent_load", "store",
                                     "stall"};
    int rc = 0;
    JsonWriter j;
    j.beginObject();
    j.key("traces").beginArray();
    for (const auto &f : opt.files) {
        TraceFileHeader head;
        TraceOpHistogram hist;
        std::string error;
        j.beginObject();
        j.field("file", f);
        if (!validateTraceFile(f, &head, &error, &hist)) {
            j.field("error", error);
            j.endObject();
            rc = 1;
            continue;
        }
        j.field("version", uint64_t(head.version));
        j.field("records", head.recordCount);
        j.field("payload_bytes", head.payloadBytes);
        j.field("bytes_per_record",
                head.recordCount ? double(head.payloadBytes)
                                       / double(head.recordCount)
                                 : 0.0);
        char checksum[20];
        std::snprintf(checksum, sizeof(checksum), "%016llx",
                      static_cast<unsigned long long>(head.checksum));
        j.field("checksum", std::string(checksum));
        j.field("cache_key", traceCacheKeyFromHeader(head));
        if (head.meta.empty())
            j.key("meta").nullValue();
        else
            j.field("meta", head.meta);
        j.key("ops").beginObject();
        for (size_t op = 0; op < 5; ++op)
            j.field(op_names[op], hist.counts[op]);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    std::printf("%s\n", j.str().c_str());
    return rc;
}

int
cmdInfo(const GazeTraceOptions &opt)
{
    if (opt.jsonOutput)
        return cmdInfoJson(opt);
    int rc = 0;
    for (const auto &f : opt.files) {
        TraceFileHeader head;
        std::string error;
        if (!probeTraceFile(f, &head, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            rc = 1;
            continue;
        }
        std::printf("%s:\n", f.c_str());
        std::printf("  version:       %u\n", head.version);
        std::printf("  records:       %llu\n",
                    static_cast<unsigned long long>(head.recordCount));
        std::printf("  payload bytes: %llu (%.2f B/record)\n",
                    static_cast<unsigned long long>(head.payloadBytes),
                    head.recordCount ? double(head.payloadBytes)
                                           / double(head.recordCount)
                                     : 0.0);
        std::printf("  checksum:      %016llx\n",
                    static_cast<unsigned long long>(head.checksum));
        std::printf("  meta:          %s\n",
                    head.meta.empty() ? "(none)" : head.meta.c_str());
    }
    return rc;
}

int
cmdValidate(const GazeTraceOptions &opt)
{
    int rc = 0;
    for (const auto &f : opt.files) {
        TraceFileHeader head;
        std::string error;
        if (!validateTraceFile(f, &head, &error)) {
            std::fprintf(stderr, "FAIL %s\n", error.c_str());
            rc = 1;
            continue;
        }
        std::printf("OK %s (%llu records)\n", f.c_str(),
                    static_cast<unsigned long long>(head.recordCount));
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    GazeTraceOptions opt = parseGazeTraceArgs(
        std::vector<std::string>(argv + 1, argv + argc));

    switch (opt.command) {
      case GazeTraceOptions::Command::Record:
        return cmdRecord(opt);
      case GazeTraceOptions::Command::Info:
        return cmdInfo(opt);
      case GazeTraceOptions::Command::Validate:
        return cmdValidate(opt);
      case GazeTraceOptions::Command::Help:
        std::fputs(gazeTraceUsage(), stdout);
        return 0;
    }
    return 0;
}
