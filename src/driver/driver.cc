#include "driver/driver.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "driver/thread_pool.hh"
#include "obs/trace.hh"
#include "prefetchers/registry.hh"
#include "harness/export.hh"
#include "harness/wallclock.hh"
#include "harness/table.hh"

namespace gaze
{
namespace
{

/**
 * Combined --obs-timeline document: every cell's sampler rows, each
 * prefixed with the (prefetcher, workload) cell identity so one CSV
 * holds the whole matrix. Deterministic: cells in matrix order,
 * columns in registry (name-sorted) order.
 */
std::string
timelineCsv(const MatrixSpec &spec,
            const std::vector<RunResult> &baselines,
            const std::vector<RunResult> &runs)
{
    const obs::SampleSeries *first = nullptr;
    for (const auto &r : baselines)
        if (!first && !r.obsSamples.names.empty())
            first = &r.obsSamples;
    for (const auto &r : runs)
        if (!first && !r.obsSamples.names.empty())
            first = &r.obsSamples;

    std::string csv = "prefetcher,workload,cycle";
    if (first)
        for (const auto &n : first->names) {
            csv += ',';
            csv += n;
        }
    csv += '\n';

    auto append = [&](const std::string &pf, const std::string &w,
                      const obs::SampleSeries &s) {
        for (const auto &row : s.rows) {
            csv += pf;
            csv += ',';
            csv += w;
            csv += ',';
            csv += std::to_string(row.cycle);
            for (uint64_t v : row.values) {
                csv += ',';
                csv += std::to_string(v);
            }
            csv += '\n';
        }
    };
    const size_t nw = spec.workloads.size();
    for (size_t wi = 0; wi < nw; ++wi)
        append("none", spec.workloads[wi].name,
               baselines[wi].obsSamples);
    for (size_t pi = 0; pi < spec.prefetchers.size(); ++pi)
        for (size_t wi = 0; wi < nw; ++wi)
            append(spec.prefetchers[pi], spec.workloads[wi].name,
                   runs[pi * nw + wi].obsSamples);
    return csv;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        GAZE_FATAL("cannot create '", path, "'");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out)
        GAZE_FATAL("write failed on '", path, "'");
}

} // namespace

MatrixResult
runMatrix(const MatrixSpec &spec)
{
    GAZE_ASSERT(!spec.prefetchers.empty(), "matrix needs a prefetcher axis");
    GAZE_ASSERT(!spec.workloads.empty(), "matrix needs a workload axis");
    GAZE_ASSERT(spec.cores >= 1, "matrix needs at least one core per cell");
    // Validate the level and every factory spec up front so a bad
    // flag fails before any simulation time is spent (and on the
    // calling thread, not inside a pool worker). Resolution also
    // validates each spec against its registry schema without paying
    // for a construction.
    pfSpecAt("none", spec.level);
    for (const auto &p : spec.prefetchers)
        resolvePrefetcherSpec(p);

    const size_t nw = spec.workloads.size();
    const size_t np = spec.prefetchers.size();
    const size_t jobs = nw + np * nw;

    WallTimer matrixTimer;

    std::vector<RunResult> baselines(nw);
    std::vector<RunResult> runs(np * nw);
    std::vector<double> cellSeconds(np * nw, 0.0);

    std::mutex progressMtx;
    size_t finished = 0;
    auto progress = [&](const std::string &pf, const std::string &w,
                        double secs) {
        if (!spec.verbose)
            return;
        std::unique_lock<std::mutex> lock(progressMtx);
        ++finished;
        std::fprintf(stderr, "[%zu/%zu] %s x %s (%.1fs)\n", finished,
                     jobs, pf.c_str(), w.c_str(), secs);
    };

    // One cell = one fresh System, fully independent of every other
    // cell, so the pool needs no synchronization beyond the pointers
    // into the pre-sized result vectors. Baselines additionally go
    // through the shared thread-safe cache so any future consumer of
    // these Runners (campaign engine, evaluate paths) deduplicates
    // against them instead of re-simulating.
    auto sharedBaselines = std::make_shared<BaselineCache>();

    // Observability: the matrix owns the trace sink; every cell's
    // Runner gets the same ObsConfig (excluded from cell identity).
    std::unique_ptr<obs::TraceSink> traceSink;
    if (!spec.obsTracePath.empty()) {
        traceSink = std::make_unique<obs::TraceSink>();
        obs::setGlobalTrace(traceSink.get());
    }
    RunConfig cellRun = spec.run;
    cellRun.obs.trace = traceSink.get();
    cellRun.obs.samplerInterval =
        spec.obsTimelinePath.empty() ? 0 : spec.obsInterval;

    std::atomic<uint64_t> totalInstr{0}, totalEvents{0};
    std::atomic<uint64_t> totalExecuted{0}, totalSkipped{0};
    std::atomic<uint64_t> totalFlips{0};
    auto runCell = [&](const WorkloadDef &w, const PfSpec &pf,
                       RunResult *out, double *secs) {
        obs::HostSpan cellSpan(
            obs::globalTrace(),
            "cell " + (pf.isNone() ? "baseline" : pf.label()) + " x "
                + w.name);
        WallTimer cellTimer;
        Runner runner(cellRun, sharedBaselines);
        std::vector<WorkloadDef> mix(spec.cores, w);
        *out = pf.isNone() ? runner.baselineMix(mix)
                           : runner.runMix(mix, pf);
        double dt = cellTimer.seconds();
        if (secs)
            *secs = dt;
        totalInstr.fetch_add(out->instructionsRetired,
                             std::memory_order_relaxed);
        totalEvents.fetch_add(out->engine.eventsDispatched,
                              std::memory_order_relaxed);
        totalExecuted.fetch_add(out->engine.cyclesExecuted,
                                std::memory_order_relaxed);
        totalSkipped.fetch_add(out->engine.cyclesSkipped,
                               std::memory_order_relaxed);
        totalFlips.fetch_add(out->engine.engineFlips,
                             std::memory_order_relaxed);
        progress(pf.isNone() ? "baseline" : pf.label(), w.name, dt);
    };

    MatrixResult result;
    result.threadsUsed = resolvePoolThreads(spec.threads, jobs);
    {
        ThreadPool pool(result.threadsUsed);
        for (size_t wi = 0; wi < nw; ++wi) {
            pool.submit([&, wi] {
                runCell(spec.workloads[wi], PfSpec{}, &baselines[wi],
                        nullptr);
            });
        }
        for (size_t pi = 0; pi < np; ++pi) {
            PfSpec pf = pfSpecAt(spec.prefetchers[pi], spec.level);
            for (size_t wi = 0; wi < nw; ++wi) {
                size_t cell = pi * nw + wi;
                pool.submit([&, pf, cell, wi] {
                    runCell(spec.workloads[wi], pf, &runs[cell],
                            &cellSeconds[cell]);
                });
            }
        }
        pool.wait();
    }

    // Publish the obs artifacts before results are picked apart; the
    // global host-span hook must come down before the sink dies.
    if (traceSink)
        obs::setGlobalTrace(nullptr);
    if (!spec.obsTimelinePath.empty())
        writeTextFile(spec.obsTimelinePath,
                      timelineCsv(spec, baselines, runs));
    if (traceSink)
        traceSink->writeTo(spec.obsTracePath);

    result.cells.reserve(np * nw);
    for (size_t pi = 0; pi < np; ++pi) {
        for (size_t wi = 0; wi < nw; ++wi) {
            size_t idx = pi * nw + wi;
            CellOutcome c;
            c.prefetcher = spec.prefetchers[pi];
            c.workload = spec.workloads[wi].name;
            c.suite = spec.workloads[wi].suite;
            c.metrics = computeMetrics(baselines[wi], runs[idx]);
            c.ipc = runs[idx].ipc();
            c.baseIpc = baselines[wi].ipc();
            c.seconds = cellSeconds[idx];
            c.eventsDispatched = runs[idx].engine.eventsDispatched;
            c.cyclesExecuted = runs[idx].engine.cyclesExecuted;
            c.cyclesSkipped = runs[idx].engine.cyclesSkipped;
            c.minstrPerSec = runs[idx].minstrPerSec();
            result.cells.push_back(std::move(c));
        }
    }

    // Suite aggregation, in each suite's order of first appearance.
    std::vector<std::string> order;
    for (size_t wi = 0; wi < nw; ++wi) {
        const std::string &s = spec.workloads[wi].suite;
        if (std::find(order.begin(), order.end(), s) == order.end())
            order.push_back(s);
    }
    for (size_t pi = 0; pi < np; ++pi) {
        for (const auto &suite : order) {
            SuiteOutcome so;
            so.prefetcher = spec.prefetchers[pi];
            so.suite = suite;
            std::vector<double> speedups;
            double acc = 0.0, cov = 0.0, late = 0.0;
            for (size_t wi = 0; wi < nw; ++wi) {
                if (spec.workloads[wi].suite != suite)
                    continue;
                const PrefetchMetrics &m =
                    result.cells[pi * nw + wi].metrics;
                speedups.push_back(m.speedup);
                acc += m.accuracy;
                cov += m.coverage;
                late += m.lateFraction;
            }
            so.workloads = static_cast<uint32_t>(speedups.size());
            so.summary.speedup = geomean(speedups);
            so.summary.accuracy = acc / double(so.workloads);
            so.summary.coverage = cov / double(so.workloads);
            so.summary.lateFraction = late / double(so.workloads);
            result.suites.push_back(std::move(so));
        }
    }

    result.engine = engineKindName(spec.run.system.engine);
    result.totalInstructions = totalInstr.load();
    result.totalEvents = totalEvents.load();
    result.totalCyclesExecuted = totalExecuted.load();
    result.totalCyclesSkipped = totalSkipped.load();
    result.totalEngineFlips = totalFlips.load();
    result.seconds = matrixTimer.seconds();
    return result;
}

std::string
matrixToJson(const MatrixSpec &spec, const MatrixResult &result)
{
    JsonWriter j;
    j.beginObject();
    j.field("experiment", spec.name);

    j.key("config").beginObject();
    j.field("scale", simScale());
    j.field("warmup_instructions", spec.run.effectiveWarmup());
    j.field("sim_instructions", spec.run.effectiveSim());
    j.field("cores", uint64_t(spec.cores));
    j.field("level", spec.level);
    j.field("threads", uint64_t(result.threadsUsed));
    j.field("engine", result.engine);
    j.field("sim_threads", uint64_t(spec.run.system.simThreads));
    // Wall-clock throughput fields are only comparable between runs
    // on a like host; record the machine class alongside them.
    // gaze-lint: allow(raw-thread): hardware_concurrency() query
    // only, no thread is created
    j.field("host_cpus", uint64_t(std::thread::hardware_concurrency()));
    // Trace provenance: where the workload streams came from, so a
    // result document is reproducible on its own. trace_dir is null
    // for generator runs (traces regenerated from RNG state).
    if (spec.traceDir.empty())
        j.key("trace_dir").nullValue();
    else
        j.field("trace_dir", spec.traceDir);
    j.endObject();

    j.key("prefetchers").beginArray();
    for (const auto &p : spec.prefetchers)
        j.value(p);
    j.endArray();

    j.key("workloads").beginArray();
    for (const auto &w : spec.workloads) {
        j.beginObject();
        j.field("name", w.name);
        j.field("suite", w.suite);
        j.field("source",
                w.traceFile.empty() ? "generator" : "trace_file");
        if (!w.traceFile.empty())
            j.field("trace_file", w.traceFile);
        j.endObject();
    }
    j.endArray();

    j.key("cells").beginArray();
    for (const auto &c : result.cells) {
        j.beginObject();
        j.field("prefetcher", c.prefetcher);
        j.field("workload", c.workload);
        j.field("suite", c.suite);
        j.field("speedup", c.metrics.speedup);
        j.field("accuracy", c.metrics.accuracy);
        j.field("coverage", c.metrics.coverage);
        j.field("late_fraction", c.metrics.lateFraction);
        j.field("ipc", c.ipc);
        j.field("base_ipc", c.baseIpc);
        j.field("pf_issued", c.metrics.pfIssued);
        j.field("pf_filled", c.metrics.pfFilled);
        j.field("pf_useful", c.metrics.pfUseful);
        j.field("pf_late", c.metrics.pfLate);
        j.field("pf_late_load", c.metrics.pfLateLoad);
        j.field("pf_late_rfo", c.metrics.pfLateRfo);
        j.field("llc_miss_base", c.metrics.llcMissBase);
        j.field("llc_miss_pf", c.metrics.llcMissPf);
        // Per-scheme lifecycle attribution (empty when GAZE_OBS=OFF).
        j.key("schemes").beginArray();
        for (const SchemeMetrics &s : c.metrics.schemes) {
            j.beginObject();
            j.field("name", s.name);
            j.field("issued", s.issued);
            j.field("filled", s.filled);
            j.field("useful", s.useful);
            j.field("late", s.late);
            j.field("useless", s.useless);
            j.field("accuracy", s.accuracy);
            j.field("coverage", s.coverage);
            j.field("pollution", s.pollution);
            j.field("late_fraction", s.lateFraction);
            j.field("avg_fill_to_use", s.avgFillToUse);
            j.endObject();
        }
        j.endArray();
        j.field("seconds", c.seconds);
        j.field("events_dispatched", c.eventsDispatched);
        j.field("cycles_executed", c.cyclesExecuted);
        j.field("cycles_skipped", c.cyclesSkipped);
        j.field("minstr_per_sec", c.minstrPerSec);
        j.endObject();
    }
    j.endArray();

    j.key("suites").beginArray();
    for (const auto &s : result.suites) {
        j.beginObject();
        j.field("prefetcher", s.prefetcher);
        j.field("suite", s.suite);
        j.field("workloads", uint64_t(s.workloads));
        j.field("speedup", s.summary.speedup);
        j.field("accuracy", s.summary.accuracy);
        j.field("coverage", s.summary.coverage);
        j.field("late_fraction", s.summary.lateFraction);
        j.endObject();
    }
    j.endArray();

    // Simulation speed of the whole matrix: how fast the simulator
    // itself ran (every matrix run reports it; bench_engine tracks it
    // over time in BENCH_engine.json).
    j.key("engine").beginObject();
    j.field("kind", result.engine);
    j.field("instructions_simulated", result.totalInstructions);
    j.field("events_dispatched", result.totalEvents);
    j.field("cycles_executed", result.totalCyclesExecuted);
    j.field("cycles_skipped", result.totalCyclesSkipped);
    j.field("engine_flips", result.totalEngineFlips);
    uint64_t totalCycles =
        result.totalCyclesExecuted + result.totalCyclesSkipped;
    j.field("skip_fraction",
            totalCycles ? double(result.totalCyclesSkipped)
                              / double(totalCycles)
                        : 0.0);
    j.field("minstr_per_sec", result.minstrPerSec());
    j.endObject();

    j.field("elapsed_seconds", result.seconds);
    j.endObject();
    return j.str();
}

std::string
matrixEngineTable(const MatrixResult &result)
{
    TextTable t({"prefetcher", "workload", "minstr/s", "skipped",
                 "events", "late"});
    for (const auto &c : result.cells) {
        uint64_t cycles = c.cyclesExecuted + c.cyclesSkipped;
        double skip =
            cycles ? double(c.cyclesSkipped) / double(cycles) : 0.0;
        t.addRow({c.prefetcher, c.workload,
                  TextTable::fmt(c.minstrPerSec),
                  TextTable::pct(skip),
                  std::to_string(c.eventsDispatched),
                  std::to_string(c.metrics.pfLate)});
    }
    std::string out = t.toString();

    uint64_t totalCycles =
        result.totalCyclesExecuted + result.totalCyclesSkipped;
    double skip = totalCycles ? double(result.totalCyclesSkipped)
                                    / double(totalCycles)
                              : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "\nengine: %s | %.2f Minstr in %.2fs -> %.2f "
                  "Minstr/s aggregate | %.1f%% of cycles skipped\n",
                  result.engine.c_str(),
                  double(result.totalInstructions) / 1e6,
                  result.seconds, result.minstrPerSec(),
                  100.0 * skip);
    out += line;
    return out;
}

std::string
matrixSchemeTable(const MatrixResult &result)
{
    bool any = false;
    for (const auto &c : result.cells)
        any = any || !c.metrics.schemes.empty();
    if (!any)
        return "";

    TextTable t({"prefetcher", "workload", "scheme", "issued",
                 "filled", "useful", "late", "useless", "accuracy",
                 "pollution", "fill2use"});
    for (const auto &c : result.cells) {
        for (const SchemeMetrics &s : c.metrics.schemes) {
            t.addRow({c.prefetcher, c.workload, s.name,
                      std::to_string(s.issued),
                      std::to_string(s.filled),
                      std::to_string(s.useful),
                      std::to_string(s.late),
                      std::to_string(s.useless),
                      TextTable::pct(s.accuracy),
                      TextTable::pct(s.pollution),
                      TextTable::fmt(s.avgFillToUse)});
        }
    }
    return t.toString();
}

std::string
matrixToTable(const MatrixResult &result)
{
    TextTable t({"prefetcher", "suite", "workloads", "speedup",
                 "accuracy", "coverage", "late"});
    for (const auto &s : result.suites) {
        t.addRow({s.prefetcher, s.suite, std::to_string(s.workloads),
                  TextTable::fmt(s.summary.speedup),
                  TextTable::pct(s.summary.accuracy),
                  TextTable::pct(s.summary.coverage),
                  TextTable::pct(s.summary.lateFraction)});
    }
    return t.toString();
}

} // namespace gaze
