/**
 * @file
 * The suite-runner driver behind the gaze_sim CLI: executes an
 * arbitrary prefetcher x workload matrix across a thread pool (one
 * System per cell, shared no-prefetch baselines), aggregates the
 * SIV-A3 metrics per cell and per suite, and renders the whole matrix
 * as a BENCH_<name>.json document via harness/export.
 *
 * The library half lives here so tests can run tiny matrices
 * in-process; main.cc only parses flags.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "workloads/suites.hh"

namespace gaze
{

/** Everything one matrix run needs. */
struct MatrixSpec
{
    /** Factory specs for the prefetcher axis (e.g. "gaze", "pmp"). */
    std::vector<std::string> prefetchers;

    /** Workload axis (suite expansion happens in the CLI). */
    std::vector<WorkloadDef> workloads;

    /**
     * Where the workloads' .gzt files came from when they replay
     * recorded traces (--trace-dir); empty for generator runs. Only
     * provenance — the workloads already carry their traceFile.
     */
    std::string traceDir;

    /** Attach level for every prefetcher: "l1" or "l2". */
    std::string level = "l1";

    /** Homogeneous core count per cell (workload replicated N times). */
    uint32_t cores = 1;

    /** System + phase lengths shared by every cell. */
    RunConfig run;

    /** Worker threads; 0 = hardware concurrency. */
    uint32_t threads = 0;

    /** Experiment id for the BENCH_<name>.json document. */
    std::string name = "gaze_sim";

    /** Per-cell progress lines on stderr. */
    bool verbose = false;

    // ---- Observability ---------------------------------------------
    // Obs never perturbs simulated state (obs-on runs are bitwise
    // identical to obs-off), so these knobs change only what gets
    // written next to the results, never the results themselves.

    /** Combined interval-sampler CSV path (--obs-timeline; "" = off). */
    std::string obsTimelinePath;

    /** Chrome-trace JSON path (--obs-trace; "" = off). */
    std::string obsTracePath;

    /** Sampler epoch in cycles (with --obs-timeline). */
    uint64_t obsInterval = 4096;
};

/** One (prefetcher, workload) cell of a finished matrix. */
struct CellOutcome
{
    std::string prefetcher;
    std::string workload;
    std::string suite;

    PrefetchMetrics metrics;
    double ipc = 0.0;     ///< mean IPC with the prefetcher
    double baseIpc = 0.0; ///< mean IPC of the shared baseline
    double seconds = 0.0; ///< wall time of this cell's simulation

    // Engine-speed slice of this cell's run (baseline excluded).
    uint64_t eventsDispatched = 0;
    uint64_t cyclesExecuted = 0;
    uint64_t cyclesSkipped = 0;
    double minstrPerSec = 0.0;
};

/** Suite-level aggregate for one prefetcher (geomean speedup etc.). */
struct SuiteOutcome
{
    std::string prefetcher;
    std::string suite;
    SuiteSummary summary;
    uint32_t workloads = 0;
};

/** A completed matrix. */
struct MatrixResult
{
    std::vector<CellOutcome> cells;   ///< row-major: prefetcher, workload
    std::vector<SuiteOutcome> suites; ///< per (prefetcher, suite)
    double seconds = 0.0;             ///< wall time of the whole matrix
    uint32_t threadsUsed = 0;

    // Whole-matrix engine totals, baselines included. The aggregate
    // throughput (totalInstructions / seconds) reflects thread-pool
    // parallelism, unlike the per-cell numbers.
    std::string engine;               ///< "event", "polled" or "auto"
    uint64_t totalInstructions = 0;
    uint64_t totalEvents = 0;
    uint64_t totalCyclesExecuted = 0;
    uint64_t totalCyclesSkipped = 0;
    uint64_t totalEngineFlips = 0;    ///< auto engine mode switches

    /** Matrix-level Minstr/s (all simulated instructions over wall). */
    double
    minstrPerSec() const
    {
        return seconds > 0.0
                   ? double(totalInstructions) / seconds / 1e6
                   : 0.0;
    }
};

/**
 * Run the matrix: baselines first (one per workload, shared by every
 * prefetcher row), then all prefetcher cells, all on the pool. Fatal
 * on empty axes or an unknown level.
 */
MatrixResult runMatrix(const MatrixSpec &spec);

/** Render spec + result as the BENCH_*.json document text. */
std::string matrixToJson(const MatrixSpec &spec, const MatrixResult &result);

/** Render the per-suite summary as an aligned text table for stdout. */
std::string matrixToTable(const MatrixResult &result);

/**
 * Render per-cell simulation-speed stats (Minstr/s, skipped-cycle
 * fraction, events, late prefetches) plus the matrix aggregate:
 * gaze_sim --engine-stats output.
 */
std::string matrixEngineTable(const MatrixResult &result);

/**
 * Render the per-scheme lifecycle breakdown (obs attribution): one
 * row per (prefetcher, workload, scheme) with accuracy / pollution /
 * timeliness. Empty string when no cell carries scheme data
 * (GAZE_OBS=OFF builds), so callers can print it unconditionally.
 */
std::string matrixSchemeTable(const MatrixResult &result);

} // namespace gaze
