/**
 * @file
 * Gaze's Pattern History Module (PHM, §III-D): the Pattern History
 * Table for normal spatial patterns (case 2), and the streaming-
 * detection pair — Dense PC Table + Dense Counter — for spatial
 * streaming (case 1).
 *
 * The PHT encodes the paper's key idea structurally: it is *indexed*
 * by the trigger offset and *tagged* by the second offset, so the
 * temporal order of the first two accesses is verified by the table
 * lookup itself, with zero extra metadata (§III-B).
 */

#pragma once

#include <array>
#include <cstdint>

#include "common/bitset.hh"
#include "common/lru_table.hh"
#include "common/sat_counter.hh"
#include "core/gaze_config.hh"

namespace gaze
{

/** An ordered list of the first few distinct offsets of a region. */
struct InitialAccesses
{
    std::array<uint16_t, 4> offset{};
    uint32_t count = 0;

    void
    push(uint16_t off)
    {
        if (count < offset.size())
            offset[count] = off;
        ++count;
    }

    uint16_t trigger() const { return offset[0]; }
    uint16_t second() const { return offset[1]; }
};

/**
 * Pattern History Table: (trigger, second, ...) -> footprint bit
 * vector. Generalized to numInitialAccesses offsets for the Fig. 4
 * study; the default (2) gives the paper's index/tag split.
 */
class PatternHistoryTable
{
  public:
    explicit PatternHistoryTable(const GazeConfig &config);

    /** Learn (insert or overwrite) the footprint for an event. */
    void learn(const InitialAccesses &event, const Bitset &footprint);

    /**
     * Strict lookup: every one of the first n offsets must match in
     * order. Returns the stored footprint or nullptr.
     */
    const Bitset *lookup(const InitialAccesses &event);

    /**
     * Approximate lookup for the strictMatch=false ablation: on a tag
     * miss, fall back to the most recently used pattern in the
     * indexed set (trigger matches, later offsets may not).
     */
    const Bitset *lookupApprox(const InitialAccesses &event);

    /** Entries currently valid (tests). */
    size_t occupancy() const;

    /** Storage bits per Table I: tag(6) + LRU(2) + bit vector. */
    uint64_t storageBits() const;

  private:
    uint64_t indexOf(const InitialAccesses &event) const;
    uint64_t tagOf(const InitialAccesses &event) const;

    GazeConfig cfg;
    LruTable<Bitset> table;
};

/**
 * Streaming detector: DPCT remembers PCs that recently produced dense
 * (entirely requested) streaming regions; the global 3-bit DC tracks
 * how often streaming-case regions have been dense lately.
 */
class StreamingDetector
{
  public:
    explicit StreamingDetector(const GazeConfig &config);

    /** Learning: a streaming-case region finished fully dense. */
    void onDenseRegion(uint64_t hashed_pc);

    /** Learning: a streaming-case region finished sparse. */
    void onSparseRegion();

    /** Is this PC recorded as a recent dense PC? */
    bool isDensePc(uint64_t hashed_pc) const;

    /** Dense counter saturated ("DC full")? */
    bool counterFull() const { return dc.full(); }

    /** Dense counter above half threshold ("DC > 2")? */
    bool counterAboveHalf() const { return dc.aboveHalf(); }

    uint32_t counterValue() const { return dc.value(); }

    /** Storage bits per Table I: 8 x (12b PC + 3b LRU) + 3b DC. */
    uint64_t storageBits() const;

  private:
    struct Empty
    {
    };

    GazeConfig cfg;
    LruTable<Empty> dpct; ///< fully associative: 1 set, N ways
    DenseCounter dc;
};

} // namespace gaze
