/**
 * @file
 * Configuration knobs for the Gaze prefetcher. Defaults reproduce the
 * paper's Table I configuration; the non-default settings exist to
 * reproduce specific figures (ablations and sensitivity sweeps), as
 * noted per field.
 */

#pragma once

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace gaze
{

/** All Gaze parameters (paper defaults). */
struct GazeConfig
{
    /** Spatial region size in bytes (4KB default; Figs. 17a and 18). */
    uint64_t regionSize = 4096;

    /** Filter Table: 8-way, 64 entries (Table I). */
    uint32_t ftSets = 8;
    uint32_t ftWays = 8;

    /** Accumulation Table: 8-way, 64 entries (Table I). */
    uint32_t atSets = 8;
    uint32_t atWays = 8;

    /**
     * Pattern History Table: 4-way, 256 entries, indexed by the
     * trigger offset (64 sets for 4KB regions), tagged by the second
     * offset (Table I; size swept in Fig. 17b).
     */
    uint32_t phtSets = 64;
    uint32_t phtWays = 4;

    /** Dense PC Table: fully associative, 8 entries (Table I). */
    uint32_t dpctEntries = 8;

    /** Prefetch Buffer geometry (Table I). */
    uint32_t pbEntries = 32;
    uint32_t pbWays = 8;
    uint32_t pbIssuePerCycle = 2;

    /**
     * Number of initial accesses whose spatial+temporal alignment is
     * required for a match (Fig. 4 sweeps 1..4; the paper picks 2).
     * 1 degenerates to trigger-offset-only characterization.
     */
    uint32_t numInitialAccesses = 2;

    /**
     * Strict matching (§III-B): both the trigger index and second-
     * offset tag must match; no partial-match fallback. Setting false
     * allows a Bingo-style approximate match on the indexed set.
     */
    bool strictMatch = true;

    /**
     * Streaming module (DPCT + DC + two-stage aggressiveness, §III-C).
     * Disabled => "Gaze-PHT" in Fig. 9 (dense footprints go through
     * the PHT like any other pattern).
     */
    bool enableStreamingModule = true;

    /**
     * Fig. 10's PHT4SS setting: streaming-case regions are learned
     * and predicted via the PHT instead of the streaming module.
     */
    bool streamingViaPht = false;

    /**
     * Fig. 10 isolation: operate only on streaming-case regions
     * (trigger==0 && second==1); normal regions are neither learned
     * nor predicted. Used by the PHT4SS / SM4SS comparison.
     */
    bool streamingRegionsOnly = false;

    /** Region-local stride backup + stage-2 promotion (§III-C). */
    bool enableBackupStride = true;

    /** Stage 1 moderate aggressiveness: blocks sent to L1D. */
    uint32_t streamHeadBlocks = 16;

    /** Stage 2 promotion: blocks promoted per confirmation... */
    uint32_t promoteBlocks = 4;

    /** ...skipping this many blocks already in flight (Fig. 3c). */
    uint32_t promoteSkip = 2;

    /** Blocks per region under this configuration. */
    uint32_t
    blocksPerRegion() const
    {
        return static_cast<uint32_t>(regionSize / blockSize);
    }

    /**
     * Die loudly on impossible geometry instead of mis-indexing: every
     * table derives its set index with a power-of-two mask, and the PB
     * partitions its entries evenly across ways. Called from the
     * GazePrefetcher constructor so sweeps (factory option strings,
     * sensitivity benches) cannot construct a silently-aliasing table.
     */
    void
    validate() const
    {
        GAZE_ASSERT(isPowerOfTwo(regionSize) && regionSize >= 2 * blockSize,
                    "regionSize must be a power of two >= two blocks, got ",
                    regionSize);
        GAZE_ASSERT(isPowerOfTwo(ftSets),
                    "ftSets must be a power of two, got ", ftSets);
        GAZE_ASSERT(isPowerOfTwo(atSets),
                    "atSets must be a power of two, got ", atSets);
        GAZE_ASSERT(isPowerOfTwo(phtSets),
                    "phtSets must be a power of two, got ", phtSets);
        GAZE_ASSERT(ftWays >= 1 && atWays >= 1 && phtWays >= 1,
                    "table ways must be >= 1");
        GAZE_ASSERT(dpctEntries >= 1, "DPCT needs at least one entry");
        GAZE_ASSERT(isValidSetSplit(pbEntries, pbWays),
                    "PB geometry must split into a power-of-two set count, "
                    "got ", pbEntries, " entries x ", pbWays, " ways");
        GAZE_ASSERT(pbIssuePerCycle >= 1, "PB must issue at least one/cycle");
        GAZE_ASSERT(numInitialAccesses >= 1 && numInitialAccesses <= 4,
                    "numInitialAccesses out of range: ", numInitialAccesses);
    }
};

} // namespace gaze
