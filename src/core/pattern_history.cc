#include "core/pattern_history.hh"

namespace gaze
{

PatternHistoryTable::PatternHistoryTable(const GazeConfig &config)
    : cfg(config), table(config.phtSets, config.phtWays)
{
    GAZE_ASSERT(isPowerOfTwo(cfg.phtSets), "PHT sets not a power of two");
}

uint64_t
PatternHistoryTable::indexOf(const InitialAccesses &event) const
{
    return event.trigger() % cfg.phtSets;
}

uint64_t
PatternHistoryTable::tagOf(const InitialAccesses &event) const
{
    // The tag concatenates the offsets beyond the first (the paper's
    // second-offset tag when n == 2), plus any trigger bits that did
    // not fit in the index, so correctness is geometry-independent.
    uint64_t tag = event.trigger() / cfg.phtSets;
    uint32_t n = cfg.numInitialAccesses;
    for (uint32_t i = 1; i < n && i < event.offset.size(); ++i)
        tag = (tag << 12) | (uint64_t(event.offset[i]) + 1);
    return tag;
}

void
PatternHistoryTable::learn(const InitialAccesses &event,
                           const Bitset &footprint)
{
    table.insert(indexOf(event), tagOf(event), footprint);
}

const Bitset *
PatternHistoryTable::lookup(const InitialAccesses &event)
{
    return table.find(indexOf(event), tagOf(event));
}

const Bitset *
PatternHistoryTable::lookupApprox(const InitialAccesses &event)
{
    if (const Bitset *exact = table.find(indexOf(event), tagOf(event)))
        return exact;
    // Partial match: any pattern whose trigger offset matches. Pick
    // the one with the highest LRU recency by scanning the set.
    const Bitset *best = nullptr;
    uint64_t set = indexOf(event);
    table.forEach([&](uint64_t s, uint64_t, Bitset &fp) {
        if (s == set)
            best = &fp; // forEach visits in way order; any way works
    });
    return best;
}

size_t
PatternHistoryTable::occupancy() const
{
    return table.occupancy();
}

uint64_t
PatternHistoryTable::storageBits() const
{
    // Table I: per entry tag(6b) + LRU(2b) + bit vector.
    uint64_t per_entry = 6 + 2 + cfg.blocksPerRegion();
    return uint64_t(cfg.phtSets) * cfg.phtWays * per_entry;
}

StreamingDetector::StreamingDetector(const GazeConfig &config)
    : cfg(config), dpct(1, config.dpctEntries)
{
}

void
StreamingDetector::onDenseRegion(uint64_t hashed_pc)
{
    dpct.insert(0, hashed_pc, Empty{});
    dc.onDense();
}

void
StreamingDetector::onSparseRegion()
{
    dc.onSparse();
}

bool
StreamingDetector::isDensePc(uint64_t hashed_pc) const
{
    return dpct.contains(0, hashed_pc);
}

uint64_t
StreamingDetector::storageBits() const
{
    return uint64_t(cfg.dpctEntries) * (12 + 3) + 3;
}

} // namespace gaze
