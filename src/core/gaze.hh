/**
 * @file
 * The Gaze spatial prefetcher (the paper's contribution, §III).
 *
 * Structure (Fig. 3b):
 *  - Filter Table (FT): holds regions seen exactly once, filtering
 *    one-bit footprints and capturing the trigger offset + PC.
 *  - Accumulation Table (AT): tracks active regions' footprints, the
 *    ordered first accesses, the last two offsets (for the region-
 *    local stride mechanism) and the stride flag.
 *  - Pattern History Module: PHT (trigger-indexed, second-tagged
 *    footprints) plus the streaming detector (DPCT + DC).
 *  - Prefetch Buffer (PB): pending per-region prefetch patterns with
 *    rate-limited issue and promotion merging.
 *
 * Flow: a region's second distinct access promotes FT -> AT and sends
 * (trigger, second, PC) to the PHM, which either applies the two-stage
 * streaming policy (trigger==0 && second==1) or does a strict PHT
 * match. Deactivation (block eviction or AT replacement) sends the
 * accumulated footprint back to the PHM for learning.
 */

#pragma once

#include <optional>
#include <string>

#include "common/bitset.hh"
#include "common/lru_table.hh"
#include "core/gaze_config.hh"
#include "core/pattern_history.hh"
#include "prefetchers/prefetch_buffer.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

/** Decision/structure counters exposed for tests and ablation benches. */
struct GazeCounters
{
    uint64_t regionsActivated = 0;   ///< FT -> AT promotions
    uint64_t predictions = 0;        ///< PHM consultations
    uint64_t phtHits = 0;
    uint64_t phtMisses = 0;
    uint64_t streamFullAggr = 0;     ///< stage 1: 16->L1 + rest->L2
    uint64_t streamHalfAggr = 0;     ///< stage 1: 16->L2 only
    uint64_t streamNoPrefetch = 0;   ///< stage 1: refrain
    uint64_t stridePromotions = 0;   ///< stage 2 / backup activations
    uint64_t learnedDense = 0;
    uint64_t learnedSparse = 0;
    uint64_t learnedPht = 0;
    uint64_t evictionDeactivations = 0;
};

/** Gaze, attachable at L1D (virtual-address regions) or L2C. */
class GazePrefetcher : public Prefetcher
{
  public:
    explicit GazePrefetcher(const GazeConfig &config = {});

    std::string name() const override;

    void attach(const PrefetcherContext &ctx) override;
    void onAccess(const DemandAccess &access) override;
    void onEvict(Addr paddr, Addr vaddr) override;
    void tick() override;
    bool busy() const override;
    uint64_t storageBits() const override;

    const GazeConfig &config() const { return cfg; }
    const GazeCounters &counters() const { return ctr; }

    /** Introspection for unit tests. */
    size_t ftOccupancy() const;
    size_t atOccupancy() const;
    const PatternHistoryTable &pht() const { return phtTable; }
    const StreamingDetector &streaming() const { return detector; }
    PrefetchBuffer &prefetchBuffer() { return *pb; }

  private:
    struct FtEntry
    {
        uint16_t trigger = 0;
        uint64_t hashedPc = 0;
    };

    struct AtEntry
    {
        Bitset footprint{64};
        InitialAccesses first;
        uint64_t hashedPc = 0;
        uint16_t last = 0;
        uint16_t penult = 0;
        bool haveTwo = false;   ///< last & penult both valid
        bool strideFlag = false;
        bool predicted = false;
    };

    /** Region-tracking address: virtual at L1D, physical below. */
    Addr trackAddr(const DemandAccess &a) const;

    void handleAtHit(Addr region_base, AtEntry &e, uint32_t off);
    void activateRegion(Addr region_base, uint64_t rnum, uint32_t off,
                        const FtEntry &ft);

    /** Consult the PHM and install a prefetch pattern (Fig. 3c). */
    void predict(Addr region_base, AtEntry &e);

    /** Region deactivated: send the footprint to the PHM (Fig. 3a). */
    void learn(const AtEntry &e);

    /** Stage-2 promotion / backup stride issue around @p off. */
    void strideIssue(Addr region_base, uint32_t off, int64_t stride);

    /** Drop pattern bits for blocks the region already demanded. */
    void maskAccessed(PfPattern &pattern, const Bitset &footprint) const;

    bool
    isStreamingCase(const InitialAccesses &f) const
    {
        return f.count >= 2 && f.offset[0] == 0 && f.offset[1] == 1;
    }

    GazeConfig cfg;
    uint32_t blocks;
    bool useVirtual = true;

    LruTable<FtEntry> ft;
    LruTable<AtEntry> at;
    PatternHistoryTable phtTable;
    StreamingDetector detector;
    std::optional<PrefetchBuffer> pb;

    /**
     * Reused pattern scratch for the three install paths: patterns are
     * built, handed to PrefetchBuffer::install (which copies in
     * place), and dead immediately after — one buffer serves all
     * three without per-prediction allocation.
     */
    PfPattern patScratch;

    GazeCounters ctr;
};

} // namespace gaze
