#include "core/gaze.hh"

#include <algorithm>

#include "common/log.hh"
#include "prefetchers/registry.hh"

namespace gaze
{
namespace
{

/** Validate before any member table is built from the geometry. */
const GazeConfig &
validated(const GazeConfig &config)
{
    config.validate();
    return config;
}

} // namespace

GazePrefetcher::GazePrefetcher(const GazeConfig &config)
    : cfg(validated(config)), blocks(config.blocksPerRegion()),
      ft(config.ftSets, config.ftWays), at(config.atSets, config.atWays),
      phtTable(config), detector(config)
{
}

std::string
GazePrefetcher::name() const
{
    return "gaze";
}

void
GazePrefetcher::attach(const PrefetcherContext &ctx)
{
    Prefetcher::attach(ctx);
    useVirtual = ctx.level == levelL1;

    PrefetchBufferParams pbp;
    pbp.entries = cfg.pbEntries;
    pbp.ways = cfg.pbWays;
    pbp.issuePerCycle = cfg.pbIssuePerCycle;
    pbp.blocksPerRegion = blocks;
    pbp.virtualSpace = useVirtual;
    pb.emplace(pbp);
}

Addr
GazePrefetcher::trackAddr(const DemandAccess &a) const
{
    return useVirtual && a.vaddr ? a.vaddr : a.paddr;
}

void
GazePrefetcher::maskAccessed(PfPattern &pattern,
                             const Bitset &footprint) const
{
    for (size_t b = footprint.findFirst(); b < footprint.size();
         b = footprint.findNext(b + 1))
        pattern[b] = PfLevel::None;
}

void
GazePrefetcher::onAccess(const DemandAccess &access)
{
    // Gaze is trained on cache loads (§III-A).
    if (access.type != AccessType::Load)
        return;

    Addr addr = trackAddr(access);
    Addr rbase = regionBase(addr, cfg.regionSize);
    uint64_t rnum = addr / cfg.regionSize;
    uint32_t off = regionOffset(addr, cfg.regionSize);

    if (pb)
        pb->onDemand(rbase, off);

    uint64_t at_set = rnum & (at.sets() - 1);
    if (AtEntry *e = at.find(at_set, rnum)) {
        handleAtHit(rbase, *e, off);
        return;
    }

    uint64_t ft_set = rnum & (ft.sets() - 1);
    if (FtEntry *f = ft.find(ft_set, rnum)) {
        if (f->trigger == off)
            return; // same block again: still a one-bit footprint
        FtEntry copy = *f;
        ft.erase(ft_set, rnum);
        activateRegion(rbase, rnum, off, copy);
        return;
    }

    // Brand-new region: record the trigger access in the FT.
    FtEntry fresh;
    fresh.trigger = static_cast<uint16_t>(off);
    fresh.hashedPc = hashPC(access.pc, 12);
    ft.insert(ft_set, rnum, fresh);

    if (cfg.numInitialAccesses == 1) {
        // Degenerate configuration (Fig. 4, n=1): predict from the
        // trigger alone, conventional-style, with no AT entry yet.
        AtEntry tmp;
        tmp.footprint = Bitset(blocks);
        tmp.footprint.set(off);
        tmp.first.push(static_cast<uint16_t>(off));
        tmp.hashedPc = fresh.hashedPc;
        predict(rbase, tmp);
    }
}

void
GazePrefetcher::handleAtHit(Addr region_base, AtEntry &e, uint32_t off)
{
    if (e.footprint.test(off))
        return; // repeated access to a tracked block

    e.footprint.set(off);
    e.first.push(static_cast<uint16_t>(off));

    if (!e.predicted && e.first.count >= cfg.numInitialAccesses)
        predict(region_base, e);

    // Region-local stride engine (➐ in Fig. 3b): promotion and backup.
    if (e.strideFlag && e.haveTwo && cfg.enableBackupStride) {
        int64_t s1 = int64_t(e.last) - int64_t(e.penult);
        int64_t s2 = int64_t(off) - int64_t(e.last);
        if (s1 == s2 && s1 != 0)
            strideIssue(region_base, off, s1);
    }

    e.penult = e.last;
    e.last = static_cast<uint16_t>(off);
    if (e.first.count >= 2)
        e.haveTwo = true;
}

void
GazePrefetcher::activateRegion(Addr region_base, uint64_t rnum,
                               uint32_t off, const FtEntry &f)
{
    ++ctr.regionsActivated;

    AtEntry e;
    e.footprint = Bitset(blocks);
    e.footprint.set(f.trigger);
    e.footprint.set(off);
    e.first.push(f.trigger);
    e.first.push(static_cast<uint16_t>(off));
    e.hashedPc = f.hashedPc;
    e.penult = f.trigger;
    e.last = static_cast<uint16_t>(off);
    e.haveTwo = true;

    // With n == 1 the prediction already happened at the trigger
    // access; do not re-predict on promotion.
    e.predicted = cfg.numInitialAccesses == 1;

    uint64_t at_set = rnum & (at.sets() - 1);
    auto evicted = at.insert(at_set, rnum, std::move(e));
    if (evicted)
        learn(evicted->data);

    AtEntry *ins = at.find(at_set, rnum, /*touch=*/false);
    GAZE_ASSERT(ins, "AT insert lost the entry");
    if (cfg.numInitialAccesses == 2)
        predict(region_base, *ins);
}

void
GazePrefetcher::predict(Addr region_base, AtEntry &e)
{
    e.predicted = true;
    ++ctr.predictions;

    bool streaming = isStreamingCase(e.first);
    if (cfg.streamingRegionsOnly && !streaming)
        return;

    if (streaming && cfg.enableStreamingModule && !cfg.streamingViaPht) {
        // Stage 1 (Fig. 3c top): choose the initial aggressiveness
        // from the double-check of DPCT and DC.
        patScratch.assign(blocks, PfLevel::None);
        PfPattern &pat = patScratch;
        bool any = false;
        if (detector.isDensePc(e.hashedPc) || detector.counterFull()) {
            ++ctr.streamFullAggr;
            for (uint32_t b = 0; b < blocks; ++b)
                pat[b] = b < cfg.streamHeadBlocks ? PfLevel::L1
                                                  : PfLevel::L2;
            any = true;
        } else if (detector.counterAboveHalf()) {
            ++ctr.streamHalfAggr;
            for (uint32_t b = 0; b < std::min(cfg.streamHeadBlocks,
                                              blocks); ++b)
                pat[b] = PfLevel::L2;
            any = true;
        } else {
            ++ctr.streamNoPrefetch;
        }
        // Stage 2 arming: all streaming-case regions get the stride
        // flag so later unit strides can promote aggressiveness.
        e.strideFlag = true;
        if (any && pb) {
            maskAccessed(pat, e.footprint);
            pb->install(region_base, pat, e.first.second() + 1);
        }
        return;
    }

    // Normal case (Fig. 3c bottom): strict PHT match on the first n
    // offsets; on a miss, arm the stride backup.
    const Bitset *fp = cfg.strictMatch ? phtTable.lookup(e.first)
                                       : phtTable.lookupApprox(e.first);
    if (fp) {
        ++ctr.phtHits;
        patScratch.assign(blocks, PfLevel::None);
        PfPattern &pat = patScratch;
        for (size_t b = fp->findFirst(); b < fp->size();
             b = fp->findNext(b + 1))
            pat[b] = PfLevel::L1; // PHT prefetches all blocks into L1D
        maskAccessed(pat, e.footprint);
        if (pb) {
            uint32_t start = e.first.count >= 2 ? e.first.second() + 1
                                                : e.first.trigger() + 1;
            pb->install(region_base, pat, start);
        }
    } else {
        ++ctr.phtMisses;
        if (cfg.enableBackupStride)
            e.strideFlag = true;
    }
}

void
GazePrefetcher::strideIssue(Addr region_base, uint32_t off,
                            int64_t stride)
{
    patScratch.assign(blocks, PfLevel::None);
    PfPattern &pat = patScratch;
    bool any = false;
    for (uint32_t k = 0; k < cfg.promoteBlocks; ++k) {
        int64_t t = int64_t(off)
                    + stride * int64_t(cfg.promoteSkip + 1 + k);
        if (t < 0 || t >= int64_t(blocks))
            break;
        pat[size_t(t)] = PfLevel::L1;
        any = true;
    }
    if (any && pb) {
        ++ctr.stridePromotions;
        pb->install(region_base, pat,
                    uint32_t(std::clamp<int64_t>(
                        int64_t(off) + stride, 0, int64_t(blocks) - 1)));
    }
}

void
GazePrefetcher::learn(const AtEntry &e)
{
    bool streaming = isStreamingCase(e.first);
    if (cfg.streamingRegionsOnly && !streaming)
        return;

    if (streaming && cfg.enableStreamingModule && !cfg.streamingViaPht) {
        // Fig. 3a top path: spatial streaming detection. "Entirely
        // requested" is relaxed to a long contiguous run from the
        // region head: generations routinely end early (a tracked
        // block is evicted while interleaved traffic churns the L1),
        // and a truncated stream still shows a dense prefix, while a
        // sparse lookalike never does.
        bool dense = e.footprint.all()
                     || e.footprint.leadingRun() >= cfg.streamHeadBlocks;
        if (dense) {
            ++ctr.learnedDense;
            detector.onDenseRegion(e.hashedPc);
        } else {
            ++ctr.learnedSparse;
            detector.onSparseRegion();
        }
        return;
    }

    if (e.first.count >= cfg.numInitialAccesses) {
        ++ctr.learnedPht;
        phtTable.learn(e.first, e.footprint);
    }
}

void
GazePrefetcher::onEvict(Addr paddr, Addr vaddr)
{
    Addr addr = useVirtual ? vaddr : paddr;
    if (useVirtual && vaddr == 0)
        return; // untracked mapping (e.g. prefetched block's vaddr lost)

    uint64_t rnum = addr / cfg.regionSize;
    uint32_t off = regionOffset(addr, cfg.regionSize);
    uint64_t at_set = rnum & (at.sets() - 1);
    AtEntry *e = at.find(at_set, rnum, /*touch=*/false);
    if (!e || !e->footprint.test(off))
        return;
    // One of the region's demanded blocks left the cache: the
    // generation ends and the footprint goes back to the PHM.
    ++ctr.evictionDeactivations;
    learn(*e);
    at.erase(at_set, rnum);
}

void
GazePrefetcher::tick()
{
    if (!pb)
        return;
    pb->drain([&](Addr a, uint32_t fill, bool virt) {
        uint32_t lvl = std::max(fill, context.level);
        return issuePrefetch(a, lvl, virt);
    });
}

bool
GazePrefetcher::busy() const
{
    return pb && pb->drainPending();
}

uint64_t
GazePrefetcher::storageBits() const
{
    // Table I, field by field.
    uint64_t ft_bits = uint64_t(cfg.ftSets) * cfg.ftWays
                       * (36 + 3 + 12 + 6);
    uint64_t at_bits = uint64_t(cfg.atSets) * cfg.atWays
                       * (36 + 3 + 12 + 1 + 2 * 6 + 2 * 6 + blocks);
    uint64_t pht_bits = phtTable.storageBits();
    uint64_t dpct_bits = detector.storageBits();
    uint64_t pb_bits = pb ? pb->storageBits()
                          : uint64_t(cfg.pbEntries) * (36 + 3 + 2 * blocks);
    return ft_bits + at_bits + pht_bits + dpct_bits + pb_bits;
}

size_t
GazePrefetcher::ftOccupancy() const
{
    return ft.occupancy();
}

size_t
GazePrefetcher::atOccupancy() const
{
    return at.occupancy();
}

GAZE_REGISTER_PREFETCHER(gaze)
{
    PrefetcherDescriptor d;
    d.name = "gaze";
    d.doc = "Gaze: spatial patterns characterized by their first "
            "temporally-ordered accesses, plus a streaming module "
            "(the paper's scheme, Table I configuration)";
    d.options = {
        OptionSchema::uintRange(
            "region", 4096, 2 * blockSize, 1u << 20,
            "spatial region size in bytes (Figs. 17a/18)", true),
        OptionSchema::uintRange(
            "n", 2, 1, 4,
            "initial accesses required for a pattern match (Fig. 4)"),
        OptionSchema::uintRange(
            "phtsets", 0, 0, 1u << 20,
            "PHT sets; 0 = auto (64, or one fully-associative set "
            "when n >= 3) (Fig. 17b)",
            true),
        OptionSchema::uintRange(
            "phtways", 0, 0, 4096,
            "PHT ways; 0 = auto (4, or 256 when n >= 3 and phtsets "
            "is auto too)"),
        OptionSchema::flag(
            "nostream",
            "disable the streaming module (Gaze-PHT in Fig. 9)"),
        OptionSchema::flag(
            "pht4ss",
            "learn/predict streaming-case regions via the PHT "
            "(Fig. 10)"),
        OptionSchema::flag(
            "sm4ss",
            "operate on streaming-case regions only (Fig. 10)"),
        OptionSchema::flag(
            "nobackup",
            "disable the region-local backup stride (§III-C)"),
        OptionSchema::flag(
            "loose",
            "approximate (non-strict) PHT matching (§III-B)"),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        GazeConfig cfg;
        cfg.regionSize = o.num("region");
        cfg.numInitialAccesses = static_cast<uint32_t>(o.num("n"));
        // For n >= 3 the paper uses a 256-entry fully-associative
        // table; the 0 default means "pick the table for this n".
        // An explicit phtsets opts out of the fully-associative
        // shape entirely (matching the pre-registry factory), so
        // "gaze:n=3:phtsets=64" is a 64x4 table, not 64x256.
        uint64_t sets = o.num("phtsets");
        uint64_t ways = o.num("phtways");
        bool auto_fa = cfg.numInitialAccesses >= 3 && sets == 0;
        cfg.phtSets =
            static_cast<uint32_t>(sets ? sets : (auto_fa ? 1 : 64));
        cfg.phtWays =
            static_cast<uint32_t>(ways ? ways : (auto_fa ? 256 : 4));
        if (o.flag("nostream"))
            cfg.enableStreamingModule = false;
        if (o.flag("pht4ss")) {
            cfg.streamingViaPht = true;
            cfg.streamingRegionsOnly = true;
        }
        if (o.flag("sm4ss"))
            cfg.streamingRegionsOnly = true;
        if (o.flag("nobackup"))
            cfg.enableBackupStride = false;
        if (o.flag("loose"))
            cfg.strictMatch = false;
        // n == 1 is the pure trigger-offset characterization
        // ("Offset" in Figs. 1/9): everything, including dense
        // streaming patterns, goes through the offset-indexed PHT.
        if (cfg.numInitialAccesses == 1)
            cfg.enableStreamingModule = false;
        return std::make_unique<GazePrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
