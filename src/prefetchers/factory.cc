#include "prefetchers/factory.hh"

#include <cstdlib>
#include <map>

#include "common/log.hh"
#include "core/gaze.hh"
#include "prefetchers/berti.hh"
#include "prefetchers/bingo.hh"
#include "prefetchers/dspatch.hh"
#include "prefetchers/ip_stride.hh"
#include "prefetchers/ipcp.hh"
#include "prefetchers/pmp.hh"
#include "prefetchers/sms.hh"
#include "prefetchers/spp_ppf.hh"

namespace gaze
{
namespace
{

/** Parsed "name:key=value:..." spec. */
struct Spec
{
    std::string name;
    std::map<std::string, std::string> options;

    bool
    flag(const std::string &key) const
    {
        return options.count(key) > 0;
    }

    uint64_t
    num(const std::string &key, uint64_t dflt) const
    {
        auto it = options.find(key);
        return it == options.end()
                   ? dflt
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    std::string
    str(const std::string &key, const std::string &dflt) const
    {
        auto it = options.find(key);
        return it == options.end() ? dflt : it->second;
    }
};

Spec
parseSpec(const std::string &text)
{
    Spec s;
    size_t pos = text.find(':');
    s.name = text.substr(0, pos);
    while (pos != std::string::npos) {
        size_t next = text.find(':', pos + 1);
        std::string tok = text.substr(pos + 1,
                                      next == std::string::npos
                                          ? std::string::npos
                                          : next - pos - 1);
        size_t eq = tok.find('=');
        if (eq == std::string::npos)
            s.options[tok] = "1";
        else
            s.options[tok.substr(0, eq)] = tok.substr(eq + 1);
        pos = next;
    }
    return s;
}

std::unique_ptr<Prefetcher>
makeGaze(const Spec &s)
{
    GazeConfig cfg;
    cfg.regionSize = s.num("region", cfg.regionSize);
    cfg.numInitialAccesses =
        static_cast<uint32_t>(s.num("n", cfg.numInitialAccesses));
    cfg.phtSets = static_cast<uint32_t>(s.num("phtsets", cfg.phtSets));
    cfg.phtWays = static_cast<uint32_t>(s.num("phtways", cfg.phtWays));
    if (s.flag("nostream"))
        cfg.enableStreamingModule = false;
    if (s.flag("pht4ss")) {
        cfg.streamingViaPht = true;
        cfg.streamingRegionsOnly = true;
    }
    if (s.flag("sm4ss"))
        cfg.streamingRegionsOnly = true;
    if (s.flag("nobackup"))
        cfg.enableBackupStride = false;
    if (s.flag("loose"))
        cfg.strictMatch = false;
    // For n >= 3 the paper uses a 256-entry fully-associative table.
    if (cfg.numInitialAccesses >= 3 && !s.flag("phtsets")) {
        cfg.phtSets = 1;
        cfg.phtWays = 256;
    }
    // n == 1 is the pure trigger-offset characterization ("Offset" in
    // Figs. 1/9): everything, including dense streaming patterns,
    // goes through the offset-indexed PHT.
    if (cfg.numInitialAccesses == 1)
        cfg.enableStreamingModule = false;
    return std::make_unique<GazePrefetcher>(cfg);
}

std::unique_ptr<Prefetcher>
makeSms(const Spec &s)
{
    SmsParams cfg;
    std::string scheme = s.str("scheme", "pc+offset");
    if (scheme == "offset") {
        cfg.scheme = SmsEventScheme::Offset;
        cfg.phtSets = 64;
        cfg.phtWays = 1;
    } else if (scheme == "pc") {
        cfg.scheme = SmsEventScheme::Pc;
        cfg.phtSets = 64;
        cfg.phtWays = 4;
    } else if (scheme == "pc+offset") {
        cfg.scheme = SmsEventScheme::PcOffset;
    } else if (scheme == "pc+addr") {
        cfg.scheme = SmsEventScheme::PcAddr;
    } else {
        GAZE_FATAL("unknown sms scheme '", scheme, "'");
    }
    cfg.phtSets = static_cast<uint32_t>(s.num("phtsets", cfg.phtSets));
    cfg.phtWays = static_cast<uint32_t>(s.num("phtways", cfg.phtWays));
    cfg.base.regionSize = s.num("region", cfg.base.regionSize);
    return std::make_unique<SmsPrefetcher>(cfg);
}

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &spec_text)
{
    if (spec_text.empty() || spec_text == "none")
        return nullptr;

    Spec s = parseSpec(spec_text);
    if (s.name == "gaze")
        return makeGaze(s);
    if (s.name == "sms")
        return makeSms(s);
    if (s.name == "ip_stride")
        return std::make_unique<IpStridePrefetcher>();
    if (s.name == "bingo") {
        BingoParams cfg;
        cfg.base.regionSize = s.num("region", cfg.base.regionSize);
        cfg.phtSets = static_cast<uint32_t>(s.num("phtsets", cfg.phtSets));
        cfg.phtWays = static_cast<uint32_t>(s.num("phtways", cfg.phtWays));
        return std::make_unique<BingoPrefetcher>(cfg);
    }
    if (s.name == "dspatch") {
        DspatchParams cfg;
        cfg.base.regionSize = s.num("region", cfg.base.regionSize);
        return std::make_unique<DspatchPrefetcher>(cfg);
    }
    if (s.name == "pmp") {
        PmpParams cfg;
        cfg.base.regionSize = s.num("region", cfg.base.regionSize);
        return std::make_unique<PmpPrefetcher>(cfg);
    }
    if (s.name == "ipcp")
        return std::make_unique<IpcpPrefetcher>();
    if (s.name == "spp_ppf")
        return std::make_unique<SppPpfPrefetcher>();
    if (s.name == "spp") {
        SppParams cfg;
        cfg.enablePpf = false;
        return std::make_unique<SppPpfPrefetcher>(cfg);
    }
    if (s.name == "vberti" || s.name == "berti") {
        BertiParams cfg;
        if (s.flag("oracle"))
            cfg.oracleFilter = true;
        return std::make_unique<BertiPrefetcher>(cfg);
    }

    GAZE_FATAL("unknown prefetcher spec '", spec_text, "'");
}

std::vector<std::string>
knownPrefetcherSpecs()
{
    return {"ip_stride", "spp_ppf", "ipcp", "vberti", "sms",
            "bingo", "dspatch", "pmp", "gaze"};
}

} // namespace gaze
