#include "prefetchers/factory.hh"

#include "prefetchers/registry.hh"

namespace gaze
{

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &spec_text)
{
    return resolvePrefetcherSpec(spec_text).build();
}

std::vector<std::string>
knownPrefetcherSpecs()
{
    std::vector<std::string> names;
    for (const auto *d : PrefetcherRegistry::instance().all())
        names.push_back(d->name);
    return names;
}

} // namespace gaze
