#include "prefetchers/prefetch_buffer.hh"

#include <algorithm>

#include "common/log.hh"

namespace gaze
{

PrefetchBuffer::PrefetchBuffer(const PrefetchBufferParams &params)
    : cfg(params),
      table(std::max(1u, params.entries / params.ways), params.ways)
{
    GAZE_ASSERT(cfg.entries % cfg.ways == 0, "PB geometry mismatch");
    GAZE_ASSERT(cfg.blocksPerRegion >= 2, "degenerate region");
}

uint64_t
PrefetchBuffer::setOf(Addr region_base) const
{
    uint64_t region_num =
        region_base / (uint64_t(cfg.blocksPerRegion) * blockSize);
    return region_num & (table.sets() - 1);
}

void
PrefetchBuffer::install(Addr region_base, const PfPattern &pattern,
                        uint32_t start_offset)
{
    GAZE_ASSERT(pattern.size() == cfg.blocksPerRegion,
                "pattern size mismatch");

    uint64_t set = setOf(region_base);
    Entry *e = table.find(set, region_base);
    if (e) {
        // Merge: promotions upgrade levels; count new pending bits.
        for (uint32_t i = 0; i < cfg.blocksPerRegion; ++i) {
            PfLevel merged = mergePfLevel(e->pattern[i], pattern[i]);
            if (merged != e->pattern[i]) {
                if (e->pattern[i] == PfLevel::None)
                    ++e->pending;
                e->pattern[i] = merged;
            }
        }
        return;
    }

    // Count pending bits before claiming a slot: an all-None pattern
    // installs nothing and must not evict a live region.
    uint32_t pend = 0;
    for (auto l : pattern)
        pend += l != PfLevel::None;
    if (pend == 0)
        return;

    // Claim the victim way and rebuild its payload in place: the
    // evicted entry's pattern vector keeps its heap capacity, so
    // steady-state installs allocate nothing.
    Entry &slot = *table.acquire(set, region_base).data;
    slot.pattern.assign(pattern.begin(), pattern.end());
    slot.pending = pend;
    slot.cursor = start_offset % cfg.blocksPerRegion;
    issueQueue.push_back(region_base);
}

void
PrefetchBuffer::onDemand(Addr region_base, uint32_t offset)
{
    if (offset >= cfg.blocksPerRegion)
        return;
    Entry *e = table.find(setOf(region_base), region_base,
                          /*touch=*/false);
    if (!e)
        return;
    if (e->pattern[offset] != PfLevel::None) {
        e->pattern[offset] = PfLevel::None;
        GAZE_ASSERT(e->pending > 0, "PB pending underflow");
        --e->pending;
    }
}

uint32_t
PrefetchBuffer::nextPendingOffset(Entry &e) const
{
    // Forward-first scan from the cursor, wrapping once.
    for (uint32_t n = 0; n < cfg.blocksPerRegion; ++n) {
        uint32_t off = (e.cursor + n) % cfg.blocksPerRegion;
        if (e.pattern[off] != PfLevel::None) {
            e.cursor = off;
            return off;
        }
    }
    GAZE_PANIC("nextPendingOffset on empty entry");
}

size_t
PrefetchBuffer::pendingCount() const
{
    size_t n = 0;
    const_cast<LruTable<Entry> &>(table).forEach(
        [&](uint64_t, uint64_t, Entry &e) { n += e.pending; });
    return n;
}

uint64_t
PrefetchBuffer::storageBits() const
{
    // Region tag (36b) + LRU (3b) + 2b per offset (Table I).
    return uint64_t(cfg.entries) * (36 + 3 + 2 * cfg.blocksPerRegion);
}

} // namespace gaze
