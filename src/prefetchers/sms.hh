/**
 * @file
 * Spatial Memory Streaming (SMS, ISCA'06) and its characterization-
 * scheme generalization.
 *
 * SMS proper keys its Pattern History Table on PC+Offset. For the
 * paper's Fig. 1 study this implementation generalizes the trigger
 * event to any of {Offset, PC, PC+Offset, PC+Address}, with the PHT
 * geometry the paper attributes to each point (64-entry for Offset,
 * 256 for PC, 16k for the PC+Address class).
 */

#pragma once

#include "prefetchers/spatial_base.hh"

namespace gaze
{

/** Trigger-event characterization scheme (Fig. 1 x-axis points). */
enum class SmsEventScheme
{
    Offset,   ///< trigger offset only (coarse)
    Pc,       ///< trigger PC only (DSPatch-class)
    PcOffset, ///< PC + offset (SMS proper)
    PcAddr    ///< PC + full trigger address (finest, Bingo-class)
};

const char *smsEventSchemeName(SmsEventScheme scheme);

struct SmsParams
{
    SpatialBaseParams base; ///< 2KB regions, 64-entry FT/AT (Table IV)

    SmsEventScheme scheme = SmsEventScheme::PcOffset;

    /** PHT geometry; default 16k entries as in Table IV. */
    uint32_t phtSets = 1024;
    uint32_t phtWays = 16;
};

/** SMS: learn footprints keyed by the trigger event; replay on match. */
class SmsPrefetcher : public SpatialPatternPrefetcher
{
  public:
    explicit SmsPrefetcher(const SmsParams &params = {});

    std::string name() const override;
    uint64_t storageBits() const override;

    size_t phtOccupancy() const { return pht.occupancy(); }

  protected:
    void predictOnTrigger(const RegionInfo &info) override;
    void learnOnEnd(const RegionInfo &info) override;

  private:
    uint64_t eventKey(const RegionInfo &info) const;

    SmsParams cfg;
    LruTable<Bitset> pht;
};

} // namespace gaze
