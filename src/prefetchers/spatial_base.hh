/**
 * @file
 * Shared machinery for conventional spatial-pattern prefetchers (SMS,
 * Bingo, DSPatch, PMP): region tracking with an FT/AT pair, footprint
 * accumulation, deactivation-on-eviction, and a uniform Prefetch
 * Buffer — exactly the common structure §II-A describes. Subclasses
 * supply the two scheme-specific pieces: the prediction made at the
 * trigger access, and the learning applied when a region deactivates.
 *
 * The key contrast with Gaze: these schemes predict at the *first*
 * access from environmental context (PC/offset/address), while Gaze
 * waits for the second access and keys on footprint-internal order.
 */

#pragma once

#include <cstdint>

#include "common/bitset.hh"
#include "common/lru_table.hh"
#include "prefetchers/prefetch_buffer.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

/** Geometry common to the spatial-pattern family. */
struct SpatialBaseParams
{
    uint64_t regionSize = 2048; ///< SMS/Bingo/DSPatch use 2KB regions

    uint32_t ftSets = 8;
    uint32_t ftWays = 8;
    uint32_t atSets = 8;
    uint32_t atWays = 8;

    uint32_t pbEntries = 32;
    uint32_t pbWays = 8;
    uint32_t pbIssuePerCycle = 2;

    uint32_t
    blocksPerRegion() const
    {
        return static_cast<uint32_t>(regionSize / blockSize);
    }
};

/** Base class implementing the FT/AT/PB plumbing. */
class SpatialPatternPrefetcher : public Prefetcher
{
  public:
    explicit SpatialPatternPrefetcher(const SpatialBaseParams &params);

    void attach(const PrefetcherContext &ctx) override;
    void onAccess(const DemandAccess &access) override;
    void onEvict(Addr paddr, Addr vaddr) override;
    void tick() override;
    bool busy() const override;

    size_t ftOccupancy() const { return ft.occupancy(); }
    size_t atOccupancy() const { return at.occupancy(); }

  protected:
    /** Context of a region generation handed to subclasses. */
    struct RegionInfo
    {
        Addr base = 0;          ///< region base address (tracked space)
        uint16_t trigger = 0;   ///< trigger block offset
        PC triggerPc = 0;       ///< full trigger PC
        Addr triggerAddr = 0;   ///< full trigger block address
        Bitset footprint{64};
    };

    /**
     * First access to a new region: produce a prediction (install a
     * pattern via installPattern) from the trigger's context.
     */
    virtual void predictOnTrigger(const RegionInfo &info) = 0;

    /** Region deactivated: learn from its accumulated footprint. */
    virtual void learnOnEnd(const RegionInfo &info) = 0;

    /** Install @p pattern for the region, excluding demanded blocks. */
    void installPattern(const RegionInfo &info, PfPattern pattern);

    const SpatialBaseParams &baseParams() const { return base; }
    uint32_t regionBlocks() const { return blocks; }

  private:
    struct FtEntry
    {
        uint16_t trigger = 0;
        PC triggerPc = 0;
        Addr triggerAddr = 0;
    };

    struct AtEntry
    {
        RegionInfo info;
    };

    Addr trackAddr(const DemandAccess &a) const;
    void deactivate(AtEntry &e);

    SpatialBaseParams base;
    uint32_t blocks;
    bool useVirtual = true;

    LruTable<FtEntry> ft;
    LruTable<AtEntry> at;
    std::optional<PrefetchBuffer> pb;
};

} // namespace gaze
