/**
 * @file
 * String-spec prefetcher factory used by the harness, benches and
 * examples. Specs have the form "name[:option[=value]]*" ("none" or
 * the empty string means no prefetcher).
 *
 * The grammar is not listed here on purpose: every scheme declares
 * its options — type, range/enum values, default, doc line — in a
 * registry descriptor next to its implementation
 * (prefetchers/registry.hh), and the authoritative, always-current
 * table is generated from those descriptors:
 *
 *   gaze_sim --list-prefetchers          # human-readable
 *   gaze_sim --list-prefetchers=json     # machine-readable
 *   gaze_campaign describe               # same table
 *
 * Construction validates against the schema (unknown scheme/option,
 * malformed or out-of-range value: fatal) and canonicalizes the
 * spelling, so "gaze:region=2048:n=1" and "gaze:n=1:region=2048"
 * name — and cache as — the same experiment.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/prefetcher.hh"

namespace gaze
{

/**
 * Build a prefetcher from @p spec; returns nullptr for "none"/"".
 * Unknown names, unknown options or malformed values are fatal
 * (configuration error). Equivalent to
 * resolvePrefetcherSpec(spec).build().
 */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &spec);

/**
 * Canonical names of every registered scheme, sorted — derived from
 * the registry, never a hand-maintained list.
 */
std::vector<std::string> knownPrefetcherSpecs();

} // namespace gaze
