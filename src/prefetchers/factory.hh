/**
 * @file
 * String-spec prefetcher factory used by the harness, benches and
 * examples. Specs have the form "name[:key[=value]]*", e.g.:
 *
 *   "none"                      no prefetcher
 *   "ip_stride"                 commercial baseline
 *   "sms", "bingo", "dspatch", "pmp", "ipcp", "spp_ppf", "vberti"
 *   "sms:scheme=offset:phtsets=64:phtways=1"   Fig. 1 variants
 *   "gaze"                      full Gaze
 *   "gaze:n=1"                  initial-access sweep (Fig. 4)
 *   "gaze:nostream"             Gaze-PHT (Fig. 9)
 *   "gaze:pht4ss" / "gaze:sm4ss"  streaming-module study (Fig. 10)
 *   "gaze:region=2048"          region-size sweep (Figs. 17a, 18)
 *   "gaze:phtsets=32"           PHT-size sweep (Fig. 17b)
 *   "spp"                       SPP without the perceptron filter
 */

#ifndef GAZE_PREFETCHERS_FACTORY_HH
#define GAZE_PREFETCHERS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/prefetcher.hh"

namespace gaze
{

/**
 * Build a prefetcher from @p spec; returns nullptr for "none"/"".
 * Unknown names or options are fatal (configuration error).
 */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &spec);

/** All canonical single-level scheme names (for enumeration benches). */
std::vector<std::string> knownPrefetcherSpecs();

} // namespace gaze

#endif // GAZE_PREFETCHERS_FACTORY_HH
