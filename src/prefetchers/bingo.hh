/**
 * @file
 * Bingo spatial data prefetcher (HPCA'19). TAGE-inspired long/short
 * event co-association: the PHT is indexed by the *short* event
 * (PC+Offset) and each entry is additionally tagged with the *long*
 * event (PC+Address). A lookup first tries the exact long-event match
 * (high accuracy); failing that, every short-event match in the set
 * votes, and blocks pass by vote share (approximate match, higher
 * coverage).
 */

#pragma once

#include "prefetchers/spatial_base.hh"

namespace gaze
{

struct BingoParams
{
    SpatialBaseParams base; ///< 2KB regions (Table IV)

    /** 16k-entry PHT as in Table IV's enhanced configuration. */
    uint32_t phtSets = 1024;
    uint32_t phtWays = 16;

    /** Vote share needed to prefetch a block to L1D / to L2C. */
    double l1VoteShare = 0.50;
    double l2VoteShare = 0.25;
};

/** Bingo: exact match to L1D, voted approximate match split L1/L2. */
class BingoPrefetcher : public SpatialPatternPrefetcher
{
  public:
    explicit BingoPrefetcher(const BingoParams &params = {});

    std::string name() const override { return "bingo"; }
    uint64_t storageBits() const override;

    uint64_t exactMatches() const { return exactHits; }
    uint64_t approxMatches() const { return approxHits; }

  protected:
    void predictOnTrigger(const RegionInfo &info) override;
    void learnOnEnd(const RegionInfo &info) override;

  private:
    /**
     * Ways are keyed by the unique long event; the short event is a
     * payload field so several long events sharing one short event can
     * coexist in a set (the substrate of approximate matching).
     */
    struct Entry
    {
        uint64_t shortTag = 0;
        Bitset footprint{32};
    };

    uint64_t shortKey(const RegionInfo &info) const;
    uint64_t longKey(const RegionInfo &info) const;

    BingoParams cfg;
    LruTable<Entry> pht;

    uint64_t exactHits = 0;
    uint64_t approxHits = 0;
};

} // namespace gaze
