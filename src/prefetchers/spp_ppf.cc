#include "prefetchers/spp_ppf.hh"

#include "prefetchers/registry.hh"

#include <algorithm>

namespace gaze
{

SppPpfPrefetcher::SppPpfPrefetcher(const SppParams &params)
    : cfg(params), st(1, params.stEntries), pt(params.ptSets),
      weights(numFeatures,
              std::vector<int32_t>(params.ppfTableSize, 0)),
      pending(params.ppfHistory)
{
}

void
SppPpfPrefetcher::trainPt(uint16_t sig, int16_t delta)
{
    PtEntry &e = pt[sig % cfg.ptSets];
    ++e.total;
    for (auto &w : e.ways) {
        if (w.conf > 0 && w.delta == delta) {
            if (++w.conf >= cfg.cMax) {
                // Age when the winner saturates (SPP's Csig/Cdelta
                // halving): a dominant delta keeps conf/total ~ 1.
                for (auto &o : e.ways)
                    o.conf /= 2;
                e.total /= 2;
            }
            return;
        }
    }
    // Replace the weakest way.
    auto victim = std::min_element(
        e.ways.begin(), e.ways.end(),
        [](const PtDelta &a, const PtDelta &b) { return a.conf < b.conf; });
    victim->delta = delta;
    victim->conf = 1;
}

int32_t
SppPpfPrefetcher::score(PC pc, Addr target_vaddr, uint16_t sig,
                        int16_t delta, uint32_t depth, double conf,
                        FeatureVec &feats) const
{
    uint32_t sz = cfg.ppfTableSize;
    feats[0] = static_cast<uint16_t>(mix64(pc) % sz);
    feats[1] = static_cast<uint16_t>(regionOffset(target_vaddr) % sz);
    feats[2] = static_cast<uint16_t>(sig % sz);
    feats[3] = static_cast<uint16_t>(uint16_t(delta + 64) % sz);
    feats[4] = static_cast<uint16_t>(depth % sz);
    feats[5] = static_cast<uint16_t>(uint32_t(conf * 16) % sz);

    int32_t sum = 0;
    for (uint32_t f = 0; f < numFeatures; ++f)
        sum += weights[f][feats[f]];
    return sum;
}

void
SppPpfPrefetcher::trainPerceptron(const FeatureVec &feats, bool useful)
{
    for (uint32_t f = 0; f < numFeatures; ++f) {
        int32_t &w = weights[f][feats[f]];
        if (useful)
            w = std::min(w + 1, cfg.ppfWeightMax);
        else
            w = std::max(w - 1, -cfg.ppfWeightMax - 1);
    }
}

void
SppPpfPrefetcher::recordPending(Addr block, const FeatureVec &feats)
{
    while (pendingFifo.size() >= cfg.ppfHistory) {
        pending.erase(pendingFifo.front()); // tolerant of stale slots
        pendingFifo.pop_front();
    }
    // First record for the block wins, as unordered_map::emplace did.
    if (!pending.find(block)) {
        pending.insert(block) = feats;
        pendingFifo.push_back(block);
    }
}

void
SppPpfPrefetcher::onAccess(const DemandAccess &access)
{
    if (access.type != AccessType::Load)
        return;

    Addr block = blockNumber(access.vaddr);

    // Usefulness feedback: a demand touching a block we prefetched is
    // a positive training event for the filter.
    if (cfg.enablePpf) {
        if (const FeatureVec *feats = pending.find(block)) {
            trainPerceptron(*feats, /*useful=*/true);
            pending.erase(block);
        }
    }

    Addr page = pageNumber(access.vaddr);
    uint16_t off = static_cast<uint16_t>(regionOffset(access.vaddr));

    StEntry *e = st.find(0, page);
    if (!e) {
        StEntry fresh;
        fresh.signature = 0;
        fresh.lastOffset = off;
        fresh.valid = true;
        st.insert(0, page, fresh);
        return;
    }

    int16_t delta = int16_t(off) - int16_t(e->lastOffset);
    if (delta == 0)
        return;

    trainPt(e->signature, delta);
    e->signature = nextSignature(e->signature, delta);
    e->lastOffset = off;

    // Lookahead walk along the signature path.
    uint16_t sig = e->signature;
    double path_conf = 1.0;
    int32_t cursor = int32_t(off);
    for (uint32_t depth = 0; depth < cfg.maxDepth; ++depth) {
        const PtEntry &p = pt[sig % cfg.ptSets];
        if (p.total == 0)
            break;
        const PtDelta *best = nullptr;
        for (const auto &w : p.ways)
            if (w.conf > 0 && (!best || w.conf > best->conf))
                best = &w;
        if (!best)
            break;
        double conf = std::min(
            1.0, double(best->conf) / std::max<uint32_t>(1, p.total));
        path_conf *= conf;
        if (path_conf < cfg.pfThreshold)
            break;

        cursor += best->delta;
        if (cursor < 0 || cursor >= int32_t(blocksPerPage))
            break; // page-bounded (no GHR; see DESIGN.md)
        Addr target = (page << pageShift)
                      | (Addr(cursor) << blockShift);

        ++proposed;
        bool accept = true;
        std::array<uint16_t, numFeatures> feats{};
        if (cfg.enablePpf) {
            int32_t s = score(access.pc, target, sig, best->delta,
                              depth, path_conf, feats);
            accept = s >= cfg.ppfThreshold;
        }
        if (accept) {
            uint32_t fill = path_conf >= cfg.fillThreshold ? levelL1
                                                           : levelL2;
            if (issuePrefetch(target, fill, /*virt=*/true)
                && cfg.enablePpf)
                recordPending(blockNumber(target), feats);
        } else {
            ++rejected;
        }
        sig = nextSignature(sig, best->delta);
    }
}

void
SppPpfPrefetcher::onEvict(Addr /*paddr*/, Addr vaddr)
{
    if (!cfg.enablePpf || vaddr == 0)
        return;
    // A prefetched block leaving the cache untouched is a negative
    // training event.
    Addr block = blockNumber(vaddr);
    if (const FeatureVec *feats = pending.find(block)) {
        trainPerceptron(*feats, /*useful=*/false);
        pending.erase(block);
    }
}

uint64_t
SppPpfPrefetcher::storageBits() const
{
    uint64_t st_bits = uint64_t(cfg.stEntries) * (16 + 12 + 6);
    uint64_t pt_bits = uint64_t(cfg.ptSets) * (4 * (7 + 4) + 6);
    // Plain "spp" carries no perceptron tables: its budget must not
    // include the filter it does not have.
    if (!cfg.enablePpf)
        return st_bits + pt_bits;
    uint64_t ppf_bits = uint64_t(numFeatures) * cfg.ppfTableSize * 6
                        + uint64_t(cfg.ppfHistory) * (30 + 16);
    return st_bits + pt_bits + ppf_bits;
}

GAZE_REGISTER_PREFETCHER(spp_ppf)
{
    PrefetcherDescriptor d;
    d.name = "spp_ppf";
    d.doc = "SPP (MICRO'16) with the PPF perceptron prefetch filter "
            "(ISCA'19)";
    d.build = [](const SpecOptions &) -> std::unique_ptr<Prefetcher> {
        return std::make_unique<SppPpfPrefetcher>();
    };
    return d;
}

GAZE_REGISTER_PREFETCHER(spp)
{
    PrefetcherDescriptor d;
    d.name = "spp";
    d.doc = "SPP (MICRO'16) alone: the signature-path predictor "
            "without the perceptron filter";
    d.build = [](const SpecOptions &) -> std::unique_ptr<Prefetcher> {
        SppParams cfg;
        cfg.enablePpf = false;
        return std::make_unique<SppPpfPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
