/**
 * @file
 * IP-stride: the classic per-PC constant-stride prefetcher shipped in
 * commercial cores (the paper's "widely-used commercial prefetcher"
 * baseline, citing Intel's smart memory access whitepaper). Each load
 * PC tracks its last block address and last stride; after two
 * confirmations the next blocks along the stride are prefetched.
 */

#pragma once

#include "common/lru_table.hh"
#include "common/sat_counter.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

struct IpStrideParams
{
    uint32_t sets = 16;
    uint32_t ways = 4;

    /** Blocks prefetched ahead once confident. */
    uint32_t degree = 2;

    /** Extra degree when fully confident. */
    uint32_t boostDegree = 2;

    uint32_t confMax = 3;
    uint32_t confThreshold = 2;
};

/** Per-PC stride detection with 2-bit-style confidence. */
class IpStridePrefetcher : public Prefetcher
{
  public:
    explicit IpStridePrefetcher(const IpStrideParams &params = {});

    std::string name() const override { return "ip_stride"; }

    void onAccess(const DemandAccess &access) override;

    uint64_t storageBits() const override;

  private:
    struct Entry
    {
        Addr lastBlock = 0;
        int64_t stride = 0;
        SatCounter conf{3, 0};
    };

    IpStrideParams cfg;
    LruTable<Entry> table;
};

} // namespace gaze
