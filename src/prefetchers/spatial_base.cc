#include "prefetchers/spatial_base.hh"

#include <algorithm>

#include "common/log.hh"

namespace gaze
{

SpatialPatternPrefetcher::SpatialPatternPrefetcher(
    const SpatialBaseParams &params)
    : base(params), blocks(params.blocksPerRegion()),
      ft(params.ftSets, params.ftWays), at(params.atSets, params.atWays)
{
    GAZE_ASSERT(blocks >= 2 && isPowerOfTwo(base.regionSize),
                "bad region size");
    // ft/at set counts are masked into indices (`& (sets() - 1)`), so
    // the LruTable power-of-two check has already fired; what remains
    // is the PB, whose geometry is only split into sets at attach().
    GAZE_ASSERT(isValidSetSplit(base.pbEntries, base.pbWays),
                "PB geometry must split into a power-of-two set count, "
                "got ", base.pbEntries, " entries x ", base.pbWays,
                " ways");
}

void
SpatialPatternPrefetcher::attach(const PrefetcherContext &ctx)
{
    Prefetcher::attach(ctx);
    useVirtual = ctx.level == levelL1;

    PrefetchBufferParams pbp;
    pbp.entries = base.pbEntries;
    pbp.ways = base.pbWays;
    pbp.issuePerCycle = base.pbIssuePerCycle;
    pbp.blocksPerRegion = blocks;
    pbp.virtualSpace = useVirtual;
    pb.emplace(pbp);
}

Addr
SpatialPatternPrefetcher::trackAddr(const DemandAccess &a) const
{
    return useVirtual && a.vaddr ? a.vaddr : a.paddr;
}

void
SpatialPatternPrefetcher::installPattern(const RegionInfo &info,
                                         PfPattern pattern)
{
    GAZE_ASSERT(pattern.size() == blocks, "pattern size mismatch");
    for (size_t b = info.footprint.findFirst(); b < info.footprint.size();
         b = info.footprint.findNext(b + 1))
        pattern[b] = PfLevel::None;
    if (pb)
        pb->install(info.base, pattern, info.trigger + 1);
}

void
SpatialPatternPrefetcher::onAccess(const DemandAccess &access)
{
    if (access.type != AccessType::Load)
        return;

    Addr addr = trackAddr(access);
    Addr rbase = regionBase(addr, base.regionSize);
    uint64_t rnum = addr / base.regionSize;
    uint32_t off = regionOffset(addr, base.regionSize);

    if (pb)
        pb->onDemand(rbase, off);

    uint64_t at_set = rnum & (at.sets() - 1);
    if (AtEntry *e = at.find(at_set, rnum)) {
        e->info.footprint.set(off);
        return;
    }

    uint64_t ft_set = rnum & (ft.sets() - 1);
    if (FtEntry *f = ft.find(ft_set, rnum)) {
        if (f->trigger == off)
            return;
        AtEntry e;
        e.info.base = rbase;
        e.info.trigger = f->trigger;
        e.info.triggerPc = f->triggerPc;
        e.info.triggerAddr = f->triggerAddr;
        e.info.footprint = Bitset(blocks);
        e.info.footprint.set(f->trigger);
        e.info.footprint.set(off);
        ft.erase(ft_set, rnum);
        auto evicted = at.insert(at_set, rnum, std::move(e));
        if (evicted)
            deactivate(evicted->data);
        return;
    }

    // Region activation: conventional schemes predict right here,
    // from the trigger's environmental context alone.
    FtEntry fresh;
    fresh.trigger = static_cast<uint16_t>(off);
    fresh.triggerPc = access.pc;
    fresh.triggerAddr = blockAlign(addr);
    ft.insert(ft_set, rnum, fresh);

    RegionInfo info;
    info.base = rbase;
    info.trigger = fresh.trigger;
    info.triggerPc = fresh.triggerPc;
    info.triggerAddr = fresh.triggerAddr;
    info.footprint = Bitset(blocks);
    info.footprint.set(off);
    predictOnTrigger(info);
}

void
SpatialPatternPrefetcher::deactivate(AtEntry &e)
{
    learnOnEnd(e.info);
}

void
SpatialPatternPrefetcher::onEvict(Addr paddr, Addr vaddr)
{
    Addr addr = useVirtual ? vaddr : paddr;
    if (useVirtual && vaddr == 0)
        return;

    uint64_t rnum = addr / base.regionSize;
    uint32_t off = regionOffset(addr, base.regionSize);
    uint64_t at_set = rnum & (at.sets() - 1);
    AtEntry *e = at.find(at_set, rnum, /*touch=*/false);
    if (!e || !e->info.footprint.test(off))
        return;
    deactivate(*e);
    at.erase(at_set, rnum);
}

void
SpatialPatternPrefetcher::tick()
{
    if (!pb)
        return;
    pb->drain([&](Addr a, uint32_t fill, bool virt) {
        uint32_t lvl = std::max(fill, context.level);
        return issuePrefetch(a, lvl, virt);
    });
}

bool
SpatialPatternPrefetcher::busy() const
{
    return pb && pb->drainPending();
}

} // namespace gaze
